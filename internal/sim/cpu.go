// Package sim is the execution engine: it interleaves the CPUs of the
// simulated multiprocessor by always stepping the one with the smallest
// local clock, runs user processes (generating their instruction and data
// reference streams through the TLBs, caches and bus) and invokes the
// kernel for system calls, TLB faults and interrupts. The attached
// hardware monitor records the resulting bus-transaction trace, which the
// trace package postprocesses exactly as the paper's pipeline does.
package sim

import (
	"repro/internal/arch"
	"repro/internal/bus"
	"repro/internal/kernel"
	"repro/internal/klock"
	"repro/internal/monitor"
	"repro/internal/tlb"
)

// CPU is one processor. It implements kernel.Port: every kernel or user
// reference advances its local clock and drives the shared cache/bus
// complex.
type CPU struct {
	id  arch.CPUID
	sim *Simulator

	now  arch.Cycles
	mode arch.Mode

	cur  *kernel.Proc
	tlb  *tlb.TLB
	inOS bool // between EnterOS and ExitOS escapes

	curRoutine    *kernel.Routine
	nextClockTick arch.Cycles
	curOp         kernel.OpKind
	osStart       arch.Cycles

	// spec is non-nil only while the parallel engine speculates this CPU
	// inside a worker goroutine: bus-visible effects divert into the op
	// log and any non-private site stops the speculation.
	spec *specCPU

	// Micro-TLB: the last code and data translations, so the 64-entry
	// TLB scan only runs on page boundaries.
	lastCodePID arch.PID
	lastCodeVP  uint32
	lastCodeFr  uint32
	lastCodeOK  bool
	lastDataPID arch.PID
	lastDataVP  uint32
	lastDataFr  uint32
	lastDataOK  bool
	// lastDataWr marks the data entry as validated for stores (the
	// copy-on-write check already ran for this page). Any code that
	// sets PageInfo.COW on an already-mapped page must flush the
	// micro-TLBs, as TLB insert/invalidate and context switches do.
	lastDataWr bool

	// Accounting (cycles include stall time; Stall and L2Stall are the
	// contained stall components; SyncCycles is sync-bus time).
	Time       [3]arch.Cycles // by arch.Mode
	Stall      [3]arch.Cycles
	L2Stall    [3]arch.Cycles
	SyncCycles arch.Cycles

	needSync bool // emit state-sync escapes when tracing starts
}

// adv charges c cycles to the current mode.
func (c *CPU) adv(cy arch.Cycles) {
	c.now += cy
	c.Time[c.mode] += cy
}

func (c *CPU) advStall(cy arch.Cycles) {
	c.now += cy
	c.Time[c.mode] += cy
	c.Stall[c.mode] += cy
}

func (c *CPU) advL2(cy arch.Cycles) {
	c.now += cy
	c.Time[c.mode] += cy
	c.L2Stall[c.mode] += cy
}

// flushMicroTLB invalidates the one-entry translation caches (after any
// TLB-affecting operation).
func (c *CPU) flushMicroTLB() {
	c.lastCodeOK = false
	c.lastDataOK = false
}

// ---- kernel.Port implementation ----

// CPU returns the processor id.
func (c *CPU) CPU() arch.CPUID { return c.id }

// Now returns the local clock.
func (c *CPU) Now() arch.Cycles { return c.now }

// Exec fetches the routine's instruction blocks in order (kernel code is
// physically addressed and bypasses the TLB) and emits the routine-entry
// escape used for data-structure attribution (Section 2.2).
func (c *CPU) Exec(r *kernel.Routine) {
	c.curRoutine = r
	c.Escape(monitor.EvRoutineEnter, uint32(r.ID))
	c.fetchRoutine(r)
}

// execQuiet fetches a routine without the attribution escape — used for
// the tiny leaf helpers (lock primitives, idle loop) whose entry would
// otherwise clobber the attribution of their caller's data accesses.
func (c *CPU) execQuiet(r *kernel.Routine) { c.fetchRoutine(r) }

func (c *CPU) fetchRoutine(r *kernel.Routine) {
	blocks := r.Blocks()
	for i := 0; i < blocks; i++ {
		c.sim.pollCancel(c)
		out := c.sim.Bus.Fetch(c.id, r.Addr+arch.PAddr(i*arch.BlockSize), c.now)
		c.adv(arch.InstrPerBlock) // one cycle per instruction
		if out.Stall > 0 {
			c.advStall(out.Stall)
		}
	}
}

// Load reads n bytes of physical memory block by block.
func (c *CPU) Load(a arch.PAddr, n int) { c.data(a, n, false) }

// Store writes n bytes.
func (c *CPU) Store(a arch.PAddr, n int) { c.data(a, n, true) }

func (c *CPU) data(a arch.PAddr, n int, write bool) {
	end := a + arch.PAddr(n)
	for b := a.Block(); b < end; b += arch.BlockSize {
		c.dataRef(b, write)
	}
}

// dataRef issues one block-granular data reference and charges its time.
func (c *CPU) dataRef(a arch.PAddr, write bool) {
	var o bus.Outcome
	if sp := c.spec; sp != nil {
		// Speculative: private cache effects apply (journaled), bus-
		// visible effects are deferred into the op log. Cancellation is
		// flagged, not panicked — the panic must come from the engine's
		// main goroutine to preserve RunCancelable's provenance.
		if c.sim.cancel.Load() {
			sp.stopped, sp.canceled = true, true
			return
		}
		if write {
			o = sp.bs.Write(a, c.now)
		} else {
			o = sp.bs.Read(a, c.now)
		}
	} else {
		c.sim.pollCancel(c)
		if write {
			o = c.sim.Bus.Write(c.id, a, c.now)
		} else {
			o = c.sim.Bus.Read(c.id, a, c.now)
		}
	}
	c.adv(1)
	switch {
	case o.Missed, o.Upgraded:
		c.advStall(o.Stall)
	case o.L2Hit:
		c.advL2(o.Stall)
	}
}

// LoadBypass reads n bytes without filling the caches.
func (c *CPU) LoadBypass(a arch.PAddr, n int) { c.bypass(a, n, false) }

// StoreBypass writes n bytes without filling the caches.
func (c *CPU) StoreBypass(a arch.PAddr, n int) { c.bypass(a, n, true) }

// bypassBurstBlocks is the block-transfer unit of the §4.2.2 hardware:
// one bus transaction moves four contiguous blocks (64 bytes).
const bypassBurstBlocks = 4

func (c *CPU) bypass(a arch.PAddr, n int, write bool) {
	end := a + arch.PAddr(n)
	burst := arch.PAddr(bypassBurstBlocks * arch.BlockSize)
	for b := a.Block(); b < end; b += burst {
		c.sim.pollCancel(c)
		blocks := int((end - b + arch.BlockSize - 1) / arch.BlockSize)
		if blocks > bypassBurstBlocks {
			blocks = bypassBurstBlocks
		}
		out := c.sim.Bus.Bypass(c.id, b, blocks, write, c.now)
		c.adv(arch.Cycles(blocks))
		c.advStall(out.Stall)
	}
}

// UncachedRead models a device-register access: a real, stalling uncached
// bus transaction.
func (c *CPU) UncachedRead(a arch.PAddr) {
	c.sim.pollCancel(c)
	out := c.sim.Bus.Uncached(c.id, a&^1, c.now, false)
	c.adv(1)
	c.advStall(out.Stall)
}

// Advance charges pure compute cycles.
func (c *CPU) Advance(cy arch.Cycles) { c.adv(cy) }

// RoutineName returns the kernel routine currently executing on this CPU
// (empty outside the kernel), for checker diagnostics.
func (c *CPU) RoutineName() string {
	if c.curRoutine == nil {
		return ""
	}
	return c.curRoutine.Name
}

// Acquire spins on a kernel lock via the synchronization bus. Wait time is
// charged as sync cycles on top of the clock advance.
func (c *CPU) Acquire(l *klock.Lock) {
	c.execQuiet(c.sim.rLockAcquire)
	if chk := c.sim.Chk; chk != nil {
		chk.OnAcquire(c.id, l, l.Family, l.Name, l.User, c.now)
	}
	at, _ := l.Acquire(c.id, c.now)
	l.NoteOwner(c.RoutineName())
	wait := at - c.now
	if wait > 0 {
		c.adv(wait) // spinning on the sync bus
	}
	cost := arch.Cycles(klock.AcquireCycles)
	c.adv(cost)
	c.SyncCycles += wait + cost
}

// Release frees a kernel lock.
func (c *CPU) Release(l *klock.Lock) {
	c.execQuiet(c.sim.rLockRelease)
	if chk := c.sim.Chk; chk != nil {
		chk.OnRelease(c.id, l, l.Family, l.Name, l.User, c.now)
	}
	l.Release(c.id, c.now)
	cost := arch.Cycles(klock.ReleaseCycles)
	c.adv(cost)
	c.SyncCycles += cost
}

// Escape emits an instrumentation event: an uncached odd-address byte read
// per the Section 2.2 encoding, at zero simulated cost.
func (c *CPU) Escape(ev monitor.Event, args ...uint32) {
	if !c.sim.traceEscapes {
		return
	}
	c.sim.pollCancel(c)
	c.sim.Bus.Uncached(c.id, monitor.EventAddr(ev), c.now, true)
	for _, v := range args {
		c.sim.pollCancel(c)
		c.sim.Bus.Uncached(c.id, monitor.OperandAddr(v), c.now, true)
	}
}

// TLBInsert installs a translation and emits the TLB-change escape.
func (c *CPU) TLBInsert(pid arch.PID, vpage, frame uint32) {
	idx, _ := c.tlb.Insert(pid, vpage, frame)
	c.Escape(monitor.EvTLBChange, uint32(idx), vpage, frame, uint32(pid))
	c.flushMicroTLB()
}

// TLBInvalidatePID removes the pid's entries from every CPU's TLB.
func (c *CPU) TLBInvalidatePID(pid arch.PID) {
	for _, q := range c.sim.CPUs {
		if e := c.sim.par; e != nil {
			e.truncateSpec(q.id)
		}
		q.tlb.InvalidatePID(pid)
		q.flushMicroTLB()
	}
}

// TLBInvalidateFrame removes mappings of a frame from every CPU's TLB.
func (c *CPU) TLBInvalidateFrame(frame uint32) {
	for _, q := range c.sim.CPUs {
		if e := c.sim.par; e != nil {
			e.truncateSpec(q.id)
		}
		q.tlb.InvalidateFrame(frame)
		q.flushMicroTLB()
	}
}

// ICacheInvalFrame flushes every instruction cache (code-page
// reallocation) and records the event for the Inval classification.
func (c *CPU) ICacheInvalFrame(frame uint32) {
	c.sim.Bus.InvalidateCodeFrame(frame)
	c.sim.ICacheFlushes++
	c.Escape(monitor.EvICacheInval, frame)
}

var _ kernel.Port = (*CPU)(nil)
