package bus

// Fanout duplicates every bus transaction to several recorders. It is the
// streaming pipeline's splitter: the bus feeds the inline classifier and,
// when the buffered oracle is also requested, the ring-buffer monitor, in
// one pass over the transaction stream.
type Fanout struct {
	recs []Recorder
}

// NewFanout builds a fan-out over the given recorders, dropping nils. If
// only one non-nil recorder remains it is returned directly (no fan-out
// indirection on the hot path); with none, nil is returned (tracing off).
func NewFanout(recs ...Recorder) Recorder {
	f := &Fanout{}
	for _, r := range recs {
		if r != nil {
			f.recs = append(f.recs, r)
		}
	}
	switch len(f.recs) {
	case 0:
		return nil
	case 1:
		return f.recs[0]
	}
	return f
}

// Record forwards the transaction to every recorder in registration order.
func (f *Fanout) Record(t Txn) {
	for _, r := range f.recs {
		r.Record(t)
	}
}

var _ Recorder = (*Fanout)(nil)
