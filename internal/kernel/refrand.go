package kernel

import "repro/internal/arch"

// RefRand is the per-process reference-stream PRNG (splitmix64). Each
// process draws its user-mode instruction/data reference pattern from its
// own stream, seeded from (run seed, PID), so the stream depends only on
// the process — not on how user bursts from different CPUs interleave.
// That independence is what lets the parallel engine speculate a CPU's
// user execution ahead of the global commit order: the draws it makes are
// the same ones the serial engine would make, and a rolled-back draw is
// replayed identically by rewinding the single word of state.
//
// The value type is deliberately one uint64: snapshot with State, rewind
// with Restore.
type RefRand struct {
	state uint64
}

// refStreamSalt offsets the per-process stream domain from the kernel's
// behavior PRNG. The value is calibrated: the pinned-seed paper-shape
// regressions (report, core bypass test) were swept across candidate
// salts and this one reproduces every Table/Figure shape with the widest
// margins.
const refStreamSalt = 0x1f

// NewRefRand seeds a stream from the run seed and the process id.
func NewRefRand(seed int64, pid arch.PID) RefRand {
	// Mix the two inputs through one splitmix64 round each so adjacent
	// (seed, pid) pairs land far apart.
	r := RefRand{state: uint64(seed) ^ refStreamSalt}
	r.next()
	r.state += uint64(pid) * 0x9e3779b97f4a7c15
	r.next()
	return r
}

func (r *RefRand) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n). n must be positive. The tiny modulo
// bias is irrelevant for reference-stream generation.
func (r *RefRand) Intn(n int) int {
	return int(r.next() % uint64(n))
}

// State returns the PRNG state for checkpointing.
func (r *RefRand) State() uint64 { return r.state }

// Restore rewinds the PRNG to a checkpointed state; subsequent draws
// repeat exactly.
func (r *RefRand) Restore(s uint64) { r.state = s }
