package core

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/trace"
	"repro/internal/workload"
)

func small(t *testing.T, cfg Config) *Characterization {
	t.Helper()
	if cfg.Window == 0 {
		cfg.Window = 3_000_000
	}
	cfg.Warmup = cfg.Window / 2
	if cfg.Seed == 0 {
		cfg.Seed = 3
	}
	// The invariant checker rides along on every test run; benchmarks
	// and production runs leave it off.
	cfg.Check = true
	ch := Run(cfg)
	if n := len(ch.CheckErrors); n > 0 {
		t.Fatalf("invariant checker found %d violations, first: %v", n, ch.CheckErrors[0])
	}
	return ch
}

func TestRunProducesTraceAndCounters(t *testing.T) {
	ch := small(t, Config{Workload: workload.Pmake})
	if ch.Trace == nil {
		t.Fatal("no trace result")
	}
	if ch.Trace.Total == 0 || ch.Trace.OSMissTotal == 0 {
		t.Fatal("no misses classified")
	}
	if ch.Ops.OpCounts[0]+ch.Ops.OpCounts[2] == 0 {
		t.Error("no kernel operations counted in the window")
	}
	if ch.NonIdle() == 0 {
		t.Error("no non-idle time")
	}
}

func TestTimeSplitSumsTo100(t *testing.T) {
	ch := small(t, Config{Workload: workload.Oracle})
	u, s, i := ch.TimeSplit()
	if sum := u + s + i; sum < 99.9 || sum > 100.1 {
		t.Errorf("time split sums to %v", sum)
	}
	if u <= 0 || s <= 0 {
		t.Errorf("degenerate split %v/%v/%v", u, s, i)
	}
}

func TestStallOrdering(t *testing.T) {
	ch := small(t, Config{Workload: workload.Pmake})
	all, osOnly, osInd := ch.StallPct()
	if !(all >= osInd && osInd >= osOnly && osOnly > 0) {
		t.Errorf("stall ordering violated: all=%v osInd=%v os=%v", all, osInd, osOnly)
	}
	// Components are each ≤ the OS total.
	for name, v := range map[string]float64{
		"instr":     ch.OSIMissStallPct(),
		"migration": ch.MigrationStallPct(),
		"blockop":   ch.BlockOpStallPct(),
	} {
		if v < 0 || v > osOnly+0.01 {
			t.Errorf("%s stall %v outside [0, %v]", name, v, osOnly)
		}
	}
}

func TestNoTraceMode(t *testing.T) {
	ch := small(t, Config{Workload: workload.Multpgm, NoTrace: true})
	if ch.Trace != nil {
		t.Fatal("NoTrace run produced a trace")
	}
	if ch.Sim.Mon != nil {
		t.Fatal("NoTrace run attached a monitor")
	}
	// Lock statistics still work.
	if ch.Sim.K.Locks.TotalAcquires() == 0 {
		t.Error("no lock activity recorded")
	}
}

func TestFigure6RequiresIResim(t *testing.T) {
	ch := small(t, Config{Workload: workload.Pmake})
	defer func() {
		if recover() == nil {
			t.Error("Figure6 without CollectIResim did not panic")
		}
	}()
	ch.Figure6()
}

func TestFigure6Works(t *testing.T) {
	ch := small(t, Config{Workload: workload.Pmake, CollectIResim: true})
	res := ch.Figure6()
	if len(res.DirectMapped) != 5 {
		t.Fatalf("sweep points = %d", len(res.DirectMapped))
	}
	if res.DirectMapped[0].Relative < 0.9 || res.DirectMapped[0].Relative > 1.0001 {
		t.Errorf("64KB DM relative = %v, want ≈1", res.DirectMapped[0].Relative)
	}
	for i := 1; i < len(res.DirectMapped); i++ {
		if res.DirectMapped[i].Relative > res.DirectMapped[i-1].Relative+1e-9 {
			t.Error("DM curve not monotone non-increasing")
		}
	}
}

func TestInvocationStats(t *testing.T) {
	ch := small(t, Config{Workload: workload.Pmake})
	st := ch.Invocations()
	if st.Invocations == 0 {
		t.Fatal("no OS invocations segmented")
	}
	if st.OSAvgCycles <= 0 || st.AppAvgCycles <= 0 {
		t.Errorf("degenerate averages: %+v", st)
	}
	if st.MsBetweenInvocations <= 0 {
		t.Error("no invocation interval")
	}
}

func TestDeterminism(t *testing.T) {
	a := small(t, Config{Workload: workload.Multpgm, Seed: 9})
	b := small(t, Config{Workload: workload.Multpgm, Seed: 9})
	if a.Trace.Total != b.Trace.Total || a.Trace.OSMissTotal != b.Trace.OSMissTotal {
		t.Errorf("same seed differs: (%d,%d) vs (%d,%d)",
			a.Trace.Total, a.Trace.OSMissTotal, b.Trace.Total, b.Trace.OSMissTotal)
	}
	c := small(t, Config{Workload: workload.Multpgm, Seed: 10})
	if c.Trace.Total == a.Trace.Total {
		t.Log("different seeds produced identical totals (possible but unlikely)")
	}
}

func TestSyncStall(t *testing.T) {
	ch := small(t, Config{Workload: workload.Pmake})
	cur, rmw := ch.SyncStallPct()
	if cur <= 0 {
		t.Error("no sync stall measured")
	}
	if rmw >= cur {
		t.Errorf("cacheable locks (%v%%) should beat the sync bus (%v%%)", rmw, cur)
	}
}

func TestTaxonomyConsistency(t *testing.T) {
	// Classified OS+app misses must sum to Total.
	ch := small(t, Config{Workload: workload.Multpgm})
	var sum int64
	for o := 0; o < 2; o++ {
		for i := 0; i < 2; i++ {
			for cl := trace.MissClass(0); cl < trace.NumClasses; cl++ {
				sum += ch.Trace.Counts[o][i][cl]
			}
		}
	}
	if sum != ch.Trace.Total {
		t.Errorf("class sum %d != total %d", sum, ch.Trace.Total)
	}
}

func TestAblationConfigsRun(t *testing.T) {
	// Every ablation knob must run the full pipeline cleanly.
	for _, cfg := range []Config{
		{Workload: workload.Pmake, OptimizedText: true},
		{Workload: workload.Pmake, BlockOpBypass: true},
		{Workload: workload.Multpgm, UpdateProtocol: true},
		{Workload: workload.Multpgm, Affinity: true},
	} {
		cfg.Window = 2_000_000
		cfg.Warmup = 1_000_000
		cfg.Seed = 8
		ch := Run(cfg)
		if ch.Trace.Total == 0 {
			t.Errorf("%+v: no misses", cfg)
		}
		u, s, i := ch.TimeSplit()
		if sum := u + s + i; sum < 99.9 || sum > 100.1 {
			t.Errorf("%+v: time split %v", cfg, sum)
		}
	}
}

func TestUpdateProtocolRemovesReReadSharingMisses(t *testing.T) {
	inv := Run(Config{Workload: workload.Multpgm, Window: 3_000_000,
		Warmup: 1_500_000, Seed: 8})
	upd := Run(Config{Workload: workload.Multpgm, Window: 3_000_000,
		Warmup: 1_500_000, Seed: 8, UpdateProtocol: true})
	// Under update coherence the data caches never lose copies to
	// coherence, so ReadEx/Read fills classified Sharing (re-reads
	// after invalidation) are impossible; all Sharing-class events are
	// the broadcasts themselves, and update broadcasts outnumber the
	// invalidate protocol's upgrades.
	if upd.Sim.Bus.Stats.Updates <= inv.Sim.Bus.Stats.Upgrades {
		t.Errorf("updates (%d) should exceed upgrades (%d) on a write-shared load",
			upd.Sim.Bus.Stats.Updates, inv.Sim.Bus.Stats.Upgrades)
	}
}

func TestBypassShiftsMissesToUncached(t *testing.T) {
	std := Run(Config{Workload: workload.Pmake, Window: 3_000_000,
		Warmup: 1_500_000, Seed: 8})
	byp := Run(Config{Workload: workload.Pmake, Window: 3_000_000,
		Warmup: 1_500_000, Seed: 8, BlockOpBypass: true})
	stdUn := std.Trace.Counts[1][0][trace.Uncached]
	bypUn := byp.Trace.Counts[1][0][trace.Uncached]
	if bypUn <= stdUn*10 {
		t.Errorf("bypass should move block-op misses to the Uncached class: %d vs %d",
			bypUn, stdUn)
	}
	// And the block-op D-miss attribution shrinks to near nothing.
	var stdB, bypB int64
	for _, v := range std.Trace.BlockOpDMisses {
		stdB += v
	}
	for _, v := range byp.Trace.BlockOpDMisses {
		bypB += v
	}
	if bypB*2 > stdB {
		t.Errorf("cached block-op misses should collapse under bypass: %d vs %d", bypB, stdB)
	}
}

func TestNegativeWindowClampsToDefault(t *testing.T) {
	cfg := Config{Window: -5, Warmup: -1}.withDefaults()
	if cfg.Window != arch.DefaultWindow {
		t.Errorf("Window = %d, want arch.DefaultWindow (%d)", cfg.Window, arch.DefaultWindow)
	}
	if cfg.Warmup != cfg.Window/2 {
		t.Errorf("Warmup = %d, want Window/2", cfg.Warmup)
	}
}

// TestZeroWindowDefaults pins the canonical defaults: every entry point
// that leaves the window at zero must land on the same 12M-cycle traced
// window (arch.DefaultWindow), not a per-package copy of it.
func TestZeroWindowDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Window != arch.DefaultWindow {
		t.Errorf("Window = %d, want arch.DefaultWindow (%d)", cfg.Window, arch.DefaultWindow)
	}
	if cfg.Warmup != arch.DefaultWindow/2 {
		t.Errorf("Warmup = %d, want %d", cfg.Warmup, arch.DefaultWindow/2)
	}
	if cfg.NCPU != arch.DefaultCPUs {
		t.Errorf("NCPU = %d, want %d", cfg.NCPU, arch.DefaultCPUs)
	}
	if cfg.Seed != 1 {
		t.Errorf("Seed = %d, want 1", cfg.Seed)
	}
}
