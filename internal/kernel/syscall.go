package kernel

import (
	"sort"

	"repro/internal/arch"
	"repro/internal/klock"
	"repro/internal/kmem"
)

// OpKindOf maps a system call to its Table 8 high-level operation.
func OpKindOf(req SyscallReq) OpKind {
	switch req.Kind {
	case SysRead, SysWrite, SysPipeRead, SysPipeWrite:
		// All read/write system calls, including those on pipes and
		// character streams (Table 8 classifies by system call).
		return OpIOSyscall
	case SysSginap:
		return OpSginap
	default:
		return OpOtherSyscall
	}
}

// CountOp records one high-level OS operation (called by the simulator at
// each OS invocation; Figure 2).
func (k *Kernel) CountOp(op OpKind) { k.OpCounts[op]++ }

// inodeIdx hashes a file id onto an in-core inode slot.
func inodeIdx(inode int) int {
	if inode < 0 {
		inode = -inode
	}
	return inode % kmem.NumInodes
}

// bufIdx hashes a file page onto a buffer header.
func bufIdx(key fileKey) int {
	h := key.inode*31 + int(key.page)
	if h < 0 {
		h = -h
	}
	return h % kmem.NumBufs
}

// userFrame returns the physical frame of a mapped user data page to use
// as the user-side of a copy, preferring the process's first mapped data
// page. ok is false when the process has no mapped data page yet.
func (k *Kernel) userFrame(pr *Proc) (arch.PAddr, bool) {
	for _, vp := range pr.FP.DataVPages {
		if pi, ok := pr.pages[vp]; ok && !pi.Code {
			return arch.FrameAddr(pi.Frame), true
		}
	}
	return 0, false
}

// syscallEnter is the common recognition-and-setup path: dispatch, user
// structure access, and the copyin of arguments from user space (the
// "copy of strings or system call parameters" of Table 7).
func (k *Kernel) syscallEnter(p Port, pr *Proc, argBytes int) {
	p.Exec(k.rt.syscall_entry)
	k.touchURest(p, pr, 64, false)
	k.kstackTouch(p, pr, 96, true)
	if argBytes > 0 {
		if ua, ok := k.userFrame(pr); ok {
			dst := k.L.KStackAddr(pr.Slot) + kmem.KStackSize - 512
			k.Bcopy(p, ua, dst, argBytes, "syscall parameters")
		}
	}
}

// syscallExit stores the return values into the user structure.
func (k *Kernel) syscallExit(p Port, pr *Proc) {
	p.Exec(k.rt.syscall_exit)
	k.touchURest(p, pr, 32, true)
}

// Syscall executes one system call. It may return SysBlocked, in which
// case the process sleeps and its continuation runs when rescheduled.
func (k *Kernel) Syscall(p Port, pr *Proc, req SyscallReq) SysStatus {
	switch req.Kind {
	case SysRead:
		return k.doRead(p, pr, req)
	case SysWrite:
		return k.doWrite(p, pr, req)
	case SysOpen:
		return k.doOpen(p, pr, req)
	case SysClose:
		return k.doClose(p, pr, req)
	case SysSpawn:
		return k.doSpawn(p, pr, req)
	case SysSginap:
		return k.doSginap(p, pr)
	case SysNap:
		return k.doNap(p, pr, req)
	case SysPipeRead:
		return k.doPipeRead(p, pr, req)
	case SysPipeWrite:
		return k.doPipeWrite(p, pr, req)
	case SysBrk:
		return k.doBrk(p, pr, req)
	case SysSmall:
		return k.doSmall(p, pr)
	case SysWait:
		return k.doWait(p, pr)
	case SysMisc:
		return k.doMisc(p, pr)
	case SysSemop:
		return k.doSemop(p, pr, req)
	default:
		panic("kernel: unknown syscall")
	}
}

// ---- read / write through the page cache ----

func clampIO(n int) int {
	if n <= 0 {
		return 512
	}
	if n > arch.PageSize {
		return arch.PageSize
	}
	return n
}

func (k *Kernel) doRead(p Port, pr *Proc, req SyscallReq) SysStatus {
	k.syscallEnter(p, pr, 16)
	p.Exec(k.rt.sys_read)
	p.Exec(k.rt.rwuio)
	if req.Raw {
		return k.doReadRaw(p, pr, req)
	}
	key := fileKey{inode: req.Inode, page: req.Offset >> arch.PageShift}
	k.kstackTouchAt(p, pr, 2, 160, true) // rwuio call frames
	k.touchURest(p, pr, 96, false)       // file descriptor and uio state
	ino := k.Locks.Elem(klock.InoX, inodeIdx(req.Inode))
	p.Acquire(ino)
	p.Load(k.L.InodeAddr(inodeIdx(req.Inode)), 64)
	fr, hit := k.fileCache[key]
	if hit && k.F.State(fr) != kmem.StateFree {
		k.readCopyOut(p, pr, fr, req)
		p.Release(ino)
		k.syscallExit(p, pr)
		return SysDone
	}
	p.Release(ino)
	// Page-cache miss: allocate a frame and read from disk.
	fr = k.AllocFrame(p, kmem.FrameBuf, pr.PID, 0)
	k.fileCache[key] = fr
	k.frameFile[fr] = key
	ch := k.startDiskRead(p, key)
	k.SleepProc(p, pr, ch, OpIOSyscall, func(p Port, pr *Proc) SysStatus {
		p.Exec(k.rt.ufs_readwrite)
		k.kstackTouchAt(p, pr, 3, 192, false) // resume the sleeping frames
		ino := k.Locks.Elem(klock.InoX, inodeIdx(req.Inode))
		p.Acquire(ino)
		p.Load(k.L.InodeAddr(inodeIdx(req.Inode)), 64)
		k.readCopyOut(p, pr, fr, req)
		p.Release(ino)
		if k.F.State(fr) == kmem.StateUsed {
			k.F.CacheFrame(fr) // page joins the reclaimable page cache
		}
		k.syscallExit(p, pr)
		return SysDone
	})
	return SysBlocked
}

// physioPin pins the user's buffer pages for DMA (the physio path of raw
// I/O): the page is locked under Memlock and its descriptor updated.
func (k *Kernel) physioPin(p Port, pr *Proc) {
	ua, ok := k.userFrame(pr)
	if !ok {
		return
	}
	mem := k.Locks.Get(klock.Memlock)
	p.Acquire(mem)
	p.Load(k.L.PfdatAddrOfFrame(ua.Frame()), kmem.PfdatEntrySize)
	p.Store(k.L.PfdatAddrOfFrame(ua.Frame()), 8)
	p.Release(mem)
}

// doReadRaw reads from a raw device: the controller DMAs straight into
// the user's buffer, so the CPU copies nothing; the buffer pages are
// pinned and a raw buffer header tracks the transfer.
func (k *Kernel) doReadRaw(p Port, pr *Proc, req SyscallReq) SysStatus {
	ino := k.Locks.Elem(klock.InoX, inodeIdx(req.Inode))
	p.Acquire(ino)
	p.Load(k.L.InodeAddr(inodeIdx(req.Inode)), 64)
	p.Release(ino)
	k.physioPin(p, pr)
	bl := k.Locks.Get(klock.Bfreelock)
	p.Acquire(bl)
	p.Store(k.L.BufHeaderAddr(inodeIdx(req.Inode)%kmem.NumBufs), 64)
	p.Release(bl)
	ch := k.startDiskRead(p, fileKey{inode: req.Inode, page: req.Offset >> arch.PageShift})
	k.SleepProc(p, pr, ch, OpIOSyscall, func(p Port, pr *Proc) SysStatus {
		p.Exec(k.rt.ufs_readwrite)
		p.Store(k.L.InodeAddr(inodeIdx(req.Inode)), 32)
		k.syscallExit(p, pr)
		return SysDone
	})
	return SysBlocked
}

// doWriteRaw appends to a raw device asynchronously (DMA from the user's
// buffer; delayed completion, nobody sleeps).
func (k *Kernel) doWriteRaw(p Port, pr *Proc, req SyscallReq) SysStatus {
	ino := k.Locks.Elem(klock.InoX, inodeIdx(req.Inode))
	p.Acquire(ino)
	p.Load(k.L.InodeAddr(inodeIdx(req.Inode)), 64)
	p.Store(k.L.InodeAddr(inodeIdx(req.Inode)), 32)
	p.Release(ino)
	k.physioPin(p, pr)
	bl := k.Locks.Get(klock.Bfreelock)
	p.Acquire(bl)
	p.Store(k.L.BufHeaderAddr(inodeIdx(req.Inode)%kmem.NumBufs), 64)
	p.Release(bl)
	p.Exec(k.rt.dksc_strategy)
	p.Exec(k.rt.dksc_start)
	p.UncachedRead(kmem.DevRegsBase + 16)
	k.DiskRequests++
	k.postEvent(p.Now()+k.Cfg.DiskLatencyCycles, IntrDisk, NoChan, 0)
	k.syscallExit(p, pr)
	return SysDone
}

// readCopyOut transfers the requested fragment from the cache page to the
// user buffer (a regular page fragment, Table 7) and updates the inode.
func (k *Kernel) readCopyOut(p Port, pr *Proc, fr uint32, req SyscallReq) {
	p.Exec(k.rt.ufs_readwrite)
	n := clampIO(req.Bytes)
	src := arch.FrameAddr(fr) + arch.PAddr(int(req.Offset)&(arch.PageSize-1)&^(arch.BlockSize-1))
	if int(src.Offset())+n > arch.PageSize {
		n = arch.PageSize - int(src.Offset())
	}
	dst, ok := k.userFrame(pr)
	if !ok {
		dst = k.L.HeapScratch(0)
	}
	k.Bcopy(p, src, dst, n, "transfer out of buffer cache")
	p.Store(k.L.InodeAddr(inodeIdx(req.Inode)), 32) // file position
	// The transfer is staged through a buffer header.
	bl := k.Locks.Get(klock.Bfreelock)
	p.Acquire(bl)
	p.Store(k.L.BufHeaderAddr(bufIdx(fileKey{req.Inode, req.Offset >> arch.PageShift})), 64)
	p.Release(bl)
}

// startDiskRead issues the controller request and returns the channel the
// completion interrupt will signal.
func (k *Kernel) startDiskRead(p Port, key fileKey) SleepChan {
	p.Exec(k.rt.bread)
	p.Exec(k.rt.getblk)
	bl := k.Locks.Get(klock.Bfreelock)
	p.Acquire(bl)
	p.Load(k.L.BufHeaderAddr(bufIdx(key)), 64)
	p.Store(k.L.BufHeaderAddr(bufIdx(key)), 32)
	p.Release(bl)
	p.Exec(k.rt.dksc_strategy)
	p.Exec(k.rt.dksc_start)
	p.UncachedRead(kmem.DevRegsBase + 16)
	k.DiskRequests++
	ch := k.NewChan()
	// Disk interrupts are taken on CPU 0 (the controller's CPU).
	k.postEvent(p.Now()+k.Cfg.DiskLatencyCycles+arch.Cycles(len(k.events))*20_000,
		IntrDisk, ch, 0)
	return ch
}

func (k *Kernel) doWrite(p Port, pr *Proc, req SyscallReq) SysStatus {
	k.syscallEnter(p, pr, 16)
	p.Exec(k.rt.sys_write)
	p.Exec(k.rt.rwuio)
	if req.Raw {
		return k.doWriteRaw(p, pr, req)
	}
	k.kstackTouchAt(p, pr, 2, 160, true)
	k.touchURest(p, pr, 96, false)
	key := fileKey{inode: req.Inode, page: req.Offset >> arch.PageShift}
	ino := k.Locks.Elem(klock.InoX, inodeIdx(req.Inode))
	p.Acquire(ino)
	p.Load(k.L.InodeAddr(inodeIdx(req.Inode)), 64)
	fr, hit := k.fileCache[key]
	if !hit || k.F.State(fr) == kmem.StateFree {
		// New file page: allocate the cache page and a disk block.
		fr = k.AllocFrame(p, kmem.FrameBuf, pr.PID, 0)
		k.fileCache[key] = fr
		k.frameFile[fr] = key
		p.Exec(k.rt.fs_balloc)
		dfb := k.Locks.Get(klock.Dfbmaplk)
		p.Acquire(dfb)
		p.Load(k.L.Dfbmap.Base+arch.PAddr(k.Rand.Intn(64)*64), 64)
		p.Store(k.L.Dfbmap.Base+arch.PAddr(k.Rand.Intn(64)*64), 16)
		p.Release(dfb)
		defer func() {
			if k.F.State(fr) == kmem.StateUsed {
				k.F.CacheFrame(fr)
			}
		}()
	}
	// Copy the fragment from user space into the cache page (delayed
	// write — no sleep).
	n := clampIO(req.Bytes)
	dst := arch.FrameAddr(fr) + arch.PAddr(int(req.Offset)&(arch.PageSize-1)&^(arch.BlockSize-1))
	if int(dst.Offset())+n > arch.PageSize {
		n = arch.PageSize - int(dst.Offset())
	}
	src, ok := k.userFrame(pr)
	if !ok {
		src = k.L.HeapScratch(0)
	}
	k.Bcopy(p, src, dst, n, "transfer into buffer cache")
	p.Store(k.L.InodeAddr(inodeIdx(req.Inode)), 32)
	p.Store(k.L.BufHeaderAddr(bufIdx(key)), 64)
	// Periodic delayed write-back to disk (asynchronous: nobody sleeps).
	if k.Rand.Intn(4) == 0 {
		p.Exec(k.rt.bwrite)
		p.Exec(k.rt.dksc_strategy)
		p.UncachedRead(kmem.DevRegsBase + 16)
		k.DiskRequests++
		k.postEvent(p.Now()+k.Cfg.DiskLatencyCycles, IntrDisk, NoChan, 0)
	}
	p.Release(ino)
	k.syscallExit(p, pr)
	return SysDone
}

// ---- open / close ----

func (k *Kernel) doOpen(p Port, pr *Proc, req SyscallReq) SysStatus {
	k.syscallEnter(p, pr, 32) // the path name
	p.Exec(k.rt.sys_open)
	p.Exec(k.rt.namei)
	// Directory lookup touches a couple of in-core inodes.
	p.Load(k.L.InodeAddr(inodeIdx(req.Inode/7)), 64)
	p.Load(k.L.InodeAddr(inodeIdx(req.Inode/3)), 64)
	p.Exec(k.rt.iget)
	ifr := k.Locks.Get(klock.Ifree)
	p.Acquire(ifr)
	p.Load(k.L.InodeAddr(inodeIdx(req.Inode)), 32)
	p.Store(k.L.InodeAddr(inodeIdx(req.Inode)), 64)
	p.Release(ifr)
	// Initialize the inode-related in-core structures (an irregular
	// clear, Table 7).
	k.Bclear(p, k.L.HeapScratch(96*1024+(inodeIdx(req.Inode)%64)*512), 288, "kernel structure init")
	k.touchURest(p, pr, 64, true) // new file descriptor
	k.syscallExit(p, pr)
	return SysDone
}

func (k *Kernel) doClose(p Port, pr *Proc, req SyscallReq) SysStatus {
	k.syscallEnter(p, pr, 8)
	p.Exec(k.rt.sys_close)
	p.Exec(k.rt.iput)
	ifr := k.Locks.Get(klock.Ifree)
	p.Acquire(ifr)
	p.Store(k.L.InodeAddr(inodeIdx(req.Inode)), 32)
	p.Release(ifr)
	k.touchURest(p, pr, 32, true)
	k.syscallExit(p, pr)
	return SysDone
}

// ---- process management ----

func (k *Kernel) doSpawn(p Port, pr *Proc, req SyscallReq) SysStatus {
	spec := req.Child
	k.syscallEnter(p, pr, 64) // argv strings
	p.Exec(k.rt.sys_fork)
	p.Exec(k.rt.newproc)
	slot := k.freeSlot()
	child := &Proc{
		PID:           k.nextPID,
		Slot:          slot,
		Name:          spec.Name,
		State:         StateReady,
		Behavior:      spec.Behavior,
		pages:         make(map[uint32]PageInfo),
		image:         spec.Image,
		sleepOn:       NoChan,
		ChildExitChan: k.NewChan(),
		LastCPU:       -1,
		Parent:        pr,
	}
	k.nextPID++
	k.procs[slot] = child
	k.initFootprint(child, spec)
	pr.LiveChildren++
	k.Spawns++
	// Initialize the child's table entry and user structure.
	k.touchProcEntry(p, child, 256, true)
	k.Bclear(p, k.L.UStructAddr(slot), 512, "kernel structure init")
	// A fresh page-table page is allocated and zeroed (Table 7: full-
	// page clear for page table entries).
	k.Bclear(p, k.ptPageAddr(child), arch.PageSize, "page table page")
	// Copy-on-write: the child updates a couple of the parent's data
	// pages immediately (stack, environment) — full-page copies.
	cow := 0
	if k.Rand.Intn(2) == 0 {
		cow = 1 // this exec overlays everything before any write
	}
	for _, vp := range pr.FP.DataVPages {
		if cow == 1 {
			break
		}
		pi, ok := pr.pages[vp]
		if !ok || pi.Code {
			continue
		}
		nfr := k.AllocFrame(p, kmem.FrameData, child.PID, vp)
		k.Bcopy(p, arch.FrameAddr(pi.Frame), arch.FrameAddr(nfr),
			arch.PageSize, "copy-on-write page")
		if int(vp)-DataVBase < len(child.FP.DataVPages) {
			child.pages[vp] = PageInfo{Frame: nfr}
			p.Store(k.ptAddr(child, vp), 4)
		} else {
			// The child's layout lacks this page; treat the frame
			// as its first data page anyway.
			child.pages[vp] = PageInfo{Frame: nfr}
			p.Store(k.ptAddr(child, vp), 4)
		}
		cow++
	}
	// Exec: name lookup and image header load; text pages are mapped
	// lazily and fault in on demand (shared with the text cache).
	p.Exec(k.rt.sys_exec)
	p.Exec(k.rt.namei)
	p.Load(k.L.InodeAddr(inodeIdx(int(child.PID))), 64)
	p.Exec(k.rt.load_image)
	if spec.Image != nil {
		k.textRef[spec.Image.ID]++
	}
	k.setrq(p, child)
	k.syscallExit(p, pr)
	return SysDone
}

// ExitProc terminates a process: free its private pages, release its text
// reference (caching the text frames for future execs), invalidate its TLB
// entries everywhere, and wake its parent.
func (k *Kernel) ExitProc(p Port, pr *Proc) SysStatus {
	k.syscallEnter(p, pr, 0)
	p.Exec(k.rt.sys_exit)
	// Free pages in ascending virtual order (deterministic across runs;
	// Go map iteration order is randomized).
	vps := make([]uint32, 0, len(pr.pages))
	for vp := range pr.pages {
		vps = append(vps, vp)
	}
	sort.Slice(vps, func(i, j int) bool { return vps[i] < vps[j] })
	for _, vp := range vps {
		pi := pr.pages[vp]
		switch {
		case pi.Code:
			// Text frames are owned by the text cache (textRef).
		case pi.Shared:
			// Shared data frames are freed by the last unmapper.
			k.sharedRef[pi.Frame]--
			if k.sharedRef[pi.Frame] <= 0 {
				delete(k.sharedRef, pi.Frame)
				k.FreeFrame(p, pi.Frame)
			}
		default:
			k.FreeFrame(p, pi.Frame)
		}
		delete(pr.pages, vp)
	}
	if pr.image != nil {
		k.textRef[pr.image.ID]--
		if k.textRef[pr.image.ID] == 0 {
			for _, fr := range k.textCache[pr.image.ID] {
				if fr != 0 && k.F.State(fr) == kmem.StateUsed {
					k.F.CacheFrame(fr)
					k.TextCacheEvents++
				}
			}
		}
	}
	p.TLBInvalidatePID(pr.PID)
	k.touchProcEntry(p, pr, 128, true)
	pr.State = StateZombie
	if pr.Parent != nil {
		pr.Parent.LiveChildren--
		k.Wakeup(p, pr.Parent.ChildExitChan)
	}
	k.Exits++
	// Auto-reap: free the slot.
	pr.State = StateFree
	k.procs[pr.Slot] = nil
	return SysExited
}

func (k *Kernel) doWait(p Port, pr *Proc) SysStatus {
	k.syscallEnter(p, pr, 8)
	p.Exec(k.rt.sys_wait)
	if pr.LiveChildren == 0 {
		k.syscallExit(p, pr)
		return SysDone
	}
	k.SleepProc(p, pr, pr.ChildExitChan, OpOtherSyscall, func(p Port, pr *Proc) SysStatus {
		k.syscallExit(p, pr)
		return SysDone
	})
	return SysBlocked
}

// ---- scheduling-related calls ----

func (k *Kernel) doSginap(p Port, pr *Proc) SysStatus {
	k.syscallEnter(p, pr, 0)
	p.Exec(k.rt.sys_sginap)
	k.touchProcEntry(p, pr, 32, true)
	k.syscallExit(p, pr)
	return SysYield
}

func (k *Kernel) doNap(p Port, pr *Proc, req SyscallReq) SysStatus {
	k.syscallEnter(p, pr, 8)
	p.Exec(k.rt.sys_small)
	p.Exec(k.rt.timeout)
	ca := k.Locks.Get(klock.Calock)
	p.Acquire(ca)
	p.Store(k.L.Callout.Base+arch.PAddr(16*(int(pr.PID)%64)), 16)
	p.Release(ca)
	ch := k.NewChan()
	k.addTimer(p.Now()+req.Dur, ch)
	k.SleepProc(p, pr, ch, OpOtherSyscall, func(p Port, pr *Proc) SysStatus {
		k.syscallExit(p, pr)
		return SysDone
	})
	return SysBlocked
}

// ---- pipes (terminal streams) ----

func (k *Kernel) doPipeRead(p Port, pr *Proc, req SyscallReq) SysStatus {
	k.syscallEnter(p, pr, 8)
	p.Exec(k.rt.str_read)
	p.Exec(k.rt.pipe_rw)
	pipe := req.Pipe
	str := k.Locks.Elem(klock.StreamsX, pipe.ID)
	p.Acquire(str)
	if pipe.Buffered == 0 {
		p.Release(str)
		k.SleepProc(p, pr, pipe.readCh, OpOtherSyscall, func(p Port, pr *Proc) SysStatus {
			return k.finishPipeRead(p, pr, req)
		})
		return SysBlocked
	}
	st := k.finishPipeReadLocked(p, pr, req)
	p.Release(str)
	return st
}

func (k *Kernel) finishPipeRead(p Port, pr *Proc, req SyscallReq) SysStatus {
	p.Exec(k.rt.pipe_rw)
	str := k.Locks.Elem(klock.StreamsX, req.Pipe.ID)
	p.Acquire(str)
	st := k.finishPipeReadLocked(p, pr, req)
	p.Release(str)
	return st
}

func (k *Kernel) finishPipeReadLocked(p Port, pr *Proc, req SyscallReq) SysStatus {
	pipe := req.Pipe
	n := req.Bytes
	if n <= 0 || n > pipe.Buffered {
		n = pipe.Buffered
	}
	if n > 0 {
		src := k.pipeBufAddr(pipe)
		if ua, ok := k.userFrame(pr); ok {
			k.Bcopy(p, src, ua, n, "pipe data")
		} else {
			p.Load(src, n)
		}
		pipe.Buffered -= n
	}
	k.syscallExit(p, pr)
	return SysDone
}

func (k *Kernel) doPipeWrite(p Port, pr *Proc, req SyscallReq) SysStatus {
	k.syscallEnter(p, pr, 8)
	p.Exec(k.rt.str_write)
	p.Exec(k.rt.pipe_rw)
	p.Exec(k.rt.tty_ld)
	pipe := req.Pipe
	str := k.Locks.Elem(klock.StreamsX, pipe.ID)
	p.Acquire(str)
	n := req.Bytes
	if n <= 0 {
		n = 1
	}
	if ua, ok := k.userFrame(pr); ok {
		k.Bcopy(p, ua, k.pipeBufAddr(pipe), n, "pipe data")
	} else {
		p.Store(k.pipeBufAddr(pipe), n)
	}
	pipe.Buffered += n
	k.Wakeup(p, pipe.readCh)
	p.Release(str)
	k.syscallExit(p, pr)
	return SysDone
}

// pipeBufAddr places each pipe's staging buffer in the kernel heap's
// scratch area (past the page-table pages).
func (k *Kernel) pipeBufAddr(pipe *Pipe) arch.PAddr {
	return k.L.HeapScratch((pipe.ID%32)*1024 + 32*1024)
}

// ---- misc ----

func (k *Kernel) doBrk(p Port, pr *Proc, req SyscallReq) SysStatus {
	k.syscallEnter(p, pr, 8)
	p.Exec(k.rt.sys_brk)
	pages := req.Bytes / arch.PageSize
	if pages < 1 {
		pages = 1
	}
	next := uint32(DataVBase + len(pr.FP.DataVPages))
	for i := 0; i < pages; i++ {
		pr.FP.DataVPages = append(pr.FP.DataVPages, next+uint32(i))
	}
	// The reference generator caches the combined page list; the new
	// pages must become visible to it.
	pr.FP.AllData = nil
	k.touchURest(p, pr, 32, true)
	k.syscallExit(p, pr)
	return SysDone
}

func (k *Kernel) doSmall(p Port, pr *Proc) SysStatus {
	k.syscallEnter(p, pr, 0)
	p.Exec(k.rt.sys_small)
	k.touchURest(p, pr, 16, false)
	k.syscallExit(p, pr)
	return SysDone
}

// doSemop operates on a System V semaphore: the Semlock array protects the
// user-visible semaphores (Table 11) — the database's inter-process
// coordination runs through here.
func (k *Kernel) doSemop(p Port, pr *Proc, req SyscallReq) SysStatus {
	k.syscallEnter(p, pr, 16)
	p.Exec(k.rt.sys_small)
	// A TP1 transaction locks several rows in one semop call (teller,
	// branch, account, history): one Semlock operation per sembuf.
	for i := 0; i < 4; i++ {
		sem := k.Locks.Elem(klock.Semlock, req.Sem+i)
		p.Acquire(sem)
		p.Load(k.L.HeapScratch(64*1024+((req.Sem+i)%32)*64), 32)
		p.Store(k.L.HeapScratch(64*1024+((req.Sem+i)%32)*64), 16)
		p.Release(sem)
	}
	k.syscallExit(p, pr)
	return SysDone
}

// doMisc executes one of the cold filler routines: the long tail of kernel
// code (ioctl paths, signal delivery, accounting, ...).
func (k *Kernel) doMisc(p Port, pr *Proc) SysStatus {
	k.syscallEnter(p, pr, 16)
	f := k.T.Fillers[k.Rand.Intn(len(k.T.Fillers))]
	p.Exec(f)
	p.Exec(k.rt.proc_misc)
	k.touchURest(p, pr, 64, true)
	k.syscallExit(p, pr)
	return SysDone
}
