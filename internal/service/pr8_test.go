// Tests for the intra-run parallel-engine plumbing: the total-worker
// budget clamp, the per-job sim-worker and throughput observability in
// /v1/metrics, and report identity between serial and parallel-engine
// jobs (SimWorkers is hash-neutral, so both land on one cache slot).
package service

import (
	"context"
	"testing"
)

// parReq is a config the conservative parallel engine accepts (more
// than one CPU, no checker).
func parReq(seed int64, simWorkers int) Request {
	return Request{Workload: "Oracle", NCPU: 4, Seed: seed,
		Window: 300_000, Warmup: 100_000, SimWorkers: simWorkers}
}

// TestSimWorkersBudgetClamp: with a total-worker budget, a job's
// requested intra-run parallelism is clamped so pool ceiling × sim
// workers never exceeds it.
func TestSimWorkersBudgetClamp(t *testing.T) {
	srv, cl := newTestServer(t, Options{Workers: 2, MaxTotalWorkers: 6})
	defer srv.Drain()

	// 6/2 = 3 sim workers at most; the request asks for 16.
	st, err := cl.Submit(context.Background(), parReq(31, 16))
	if err != nil || st.State != StateDone {
		t.Fatalf("st=%+v err=%v", st, err)
	}
	if st.SimWorkers != 3 {
		t.Errorf("job ran with %d sim workers, want 3 (budget 6 / 2 pool workers)", st.SimWorkers)
	}
	if st.MCyclesPerSec <= 0 {
		t.Errorf("job reports no simulated throughput: %+v", st)
	}
}

// TestSimWorkersDefaultAndJobMetrics: the server-level default applies
// to jobs that request nothing, /v1/metrics lists per-job sim workers
// and Mcycles/s, and a dedup follower honestly reports zero for both —
// it executed nothing.
func TestSimWorkersDefaultAndJobMetrics(t *testing.T) {
	srv, cl := newTestServer(t, Options{Workers: 1, SimWorkers: 2})
	defer srv.Drain()
	ctx := context.Background()

	st, err := cl.Submit(ctx, parReq(32, 0))
	if err != nil || st.State != StateDone {
		t.Fatalf("leader: st=%+v err=%v", st, err)
	}
	if st.SimWorkers != 2 {
		t.Errorf("leader ran with %d sim workers, want the server default 2", st.SimWorkers)
	}
	// Same config again: a pure cache hit. SimWorkers is hash-neutral,
	// so the follower dedups onto the leader's result — but reports no
	// execution stats of its own.
	st2, err := cl.Submit(ctx, parReq(32, 0))
	if err != nil || st2.State != StateDone {
		t.Fatalf("follower: st=%+v err=%v", st2, err)
	}
	if st2.Report != st.Report {
		t.Error("dedup follower got a different report than the leader")
	}
	if st2.SimWorkers != 0 || st2.MCyclesPerSec != 0 {
		t.Errorf("follower inherited execution stats it never earned: %+v", st2)
	}

	m := srv.Metrics()
	if len(m.Jobs) != 2 {
		t.Fatalf("metrics list %d jobs, want 2", len(m.Jobs))
	}
	if m.Jobs[0].SimWorkers != 2 || m.Jobs[0].MCyclesPerSec <= 0 {
		t.Errorf("leader metrics %+v: want 2 sim workers and positive throughput", m.Jobs[0])
	}
	if m.Jobs[1].SimWorkers != 0 || m.Jobs[1].MCyclesPerSec != 0 {
		t.Errorf("follower metrics %+v: want zero execution stats", m.Jobs[1])
	}
}

// TestParallelEngineReportIdentity: a job run on the parallel engine
// must return the byte-identical report of a serial job with the same
// config — through the whole service stack.
func TestParallelEngineReportIdentity(t *testing.T) {
	srv, cl := newTestServer(t, Options{Workers: 1})
	defer srv.Drain()
	ctx := context.Background()

	serial, err := cl.Submit(ctx, parReq(33, 1))
	if err != nil || serial.State != StateDone {
		t.Fatalf("serial: st=%+v err=%v", serial, err)
	}
	// Distinct seed bypasses the cache; then compare against a serial
	// run of that same seed via the hash-neutrality of SimWorkers: the
	// parallel job must be a cache MISS only if the serial one never
	// ran. Use a fresh server to force a real parallel execution.
	srv2, cl2 := newTestServer(t, Options{Workers: 1})
	defer srv2.Drain()
	par, err := cl2.Submit(ctx, parReq(33, 4))
	if err != nil || par.State != StateDone {
		t.Fatalf("parallel: st=%+v err=%v", par, err)
	}
	if par.SimWorkers != 4 {
		t.Errorf("parallel job ran with %d sim workers, want 4", par.SimWorkers)
	}
	if par.Report != serial.Report {
		t.Error("parallel-engine report differs from the serial engine's")
	}
}
