package report

import (
	"testing"

	"repro/internal/core"
)

// TestReportsByteIdenticalPerSeed is the replay guarantee the fault
// injector depends on: two runs with the same seed must render every
// table and figure byte-for-byte identically, so an injected-fault
// failure can always be reproduced from its seed alone.
func TestReportsByteIdenticalPerSeed(t *testing.T) {
	run := func() string {
		return All(RunSet(core.Config{Window: 600_000, Warmup: 300_000, Seed: 11, Check: true}))
	}
	a, b := run(), run()
	if a != b {
		// Find the first divergent line for a useful failure message.
		la, lb := splitLines(a), splitLines(b)
		for i := 0; i < len(la) && i < len(lb); i++ {
			if la[i] != lb[i] {
				t.Fatalf("reports diverge at line %d:\n  run1: %s\n  run2: %s", i+1, la[i], lb[i])
			}
		}
		t.Fatalf("reports differ in length: %d vs %d bytes", len(a), len(b))
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return append(out, s[start:])
}
