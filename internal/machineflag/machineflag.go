// Package machineflag is the shared CLI surface of the runtime machine
// model: a -machine preset flag plus individual geometry override flags,
// registered identically by all three commands (charos, lockstat, sweep).
package machineflag

import (
	"flag"
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/arch"
)

// Preset resolves a -machine preset name to its descriptor.
func Preset(name string) (arch.Machine, error) {
	switch strings.ToLower(name) {
	case "", "4d340":
		// The measured SGI 4D/340: 4×33 MHz, 64 KB I, 64 KB + 256 KB D,
		// 32 MB memory.
		return arch.Default(), nil
	case "4d380":
		// A 4D/380-like top configuration: twice the CPUs and memory of
		// the measured machine, same cache geometry.
		m := arch.Default()
		m.NCPU = 8
		m.MemBytes = 64 * 1024 * 1024
		return m, nil
	default:
		return arch.Machine{}, fmt.Errorf("unknown machine preset %q (have: 4d340, 4d380)", name)
	}
}

// ParseSize parses a byte count with an optional K/M suffix ("256K",
// "1M", "65536").
func ParseSize(s string) (int, error) {
	mult := 1
	t := strings.TrimSpace(s)
	switch {
	case strings.HasSuffix(t, "K"), strings.HasSuffix(t, "k"):
		mult, t = 1<<10, t[:len(t)-1]
	case strings.HasSuffix(t, "M"), strings.HasSuffix(t, "m"):
		mult, t = 1<<20, t[:len(t)-1]
	}
	n, err := strconv.Atoi(t)
	if err != nil {
		return 0, fmt.Errorf("bad size %q (want bytes with optional K/M suffix)", s)
	}
	return n * mult, nil
}

// ParseCycles parses a simulated-cycle count with an optional decimal
// K/M/G suffix ("800K", "12M", "1G" — 1e3/1e6/1e9, cycles are not bytes)
// or scientific notation ("1e9", "2.5e8"). Plain digit strings parse as
// before, so existing invocations keep working. The value must be a
// non-negative integer that fits in an int64.
func ParseCycles(s string) (int64, error) {
	t := strings.TrimSpace(s)
	mult := int64(1)
	if len(t) > 0 {
		switch t[len(t)-1] {
		case 'K', 'k':
			mult, t = 1_000, t[:len(t)-1]
		case 'M', 'm':
			mult, t = 1_000_000, t[:len(t)-1]
		case 'G', 'g':
			mult, t = 1_000_000_000, t[:len(t)-1]
		}
	}
	if t == "" {
		return 0, fmt.Errorf("bad cycle count %q (want digits with optional K/M/G suffix or scientific notation)", s)
	}
	if n, err := strconv.ParseInt(t, 10, 64); err == nil {
		if n < 0 {
			return 0, fmt.Errorf("bad cycle count %q (must be non-negative)", s)
		}
		if n > math.MaxInt64/mult {
			return 0, fmt.Errorf("bad cycle count %q (overflows int64)", s)
		}
		return n * mult, nil
	}
	// Scientific or fractional notation: "1e9", "2.5e8", "1.5M".
	f, err := strconv.ParseFloat(t, 64)
	if err != nil {
		return 0, fmt.Errorf("bad cycle count %q (want digits with optional K/M/G suffix or scientific notation)", s)
	}
	v := f * float64(mult)
	if v < 0 {
		return 0, fmt.Errorf("bad cycle count %q (must be non-negative)", s)
	}
	// Beyond 2^53 the float mantissa can no longer represent every
	// integer, so "exact" stops being meaningful — and no simulated
	// window comes near it.
	if v > 1<<53 {
		return 0, fmt.Errorf("bad cycle count %q (too large)", s)
	}
	if v != math.Trunc(v) {
		return 0, fmt.Errorf("bad cycle count %q (not a whole number of cycles)", s)
	}
	return int64(v), nil
}

// cyclesValue adapts an int64 cycle count to flag.Value with ParseCycles
// syntax.
type cyclesValue int64

func (c *cyclesValue) String() string { return strconv.FormatInt(int64(*c), 10) }

func (c *cyclesValue) Set(s string) error {
	n, err := ParseCycles(s)
	if err != nil {
		return err
	}
	*c = cyclesValue(n)
	return nil
}

// CyclesFlag registers a cycle-count flag on fs that accepts K/M/G
// suffixes and scientific notation ("-window 1e9"), returning the value
// pointer like fs.Int64 would. Every -window and -warmup flag routes
// through this one parser.
func CyclesFlag(fs *flag.FlagSet, name string, def int64, usage string) *int64 {
	p := new(int64)
	*p = def
	fs.Var((*cyclesValue)(p), name, usage)
	return p
}

// Flags holds the registered flag values until Machine resolves them.
type Flags struct {
	preset      *string
	icache      *string
	icacheAssoc *int
	dl1         *string
	dl1Assoc    *int
	dl2         *string
	dl2Assoc    *int
	mem         *string
	tlb         *int
	missStall   *int
	l2Stall     *int
}

// Register installs the -machine preset flag and the geometry override
// flags on fs (use flag.CommandLine for a command's default set). Call
// Machine after fs.Parse to resolve them.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	f.preset = fs.String("machine", "4d340",
		"machine preset: 4d340 (the measured machine) or 4d380 (8 CPUs, 64 MB)")
	f.icache = fs.String("icache", "", "override I-cache size (bytes; K/M suffix ok)")
	f.icacheAssoc = fs.Int("icache-assoc", 0, "override I-cache associativity (0 = preset)")
	f.dl1 = fs.String("dcache-l1", "", "override first-level D-cache size (bytes; K/M suffix ok)")
	f.dl1Assoc = fs.Int("dcache-l1-assoc", 0, "override first-level D-cache associativity (0 = preset)")
	f.dl2 = fs.String("dcache-l2", "", "override second-level D-cache size (bytes; K/M suffix ok)")
	f.dl2Assoc = fs.Int("dcache-l2-assoc", 0, "override second-level D-cache associativity (0 = preset)")
	f.mem = fs.String("mem", "", "override main-memory size (bytes; K/M suffix ok)")
	f.tlb = fs.Int("tlb", 0, "override TLB entries per CPU (0 = preset)")
	f.missStall = fs.Int("miss-stall", 0, "override per-bus-access stall cycles (0 = preset)")
	f.l2Stall = fs.Int("l2hit-stall", -1, "override L1-miss/L2-hit stall cycles (-1 = preset)")
	return f
}

// Machine resolves the preset plus overrides into a validated descriptor.
func (f *Flags) Machine() (arch.Machine, error) {
	m, err := Preset(*f.preset)
	if err != nil {
		return m, err
	}
	size := func(dst *int, s string) error {
		if s == "" {
			return nil
		}
		n, err := ParseSize(s)
		if err != nil {
			return err
		}
		*dst = n
		return nil
	}
	if err := size(&m.ICacheSize, *f.icache); err != nil {
		return m, err
	}
	if err := size(&m.DCacheL1Size, *f.dl1); err != nil {
		return m, err
	}
	if err := size(&m.DCacheL2Size, *f.dl2); err != nil {
		return m, err
	}
	if err := size(&m.MemBytes, *f.mem); err != nil {
		return m, err
	}
	if *f.icacheAssoc > 0 {
		m.ICacheAssoc = *f.icacheAssoc
	}
	if *f.dl1Assoc > 0 {
		m.DCacheL1Assoc = *f.dl1Assoc
	}
	if *f.dl2Assoc > 0 {
		m.DCacheL2Assoc = *f.dl2Assoc
	}
	if *f.tlb > 0 {
		m.TLBEntries = *f.tlb
	}
	if *f.missStall > 0 {
		m.MissStallCycles = arch.Cycles(*f.missStall)
	}
	if *f.l2Stall >= 0 {
		m.L1MissL2HitCycles = arch.Cycles(*f.l2Stall)
	}
	return m, m.Validate()
}
