package cluster

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/bus"
	"repro/internal/kmem"
	"repro/internal/monitor"
)

func newAnalyzer() (*Analyzer, *kmem.Layout) {
	l := kmem.NewLayout(arch.Default())
	return NewAnalyzer(l, 8), l
}

func txn(cpu arch.CPUID, addr arch.PAddr) bus.Txn {
	return bus.Txn{Kind: bus.TxnRead, CPU: cpu, Addr: addr}
}

func TestKernelTextHoming(t *testing.T) {
	a, l := newAnalyzer()
	text := l.KernelText.Base + 0x100
	trace := []bus.Txn{txn(0, text), txn(7, text)} // clusters 0 and 3
	base := a.Analyze(trace, Policy{ClusterSize: 2})
	if base.LocalMisses != 1 || base.RemoteMisses != 1 {
		t.Fatalf("baseline: local=%d remote=%d, want 1/1", base.LocalMisses, base.RemoteMisses)
	}
	rep := a.Analyze(trace, Policy{ClusterSize: 2, ReplicateText: true})
	if rep.RemoteMisses != 0 {
		t.Fatalf("replicated text: remote=%d, want 0", rep.RemoteMisses)
	}
	if rep.StallCycles >= base.StallCycles {
		t.Error("replication did not reduce stall")
	}
}

func TestPerProcessStateFollowsProcess(t *testing.T) {
	a, l := newAnalyzer()
	kstack := l.KStackAddr(5)
	trace := []bus.Txn{txn(6, kstack)} // cluster 3 touches a kernel stack
	base := a.Analyze(trace, Policy{ClusterSize: 2})
	if base.RemoteMisses != 1 {
		t.Fatalf("baseline kstack should be remote (homed in cluster 0): %+v", base)
	}
	dist := a.Analyze(trace, Policy{ClusterSize: 2, DistributeRunQueue: true})
	if dist.RemoteMisses != 0 {
		t.Fatalf("distributed runq: kstack should be local: %+v", dist)
	}
	// Non-per-process kernel data (the inode table) stays centralized.
	trace2 := []bus.Txn{txn(6, l.InodeTable.Base)}
	d2 := a.Analyze(trace2, Policy{ClusterSize: 2, DistributeRunQueue: true})
	if d2.RemoteMisses != 1 {
		t.Errorf("inode table should remain homed in cluster 0: %+v", d2)
	}
}

func TestFirstTouchPlacement(t *testing.T) {
	a, _ := newAnalyzer()
	user := arch.FrameAddr(kmem.FirstUserFrame + 5)
	trace := []bus.Txn{
		txn(2, user), // cluster 1 first-touches → home 1
		txn(3, user), // same cluster → local
		txn(0, user), // cluster 0 → remote
	}
	r := a.Analyze(trace, Policy{ClusterSize: 2})
	if r.LocalMisses != 2 || r.RemoteMisses != 1 {
		t.Fatalf("first-touch: local=%d remote=%d, want 2/1", r.LocalMisses, r.RemoteMisses)
	}
	// With local block transfers, misses alone still do NOT re-home —
	// shared pages keep a stable home.
	r2 := a.Analyze(trace, Policy{ClusterSize: 2, LocalBlockTransfers: true})
	if r2.RemoteMisses != 1 {
		t.Fatalf("local transfers, misses only: remote=%d, want 1", r2.RemoteMisses)
	}
	// A page-allocation escape (the frame recycled to a new owner)
	// re-homes the frame in the allocating CPU's cluster.
	frame := uint32(user.Frame())
	trace3 := []bus.Txn{txn(2, user)} // cluster 1 first-touches → home 1
	trace3 = append(trace3, escTxns(0, monitor.EvPageAlloc, frame, 0)...)
	trace3 = append(trace3, txn(1, user)) // cluster 0 reads → now local
	r3 := a.Analyze(trace3, Policy{ClusterSize: 2, LocalBlockTransfers: true})
	if r3.LocalMisses != 2 || r3.RemoteMisses != 0 {
		t.Fatalf("re-home on page alloc: local=%d remote=%d, want 2/0",
			r3.LocalMisses, r3.RemoteMisses)
	}
	// Without the policy the allocation does not re-home.
	r4 := a.Analyze(trace3, Policy{ClusterSize: 2})
	if r4.RemoteMisses != 1 {
		t.Fatalf("baseline alloc re-homed: remote=%d, want 1", r4.RemoteMisses)
	}
}

// escTxns encodes one instrumentation event as its uncached bus reads.
func escTxns(cpu arch.CPUID, ev monitor.Event, args ...uint32) []bus.Txn {
	out := []bus.Txn{{Kind: bus.TxnUncached, CPU: cpu, Addr: monitor.EventAddr(ev)}}
	for _, v := range args {
		out = append(out, bus.Txn{Kind: bus.TxnUncached, CPU: cpu, Addr: monitor.OperandAddr(v)})
	}
	return out
}

func TestUpgradesNotPricedAsMisses(t *testing.T) {
	a, _ := newAnalyzer()
	user := arch.FrameAddr(kmem.FirstUserFrame + 9)
	trace := []bus.Txn{
		txn(0, user),
		{Kind: bus.TxnUpgrade, CPU: 0, Addr: user},
		{Kind: bus.TxnUpdate, CPU: 0, Addr: user},
	}
	r := a.Analyze(trace, Policy{ClusterSize: 2})
	if r.Misses != 1 {
		t.Errorf("coherence broadcasts priced as misses: %d, want 1", r.Misses)
	}
	// The broadcasts still pay the interconnect: the frame is homed in
	// CPU 0's own cluster, so both cost the local round trip.
	if r.CoherenceCycles != 2*LocalCycles {
		t.Errorf("CoherenceCycles = %d, want %d", r.CoherenceCycles, 2*LocalCycles)
	}
	// A broadcast from another cluster pays the remote price.
	trace2 := []bus.Txn{
		txn(0, user),
		{Kind: bus.TxnUpgrade, CPU: 7, Addr: user},
	}
	r2 := a.Analyze(trace2, Policy{ClusterSize: 2})
	if r2.CoherenceCycles != RemoteCycles {
		t.Errorf("remote broadcast = %d cycles, want %d", r2.CoherenceCycles, RemoteCycles)
	}
}

func TestEscapesAndWriteBacksIgnored(t *testing.T) {
	a, _ := newAnalyzer()
	trace := []bus.Txn{
		{Kind: bus.TxnUncached, CPU: 0, Addr: monitor.EventAddr(monitor.EvExitOS)},
		{Kind: bus.TxnWriteBack, CPU: 0, Addr: 0x4000},
	}
	r := a.Analyze(trace, Policy{ClusterSize: 2})
	if r.Misses != 0 {
		t.Errorf("instrumentation/writebacks counted as misses: %+v", r)
	}
	// A genuine uncached device read does count.
	dev := []bus.Txn{{Kind: bus.TxnUncached, CPU: 0, Addr: kmem.DevRegsBase}}
	if r := a.Analyze(dev, Policy{ClusterSize: 2}); r.Misses != 1 {
		t.Errorf("device read not counted: %+v", r)
	}
}

func TestStudyLadderMonotone(t *testing.T) {
	a, l := newAnalyzer()
	_ = a
	// Synthetic mixed trace: text misses from all clusters, kernel
	// stacks, and user pages.
	var trace []bus.Txn
	for i := 0; i < 100; i++ {
		cpu := arch.CPUID(i % 8)
		trace = append(trace,
			txn(cpu, l.KernelText.Base+arch.PAddr(i*64)),
			txn(cpu, l.KStackAddr(i%16)),
			txn(cpu, arch.FrameAddr(kmem.FirstUserFrame+uint32(i%32))))
	}
	results := Study(trace, l, 8, 2)
	if len(results) != 4 {
		t.Fatalf("ladder size = %d", len(results))
	}
	for i := 1; i < len(results); i++ {
		if results[i].StallCycles > results[i-1].StallCycles {
			t.Errorf("policy %q increased stall over %q",
				results[i].Policy.Name(), results[i-1].Policy.Name())
		}
	}
	out := Render(results, "synthetic")
	for _, want := range []string{"Section 6 cluster study", "replicated OS text",
		"distributed runq", "all §6 optimizations", "centralized (baseline)"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestPolicyNames(t *testing.T) {
	cases := map[string]Policy{
		"centralized (baseline)": {},
		"replicated OS text":     {ReplicateText: true},
		"distributed run queue":  {DistributeRunQueue: true},
		"local block transfers":  {LocalBlockTransfers: true},
	}
	for want, p := range cases {
		if got := p.Name(); got != want {
			t.Errorf("Name(%+v) = %q, want %q", p, got, want)
		}
	}
}

func TestResultAccessors(t *testing.T) {
	r := Result{Misses: 4, RemoteMisses: 1, StallCycles: 4 * 50}
	if r.RemoteShare() != 0.25 {
		t.Errorf("RemoteShare = %v", r.RemoteShare())
	}
	if r.AvgLatency() != 50 {
		t.Errorf("AvgLatency = %v", r.AvgLatency())
	}
	var zero Result
	if zero.RemoteShare() != 0 || zero.AvgLatency() != 0 {
		t.Error("zero result accessors should be 0")
	}
}
