// Package bus models the shared memory bus of the simulated multiprocessor:
// per-CPU caches kept coherent by a snooping invalidation protocol, with
// every bus transaction exposed to an attached recorder (the hardware
// monitor of Section 2.1).
//
// The protocol is MESI-like: read misses fill Shared or Exclusive depending
// on whether another cache holds the block; write misses issue a
// read-exclusive that invalidates remote copies; writes that hit a Shared
// block issue an upgrade. A cache holding the block dirty supplies the data
// on a remote read and reverts to Shared/clean. Instruction caches are
// read-only and kept coherent by explicit invalidation when code pages are
// reallocated (the kernel's job).
package bus

import (
	"math/bits"
	"math/rand"

	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/check"
)

// TxnKind is the type of a bus transaction as seen by the monitor.
type TxnKind uint8

const (
	// TxnRead is a cache fill for a read (instruction fetch or data
	// load) miss.
	TxnRead TxnKind = iota
	// TxnReadEx is a cache fill for a write miss, invalidating remote
	// copies.
	TxnReadEx
	// TxnUpgrade invalidates remote copies of a block already held
	// Shared, on a local write hit.
	TxnUpgrade
	// TxnWriteBack writes a dirty displaced block back to memory. It
	// does not stall the CPU (the write buffer absorbs it) and the
	// postprocessor does not treat it as a miss.
	TxnWriteBack
	// TxnUncached is an uncached access that bypasses the caches: the
	// instrumentation's escape reads (odd addresses) and genuine
	// uncached OS accesses such as device-register reads (even
	// addresses).
	TxnUncached
	// TxnUpdate is a write broadcast of the write-update protocol
	// ablation: remote copies are refreshed in place instead of
	// invalidated.
	TxnUpdate
)

// String returns a short name for the transaction kind.
func (k TxnKind) String() string {
	switch k {
	case TxnRead:
		return "read"
	case TxnReadEx:
		return "readex"
	case TxnUpgrade:
		return "upgrade"
	case TxnWriteBack:
		return "writeback"
	case TxnUncached:
		return "uncached"
	case TxnUpdate:
		return "update"
	default:
		return "txn?"
	}
}

// Txn is one bus transaction: what the hardware monitor stores. Ticks is
// the monitor's 60 ns counter (two processor cycles per tick).
type Txn struct {
	Ticks uint64
	Addr  arch.PAddr
	CPU   arch.CPUID
	Kind  TxnKind
}

// TicksOf converts a cycle count to monitor ticks.
func TicksOf(c arch.Cycles) uint64 { return uint64(c) / 2 }

// Recorder receives every bus transaction. The hardware monitor implements
// it; a nil recorder disables tracing.
type Recorder interface {
	Record(Txn)
}

// Stats aggregates raw bus activity (independent of the monitor, which can
// be suspended or full).
type Stats struct {
	Reads      int64
	ReadExs    int64
	Upgrades   int64
	WriteBacks int64
	Uncacheds  int64
	Updates    int64
}

// Transactions returns the total number of CPU-stalling transactions
// (everything except write-backs).
func (s *Stats) Transactions() int64 {
	return s.Reads + s.ReadExs + s.Upgrades + s.Uncacheds + s.Updates
}

// Protocol selects the coherence policy for shared writes.
type Protocol uint8

const (
	// WriteInvalidate is the measured machine's protocol: a write to a
	// Shared block invalidates remote copies (Illinois/MESI style).
	WriteInvalidate Protocol = iota
	// WriteUpdate is the ablation: shared writes broadcast the new data
	// and remote copies stay valid (Firefly/Dragon style). Sharing
	// misses disappear; every shared write costs a bus transaction.
	WriteUpdate
)

// System is the coherent cache/bus complex: one instruction cache and one
// two-level data hierarchy per CPU, sharing the bus.
type System struct {
	N   int
	I   []*cache.Cache
	D   []*cache.DataHierarchy
	rec Recorder

	// Proto selects invalidate (default) or update coherence.
	Proto Protocol

	// Check, when non-nil, receives every memory reference and snoop
	// outcome for invariant validation (System implements check.BusView).
	Check *check.Checker
	// Jitter, when non-nil, returns extra latency to add to one
	// CPU-stalling bus transaction (fault injection).
	Jitter func() arch.Cycles
	// OnTouch, when non-nil, is called with a CPU id and a block address
	// immediately before bus activity initiated elsewhere modifies that
	// block in the CPU's caches (snoops, invalidations). The parallel
	// engine uses it to discard the CPU's unconsumed speculation when —
	// and only when — the speculation depends on that block.
	OnTouch func(q arch.CPUID, a arch.PAddr)
	// OnTouchAll is OnTouch without a block address (whole I-cache
	// flushes): the CPU's entire unconsumed speculation is discarded.
	OnTouchAll func(q arch.CPUID)

	// Reference selects the generic oracle paths (full snoop loops, no
	// presence filter, way-loop caches). Set via SetReference.
	Reference bool

	// M is the machine the system was built for; missStall and l2Stall
	// cache its stall costs for the hot paths.
	M        arch.Machine
	missStall arch.Cycles
	l2Stall   arch.Cycles
	// pres is the snoop presence filter (nil in reference mode or beyond
	// maxPresenceCPUs, where the full loops run instead).
	pres *presence

	Stats Stats
}

// NCPUs implements check.BusView.
func (s *System) NCPUs() int { return s.N }

// DState implements check.BusView: the coherence-level (L2) state of the
// block containing a in cpu's data hierarchy.
func (s *System) DState(cpu int, a arch.PAddr) (resident, dirty, shared bool) {
	l2 := s.D[cpu].L2
	if !l2.Lookup(a) {
		return false, false, false
	}
	return true, l2.Dirty(a), l2.Shared(a)
}

// L1Resident implements check.BusView.
func (s *System) L1Resident(cpu int, a arch.PAddr) bool {
	return s.D[cpu].L1.Lookup(a)
}

// jitter draws injected extra latency for one stalling transaction.
func (s *System) jitter() arch.Cycles {
	if s.Jitter == nil {
		return 0
	}
	return s.Jitter()
}

// NewSystem builds the cache complex of machine m (the 4D/340 geometry
// when m is arch.Default()). rec may be nil.
func NewSystem(m arch.Machine, rec Recorder) *System {
	n := m.NCPU
	s := &System{
		N:         n,
		rec:       rec,
		M:         m,
		missStall: m.MissStallCycles,
		l2Stall:   m.L1MissL2HitCycles,
	}
	s.I = make([]*cache.Cache, n)
	s.D = make([]*cache.DataHierarchy, n)
	for i := 0; i < n; i++ {
		s.I[i] = cache.New("icache", m.ICacheSize, m.ICacheAssoc)
		s.D[i] = cache.NewDataHierarchy("dcache", m)
	}
	if n <= maxPresenceCPUs {
		s.pres = newPresence(m.MemFrames())
	}
	return s
}

// SetReference switches the system between the fast path (default) and the
// generic oracle: way-loop/LRU cache code, full snoop and invalidation
// broadcasts, no presence filter. Call it before any traffic — both modes
// must produce byte-identical results, which the fast-vs-reference
// determinism test proves.
func (s *System) SetReference(ref bool) {
	s.Reference = ref
	if ref {
		s.pres = nil
	} else if s.pres == nil && s.N <= maxPresenceCPUs {
		s.pres = newPresence(s.M.MemFrames())
	}
	for q := 0; q < s.N; q++ {
		s.I[q].SetGeneric(ref)
		s.D[q].SetGeneric(ref)
	}
}

// SetRecorder replaces the transaction recorder (used when the monitor is
// attached after construction).
func (s *System) SetRecorder(rec Recorder) { s.rec = rec }

// SetWarm switches the system between full-detail operation (false, the
// default) and the fast-forward functional-warming mode of a sampled run.
// It flips the attached checker into its state-only mode (shadow memory,
// versions and provenance keep updating; checks, scans and reports
// pause). Recorder traffic still flows — the phase-aware fan-out decides
// per recorder whether to warm it or drop it — and every coherence state
// transition is unaffected, so a later detailed phase resumes from honest
// caches and honest classification mirrors.
func (s *System) SetWarm(w bool) {
	if s.Check != nil {
		s.Check.SetWarming(w)
	}
}

func (s *System) record(t Txn) {
	if s.rec != nil {
		s.rec.Record(t)
	}
}

// Outcome describes the cost of one memory reference.
type Outcome struct {
	// Missed is true when the reference caused a monitored bus fill
	// (an instruction miss, or a data miss in both cache levels).
	Missed bool
	// L2Hit is true for data references that missed L1 but hit L2
	// (no bus transaction, short stall).
	L2Hit bool
	// Upgraded is true when a write hit required an upgrade
	// transaction.
	Upgraded bool
	// Stall is the CPU stall in cycles.
	Stall arch.Cycles
}

// Fetch performs an instruction fetch of the block containing a by CPU c at
// time now.
func (s *System) Fetch(c arch.CPUID, a arch.PAddr, now arch.Cycles) Outcome {
	// Direct-mapped hit probe: side-effect-free, so the full Access call
	// (and its return-value plumbing) is skipped on the overwhelmingly
	// common hit path. Returns false on the -reference oracle path.
	if s.I[c].ReadHit(a) {
		if s.Check != nil {
			s.Check.OnFetch(c, a.Block(), true, now)
		}
		return Outcome{}
	}
	hit, _, _ := s.I[c].Access(a, false)
	if s.Check != nil {
		s.Check.OnFetch(c, a.Block(), hit, now)
	}
	if hit {
		return Outcome{}
	}
	s.Stats.Reads++
	s.record(Txn{Ticks: TicksOf(now), Addr: a.Block(), CPU: c, Kind: TxnRead})
	return Outcome{Missed: true, Stall: s.missStall + s.jitter()}
}

// Read performs a data load of the block containing a by CPU c.
func (s *System) Read(c arch.CPUID, a arch.PAddr, now arch.Cycles) Outcome {
	// Direct-mapped L1 hit probe: side-effect-free, so the full hierarchy
	// Access call is skipped on the overwhelmingly common hit path.
	// Returns false on the -reference oracle path.
	if s.D[c].ReadHitL1(a) {
		if s.Check != nil {
			s.Check.OnData(c, a.Block(), false, check.LevelL1, now)
		}
		return Outcome{}
	}
	res := s.D[c].Access(a, false)
	switch res.Result {
	case cache.DataL1Hit:
		if s.Check != nil {
			s.Check.OnData(c, a.Block(), false, check.LevelL1, now)
		}
		return Outcome{}
	case cache.DataL2Hit:
		if s.Check != nil {
			s.Check.OnData(c, a.Block(), false, check.LevelL2, now)
		}
		return Outcome{L2Hit: true, Stall: s.l2Stall}
	}
	// Bus read: snoop remote caches.
	s.Stats.Reads++
	s.record(Txn{Ticks: TicksOf(now), Addr: a.Block(), CPU: c, Kind: TxnRead})
	if res.WriteBack {
		s.Stats.WriteBacks++
		s.record(Txn{Ticks: TicksOf(now), Addr: res.L2Evicted.Block, CPU: c, Kind: TxnWriteBack})
	}
	shared := false
	if s.pres != nil {
		// Fast path: the local L2 was just filled (possibly displacing a
		// block) — fold that into the presence filter, then snoop only
		// the CPUs whose presence bit is set.
		if res.L2HadEv {
			s.pres.clear(res.L2Evicted.Block, c)
		}
		s.pres.set(a, c)
		m := s.pres.mask(a) &^ (1 << uint(c))
		shared = m != 0
		for mm := m; mm != 0; mm &= mm - 1 {
			// A remote holder supplies the data if dirty and reverts
			// to clean Shared; memory is updated.
			q := arch.CPUID(bits.TrailingZeros64(mm))
			s.touch(q, a.Block())
			s.D[q].L2.SnoopRead(a)
		}
	} else {
		for q := 0; q < s.N; q++ {
			if arch.CPUID(q) == c {
				continue
			}
			d := s.D[q]
			if d.Resident(a) {
				shared = true
				if d.L2.Dirty(a) {
					// Remote cache supplies the data and reverts
					// to clean Shared; memory is updated.
					d.L2.Clean(a)
				}
				d.L2.SetShared(a, true)
			}
		}
	}
	s.D[c].L2.SetShared(a, shared)
	if s.Check != nil {
		s.Check.OnData(c, a.Block(), false, check.LevelFill, now)
	}
	return Outcome{Missed: true, Stall: s.missStall + s.jitter()}
}

// Write performs a data store to the block containing a by CPU c.
func (s *System) Write(c arch.CPUID, a arch.PAddr, now arch.Cycles) Outcome {
	// The hierarchy reports the pre-access Shared state in WasShared, so
	// the upgrade decision needs no separate L2 lookup before the write.
	res := s.D[c].Access(a, true)
	wasShared := res.WasShared
	switch res.Result {
	case cache.DataL1Hit, cache.DataL2Hit:
		out := Outcome{L2Hit: res.Result == cache.DataL2Hit}
		lvl := check.LevelL1
		if out.L2Hit {
			out.Stall = s.l2Stall
			lvl = check.LevelL2
		}
		if wasShared {
			if s.Proto == WriteUpdate {
				// Broadcast the data; remote copies stay valid
				// and everyone remains Shared (memory updated,
				// so nobody is dirty).
				s.Stats.Updates++
				s.record(Txn{Ticks: TicksOf(now), Addr: a.Block(), CPU: c, Kind: TxnUpdate})
				s.D[c].L2.SetShared(a, true)
				s.D[c].L2.Clean(a)
				out.Upgraded = true
				out.Stall += s.missStall + s.jitter()
				if s.Check != nil {
					s.Check.OnData(c, a.Block(), true, lvl, now)
				}
				return out
			}
			s.Stats.Upgrades++
			s.record(Txn{Ticks: TicksOf(now), Addr: a.Block(), CPU: c, Kind: TxnUpgrade})
			s.invalidateRemote(c, a)
			s.D[c].L2.SetShared(a, false)
			out.Upgraded = true
			out.Stall += s.missStall + s.jitter()
		}
		if s.Check != nil {
			s.Check.OnData(c, a.Block(), true, lvl, now)
		}
		return out
	}
	// Write miss. The local L2 was just filled, possibly displacing a
	// block — keep the presence filter exact before any snoop consults it.
	if s.pres != nil {
		if res.L2HadEv {
			s.pres.clear(res.L2Evicted.Block, c)
		}
		s.pres.set(a, c)
	}
	if s.Proto == WriteUpdate {
		// One combined fetch-and-broadcast transaction; remote copies
		// stay valid and refreshed.
		shared := false
		if s.pres != nil {
			m := s.pres.mask(a) &^ (1 << uint(c))
			shared = m != 0
			for mm := m; mm != 0; mm &= mm - 1 {
				q := arch.CPUID(bits.TrailingZeros64(mm))
				s.touch(q, a.Block())
				s.D[q].L2.SnoopRead(a)
			}
		} else {
			for q := 0; q < s.N; q++ {
				if arch.CPUID(q) != c && s.D[q].Resident(a) {
					shared = true
					s.D[q].L2.Clean(a)
					s.D[q].L2.SetShared(a, true)
				}
			}
		}
		if shared {
			s.Stats.Updates++
			s.record(Txn{Ticks: TicksOf(now), Addr: a.Block(), CPU: c, Kind: TxnUpdate})
		} else {
			s.Stats.Reads++
			s.record(Txn{Ticks: TicksOf(now), Addr: a.Block(), CPU: c, Kind: TxnRead})
		}
		if res.WriteBack {
			s.Stats.WriteBacks++
			s.record(Txn{Ticks: TicksOf(now), Addr: res.L2Evicted.Block, CPU: c, Kind: TxnWriteBack})
		}
		s.D[c].L2.SetShared(a, shared)
		if shared {
			s.D[c].L2.Clean(a) // memory holds the broadcast data
		}
		if s.Check != nil {
			s.Check.OnData(c, a.Block(), true, check.LevelFill, now)
		}
		return Outcome{Missed: true, Stall: s.missStall + s.jitter()}
	}
	// Write miss: read-exclusive (invalidate protocol).
	s.Stats.ReadExs++
	s.record(Txn{Ticks: TicksOf(now), Addr: a.Block(), CPU: c, Kind: TxnReadEx})
	if res.WriteBack {
		s.Stats.WriteBacks++
		s.record(Txn{Ticks: TicksOf(now), Addr: res.L2Evicted.Block, CPU: c, Kind: TxnWriteBack})
	}
	s.invalidateRemote(c, a)
	s.D[c].L2.SetShared(a, false)
	if s.Check != nil {
		s.Check.OnData(c, a.Block(), true, check.LevelFill, now)
	}
	return Outcome{Missed: true, Stall: s.missStall + s.jitter()}
}

func (s *System) invalidateRemote(c arch.CPUID, a arch.PAddr) {
	if s.pres != nil {
		// Only CPUs whose presence bit is set can hold the block; clear
		// their bits along with their copies. Iteration is in ascending
		// CPU order, like the reference loop.
		m := s.pres.mask(a) &^ (1 << uint(c))
		if m == 0 {
			return
		}
		for mm := m; mm != 0; mm &= mm - 1 {
			q := arch.CPUID(bits.TrailingZeros64(mm))
			s.touch(q, a.Block())
			s.D[q].Invalidate(a)
		}
		s.pres.clearMask(a, m)
		return
	}
	for q := 0; q < s.N; q++ {
		if arch.CPUID(q) != c {
			s.D[q].Invalidate(a)
		}
	}
}

// Uncached performs an uncached access (escape reads and device-register
// accesses). It always produces a bus transaction and never touches the
// caches. stallFree suppresses the stall (used for instrumentation escapes,
// which the simulation emits at zero cost; see DESIGN.md §6).
func (s *System) Uncached(c arch.CPUID, a arch.PAddr, now arch.Cycles, stallFree bool) Outcome {
	s.Stats.Uncacheds++
	s.record(Txn{Ticks: TicksOf(now), Addr: a, CPU: c, Kind: TxnUncached})
	if stallFree {
		return Outcome{}
	}
	return Outcome{Missed: true, Stall: s.missStall + s.jitter()}
}

// Bypass performs a block transfer access that deliberately bypasses the
// caches (the Section 4.2.2 proposal for block operations): the bus is
// used (full miss latency) but no cache is filled, so the transfer does
// not wipe resident state. Writes still invalidate every cached copy to
// stay coherent. The monitor sees an uncached transaction at an even
// (block-aligned) address — the paper's Uncached class.
// blocks covers [a, a+blocks*BlockSize) with ONE bus transaction: the
// paper's proposal exploits "the spatial locality of the reference stream"
// by moving contiguous blocks per transfer rather than one word at a time.
func (s *System) Bypass(c arch.CPUID, a arch.PAddr, blocks int, write bool, now arch.Cycles) Outcome {
	if blocks < 1 {
		blocks = 1
	}
	s.Stats.Uncacheds++
	s.record(Txn{Ticks: TicksOf(now), Addr: a.Block(), CPU: c, Kind: TxnUncached})
	if write {
		for i := 0; i < blocks; i++ {
			ba := a + arch.PAddr(i*arch.BlockSize)
			if s.pres != nil {
				// Bypass writes invalidate every cached copy, the
				// writer's own included.
				m := s.pres.mask(ba)
				for mm := m; mm != 0; mm &= mm - 1 {
					q := arch.CPUID(bits.TrailingZeros64(mm))
					s.touch(q, ba.Block())
					s.D[q].Invalidate(ba)
				}
				s.pres.clearMask(ba, m)
			} else {
				for q := 0; q < s.N; q++ {
					s.D[q].Invalidate(ba)
				}
			}
		}
	}
	if s.Check != nil {
		for i := 0; i < blocks; i++ {
			ba := (a + arch.PAddr(i*arch.BlockSize)).Block()
			s.Check.OnBypass(c, ba, write, now)
		}
	}
	return Outcome{Missed: true, Stall: s.missStall + s.jitter()}
}

// InvalidateCodeFrame flushes ALL instruction caches. The machine has no
// selective I-cache invalidation: when a physical page that contained code
// is reallocated, the kernel must flush the whole I-cache on every CPU
// (the source of the Inval class, Table 2, and the reason Figure 6's
// large-cache curves saturate). It returns the number of blocks
// invalidated.
func (s *System) InvalidateCodeFrame(f uint32) int {
	n := 0
	for q := 0; q < s.N; q++ {
		s.touchAll(arch.CPUID(q))
		n += s.I[q].ResidentBlocks()
		s.I[q].InvalidateAll()
	}
	if s.Check != nil {
		s.Check.OnIFlush(-1)
	}
	return n
}

// InjectEvict forcibly evicts the block containing a from CPU c's data
// hierarchy (fault injection). A dirty victim is written back — the
// injector may displace data, never destroy it. It reports whether a
// block was actually evicted.
func (s *System) InjectEvict(c arch.CPUID, a arch.PAddr, now arch.Cycles) bool {
	d := s.D[c]
	if !d.Resident(a) {
		return false
	}
	s.touch(c, a.Block())
	dirty := d.L2.Dirty(a)
	d.Invalidate(a)
	if s.pres != nil {
		s.pres.clear(a, c)
	}
	if dirty {
		s.Stats.WriteBacks++
		s.record(Txn{Ticks: TicksOf(now), Addr: a.Block(), CPU: c, Kind: TxnWriteBack})
	}
	if s.Check != nil {
		s.Check.OnEvict(c, a.Block(), now)
	}
	return true
}

// InjectEvictRandom evicts up to burst randomly chosen resident blocks
// from CPU c's data hierarchy, drawing victims from rng. It returns how
// many blocks were evicted.
func (s *System) InjectEvictRandom(rng *rand.Rand, c arch.CPUID, burst int, now arch.Cycles) int {
	l2 := s.D[c].L2
	lines := l2.NumLines()
	n := 0
	for i := 0; i < burst; i++ {
		if b, ok := l2.LineAt(rng.Intn(lines)); ok {
			if s.InjectEvict(c, b, now) {
				n++
			}
		}
	}
	return n
}

// InjectIFlush forcibly flushes CPU c's instruction cache (fault
// injection), telling the checker so stale-fetch tracking stays exact.
// It returns the number of blocks flushed.
func (s *System) InjectIFlush(c arch.CPUID) int {
	s.touchAll(c)
	n := s.I[c].ResidentBlocks()
	s.I[c].InvalidateAll()
	if s.Check != nil {
		s.Check.OnIFlush(int(c))
	}
	return n
}
