package sim

import (
	"testing"

	"repro/internal/bus"
	"repro/internal/kernel"
)

// cancelProbe is a streaming recorder that raises the cooperative
// cancellation flag at the stopAt-th transaction and counts everything
// recorded after that.
type cancelProbe struct {
	s      *Simulator
	stopAt int
	total  int
	after  int
}

func (p *cancelProbe) Record(t bus.Txn) {
	p.total++
	if p.total == p.stopAt {
		p.s.Cancel()
	}
	if p.total > p.stopAt {
		p.after++
	}
}

func spawnMix(s *Simulator, n int) {
	for i := 0; i < n; i++ {
		s.K.CreateProc(&kernel.ProcSpec{
			Name:      "mix",
			Image:     s.K.NewImage("mix", 8),
			DataPages: 8,
			Behavior: &loopBehavior{compute: 10_000,
				req:   kernel.SyscallReq{Kind: kernel.SysWrite},
				inode: i},
		})
	}
}

// TestCancelStopsWithinOneTransaction pins the cancellation granularity:
// once the flag is up, the simulator may finish the bus transaction in
// flight but must not issue further ones — every transaction-issuing
// site polls the flag first.
func TestCancelStopsWithinOneTransaction(t *testing.T) {
	s := smallSim(t, Config{Streaming: true, Window: 5_000_000})
	probe := &cancelProbe{s: s, stopAt: 500}
	s.Stream = probe
	spawnMix(s, 4)
	if s.RunCancelable() {
		t.Fatal("canceled run reported completion")
	}
	if !s.Canceled() {
		t.Error("cancellation flag not observed")
	}
	if probe.total < probe.stopAt {
		t.Fatalf("run stopped after only %d transactions, before the cancel point", probe.total)
	}
	// The transaction that tripped the flag may have a paired companion
	// (e.g. a writeback plus its fill) already committed to the bus; no
	// transaction beyond that pair may appear.
	if probe.after > 1 {
		t.Errorf("%d transactions issued after cancellation; want at most 1", probe.after)
	}
	if s.Progress() == 0 {
		t.Error("no progress cycle recorded at the abort point")
	}
}

// TestRunCancelableUncanceledMatchesRun: the cancellation machinery must
// not perturb a run that is never canceled.
func TestRunCancelableUncanceledMatchesRun(t *testing.T) {
	run := func(cancelable bool) int64 {
		s := smallSim(t, Config{Window: 1_000_000, Warmup: 200_000})
		spawnMix(s, 3)
		if cancelable {
			if !s.RunCancelable() {
				t.Fatal("uncanceled run did not complete")
			}
		} else {
			s.Run()
		}
		return s.Bus.Stats.Transactions()
	}
	if a, b := run(true), run(false); a != b {
		t.Errorf("RunCancelable (%d txns) diverged from Run (%d txns)", a, b)
	}
}
