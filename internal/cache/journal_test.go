package cache

import (
	"testing"

	"repro/internal/arch"
)

// cacheState is a deep copy of every piece of Cache state the journal is
// responsible for restoring.
type cacheState struct {
	valid     []bool
	tag       []arch.PAddr
	dirty     []bool
	shared    []bool
	residents int
	frameRes  []uint16
}

func captureState(c *Cache) cacheState {
	s := cacheState{
		valid:     append([]bool(nil), c.valid...),
		tag:       append([]arch.PAddr(nil), c.tag...),
		dirty:     append([]bool(nil), c.dirty...),
		residents: c.residents,
		frameRes:  append([]uint16(nil), c.frameRes...),
	}
	if c.sharedBit != nil {
		s.shared = append([]bool(nil), c.sharedBit...)
	}
	return s
}

func checkState(t *testing.T, c *Cache, want cacheState) {
	t.Helper()
	for i := range want.valid {
		if c.valid[i] != want.valid[i] {
			t.Errorf("%s line %d: valid %v, want %v", c.name, i, c.valid[i], want.valid[i])
		}
		// tag is observable only where valid, and the journal guarantees
		// no more than that.
		if want.valid[i] && c.tag[i] != want.tag[i] {
			t.Errorf("%s line %d: tag %#x, want %#x", c.name, i, c.tag[i], want.tag[i])
		}
		if c.dirty[i] != want.dirty[i] {
			t.Errorf("%s line %d: dirty %v, want %v", c.name, i, c.dirty[i], want.dirty[i])
		}
		if want.shared != nil && c.sharedBit[i] != want.shared[i] {
			t.Errorf("%s line %d: shared %v, want %v", c.name, i, c.sharedBit[i], want.shared[i])
		}
	}
	if c.residents != want.residents {
		t.Errorf("%s residents %d, want %d", c.name, c.residents, want.residents)
	}
	for f := range want.frameRes {
		if c.frameRes[f] != want.frameRes[f] {
			t.Errorf("%s frame %d residents %d, want %d", c.name, f, c.frameRes[f], want.frameRes[f])
		}
	}
}

func blockAddr(i int) arch.PAddr { return arch.PAddr(i << arch.BlockShift) }

// TestJournalRestoresICache drives a journaled access sequence over a
// direct-mapped I-cache — fills, conflict evictions, repeated saves of
// the same line — and verifies TruncateTo restores the exact pre-state,
// including the resident counter and the per-frame resident index.
func TestJournalRestoresICache(t *testing.T) {
	c := New("i", 256, 1) // 16 sets
	// Pre-state: a handful of resident lines, one of them about to be
	// displaced by a conflicting fill.
	for _, i := range []int{1, 3, 5, 7} {
		c.Access(blockAddr(i), false)
	}
	want := captureState(c)

	j := &Journal{}
	// Conflict with line 3 (16 sets apart), miss on an empty set, a hit,
	// and two saves of one line (truncation must restore the oldest).
	seq := []int{3 + 16, 2, 5, 3 + 32, 3}
	for _, i := range seq {
		a := blockAddr(i)
		j.SaveI(c, a)
		c.Access(a, false)
	}
	if j.Len() != len(seq) {
		t.Fatalf("journal holds %d saves, want %d", j.Len(), len(seq))
	}
	j.TruncateTo(0)
	checkState(t, c, want)
	if j.Len() != 0 {
		t.Errorf("journal holds %d saves after full truncation", j.Len())
	}
}

// TestJournalPartialTruncate keeps a committed prefix: only the saves
// past the checkpoint roll back.
func TestJournalPartialTruncate(t *testing.T) {
	c := New("i", 256, 1)
	c.Access(blockAddr(4), false)

	j := &Journal{}
	j.SaveI(c, blockAddr(9))
	c.Access(blockAddr(9), false)
	mark := j.Len()
	committed := captureState(c)

	j.SaveI(c, blockAddr(9+16)) // displaces 9
	c.Access(blockAddr(9+16), false)
	j.SaveI(c, blockAddr(4))
	c.Access(blockAddr(4), true)

	j.TruncateTo(mark)
	checkState(t, c, committed)
	if j.Len() != mark {
		t.Errorf("journal holds %d saves, want %d", j.Len(), mark)
	}
}

// TestJournalRestoresDataHierarchy exercises SaveData's victim logic: an
// L2 fill that displaces a victim must also journal the L1 line the
// inclusion invalidation clears, and TruncateTo must restore dirty and
// shared bits across both levels.
func TestJournalRestoresDataHierarchy(t *testing.T) {
	h := NewDataHierarchy("d", arch.Default())
	l2Sets := h.L2.Sets()
	a := blockAddr(6)
	conflict := blockAddr(6 + l2Sets) // same L2 set, different tag

	h.Access(a, true) // resident and dirty in both levels
	h.L2.SetShared(a, true)
	wantL1, wantL2 := captureState(h.L1), captureState(h.L2)

	j := &Journal{}
	j.SaveData(h, conflict)
	h.Access(conflict, false) // displaces a from L2, inclusion clears L1

	if h.L2.Lookup(a) {
		t.Fatal("conflict fill did not displace the victim — test geometry is wrong")
	}
	j.TruncateTo(0)
	checkState(t, h.L1, wantL1)
	checkState(t, h.L2, wantL2)
	if !h.L2.Shared(a) {
		t.Error("restored victim lost its shared bit")
	}
	if !h.L2.Dirty(a) {
		t.Error("restored victim lost its dirty bit")
	}
}

// TestJournalDepCallback: the dependence-set hook must see the block
// address of every valid line a speculation's accesses observe or
// displace — and nothing for invalid lines.
func TestJournalDepCallback(t *testing.T) {
	c := New("i", 256, 1)
	var dep []arch.PAddr
	j := &Journal{Dep: func(a arch.PAddr) { dep = append(dep, a) }}

	a := blockAddr(2)
	j.SaveI(c, a) // line invalid: no dependence
	c.Access(a, false)
	if len(dep) != 0 {
		t.Fatalf("invalid line reported a dependence: %v", dep)
	}

	j.SaveI(c, a) // hit on the just-filled line
	c.Access(a, false)
	victim := blockAddr(2 + 16)
	j.SaveI(c, victim) // conflict: the save sees a, the resident victim
	c.Access(victim, false)

	want := []arch.PAddr{a.Block(), a.Block()}
	if len(dep) != len(want) {
		t.Fatalf("dependence set %v, want %v", dep, want)
	}
	for i := range want {
		if dep[i] != want[i] {
			t.Fatalf("dependence set %v, want %v", dep, want)
		}
	}
}
