// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation. Each benchmark regenerates its experiment end to end —
// machine, kernel, workload, monitor, postprocessing — and reports the
// headline quantities as benchmark metrics next to the paper's published
// value (suffix _paper), so `go test -bench=.` doubles as the
// reproduction run.
package repro

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/klock"
	"repro/internal/kmem"
	"repro/internal/machineflag"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/sample"
	"repro/internal/service"
	"repro/internal/trace"
	"repro/internal/workload"
)

// runPair fans a pair of independent configurations (an ablation and its
// baseline) across the worker pool.
func runPair(b *testing.B, a, c core.Config) (*core.Characterization, *core.Characterization) {
	b.Helper()
	var res []runner.Result
	for i := 0; i < b.N; i++ {
		res, _ = runner.Experiments([]core.Config{a, c}, runner.Options{})
	}
	return res[0].Ch, res[1].Ch
}

// benchWindow keeps one pipeline iteration around 300 ms of wall time.
const benchWindow = 4_000_000

func run(b *testing.B, kind workload.Kind, iresim bool) *core.Characterization {
	b.Helper()
	var ch *core.Characterization
	for i := 0; i < b.N; i++ {
		ch = core.Run(core.Config{
			Workload:      kind,
			Window:        benchWindow,
			Seed:          1,
			CollectIResim: iresim,
		})
	}
	return ch
}

// ---- Table 1: workload characteristics ----

func benchTable1(b *testing.B, kind workload.Kind, paper [4]float64) {
	ch := run(b, kind, false)
	_, sys, idle := ch.TimeSplit()
	all, osOnly, osInd := ch.StallPct()
	b.ReportMetric(sys, "sys%")
	b.ReportMetric(idle, "idle%")
	b.ReportMetric(all, "stall_all%")
	b.ReportMetric(osOnly, "stall_os%")
	b.ReportMetric(osInd, "stall_os_ind%")
	b.ReportMetric(paper[2], "stall_os%_paper")
	b.ReportMetric(paper[3], "stall_os_ind%_paper")
}

func BenchmarkTable1_Pmake(b *testing.B) {
	benchTable1(b, workload.Pmake, [4]float64{31.1, 19.5, 21.0, 25.8})
}
func BenchmarkTable1_Multpgm(b *testing.B) {
	benchTable1(b, workload.Multpgm, [4]float64{46.7, 0.1, 21.5, 24.9})
}
func BenchmarkTable1_Oracle(b *testing.B) {
	benchTable1(b, workload.Oracle, [4]float64{29.4, 8.2, 16.6, 26.8})
}

// ---- Figure 1: the repeating execution pattern ----

func benchFigure1(b *testing.B, kind workload.Kind, paperMS float64) {
	ch := run(b, kind, false)
	st := ch.Invocations()
	b.ReportMetric(st.OSAvgCycles, "os_cycles/inv")
	b.ReportMetric(st.OSAvgIMiss, "os_imiss/inv")
	b.ReportMetric(st.OSAvgDMiss, "os_dmiss/inv")
	b.ReportMetric(st.MsBetweenInvocations, "ms_between_inv")
	b.ReportMetric(paperMS, "ms_between_inv_paper")
	b.ReportMetric(st.UTLBMissPerFault, "utlb_miss/fault")
}

func BenchmarkFigure1_Pmake(b *testing.B)   { benchFigure1(b, workload.Pmake, 1.9) }
func BenchmarkFigure1_Multpgm(b *testing.B) { benchFigure1(b, workload.Multpgm, 0.4) }
func BenchmarkFigure1_Oracle(b *testing.B)  { benchFigure1(b, workload.Oracle, 0.7) }

// ---- Figure 2: OS operation mix in Multpgm ----

func BenchmarkFigure2_Multpgm(b *testing.B) {
	ch := run(b, workload.Multpgm, false)
	var tot int64
	for op := kernel.OpKind(0); op < kernel.NumOps; op++ {
		if op != kernel.OpCheapTLB {
			tot += ch.Ops.OpCounts[op]
		}
	}
	b.ReportMetric(metrics.PctOf(ch.Ops.OpCounts[kernel.OpSginap], tot), "sginap%")
	b.ReportMetric(50, "sginap%_paper")
	b.ReportMetric(metrics.PctOf(ch.Ops.OpCounts[kernel.OpIOSyscall], tot), "io%")
	b.ReportMetric(20, "io%_paper")
	b.ReportMetric(metrics.PctOf(ch.Ops.OpCounts[kernel.OpExpensiveTLB], tot), "tlb%")
	b.ReportMetric(20, "tlb%_paper")
}

// ---- Figure 3: per-invocation distributions (Pmake) ----

func BenchmarkFigure3_Pmake(b *testing.B) {
	ch := run(b, workload.Pmake, false)
	var n, small int64
	for _, segs := range ch.Trace.Segments {
		for _, s := range segs {
			if s.Kind == trace.SegOS {
				n++
				if s.IMiss < 10 {
					small++
				}
			}
		}
	}
	b.ReportMetric(float64(n), "os_segments")
	b.ReportMetric(metrics.PctOf(small, n), "segs_under_10_imiss%")
}

// ---- Figures 4 & 7: miss classification ----

func benchClassification(b *testing.B, kind workload.Kind) {
	ch := run(b, kind, false)
	os := ch.Trace.OSMissTotal
	osI := ch.Trace.ClassSum(1, 1)
	b.ReportMetric(metrics.PctOf(osI, os), "imiss%_of_os")
	b.ReportMetric(metrics.PctOf(ch.Trace.Counts[1][1][trace.DispOS], os), "i_dispos%")
	b.ReportMetric(metrics.PctOf(ch.Trace.Counts[1][1][trace.DispApp], os), "i_dispap%")
	b.ReportMetric(metrics.PctOf(ch.Trace.Counts[1][0][trace.Sharing], os), "d_sharing%")
	b.ReportMetric(metrics.PctOf(ch.Trace.DispossameI, ch.Trace.Counts[1][1][trace.DispOS]),
		"dispossame%_of_dispos")
}

func BenchmarkFigure4_Pmake(b *testing.B)   { benchClassification(b, workload.Pmake) }
func BenchmarkFigure4_Multpgm(b *testing.B) { benchClassification(b, workload.Multpgm) }
func BenchmarkFigure4_Oracle(b *testing.B)  { benchClassification(b, workload.Oracle) }
func BenchmarkFigure7_Pmake(b *testing.B)   { benchClassification(b, workload.Pmake) }
func BenchmarkFigure7_Multpgm(b *testing.B) { benchClassification(b, workload.Multpgm) }
func BenchmarkFigure7_Oracle(b *testing.B)  { benchClassification(b, workload.Oracle) }

// ---- Figure 5: Dispos concentration (Pmake) ----

func BenchmarkFigure5_Pmake(b *testing.B) {
	ch := run(b, workload.Pmake, false)
	var total, top int64
	var counts []int64
	for _, n := range ch.Trace.DisposIByRoutine {
		counts = append(counts, n)
		total += n
	}
	// Share of the top-10 routines: the paper's "thin spikes".
	for i := 0; i < 10 && len(counts) > 0; i++ {
		maxIdx := 0
		for j, c := range counts {
			if c > counts[maxIdx] {
				maxIdx = j
			}
		}
		top += counts[maxIdx]
		counts = append(counts[:maxIdx], counts[maxIdx+1:]...)
	}
	b.ReportMetric(metrics.PctOf(top, total), "top10_routines_share%")
}

// ---- Figure 6: I-cache size/associativity sweep ----

func benchFigure6(b *testing.B, kind workload.Kind) {
	ch := run(b, kind, true)
	res := ch.Figure6()
	for _, p := range res.DirectMapped {
		b.ReportMetric(p.Relative, "dm_"+sizeName(p.Size))
	}
	for _, p := range res.TwoWay {
		b.ReportMetric(p.Relative, "w2_"+sizeName(p.Size))
	}
	b.ReportMetric(res.InvalBoundRel, "inval_bound")
}

func sizeName(sz int) string {
	switch sz {
	case 64 << 10:
		return "64k"
	case 128 << 10:
		return "128k"
	case 256 << 10:
		return "256k"
	case 512 << 10:
		return "512k"
	default:
		return "1m"
	}
}

func BenchmarkFigure6_Pmake(b *testing.B)   { benchFigure6(b, workload.Pmake) }
func BenchmarkFigure6_Multpgm(b *testing.B) { benchFigure6(b, workload.Multpgm) }
func BenchmarkFigure6_Oracle(b *testing.B)  { benchFigure6(b, workload.Oracle) }

// ---- Figure 8: sharing misses by structure ----

func BenchmarkFigure8_All(b *testing.B) {
	ch := run(b, workload.Multpgm, false)
	var tot int64
	for _, v := range ch.Trace.StructSharing {
		tot += v
	}
	perProc := ch.Trace.StructSharing[kmem.AttrKernelStack] +
		ch.Trace.StructSharing[kmem.AttrPCB] + ch.Trace.StructSharing[kmem.AttrEframe] +
		ch.Trace.StructSharing[kmem.AttrRestUser] +
		ch.Trace.StructSharing[kmem.AttrProcTable]
	b.ReportMetric(metrics.PctOf(perProc, tot), "per_process_structs%")
	b.ReportMetric(52.5, "per_process_structs%_paper(40-65)")
}

// ---- Tables 4 & 5: migration misses ----

func benchMigration(b *testing.B, kind workload.Kind, paperTotal, paperStall float64) {
	ch := run(b, kind, false)
	osD := ch.Trace.ClassSum(1, 0)
	b.ReportMetric(metrics.PctOf(ch.Trace.MigrationTotal, osD), "migration%_of_osD")
	b.ReportMetric(paperTotal, "migration%_paper")
	b.ReportMetric(ch.MigrationStallPct(), "migration_stall%")
	b.ReportMetric(paperStall, "migration_stall%_paper")
	b.ReportMetric(metrics.PctOf(
		ch.Trace.MigrationByGroup[kernel.GroupRunQueue]+
			ch.Trace.MigrationByGroup[kernel.GroupLowLevel]+
			ch.Trace.MigrationByGroup[kernel.GroupRWSetup],
		ch.Trace.MigrationTotal), "table5_total%")
}

func BenchmarkTable4_Pmake(b *testing.B)   { benchMigration(b, workload.Pmake, 9.9, 1.0) }
func BenchmarkTable4_Multpgm(b *testing.B) { benchMigration(b, workload.Multpgm, 33.8, 4.2) }
func BenchmarkTable4_Oracle(b *testing.B)  { benchMigration(b, workload.Oracle, 44.1, 2.6) }
func BenchmarkTable5_Pmake(b *testing.B)   { benchMigration(b, workload.Pmake, 9.9, 1.0) }
func BenchmarkTable5_Multpgm(b *testing.B) { benchMigration(b, workload.Multpgm, 33.8, 4.2) }
func BenchmarkTable5_Oracle(b *testing.B)  { benchMigration(b, workload.Oracle, 44.1, 2.6) }

// ---- Tables 6 & 7: block operations ----

func benchBlockOps(b *testing.B, kind workload.Kind, paperTotal, paperStall float64) {
	ch := run(b, kind, false)
	osD := ch.Trace.ClassSum(1, 0)
	var n int64
	for _, v := range ch.Trace.BlockOpDMisses {
		n += v
	}
	b.ReportMetric(metrics.PctOf(n, osD), "blockops%_of_osD")
	b.ReportMetric(paperTotal, "blockops%_paper")
	b.ReportMetric(ch.BlockOpStallPct(), "blockop_stall%")
	b.ReportMetric(paperStall, "blockop_stall%_paper")
}

func BenchmarkTable6_Pmake(b *testing.B)   { benchBlockOps(b, workload.Pmake, 61.0, 6.2) }
func BenchmarkTable6_Multpgm(b *testing.B) { benchBlockOps(b, workload.Multpgm, 38.0, 4.7) }
func BenchmarkTable6_Oracle(b *testing.B)  { benchBlockOps(b, workload.Oracle, 10.6, 0.6) }

func BenchmarkTable7_Pmake(b *testing.B) {
	ch := run(b, workload.Pmake, false)
	ops := ch.Sim.K.BlockOpsSince(ch.Sim.BaseCounters)
	var fullCopies, copies, fullClears, clears int64
	for _, op := range ops {
		switch op.Kind {
		case kernel.BlockCopy:
			copies++
			if op.Bytes == arch.PageSize {
				fullCopies++
			}
		case kernel.BlockClear:
			clears++
			if op.Bytes == arch.PageSize {
				fullClears++
			}
		}
	}
	b.ReportMetric(metrics.PctOf(fullCopies, copies), "copy_fullpage%")
	b.ReportMetric(5, "copy_fullpage%_paper")
	b.ReportMetric(metrics.PctOf(fullClears, clears), "clear_fullpage%")
	b.ReportMetric(70, "clear_fullpage%_paper")
}

// ---- Figure 9: misses by high-level operation ----

func benchFigure9(b *testing.B, kind workload.Kind) {
	ch := run(b, kind, false)
	var dTot, iTot int64
	for op := kernel.OpKind(0); op < kernel.NumOps; op++ {
		dTot += ch.Trace.OpMisses[op][0]
		iTot += ch.Trace.OpMisses[op][1]
	}
	b.ReportMetric(metrics.PctOf(ch.Trace.OpMisses[kernel.OpIOSyscall][1], iTot), "io_i%")
	b.ReportMetric(metrics.PctOf(ch.Trace.OpMisses[kernel.OpIOSyscall][0], dTot), "io_d%")
	b.ReportMetric(metrics.PctOf(ch.Trace.OpMisses[kernel.OpExpensiveTLB][0], dTot), "exptlb_d%")
	b.ReportMetric(metrics.PctOf(ch.Trace.OpMisses[kernel.OpInterrupt][1], iTot), "intr_i%")
}

func BenchmarkFigure9_Pmake(b *testing.B)   { benchFigure9(b, workload.Pmake) }
func BenchmarkFigure9_Multpgm(b *testing.B) { benchFigure9(b, workload.Multpgm) }
func BenchmarkFigure9_Oracle(b *testing.B)  { benchFigure9(b, workload.Oracle) }

// ---- Table 9: consolidated stall components ----

func BenchmarkTable9_All(b *testing.B) {
	var osTot, instr, mig, blk float64
	kinds := []workload.Kind{workload.Pmake, workload.Multpgm, workload.Oracle}
	cfgs := make([]core.Config, len(kinds))
	for i, kind := range kinds {
		cfgs[i] = core.Config{Workload: kind, Window: benchWindow, Seed: 1}
	}
	for i := 0; i < b.N; i++ {
		osTot, instr, mig, blk = 0, 0, 0, 0
		res, _ := runner.Experiments(cfgs, runner.Options{})
		for _, r := range res {
			ch := r.Ch
			_, o, _ := ch.StallPct()
			osTot += o / 3
			instr += ch.OSIMissStallPct() / 3
			mig += ch.MigrationStallPct() / 3
			blk += ch.BlockOpStallPct() / 3
		}
	}
	b.ReportMetric(osTot, "avg_os_stall%")
	b.ReportMetric(19.7, "avg_os_stall%_paper")
	b.ReportMetric(instr, "avg_instr_stall%")
	b.ReportMetric(10.2, "avg_instr_stall%_paper")
	b.ReportMetric(mig, "avg_migration_stall%")
	b.ReportMetric(2.6, "avg_migration_stall%_paper")
	b.ReportMetric(blk, "avg_blockop_stall%")
	b.ReportMetric(3.8, "avg_blockop_stall%_paper")
}

// ---- Figure 10: OS-induced application misses ----

func benchFigure10(b *testing.B, kind workload.Kind) {
	ch := run(b, kind, false)
	appTot := ch.Trace.ClassSum(0, 0) + ch.Trace.ClassSum(0, 1)
	apDisp := ch.Trace.Counts[0][0][trace.DispOS] + ch.Trace.Counts[0][1][trace.DispOS]
	b.ReportMetric(metrics.PctOf(apDisp, appTot), "ap_dispos%")
	b.ReportMetric(24.5, "ap_dispos%_paper(22-27)")
}

func BenchmarkFigure10_Pmake(b *testing.B)   { benchFigure10(b, workload.Pmake) }
func BenchmarkFigure10_Multpgm(b *testing.B) { benchFigure10(b, workload.Multpgm) }
func BenchmarkFigure10_Oracle(b *testing.B)  { benchFigure10(b, workload.Oracle) }

// ---- Table 10: synchronization stall ----

func benchTable10(b *testing.B, kind workload.Kind, paperCur, paperRMW float64) {
	ch := run(b, kind, false)
	cur, rmw := ch.SyncStallPct()
	b.ReportMetric(cur, "sync_stall%")
	b.ReportMetric(paperCur, "sync_stall%_paper")
	b.ReportMetric(rmw, "rmw_stall%")
	b.ReportMetric(paperRMW, "rmw_stall%_paper")
}

func BenchmarkTable10_Pmake(b *testing.B)   { benchTable10(b, workload.Pmake, 4.2, 0.7) }
func BenchmarkTable10_Multpgm(b *testing.B) { benchTable10(b, workload.Multpgm, 4.6, 0.8) }
func BenchmarkTable10_Oracle(b *testing.B)  { benchTable10(b, workload.Oracle, 4.7, 1.1) }

// ---- Table 12: per-lock characterization (Pmake) ----

func BenchmarkTable12_Pmake(b *testing.B) {
	ch := run(b, workload.Pmake, false)
	mem := ch.Sim.K.Locks.FamilyStats(klock.Memlock)
	rq := ch.Sim.K.Locks.FamilyStats(klock.Runqlk)
	b.ReportMetric(mem.CyclesBetweenAcq/1000, "memlock_kcyc_between")
	b.ReportMetric(9.5, "memlock_kcyc_paper")
	b.ReportMetric(rq.PctFailed, "runqlk_failed%")
	b.ReportMetric(13.7, "runqlk_failed%_paper")
	b.ReportMetric(mem.PctCachedVsUncached, "memlock_cached/uncached%")
	b.ReportMetric(12, "memlock_cached/uncached%_paper")
}

// ---- Table 11: which locks are actually acquired ----

// BenchmarkTable11_Pmake checks that the paper's ten most-acquired lock
// families all see traffic in a Pmake run, with Memlock and Runqlk at
// the top, and reports how many of the ten are live.
func BenchmarkTable11_Pmake(b *testing.B) {
	ch := run(b, workload.Pmake, false)
	table11 := []string{klock.Memlock, klock.Runqlk, klock.Ifree, klock.Dfbmaplk,
		klock.Bfreelock, klock.Calock, klock.ShrX, klock.StreamsX, klock.InoX,
		klock.Semlock}
	live := 0
	for _, n := range table11 {
		if ch.Sim.K.Locks.FamilyStats(n).Acquires > 0 {
			live++
		}
	}
	b.ReportMetric(float64(live), "live_lock_families")
	b.ReportMetric(float64(len(table11)), "table11_families")
	mem := ch.Sim.K.Locks.FamilyStats(klock.Memlock)
	rq := ch.Sim.K.Locks.FamilyStats(klock.Runqlk)
	b.ReportMetric(float64(mem.Acquires), "memlock_acquires")
	b.ReportMetric(float64(rq.Acquires), "runqlk_acquires")
}

// ---- Figure 11: lock contention vs CPU count ----

func BenchmarkFigure11_Multpgm(b *testing.B) {
	var pts []report.Figure11Point
	for i := 0; i < b.N; i++ {
		pts = report.RunFigure11([]int{2, 4, 8}, 3_000_000, 1)
	}
	for _, p := range pts {
		if p.Lock == klock.Runqlk {
			b.ReportMetric(p.FailedPerMS, sizeCPU(p.NCPU))
		}
	}
}

func sizeCPU(n int) string {
	switch n {
	case 2:
		return "runqlk_failed/ms_2cpu"
	case 4:
		return "runqlk_failed/ms_4cpu"
	default:
		return "runqlk_failed/ms_8cpu"
	}
}

// ---- Ablation: affinity scheduling ----

func BenchmarkAblationAffinity_Multpgm(b *testing.B) {
	base, aff := runPair(b,
		core.Config{Workload: workload.Multpgm, Window: benchWindow, Seed: 1},
		core.Config{Workload: workload.Multpgm, Window: benchWindow, Seed: 1, Affinity: true})
	b.ReportMetric(float64(base.Trace.MigrationTotal), "migration_misses_default")
	b.ReportMetric(float64(aff.Trace.MigrationTotal), "migration_misses_affinity")
	b.ReportMetric(base.MigrationStallPct(), "migration_stall%_default")
	b.ReportMetric(aff.MigrationStallPct(), "migration_stall%_affinity")
}

// ---- The parallel experiment engine itself ----

// BenchmarkRunnerRunSet fans the standard three-workload set across the
// worker pool and reports the measured pool speedup (serial wall / batch
// wall) and per-run simulation throughput.
func BenchmarkRunnerRunSet(b *testing.B) {
	cfgs := []core.Config{
		{Workload: workload.Pmake, Window: benchWindow, Seed: 1},
		{Workload: workload.Multpgm, Window: benchWindow, Seed: 1},
		{Workload: workload.Oracle, Window: benchWindow, Seed: 1},
	}
	var batch metrics.BatchStats
	for i := 0; i < b.N; i++ {
		_, batch = runner.Experiments(cfgs, runner.Options{})
	}
	b.ReportMetric(batch.Speedup(), "pool_speedup_x")
	b.ReportMetric(float64(batch.Parallelism), "workers")
	b.ReportMetric(batch.Runs[0].MCyclesPerSec, "mcycles/s_run0")
}

// ---- Microbenchmarks of the substrates ----

func BenchmarkPipeline_FullCharacterization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		core.Run(core.Config{Workload: workload.Pmake, Window: benchWindow, Seed: 1})
	}
}

// BenchmarkPipeline4d380 runs the full Pmake characterization on the
// 8-CPU 4d380 preset, serial (simworkers1) and on the conservative
// parallel engine at increasing intra-run worker counts. Output is
// byte-identical at every count, so the ns/op delta is the engine's
// whole story: speedup on a multi-core host, coordination overhead on
// a single-core one. The recorded SpecCommittedPerPhase metric shows
// how much work each speculation phase actually moved off the serial
// path.
func BenchmarkPipeline4d380(b *testing.B) {
	m, err := machineflag.Preset("4d380")
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("simworkers%d", w), func(b *testing.B) {
			var ch *core.Characterization
			for i := 0; i < b.N; i++ {
				ch = core.Run(core.Config{Workload: workload.Pmake, Machine: m,
					Window: benchWindow, Seed: 1, SimWorkers: w})
			}
			st := ch.Sim.SpecStats()
			if st.Phases > 0 {
				b.ReportMetric(float64(st.CommittedSteps)/float64(st.Phases), "committed/phase")
			}
		})
	}
}

// BenchmarkPipelineBillion opens the billion-cycle window the sampling
// refactor targets: the full Pmake characterization at -window 1e9 in
// full detail and under the schedule "100K:200K:10M" (100 samples, 2%
// measured). Functional warming still simulates every cycle, so the
// ns/op delta is the cost of classification tallying alone — the honest
// picture of what sampling buys without the checker. Excluded from the
// default bench.sh suite (minutes per run); recorded in BENCH_PR10.json.
func BenchmarkPipelineBillion(b *testing.B) {
	sched, err := sample.Parse("100K:200K:10M")
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name   string
		sample sample.Schedule
	}{{"full", sample.Schedule{}}, {"sampled", sched}} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.Run(core.Config{Workload: workload.Pmake,
					Window: 1_000_000_000, Seed: 1, Sample: bc.sample})
			}
		})
	}
}

func BenchmarkClassifierThroughput(b *testing.B) {
	// Build one trace, then measure pure classification speed.
	ch := core.Run(core.Config{Workload: workload.Pmake, Window: benchWindow, Seed: 1,
		Buffered: true})
	txns := ch.Sim.Mon.Trace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trace.Classify(txns, ch.Sim.K.T, ch.Sim.K.L, 4)
	}
	b.ReportMetric(float64(len(txns)), "txns/op")
}

// ---- Section 6: cluster what-if study ----

func BenchmarkSection6_Clusters(b *testing.B) {
	var results []cluster.Result
	for i := 0; i < b.N; i++ {
		ch := core.Run(core.Config{Workload: workload.Multpgm, NCPU: 8,
			Window: benchWindow, Seed: 1, Buffered: true})
		results = cluster.Study(ch.Sim.Mon.Trace(), ch.Sim.K.L, 8, 2)
	}
	b.ReportMetric(100*results[0].RemoteShare(), "baseline_remote%")
	b.ReportMetric(100*results[1].RemoteShare(), "replicated_text_remote%")
	b.ReportMetric(100*results[3].RemoteShare(), "all_opts_remote%")
	b.ReportMetric(float64(results[3].StallCycles)/float64(results[0].StallCycles),
		"all_opts_stall_ratio")
}

// ---- Ablation: §4.2.1 conflict-aware kernel text layout ----

func BenchmarkAblationTextLayout_Pmake(b *testing.B) {
	std, opt := runPair(b,
		core.Config{Workload: workload.Pmake, Window: benchWindow, Seed: 1},
		core.Config{Workload: workload.Pmake, Window: benchWindow, Seed: 1, OptimizedText: true})
	dispos := func(ch *core.Characterization) float64 {
		return metrics.PctOf(ch.Trace.Counts[1][1][trace.DispOS], ch.Trace.OSMissTotal)
	}
	b.ReportMetric(dispos(std), "i_dispos%_default")
	b.ReportMetric(dispos(opt), "i_dispos%_optimized")
	b.ReportMetric(std.OSIMissStallPct(), "i_stall%_default")
	b.ReportMetric(opt.OSIMissStallPct(), "i_stall%_optimized")
}

// ---- §4.2.2: larger data caches cannot remove OS data misses ----

func BenchmarkDCacheSweep_Multpgm(b *testing.B) {
	var base, big float64
	var sharingKept float64
	for i := 0; i < b.N; i++ {
		ch := core.Run(core.Config{Workload: workload.Multpgm, Window: benchWindow,
			Seed: 1, CollectDResim: true})
		res := ch.DCacheSweep(nil)
		base = float64(res[0].OSMisses)
		big = res[len(res)-1].Relative
		if res[0].OSSharing > 0 {
			sharingKept = float64(res[len(res)-1].OSSharing) / float64(res[0].OSSharing)
		}
	}
	b.ReportMetric(base, "osD_misses_256k")
	b.ReportMetric(big, "relative_4m_2way")
	b.ReportMetric(sharingKept, "sharing_survival_ratio")
}

// ---- Ablation: §4.2.2 cache-bypassing block operations ----

func BenchmarkAblationBlockOpBypass_Pmake(b *testing.B) {
	std, byp := runPair(b,
		core.Config{Workload: workload.Pmake, Window: benchWindow, Seed: 1},
		core.Config{Workload: workload.Pmake, Window: benchWindow, Seed: 1, BlockOpBypass: true})
	apDisp := func(ch *core.Characterization) float64 {
		appTot := ch.Trace.ClassSum(0, 0) + ch.Trace.ClassSum(0, 1)
		return metrics.PctOf(ch.Trace.Counts[0][0][trace.DispOS]+
			ch.Trace.Counts[0][1][trace.DispOS], appTot)
	}
	_, osStd, indStd := std.StallPct()
	_, osByp, indByp := byp.StallPct()
	b.ReportMetric(apDisp(std), "ap_dispos%_default")
	b.ReportMetric(apDisp(byp), "ap_dispos%_bypass")
	b.ReportMetric(osStd, "os_stall%_default")
	b.ReportMetric(osByp, "os_stall%_bypass")
	b.ReportMetric(indStd-osStd, "induced_stall%_default")
	b.ReportMetric(indByp-osByp, "induced_stall%_bypass")
	// Under bypass, the transfers appear as the paper's Uncached class.
	b.ReportMetric(metrics.PctOf(byp.Trace.Counts[1][0][trace.Uncached],
		byp.Trace.OSMissTotal), "uncached%_of_os_bypass")
}

// ---- charosd result store: sharded vs single-mutex ----

// benchResultStore measures the hot path of the experiment service's
// result store — a cache hit (shard lock, map lookup, LRU touch) plus a
// latency observation — from many goroutines at once. With shards=1 the
// store degenerates to the old single-mutex cache, so the pair is a
// direct before/after comparison of the PR 7 sharding.
func benchResultStore(b *testing.B, shards int) {
	const configs = 256
	st := service.NewStore(shards, 4*configs)
	hashes := make([]string, configs)
	for i := range hashes {
		sum := sha256.Sum256([]byte(fmt.Sprintf("bench-cfg-%d", i)))
		hashes[i] = hex.EncodeToString(sum[:])
		e, leader := st.Begin(hashes[i])
		if !leader {
			b.Fatal("duplicate benchmark hash")
		}
		st.Complete(hashes[i], e, service.Outcome{Report: "r"})
	}
	// Far more goroutines than GOMAXPROCS: the interesting cost is
	// contended-mutex handoff, which sharding removes even on one CPU.
	b.SetParallelism(64)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			h := hashes[i%configs]
			i++
			if _, leader := st.Begin(h); leader {
				b.Error("benchmark hit path took a miss")
				return
			}
			st.RecordLatency(h, time.Millisecond)
		}
	})
	b.ReportMetric(float64(st.Shards()), "shards")
}

func BenchmarkResultStore_SingleMutex(b *testing.B) { benchResultStore(b, 1) }
func BenchmarkResultStore_Sharded16(b *testing.B)   { benchResultStore(b, 16) }

// ---- Ablation: write-invalidate vs write-update coherence ----

func BenchmarkAblationCoherence_Multpgm(b *testing.B) {
	inv, upd := runPair(b,
		core.Config{Workload: workload.Multpgm, Window: benchWindow, Seed: 1},
		core.Config{Workload: workload.Multpgm, Window: benchWindow, Seed: 1, UpdateProtocol: true})
	sharing := func(ch *core.Characterization) float64 {
		return float64(ch.Trace.Counts[1][0][trace.Sharing] +
			ch.Trace.Counts[0][0][trace.Sharing])
	}
	_, osInv, _ := inv.StallPct()
	_, osUpd, _ := upd.StallPct()
	allInv, _, _ := inv.StallPct()
	allUpd, _, _ := upd.StallPct()
	b.ReportMetric(sharing(inv), "sharing_misses_invalidate")
	b.ReportMetric(sharing(upd), "sharing_misses_update")
	b.ReportMetric(float64(inv.Sim.Bus.Stats.Upgrades), "upgrades_invalidate")
	b.ReportMetric(float64(upd.Sim.Bus.Stats.Updates), "updates_update")
	b.ReportMetric(allInv, "stall_all%_invalidate")
	b.ReportMetric(allUpd, "stall_all%_update")
	b.ReportMetric(osInv, "stall_os%_invalidate")
	b.ReportMetric(osUpd, "stall_os%_update")
}
