// Command sweep runs the parameter-sweep experiments: the Figure 6
// I-cache size/associativity re-simulation and the Figure 11 lock
// contention sweep over CPU counts. Independent runs fan out across a
// worker pool; -parallel 1 restores serial execution (output is
// byte-identical either way).
//
// Usage:
//
//	sweep -exp figure6 [-window N] [-parallel N]
//	sweep -exp figure11 [-cpus 2,4,6,8,12,16] [-parallel N]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/profiling"
	"repro/internal/report"
	"repro/internal/runner"
)

func main() { os.Exit(run()) }

func run() int {
	exp := flag.String("exp", "figure6", "figure6 or figure11")
	window := flag.Int64("window", int64(arch.DefaultWindow), "traced window in cycles")
	seed := flag.Int64("seed", 1, "random seed")
	cpus := flag.String("cpus", "2,4,6,8,12,16", "CPU counts for figure11")
	checkFlag := flag.Bool("check", false, "run the invariant checker alongside the sweep")
	reference := flag.Bool("reference", false,
		"run the generic oracle paths instead of the memory-system fast path")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"worker-pool size for independent runs (1 = serial)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stopProf, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	defer stopProf()

	opts := runner.Options{Parallelism: *parallel}
	switch *exp {
	case "figure6":
		set := report.RunSetParallel(core.Config{
			Window: arch.Cycles(*window), Seed: *seed, CollectIResim: true,
			Check: *checkFlag, Reference: *reference,
		}, opts)
		fmt.Print(report.Figure6(set))
		fmt.Fprint(os.Stderr, set.Stats.Table())
		// Report every failing workload before exiting so one sweep run
		// diagnoses the whole set.
		bad := false
		for _, ch := range []*core.Characterization{set.Pmake, set.Multpgm, set.Oracle} {
			bad = report.ReportViolations(os.Stderr, ch.Cfg.Workload.String(), ch, 1) || bad
		}
		if bad {
			return 1
		}
	case "figure11":
		var counts []int
		for _, part := range strings.Split(*cpus, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "bad cpu count %q\n", part)
				return 2
			}
			counts = append(counts, n)
		}
		pts, batch := report.RunFigure11Parallel(counts, arch.Cycles(*window), *seed, opts)
		fmt.Print(report.Figure11(pts))
		fmt.Fprint(os.Stderr, batch.Table())
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		return 2
	}
	return 0
}
