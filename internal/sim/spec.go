package sim

import (
	"repro/internal/arch"
	"repro/internal/bus"
)

// specSnap is a checkpoint of everything a speculated user-mode virtual
// step can mutate outside the caches (the caches are undo-logged in the
// bus.Spec journal): the CPU clock and accounting, the micro-TLB, the
// process's reference-generator state and PRNG, and marks into the op
// log / journal. Restoring one (plus truncating to its marks) puts the
// CPU exactly at the step's entry state.
type specSnap struct {
	now     arch.Cycles
	time    [3]arch.Cycles
	stall   [3]arch.Cycles
	l2stall [3]arch.Cycles

	lastCodePID arch.PID
	lastCodeVP  uint32
	lastCodeFr  uint32
	lastCodeOK  bool
	lastDataPID arch.PID
	lastDataVP  uint32
	lastDataFr  uint32
	lastDataOK  bool
	lastDataWr  bool

	codePos  int
	loopLeft int
	dataPos  int
	hotBase  int
	rng      uint64

	pendingCompute arch.Cycles
	quantumUsed    arch.Cycles

	opsMark int
	jMark   int
}

// specCPU is one CPU's speculation segment: the per-step checkpoints,
// the deferred bus ops (in bs), and the consume cursor the commit phase
// advances.
type specCPU struct {
	c  *CPU
	bs *bus.Spec

	// cps[k] is the entry state of virtual step k; the ops of step k are
	// bs.Ops[cps[k].opsMark : cps[k+1].opsMark] (opsTotal for the last).
	cps      []specSnap
	opsTotal int
	cursor   int

	// final marks the last checkpoint as a partial burst: the step
	// stopped mid-burst at a non-private site, and the commit phase must
	// finish it serially against the original deadline.
	final         bool
	finalDeadline arch.Cycles

	// stopped is set by a stop site during runUserUntil; canceled marks
	// a cancellation observed on the worker (the run will be abandoned).
	stopped  bool
	canceled bool

	group       specSnap
	groupActive bool
}

func (sp *specCPU) reset() {
	sp.bs.Reset()
	sp.cps = sp.cps[:0]
	sp.opsTotal = 0
	sp.cursor = 0
	sp.final = false
	sp.stopped = false
	sp.canceled = false
	sp.groupActive = false
}

// takeSnap checkpoints the CPU at a step (or reference-group) boundary.
func (c *CPU) takeSnap(sp *specCPU, s *specSnap) {
	s.now = c.now
	s.time = c.Time
	s.stall = c.Stall
	s.l2stall = c.L2Stall
	s.lastCodePID, s.lastCodeVP, s.lastCodeFr, s.lastCodeOK =
		c.lastCodePID, c.lastCodeVP, c.lastCodeFr, c.lastCodeOK
	s.lastDataPID, s.lastDataVP, s.lastDataFr, s.lastDataOK, s.lastDataWr =
		c.lastDataPID, c.lastDataVP, c.lastDataFr, c.lastDataOK, c.lastDataWr
	pr := c.cur
	fp := &pr.FP
	s.codePos, s.loopLeft, s.dataPos, s.hotBase = fp.CodePos, fp.LoopLeft, fp.DataPos, fp.HotBase
	s.rng = fp.Rng.State()
	s.pendingCompute = pr.PendingCompute
	s.quantumUsed = pr.QuantumUsed
	s.opsMark, s.jMark = sp.bs.Mark()
}

// restoreSnap rewinds the CPU (not the caches — the caller truncates the
// bus.Spec to the snap's marks for that).
func (c *CPU) restoreSnap(s *specSnap) {
	c.now = s.now
	c.Time = s.time
	c.Stall = s.stall
	c.L2Stall = s.l2stall
	c.lastCodePID, c.lastCodeVP, c.lastCodeFr, c.lastCodeOK =
		s.lastCodePID, s.lastCodeVP, s.lastCodeFr, s.lastCodeOK
	c.lastDataPID, c.lastDataVP, c.lastDataFr, c.lastDataOK, c.lastDataWr =
		s.lastDataPID, s.lastDataVP, s.lastDataFr, s.lastDataOK, s.lastDataWr
	pr := c.cur
	fp := &pr.FP
	fp.CodePos, fp.LoopLeft, fp.DataPos, fp.HotBase = s.codePos, s.loopLeft, s.dataPos, s.hotBase
	fp.Rng.Restore(s.rng)
	pr.PendingCompute = s.pendingCompute
	pr.QuantumUsed = s.quantumUsed
}

// markGroup checkpoints the entry of one genRefs reference group.
func (sp *specCPU) markGroup(c *CPU) {
	c.takeSnap(sp, &sp.group)
	sp.groupActive = true
}

// rollbackGroup rewinds a speculation stop that happened mid-group to the
// group entry, so the serial resume redraws the exact same references.
func (sp *specCPU) rollbackGroup(c *CPU) {
	if !sp.groupActive {
		return
	}
	sp.bs.TruncateTo(sp.group.opsMark, sp.group.jMark)
	c.restoreSnap(&sp.group)
	sp.groupActive = false
}
