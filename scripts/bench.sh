#!/bin/sh
# Benchmark harness: runs the repo's benchmark suite under -benchmem and
# renders the results as JSON (ns/op, B/op, allocs/op per benchmark run).
# The format and the baseline/current phase convention are documented in
# EXPERIMENTS.md; BENCH_PR3.json in the repo root was produced with it.
#
# Usage:
#   scripts/bench.sh                                  # default suite -> BENCH.json
#   scripts/bench.sh -phase baseline -out before.json # label a pre-change run
#   scripts/bench.sh -count 5 -bench 'Pipeline'       # more repetitions, one bench
set -eu

cd "$(dirname "$0")/.."

count=3
bench='BenchmarkPipeline_FullCharacterization|BenchmarkClassifierThroughput'
phase=current
out=BENCH.json

while [ $# -gt 0 ]; do
    case "$1" in
        -count) count=$2; shift 2 ;;
        -bench) bench=$2; shift 2 ;;
        -phase) phase=$2; shift 2 ;;
        -out)   out=$2;   shift 2 ;;
        *) echo "usage: $0 [-count N] [-bench REGEX] [-phase LABEL] [-out FILE]" >&2; exit 2 ;;
    esac
done

raw=$(go test -run '^$' -bench "$bench" -benchmem -count "$count" .)
printf '%s\n' "$raw" >&2

printf '%s\n' "$raw" | awk -v phase="$phase" '
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
/^cpu:/    { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = ""; b = ""; al = ""
    for (i = 3; i <= NF; i++) {
        if ($i == "ns/op") ns = $(i - 1)
        else if ($i == "B/op") b = $(i - 1)
        else if ($i == "allocs/op") al = $(i - 1)
    }
    if (ns == "" || b == "" || al == "") next
    entries[n++] = sprintf("    {\"name\": \"%s\", \"phase\": \"%s\", \"iters\": %s, \"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s}",
        name, phase, $2, ns, b, al)
}
END {
    if (n == 0) { print "bench.sh: no benchmark results parsed" > "/dev/stderr"; exit 1 }
    printf "{\n"
    printf "  \"goos\": \"%s\",\n  \"goarch\": \"%s\",\n  \"cpu\": \"%s\",\n", goos, goarch, cpu
    printf "  \"entries\": [\n"
    for (i = 0; i < n; i++) printf "%s%s\n", entries[i], (i < n - 1 ? "," : "")
    printf "  ]\n}\n"
}
' > "$out"

echo "wrote $out" >&2
