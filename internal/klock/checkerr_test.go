package klock

import (
	"strings"
	"testing"

	"repro/internal/check"
)

// mustPanicCheckError runs f and returns the *check.CheckError it panics
// with, failing the test on no panic or a different panic value.
func mustPanicCheckError(t *testing.T, f func()) *check.CheckError {
	t.Helper()
	var e *check.CheckError
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("no panic")
			}
			ce, ok := r.(*check.CheckError)
			if !ok {
				t.Fatalf("panic value %T (%v), want *check.CheckError", r, r)
			}
			e = ce
		}()
		f()
	}()
	return e
}

func TestReleaseNotHeldIsCheckError(t *testing.T) {
	l := NewLock("Memlock")
	e := mustPanicCheckError(t, func() { l.Release(1, 500) })
	if e.Kind != check.LockViolation || e.Lock != "Memlock" || e.CPU != 1 || e.Cycle != 500 {
		t.Fatalf("wrong diagnostics: %v", e)
	}
	if e.HasOwner {
		t.Errorf("never-acquired lock should have no owner provenance: %v", e)
	}
}

func TestWrongCPUReleaseNamesOwner(t *testing.T) {
	l := NewLock("Runqlk")
	l.Acquire(2, 100)
	l.NoteOwner("setrq")
	e := mustPanicCheckError(t, func() { l.Release(0, 300) })
	if e.Kind != check.LockViolation || e.CPU != 0 {
		t.Fatalf("wrong diagnostics: %v", e)
	}
	if !e.HasOwner || e.Owner != 2 || e.OwnerCycle != 100 || e.OwnerRoutine != "setrq" {
		t.Fatalf("owner provenance wrong: %v", e)
	}
	if s := e.Error(); !strings.Contains(s, "setrq") || !strings.Contains(s, "CPU 2") {
		t.Errorf("rendered error lacks owner: %s", s)
	}
}

func TestKernelDoubleAcquireIsCheckError(t *testing.T) {
	l := NewLock("Calock")
	l.Acquire(1, 100)
	l.NoteOwner("softclock")
	e := mustPanicCheckError(t, func() { l.Acquire(1, 200) })
	if e.Kind != check.LockViolation || e.Lock != "Calock" || e.Cycle != 200 {
		t.Fatalf("wrong diagnostics: %v", e)
	}
	if !e.HasOwner || e.OwnerCycle != 100 || e.OwnerRoutine != "softclock" {
		t.Fatalf("acquisition provenance wrong: %v", e)
	}
}

// TestUserLockSameCPUPendingHold covers the preempted-holder case: a user
// lock still held by a process that lost its CPU must look contended to
// the next process on that same CPU, not be handed out a second time.
func TestUserLockSameCPUPendingHold(t *testing.T) {
	l := NewLock("Ulock")
	l.User = true
	l.Acquire(0, 100) // holder preempted while holding
	at, ok, spins := l.TryAcquire(0, 200, 500)
	if ok {
		t.Fatal("second process acquired a held user lock on the same CPU")
	}
	if at != 700 || spins == 0 {
		t.Errorf("failed try should spin out the deadline: at=%d spins=%d", at, spins)
	}
	// The original holder can still release; a double-hand-out would
	// have corrupted heldBy and made this panic.
	l.Release(0, 900)
}
