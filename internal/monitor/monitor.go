// Package monitor models the hardware monitor of Section 2.1: a bounded
// buffer that records the physical address, originating CPU and 60 ns
// timestamp of every bus transaction, plus the escape-reference encoding of
// Section 2.2 that the instrumented kernel uses to smuggle events (OS
// entries and exits, process identity, TLB changes, routine boundaries,
// ...) into the address trace as uncached byte reads from odd addresses.
//
// The monitor never perturbs the machine; when its buffer nears capacity a
// master process (modeled in the sim package) suspends the workload, dumps
// the buffer to the "remote disk" (the Segments slice here) and resumes.
package monitor

import (
	"repro/internal/bus"
)

// DefaultCapacity is the trace-buffer size of the real monitor ("over 2
// million bus transactions").
const DefaultCapacity = 2 * 1024 * 1024

// Monitor is the trace buffer plus the accumulated dumped segments.
type Monitor struct {
	capacity int
	buf      []bus.Txn

	// Dropped counts transactions lost because the buffer was full (the
	// master-process threshold is chosen so this stays zero).
	Dropped int64
	// Total counts every transaction offered.
	Total int64
	// Segments holds the dumped trace segments in order, i.e. the
	// "remote disk" the master process streams the trace to.
	Segments [][]bus.Txn
	// Suspends counts how many times the master dumped the buffer.
	Suspends int64

	enabled bool
}

// New returns a monitor with the given buffer capacity (DefaultCapacity if
// capacity <= 0). The monitor starts enabled.
func New(capacity int) *Monitor {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Monitor{
		capacity: capacity,
		buf:      make([]bus.Txn, 0, min(capacity, 1<<20)),
		enabled:  true,
	}
}

// Record implements bus.Recorder.
func (m *Monitor) Record(t bus.Txn) {
	m.Total++
	if !m.enabled {
		return
	}
	if len(m.buf) >= m.capacity {
		m.Dropped++
		return
	}
	m.buf = append(m.buf, t)
}

// SetEnabled turns tracing on or off (tracing is disabled while the
// workload warms up, so cold-start transients can be excluded).
func (m *Monitor) SetEnabled(on bool) { m.enabled = on }

// FillFraction returns how full the buffer is, 0..1.
func (m *Monitor) FillFraction() float64 {
	return float64(len(m.buf)) / float64(m.capacity)
}

// Pending returns the number of buffered, undumped transactions.
func (m *Monitor) Pending() int { return len(m.buf) }

// Dump moves the current buffer contents to Segments, emptying the buffer.
// This is what the master process does after suspending the workload.
func (m *Monitor) Dump() {
	if len(m.buf) == 0 {
		return
	}
	seg := make([]bus.Txn, len(m.buf))
	copy(seg, m.buf)
	m.Segments = append(m.Segments, seg)
	m.buf = m.buf[:0]
	m.Suspends++
}

// Trace returns the full trace: all dumped segments followed by whatever
// remains in the buffer, in arrival order.
func (m *Monitor) Trace() []bus.Txn {
	n := len(m.buf)
	for _, s := range m.Segments {
		n += len(s)
	}
	out := make([]bus.Txn, 0, n)
	for _, s := range m.Segments {
		out = append(out, s...)
	}
	return append(out, m.buf...)
}

// Len returns the total number of recorded (kept) transactions.
func (m *Monitor) Len() int {
	n := len(m.buf)
	for _, s := range m.Segments {
		n += len(s)
	}
	return n
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

var _ bus.Recorder = (*Monitor)(nil)

// Discard is a bus.Recorder that keeps nothing (used for runs where only
// kernel counters are needed, e.g. the Figure 11 CPU-count sweeps).
type Discard struct{ Total int64 }

// Record implements bus.Recorder.
func (d *Discard) Record(bus.Txn) { d.Total++ }

var _ bus.Recorder = (*Discard)(nil)
