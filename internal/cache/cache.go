// Package cache implements the physically-addressed cache models of the
// simulated machine: single caches of arbitrary size and associativity with
// 16-byte blocks, and the two-level data-cache hierarchy of the 4D/340
// (64 KB first level, 256 KB second level, both direct-mapped).
//
// Caches here are functional models: they track which blocks are resident
// and report hits, misses and evictions. Timing, coherence traffic and miss
// classification are layered on top by the bus, sim and trace packages.
package cache

import (
	"fmt"

	"repro/internal/arch"
)

// Cache is a set-associative, physically-indexed, physically-tagged cache
// with arch.BlockSize-byte blocks. Associativity 1 models the direct-mapped
// caches of the measured machine; higher associativities are used by the
// Figure 6 re-simulations. Replacement is LRU within a set.
type Cache struct {
	name  string
	size  int
	assoc int
	sets  int

	valid []bool
	tag   []arch.PAddr // block address, valid only where valid[i]
	dirty []bool
	lru   []uint64 // per-line last-touch stamp
	clock uint64

	// sharedBit is allocated lazily by SetShared; only coherence-level
	// caches (the data L2) pay for it.
	sharedBit []bool

	// generic forces the way-loop/LRU access path even when assoc==1
	// (the -reference oracle); the direct-mapped specialization is used
	// otherwise. State layout is identical either way.
	generic bool

	// residents counts valid lines, and frameRes counts valid lines per
	// physical page frame, so ResidentBlocks and InvalidateFrame need no
	// line scan. Both are maintained by every fill/invalidate.
	residents int
	frameRes  []uint16 // ≤ 256 blocks per 4 KB frame
}

// New returns a cache of the given total size in bytes and associativity.
// size must be a multiple of assoc*arch.BlockSize and the resulting number
// of sets must be a power of two (true for all configurations in the paper).
func New(name string, size, assoc int) *Cache {
	if size <= 0 || assoc <= 0 {
		panic(fmt.Sprintf("cache %s: invalid size %d or assoc %d", name, size, assoc))
	}
	lines := size / arch.BlockSize
	if lines%assoc != 0 {
		panic(fmt.Sprintf("cache %s: %d lines not divisible by assoc %d", name, lines, assoc))
	}
	sets := lines / assoc
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache %s: %d sets is not a power of two", name, sets))
	}
	return &Cache{
		name:     name,
		size:     size,
		assoc:    assoc,
		sets:     sets,
		valid:    make([]bool, lines),
		tag:      make([]arch.PAddr, lines),
		dirty:    make([]bool, lines),
		lru:      make([]uint64, lines),
		frameRes: make([]uint16, arch.MemFrames),
	}
}

// SetGeneric forces the generic set-associative access path even for
// direct-mapped caches (the -reference oracle). Call it before any traffic;
// both paths keep the same state layout, so results are identical either
// way — that identity is exactly what the oracle exists to prove.
func (c *Cache) SetGeneric(g bool) { c.generic = g }

// Name returns the cache's identifying name.
func (c *Cache) Name() string { return c.name }

// Size returns the total capacity in bytes.
func (c *Cache) Size() int { return c.size }

// Assoc returns the associativity.
func (c *Cache) Assoc() int { return c.assoc }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// SetOf returns the set index a physical address maps to.
func (c *Cache) SetOf(a arch.PAddr) int {
	return int(uint32(a)>>arch.BlockShift) & (c.sets - 1)
}

// line index helpers
func (c *Cache) lineIdx(set, way int) int { return set*c.assoc + way }

// Lookup reports whether the block containing a is resident, without
// changing any state.
func (c *Cache) Lookup(a arch.PAddr) bool {
	_, ok := c.find(a)
	return ok
}

func (c *Cache) find(a arch.PAddr) (idx int, ok bool) {
	b := a.Block()
	if c.assoc == 1 {
		// Direct-mapped: the set IS the line; no way loop. This is a pure
		// strength reduction (a one-iteration loop unrolled), so it is
		// safe on the -reference oracle path too.
		i := int(uint32(a)>>arch.BlockShift) & (c.sets - 1)
		if c.valid[i] && c.tag[i] == b {
			return i, true
		}
		return 0, false
	}
	set := c.SetOf(a)
	for w := 0; w < c.assoc; w++ {
		i := c.lineIdx(set, w)
		if c.valid[i] && c.tag[i] == b {
			return i, true
		}
	}
	return 0, false
}

// frameInc / frameDec maintain the per-frame resident-block index. The
// counter array is sized for the machine's 32 MB of physical memory;
// frameInc grows it for tests that fabricate addresses beyond that.
func (c *Cache) frameInc(f uint32) {
	if int(f) >= len(c.frameRes) {
		grown := make([]uint16, f+1)
		copy(grown, c.frameRes)
		c.frameRes = grown
	}
	c.frameRes[f]++
}

func (c *Cache) frameDec(f uint32) { c.frameRes[f]-- }

// Eviction describes a block displaced by a fill.
type Eviction struct {
	Block arch.PAddr
	Dirty bool
}

// ReadHit reports whether a load of the block containing a hits on the
// direct-mapped fast path, touching no state. A direct-mapped read hit has
// no side effects, so callers may skip Access entirely when it returns
// true. It always returns false when the generic oracle path is in force
// (or assoc > 1): callers then fall through to the full Access path.
// Small by design so it inlines into the bus hot paths.
func (c *Cache) ReadHit(a arch.PAddr) bool {
	i := int(uint32(a)>>arch.BlockShift) & (c.sets - 1)
	return c.assoc == 1 && !c.generic && c.valid[i] && c.tag[i] == a.Block()
}

// Access touches the block containing a. write marks the block dirty.
// It returns hit=true on a hit. On a miss the block is filled and, if a
// valid block was displaced, evicted describes it (ok=false when the set had
// an empty way).
func (c *Cache) Access(a arch.PAddr, write bool) (hit bool, evicted Eviction, ok bool) {
	if c.assoc == 1 && !c.generic {
		// Direct-mapped fast path: one index computation, no clock tick
		// and no LRU stamp (neither is observable with a single way).
		b := a.Block()
		i := int(uint32(a)>>arch.BlockShift) & (c.sets - 1)
		if c.valid[i] {
			if c.tag[i] == b {
				if write {
					c.dirty[i] = true
				}
				return true, Eviction{}, false
			}
			evicted = Eviction{Block: c.tag[i], Dirty: c.dirty[i]}
			ok = true
			c.frameDec(evicted.Block.Frame())
		} else {
			c.valid[i] = true
			c.residents++
		}
		c.frameInc(b.Frame())
		c.tag[i] = b
		c.dirty[i] = write
		if c.sharedBit != nil {
			c.sharedBit[i] = false
		}
		return false, evicted, ok
	}
	c.clock++
	if i, found := c.find(a); found {
		c.lru[i] = c.clock
		if write {
			c.dirty[i] = true
		}
		return true, Eviction{}, false
	}
	i, ev, hadEv := c.fill(a)
	if write {
		c.dirty[i] = true
	}
	return false, ev, hadEv
}

// fill installs the block containing a, returning the line index used and
// the eviction, if any.
func (c *Cache) fill(a arch.PAddr) (idx int, evicted Eviction, ok bool) {
	b := a.Block()
	set := c.SetOf(a)
	// Prefer an invalid way.
	victim := -1
	var oldest uint64 = ^uint64(0)
	for w := 0; w < c.assoc; w++ {
		i := c.lineIdx(set, w)
		if !c.valid[i] {
			victim = i
			ok = false
			oldest = 0
			break
		}
		if c.lru[i] < oldest {
			oldest = c.lru[i]
			victim = i
		}
	}
	if c.valid[victim] {
		evicted = Eviction{Block: c.tag[victim], Dirty: c.dirty[victim]}
		ok = true
		c.frameDec(evicted.Block.Frame())
	} else {
		c.residents++
	}
	c.frameInc(b.Frame())
	c.valid[victim] = true
	c.tag[victim] = b
	c.dirty[victim] = false
	c.lru[victim] = c.clock
	if c.sharedBit != nil {
		c.sharedBit[victim] = false
	}
	return victim, evicted, ok
}

// Peek returns the resident block in the (only) way of the set that a maps
// to for direct-mapped caches; for set-associative caches it returns the
// most-recently-used resident block in the set. ok is false if the relevant
// way is empty. It is used by tests and by the mirror-cache reconstruction.
func (c *Cache) Peek(a arch.PAddr) (block arch.PAddr, ok bool) {
	set := c.SetOf(a)
	var best uint64
	for w := 0; w < c.assoc; w++ {
		i := c.lineIdx(set, w)
		if c.valid[i] && c.lru[i] >= best {
			best = c.lru[i]
			block = c.tag[i]
			ok = true
		}
	}
	return block, ok
}

// Invalidate removes the block containing a if resident, returning whether
// it was resident and whether it was dirty.
func (c *Cache) Invalidate(a arch.PAddr) (wasResident, wasDirty bool) {
	if i, found := c.find(a); found {
		c.valid[i] = false
		c.residents--
		c.frameDec(a.Frame())
		return true, c.dirty[i]
	}
	return false, false
}

// InvalidateFrame removes every resident block belonging to physical page
// frame f and returns how many blocks were invalidated. The kernel uses this
// on the instruction caches when a physical page that contained code is
// reallocated (the source of Inval misses, Table 2).
func (c *Cache) InvalidateFrame(frame uint32) int {
	// The per-frame resident index bounds the work: an empty frame costs
	// one counter load, and a partially-resident one at most the frame's
	// 256 block probes (with an early-out once every counted block is
	// found) instead of a scan over every line of the cache.
	if int(frame) >= len(c.frameRes) || c.frameRes[frame] == 0 {
		return 0
	}
	want := int(c.frameRes[frame])
	n := 0
	base := arch.PAddr(frame) << arch.PageShift
	for o := 0; o < arch.PageSize && n < want; o += arch.BlockSize {
		if i, found := c.find(base + arch.PAddr(o)); found {
			c.valid[i] = false
			n++
		}
	}
	c.frameRes[frame] = 0
	c.residents -= n
	return n
}

// InvalidateAll empties the cache.
func (c *Cache) InvalidateAll() {
	for i := range c.valid {
		c.valid[i] = false
	}
	for i := range c.frameRes {
		c.frameRes[i] = 0
	}
	c.residents = 0
}

// NumLines returns the total number of lines, valid or not.
func (c *Cache) NumLines() int { return len(c.valid) }

// LineAt returns the block resident in line i (ok=false for an invalid
// line or out-of-range index). The fault injector uses it to pick random
// eviction victims.
func (c *Cache) LineAt(i int) (block arch.PAddr, ok bool) {
	if i < 0 || i >= len(c.valid) || !c.valid[i] {
		return 0, false
	}
	return c.tag[i], true
}

// ResidentBlocks returns the number of valid lines (used by tests and the
// monitor's perturbation accounting). It reads the maintained counter —
// O(1), not a line scan.
func (c *Cache) ResidentBlocks() int { return c.residents }

// fnv64 constants for the StateHash fingerprints.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// HashMix folds one 64-bit word into a running FNV-1a hash, byte by
// byte. Exported so sibling state holders (the TLB) can join the same
// fingerprint chain.
func HashMix(h, v uint64) uint64 { return fnvMix(h, v) }

// fnvMix folds one 64-bit word into a running FNV-1a hash, byte by byte.
func fnvMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

// StateHash folds the cache's architectural contents — per-line validity,
// tag, dirty bit and (when allocated) shared bit — into a running FNV-1a
// fingerprint. LRU stamps are excluded: they are an implementation detail
// of the replacement policy, and two runs that took the same trajectory
// have identical stamps anyway. The sampled-simulation tests use the
// fingerprint to prove that a sampled run ends in exactly the cache state
// of a full-detail run.
func (c *Cache) StateHash(h uint64) uint64 {
	for i := range c.valid {
		if !c.valid[i] {
			h = fnvMix(h, 0)
			continue
		}
		w := uint64(c.tag[i])<<3 | 1<<1
		if c.dirty[i] {
			w |= 1 << 2
		}
		if c.sharedBit != nil && c.sharedBit[i] {
			w |= 1
		}
		h = fnvMix(h, w)
	}
	return h
}

// HashSeed returns the canonical FNV-1a starting value for a StateHash
// chain.
func HashSeed() uint64 { return fnvOffset }
