package workload

import (
	"sync"

	"repro/internal/kernel"
	"repro/internal/klock"
)

// Multpgm: the timesharing load of Section 3 — the Mp3d 3-D particle
// simulator (four processes, 50000 particles in shared memory,
// synchronizing through user-level locks whose failure path is sginap),
// the Pmake parallel compile, and five screen-edit sessions, each a
// program simulating a user typing at a terminal feeding an ed process
// through a pipe.

const (
	mp3dProcs = 4
	// The particle arrays: scaled to the simulation window but still
	// several times the second-level cache.
	mp3dSharedPages = 128
	edSessions      = 5
)

// lastBarrier exposes the most recent barrier for calibration tests. The
// mutex makes Setup safe to call from concurrent runner workers; the
// barrier itself is only ever touched by its own simulator afterwards.
var (
	lastBarrierMu sync.Mutex
	lastBarrier   *mp3dBarrier
)

// lastBarrierGen reports the generation counter of the most recently
// created mp3d barrier (calibration tests only).
func lastBarrierGen() int {
	lastBarrierMu.Lock()
	defer lastBarrierMu.Unlock()
	if lastBarrier == nil {
		return 0
	}
	return lastBarrier.gen
}

// mp3dBarrier is the shared end-of-timestep barrier state.
type mp3dBarrier struct {
	gen     int
	arrived int
}

// mp3dWorker advances particles: sweep a slice of the shared arrays, take
// a cell lock for each update phase, and wait at the barrier each
// timestep. On the oversubscribed machine the barrier's arrival skew is a
// scheduling quantum or more, so waiters spin 20 times and fall through
// to sginap over and over — the dominant OS operation of Figure 2.
type mp3dWorker struct {
	cells   []*klock.Lock
	barrier *klock.Lock
	shared  *mp3dBarrier
	iter    int
	waitGen int // -1: not at the barrier
}

// Next alternates free-flight computation, locked cell updates, and the
// timestep barrier.
func (w *mp3dWorker) Next(k *kernel.Kernel, p *kernel.Proc) kernel.Action {
	if w.waitGen >= 0 {
		// At the barrier.
		if w.shared.gen != w.waitGen {
			// Released.
			w.waitGen = -1
			return compute(k, 2_000)
		}
		// Spin a little, then yield the CPU (the sync library's 20
		// failed attempts → sginap).
		return syscall(kernel.SyscallReq{Kind: kernel.SysSginap})
	}
	w.iter++
	switch {
	case w.iter%6 == 0:
		// End of this worker's timestep slice: arrive at the
		// barrier (a locked counter update).
		w.shared.arrived++
		if w.shared.arrived >= mp3dProcs {
			w.shared.arrived = 0
			w.shared.gen++
			// Last arriver passes straight through.
			return kernel.Action{Kind: kernel.ActUserLock,
				Lock: w.barrier, Hold: 300}
		}
		w.waitGen = w.shared.gen
		return kernel.Action{Kind: kernel.ActUserLock,
			Lock: w.barrier, Hold: 300}
	case w.iter%2 == 0:
		// Move particles: update a cell under its lock.
		l := w.cells[k.Rand.Intn(len(w.cells))]
		return kernel.Action{Kind: kernel.ActUserLock,
			Lock: l, Hold: jitter(k, 2_500)}
	default:
		return compute(k, 9_000)
	}
}

// typist simulates a user typing: sleep, then send a burst of 1-15
// characters down the pipe (Section 3's rand()-driven burst model, with
// the 5-second throttle scaled to the simulation window).
type typist struct {
	pipe *kernel.Pipe
	n    int
}

// Next alternates naps with character bursts.
func (t *typist) Next(k *kernel.Kernel, p *kernel.Proc) kernel.Action {
	t.n++
	if t.n%2 == 1 {
		return syscall(kernel.SyscallReq{Kind: kernel.SysNap, Dur: jitter(k, 14*ms)})
	}
	chars := 1 + k.Rand.Intn(15)
	return syscall(kernel.SyscallReq{Kind: kernel.SysPipeWrite,
		Pipe: t.pipe, Bytes: chars})
}

// edSession reads commands from its pipe and performs character searches
// and text edits over its buffer, echoing to the terminal and writing the
// file back (the w command) now and then.
type edSession struct {
	in   *kernel.Pipe
	out  *kernel.Pipe
	file int
	n    int
	have bool
}

// Next blocks on input, then edits, echoes, and occasionally saves.
func (e *edSession) Next(k *kernel.Kernel, p *kernel.Proc) kernel.Action {
	e.n++
	switch {
	case !e.have:
		e.have = true
		return syscall(kernel.SyscallReq{Kind: kernel.SysPipeRead, Pipe: e.in, Bytes: 16})
	case e.n%7 == 0:
		// Write the file back.
		return syscall(kernel.SyscallReq{Kind: kernel.SysWrite,
			Inode: e.file, Offset: int64(e.n%4) * 4096, Bytes: 2048})
	case e.n%3 != 0:
		// Character search / edit over the buffer.
		return compute(k, 25_000)
	default:
		e.have = false
		return syscall(kernel.SyscallReq{Kind: kernel.SysPipeWrite,
			Pipe: e.out, Bytes: 1 + k.Rand.Intn(25)})
	}
}

// SetupMp3d creates the particle simulator processes and returns the
// leader.
func SetupMp3d(k *kernel.Kernel) *kernel.Proc {
	img := k.NewImage("mp3d", 20) // 80 KB numeric kernel
	cells := make([]*klock.Lock, 3)
	for i := range cells {
		cells[i] = k.RegisterUserLock("mp3d_cell")
	}
	barrier := k.RegisterUserLock("mp3d_barrier")
	shared := &mp3dBarrier{}
	lastBarrierMu.Lock()
	lastBarrier = shared
	lastBarrierMu.Unlock()
	var leader *kernel.Proc
	for i := 0; i < mp3dProcs; i++ {
		spec := &kernel.ProcSpec{
			Name:             "mp3d",
			Premap:           true,
			Image:            img,
			DataPages:        4,
			DataHotPages:     16,
			WritePct:         25,
			DataRefsPerBlock: 1,
			CodeLoopBlocks:   96,
			Behavior: &mp3dWorker{cells: cells, barrier: barrier,
				shared: shared, waitGen: -1},
		}
		if leader == nil {
			spec.SharedPages = mp3dSharedPages
		} else {
			spec.SharedWith = leader
		}
		pr := k.CreateProc(spec)
		if leader == nil {
			leader = pr
		}
	}
	return leader
}

// SetupEdSessions creates the five edit sessions (typist + ed pairs).
func SetupEdSessions(k *kernel.Kernel) {
	edImg := k.NewImage("ed", 12)
	tyImg := k.NewImage("typist", 2)
	for i := 0; i < edSessions; i++ {
		in := k.NewPipe()
		out := k.NewPipe()
		k.CreateProc(&kernel.ProcSpec{
			Name:         "typist",
			Premap:       true,
			Image:        tyImg,
			DataPages:    2,
			DataHotPages: 1,
			Behavior:     &typist{pipe: in},
		})
		k.CreateProc(&kernel.ProcSpec{
			Name:         "ed",
			Premap:       true,
			Image:        edImg,
			DataPages:    8, // the edit buffer
			DataHotPages: 4,
			Behavior:     &edSession{in: in, out: out, file: 3000 + i},
		})
	}
}

// SetupMultpgm builds the full timesharing load.
func SetupMultpgm(k *kernel.Kernel) {
	SetupMp3d(k)
	SetupPmake(k)
	SetupEdSessions(k)
}
