// Locks study: the Section 5 synchronization analysis — per-lock
// frequency, contention, waiters, locality (Table 12), the sginap
// mechanism under the timesharing load, and the Table 10 comparison
// between the machine's sync-bus protocol and cacheable LL/SC locks.
//
//	go run ./examples/locks
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/klock"
	"repro/internal/workload"
)

func main() {
	ch := core.Run(core.Config{
		Workload: workload.Multpgm,
		Window:   12_000_000,
		Seed:     1,
	})

	fmt.Printf("Multpgm synchronization study\n\n")

	// The sginap mechanism: the user synchronization library spins 20
	// times, then reschedules the CPU.
	ops := ch.Ops
	var tot int64
	for op := kernel.OpKind(0); op < kernel.NumOps; op++ {
		if op != kernel.OpCheapTLB {
			tot += ops.OpCounts[op]
		}
	}
	fmt.Printf("sginap: %d calls = %.0f%% of OS invocations (paper: ≈50%% in Multpgm)\n",
		ops.OpCounts[kernel.OpSginap],
		100*float64(ops.OpCounts[kernel.OpSginap])/float64(tot))

	// User-level (synchronization library) locks: mp3d's cells and
	// barrier.
	fmt.Printf("\nuser-level locks (Mp3d):\n")
	for _, l := range ch.Sim.K.UserLocks {
		st := l.ComputeStats()
		if st.Acquires == 0 {
			continue
		}
		fmt.Printf("  %-14s %6d acquires, %5.1f%% failed first attempt\n",
			st.Name, st.Acquires, st.PctFailed)
	}

	// Kernel locks: the Table 12 characterization.
	fmt.Printf("\nkernel locks, most acquired first (Table 12 columns):\n")
	fmt.Printf("  %-10s %9s %13s %8s %9s %17s\n",
		"lock", "acquires", "kcyc-between", "failed%", "sameCPU%", "cached/uncached%")
	for _, st := range ch.Sim.K.Locks.AllStats() {
		if st.Acquires == 0 {
			continue
		}
		fmt.Printf("  %-10s %9d %13.1f %8.1f %9.1f %17.0f\n",
			st.Name, st.Acquires, st.CyclesBetweenAcq/1000,
			st.PctFailed, st.PctSameCPU, st.PctCachedVsUncached)
	}

	// Table 10: what better hardware support would buy.
	cur, rmw := ch.SyncStallPct()
	fmt.Printf("\nstall from OS synchronization (%% of non-idle time, Table 10):\n")
	fmt.Printf("  sync-bus protocol (no atomic RMW):  %.2f%%\n", cur)
	fmt.Printf("  cacheable LL/SC locks (R4000-style): %.2f%%\n", rmw)
	fmt.Printf("→ with locks cachable and contention low, OS synchronization is cheap.\n")

	// Bonus: Runqlk is the lock to watch as machines grow (Figure 11).
	rq := ch.Sim.K.Locks.Get(klock.Runqlk).ComputeStats()
	fmt.Printf("\nRunqlk failed-acquire rate: %.1f%% — the paper predicts this grows\n", rq.PctFailed)
	fmt.Printf("with the CPU count (run `go run ./cmd/sweep -exp figure11` to see).\n")
}
