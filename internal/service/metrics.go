package service

import (
	"sync/atomic"
	"time"
)

// latencyBoundsMS are the fixed histogram bucket upper bounds in
// milliseconds (bucket i covers (bounds[i-1], bounds[i]]; a final
// overflow bucket catches everything beyond the last bound). Fixed
// buckets keep the hot path to two atomic adds — no sorting, no
// reservoir, and no wall-clock reads beyond the submit and resolve
// stamps taken by the server.
var latencyBoundsMS = [...]int64{
	1, 2, 5, 10, 25, 50, 100, 250, 500,
	1_000, 2_500, 5_000, 10_000, 30_000, 60_000, 300_000,
}

const histBuckets = len(latencyBoundsMS) + 1

// histogram is a fixed-bucket latency histogram safe for concurrent
// observation without locks.
type histogram struct {
	buckets   [histBuckets]atomic.Int64
	count     atomic.Int64
	sumMicros atomic.Int64
}

func (h *histogram) observe(d time.Duration) {
	ms := d.Milliseconds()
	i := 0
	for i < len(latencyBoundsMS) && ms > latencyBoundsMS[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumMicros.Add(d.Microseconds())
}

// counts snapshots the bucket occupancy.
func (h *histogram) counts() [histBuckets]int64 {
	var out [histBuckets]int64
	for i := range out {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// quantileMS estimates the q-quantile (0 < q <= 1) in milliseconds from
// a bucket snapshot, interpolating linearly within the winning bucket.
// The overflow bucket reports its lower bound (the histogram cannot see
// past it). Returns 0 when the histogram is empty.
func quantileMS(counts [histBuckets]int64, q float64) float64 {
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			lo := int64(0)
			if i > 0 {
				lo = latencyBoundsMS[i-1]
			}
			if i == len(latencyBoundsMS) {
				return float64(lo)
			}
			hi := latencyBoundsMS[i]
			frac := (rank - float64(cum)) / float64(c)
			return float64(lo) + frac*float64(hi-lo)
		}
		cum += c
	}
	return float64(latencyBoundsMS[len(latencyBoundsMS)-1])
}

// ShardMetrics is one shard's counter-and-latency snapshot (or the
// global aggregate when Shard is -1).
type ShardMetrics struct {
	// Shard is the shard index, -1 for the global aggregate.
	Shard int `json:"shard"`
	// Entries is the number of completed results resident; Inflight the
	// number of singleflight claims currently executing.
	Entries  int `json:"entries"`
	Inflight int `json:"inflight"`
	// Hits counts servings that required no new execution, Misses new
	// leader claims, Evictions completed entries dropped by the LRU cap.
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	// Resolved is the number of submit-to-terminal latencies observed.
	Resolved int64 `json:"resolved"`
	// P50/P90/P99 are submit-to-terminal latency quantiles in
	// milliseconds, from the shard's fixed-bucket histogram.
	P50MS float64 `json:"p50_ms"`
	P90MS float64 `json:"p90_ms"`
	P99MS float64 `json:"p99_ms"`
	// MeanMS is the exact mean latency (sum/count, not bucketed).
	MeanMS float64 `json:"mean_ms"`
	// ThroughputPerSec is resolved jobs per second of server uptime.
	ThroughputPerSec float64 `json:"throughput_per_sec"`
}

// WorkerMetrics describes the run-executing pool.
type WorkerMetrics struct {
	// Live is the current worker count; Floor and Ceiling its adaptive
	// bounds (equal when the pool is fixed).
	Live    int  `json:"live"`
	Floor   int  `json:"floor"`
	Ceiling int  `json:"ceiling"`
	Adaptive bool `json:"adaptive"`
	// ScaleUps/ScaleDowns count manager actions (a scale-up that merely
	// cancels a pending retire still counts).
	ScaleUps   int64 `json:"scale_ups"`
	ScaleDowns int64 `json:"scale_downs"`
}

// JobMetrics is one retained job's execution record: the intra-run
// worker count the run used and its simulated-cycle throughput. Both
// are zero for jobs that executed nothing (dedup followers, cache
// hits, canceled-before-start) — observability never inherits a
// leader's numbers.
type JobMetrics struct {
	ID            string  `json:"id"`
	State         string  `json:"state"`
	SimWorkers    int     `json:"sim_workers,omitempty"`
	MCyclesPerSec float64 `json:"mcycles_per_sec,omitempty"`
}

// Metrics is the GET /v1/metrics payload.
type Metrics struct {
	UptimeSec  float64        `json:"uptime_sec"`
	Global     ShardMetrics   `json:"global"`
	Shards     []ShardMetrics `json:"shards"`
	Workers    WorkerMetrics  `json:"workers"`
	QueueLen   int            `json:"queue_len"`
	QueueDepth int            `json:"queue_depth"`
	// JobsRetained/JobsEvicted describe the terminal-job registry
	// (bounded by Options.JobHistory).
	JobsRetained int   `json:"jobs_retained"`
	JobsEvicted  int64 `json:"jobs_evicted"`
	// Jobs lists the registry's jobs in submission order (bounded by
	// Options.JobHistory).
	Jobs []JobMetrics `json:"jobs,omitempty"`
}

// snapshotShard renders one shard under its lock.
func (st *Store) snapshotShard(i int, uptime time.Duration) (ShardMetrics, [histBuckets]int64, int64) {
	sh := &st.shards[i]
	sh.mu.Lock()
	inflight := 0
	for _, e := range sh.entries {
		if e.elem == nil {
			inflight++
		}
	}
	m := ShardMetrics{
		Shard:     i,
		Entries:   len(sh.entries) - inflight,
		Inflight:  inflight,
		Hits:      sh.hits,
		Misses:    sh.misses,
		Evictions: sh.evictions,
	}
	sh.mu.Unlock()
	counts := sh.hist.counts()
	sum := sh.hist.sumMicros.Load()
	m.Resolved = sh.hist.count.Load()
	fillLatency(&m, counts, sum, uptime)
	return m, counts, sum
}

func fillLatency(m *ShardMetrics, counts [histBuckets]int64, sumMicros int64, uptime time.Duration) {
	m.P50MS = quantileMS(counts, 0.50)
	m.P90MS = quantileMS(counts, 0.90)
	m.P99MS = quantileMS(counts, 0.99)
	if m.Resolved > 0 {
		m.MeanMS = float64(sumMicros) / float64(m.Resolved) / 1000
	}
	if s := uptime.Seconds(); s > 0 {
		m.ThroughputPerSec = float64(m.Resolved) / s
	}
}

// Snapshot renders every shard plus the global aggregate (merged bucket
// counts, summed counters).
func (st *Store) Snapshot() (global ShardMetrics, shards []ShardMetrics) {
	uptime := time.Since(st.start)
	global = ShardMetrics{Shard: -1}
	var gcounts [histBuckets]int64
	var gsum int64
	shards = make([]ShardMetrics, len(st.shards))
	for i := range st.shards {
		m, counts, sum := st.snapshotShard(i, uptime)
		shards[i] = m
		global.Entries += m.Entries
		global.Inflight += m.Inflight
		global.Hits += m.Hits
		global.Misses += m.Misses
		global.Evictions += m.Evictions
		global.Resolved += m.Resolved
		for b, c := range counts {
			gcounts[b] += c
		}
		gsum += sum
	}
	fillLatency(&global, gcounts, gsum, uptime)
	return global, shards
}

// globalCounts merges every shard's histogram buckets — the adaptive
// manager diffs successive snapshots to compute interval p99.
func (st *Store) globalCounts() [histBuckets]int64 {
	var out [histBuckets]int64
	for i := range st.shards {
		c := st.shards[i].hist.counts()
		for b, v := range c {
			out[b] += v
		}
	}
	return out
}
