package cache

import "repro/internal/arch"

// DataHierarchy models the two-level data cache of one CPU: a 64 KB
// first-level and a 256 KB second-level cache, both direct-mapped with
// 16-byte blocks, maintaining inclusion (every L1 block is also in L2).
//
// Only L2 misses reach the bus and are therefore visible to the hardware
// monitor; an L1 miss that hits in L2 stalls the CPU for about 15 cycles
// without a bus transaction — the blind spot Section 3.1 discusses.
type DataHierarchy struct {
	L1 *Cache
	L2 *Cache
}

// NewDataHierarchy builds the 4D/340 data hierarchy.
func NewDataHierarchy(name string) *DataHierarchy {
	return &DataHierarchy{
		L1: New(name+".L1", arch.DCacheL1Size, 1),
		L2: New(name+".L2", arch.DCacheL2Size, 1),
	}
}

// DataResult reports where a data reference was satisfied.
type DataResult uint8

const (
	// DataL1Hit means the reference hit in the first-level cache.
	DataL1Hit DataResult = iota
	// DataL2Hit means it missed L1 but hit L2 (≈15-cycle stall, no bus).
	DataL2Hit
	// DataMiss means it missed both levels (bus transaction, ≈35 cycles).
	DataMiss
)

// String returns a short name for the result.
func (r DataResult) String() string {
	switch r {
	case DataL1Hit:
		return "l1hit"
	case DataL2Hit:
		return "l2hit"
	default:
		return "miss"
	}
}

// DataAccess is the outcome of one data reference through the hierarchy.
type DataAccess struct {
	Result DataResult
	// L2Evicted is set when an L2 fill displaced a valid block; the
	// displaced block is also removed from L1 to preserve inclusion.
	L2Evicted Eviction
	L2HadEv   bool
	// WriteBack is true when the displaced L2 block was dirty and must
	// be written back on the bus.
	WriteBack bool
}

// Access performs a data load or store at physical address a, reporting the
// level of the hit and carrying L2 eviction/write-back information so the
// bus can emit write-back transactions.
func (h *DataHierarchy) Access(a arch.PAddr, write bool) DataAccess {
	if hit, _, _ := h.L1.Access(a, write); hit {
		// Keep the L2 copy's dirtiness in sync so write-backs are not
		// lost when the L1 copy is silently displaced later.
		if write {
			h.l2MarkDirty(a)
		}
		return DataAccess{Result: DataL1Hit}
	}
	// L1 missed and was filled by the probe above. Probe L2.
	hit, ev2, had2 := h.L2.Access(a, write)
	if hit {
		return DataAccess{Result: DataL2Hit}
	}
	res := DataAccess{Result: DataMiss}
	if had2 {
		res.L2Evicted = ev2
		res.L2HadEv = true
		res.WriteBack = ev2.Dirty
		// Inclusion: the block displaced from L2 must leave L1.
		h.L1.Invalidate(ev2.Block)
	}
	return res
}

// l2MarkDirty marks the L2 copy of a dirty if resident.
func (h *DataHierarchy) l2MarkDirty(a arch.PAddr) {
	if h.L2.Lookup(a) {
		h.L2.Access(a, true) // write hit: marks dirty, keeps residency
	}
}

// Invalidate removes the block containing a from both levels (snooping
// coherence on a remote write). It reports whether the L2 copy was resident
// and whether it was dirty (requiring a flush in a real machine).
func (h *DataHierarchy) Invalidate(a arch.PAddr) (wasResident, wasDirty bool) {
	h.L1.Invalidate(a)
	return h.L2.Invalidate(a)
}

// Resident reports whether the block is resident at the L2 (coherence)
// level.
func (h *DataHierarchy) Resident(a arch.PAddr) bool { return h.L2.Lookup(a) }

// InvalidateAll empties both levels.
func (h *DataHierarchy) InvalidateAll() {
	h.L1.InvalidateAll()
	h.L2.InvalidateAll()
}
