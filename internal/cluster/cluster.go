// Package cluster implements the what-if analysis of the paper's Section 6
// ("Implications for Larger Machines"): if the same workload ran on a
// cluster-based shared-memory machine (DASH / Paradigm / Gigamax style),
// where would its misses be serviced, and what do the paper's proposed
// optimizations — replicating the OS text per cluster and distributing the
// run queue — buy?
//
// The analysis is trace-driven, in the spirit of the paper's own cache
// re-simulations: each monitored miss is assigned a home cluster under a
// placement policy, and costs a local or remote service latency. It does
// not re-run the workload; it reprices the observed miss stream.
package cluster

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/bus"
	"repro/internal/kmem"
	"repro/internal/metrics"
	"repro/internal/monitor"
)

// Latencies of a clustered machine (in CPU cycles). Local is the bus-local
// service time of the measured machine; Remote is a directory-protocol
// network round trip (DASH-era ratios were roughly 3-4x).
const (
	LocalCycles  = arch.MissStallCycles
	RemoteCycles = 120
)

// Policy selects the Section 6 optimizations to apply.
type Policy struct {
	// ClusterSize is the number of CPUs per cluster.
	ClusterSize int
	// ReplicateText services kernel-text misses from a per-cluster copy
	// of the OS image ("it may be appropriate to replicate the OS
	// executable across clusters").
	ReplicateText bool
	// DistributeRunQueue homes scheduler and per-process state in the
	// cluster where the process runs ("the run queue should be
	// distributed across clusters"), making migration-related misses
	// intra-cluster.
	DistributeRunQueue bool
	// LocalBlockTransfers homes a frame in the cluster of the CPU that
	// allocates it — observed as the trace's page-allocation escape —
	// so the block operations that initialize it run against local
	// memory ("memory should be allocated so that these operations
	// access pages in the local cluster only").
	LocalBlockTransfers bool
}

// Name summarizes the policy for reports.
func (p Policy) Name() string {
	switch {
	case p.ReplicateText && p.DistributeRunQueue && p.LocalBlockTransfers:
		return "all §6 optimizations"
	case p.ReplicateText && p.DistributeRunQueue:
		return "replicated text + distributed runq"
	case p.ReplicateText:
		return "replicated OS text"
	case p.DistributeRunQueue:
		return "distributed run queue"
	case p.LocalBlockTransfers:
		return "local block transfers"
	default:
		return "centralized (baseline)"
	}
}

// Result is the repriced miss stream under one policy.
type Result struct {
	Policy       Policy
	Misses       int64
	LocalMisses  int64
	RemoteMisses int64
	// StallCycles is the total miss service time under the policy.
	StallCycles arch.Cycles
	// CoherenceCycles prices upgrade/update broadcasts at the home
	// distance: a broadcast for a remotely-homed block still crosses
	// the interconnect even though it moves no data.
	CoherenceCycles arch.Cycles
	// OSRemote / OSMisses restricts to OS misses (kernel-space
	// addresses), the paper's focus.
	OSMisses int64
	OSRemote int64
}

// RemoteShare is the fraction of misses serviced remotely.
func (r Result) RemoteShare() float64 {
	if r.Misses == 0 {
		return 0
	}
	return float64(r.RemoteMisses) / float64(r.Misses)
}

// AvgLatency is the mean miss service time in cycles.
func (r Result) AvgLatency() float64 {
	if r.Misses == 0 {
		return 0
	}
	return float64(r.StallCycles) / float64(r.Misses)
}

// Analyzer reprices a monitor trace for a clustered machine.
type Analyzer struct {
	layout *kmem.Layout
	ncpu   int

	// frameHome maps each physical frame to the cluster that first
	// touched it (the natural first-touch placement policy).
	frameHome []int16
}

// NewAnalyzer builds an analyzer for a machine with ncpu CPUs.
func NewAnalyzer(layout *kmem.Layout, ncpu int) *Analyzer {
	fh := make([]int16, arch.MemFrames)
	for i := range fh {
		fh[i] = -1
	}
	return &Analyzer{layout: layout, ncpu: ncpu, frameHome: fh}
}

// Analyze reprices the trace under a policy. It can be called repeatedly
// with different policies (first-touch state resets each time). The trace
// should come from the default machine configuration: under the write-
// update protocol or cache-bypassing block transfers, write-miss fills
// surface as TxnUpdate/TxnUncached transactions that this repricing
// prices as coherence broadcasts and device accesses respectively.
func (a *Analyzer) Analyze(trace []bus.Txn, p Policy) Result {
	if p.ClusterSize <= 0 {
		p.ClusterSize = 2
	}
	for i := range a.frameHome {
		a.frameHome[i] = -1
	}
	res := Result{Policy: p}
	kernelEnd := a.layout.KernelEnd
	textEnd := a.layout.KernelText.End()
	dec := monitor.NewDecoder()
	for _, raw := range trace {
		rec, done := dec.Feed(raw)
		if !done {
			continue // operand word of a pending escape event
		}
		if rec.IsEvent {
			// The page-allocation escape is the §6 "allocate block-
			// transfer pages locally" hook: under the policy, a frame
			// handed out by the allocator is homed in the requesting
			// CPU's cluster, so the bcopy/bclear that initializes it
			// (and the process that uses it) run against local memory.
			if p.LocalBlockTransfers && rec.Event == monitor.EvPageAlloc {
				if f := rec.Args[0]; int(f) < len(a.frameHome) {
					a.frameHome[f] = int16(int(raw.CPU) / p.ClusterSize)
				}
			}
			continue
		}
		t := rec.Txn
		if t.Kind == bus.TxnWriteBack {
			// Write-backs drain to the home memory asynchronously.
			continue
		}
		coherence := t.Kind == bus.TxnUpgrade || t.Kind == bus.TxnUpdate
		cluster := int(t.CPU) / p.ClusterSize
		isOS := t.Addr < kernelEnd
		var home int
		switch {
		case t.Addr < textEnd:
			// Kernel text: replicated → always local; otherwise
			// homed in cluster 0.
			if p.ReplicateText {
				home = cluster
			} else {
				home = 0
			}
		case isOS:
			// Kernel data. Per-process scheduler state follows the
			// process under a distributed run queue.
			if p.DistributeRunQueue && a.isPerProcess(t.Addr) {
				home = cluster
			} else {
				home = 0
			}
		default:
			// User/page-cache frames: first-touch placement, with
			// allocation-time re-homing under LocalBlockTransfers
			// (handled above on the EvPageAlloc escape). Misses
			// never move a home, so genuinely shared pages stay put.
			f := t.Addr.Frame()
			if a.frameHome[f] < 0 {
				if coherence {
					continue // broadcast for an unhomed frame
				}
				a.frameHome[f] = int16(cluster)
			}
			home = int(a.frameHome[f])
		}
		if coherence {
			// Upgrades/updates move no data but the invalidation
			// round trip is local or remote like any other bus
			// transaction; they are not misses, so they do not
			// enter the Local/Remote miss counts.
			if home == cluster {
				res.CoherenceCycles += LocalCycles
			} else {
				res.CoherenceCycles += RemoteCycles
			}
			continue
		}
		res.Misses++
		if isOS {
			res.OSMisses++
		}
		if home == cluster {
			res.LocalMisses++
			res.StallCycles += LocalCycles
		} else {
			res.RemoteMisses++
			res.StallCycles += RemoteCycles
			if isOS {
				res.OSRemote++
			}
		}
	}
	return res
}

// isPerProcess reports whether a kernel-data address belongs to the
// per-process structures that a distributed run queue would home with the
// process (kernel stacks, user structures, process table, run queue).
func (a *Analyzer) isPerProcess(addr arch.PAddr) bool {
	l := a.layout
	return l.UPages.Contains(addr) || l.ProcTable.Contains(addr) ||
		l.RunQueue.Contains(addr)
}

// Study runs the standard Section 6 policy ladder on one trace.
func Study(trace []bus.Txn, layout *kmem.Layout, ncpu, clusterSize int) []Result {
	a := NewAnalyzer(layout, ncpu)
	policies := []Policy{
		{ClusterSize: clusterSize},
		{ClusterSize: clusterSize, ReplicateText: true},
		{ClusterSize: clusterSize, ReplicateText: true, DistributeRunQueue: true},
		{ClusterSize: clusterSize, ReplicateText: true, DistributeRunQueue: true,
			LocalBlockTransfers: true},
	}
	out := make([]Result, 0, len(policies))
	for _, p := range policies {
		out = append(out, a.Analyze(trace, p))
	}
	return out
}

// Render formats a Study as a table.
func Render(results []Result, workloadName string) string {
	t := metrics.NewTable(
		fmt.Sprintf("Section 6 cluster study (%s): repricing the miss stream on a clustered machine", workloadName),
		"Policy", "Remote%", "OS remote%", "Avg latency (cyc)", "Stall vs baseline")
	var base arch.Cycles
	for i, r := range results {
		if i == 0 {
			base = r.StallCycles + r.CoherenceCycles
		}
		rel := 1.0
		if base > 0 {
			rel = float64(r.StallCycles+r.CoherenceCycles) / float64(base)
		}
		t.AddRow(r.Policy.Name(),
			fmt.Sprintf("%.1f", 100*r.RemoteShare()),
			fmt.Sprintf("%.1f", metrics.PctOf(r.OSRemote, r.OSMisses)),
			fmt.Sprintf("%.1f", r.AvgLatency()),
			fmt.Sprintf("%.2fx", rel))
	}
	t.Note("latencies: %d cycles intra-cluster, %d inter-cluster; misses from the monitored trace", LocalCycles, RemoteCycles)
	return t.String()
}
