package bus

import "repro/internal/arch"

// The snoop presence filter: a paged dense summary of which CPUs hold each
// block at the coherence (L2) level, maintained by every bus-side fill,
// eviction and invalidation. Read and write miss paths consult it so they
// only touch hierarchies that actually hold the block, instead of probing
// every remote cache per transaction.
//
// Layout mirrors check's shadowPage: one page per 4 KB physical frame,
// allocated lazily on first fill, holding a CPU bitmask per block. A nil
// page means "no CPU holds any block of this frame". The filter is exact,
// not conservative — the property test in presence_test.go drives random
// traffic and asserts bit-for-bit agreement with a brute-force Resident
// scan of every hierarchy.

// blocksPerFrame is the number of cache blocks in one physical page frame.
const blocksPerFrame = arch.PageSize / arch.BlockSize

// maxPresenceCPUs bounds the bitmask width; systems beyond it (none in the
// paper — the sweeps stop at 16 CPUs) fall back to the full snoop loops.
const maxPresenceCPUs = 64

type presencePage struct {
	mask [blocksPerFrame]uint64
}

type presence struct {
	pages []*presencePage // indexed by physical frame
}

func newPresence(frames int) *presence {
	return &presence{pages: make([]*presencePage, frames)}
}

func blockIndex(a arch.PAddr) uint32 {
	return (uint32(a) >> arch.BlockShift) & (blocksPerFrame - 1)
}

// mask returns the CPU bitmask of the block containing a (0 when no page
// exists, i.e. no CPU holds any block of the frame).
func (p *presence) mask(a arch.PAddr) uint64 {
	f := int(uint32(a) >> arch.PageShift)
	if f >= len(p.pages) {
		return 0
	}
	pg := p.pages[f]
	if pg == nil {
		return 0
	}
	return pg.mask[blockIndex(a)]
}

// set marks CPU q as holding the block containing a, allocating the
// frame's page on first touch (and growing the frame index for tests that
// fabricate addresses beyond physical memory).
func (p *presence) set(a arch.PAddr, q arch.CPUID) {
	f := int(uint32(a) >> arch.PageShift)
	if f >= len(p.pages) {
		grown := make([]*presencePage, f+1)
		copy(grown, p.pages)
		p.pages = grown
	}
	pg := p.pages[f]
	if pg == nil {
		pg = &presencePage{}
		p.pages[f] = pg
	}
	pg.mask[blockIndex(a)] |= 1 << uint(q)
}

// clear removes CPU q from the block's bitmask. A missing page means the
// bit was already clear.
func (p *presence) clear(a arch.PAddr, q arch.CPUID) {
	f := int(uint32(a) >> arch.PageShift)
	if f >= len(p.pages) || p.pages[f] == nil {
		return
	}
	p.pages[f].mask[blockIndex(a)] &^= 1 << uint(q)
}

// clearMask removes every CPU in m from the block's bitmask.
func (p *presence) clearMask(a arch.PAddr, m uint64) {
	f := int(uint32(a) >> arch.PageShift)
	if f >= len(p.pages) || p.pages[f] == nil {
		return
	}
	p.pages[f].mask[blockIndex(a)] &^= m
}
