package runner

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/workload"
)

func TestRunOnePanicIsolation(t *testing.T) {
	cfg := core.Config{Workload: workload.Pmake, Window: 400_000, Warmup: 200_000, Seed: 5}
	res := RunOne(context.Background(), cfg, func() { panic("boom") })
	if res.Ch != nil {
		t.Fatal("panicked run still produced a characterization")
	}
	var pe *PanicError
	if !errors.As(res.Err, &pe) {
		t.Fatalf("error is %T (%v), want *PanicError", res.Err, res.Err)
	}
	if pe.Value != "boom" {
		t.Errorf("panic value %v, want boom", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Error("no stack captured")
	}
	if pe.ConfigHash != cfg.Hash() {
		t.Errorf("provenance hash %q != cfg hash %q", pe.ConfigHash, cfg.Hash())
	}
	if !strings.Contains(pe.Error(), "Pmake") {
		t.Errorf("error %q does not name the workload", pe.Error())
	}
}

// TestExperimentsPanicIsolationOrderPreserved: one config whose pipeline
// panics (invalid cache geometry) must surface as that run's Result.Err
// while the rest of the batch completes in submission order.
func TestExperimentsPanicIsolationOrderPreserved(t *testing.T) {
	badMachine := arch.Default()
	badMachine.DCacheL2Size = 3000 // not a power-of-two set count: cache.New panics
	cfgs := []core.Config{
		{Workload: workload.Pmake, Window: 400_000, Warmup: 200_000, Seed: 5},
		{Workload: workload.Pmake, Machine: badMachine, Window: 400_000, Warmup: 200_000, Seed: 5},
		{Workload: workload.Multpgm, Window: 400_000, Warmup: 200_000, Seed: 6},
	}
	res, _ := Experiments(cfgs, Options{Parallelism: 3})
	if len(res) != 3 {
		t.Fatalf("got %d results, want 3", len(res))
	}
	var pe *PanicError
	if !errors.As(res[1].Err, &pe) {
		t.Fatalf("bad config's error is %T (%v), want *PanicError", res[1].Err, res[1].Err)
	}
	for _, i := range []int{0, 2} {
		if res[i].Err != nil {
			t.Fatalf("healthy run %d failed: %v", i, res[i].Err)
		}
		if res[i].Ch == nil || res[i].Ch.Cfg.Workload != cfgs[i].Workload {
			t.Fatalf("slot %d does not hold its own run (order not preserved)", i)
		}
	}
}

func TestExperimentsContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfgs := smallCfgs()
	res, _ := ExperimentsContext(ctx, cfgs, Options{Parallelism: 2})
	for i, r := range res {
		if r.Ch != nil {
			t.Errorf("run %d completed under a canceled context", i)
		}
		if !errors.Is(r.Err, core.ErrCanceled) {
			t.Errorf("run %d error %v does not match core.ErrCanceled", i, r.Err)
		}
	}
}
