package kernel

import (
	"repro/internal/arch"
	"repro/internal/klock"
	"repro/internal/kmem"
	"repro/internal/monitor"
)

// Scheduling. The kernel keeps one global run queue protected by Runqlk;
// any CPU picks the head when it reschedules, so processes migrate freely
// among CPUs — turning their kernel stacks, user structures and
// process-table entries into shared data (Section 4.2.2, "process
// migration"). The Affinity option implements cache-affinity scheduling:
// a CPU prefers ready processes that last ran on it.

// interactiveThreshold is the CPU usage below which a process re-enters
// the run queue at interactive priority.
const interactiveThreshold = 40_000 // ≈1.2 ms

// setrq puts a process on the run queue (the kernel's setrq routine).
// Processes that used little CPU in their last run (sginap callers,
// woken interactive sleepers) enter the high-priority queue; CPU hogs
// enter the low queue and are aged up by the clock.
func (k *Kernel) setrq(p Port, pr *Proc) {
	p.Exec(k.rt.setrq)
	rq := k.Locks.Get(klock.Runqlk)
	p.Acquire(rq)
	p.Load(k.L.RunQueue.Base, kmem.RunQueueSize)
	p.Store(k.L.RunQueue.Base, 8)
	k.touchProcEntry(p, pr, 64, true)
	pr.State = StateReady
	pr.EnqueuedAt = p.Now()
	if pr.QuantumUsed < interactiveThreshold {
		k.runqHi = append(k.runqHi, pr)
	} else {
		k.runqLo = append(k.runqLo, pr)
	}
	p.Release(rq)
}

// remrqPick removes the best ready process for this CPU from the run
// queue, or returns nil. It executes the whichq/remrq pair and touches the
// queue head, the priority flag and the table entries of the processes it
// examines.
func (k *Kernel) remrqPick(p Port) *Proc {
	p.Exec(k.rt.whichq)
	rq := k.Locks.Get(klock.Runqlk)
	p.Acquire(rq)
	p.Load(k.L.RunQueue.Base, kmem.RunQueueSize)
	p.Load(k.L.HiNdproc.Base, kmem.HiNdprocSize)
	q := &k.runqHi
	if len(*q) == 0 {
		q = &k.runqLo
	}
	pick := -1
	if k.Cfg.Affinity {
		scan := len(*q)
		if scan > 4 {
			scan = 4
		}
		for i := 0; i < scan; i++ {
			k.touchProcEntry(p, (*q)[i], 64, false)
			if (*q)[i].LastCPU == p.CPU() {
				pick = i
				break
			}
		}
		if pick < 0 && len(*q) > 0 {
			pick = 0
		}
	} else if len(*q) > 0 {
		pick = 0
		k.touchProcEntry(p, (*q)[0], 64, false)
	}
	if pick < 0 {
		p.Release(rq)
		return nil
	}
	p.Exec(k.rt.remrq)
	pr := (*q)[pick]
	*q = append((*q)[:pick], (*q)[pick+1:]...)
	p.Store(k.L.RunQueue.Base, 8)
	k.touchProcEntry(p, pr, 64, true)
	p.Release(rq)
	return pr
}

// ContextSwitch performs swtch: saves the outgoing process's state (unless
// it already went to sleep), picks the next ready process and restores its
// state. It returns nil when the run queue is empty (the CPU should enter
// the idle loop). requeueOld re-adds the outgoing process to the run queue
// (preemption, sginap); a process that blocked is already on a sleep
// queue.
func (k *Kernel) ContextSwitch(p Port, old *Proc, requeueOld bool) *Proc {
	p.Exec(k.rt.swtch)
	if old != nil {
		p.Exec(k.rt.save_ctx)
		k.touchPCB(p, old, true)
		k.kstackTouch(p, old, 128, true)
		if requeueOld {
			k.setrq(p, old)
		}
	}
	next := k.remrqPick(p)
	if next == nil {
		return nil
	}
	p.Exec(k.rt.restore_ctx)
	k.touchPCB(p, next, false)
	k.touchURest(p, next, 128, false)
	k.kstackTouch(p, next, 128, false)
	k.CtxSwitches++
	if next.HasRun && next.LastCPU != p.CPU() {
		k.Migrations++
	}
	next.HasRun = true
	next.LastCPU = p.CPU()
	next.State = StateRunning
	next.QuantumUsed = 0
	p.Escape(monitor.EvRunProc, uint32(next.PID))
	return next
}

// SleepProc blocks a process on a channel with a continuation to run when
// it is next scheduled.
func (k *Kernel) SleepProc(p Port, pr *Proc, ch SleepChan, op OpKind, cont func(Port, *Proc) SysStatus) {
	p.Exec(k.rt.sleep)
	k.kstackTouch(p, pr, 64, true)
	pr.State = StateSleeping
	pr.sleepOn = ch
	pr.kcont = cont
	pr.kcontOp = op
	k.sleepQ[ch] = append(k.sleepQ[ch], pr)
}

// Wakeup makes every process sleeping on ch runnable and returns how many
// woke.
func (k *Kernel) Wakeup(p Port, ch SleepChan) int {
	sleepers := k.sleepQ[ch]
	if len(sleepers) == 0 {
		return 0
	}
	p.Exec(k.rt.wakeup)
	delete(k.sleepQ, ch)
	for _, pr := range sleepers {
		pr.sleepOn = NoChan
		k.setrq(p, pr)
	}
	return len(sleepers)
}

// TakeContinuation removes and returns the pending kernel continuation of
// a process about to be scheduled (nil if it was not mid-syscall).
func (k *Kernel) TakeContinuation(pr *Proc) (func(Port, *Proc) SysStatus, OpKind) {
	c := pr.kcont
	pr.kcont = nil
	return c, pr.kcontOp
}

// EnterException models the assembly exception prologue: vector dispatch
// and register save into the process's exception frame.
func (k *Kernel) EnterException(p Port, pr *Proc) {
	p.Exec(k.rt.exc_vec)
	p.Exec(k.rt.exc_save)
	if pr != nil {
		k.touchEframe(p, pr, true)
		k.kstackTouch(p, pr, 64, true)
	}
}

// ExitException models the epilogue: register restore from the exception
// frame.
func (k *Kernel) ExitException(p Port, pr *Proc) {
	p.Exec(k.rt.exc_restore)
	if pr != nil {
		k.touchEframe(p, pr, false)
	}
}

// ClockIntr handles the 10 ms scheduler tick on the executing CPU: charge
// the current process, run the callout table, and report whether the CPU
// should reschedule.
func (k *Kernel) ClockIntr(p Port, cur *Proc, now arch.Cycles) (resched bool) {
	p.Exec(k.rt.clock_intr)
	p.Exec(k.rt.hardclock)
	if cur != nil {
		k.kstackTouch(p, cur, 64, true)
		k.touchProcEntry(p, cur, 32, true)
	}
	// Callout processing: scan the timer table under Calock; expired
	// entries wake their channels (softclock).
	ca := k.Locks.Get(klock.Calock)
	p.Acquire(ca)
	p.Load(k.L.Callout.Base, 64)
	var remaining []timer
	fired := 0
	for _, t := range k.timers {
		if t.at <= now {
			if fired == 0 {
				p.Exec(k.rt.softclock)
			}
			p.Exec(k.rt.timeout)
			p.Store(k.L.Callout.Base+arch.PAddr(16*(fired%64)), 16)
			k.Wakeup(p, t.ch)
			fired++
		} else {
			remaining = append(remaining, t)
		}
	}
	k.timers = remaining
	p.Release(ca)
	// Priority aging: promote one starved CPU hog per tick (schedcpu).
	if len(k.runqLo) > 0 {
		p.Exec(k.rt.schedcpu)
		k.runqHi = append(k.runqHi, k.runqLo[0])
		k.runqLo = k.runqLo[1:]
	}
	if cur != nil && cur.QuantumUsed >= k.Cfg.QuantumCycles && k.RunnableCount() > 0 {
		resched = true
	}
	return resched
}

// DiskIntr handles a disk-controller completion interrupt: acknowledge the
// controller, touch the buffer header, wake the sleeping process.
func (k *Kernel) DiskIntr(p Port, ch SleepChan) {
	p.Exec(k.rt.dksc_intr)
	p.UncachedRead(kmem.DevRegsBase) // controller status register
	// Asynchronous completions (delayed writes) carry no sleep channel;
	// Go's % keeps the sign, so a negative channel must not index the
	// header array.
	hdr := int(ch)
	if hdr < 0 {
		hdr = 0
	}
	p.Store(k.L.BufHeaderAddr(hdr%kmem.NumBufs), 64)
	if ch != NoChan {
		k.Wakeup(p, ch)
	}
}

// NetIntr handles a network interrupt (CPU 1 only; the trace-transfer
// daemons of Section 2.1 and IRIX's CPU-1-bound network functions).
func (k *Kernel) NetIntr(p Port) {
	p.Exec(k.rt.net_intr)
	p.UncachedRead(kmem.DevRegsBase + 64)
	p.Exec(k.rt.ip_input)
	p.Exec(k.rt.net_daemon)
	// Packet buffers live in the kernel heap's scratch area.
	p.Store(k.L.HeapScratch(k.Rand.Intn(64)*256), 256)
}
