package workload

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/kernel"
	"repro/internal/sim"
)

func runKind(t *testing.T, kind Kind, window arch.Cycles) *sim.Simulator {
	t.Helper()
	s := sim.New(sim.Config{
		Seed:   7,
		Window: window,
		Warmup: window / 2,
	})
	Setup(s.Kernel(), kind)
	s.Run()
	return s
}

// timeSplit returns user, sys, idle fractions in percent.
func timeSplit(s *sim.Simulator) (user, sys, idle float64) {
	var u, k, i arch.Cycles
	for _, c := range s.CPUs {
		u += c.Time[arch.ModeUser]
		k += c.Time[arch.ModeKernel]
		i += c.Time[arch.ModeIdle]
	}
	tot := float64(u + k + i)
	return 100 * float64(u) / tot, 100 * float64(k) / tot, 100 * float64(i) / tot
}

func TestPmakeRuns(t *testing.T) {
	s := runKind(t, Pmake, 4_000_000)
	u, sy, id := timeSplit(s)
	t.Logf("Pmake: user=%.1f%% sys=%.1f%% idle=%.1f%% spawns=%d exits=%d disk=%d travs=%d migr=%d ctx=%d",
		u, sy, id, s.K.Spawns, s.K.Exits, s.K.DiskRequests, s.K.Traversals, s.K.Migrations, s.K.CtxSwitches)
	t.Logf("ops: %v", opLine(s.K))
	if s.K.Spawns == 0 || s.K.Exits == 0 {
		t.Error("pmake spawned or finished no compile jobs")
	}
	if s.K.DiskRequests == 0 {
		t.Error("pmake did no disk I/O")
	}
	if sy < 5 {
		t.Errorf("system time %.1f%% implausibly low", sy)
	}
}

func TestMultpgmRuns(t *testing.T) {
	s := runKind(t, Multpgm, 4_000_000)
	u, sy, id := timeSplit(s)
	t.Logf("Multpgm: user=%.1f%% sys=%.1f%% idle=%.1f%%", u, sy, id)
	t.Logf("ops: %v", opLine(s.K))
	if s.K.OpCounts[kernel.OpSginap] == 0 {
		t.Error("no sginap activity in Multpgm")
	}
	if id > 20 {
		t.Errorf("Multpgm idle %.1f%%, should be near zero (always-runnable Mp3d)", id)
	}
}

func TestOracleRuns(t *testing.T) {
	s := runKind(t, Oracle, 4_000_000)
	u, sy, id := timeSplit(s)
	t.Logf("Oracle: user=%.1f%% sys=%.1f%% idle=%.1f%%", u, sy, id)
	t.Logf("ops: %v", opLine(s.K))
	if s.K.OpCounts[kernel.OpIOSyscall] == 0 {
		t.Error("Oracle did no I/O syscalls")
	}
	var txns int64 = s.K.OpCounts[kernel.OpIOSyscall]
	if txns < 10 {
		t.Errorf("only %d I/O calls; transaction engine stalled?", txns)
	}
}

func opLine(k *kernel.Kernel) map[string]int64 {
	m := map[string]int64{}
	for op := kernel.OpKind(0); op < kernel.NumOps; op++ {
		m[op.String()] = k.OpCounts[op]
	}
	return m
}

func TestParseKind(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Kind
	}{{"Pmake", Pmake}, {"multpgm", Multpgm}, {"oracle", Oracle}} {
		got, err := ParseKind(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseKind(%q) = %v, %v", c.in, got, err)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Error("ParseKind accepted garbage")
	}
	if Pmake.String() != "Pmake" || Multpgm.String() != "Multpgm" || Oracle.String() != "Oracle" {
		t.Error("kind names wrong")
	}
}

// TestOracleOpBreakdown logs where Oracle's kernel time goes (calibration
// aid; always passes).
func TestOracleOpBreakdown(t *testing.T) {
	s := runKind(t, Oracle, 4_000_000)
	for op := kernel.OpKind(0); op < kernel.NumOps; op++ {
		t.Logf("%-22s %8d cycles  (%d invocations)", op, s.OpCycles[op],
			s.K.Counters().Sub(s.BaseCounters).OpCounts[op])
	}
}

// TestMultpgmOpBreakdown logs the Figure 2 operation mix (calibration aid).
func TestMultpgmOpBreakdown(t *testing.T) {
	s := runKind(t, Multpgm, 8_000_000)
	ops := s.K.Counters().Sub(s.BaseCounters).OpCounts
	var tot int64
	for op := kernel.OpKind(0); op < kernel.NumOps; op++ {
		if op == kernel.OpCheapTLB {
			continue // UTLB faults are not OS invocations (Figure 2)
		}
		tot += ops[op]
	}
	for op := kernel.OpKind(0); op < kernel.NumOps; op++ {
		pct := 0.0
		if tot > 0 && op != kernel.OpCheapTLB {
			pct = 100 * float64(ops[op]) / float64(tot)
		}
		t.Logf("%-22s %6d  %5.1f%%  (%8d cycles)", op, ops[op], pct, s.OpCycles[op])
	}
	t.Logf("total invocations %d over %d cycles/cpu → one per %.2f ms (machine)",
		tot, s.Cfg.Window, float64(s.Cfg.Window)/float64(tot)*4*30/1e6)
}

// TestMp3dLockContention logs user-lock stats (calibration aid).
func TestMp3dLockContention(t *testing.T) {
	s := runKind(t, Multpgm, 8_000_000)
	for _, l := range s.K.UserLocks {
		st := l.ComputeStats()
		t.Logf("%-14s acq=%6d failed=%5.1f%% between=%.0f",
			st.Name, st.Acquires, st.PctFailed, st.CyclesBetweenAcq)
	}
}

// TestBarrierDynamics logs mp3d barrier progress (calibration aid).
func TestBarrierDynamics(t *testing.T) {
	s := runKind(t, Multpgm, 8_000_000)
	t.Logf("barrier generations: %d", lastBarrierGen())
	ops := s.K.Counters().Sub(s.BaseCounters).OpCounts
	t.Logf("sginaps: %d, ctx: %d", ops[kernel.OpSginap],
		s.K.Counters().Sub(s.BaseCounters).CtxSwitches)
	// how much CPU do mp3d workers get?
	for _, p := range s.K.Procs() {
		if p.Name == "mp3d" {
			t.Logf("mp3d pid=%d quantumUsed=%d state=%v", p.PID, p.QuantumUsed, p.State)
		}
	}
}

// TestQueueDepth logs the average run-queue depth (calibration aid).
func TestQueueDepth(t *testing.T) {
	s := runKind(t, Multpgm, 8_000_000)
	t.Logf("avg runq depth = %.2f over %d samples", float64(s.QDepthSum)/float64(s.QSamples), s.QSamples)
	// who is runnable at the end?
	for _, p := range s.K.Procs() {
		t.Logf("%-8s pid=%2d state=%d", p.Name, p.PID, p.State)
	}
}

func TestOracleStdRuns(t *testing.T) {
	s := runKind(t, OracleStd, 3_000_000)
	u, sy, id := timeSplit(s)
	t.Logf("OracleStd: user=%.1f%% sys=%.1f%% idle=%.1f%%", u, sy, id)
	if s.K.OpCounts[kernel.OpIOSyscall] == 0 {
		t.Error("standard TP1 did no I/O")
	}
	if OracleStd.String() != "OracleStd" {
		t.Error("kind name")
	}
	if k, err := ParseKind("oraclestd"); err != nil || k != OracleStd {
		t.Error("ParseKind(oraclestd)")
	}
}
