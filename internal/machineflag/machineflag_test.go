package machineflag

import (
	"flag"
	"testing"

	"repro/internal/arch"
)

func TestParseSize(t *testing.T) {
	cases := []struct {
		in   string
		want int
		bad  bool
	}{
		{"65536", 65536, false},
		{"64K", 64 << 10, false},
		{"64k", 64 << 10, false},
		{"1M", 1 << 20, false},
		{" 256K ", 256 << 10, false},
		{"64KB", 0, true},
		{"", 0, true},
		{"big", 0, true},
	}
	for _, c := range cases {
		got, err := ParseSize(c.in)
		if c.bad {
			if err == nil {
				t.Errorf("ParseSize(%q) = %d, want error", c.in, got)
			}
			continue
		}
		if err != nil || got != c.want {
			t.Errorf("ParseSize(%q) = %d, %v; want %d", c.in, got, err, c.want)
		}
	}
}

func TestParseCycles(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		bad  bool
	}{
		{"12000000", 12_000_000, false},
		{"0", 0, false},
		{"800K", 800_000, false},
		{"800k", 800_000, false},
		{"12M", 12_000_000, false},
		{"1.5M", 1_500_000, false},
		{"1G", 1_000_000_000, false},
		{" 2M ", 2_000_000, false},
		{"1e9", 1_000_000_000, false},
		{"2.5e8", 250_000_000, false},
		{"1e3", 1_000, false},
		// Bad inputs: suffixes are decimal cycles, not binary bytes, and
		// fractions of a cycle do not exist.
		{"", 0, true},
		{"K", 0, true},
		{"12X", 0, true},
		{"-1", 0, true},
		{"-2M", 0, true},
		{"1.5", 0, true},
		{"2.5e-8", 0, true},
		{"1e20", 0, true},
		{"9223372036854775807K", 0, true},
		{"window", 0, true},
		{"1e", 0, true},
	}
	for _, c := range cases {
		got, err := ParseCycles(c.in)
		if c.bad {
			if err == nil {
				t.Errorf("ParseCycles(%q) = %d, want error", c.in, got)
			}
			continue
		}
		if err != nil || got != c.want {
			t.Errorf("ParseCycles(%q) = %d, %v; want %d", c.in, got, err, c.want)
		}
	}
}

func TestCyclesFlag(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(nullWriter{})
	w := CyclesFlag(fs, "window", 12_000_000, "traced window")
	if err := fs.Parse([]string{"-window", "1e9"}); err != nil {
		t.Fatal(err)
	}
	if *w != 1_000_000_000 {
		t.Fatalf("-window 1e9 parsed to %d", *w)
	}
	fs2 := flag.NewFlagSet("test", flag.ContinueOnError)
	fs2.SetOutput(nullWriter{})
	d := CyclesFlag(fs2, "window", 12_000_000, "traced window")
	if err := fs2.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if *d != 12_000_000 {
		t.Fatalf("default window = %d, want 12000000", *d)
	}
	fs3 := flag.NewFlagSet("test", flag.ContinueOnError)
	fs3.SetOutput(nullWriter{})
	CyclesFlag(fs3, "window", 0, "traced window")
	if err := fs3.Parse([]string{"-window", "64KB"}); err == nil {
		t.Fatal("bad -window suffix accepted")
	}
}

type nullWriter struct{}

func (nullWriter) Write(p []byte) (int, error) { return len(p), nil }

func resolve(t *testing.T, args ...string) (arch.Machine, error) {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parse %v: %v", args, err)
	}
	return f.Machine()
}

func TestDefaultPresetIsTheMeasuredMachine(t *testing.T) {
	m, err := resolve(t)
	if err != nil {
		t.Fatal(err)
	}
	if m != arch.Default() {
		t.Fatalf("default preset = %+v, want arch.Default()", m)
	}
}

func TestPreset4d380(t *testing.T) {
	m, err := resolve(t, "-machine", "4d380")
	if err != nil {
		t.Fatal(err)
	}
	if m.NCPU != 8 || m.MemBytes != 64<<20 {
		t.Fatalf("4d380 = %+v, want 8 CPUs / 64 MB", m)
	}
	want := arch.Default()
	want.NCPU, want.MemBytes = 8, 64<<20
	if m != want {
		t.Fatalf("4d380 changes more than NCPU/MemBytes: %+v", m)
	}
}

func TestOverridesApplyOnTopOfPreset(t *testing.T) {
	m, err := resolve(t, "-machine", "4d380",
		"-icache", "128K", "-dcache-l2", "1M", "-dcache-l2-assoc", "2",
		"-tlb", "128", "-miss-stall", "40", "-l2hit-stall", "0")
	if err != nil {
		t.Fatal(err)
	}
	if m.NCPU != 8 || m.ICacheSize != 128<<10 || m.DCacheL2Size != 1<<20 ||
		m.DCacheL2Assoc != 2 || m.TLBEntries != 128 ||
		m.MissStallCycles != 40 || m.L1MissL2HitCycles != 0 {
		t.Fatalf("overrides not applied: %+v", m)
	}
}

func TestBadInputsAreRejected(t *testing.T) {
	if _, err := resolve(t, "-machine", "4d999"); err == nil {
		t.Error("unknown preset accepted")
	}
	if _, err := resolve(t, "-icache", "64KB"); err == nil {
		t.Error("bad size suffix accepted")
	}
	// A syntactically fine override that produces a degenerate machine
	// must fail Validate with the field named.
	_, err := resolve(t, "-dcache-l2", "48K")
	if err == nil {
		t.Fatal("non-power-of-two cache size accepted")
	}
}
