package arch

import (
	"strings"
	"testing"
)

// TestDefaultMatchesConstants pins Default() to the package-level constants
// field by field: the runtime descriptor and the historical constants must
// describe the same machine.
func TestDefaultMatchesConstants(t *testing.T) {
	m := Default()
	want := Machine{
		NCPU:              DefaultCPUs,
		ClockMHz:          ClockMHz,
		ICacheSize:        ICacheSize,
		ICacheAssoc:       1,
		DCacheL1Size:      DCacheL1Size,
		DCacheL1Assoc:     1,
		DCacheL2Size:      DCacheL2Size,
		DCacheL2Assoc:     1,
		MemBytes:          MemBytes,
		TLBEntries:        TLBEntries,
		MissStallCycles:   MissStallCycles,
		L1MissL2HitCycles: L1MissL2HitCycles,
	}
	if m != want {
		t.Fatalf("Default() = %+v, want %+v", m, want)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("Default().Validate() = %v", err)
	}
	if got := m.MemFrames(); got != MemFrames {
		t.Fatalf("Default().MemFrames() = %d, want %d", got, MemFrames)
	}
}

// TestValidateRejectsDegenerateConfigs drives Validate through every
// degeneracy it guards against and checks the error names the bad field.
func TestValidateRejectsDegenerateConfigs(t *testing.T) {
	mod := func(f func(*Machine)) Machine {
		m := Default()
		f(&m)
		return m
	}
	tests := []struct {
		name      string
		m         Machine
		wantField string // substring the error must contain; "" = valid
	}{
		{"default", Default(), ""},
		{"zero value", Machine{}, "NCPU"},
		{"zero cpus", mod(func(m *Machine) { m.NCPU = 0 }), "NCPU"},
		{"negative cpus", mod(func(m *Machine) { m.NCPU = -2 }), "NCPU"},
		{"zero clock", mod(func(m *Machine) { m.ClockMHz = 0 }), "ClockMHz"},
		{"icache not power of two", mod(func(m *Machine) { m.ICacheSize = 96 * 1024 }), "ICacheSize"},
		{"icache below kernel-text floor", mod(func(m *Machine) { m.ICacheSize = 8 * 1024 }), "ICacheSize"},
		{"icache assoc zero", mod(func(m *Machine) { m.ICacheAssoc = 0 }), "ICacheAssoc"},
		{"icache assoc not power of two", mod(func(m *Machine) { m.ICacheAssoc = 3 }), "ICacheAssoc"},
		{"l1 not power of two", mod(func(m *Machine) { m.DCacheL1Size = 48 * 1024 }), "DCacheL1Size"},
		{"l1 assoc negative", mod(func(m *Machine) { m.DCacheL1Assoc = -1 }), "DCacheL1Assoc"},
		{"l2 not power of two", mod(func(m *Machine) { m.DCacheL2Size = 3 << 20 }), "DCacheL2Size"},
		{"l2 assoc exceeds lines", mod(func(m *Machine) {
			m.DCacheL1Size = 64
			m.DCacheL1Assoc = 8
		}), "DCacheL1Assoc"},
		{"l1 bigger than l2", mod(func(m *Machine) {
			m.DCacheL1Size = 512 * 1024
			m.DCacheL2Size = 256 * 1024
		}), "DCacheL1Size"},
		{"memory not page multiple", mod(func(m *Machine) { m.MemBytes = 32*1024*1024 + 100 }), "MemBytes"},
		{"memory smaller than reserved frames", mod(func(m *Machine) { m.MemBytes = 4 * 1024 * 1024 }), "MemBytes"},
		{"zero memory", mod(func(m *Machine) { m.MemBytes = 0 }), "MemBytes"},
		{"zero tlb", mod(func(m *Machine) { m.TLBEntries = 0 }), "TLBEntries"},
		{"zero miss stall", mod(func(m *Machine) { m.MissStallCycles = 0 }), "MissStallCycles"},
		{"negative l2-hit stall", mod(func(m *Machine) { m.L1MissL2HitCycles = -1 }), "L1MissL2HitCycles"},
		{"valid 4d380-like", mod(func(m *Machine) {
			m.NCPU = 8
			m.MemBytes = 64 * 1024 * 1024
		}), ""},
		{"valid two-way 1M L2", mod(func(m *Machine) {
			m.DCacheL2Size = 1 << 20
			m.DCacheL2Assoc = 2
		}), ""},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.m.Validate()
			if tt.wantField == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() = nil, want error naming %s", tt.wantField)
			}
			if !strings.Contains(err.Error(), tt.wantField) {
				t.Fatalf("Validate() = %q, does not name %s", err, tt.wantField)
			}
		})
	}
}

// TestMachineString spot-checks the one-line description format.
func TestMachineString(t *testing.T) {
	got := Default().String()
	for _, want := range []string{"4×33MHz", "I=64K/1", "D=64K/1+256K/1", "mem=32M", "tlb=64", "stall=35/15"} {
		if !strings.Contains(got, want) {
			t.Fatalf("Default().String() = %q, missing %q", got, want)
		}
	}
}
