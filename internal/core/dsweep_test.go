package core

import (
	"testing"

	"repro/internal/workload"
)

// TestDCacheSweepSharingFloor validates §4.2.2 on a real workload: growing
// the data cache 16x leaves the Sharing misses standing.
func TestDCacheSweepSharingFloor(t *testing.T) {
	ch := Run(Config{Workload: workload.Multpgm, Window: 4_000_000,
		Warmup: 2_000_000, Seed: 6, CollectDResim: true})
	pts := ch.DCacheSweep(nil)
	base, biggest := pts[0], pts[len(pts)-1]
	t.Logf("256KB DM: %d OS D-misses (%d sharing)", base.OSMisses, base.OSSharing)
	t.Logf("4MB 2-way: %d OS D-misses (%d sharing) — relative %.2f",
		biggest.OSMisses, biggest.OSSharing, biggest.Relative)
	if biggest.OSMisses >= base.OSMisses {
		t.Fatal("bigger cache did not help at all")
	}
	// The floor: sharing misses survive the 16x capacity increase.
	if biggest.OSSharing < base.OSSharing/2 {
		t.Errorf("sharing misses collapsed with capacity (%d → %d): the §4.2.2 floor is missing",
			base.OSSharing, biggest.OSSharing)
	}
	// The paper's conclusion: capacity "can only moderately increase
	// the data cache performance of the OS" — a 16x bigger cache must
	// leave most OS data misses standing.
	if biggest.Relative < 0.7 {
		t.Errorf("16x capacity removed %.0f%% of OS D-misses; the paper's "+
			"moderate-improvement claim broke", 100*(1-biggest.Relative))
	}
}
