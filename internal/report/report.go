// Package report renders every table and figure of the paper's evaluation
// from Characterization runs, printing the paper's published values beside
// the reproduced ones wherever the paper gives numbers.
package report

import (
	"context"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"repro/internal/arch"
	"repro/internal/cachesweep"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/klock"
	"repro/internal/kmem"
	"repro/internal/metrics"
	"repro/internal/runner"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Set bundles one run per workload (the standard experiment set).
type Set struct {
	Pmake   *core.Characterization
	Multpgm *core.Characterization
	Oracle  *core.Characterization
	// Stats is the timing/allocation record of the batch that built the
	// set (zero-valued for hand-assembled sets).
	Stats metrics.BatchStats
	// Parallelism is carried into the re-simulation fan-outs (Figure 6);
	// <= 0 means GOMAXPROCS.
	Parallelism int
}

// RunSet executes all three workloads with the given base config, fanning
// them across the runner's default worker pool. Output is byte-identical
// to a serial execution (each run is seeded independently).
func RunSet(cfg core.Config) *Set {
	return RunSetParallel(cfg, runner.Options{})
}

// RunSetParallel is RunSet with an explicit worker-pool size
// (Parallelism 1 restores strictly serial execution).
func RunSetParallel(cfg core.Config, opts runner.Options) *Set {
	set, err := RunSetContext(context.Background(), cfg, opts)
	if err != nil {
		// A background context never cancels, so the only possible error
		// is a run panic — re-raise it with its structured provenance
		// after the rest of the batch has resolved.
		panic(err)
	}
	return set
}

// RunSetContext is RunSetParallel under a context: cancellation or
// deadline expiry stops the in-flight runs before their next bus
// transaction and returns the first run's structured error (a
// *core.CanceledError or *runner.PanicError) instead of a Set.
func RunSetContext(ctx context.Context, cfg core.Config, opts runner.Options) (*Set, error) {
	kinds := []workload.Kind{workload.Pmake, workload.Multpgm, workload.Oracle}
	cfgs := make([]core.Config, len(kinds))
	for i, k := range kinds {
		cfgs[i] = cfg
		cfgs[i].Workload = k
	}
	res, batch := runner.ExperimentsContext(ctx, cfgs, opts)
	for _, r := range res {
		if r.Err != nil {
			return nil, r.Err
		}
	}
	return &Set{
		Pmake: res[0].Ch, Multpgm: res[1].Ch, Oracle: res[2].Ch,
		Stats: batch, Parallelism: opts.Parallelism,
	}, nil
}

// Single renders one run as a compact deterministic report: the header
// identifies the run by workload, geometry, seed and canonical config
// hash; the body carries the headline Table 1 quantities and kernel
// counters. Reruns of the same config produce byte-identical output —
// the experiment service's result cache and the robustness oracle tests
// (canceled-then-rerun, service-vs-serial) rely on exactly that.
func Single(ch *core.Characterization) string {
	var b strings.Builder
	cfg := ch.Cfg
	fmt.Fprintf(&b, "run %s ncpu=%d seed=%d window=%d warmup=%d\n",
		cfg.Workload, cfg.NCPU, cfg.Seed, cfg.Window, cfg.Warmup)
	fmt.Fprintf(&b, "config %s\n", cfg.Hash())
	user, sys, idle := ch.TimeSplit()
	fmt.Fprintf(&b, "time split: user %.2f%% sys %.2f%% idle %.2f%%\n", user, sys, idle)
	if ch.Sampled != nil {
		writeSampled(&b, ch)
	} else if ch.Trace != nil {
		all, osOnly, osInd := ch.StallPct()
		fmt.Fprintf(&b, "os miss share: %.2f%%\n", ch.OSMissShare())
		fmt.Fprintf(&b, "memory stalls: all %.2f%% os %.2f%% os+induced %.2f%%\n", all, osOnly, osInd)
		fmt.Fprintf(&b, "bus misses: %d (os %d)\n", ch.Trace.Total, ch.Trace.OSMissTotal)
	}
	cur, rmw := ch.SyncStallPct()
	fmt.Fprintf(&b, "sync stalls: current %.2f%% rmw-cached %.2f%%\n", cur, rmw)
	fmt.Fprintf(&b, "kernel ops: ctxswitch=%d migrations=%d spawns=%d exits=%d disk=%d\n",
		ch.Ops.CtxSwitches, ch.Ops.Migrations, ch.Ops.Spawns, ch.Ops.Exits, ch.Ops.DiskRequests)
	if len(ch.CheckErrors) > 0 {
		fmt.Fprintf(&b, "invariant violations: %d\n", len(ch.CheckErrors))
	}
	return b.String()
}

// pm renders an estimated quantity with its standard error.
func pm(v, e float64) string { return fmt.Sprintf("%.0f±%.0f", v, e) }

// ratio propagates relative standard errors through a quotient (first-
// order, treating numerator and denominator as independent — an
// approximation, since the OS misses are part of the total, but good
// enough for a report's error column).
func ratio(num, numErr, den, denErr float64) (r, rErr float64) {
	if den == 0 {
		return 0, 0
	}
	r = num / den
	if num != 0 {
		rErr = r * math.Sqrt((numErr/num)*(numErr/num)+(denErr/den)*(denErr/den))
	}
	return r, rErr
}

// writeSampled renders the sampled-run counterpart of the classification
// lines: the same headline quantities, each carrying the standard error
// of its extrapolation, plus the per-class estimate table. The exact
// lines around it (time split, sync stalls, kernel ops) need no error
// bars — they are trajectory-exact under sampling.
func writeSampled(b *strings.Builder, ch *core.Characterization) {
	e := ch.Sampled
	fmt.Fprintf(b, "sampling: %s — %d samples, %s of %s cycles measured\n",
		e.Schedule, e.Samples, e.MeasuredCycles().Compact(), e.Window.Compact())
	tot, totErr := e.TotalAll()
	osTot, osErr := e.TotalOS()
	share, shareErr := ratio(osTot, osErr, tot, totErr)
	fmt.Fprintf(b, "os miss share: %.2f%% ± %.2f%%\n", 100*share, 100*shareErr)
	if nonIdle := float64(ch.NonIdle()); nonIdle > 0 {
		stall := float64(ch.Cfg.Machine.MissStallCycles)
		pct := func(v float64) float64 { return 100 * v * stall / nonIdle }
		indTot, indErr := e.ClassTotal(0, -1, int(trace.DispOS))
		fmt.Fprintf(b, "memory stalls: all %.2f%% ± %.2f%% os %.2f%% ± %.2f%% os+induced %.2f%% ± %.2f%%\n",
			pct(tot), pct(totErr), pct(osTot), pct(osErr),
			pct(osTot+indTot), pct(math.Sqrt(osErr*osErr+indErr*indErr)))
	}
	fmt.Fprintf(b, "bus misses: %.0f ± %.0f (os %.0f ± %.0f)\n", tot, totErr, osTot, osErr)
	fmt.Fprintf(b, "miss classes (estimated whole-window counts ± stderr):\n")
	for cl := trace.MissClass(0); cl < trace.NumClasses; cl++ {
		ai, aiE := e.ClassTotal(0, 1, int(cl))
		ad, adE := e.ClassTotal(0, 0, int(cl))
		oi, oiE := e.ClassTotal(1, 1, int(cl))
		od, odE := e.ClassTotal(1, 0, int(cl))
		fmt.Fprintf(b, "  %-8s app-i %-14s app-d %-14s os-i %-14s os-d %-14s\n",
			cl, pm(ai, aiE), pm(ad, adE), pm(oi, oiE), pm(od, odE))
	}
}

// ReportViolations writes a run's invariant violations to w and reports
// whether there were any. At most max collected errors are printed (max <
// 0 prints all). The checker caps its collected list independently of the
// violation counter, so a positive count with an empty list prints the
// count alone — never index CheckErrors unguarded.
func ReportViolations(w io.Writer, name string, ch *core.Characterization, max int) bool {
	if ch == nil || ch.Sim.Chk == nil || ch.Sim.Chk.Violations == 0 {
		return false
	}
	chk := ch.Sim.Chk
	fmt.Fprintf(w, "%s: %d invariant violations (%d checks)\n", name, chk.Violations, chk.Checks)
	errs := ch.CheckErrors
	if max >= 0 && len(errs) > max {
		errs = errs[:max]
	}
	for _, e := range errs {
		fmt.Fprintf(w, "  %v\n", e)
	}
	if dropped := chk.Violations - int64(len(ch.CheckErrors)); dropped > 0 {
		fmt.Fprintf(w, "  ... %d more violations not collected (list capped)\n", dropped)
	}
	return true
}

// each iterates the set in paper order.
func (s *Set) each(f func(name string, ch *core.Characterization)) {
	f("Pmake", s.Pmake)
	f("Multpgm", s.Multpgm)
	f("Oracle", s.Oracle)
}

// paperTable1 rows: user, sys, idle, OS-miss share, stall all/os/os+ind.
var paperTable1 = map[string][7]float64{
	"Pmake":   {49.4, 31.1, 19.5, 52.6, 39.9, 21.0, 25.8},
	"Multpgm": {53.2, 46.7, 0.1, 46.3, 46.5, 21.5, 24.9},
	"Oracle":  {62.4, 29.4, 8.2, 26.6, 62.5, 16.6, 26.8},
}

// cell formats one measured|paper pair for the comparison tables.
func cell(m, ref float64) string { return fmt.Sprintf("%.1f|%.1f", m, ref) }

// Table1 renders the workload characteristics.
func Table1(s *Set) string {
	t := metrics.NewTable("Table 1: Characteristics of the workloads (measured | paper)",
		"Workload", "User%", "Sys%", "Idle%", "OSMiss/Tot%", "Stall All%", "Stall OS%", "Stall OS+Ind%")
	s.each(func(name string, ch *core.Characterization) {
		u, sy, id := ch.TimeSplit()
		all, os, ind := ch.StallPct()
		p := paperTable1[name]
		t.AddRow(name, cell(u, p[0]), cell(sy, p[1]), cell(id, p[2]),
			cell(ch.OSMissShare(), p[3]), cell(all, p[4]), cell(os, p[5]), cell(ind, p[6]))
	})
	return t.String()
}

// Figure1 renders the average repeating execution pattern.
func Figure1(s *Set) string {
	t := metrics.NewTable("Figure 1: Average times and misses in the basic repeating pattern",
		"Workload", "OS cyc", "OS I-miss", "OS D-miss", "Idle cyc", "App cyc",
		"App I-miss", "App D-miss", "UTLB/app", "UTLBmiss/fault", "ms between OS inv (paper)")
	paperMS := map[string]float64{"Pmake": 1.9, "Multpgm": 0.4, "Oracle": 0.7}
	s.each(func(name string, ch *core.Characterization) {
		st := ch.Invocations()
		t.AddRow(name,
			fmt.Sprintf("%.0f", st.OSAvgCycles),
			fmt.Sprintf("%.0f", st.OSAvgIMiss),
			fmt.Sprintf("%.0f", st.OSAvgDMiss),
			fmt.Sprintf("%.0f", st.IdleAvgCycles),
			fmt.Sprintf("%.0f", st.AppAvgCycles),
			fmt.Sprintf("%.0f", st.AppAvgIMiss),
			fmt.Sprintf("%.0f", st.AppAvgDMiss),
			fmt.Sprintf("%.1f", st.AppAvgUTLBs),
			fmt.Sprintf("%.2f", st.UTLBMissPerFault),
			fmt.Sprintf("%.2f|%.1f", st.MsBetweenInvocations, paperMS[name]))
	})
	t.Note("paper (Pmake): 154 I- and 141 D-misses per OS invocation; <0.1 miss per UTLB fault")
	return t.String()
}

// Figure2 renders the OS operation mix of Multpgm (UTLB faults excluded,
// as in the paper).
func Figure2(s *Set) string {
	ch := s.Multpgm
	var tot int64
	for op := kernel.OpKind(0); op < kernel.NumOps; op++ {
		if op == kernel.OpCheapTLB {
			continue
		}
		tot += ch.Ops.OpCounts[op]
	}
	paper := map[kernel.OpKind]string{
		kernel.OpSginap:       "≈50",
		kernel.OpExpensiveTLB: "≈20 (all TLB faults)",
		kernel.OpIOSyscall:    "≈20",
		kernel.OpInterrupt:    "≈5 (clock) + other",
	}
	t := metrics.NewTable("Figure 2: Frequency of OS operations in Multpgm",
		"Operation", "Count", "Share%", "Paper%")
	for op := kernel.OpKind(0); op < kernel.NumOps; op++ {
		if op == kernel.OpCheapTLB {
			continue
		}
		t.AddRow(op.String(), ch.Ops.OpCounts[op],
			metrics.PctOf(ch.Ops.OpCounts[op], tot), paper[op])
	}
	return t.String()
}

// Figure3 renders the distributions of I-misses, D-misses and cycles per
// OS invocation in Pmake.
func Figure3(s *Set) string {
	ch := s.Pmake
	im := metrics.NewHistogram(10, 50, 100, 200, 400, 800)
	dm := metrics.NewHistogram(10, 50, 100, 200, 400, 800)
	cy := metrics.NewHistogram(1000, 5000, 10000, 25000, 50000, 100000)
	type acc struct {
		i, d int
		cyc  arch.Cycles
	}
	// Merge SegOS pieces of the same invocation (idle excluded, as the
	// paper notes).
	for cpuIdx, segs := range ch.Trace.Segments {
		per := map[[2]uint32]*acc{}
		var order [][2]uint32
		for _, sg := range segs {
			if sg.Kind != trace.SegOS {
				continue
			}
			key := [2]uint32{uint32(cpuIdx), sg.InvID}
			a := per[key]
			if a == nil {
				a = &acc{}
				per[key] = a
				order = append(order, key)
			}
			a.i += sg.IMiss
			a.d += sg.DMiss
			a.cyc += sg.Cycles
		}
		for _, key := range order {
			a := per[key]
			im.Add(float64(a.i))
			dm.Add(float64(a.d))
			cy.Add(float64(a.cyc))
		}
	}
	// For completeness' sake the paper's companion report [18] also
	// shows the application-invocation distributions.
	aim := metrics.NewHistogram(10, 50, 100, 200, 400, 800)
	acy := metrics.NewHistogram(1000, 5000, 10000, 25000, 50000, 100000)
	for _, segs := range ch.Trace.Segments {
		for _, sg := range segs {
			if sg.Kind == trace.SegApp {
				aim.Add(float64(sg.IMiss + sg.DMiss))
				acy.Add(float64(sg.Cycles))
			}
		}
	}
	return im.Render("Figure 3a: I-misses per OS invocation (Pmake)") +
		dm.Render("Figure 3b: D-misses per OS invocation (Pmake)") +
		cy.Render("Figure 3c: cycles per OS invocation (Pmake, idle excluded)") +
		aim.Render("[18]: misses per application invocation (Pmake)") +
		acy.Render("[18]: cycles per application invocation (Pmake)")
}

func classRow(ch *core.Characterization, instr int) []string {
	os := ch.Trace.OSMissTotal
	var cells []string
	for cl := trace.MissClass(0); cl < trace.NumClasses; cl++ {
		cells = append(cells, fmt.Sprintf("%.1f", metrics.PctOf(ch.Trace.Counts[1][instr][cl], os)))
	}
	return cells
}

// missClassFigure renders one half of the Figure 4 / Figure 7 pair: the
// per-class OS miss breakdown for instruction (instr=1) or data (instr=0)
// misses, plus the Dispossame sub-table.
func missClassFigure(s *Set, instr int, titleA, totCol, noteA, titleB, noteB string,
	dispossame func(*trace.Result) int64) string {
	t := metrics.NewTable(titleA,
		"Workload", "Cold", "Dispos", "Dispap", "Sharing", "Inval", "Uncached", totCol)
	s.each(func(name string, ch *core.Characterization) {
		row := []interface{}{name}
		for _, c := range classRow(ch, instr) {
			row = append(row, c)
		}
		tot := metrics.PctOf(ch.Trace.ClassSum(1, instr), ch.Trace.OSMissTotal)
		row = append(row, fmt.Sprintf("%.1f", tot))
		t.AddRow(row...)
	})
	if noteA != "" {
		t.Note("%s", noteA)
	}
	b := metrics.NewTable(titleB, "Workload", "Dispossame%")
	s.each(func(name string, ch *core.Characterization) {
		b.AddRow(name, metrics.PctOf(dispossame(ch.Trace), ch.Trace.Counts[1][instr][trace.DispOS]))
	})
	if noteB != "" {
		b.Note("%s", noteB)
	}
	return t.String() + b.String()
}

// Figure4 renders the OS instruction-miss classification.
func Figure4(s *Set) string {
	return missClassFigure(s, 1,
		"Figure 4a: OS instruction misses by class (% of all OS misses)", "I total",
		"paper: instruction misses are 40-65% of all OS misses",
		"Figure 4b: Dispossame share of the Dispos I-misses",
		"paper: larger in Pmake than Multpgm (longer OS invocations)",
		func(r *trace.Result) int64 { return r.DispossameI })
}

// Figure5 renders the Dispos I-misses by OS routine, positions in
// multiples of the 64 KB I-cache.
func Figure5(s *Set) string {
	ch := s.Pmake
	kt := ch.Sim.K.T
	type entry struct {
		name  string
		pos   float64
		count int64
	}
	var entries []entry
	var total int64
	for id, n := range ch.Trace.DisposIByRoutine {
		r := kt.ByID(id)
		entries = append(entries, entry{r.Name, float64(r.Addr) / float64(ch.Cfg.Machine.ICacheSize), n})
		total += n
	}
	sort.Slice(entries, func(i, j int) bool {
		// Name tie-break: DisposIByRoutine is map-ordered, and equal counts
		// must not flip rows between runs (reports are diffed byte-for-byte).
		if entries[i].count != entries[j].count {
			return entries[i].count > entries[j].count
		}
		return entries[i].name < entries[j].name
	})
	t := metrics.NewTable("Figure 5: Self-interference (Dispos) I-misses by OS routine (Pmake)",
		"Routine", "Addr/64KB", "Misses", "Share%")
	top := 12
	if len(entries) < top {
		top = len(entries)
	}
	var covered int64
	for _, e := range entries[:top] {
		t.AddRow(e.name, fmt.Sprintf("%.2f", e.pos), e.count, metrics.PctOf(e.count, total))
		covered += e.count
	}
	t.Note("top %d routines cover %.0f%% of Dispos misses — the paper's 'thin spikes': "+
		"self-interference concentrates in a few routines", top, metrics.PctOf(covered, total))
	return t.String()
}

// figure6Result re-simulates one workload's I-cache sweep, fanning one
// pool job per cache configuration (plus the invalidation bound) through
// the runner. Point order and values match cachesweep.Figure6 exactly.
func figure6Result(ch *core.Characterization, opts runner.Options) cachesweep.Figure6Result {
	if ch.Trace == nil || len(ch.Trace.IResim) == 0 {
		panic("report: Figure6 requires CollectIResim")
	}
	stream, ncpu := ch.Trace.IResim, ch.Cfg.NCPU
	dm, tw := cachesweep.Figure6Configs()
	configs := append(append([]cachesweep.Config{}, dm...), tw...)
	baseline := cachesweep.Baseline(stream)
	// One job per configuration; the last job computes the bound.
	misses := runner.Map(len(configs)+1, opts, func(i int) int64 {
		if i == len(configs) {
			m, _ := cachesweep.InvalBound(stream, ncpu)
			return m
		}
		return cachesweep.Simulate(stream, ncpu, configs[i])
	})
	rel := func(m int64) float64 {
		if baseline == 0 {
			return 0
		}
		return float64(m) / float64(baseline)
	}
	res := cachesweep.Figure6Result{InvalBoundMisses: misses[len(configs)]}
	res.InvalBoundRel = rel(res.InvalBoundMisses)
	for i, cfg := range configs {
		p := cachesweep.Point{Config: cfg, OSMisses: misses[i], Relative: rel(misses[i])}
		if i < len(dm) {
			res.DirectMapped = append(res.DirectMapped, p)
		} else {
			res.TwoWay = append(res.TwoWay, p)
		}
	}
	return res
}

// Figure6 renders the I-cache size/associativity sweep, re-simulating
// each configuration on the set's worker pool.
func Figure6(s *Set) string {
	var b strings.Builder
	s.each(func(name string, ch *core.Characterization) {
		res := figure6Result(ch, runner.Options{Parallelism: s.Parallelism})
		t := metrics.NewTable(fmt.Sprintf("Figure 6 (%s): OS I-miss rate relative to the 64KB direct-mapped cache", name),
			"Size", "DM", "2-way", "Inval bound (DM floor)")
		for i, p := range res.DirectMapped {
			tw := "-"
			for _, q := range res.TwoWay {
				if q.Size == p.Size {
					tw = fmt.Sprintf("%.2f", q.Relative)
				}
			}
			bound := ""
			if i == len(res.DirectMapped)-1 {
				bound = fmt.Sprintf("%.2f", res.InvalBoundRel)
			}
			t.AddRow(fmt.Sprintf("%dKB", p.Size/1024), fmt.Sprintf("%.2f", p.Relative), tw, bound)
		}
		t.Note("paper: 2-way gives a noticeable drop; Pmake/Multpgm saturate by 256KB " +
			"(invalidation-bound); Oracle keeps dropping to 1MB")
		b.WriteString(t.String())
	})
	return b.String()
}

// Figure7 renders the OS data-miss classification.
func Figure7(s *Set) string {
	return missClassFigure(s, 0,
		"Figure 7a: OS data misses by class (% of all OS misses)", "D total", "",
		"Figure 7b: Dispossame share of the Dispos D-misses", "",
		func(r *trace.Result) int64 { return r.DispossameD })
}

// figure8Order is the paper's Figure 8 category order.
var figure8Order = []string{
	kmem.AttrKernelStack, kmem.AttrPCB, kmem.AttrEframe, kmem.AttrRestUser,
	kmem.AttrProcTable, kmem.AttrBcopy, kmem.AttrBclear, kmem.AttrPfdat,
	kmem.AttrBuffer, kmem.AttrInode, kmem.AttrRunQueue, kmem.AttrFreePgBuck,
	kmem.AttrHiNdproc,
}

// Figure8 renders the Sharing misses by data structure.
func Figure8(s *Set) string {
	t := metrics.NewTable("Figure 8: OS Sharing misses by data structure (% of OS sharing misses)",
		"Structure", "Pmake", "Multpgm", "Oracle")
	totals := map[string]int64{}
	s.each(func(name string, ch *core.Characterization) {
		for _, v := range ch.Trace.StructSharing {
			totals[name] += v
		}
	})
	appendRow := func(st string) {
		row := []interface{}{st}
		s.each(func(name string, ch *core.Characterization) {
			row = append(row, metrics.PctOf(ch.Trace.StructSharing[st], totals[name]))
		})
		t.AddRow(row...)
	}
	for _, st := range figure8Order {
		appendRow(st)
	}
	appendRow(kmem.AttrOther)
	t.Note("paper: the per-process structures (kernel stack, user structure, " +
		"process table) account for 40-65%% of sharing misses")
	return t.String()
}

// Table3 renders the data-structure sizes.
func Table3() string {
	t := metrics.NewTable("Table 3: Data structures contributing to OS sharing misses",
		"Structure", "Size (bytes)", "Paper (bytes)")
	for _, st := range []struct {
		name string
		size int
	}{
		{kmem.AttrKernelStack, kmem.KStackSize},
		{kmem.AttrPCB, kmem.PCBSize},
		{kmem.AttrEframe, kmem.EframeSize},
		{kmem.AttrRestUser, kmem.RestUSize},
		{kmem.AttrProcTable, kmem.ProcTableSize},
		{kmem.AttrPfdat, kmem.PfdatSize},
		{kmem.AttrBuffer, kmem.BufHeadersSize},
		{kmem.AttrInode, kmem.InodeTableSize},
		{kmem.AttrRunQueue, kmem.RunQueueSize},
		{kmem.AttrFreePgBuck, kmem.FreePgBuckSize},
	} {
		paper := kmem.Table3Sizes()[st.name]
		t.AddRow(st.name, st.size, paper)
	}
	t.Note("sizes match the paper's Table 3 exactly by construction")
	return t.String()
}

// paperTable4: kernel stack, user struc., process table, total, stall.
var paperTable4 = map[string][5]float64{
	"Pmake":   {4.8, 2.5, 2.6, 9.9, 1.0},
	"Multpgm": {14.4, 11.6, 7.8, 33.8, 4.2},
	"Oracle":  {18.0, 19.0, 7.1, 44.1, 2.6},
}

// Table4 renders the migration misses.
func Table4(s *Set) string {
	t := metrics.NewTable("Table 4: Data misses and stall caused by process migration (measured | paper)",
		"Workload", "KStack% of OS D", "UStruc%", "ProcTab%", "Total%", "Stall% non-idle")
	s.each(func(name string, ch *core.Characterization) {
		osD := ch.Trace.ClassSum(1, 0)
		p := paperTable4[name]
		m := ch.Trace.MigrationByStruct
		t.AddRow(name,
			cell(metrics.PctOf(m[trace.FamilyKernelStack], osD), p[0]),
			cell(metrics.PctOf(m[trace.FamilyUserStruct], osD), p[1]),
			cell(metrics.PctOf(m[trace.FamilyProcTable], osD), p[2]),
			cell(metrics.PctOf(ch.Trace.MigrationTotal, osD), p[3]),
			cell(ch.MigrationStallPct(), p[4]))
	})
	return t.String()
}

// paperTable5: runq, lowlevel, rwsetup, total.
var paperTable5 = map[string][4]float64{
	"Pmake":   {11.5, 7.3, 6.4, 25.2},
	"Multpgm": {20.5, 12.9, 13.2, 46.6},
	"Oracle":  {14.3, 14.5, 20.7, 49.5},
}

// Table5 renders the migration misses by operation.
func Table5(s *Set) string {
	t := metrics.NewTable("Table 5: Migration misses by operation (% of migration misses; measured | paper)",
		"Workload", "Run queue mgmt", "Low-level exc.", "R/W setup", "Total")
	s.each(func(name string, ch *core.Characterization) {
		g := ch.Trace.MigrationByGroup
		tot := ch.Trace.MigrationTotal
		p := paperTable5[name]
		a := metrics.PctOf(g[kernel.GroupRunQueue], tot)
		b := metrics.PctOf(g[kernel.GroupLowLevel], tot)
		c := metrics.PctOf(g[kernel.GroupRWSetup], tot)
		t.AddRow(name, cell(a, p[0]), cell(b, p[1]), cell(c, p[2]), cell(a+b+c, p[3]))
	})
	return t.String()
}

// paperTable6: copy, clear, traverse, total, stall.
var paperTable6 = map[string][5]float64{
	"Pmake":   {17.6, 23.7, 19.7, 61.0, 6.2},
	"Multpgm": {15.1, 7.2, 15.7, 38.0, 4.7},
	"Oracle":  {8.6, 1.0, 1.0, 10.6, 0.6},
}

// Table6 renders the block-operation misses.
func Table6(s *Set) string {
	t := metrics.NewTable("Table 6: Data misses and stall caused by block operations (measured | paper)",
		"Workload", "Copy% of OS D", "Clear%", "Traverse%", "Total%", "Stall% non-idle")
	s.each(func(name string, ch *core.Characterization) {
		osD := ch.Trace.ClassSum(1, 0)
		b := ch.Trace.BlockOpDMisses
		p := paperTable6[name]
		cp := metrics.PctOf(b[kmem.RoutineBcopy], osD)
		clr := metrics.PctOf(b[kmem.RoutineBclear], osD)
		tr := metrics.PctOf(b[kmem.RoutineVhand], osD)
		t.AddRow(name, cell(cp, p[0]), cell(clr, p[1]), cell(tr, p[2]),
			cell(cp+clr+tr, p[3]), cell(ch.BlockOpStallPct(), p[4]))
	})
	return t.String()
}

// Table7 renders the block-size characterization for Pmake.
func Table7(s *Set) string {
	ch := s.Pmake
	ops := ch.Sim.K.BlockOpsSince(ch.Sim.BaseCounters)
	type bucket struct{ full, regular, irregular int }
	var copies, clears bucket
	classify := func(b *bucket, bytes int) {
		switch {
		case bytes == arch.PageSize:
			b.full++
		case bytes >= 512 && bytes%512 == 0:
			b.regular++
		default:
			b.irregular++
		}
	}
	for _, op := range ops {
		switch op.Kind {
		case kernel.BlockCopy:
			classify(&copies, op.Bytes)
		case kernel.BlockClear:
			classify(&clears, op.Bytes)
		}
	}
	t := metrics.NewTable("Table 7: Sizes of blocks copied/cleared in Pmake (measured | paper)",
		"Operation", "Size class", "Freq%")
	tc := copies.full + copies.regular + copies.irregular
	tl := clears.full + clears.regular + clears.irregular
	t.AddRow("Copy", "Full page", fmt.Sprintf("%.0f|5", metrics.PctOf(int64(copies.full), int64(tc))))
	t.AddRow("", "Regular fragment", fmt.Sprintf("%.0f|45", metrics.PctOf(int64(copies.regular), int64(tc))))
	t.AddRow("", "Irregular chunk", fmt.Sprintf("%.0f|50", metrics.PctOf(int64(copies.irregular), int64(tc))))
	t.AddRow("Clear", "Full page", fmt.Sprintf("%.0f|70", metrics.PctOf(int64(clears.full), int64(tl))))
	t.AddRow("", "Irregular chunk", fmt.Sprintf("%.0f|30", metrics.PctOf(int64(clears.regular+clears.irregular), int64(tl))))
	return t.String()
}

// Figure9 renders the misses by high-level OS operation.
func Figure9(s *Set) string {
	var b strings.Builder
	for _, instr := range []int{0, 1} {
		kindName := "data"
		if instr == 1 {
			kindName = "instruction"
		}
		t := metrics.NewTable(
			fmt.Sprintf("Figure 9: OS %s misses by high-level operation (%% of OS %s misses)", kindName, kindName),
			"Operation", "Pmake", "Multpgm", "Oracle")
		for op := kernel.OpKind(0); op < kernel.NumOps; op++ {
			row := []interface{}{op.String()}
			s.each(func(name string, ch *core.Characterization) {
				var tot int64
				for o := kernel.OpKind(0); o < kernel.NumOps; o++ {
					tot += ch.Trace.OpMisses[o][instr]
				}
				row = append(row, metrics.PctOf(ch.Trace.OpMisses[op][instr], tot))
			})
			t.AddRow(row...)
		}
		b.WriteString(t.String())
	}
	b.WriteString("  paper: I/O system calls and TLB faults dominate data misses; I/O calls\n" +
		"  dominate instruction misses; interrupts are relatively instruction-heavy.\n")
	return b.String()
}

// paperTable9 rows: total, instr, migration, blockops, rest.
var paperTable9 = map[string][5]float64{
	"Pmake":   {21.0, 10.9, 1.0, 6.2, 2.9},
	"Multpgm": {21.5, 9.2, 4.2, 4.7, 3.4},
	"Oracle":  {16.6, 10.6, 2.6, 0.6, 2.8},
}

// Table9 renders the consolidated stall components.
func Table9(s *Set) string {
	t := metrics.NewTable("Table 9: Components of the stall time caused by OS misses (measured | paper, % of non-idle)",
		"Workload", "Total OS", "Instr", "Migration D", "BlockOp D", "Rest")
	var avg [5]float64
	s.each(func(name string, ch *core.Characterization) {
		_, osStall, _ := ch.StallPct()
		in := ch.OSIMissStallPct()
		mig := ch.MigrationStallPct()
		blk := ch.BlockOpStallPct()
		rest := osStall - in - mig - blk
		p := paperTable9[name]
		t.AddRow(name, cell(osStall, p[0]), cell(in, p[1]), cell(mig, p[2]),
			cell(blk, p[3]), cell(rest, p[4]))
		for i, v := range []float64{osStall, in, mig, blk, rest} {
			avg[i] += v / 3
		}
	})
	t.AddRow("AVERAGE",
		fmt.Sprintf("%.1f|19.7", avg[0]), fmt.Sprintf("%.1f|10.2", avg[1]),
		fmt.Sprintf("%.1f|2.6", avg[2]), fmt.Sprintf("%.1f|3.8", avg[3]),
		fmt.Sprintf("%.1f|3.0", avg[4]))
	return t.String()
}

// Figure10 renders the OS-induced application misses.
func Figure10(s *Set) string {
	t := metrics.NewTable("Figure 10: Application misses induced by OS interference (Ap_dispos)",
		"Workload", "Ap_dispos% of app misses", "I part%", "D part%", "Paper%")
	paper := map[string]string{"Pmake": "22-27", "Multpgm": "22-27", "Oracle": "22-27"}
	s.each(func(name string, ch *core.Characterization) {
		appTot := ch.Trace.ClassSum(0, 0) + ch.Trace.ClassSum(0, 1)
		i := ch.Trace.Counts[0][1][trace.DispOS]
		d := ch.Trace.Counts[0][0][trace.DispOS]
		t.AddRow(name, metrics.PctOf(i+d, appTot), metrics.PctOf(i, appTot),
			metrics.PctOf(d, appTot), paper[name])
	})
	return t.String()
}

// paperTable10: current, rmw.
var paperTable10 = map[string][2]float64{
	"Pmake":   {4.2, 0.7},
	"Multpgm": {4.6, 0.8},
	"Oracle":  {4.7, 1.1},
}

// Table10 renders the synchronization stall estimates.
func Table10(s *Set) string {
	t := metrics.NewTable("Table 10: Stall time caused by OS synchronization accesses (measured | paper, % of non-idle)",
		"Workload", "Current machine", "Atomic RMW + caches")
	s.each(func(name string, ch *core.Characterization) {
		cur, rmw := ch.SyncStallPct()
		p := paperTable10[name]
		t.AddRow(name, fmt.Sprintf("%.1f|%.1f", cur, p[0]), fmt.Sprintf("%.1f|%.1f", rmw, p[1]))
	})
	t.Note("RMW column replays the lock-access log under a cacheable LL/SC protocol (§5.1)")
	return t.String()
}

// Table11 renders the lock functions.
func Table11() string {
	t := metrics.NewTable("Table 11: Functions performed by the most frequently-acquired locks",
		"Lock", "What the lock protects")
	for _, n := range []string{klock.Memlock, klock.Runqlk, klock.Ifree, klock.Dfbmaplk,
		klock.Bfreelock, klock.Calock, klock.ShrX, klock.StreamsX, klock.InoX, klock.Semlock} {
		t.AddRow(n, klock.LockFunction[n])
	}
	return t.String()
}

// paperTable12 rows: kcycles between acq, %failed, waiters, %same-cpu, cached/uncached%.
var paperTable12 = map[string][5]float64{
	klock.Memlock:   {9.5, 2.2, 1.02, 79.9, 12},
	klock.Runqlk:    {16.5, 13.7, 1.29, 36.9, 43},
	klock.Ifree:     {16.7, 0.8, 1.00, 91.4, 5},
	klock.Dfbmaplk:  {19.4, 0.0, 1.00, 99.0, 0},
	klock.Bfreelock: {22.5, 1.5, 1.00, 72.6, 15},
	klock.Calock:    {35.1, 0.3, 1.00, 11.4, 45},
}

// Table12 renders the per-lock characterization for Pmake.
func Table12(s *Set) string {
	ch := s.Pmake
	t := metrics.NewTable("Table 12: Most frequently acquired locks in Pmake (measured | paper)",
		"Lock", "kCyc between acq", "Failed%", "Waiters if any", "SameCPU%", "Cached/Uncached%")
	for _, name := range []string{klock.Memlock, klock.Runqlk, klock.Ifree,
		klock.Dfbmaplk, klock.Bfreelock, klock.Calock} {
		st := ch.Sim.K.Locks.FamilyStats(name)
		p := paperTable12[name]
		cell := func(v, ref float64, prec int) string {
			return fmt.Sprintf("%.*f|%.*f", prec, v, prec, ref)
		}
		t.AddRow(name,
			cell(st.CyclesBetweenAcq/1000, p[0], 1),
			cell(st.PctFailed, p[1], 1),
			cell(st.AvgWaitersIfAny, p[2], 2),
			cell(st.PctSameCPU, p[3], 1),
			cell(st.PctCachedVsUncached, p[4], 0))
	}
	return t.String()
}

// Figure11Point is one lock's contention at one CPU count.
type Figure11Point struct {
	NCPU          int
	Lock          string
	FailedPerMS   float64
	AcquiresPerMS float64
}

// figure11Window resolves a zero window to the one canonical default
// (arch.DefaultWindow), the same value core.Run and the CLI flags use.
func figure11Window(w arch.Cycles) arch.Cycles {
	if w <= 0 {
		return arch.DefaultWindow
	}
	return w
}

// RunFigure11 sweeps the CPU count for Multpgm and reports failed
// acquires per millisecond for the hottest locks (kernel Runqlk and
// Memlock plus the user-level Mp3d locks). The counts run on the default
// worker pool.
func RunFigure11(cpuCounts []int, window arch.Cycles, seed int64) []Figure11Point {
	pts, _ := RunFigure11Parallel(cpuCounts, window, seed, runner.Options{})
	return pts
}

// RunFigure11Parallel is RunFigure11 with an explicit worker-pool size; it
// also returns the batch timing record. Points come back in submission
// order (one group of locks per CPU count), byte-identical to a serial
// sweep.
func RunFigure11Parallel(cpuCounts []int, window arch.Cycles, seed int64,
	opts runner.Options) ([]Figure11Point, metrics.BatchStats) {
	pts, batch, err := RunFigure11Context(context.Background(), cpuCounts, window, seed, opts)
	if err != nil {
		panic(err) // only a run panic can surface under a background ctx
	}
	return pts, batch
}

// RunFigure11Context is RunFigure11Parallel under a context; a canceled
// or expired ctx returns the first run's structured error.
func RunFigure11Context(ctx context.Context, cpuCounts []int, window arch.Cycles, seed int64,
	opts runner.Options) ([]Figure11Point, metrics.BatchStats, error) {
	window = figure11Window(window)
	cfgs := make([]core.Config, len(cpuCounts))
	for i, n := range cpuCounts {
		cfgs[i] = core.Config{
			Workload: workload.Multpgm, NCPU: n, Seed: seed,
			Window: window, NoTrace: true,
		}
	}
	res, batch := runner.ExperimentsContext(ctx, cfgs, opts)
	for _, r := range res {
		if r.Err != nil {
			return nil, batch, r.Err
		}
	}
	var out []Figure11Point
	for i, r := range res {
		n, ch := cpuCounts[i], r.Ch
		// The paper plots failed acquires per millisecond of run time
		// (Y includes idle). Use the wall-clock window.
		wallMS := float64(window.NS()) / 1e6
		for _, lname := range []string{klock.Runqlk, klock.Memlock, klock.Ifree} {
			st := ch.Sim.K.Locks.FamilyStats(lname)
			out = append(out, Figure11Point{
				NCPU: n, Lock: lname,
				FailedPerMS:   float64(st.Failed) / wallMS,
				AcquiresPerMS: float64(st.Acquires) / wallMS,
			})
		}
		// Aggregate user locks (the mp3d cells/barrier).
		var fails, acqs int64
		for _, l := range ch.Sim.K.UserLocks {
			st := l.ComputeStats()
			fails += st.Failed
			acqs += st.Acquires
		}
		out = append(out, Figure11Point{NCPU: n, Lock: "mp3d user locks",
			FailedPerMS: float64(fails) / wallMS, AcquiresPerMS: float64(acqs) / wallMS})
	}
	return out, batch, nil
}

// Figure11 renders the contention sweep.
func Figure11(points []Figure11Point) string {
	t := metrics.NewTable("Figure 11: Lock contention vs number of CPUs (Multpgm)",
		"CPUs", "Lock", "Failed acq/ms", "Acq/ms")
	for _, p := range points {
		t.AddRow(p.NCPU, p.Lock, fmt.Sprintf("%.2f", p.FailedPerMS), fmt.Sprintf("%.2f", p.AcquiresPerMS))
	}
	t.Note("paper: contention (especially Runqlk) grows steadily with the CPU count")
	return t.String()
}

// All renders every table and figure from one Set.
func All(s *Set) string {
	var b strings.Builder
	secs := []string{
		Table1(s), Figure1(s), Figure2(s), Figure3(s), Figure4(s),
		Figure5(s), Figure7(s), Table3(), Figure8(s), Table4(s), Table5(s),
		Table6(s), Table7(s), Figure9(s), Table9(s), Figure10(s),
		Table10(s), Table11(), Table12(s),
	}
	for _, sec := range secs {
		b.WriteString(sec)
		b.WriteString("\n")
	}
	return b.String()
}
