package inject

import (
	"testing"

	"repro/internal/arch"
)

func TestPresetModes(t *testing.T) {
	cases := []struct {
		modes   string
		enabled bool
		wantErr bool
	}{
		{"", false, false},
		{"none", false, false},
		{"evict", true, false},
		{"jitter", true, false},
		{"intr", true, false},
		{"migrate", true, false},
		{"all", true, false},
		{"evict,intr", true, false},
		{"evict, migrate", true, false}, // spaces tolerated
		{"bogus", false, true},
		{"evict,bogus", false, true},
	}
	for _, tc := range cases {
		cfg, err := Preset(tc.modes)
		if (err != nil) != tc.wantErr {
			t.Errorf("Preset(%q) error = %v, wantErr %v", tc.modes, err, tc.wantErr)
			continue
		}
		if err == nil && cfg.Enabled() != tc.enabled {
			t.Errorf("Preset(%q).Enabled() = %v, want %v", tc.modes, cfg.Enabled(), tc.enabled)
		}
	}
}

func TestPresetCombination(t *testing.T) {
	cfg, err := Preset("evict,intr")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.EvictPeriod == 0 || cfg.IntrPeriod == 0 {
		t.Errorf("combined preset missing modes: %+v", cfg)
	}
	if cfg.JitterPct != 0 || cfg.MigratePeriod != 0 {
		t.Errorf("combined preset enabled unrequested modes: %+v", cfg)
	}
	if cfg.Modes() != "evict,intr" {
		t.Errorf("Modes() = %q", cfg.Modes())
	}
}

// TestScheduleDeterminism: two injectors with the same seed deliver the
// same fault schedule; a different seed diverges.
func TestScheduleDeterminism(t *testing.T) {
	cfg, _ := Preset("all")
	cfg.Seed = 42
	schedule := func(seed int64) []int {
		c := cfg
		c.Seed = seed
		in := New(c, 2)
		var fires []int
		for now := int64(0); now < 400_000; now += 500 {
			for cpu := 0; cpu < 2; cpu++ {
				if in.DueEvict(cpu, arch.Cycles(now)) {
					fires = append(fires, int(now), cpu, 0)
				}
				if in.DueIntr(cpu, arch.Cycles(now)) {
					fires = append(fires, int(now), cpu, 1)
				}
				if in.DueMigrate(cpu, arch.Cycles(now)) {
					fires = append(fires, int(now), cpu, 2)
				}
			}
		}
		return fires
	}
	a, b := schedule(42), schedule(42)
	if len(a) == 0 {
		t.Fatal("no faults scheduled")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different schedules: %d vs %d fires", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at %d", i)
		}
	}
	c := schedule(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical schedules")
	}
}

// TestJitterBounded: jitter only stretches transactions, never negative,
// never past the cap, and a zero config never jitters.
func TestJitterBounded(t *testing.T) {
	cfg, _ := Preset("jitter")
	cfg.Seed = 7
	in := New(cfg, 1)
	hits := 0
	for i := 0; i < 10_000; i++ {
		d := in.Jitter()
		if d < 0 || d > cfg.JitterMax {
			t.Fatalf("jitter %d outside [0, %d]", d, cfg.JitterMax)
		}
		if d > 0 {
			hits++
		}
	}
	if hits == 0 {
		t.Error("jitter never fired")
	}
	if in.Stats.JitteredTxns != int64(hits) {
		t.Errorf("stats count %d != observed %d", in.Stats.JitteredTxns, hits)
	}
	off := New(Config{Seed: 7}, 1)
	for i := 0; i < 100; i++ {
		if off.Jitter() != 0 {
			t.Fatal("disabled injector jittered")
		}
	}
}

func TestDisabledModesNeverFire(t *testing.T) {
	in := New(Config{Seed: 3}, 2) // no periods set
	for now := int64(0); now < 1_000_000; now += 1000 {
		if in.DueEvict(0, arch.Cycles(now)) || in.DueIFlush(0, arch.Cycles(now)) ||
			in.DueIntr(1, arch.Cycles(now)) || in.DueMigrate(1, arch.Cycles(now)) {
			t.Fatal("disabled mode fired")
		}
	}
}
