// Package check is the simulator's self-validation layer: an always-on
// invariant checker that cross-checks the coherence protocol, the shadow
// memory contents and the kernel's locking discipline while a simulation
// runs. Every number the reproduction reports is only as trustworthy as
// the snooping protocol and kernel model underneath; the checker is the
// golden model that catches silent drift (in the spirit of simulator
// validation work — see PAPERS.md) instead of letting it corrupt results.
//
// Three invariant families are maintained:
//
//   - Shadow memory: every block carries a version number bumped by each
//     store. A load that hits in a cache must observe the latest version;
//     a fill always supplies it (coherent memory). A violation names the
//     last writer — CPU, cycle and routine — as provenance.
//   - Per-line coherence: after every bus transaction the block's state
//     across all second-level caches must satisfy the MESI-like protocol:
//     at most one dirty copy, no copy coexisting with a dirty or
//     exclusive one elsewhere, dirty implies not-shared, and L1 contents
//     a subset of L2 (inclusion).
//   - Locks: no double-acquire of a kernel spinlock by one CPU
//     (self-deadlock), release only by the owner, and no interrupt
//     accepted while the CPU holds a lock that interrupt handlers take
//     (the spl/interrupt-masking rule).
//
// Violations are reported as structured *CheckError values — cycle, CPU,
// address, routine, last-writer provenance — either collected (the
// default) or raised immediately (FailFast).
package check

import (
	"fmt"

	"repro/internal/arch"
)

// Kind classifies an invariant violation.
type Kind uint8

const (
	// Coherence is a per-line protocol violation (two dirty copies, a
	// dirty or exclusive copy coexisting with another copy, ...).
	Coherence Kind = iota
	// Shadow is a stale-data violation: a load or instruction fetch hit
	// a cached copy that does not hold the last store's value.
	Shadow
	// Inclusion is an L1 copy without its L2 parent.
	Inclusion
	// LockViolation is a locking-discipline violation (double acquire,
	// release by non-owner, interrupt while holding an
	// interrupt-acquired lock).
	LockViolation
)

// String names the violation kind.
func (k Kind) String() string {
	switch k {
	case Coherence:
		return "coherence"
	case Shadow:
		return "shadow"
	case Inclusion:
		return "inclusion"
	case LockViolation:
		return "lock"
	default:
		return "check?"
	}
}

// CheckError is one structured invariant violation. It replaces the bare
// panics the simulator used to rely on: every field a postmortem needs is
// machine-readable.
type CheckError struct {
	Kind  Kind
	Cycle arch.Cycles
	CPU   arch.CPUID
	// Addr is the block address for memory violations (zero for lock
	// violations).
	Addr arch.PAddr
	// Lock is the lock (family) name for lock violations.
	Lock string
	// Routine is the kernel routine executing on the violating CPU, when
	// known.
	Routine string
	// Detail is a human-readable description of the violated invariant.
	Detail string
	// Owner is the provenance of the conflicting state: the last writer
	// of the block (shadow violations) or the holder of the lock (lock
	// violations), with the cycle and routine of that event.
	Owner        arch.CPUID
	OwnerCycle   arch.Cycles
	OwnerRoutine string
	// HasOwner reports whether the Owner fields are meaningful.
	HasOwner bool
}

// Error renders the violation on one line.
func (e *CheckError) Error() string {
	s := fmt.Sprintf("check: %s violation at cycle %d on CPU %d", e.Kind, e.Cycle, e.CPU)
	if e.Lock != "" {
		s += fmt.Sprintf(" lock %s", e.Lock)
	} else {
		s += fmt.Sprintf(" addr %#x", uint32(e.Addr))
	}
	if e.Routine != "" {
		s += fmt.Sprintf(" in %s", e.Routine)
	}
	s += ": " + e.Detail
	if e.HasOwner {
		who := "last store"
		if e.Kind == LockViolation {
			who = "held"
		}
		s += fmt.Sprintf(" (%s by CPU %d at cycle %d", who, e.Owner, e.OwnerCycle)
		if e.OwnerRoutine != "" {
			s += " in " + e.OwnerRoutine
		}
		s += ")"
	}
	return s
}

// BusView is the checker's read-only window into the coherent cache
// complex. The bus package implements it; the checker never mutates cache
// state.
type BusView interface {
	// NCPUs returns the processor count.
	NCPUs() int
	// DState reports the coherence-level (L2) state of the block
	// containing a in cpu's data cache.
	DState(cpu int, a arch.PAddr) (resident, dirty, shared bool)
	// L1Resident reports whether the block is resident in cpu's
	// first-level data cache.
	L1Resident(cpu int, a arch.PAddr) bool
}

// Level says where a data reference was satisfied, from the checker's
// point of view.
type Level uint8

const (
	// LevelFill is a miss filled over the bus (or a cache-bypassing
	// transfer).
	LevelFill Level = iota
	// LevelL1 is a first-level hit.
	LevelL1
	// LevelL2 is a second-level hit.
	LevelL2
)

// blocksPerPage is the number of cache blocks in one page frame; shadow
// state is kept in dense per-frame pages rather than one heap object per
// touched block.
const blocksPerPage = int(arch.PageSize / arch.BlockSize)

// shadowPage is the shadow state of one page frame's blocks: version
// numbers and last-writer provenance in fixed arrays indexed by the block's
// offset within the page, plus flattened per-CPU copy-version tables
// (index bi*n+q) allocated lazily per reference class. It replaces the old
// map[PAddr]*line — the per-event hot path is now two array indexings with
// no hashing and, after the page's first touch, no allocation.
type shadowPage struct {
	ver      [blocksPerPage]int64
	writer   [blocksPerPage]arch.CPUID
	wcycle   [blocksPerPage]arch.Cycles
	wroutine [blocksPerPage]string
	// dcopy[bi*n+q] is the version CPU q's data-cache copy of block bi
	// was filled or written with; icopy/iepoch the same for the
	// instruction cache, where iepoch must match the CPU's current flush
	// epoch for the copy to be considered live.
	dcopy  []int64
	icopy  []int64
	iepoch []int64
}

func (p *shadowPage) data(n int) []int64 {
	if p.dcopy == nil {
		p.dcopy = make([]int64, blocksPerPage*n)
	}
	return p.dcopy
}

func (p *shadowPage) instr(n int) ([]int64, []int64) {
	if p.icopy == nil {
		p.icopy = make([]int64, blocksPerPage*n)
		p.iepoch = make([]int64, blocksPerPage*n)
	}
	return p.icopy, p.iepoch
}

// provenance copies block bi's last-writer fields into an error.
func (p *shadowPage) provenance(bi int, e *CheckError) *CheckError {
	if p.ver[bi] > 0 {
		e.Owner = p.writer[bi]
		e.OwnerCycle = p.wcycle[bi]
		e.OwnerRoutine = p.wroutine[bi]
		e.HasOwner = true
	}
	return e
}

// maxErrors bounds the collected error list; Violations keeps counting.
const maxErrors = 64

// Checker is the invariant checker for one simulated machine. It is not
// safe for concurrent use (neither is the simulator).
type Checker struct {
	view BusView
	n    int
	// pages[frame] is the shadow page of that frame, nil until touched.
	pages []*shadowPage
	// iEpochNow[q] is bumped by every full flush of q's I-cache;
	// copies filled under an older epoch are dead.
	iEpochNow []int64

	// RoutineOf, when set, resolves the kernel routine currently
	// executing on a CPU (for diagnostics).
	RoutineOf func(arch.CPUID) string
	// FailFast panics with the first *CheckError instead of collecting.
	FailFast bool

	// warming suppresses invariant evaluation (reports, scans, Checks
	// counting) while keeping every shadow-state update, so a sampled
	// run's fast-forward phases keep the golden model converged without
	// paying for — or reporting from — checks against state the skipped
	// classifier could not explain. Lock checks (lock.go) stay fully
	// active regardless: they are cheap and their violations are real in
	// any phase.
	warming bool

	// Checks counts invariant evaluations; Violations counts failures
	// (including ones dropped from the capped error list).
	Checks     int64
	Violations int64
	errs       []*CheckError

	// Lock state (see lock.go). intrLocks is a dense table indexed by
	// interned lock-family ID.
	held      [][]heldLock
	intrDepth []int
	intrLocks []bool
}

// New builds a checker over the given cache view. frames sizes the shadow
// page table to the machine's physical memory (pages auto-grow past it for
// fabricated test addresses).
func New(view BusView, frames int) *Checker {
	n := view.NCPUs()
	return &Checker{
		view:      view,
		n:         n,
		pages:     make([]*shadowPage, frames),
		iEpochNow: make([]int64, n),
		held:      make([][]heldLock, n),
		intrDepth: make([]int, n),
	}
}

// Errors returns the collected violations (at most maxErrors; Violations
// has the true count).
func (k *Checker) Errors() []*CheckError { return k.errs }

// SetWarming switches the data-path checks between full verification
// (false, the default) and state-only functional warming (true). The
// simulator flips this at sampling phase boundaries.
func (k *Checker) SetWarming(w bool) { k.warming = w }

func (k *Checker) report(e *CheckError) {
	k.Violations++
	if k.FailFast {
		panic(e)
	}
	if len(k.errs) < maxErrors {
		k.errs = append(k.errs, e)
	}
}

// page returns the shadow page of the frame containing a (allocating it on
// first touch) and the block's index within the page.
func (k *Checker) page(a arch.PAddr) (*shadowPage, int) {
	f := int(a.Frame())
	if f >= len(k.pages) {
		grown := make([]*shadowPage, f+1)
		copy(grown, k.pages)
		k.pages = grown
	}
	pg := k.pages[f]
	if pg == nil {
		pg = &shadowPage{}
		k.pages[f] = pg
	}
	bi := int(uint32(a)>>arch.BlockShift) % blocksPerPage
	return pg, bi
}

func (k *Checker) routine(cpu arch.CPUID) string {
	if k.RoutineOf == nil {
		return ""
	}
	return k.RoutineOf(cpu)
}

// OnData observes one data reference after the bus has updated all cache
// state. a must be the block address.
func (k *Checker) OnData(cpu arch.CPUID, a arch.PAddr, write bool, lvl Level, now arch.Cycles) {
	if !k.warming {
		k.Checks++
	}
	pg, bi := k.page(a)
	d := pg.data(k.n)
	base := bi * k.n
	if write {
		// A write that hits must be modifying the latest version (a
		// read-modify-write of stale data is as wrong as a stale load).
		if !k.warming && lvl != LevelFill && d[base+int(cpu)] != pg.ver[bi] {
			k.report(pg.provenance(bi, &CheckError{
				Kind: Shadow, Cycle: now, CPU: cpu, Addr: a,
				Routine: k.routine(cpu),
				Detail: fmt.Sprintf("store hit a stale copy (copy version %d, memory version %d)",
					d[base+int(cpu)], pg.ver[bi]),
			}))
		}
		pg.ver[bi]++
		pg.writer[bi], pg.wcycle[bi], pg.wroutine[bi] = cpu, now, k.routine(cpu)
		// Coherence means the store is propagated: every copy still
		// resident after the transaction (the writer's under
		// invalidation; everyone's under update) holds the new version.
		for q := 0; q < k.n; q++ {
			if res, _, _ := k.view.DState(q, a); res {
				d[base+q] = pg.ver[bi]
			}
		}
	} else if lvl == LevelFill {
		// A fill always supplies the latest version: a dirty remote
		// copy sources it, otherwise memory (kept current by
		// write-backs) does.
		d[base+int(cpu)] = pg.ver[bi]
	} else if d[base+int(cpu)] != pg.ver[bi] {
		if !k.warming {
			k.report(pg.provenance(bi, &CheckError{
				Kind: Shadow, Cycle: now, CPU: cpu, Addr: a,
				Routine: k.routine(cpu),
				Detail: fmt.Sprintf("load observed a stale copy (copy version %d, memory version %d)",
					d[base+int(cpu)], pg.ver[bi]),
			}))
		}
		d[base+int(cpu)] = pg.ver[bi] // resync so one defect does not cascade
	}
	if k.warming {
		return
	}
	k.scan(cpu, a, now)
}

// OnBypass observes a cache-bypassing block transfer. Writes update
// memory directly (every cached copy was invalidated by the bus).
func (k *Checker) OnBypass(cpu arch.CPUID, a arch.PAddr, write bool, now arch.Cycles) {
	if !k.warming {
		k.Checks++
	}
	if write {
		pg, bi := k.page(a)
		pg.ver[bi]++
		pg.writer[bi], pg.wcycle[bi], pg.wroutine[bi] = cpu, now, k.routine(cpu)
	}
	if k.warming {
		return
	}
	k.scan(cpu, a, now)
}

// OnEvict observes a forced (injected) eviction: the copy disappears but
// no data is lost — dirty victims are written back. Only the line scan
// runs; the shadow copy map self-corrects on the next fill.
func (k *Checker) OnEvict(cpu arch.CPUID, a arch.PAddr, now arch.Cycles) {
	if k.warming {
		return
	}
	k.scan(cpu, a, now)
}

// OnFetch observes one instruction fetch. The machine has no hardware
// I-cache coherence: the kernel must flush before reusing a code frame,
// and this check proves it never lets a CPU execute stale instructions.
func (k *Checker) OnFetch(cpu arch.CPUID, a arch.PAddr, hit bool, now arch.Cycles) {
	if !k.warming {
		k.Checks++
	}
	pg, bi := k.page(a)
	ic, ep := pg.instr(k.n)
	i := bi*k.n + int(cpu)
	if !hit {
		// A miss re-records the copy's version in every phase: fills
		// always supply current code.
		ic[i] = pg.ver[bi]
		ep[i] = k.iEpochNow[cpu]
		return
	}
	if k.warming {
		// A warming-phase hit leaves the copy record untouched: if the
		// copy really is stale, the next detailed-phase fetch still
		// catches it.
		return
	}
	if ep[i] != k.iEpochNow[cpu] {
		k.report(pg.provenance(bi, &CheckError{
			Kind: Shadow, Cycle: now, CPU: cpu, Addr: a,
			Routine: k.routine(cpu),
			Detail:  "instruction fetch hit a copy that should have been flushed",
		}))
	} else if ic[i] != pg.ver[bi] {
		k.report(pg.provenance(bi, &CheckError{
			Kind: Shadow, Cycle: now, CPU: cpu, Addr: a,
			Routine: k.routine(cpu),
			Detail: fmt.Sprintf("instruction fetch observed stale code (copy version %d, memory version %d)",
				ic[i], pg.ver[bi]),
		}))
	}
	ic[i], ep[i] = pg.ver[bi], k.iEpochNow[cpu]
}

// OnIFlush records a full instruction-cache flush of one CPU (cpu >= 0)
// or of every CPU (cpu < 0, the machine's code-frame-reallocation flush).
func (k *Checker) OnIFlush(cpu int) {
	if cpu < 0 {
		for q := range k.iEpochNow {
			k.iEpochNow[q]++
		}
		return
	}
	k.iEpochNow[cpu]++
}

// scan verifies the per-line coherence invariant of the block containing
// a across every CPU's data hierarchy: at most one dirty copy, dirty
// implies not-shared, a dirty or exclusive copy excludes all other
// copies, and inclusion (L1 ⊆ L2).
func (k *Checker) scan(cpu arch.CPUID, a arch.PAddr, now arch.Cycles) {
	k.Checks++
	residents, dirtyAt, exclAt := 0, -1, -1
	for q := 0; q < k.n; q++ {
		res, dirty, shared := k.view.DState(q, a)
		if k.view.L1Resident(q, a) && !res {
			k.report(k.memErr(Inclusion, cpu, a, now,
				fmt.Sprintf("CPU %d holds the block in L1 but not in L2 (inclusion broken)", q)))
		}
		if !res {
			continue
		}
		residents++
		if dirty {
			if shared {
				k.report(k.memErr(Coherence, cpu, a, now,
					fmt.Sprintf("CPU %d holds the block dirty but marked shared", q)))
			}
			if dirtyAt >= 0 {
				k.report(k.memErr(Coherence, cpu, a, now,
					fmt.Sprintf("two dirty copies (CPU %d and CPU %d)", dirtyAt, q)))
			}
			dirtyAt = q
		}
		if !shared {
			exclAt = q
		}
	}
	if residents > 1 {
		if dirtyAt >= 0 {
			k.report(k.memErr(Coherence, cpu, a, now,
				fmt.Sprintf("dirty copy on CPU %d coexists with %d other copies", dirtyAt, residents-1)))
		} else if exclAt >= 0 {
			k.report(k.memErr(Coherence, cpu, a, now,
				fmt.Sprintf("exclusive (non-shared) copy on CPU %d coexists with %d other copies", exclAt, residents-1)))
		}
	}
}

func (k *Checker) memErr(kind Kind, cpu arch.CPUID, a arch.PAddr, now arch.Cycles, detail string) *CheckError {
	pg, bi := k.page(a)
	return pg.provenance(bi, &CheckError{
		Kind: kind, Cycle: now, CPU: cpu, Addr: a,
		Routine: k.routine(cpu), Detail: detail,
	})
}
