package sim

import (
	"math"
	"testing"

	"repro/internal/arch"
)

// TestMinPairOrdering pins the scheduler's one source of truth: minPair
// must return the (now, id)-minimal CPU plus the runner-up under the same
// ordering — ties broken by the lowest CPU id, exactly the first-index-wins
// rule of the original rescan-every-step loop — and skip CPUs at or past
// the limit. The run-ahead batching in loop() is only correct if the
// runner-up is exact, so each case checks both results.
func TestMinPairOrdering(t *testing.T) {
	s := smallSim(t, Config{NCPU: 4})
	set := func(clocks ...arch.Cycles) {
		for i, v := range clocks {
			s.CPUs[i].now = v
		}
	}
	id := func(c *CPU) int {
		if c == nil {
			return -1
		}
		return int(c.id)
	}
	unlimited := arch.Cycles(math.MaxInt64)
	cases := []struct {
		name     string
		clocks   []arch.Cycles
		limit    arch.Cycles
		lo, next int
	}{
		{"distinct", []arch.Cycles{30, 10, 20, 40}, unlimited, 1, 2},
		{"tie at minimum: lowest id wins", []arch.Cycles{20, 10, 10, 40}, unlimited, 1, 2},
		{"three-way tie", []arch.Cycles{10, 10, 10, 10}, unlimited, 0, 1},
		{"tie at runner-up", []arch.Cycles{5, 7, 7, 9}, unlimited, 0, 1},
		{"runner-up before minimum", []arch.Cycles{7, 5, 9, 11}, unlimited, 1, 0},
		{"limit filters the minimum", []arch.Cycles{30, 10, 20, 40}, 15, 1, -1},
		{"limit filters runner-up", []arch.Cycles{30, 10, 20, 40}, 25, 1, 2},
		{"all past limit", []arch.Cycles{30, 10, 20, 40}, 10, -1, -1},
	}
	for _, tc := range cases {
		set(tc.clocks...)
		lo, next := s.minPair(tc.limit)
		if id(lo) != tc.lo || id(next) != tc.next {
			t.Errorf("%s: minPair(%v) with clocks %v = (cpu %d, cpu %d), want (cpu %d, cpu %d)",
				tc.name, tc.limit, tc.clocks, id(lo), id(next), tc.lo, tc.next)
		}
	}

	// minClock is the same scan with no limit: it must report the minimal
	// clock itself (used by the monitor's global-time queries).
	set(30, 10, 20, 40)
	if got := s.minClock(); got != 10 {
		t.Errorf("minClock = %d, want 10", got)
	}
}
