package service

import (
	"context"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/report"
)

// TestLoadThousandsOfClients is the PR 7 acceptance load test: 2000
// concurrent clients hammer one server over real HTTP with a mix of
// duplicate (hot), distinct (cold) and shed-retried traffic, sized so
// both the LRU result cache and the job-history registry overflow and
// evict under load. It asserts, all at once and under -race:
//
//   - every client lands a terminal "done" job whose report is
//     byte-identical to a serial core.Run of the same config;
//   - no Stats snapshot ever shows a counter decreasing, or more
//     resolved jobs than accepted ones;
//   - the post-drain heap returns to within a fixed budget of the
//     baseline (terminal jobs must not pin simulator pipelines) and no
//     goroutines leak;
//   - the final /v1/metrics snapshot is internally consistent (shards
//     sum to the global aggregate, ordered quantiles).
func TestLoadThousandsOfClients(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping 2000-client load test in -short mode")
	}
	const (
		clients     = 2000
		hotConfigs  = 4  // 3/4 of clients dogpile these
		coldConfigs = 24 // the rest spread over these
	)
	newReq := func(i int) Request {
		// i/4 decorrelates the seed from the i%4 hot/cold split, so the
		// cold quarter really does spread over all coldConfigs seeds.
		seed := int64(1 + (i/4)%hotConfigs)
		if i%4 == 0 {
			seed = int64(100_000 + (i/4)%coldConfigs)
		}
		return Request{Workload: "Pmake", Seed: seed, Window: 250_000, Warmup: 100_000}
	}

	heap := func() uint64 {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}
	baseHeap := heap()
	baseGoroutines := runtime.NumGoroutine()

	srv := New(Options{
		Workers:       2,
		MaxWorkers:    4,
		QueueDepth:    8,
		Shards:        4,
		CacheEntries:  16, // < hot+cold distinct configs -> LRU evictions
		JobHistory:    64, // << total jobs -> registry evictions
		RetryAfter:    20 * time.Millisecond,
		AdaptInterval: 50 * time.Millisecond,
		ScaleCooldown: 100 * time.Millisecond,
		Logf:          func(string, ...any) {}, // 2000 clients would drown t.Logf
	})
	hts := httptest.NewServer(srv.Handler())
	// The shared transport bounds sockets; the 2000 clients are
	// goroutines multiplexed over it, exactly like a fleet behind a
	// connection pool.
	transport := &http.Transport{MaxIdleConnsPerHost: 256, MaxConnsPerHost: 512}
	httpc := &http.Client{Transport: transport}
	cl := &Client{
		Base: hts.URL, HTTP: httpc,
		Retries:   40, // shed storms are expected; clients must ride them out
		BaseDelay: 5 * time.Millisecond,
		MaxDelay:  200 * time.Millisecond,
	}

	// Monotone-counter watchdog: samples Stats concurrently with the
	// whole run.
	stopWatch := make(chan struct{})
	watchDone := make(chan struct{})
	var monotoneViolations, overResolved atomic.Int64
	go func() {
		defer close(watchDone)
		var prev Stats
		for {
			select {
			case <-stopWatch:
				return
			default:
			}
			st := srv.Stats()
			if st.Accepted < prev.Accepted || st.Completed < prev.Completed ||
				st.Failed < prev.Failed || st.Canceled < prev.Canceled ||
				st.Shed < prev.Shed || st.CacheHits < prev.CacheHits ||
				st.CacheEvictions < prev.CacheEvictions || st.JobsEvicted < prev.JobsEvicted {
				monotoneViolations.Add(1)
			}
			if st.Completed+st.Failed+st.Canceled > st.Accepted {
				overResolved.Add(1)
			}
			prev = st
			time.Sleep(500 * time.Microsecond)
		}
	}()

	// Lazily-built serial oracle: one plain core.Run per distinct config.
	var oracleMu sync.Mutex
	oracle := map[int64]string{}
	oracleReport := func(req Request) string {
		oracleMu.Lock()
		defer oracleMu.Unlock()
		if r, ok := oracle[req.Seed]; ok {
			return r
		}
		cfg, err := req.Config()
		if err != nil {
			t.Error(err)
			return ""
		}
		r := report.Single(core.Run(cfg))
		oracle[req.Seed] = r
		return r
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	var landed, mismatched, clientErrs atomic.Int64
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := newReq(i)
			st, err := cl.Submit(ctx, req)
			if err != nil {
				clientErrs.Add(1)
				t.Errorf("client %d: %v", i, err)
				return
			}
			if st.State != StateDone {
				clientErrs.Add(1)
				t.Errorf("client %d: job ended %s (%s): %s", i, st.State, st.ErrorKind, st.Error)
				return
			}
			landed.Add(1)
			if st.Report != oracleReport(req) {
				mismatched.Add(1)
				t.Errorf("client %d (seed %d): report diverged from serial core.Run", i, req.Seed)
			}
		}(i)
	}
	wg.Wait()

	if n := landed.Load(); n != clients {
		t.Errorf("%d/%d clients landed a done job (%d errors, %d mismatches)",
			n, clients, clientErrs.Load(), mismatched.Load())
	}
	st := srv.Stats()
	if st.Accepted < clients {
		t.Errorf("accepted %d jobs for %d clients", st.Accepted, clients)
	}
	if st.Failed != 0 || st.Canceled != 0 {
		t.Errorf("unexpected failures under load: %+v", st)
	}
	if st.CacheHits == 0 {
		t.Error("duplicate-heavy traffic produced no cache hits")
	}
	if st.CacheEvictions == 0 {
		t.Errorf("%d distinct configs over a %d-entry cache produced no LRU evictions", hotConfigs+coldConfigs, 16)
	}
	if st.JobsEvicted == 0 {
		t.Errorf("%d jobs over a 64-job history produced no registry evictions", st.Accepted)
	}

	// Final metrics snapshot must be internally consistent.
	m := srv.Metrics()
	var hits, misses, resolved int64
	for _, sh := range m.Shards {
		hits += sh.Hits
		misses += sh.Misses
		resolved += sh.Resolved
	}
	if hits != m.Global.Hits || misses != m.Global.Misses || resolved != m.Global.Resolved {
		t.Errorf("shard sums (h=%d m=%d r=%d) != global %+v", hits, misses, resolved, m.Global)
	}
	if m.Global.P50MS > m.Global.P90MS || m.Global.P90MS > m.Global.P99MS {
		t.Errorf("quantiles out of order: %+v", m.Global)
	}
	if m.Global.Resolved < int64(clients) {
		t.Errorf("latency histogram saw %d resolutions for %d clients", m.Global.Resolved, clients)
	}
	if m.JobsRetained > 64 {
		t.Errorf("registry retains %d jobs, cap is 64", m.JobsRetained)
	}

	srv.Drain()
	close(stopWatch)
	<-watchDone
	if n := monotoneViolations.Load(); n > 0 {
		t.Errorf("%d Stats snapshots saw a counter decrease", n)
	}
	if n := overResolved.Load(); n > 0 {
		t.Errorf("%d Stats snapshots saw resolved > accepted", n)
	}
	if after := srv.Stats(); after.Completed != after.Accepted {
		t.Errorf("drain left work unresolved: %+v", after)
	}

	// Zero goroutine leaks and bounded memory once the fleet is gone.
	hts.Close()
	transport.CloseIdleConnections()
	waitFor(t, "goroutines to return to baseline", func() bool {
		runtime.GC() // finalizers on dead conns
		return runtime.NumGoroutine() <= baseGoroutines+10
	})
	if grew := int64(heap()) - int64(baseHeap); grew > 32<<20 {
		t.Errorf("heap grew %d MB across %d jobs — results or pipelines are leaking", grew>>20, st.Accepted)
	}
}
