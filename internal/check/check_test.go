package check_test

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/bus"
	"repro/internal/check"
)

// sys builds a 4-CPU cache complex with the checker attached.
func sys() (*bus.System, *check.Checker) {
	m := arch.Default()
	s := bus.NewSystem(m, nil)
	k := check.New(s, m.MemFrames())
	s.Check = k
	return s, k
}

const blk = arch.PAddr(0x4000)

// l2Conflict maps to the same L2 set as blk (the L2 is 256 KB
// direct-mapped, so addresses 256 KB apart collide).
const l2Conflict = blk + 256<<10

// TestCoherenceSequences drives hand-built transaction sequences through
// the real bus. Legal sequences must stay silent; sequences corrupted
// behind the bus's back (direct cache manipulation, bypassing the snoop)
// must trip the checker with the right violation kind.
func TestCoherenceSequences(t *testing.T) {
	cases := []struct {
		name string
		run  func(s *bus.System)
		want check.Kind // checked only when violations > 0
		trip bool
	}{
		{
			name: "legal read sharing",
			run: func(s *bus.System) {
				s.Read(0, blk, 10)
				s.Read(1, blk, 20)
				s.Read(2, blk, 30)
			},
		},
		{
			name: "legal write-invalidate round trip",
			run: func(s *bus.System) {
				s.Write(0, blk, 10)
				s.Read(1, blk, 20) // dirty supply, both Shared
				s.Write(1, blk, 30) // upgrade, invalidates CPU 0
				s.Read(0, blk, 40) // sharing miss, refill
				s.Read(0, blk, 50) // hit, current version
			},
		},
		{
			name: "legal eviction and refill",
			run: func(s *bus.System) {
				s.Write(0, blk, 10)
				s.Read(0, l2Conflict, 20) // evicts blk dirty, write-back
				s.Read(0, blk, 30)        // refill from memory
			},
		},
		{
			name: "legal update-protocol broadcast",
			run: func(s *bus.System) {
				s.Proto = bus.WriteUpdate
				s.Read(0, blk, 10)
				s.Read(1, blk, 20)
				s.Write(0, blk, 30) // broadcast refreshes CPU 1
				s.Read(1, blk, 40)  // hit, must observe the broadcast
			},
		},
		{
			name: "legal bypass write then reread",
			run: func(s *bus.System) {
				s.Read(1, blk, 10)
				s.Bypass(0, blk, 1, true, 20) // invalidates CPU 1
				s.Read(1, blk, 30)            // miss, current version
			},
		},
		{
			name: "legal code-frame flush and refetch",
			run: func(s *bus.System) {
				s.Fetch(0, blk, 10)
				s.InvalidateCodeFrame(uint32(blk.Frame()))
				s.Fetch(0, blk, 20) // miss: the flush emptied the cache
			},
		},
		{
			name: "dirty sharing: second dirty copy snuck past the snoop",
			run: func(s *bus.System) {
				s.Write(0, blk, 10)
				s.D[1].Access(blk, true) // corrupt: no bus transaction
				// Trigger via a local hit: a read miss would snoop and
				// repair the corruption before the scan could see it.
				s.Read(0, blk, 30)
			},
			want: check.Coherence, trip: true,
		},
		{
			name: "write race: stale copy read after a missed invalidation",
			run: func(s *bus.System) {
				s.Read(1, blk, 10)
				s.Write(0, blk, 20)       // invalidates CPU 1
				s.D[1].Access(blk, false) // corrupt: stale refill, no bus
				s.Read(1, blk, 30)        // hit on the stale copy
			},
			want: check.Shadow, trip: true,
		},
		{
			name: "exclusive copy duplicated without a snoop",
			run: func(s *bus.System) {
				s.Read(0, blk, 10)        // Exclusive (sole copy)
				s.D[1].Access(blk, false) // corrupt: second copy, no bus
				s.Read(0, blk, 30)        // local hit: no repairing snoop
			},
			want: check.Coherence, trip: true,
		},
		{
			name: "eviction during snoop: L2 dropped but L1 kept",
			run: func(s *bus.System) {
				s.Read(0, blk, 10)
				s.D[0].L2.Invalidate(blk) // corrupt: inclusion broken
				s.Read(1, blk, 30)
			},
			want: check.Inclusion, trip: true,
		},
		{
			name: "stale instruction fetch after code overwrite",
			run: func(s *bus.System) {
				s.Fetch(0, blk, 10)
				s.Write(1, blk, 20) // new code written, no I-flush
				s.Fetch(0, blk, 30) // I-cache hit on stale code
			},
			want: check.Shadow, trip: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, k := sys()
			tc.run(s)
			if !tc.trip {
				if k.Violations != 0 {
					t.Fatalf("legal sequence tripped the checker: %v", k.Errors()[0])
				}
				return
			}
			if k.Violations == 0 {
				t.Fatal("corrupted sequence not detected")
			}
			e := k.Errors()[0]
			if e.Kind != tc.want {
				t.Errorf("kind = %v, want %v (%v)", e.Kind, tc.want, e)
			}
			if e.Cycle == 0 || e.Addr == 0 {
				t.Errorf("diagnostics incomplete (cycle %d, addr %#x): %v", e.Cycle, uint32(e.Addr), e)
			}
		})
	}
}

// TestShadowNamesLastWriter verifies the stale-read diagnostic carries
// last-writer provenance: who stored last, when.
func TestShadowNamesLastWriter(t *testing.T) {
	s, k := sys()
	k.RoutineOf = func(c arch.CPUID) string {
		return []string{"reader", "writer", "", ""}[c]
	}
	s.Read(0, blk, 10)
	s.Write(1, blk, 77)       // CPU 1 is the last writer, at cycle 77
	s.D[0].Access(blk, false) // corrupt: CPU 0 refills without the bus
	s.Read(0, blk, 90)
	if k.Violations == 0 {
		t.Fatal("stale read not detected")
	}
	e := k.Errors()[0]
	if e.Kind != check.Shadow || e.CPU != 0 || e.Addr != blk || e.Cycle != 90 {
		t.Fatalf("wrong diagnostics: %v", e)
	}
	if !e.HasOwner || e.Owner != 1 || e.OwnerCycle != 77 {
		t.Fatalf("last-writer provenance missing: %v", e)
	}
	if !strings.Contains(e.Error(), "CPU 1") || !strings.Contains(e.Error(), "cycle 77") {
		t.Errorf("rendered error lacks provenance: %v", e)
	}
}

// TestLockInvariants exercises the lock-discipline checks through the
// checker's event API.
func TestLockInvariants(t *testing.T) {
	type lk struct {
		n string
		f int
	}
	a, b := &lk{"Memlock", 0}, &lk{"Runqlk", 1}

	t.Run("double acquire", func(t *testing.T) {
		_, k := sys()
		k.OnAcquire(2, a, a.f, a.n, false, 100)
		k.OnAcquire(2, a, a.f, a.n, false, 200)
		if k.Violations != 1 {
			t.Fatalf("violations = %d, want 1", k.Violations)
		}
		e := k.Errors()[0]
		if e.Kind != check.LockViolation || e.CPU != 2 || e.Cycle != 200 || e.Lock != "Memlock" {
			t.Fatalf("wrong diagnostics: %v", e)
		}
		if !e.HasOwner || e.OwnerCycle != 100 {
			t.Fatalf("acquisition provenance missing: %v", e)
		}
	})

	t.Run("release by non-owner", func(t *testing.T) {
		_, k := sys()
		k.OnAcquire(0, a, a.f, a.n, false, 100)
		k.OnRelease(3, a, a.f, a.n, false, 150)
		if k.Violations != 1 {
			t.Fatalf("violations = %d, want 1", k.Violations)
		}
		e := k.Errors()[0]
		if !e.HasOwner || e.Owner != 0 || !strings.Contains(e.Detail, "CPU 0") {
			t.Fatalf("owner provenance missing: %v", e)
		}
	})

	t.Run("release of unheld lock", func(t *testing.T) {
		_, k := sys()
		k.OnRelease(1, b, b.f, b.n, false, 50)
		if k.Violations != 1 {
			t.Fatalf("violations = %d, want 1", k.Violations)
		}
	})

	t.Run("balanced holds are silent", func(t *testing.T) {
		_, k := sys()
		k.OnAcquire(0, a, a.f, a.n, false, 10)
		k.OnAcquire(0, b, b.f, b.n, false, 20)
		k.OnRelease(0, b, b.f, b.n, false, 30)
		k.OnRelease(0, a, a.f, a.n, false, 40)
		k.OnAcquire(0, a, a.f, a.n, false, 50) // re-acquire after release is fine
		k.OnRelease(0, a, a.f, a.n, false, 60)
		if k.Violations != 0 {
			t.Fatalf("legal sequence tripped: %v", k.Errors()[0])
		}
	})

	t.Run("user locks exempt", func(t *testing.T) {
		_, k := sys()
		k.OnAcquire(0, a, 0, "Ulock", true, 10)
		k.OnAcquire(0, a, 0, "Ulock", true, 20) // double-hold across preemption
		k.OnRelease(1, a, 0, "Ulock", true, 30) // released on another CPU
		if k.Violations != 0 {
			t.Fatalf("user lock tripped kernel discipline: %v", k.Errors()[0])
		}
	})

	t.Run("interrupt while holding an interrupt-taken lock", func(t *testing.T) {
		_, k := sys()
		// The checker learns Runqlk is taken by interrupt handlers...
		k.OnInterruptEnter(1, 100)
		k.OnAcquire(1, b, b.f, b.n, false, 110)
		k.OnRelease(1, b, b.f, b.n, false, 120)
		k.OnInterruptExit(1)
		// ...so holding it while accepting an interrupt is flagged.
		k.OnAcquire(0, b, b.f, b.n, false, 200)
		k.OnInterruptEnter(0, 210)
		if k.Violations != 1 {
			t.Fatalf("violations = %d, want 1", k.Violations)
		}
		e := k.Errors()[0]
		if e.Kind != check.LockViolation || e.Lock != "Runqlk" || e.CPU != 0 {
			t.Fatalf("wrong diagnostics: %v", e)
		}
	})
}

// TestFailFastPanics verifies FailFast converts the first violation into
// a panic carrying the *CheckError.
func TestFailFastPanics(t *testing.T) {
	s, k := sys()
	k.FailFast = true
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("FailFast did not panic")
		}
		if _, ok := r.(*check.CheckError); !ok {
			t.Fatalf("panic value %T, want *check.CheckError", r)
		}
	}()
	s.Read(1, blk, 10)
	s.Write(0, blk, 20)
	s.D[1].Access(blk, false)
	s.Read(1, blk, 30)
}

// TestViolationCap keeps the error list bounded while counting everything.
func TestViolationCap(t *testing.T) {
	_, k := sys()
	for i := 0; i < 200; i++ {
		k.OnRelease(0, i, 0, "L", false, arch.Cycles(i+1))
	}
	if k.Violations != 200 {
		t.Fatalf("Violations = %d, want 200", k.Violations)
	}
	if len(k.Errors()) > 100 {
		t.Fatalf("error list unbounded: %d", len(k.Errors()))
	}
}
