package bus

// Fanout duplicates every bus transaction to several recorders. It is the
// streaming pipeline's splitter: the bus feeds the inline classifier and,
// when the buffered oracle is also requested, the ring-buffer monitor, in
// one pass over the transaction stream.
type Fanout struct {
	recs []Recorder
}

// NewFanout builds a fan-out over the given recorders, dropping nils. If
// only one non-nil recorder remains it is returned directly (no fan-out
// indirection on the hot path); with none, nil is returned (tracing off).
func NewFanout(recs ...Recorder) Recorder {
	f := &Fanout{}
	for _, r := range recs {
		if r != nil {
			f.recs = append(f.recs, r)
		}
	}
	switch len(f.recs) {
	case 0:
		return nil
	case 1:
		return f.recs[0]
	}
	return f
}

// Record forwards the transaction to every recorder in registration order.
func (f *Fanout) Record(t Txn) {
	for _, r := range f.recs {
		r.Record(t)
	}
}

var _ Recorder = (*Fanout)(nil)

// Warmable is a recorder that supports functional warming: fed every
// transaction in both phases of a sampled run, it keeps its internal
// state current during fast-forward while pausing its statistics. The
// streaming classifier is the one implementation — its cache mirrors and
// displacement causes must track the real caches through fast-forward,
// or measured-interval misses whose history fell in a gap would all
// misclassify as Cold.
type Warmable interface {
	Recorder
	SetWarming(w bool)
}

// PhaseFanout is the phase-aware recorder splitter of a sampled run: in
// the detailed phase it forwards every transaction to every recorder; in
// the fast-forward phase it forwards only to Warmable recorders (flipped
// into warming mode) and drops the rest — the monitor sees a gap, the
// classifier keeps warming.
type PhaseFanout struct {
	recs     []Recorder
	warm     []Warmable
	detailed bool
}

// NewPhaseFanout builds a phase fanout over the given recorders (nils
// dropped), starting in the detailed phase.
func NewPhaseFanout(recs ...Recorder) *PhaseFanout {
	f := &PhaseFanout{detailed: true}
	for _, r := range recs {
		if r == nil {
			continue
		}
		f.recs = append(f.recs, r)
		if w, ok := r.(Warmable); ok {
			f.warm = append(f.warm, w)
		}
	}
	return f
}

// SetDetailed flips the gate at a phase transition, switching every
// Warmable recorder's warming mode to match.
func (f *PhaseFanout) SetDetailed(d bool) {
	f.detailed = d
	for _, w := range f.warm {
		w.SetWarming(!d)
	}
}

// Record forwards the transaction to every recorder (detailed phase) or
// to the warming recorders only (fast-forward).
func (f *PhaseFanout) Record(t Txn) {
	if f.detailed {
		for _, r := range f.recs {
			r.Record(t)
		}
		return
	}
	for _, w := range f.warm {
		w.Record(t)
	}
}

var _ Recorder = (*PhaseFanout)(nil)
