// Per-run observability for the parallel experiment engine: wall-clock,
// simulated-cycle throughput and allocation counts per core.Run, plus the
// batch-level aggregate the CLIs print so a -parallel speedup is
// measurable rather than anecdotal.

package metrics

import (
	"fmt"
	"time"
)

// RunStats is the observability record of one experiment run.
type RunStats struct {
	// Label identifies the run (workload/ncpu/seed).
	Label string
	// Wall is the run's wall-clock time.
	Wall time.Duration
	// SimCycles is how many processor cycles the run simulated, summed
	// over the simulated CPUs (warmup included — it is paid for too).
	SimCycles int64
	// MCyclesPerSec is SimCycles per wall-clock second, in millions: the
	// simulator's throughput for this run.
	MCyclesPerSec float64
	// Allocs and AllocBytes are the run's heap allocation count and
	// volume. Go only accounts allocations process-wide, so they are
	// exact only for serial batches (parallelism 1) and zero otherwise;
	// BatchStats carries the process-wide totals either way.
	Allocs     uint64
	AllocBytes uint64
	// SimWorkers is the run's intra-run worker count: the conservative
	// parallel engine's goroutine count when it engaged, 1 when the run
	// executed on the serial scheduler.
	SimWorkers int
	// SpecPhases, SpecSteps and SpecCommitted mirror the parallel
	// engine's counters: speculation/commit rounds, virtual steps
	// speculated, and how many of those the merge consumed (the rest
	// were truncated and re-run serially). All zero for serial runs.
	SpecPhases    int64
	SpecSteps     int64
	SpecCommitted int64
}

// Throughput fills MCyclesPerSec from Wall and SimCycles.
func (r *RunStats) Throughput() {
	if r.Wall > 0 {
		r.MCyclesPerSec = float64(r.SimCycles) / r.Wall.Seconds() / 1e6
	}
}

// HorizonBatch is the mean speculated steps per speculation phase — how
// deep the run-ahead horizon reached before each commit. Zero for serial
// runs.
func (r RunStats) HorizonBatch() float64 {
	if r.SpecPhases == 0 {
		return 0
	}
	return float64(r.SpecSteps) / float64(r.SpecPhases)
}

// BatchStats aggregates one parallel batch of runs.
type BatchStats struct {
	// Parallelism is the worker count the batch actually used.
	Parallelism int
	// Wall is the batch's end-to-end wall-clock time.
	Wall time.Duration
	// SerialWall is the sum of the per-run wall times — what a serial
	// execution of the same work would have cost.
	SerialWall time.Duration
	// Allocs and AllocBytes are process-wide allocation deltas across
	// the batch.
	Allocs     uint64
	AllocBytes uint64
	// Runs holds the per-run records in submission order.
	Runs []RunStats
}

// Speedup is SerialWall / Wall: >1 when the pool paid off.
func (b BatchStats) Speedup() float64 {
	if b.Wall <= 0 {
		return 0
	}
	return float64(b.SerialWall) / float64(b.Wall)
}

// Table renders the batch as an aligned table with a summary footnote.
func (b BatchStats) Table() string {
	t := NewTable(fmt.Sprintf("Experiment timing (%d workers)", b.Parallelism),
		"Run", "Wall", "Mcycles/s", "SimW", "Allocs", "Alloc MB")
	for _, r := range b.Runs {
		allocs, mb := "-", "-"
		if r.Allocs > 0 {
			allocs = fmt.Sprint(r.Allocs)
			mb = fmt.Sprintf("%.1f", float64(r.AllocBytes)/1e6)
		}
		simw := "-"
		if r.SimWorkers > 1 {
			simw = fmt.Sprintf("%d(%.0f)", r.SimWorkers, r.HorizonBatch())
		}
		t.AddRow(r.Label, r.Wall.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1f", r.MCyclesPerSec), simw, allocs, mb)
	}
	t.Note("batch wall %s vs serial %s — speedup %.2fx; %d allocs (%.1f MB) process-wide",
		b.Wall.Round(time.Millisecond), b.SerialWall.Round(time.Millisecond),
		b.Speedup(), b.Allocs, float64(b.AllocBytes)/1e6)
	return t.String()
}
