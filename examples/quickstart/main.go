// Quickstart: run one workload through the full characterization pipeline
// and print the headline numbers of the paper — how much of the CPUs'
// non-idle time is lost to OS cache misses.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	// One call: build the 4-CPU machine, boot the kernel model, run the
	// parallel compile under the hardware monitor, postprocess the bus
	// trace.
	ch := core.Run(core.Config{
		Workload: workload.Pmake,
		Window:   8_000_000, // ≈0.24 s at 33 MHz
		Seed:     1,
	})

	user, sys, idle := ch.TimeSplit()
	fmt.Printf("Pmake on the simulated 4-CPU machine:\n")
	fmt.Printf("  time split: user %.1f%%  system %.1f%%  idle %.1f%%\n", user, sys, idle)
	fmt.Printf("  OS misses are %.1f%% of all cache misses\n", ch.OSMissShare())

	all, osOnly, osInduced := ch.StallPct()
	fmt.Printf("  stalls (35 cycles per bus access, as %% of non-idle time):\n")
	fmt.Printf("    all misses:            %5.1f%%\n", all)
	fmt.Printf("    OS misses only:        %5.1f%%   (paper: 17-21%%)\n", osOnly)
	fmt.Printf("    OS + OS-induced:       %5.1f%%   (paper: ≈25%%)\n", osInduced)

	// The three major sources of OS misses the paper identifies.
	fmt.Printf("  the three major sources:\n")
	fmt.Printf("    instruction fetches:   %5.1f%% stall\n", ch.OSIMissStallPct())
	fmt.Printf("    process migration:     %5.1f%% stall\n", ch.MigrationStallPct())
	fmt.Printf("    block operations:      %5.1f%% stall\n", ch.BlockOpStallPct())

	// And the synchronization result: cheap if locks are cachable.
	cur, rmw := ch.SyncStallPct()
	fmt.Printf("  synchronization: sync-bus protocol %.1f%%, cacheable LL/SC locks %.1f%%\n", cur, rmw)

	// A peek at the miss taxonomy (Table 2).
	fmt.Printf("  OS miss classes (I-misses): ")
	for cl := trace.MissClass(0); cl < trace.NumClasses; cl++ {
		fmt.Printf("%s=%d ", cl, ch.Trace.Counts[1][1][cl])
	}
	fmt.Println()
}
