// Command lockstat reproduces the synchronization study of Section 5: the
// sync-bus vs cacheable-lock stall comparison (Table 10), the lock
// functions (Table 11), and the per-lock characterization (Table 12), plus
// a dump of every lock family's statistics for the chosen workload. The
// three workload runs fan out across a worker pool (-parallel 1 restores
// serial execution; output is byte-identical either way).
//
// Usage:
//
//	lockstat [-workload Pmake|Multpgm|Oracle] [-window N] [-parallel N]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/machineflag"
	"repro/internal/metrics"
	"repro/internal/profiling"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/sample"
	"repro/internal/workload"
)

func main() { os.Exit(run()) }

func run() int {
	wl := flag.String("workload", "Pmake", "workload: Pmake, Multpgm, Oracle")
	window := machineflag.CyclesFlag(flag.CommandLine, "window", int64(arch.DefaultWindow),
		"traced window in 30ns cycles (K/M/G suffixes and scientific notation ok, e.g. 1e9)")
	sampleSpec := flag.String("sample", "",
		"sampled simulation schedule \"warmup:len:period\" in cycles; lock statistics and sync-stall accounting stay exact (only the miss classification is sampled)")
	seed := flag.Int64("seed", 1, "random seed")
	checkFlag := flag.Bool("check", false, "run the invariant checker (lock discipline included)")
	reference := flag.Bool("reference", false,
		"run the generic oracle paths instead of the memory-system fast path")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"worker-pool size for the workload runs (1 = serial)")
	simWorkers := flag.Int("sim-workers", 1,
		"intra-run worker goroutines for the conservative parallel engine (1 = serial scheduler); output is byte-identical at any count")
	timeout := flag.Duration("timeout", 0,
		"wall-clock budget for the whole run (0 = none); on expiry prints the cancellation provenance and exits nonzero")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	mf := machineflag.Register(flag.CommandLine)
	flag.Parse()

	machine, err := mf.Machine()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	stopProf, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	defer stopProf()

	kind, err := workload.ParseKind(*wl)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// Oversubscription cap: pool workers × intra-run workers must fit the
	// machine, or the engines just contend with each other.
	pool := runner.CapTotal(*parallel, *simWorkers)
	if pool != *parallel {
		fmt.Fprintf(os.Stderr, "note: -parallel clamped %d -> %d (-sim-workers %d, GOMAXPROCS %d)\n",
			*parallel, pool, *simWorkers, runtime.GOMAXPROCS(0))
	}
	sched, err := sample.Parse(*sampleSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	fmt.Fprintf(os.Stderr, "running all three workloads for Table 10, %s for the detail dump...\n", kind)
	set, err := report.RunSetContext(ctx, core.Config{Machine: machine, Window: arch.Cycles(*window), Seed: *seed, Check: *checkFlag, Reference: *reference, Sample: sched},
		runner.Options{Parallelism: pool, SimWorkers: *simWorkers})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	fmt.Print(report.Table10(set))
	fmt.Print(report.Table11())
	fmt.Print(report.Table12(set))

	var ch *core.Characterization
	switch kind {
	case workload.Pmake:
		ch = set.Pmake
	case workload.Multpgm:
		ch = set.Multpgm
	default:
		ch = set.Oracle
	}
	t := metrics.NewTable(fmt.Sprintf("All kernel lock families (%s), most acquired first", kind),
		"Lock", "Acquires", "kCyc between", "Failed%", "SameCPU%", "Cached/Uncached%")
	for _, st := range ch.Sim.K.Locks.AllStats() {
		if st.Acquires == 0 {
			continue
		}
		t.AddRow(st.Name, st.Acquires,
			fmt.Sprintf("%.1f", st.CyclesBetweenAcq/1000),
			fmt.Sprintf("%.1f", st.PctFailed),
			fmt.Sprintf("%.1f", st.PctSameCPU),
			fmt.Sprintf("%.0f", st.PctCachedVsUncached))
	}
	fmt.Print(t.String())
	fmt.Fprint(os.Stderr, set.Stats.Table())

	// Report every failing workload, not just the first, before exiting.
	bad := false
	for _, c := range []*core.Characterization{set.Pmake, set.Multpgm, set.Oracle} {
		bad = report.ReportViolations(os.Stderr, c.Cfg.Workload.String(), c, 1) || bad
	}
	if bad {
		return 1
	}
	return 0
}
