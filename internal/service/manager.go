package service

import (
	"sync/atomic"
	"time"
)

// poolManager owns the run-executing worker pool. With a ceiling above
// the floor it is adaptive: a background loop watches queue depth and
// the interval p99 of submit-to-terminal latency (the delta between
// successive histogram snapshots, so a long-gone latency spike cannot
// keep the pool inflated) and grows or shrinks the pool between the two
// bounds. Hysteresis (separate grow and shrink thresholds) plus a
// cooldown after every action keep it from flapping; drain semantics are
// unchanged — the queue closes, every worker finishes its backlog and
// exits, and every accepted job still resolves.
type poolManager struct {
	s       *Server
	floor   int
	ceiling int

	interval time.Duration
	cooldown time.Duration
	p99High  time.Duration
	p99Low   time.Duration

	live          atomic.Int64 // workers currently running
	pendingRetire atomic.Int64 // retire tokens sent but not yet consumed
	scaleUps      atomic.Int64
	scaleDowns    atomic.Int64

	retire chan struct{} // buffered; workers poll it between jobs
	stop   chan struct{} // closed by Drain
	done   chan struct{} // closed when the adapt loop exits
}

func newPoolManager(s *Server, o Options) *poolManager {
	m := &poolManager{
		s:        s,
		floor:    o.Workers,
		ceiling:  o.MaxWorkers,
		interval: o.AdaptInterval,
		cooldown: o.ScaleCooldown,
		p99High:  o.ScaleP99High,
		p99Low:   o.ScaleP99Low,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	if m.ceiling < m.floor {
		m.ceiling = m.floor
	}
	m.retire = make(chan struct{}, m.ceiling)
	return m
}

func (m *poolManager) adaptive() bool { return m.ceiling > m.floor }

// target is the pool size the manager is steering toward: live workers
// minus the retires already in flight.
func (m *poolManager) target() int {
	return int(m.live.Load() - m.pendingRetire.Load())
}

// start launches the floor workers and, when adaptive, the adapt loop.
func (m *poolManager) start() {
	for i := 0; i < m.floor; i++ {
		m.s.startWorker()
	}
	if m.adaptive() {
		go m.adapt()
	} else {
		close(m.done)
	}
}

// scaleUp adds one worker. A pending retire is cancelled instead of
// spawning — the net pool-size change is identical and it avoids
// churning goroutines.
func (m *poolManager) scaleUp() {
	select {
	case <-m.retire:
		m.pendingRetire.Add(-1)
	default:
		m.s.startWorker()
	}
	m.scaleUps.Add(1)
}

// scaleDown asks one worker to exit after its current job.
func (m *poolManager) scaleDown() {
	select {
	case m.retire <- struct{}{}:
		m.pendingRetire.Add(1)
		m.scaleDowns.Add(1)
	default:
	}
}

// adapt is the manager loop: every interval it computes queue pressure
// and the p99 over latencies observed since the previous tick, then
// grows on (queue ≥ 3/4 full OR interval p99 > high threshold) and
// shrinks on (queue empty AND interval p99 < low threshold), each
// subject to the bounds and the cooldown.
func (m *poolManager) adapt() {
	defer close(m.done)
	tick := time.NewTicker(m.interval)
	defer tick.Stop()
	prev := m.s.store.globalCounts()
	lastAction := time.Now()
	for {
		select {
		case <-m.stop:
			return
		case <-tick.C:
		}
		cur := m.s.store.globalCounts()
		var delta [histBuckets]int64
		var observed int64
		for i := range cur {
			delta[i] = cur[i] - prev[i]
			observed += delta[i]
		}
		prev = cur

		qlen, qcap := len(m.s.queue), cap(m.s.queue)
		p99 := time.Duration(quantileMS(delta, 0.99) * float64(time.Millisecond))
		now := time.Now()
		if now.Sub(lastAction) < m.cooldown {
			continue
		}
		switch {
		case (4*qlen >= 3*qcap || (observed > 0 && p99 > m.p99High)) && m.target() < m.ceiling:
			m.scaleUp()
			lastAction = now
			m.s.opts.Logf("manager: scale up to %d workers (queue %d/%d, interval p99 %s)",
				m.target(), qlen, qcap, p99)
		case qlen == 0 && (observed == 0 || p99 < m.p99Low) && m.target() > m.floor:
			m.scaleDown()
			lastAction = now
			m.s.opts.Logf("manager: scale down toward %d workers (idle, interval p99 %s)",
				m.target(), p99)
		}
	}
}

// metrics snapshots the pool for /v1/metrics.
func (m *poolManager) metrics() WorkerMetrics {
	return WorkerMetrics{
		Live:       int(m.live.Load()),
		Floor:      m.floor,
		Ceiling:    m.ceiling,
		Adaptive:   m.adaptive(),
		ScaleUps:   m.scaleUps.Load(),
		ScaleDowns: m.scaleDowns.Load(),
	}
}
