// Package profiling wires the standard runtime/pprof collectors into the
// command-line tools: every CLI exposes a -cpuprofile/-memprofile pair so
// the streaming pipeline's hot paths can be inspected with `go tool pprof`
// without recompiling.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (empty = off) and returns a stop
// function that finishes the CPU profile and writes the heap profile to
// memPath (empty = off). The stop function must run before the process
// exits — call it via defer from a run() helper that returns an exit code
// instead of calling os.Exit directly.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath == "" {
			return
		}
		f, err := os.Create(memPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "memprofile:", err)
			return
		}
		defer f.Close()
		runtime.GC() // capture the steady-state heap, not transient garbage
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "memprofile:", err)
		}
	}, nil
}
