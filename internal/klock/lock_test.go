package klock

import (
	"testing"
	"testing/quick"

	"repro/internal/arch"
)

func TestUncontendedAcquire(t *testing.T) {
	l := NewLock("x")
	at, spins := l.Acquire(0, 100)
	if at != 100 || spins != 0 {
		t.Fatalf("Acquire = (%d,%d), want (100,0)", at, spins)
	}
	if !l.Held() {
		t.Error("lock should be held")
	}
	l.Release(0, 200)
	if l.Held() {
		t.Error("lock should be free after release")
	}
	s := l.ComputeStats()
	if s.Acquires != 1 || s.Failed != 0 || s.Attempts != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestContendedAcquireWaits(t *testing.T) {
	l := NewLock("x")
	// CPU 0 holds [100, 600).
	l.Acquire(0, 100)
	l.Release(0, 600)
	// CPU 1 tries at 300: must wait until 600 and record a failure.
	at, spins := l.Acquire(1, 300)
	if at != 600 {
		t.Fatalf("acquiredAt = %d, want 600", at)
	}
	if spins != int(300/SpinGapCycles)+1 {
		t.Errorf("spins = %d, want %d", spins, 300/SpinGapCycles+1)
	}
	l.Release(1, 700)
	s := l.ComputeStats()
	if s.Failed != 1 || s.Acquires != 2 {
		t.Errorf("stats = %+v", s)
	}
	if s.PctFailed != 50 {
		t.Errorf("PctFailed = %v, want 50", s.PctFailed)
	}
	if s.AvgWaitersIfAny != 1 {
		t.Errorf("AvgWaitersIfAny = %v, want 1", s.AvgWaitersIfAny)
	}
}

func TestChainedHoldsAreWaitedThrough(t *testing.T) {
	l := NewLock("x")
	l.Acquire(0, 100)
	l.Release(0, 300)
	l.Acquire(2, 300)
	l.Release(2, 500)
	// CPU 1 tries at 200: CPU0 holds till 300, CPU2 till 500.
	at, _ := l.Acquire(1, 200)
	if at != 500 {
		t.Fatalf("acquiredAt = %d, want 500 (chained waits)", at)
	}
}

func TestSameCPUReacquireDoesNotConflict(t *testing.T) {
	l := NewLock("x")
	l.Acquire(0, 100)
	l.Release(0, 300)
	// Same CPU re-acquiring inside its own recorded interval (possible
	// only through time skew) must not deadlock against itself.
	at, _ := l.Acquire(0, 200)
	if at != 200 {
		t.Errorf("self-overlap acquire at %d, want 200", at)
	}
	l.Release(0, 250)
}

func TestReleaseByWrongCPUPanics(t *testing.T) {
	l := NewLock("x")
	l.Acquire(0, 10)
	defer func() {
		if recover() == nil {
			t.Error("wrong-CPU release did not panic")
		}
	}()
	l.Release(1, 20)
}

func TestZeroLengthHoldGetsMinimumInterval(t *testing.T) {
	l := NewLock("x")
	l.Acquire(0, 100)
	l.Release(0, 100) // degenerate
	at, _ := l.Acquire(1, 100)
	if at != 101 {
		t.Errorf("acquire inside minimum interval at %d, want 101", at)
	}
}

func TestCyclesBetweenAcquires(t *testing.T) {
	l := NewLock("x")
	for i := 0; i < 5; i++ {
		at := arch.Cycles(1000 * (i + 1))
		l.Acquire(arch.CPUID(i%2), at)
		l.Release(arch.CPUID(i%2), at+10)
	}
	s := l.ComputeStats()
	if s.CyclesBetweenAcq != 1000 {
		t.Errorf("CyclesBetweenAcq = %v, want 1000", s.CyclesBetweenAcq)
	}
}

func TestPctSameCPULocality(t *testing.T) {
	l := NewLock("x")
	// Pattern: CPU0 ×4, CPU1 ×1 → 3 same-CPU transitions of 4.
	times := []arch.Cycles{100, 200, 300, 400, 500}
	cpus := []arch.CPUID{0, 0, 0, 0, 1}
	for i := range times {
		l.Acquire(cpus[i], times[i])
		l.Release(cpus[i], times[i]+5)
	}
	s := l.ComputeStats()
	if s.PctSameCPU != 75 {
		t.Errorf("PctSameCPU = %v, want 75", s.PctSameCPU)
	}
}

func TestReplayCached(t *testing.T) {
	log := []Event{
		{Time: 1, CPU: 0},               // migrate in: 1 op
		{Time: 2, CPU: 0},               // local: 0
		{Time: 3, CPU: 1},               // migrate: 1
		{Time: 4, CPU: 0, Failed: true}, // migrate + contended: 1+2
	}
	if ops := ReplayCached(log); ops != 5 {
		t.Errorf("ReplayCached = %d, want 5", ops)
	}
	if ReplayCached(nil) != 0 {
		t.Error("empty replay should be 0")
	}
}

func TestHighLocalityLockHasLowCachedRatio(t *testing.T) {
	// A Dfbmaplk-like lock: always the same CPU, never contended.
	l := NewLock(Dfbmaplk)
	for i := 0; i < 100; i++ {
		at := arch.Cycles(1000 * i)
		l.Acquire(0, at)
		l.Release(0, at+20)
	}
	s := l.ComputeStats()
	if s.PctFailed != 0 {
		t.Errorf("PctFailed = %v, want 0", s.PctFailed)
	}
	if s.PctSameCPU < 99 {
		t.Errorf("PctSameCPU = %v, want ~100", s.PctSameCPU)
	}
	// Cached machine: ~1 bus access total; uncached: ~200 ops.
	if s.PctCachedVsUncached > 2 {
		t.Errorf("cached/uncached = %v%%, want <2%% for perfect locality", s.PctCachedVsUncached)
	}
}

func TestBouncingLockHasHighCachedRatio(t *testing.T) {
	// A Calock-like lock: alternating CPUs.
	l := NewLock(Calock)
	for i := 0; i < 100; i++ {
		at := arch.Cycles(1000 * i)
		l.Acquire(arch.CPUID(i%2), at)
		l.Release(arch.CPUID(i%2), at+20)
	}
	s := l.ComputeStats()
	if s.PctSameCPU > 1 {
		t.Errorf("PctSameCPU = %v, want ~0", s.PctSameCPU)
	}
	// cached = 100 migrations; uncached = 200 ops → 50%.
	if s.PctCachedVsUncached < 40 || s.PctCachedVsUncached > 60 {
		t.Errorf("cached/uncached = %v%%, want ≈50%%", s.PctCachedVsUncached)
	}
}

func TestSyncCost(t *testing.T) {
	l := NewLock("x")
	l.Acquire(0, 100)
	l.Release(0, 120)
	cur, rmw := l.SyncCost(arch.MissStallCycles)
	// One multi-transaction acquire plus one releasing write.
	if cur != AcquireCycles+ReleaseCycles {
		t.Errorf("current = %d, want %d", cur, AcquireCycles+ReleaseCycles)
	}
	// 1 replay bus access (cold).
	if rmw != arch.MissStallCycles {
		t.Errorf("rmw = %d, want %d", rmw, arch.MissStallCycles)
	}
}

func TestRegistryBasics(t *testing.T) {
	r := NewRegistry(90, 16, 536, 32)
	if r.Get(Memlock).Name != Memlock {
		t.Error("Get(Memlock) wrong")
	}
	if r.Elem(InoX, 5).Name != InoX {
		t.Error("Elem(InoX) wrong")
	}
	// Element indexing wraps.
	if r.Elem(ShrX, 95) != r.Elem(ShrX, 5) {
		t.Error("array indexing should wrap modulo length")
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown lock name should panic")
		}
	}()
	r.Get("nope")
}

func TestFamilyAggregation(t *testing.T) {
	r := NewRegistry(4, 2, 8, 2)
	for i := 0; i < 10; i++ {
		l := r.Elem(InoX, i%3)
		at := arch.Cycles(100 * (i + 1))
		l.Acquire(arch.CPUID(i%2), at)
		l.Release(arch.CPUID(i%2), at+10)
	}
	s := r.FamilyStats(InoX)
	if s.Acquires != 10 {
		t.Errorf("family acquires = %d, want 10", s.Acquires)
	}
	if s.Name != InoX {
		t.Errorf("family name = %q", s.Name)
	}
	if r.TotalAcquires() != 10 {
		t.Errorf("TotalAcquires = %d, want 10", r.TotalAcquires())
	}
}

func TestAllStatsSortedByAcquires(t *testing.T) {
	r := NewRegistry(4, 2, 8, 2)
	for i := 0; i < 5; i++ {
		l := r.Get(Memlock)
		l.Acquire(0, arch.Cycles(100*i))
		l.Release(0, arch.Cycles(100*i+10))
	}
	r.Get(Runqlk).Acquire(0, 50)
	r.Get(Runqlk).Release(0, 60)
	all := r.AllStats()
	if all[0].Name != Memlock {
		t.Errorf("most acquired = %q, want Memlock", all[0].Name)
	}
	for i := 1; i < len(all); i++ {
		if all[i].Acquires > all[i-1].Acquires {
			t.Error("AllStats not sorted descending")
		}
	}
}

func TestTotalSyncStall(t *testing.T) {
	r := NewRegistry(4, 2, 8, 2)
	l := r.Get(Bfreelock)
	l.Acquire(0, 100)
	l.Release(0, 120)
	cur, rmw := r.TotalSyncStall(arch.MissStallCycles)
	if cur != AcquireCycles+ReleaseCycles || rmw != arch.MissStallCycles {
		t.Errorf("TotalSyncStall = (%d,%d)", cur, rmw)
	}
}

func TestLockFunctionTableComplete(t *testing.T) {
	for _, n := range []string{Memlock, Runqlk, Ifree, Dfbmaplk, Bfreelock,
		Calock, ShrX, StreamsX, InoX, Semlock} {
		if LockFunction[n] == "" {
			t.Errorf("missing Table 11 description for %s", n)
		}
	}
}

func TestTryAcquireSucceedsWhenFree(t *testing.T) {
	l := NewLock("x")
	at, ok, spins := l.TryAcquire(0, 100, 500)
	if !ok || at != 100 || spins != 0 {
		t.Fatalf("TryAcquire = (%d,%v,%d)", at, ok, spins)
	}
	l.Release(0, 150)
}

func TestTryAcquireGivesUpOnLongHold(t *testing.T) {
	l := NewLock("x")
	l.Acquire(0, 100)
	l.Release(0, 10_000)
	at, ok, spins := l.TryAcquire(1, 200, 500)
	if ok {
		t.Fatal("TryAcquire succeeded against a long hold")
	}
	if at != 700 {
		t.Errorf("gave up at %d, want 700 (deadline)", at)
	}
	if spins == 0 {
		t.Error("no spins recorded")
	}
	s := l.ComputeStats()
	if s.Failed != 1 || s.Acquires != 1 {
		t.Errorf("stats after failed try: %+v", s)
	}
	// Retry after the holder released: succeeds.
	if _, ok, _ := l.TryAcquire(1, 11_000, 500); !ok {
		t.Error("retry after release failed")
	}
	l.Release(1, 11_100)
}

func TestTryAcquireWaitsThroughShortHold(t *testing.T) {
	l := NewLock("x")
	l.Acquire(0, 100)
	l.Release(0, 300)
	at, ok, _ := l.TryAcquire(1, 200, 500)
	if !ok || at != 300 {
		t.Fatalf("TryAcquire = (%d,%v), want (300,true)", at, ok)
	}
	l.Release(1, 400)
}

func TestResetStatsClearsWindow(t *testing.T) {
	l := NewLock("x")
	l.Acquire(0, 100)
	l.Release(0, 200)
	l.ResetStats()
	s := l.ComputeStats()
	if s.Acquires != 0 || s.Attempts != 0 || len(l.Log()) != 0 {
		t.Errorf("stats survived reset: %+v", s)
	}
	// Contention detection still works against pre-reset intervals.
	at, _ := l.Acquire(1, 150)
	if at != 200 {
		t.Errorf("post-reset acquire at %d, want 200 (old interval respected)", at)
	}
	l.Release(1, 250)
}

func TestPendingHoldBlocksKernelAcquire(t *testing.T) {
	l := NewLock("u")
	l.User = true
	l.Acquire(0, 100) // held, not released (user lock across preemption)
	at, spins := l.Acquire(1, 150)
	if spins == 0 || at <= 150 {
		t.Errorf("acquire against pending hold: at=%d spins=%d", at, spins)
	}
	// Stats recorded the failed first attempt and the waiter.
	s := l.ComputeStats()
	if s.Failed != 1 {
		t.Errorf("failed = %d", s.Failed)
	}
}

// TestQuickLockInvariants drives random acquire/release schedules and
// checks the statistical invariants every Table 12 row depends on:
// intervals never overlap, acquires never exceed attempts, and the
// failed count is consistent with the contention observed.
func TestQuickLockInvariants(t *testing.T) {
	f := func(seq []uint8) bool {
		l := NewLock("q")
		now := arch.Cycles(100)
		held := false
		for _, b := range seq {
			now += arch.Cycles(b%37) + 1
			if !held {
				cpu := arch.CPUID(b % 4)
				at, _ := l.Acquire(cpu, now)
				if at < now {
					return false // acquired before it asked
				}
				now = at + arch.Cycles(b%11)
				l.Release(cpu, now)
			}
		}
		st := l.ComputeStats()
		if st.Acquires > st.Attempts || st.Failed != st.Attempts-st.Acquires {
			return false
		}
		// Successful acquires appear in non-decreasing time order.
		log := l.sortedLog()
		for i := 1; i < len(log); i++ {
			if log[i].Time < log[i-1].Time {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
