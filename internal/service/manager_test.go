package service

import (
	"errors"
	"testing"
	"time"
)

// TestAdaptiveWorkerScaling: with MaxWorkers above Workers the pool
// manager grows the pool under queue pressure, never exceeds the
// ceiling, and shrinks back to the floor once the backlog is gone —
// while every accepted job still resolves.
func TestAdaptiveWorkerScaling(t *testing.T) {
	srv, _ := newTestServer(t, Options{
		Workers:       1,
		MaxWorkers:    3,
		QueueDepth:    4,
		AdaptInterval: 20 * time.Millisecond,
		ScaleCooldown: 25 * time.Millisecond,
		ScaleP99High:  40 * time.Millisecond,
		ScaleP99Low:   5 * time.Millisecond,
	})

	if m := srv.Metrics().Workers; m.Live != 1 || !m.Adaptive || m.Ceiling != 3 {
		t.Fatalf("initial pool %+v, want 1 live worker under an adaptive ceiling of 3", m)
	}

	// A burst of distinct configs: each is a leader, so the queue backs
	// up and the manager sees sustained pressure.
	const burst = 10
	var jobs []*Job
	for i := 0; i < burst; i++ {
		for {
			job, err := srv.Submit(Request{Workload: "Pmake", Seed: int64(800 + i), Window: 800_000})
			if err == nil {
				jobs = append(jobs, job)
				break
			}
			if !errors.Is(err, ErrSaturated) {
				t.Fatal(err)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	waitFor(t, "pool to grow under backlog", func() bool {
		return srv.Metrics().Workers.Live >= 2
	})
	if m := srv.Metrics().Workers; m.Live > m.Ceiling {
		t.Fatalf("pool grew past its ceiling: %+v", m)
	}

	for _, job := range jobs {
		<-job.done
	}
	waitFor(t, "pool to shrink back to the floor when idle", func() bool {
		m := srv.Metrics().Workers
		return m.Live == m.Floor
	})
	m := srv.Metrics().Workers
	if m.ScaleUps < 1 || m.ScaleDowns < 1 {
		t.Errorf("manager took no actions both ways: %+v", m)
	}

	srv.Drain()
	if st := srv.Stats(); st.Completed != burst || st.Accepted != burst {
		t.Errorf("stats after drain %+v, want %d/%d", st, burst, burst)
	}
}
