package cachesweep

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/trace"
)

func ev(block uint32, cpu int, os bool) trace.IResimEvent {
	return trace.IResimEvent{Block: block, CPU: 0, OS: os}
}

func TestBaselineIsRelativeOne(t *testing.T) {
	// A stream that misses everywhere in a 64 KB DM cache: conflicting
	// blocks 4096 apart (same set for 4096-set cache).
	var stream []trace.IResimEvent
	for i := 0; i < 100; i++ {
		stream = append(stream, ev(uint32(i%2)*4096, 0, true))
	}
	pts := Sweep(stream, 1, []Config{{Size: 64 << 10, Assoc: 1}})
	if pts[0].Relative != 1.0 {
		t.Errorf("64KB DM relative = %v, want 1.0 (every input is a miss again)", pts[0].Relative)
	}
}

func TestAssociativityRemovesConflicts(t *testing.T) {
	// Two blocks that conflict in DM but coexist in 2-way.
	var stream []trace.IResimEvent
	for i := 0; i < 100; i++ {
		stream = append(stream, ev(uint32(i%2)*4096, 0, true))
	}
	pts := Sweep(stream, 1, []Config{
		{Size: 64 << 10, Assoc: 1},
		{Size: 128 << 10, Assoc: 2},
	})
	if pts[0].OSMisses != 100 {
		t.Errorf("DM misses = %d, want 100", pts[0].OSMisses)
	}
	if pts[1].OSMisses != 2 { // two cold fills only
		t.Errorf("2-way misses = %d, want 2", pts[1].OSMisses)
	}
}

func TestLargerCacheRemovesCapacityConflicts(t *testing.T) {
	// Blocks 4096 apart conflict at 64 KB (4096 sets) but not at 128 KB.
	var stream []trace.IResimEvent
	for i := 0; i < 50; i++ {
		stream = append(stream, ev(0, 0, true), ev(4096, 0, true))
	}
	pts := Sweep(stream, 1, []Config{
		{Size: 64 << 10, Assoc: 1},
		{Size: 128 << 10, Assoc: 1},
	})
	if pts[1].OSMisses >= pts[0].OSMisses {
		t.Errorf("bigger cache did not help: %d vs %d", pts[1].OSMisses, pts[0].OSMisses)
	}
}

func TestFlushForcesRefetch(t *testing.T) {
	stream := []trace.IResimEvent{
		ev(1, 0, true),
		{Flush: true},
		ev(1, 0, true), // would hit without the flush
	}
	pts := Sweep(stream, 1, []Config{{Size: 1 << 20, Assoc: 1}})
	if pts[0].OSMisses != 2 {
		t.Errorf("misses = %d, want 2 (flush forces refetch)", pts[0].OSMisses)
	}
	n, rel := InvalBound(stream, 1)
	if n != 2 || rel != 1.0 {
		t.Errorf("InvalBound = (%d, %v), want (2, 1.0)", n, rel)
	}
}

func TestOnlyOSMissesCounted(t *testing.T) {
	// Application misses warm the simulated cache but are not plotted.
	stream := []trace.IResimEvent{
		ev(7, 0, false), // app fill
		ev(7, 0, true),  // OS access hits thanks to the app fill
		ev(9, 0, true),  // OS cold miss
	}
	pts := Sweep(stream, 1, []Config{{Size: 1 << 20, Assoc: 1}})
	if pts[0].OSMisses != 1 {
		t.Errorf("OS misses = %d, want 1", pts[0].OSMisses)
	}
}

func TestFigure6ShapeMonotone(t *testing.T) {
	// Synthetic stream with conflicts at several scales.
	var stream []trace.IResimEvent
	for r := 0; r < 30; r++ {
		for i := uint32(0); i < 24; i++ {
			stream = append(stream, ev(i*4096/16*16+i, 0, true))
		}
	}
	res := Figure6(stream, 1)
	if len(res.DirectMapped) != 5 || len(res.TwoWay) != 4 {
		t.Fatalf("sweep sizes: dm=%d tw=%d", len(res.DirectMapped), len(res.TwoWay))
	}
	for i := 1; i < len(res.DirectMapped); i++ {
		if res.DirectMapped[i].Relative > res.DirectMapped[i-1].Relative+1e-9 {
			t.Errorf("DM curve not monotone: %+v", res.DirectMapped)
		}
	}
	// The inval bound is a floor.
	last := res.DirectMapped[len(res.DirectMapped)-1].Relative
	if res.InvalBoundRel > last+1e-9 {
		t.Errorf("inval bound %v above largest-cache point %v", res.InvalBoundRel, last)
	}
}

func dev(block uint32, cpu int, os, fill, inval bool) trace.DResimEvent {
	return trace.DResimEvent{Block: block, CPU: arch.CPUID(cpu), OS: os, Fill: fill, Inval: inval}
}

func TestDSweepSharingFloor(t *testing.T) {
	// Two CPUs ping-pong writes to one block: every re-fill is a
	// sharing miss that NO cache size can remove.
	var stream []trace.DResimEvent
	for i := 0; i < 50; i++ {
		stream = append(stream, dev(7, i%2, true, true, true))
	}
	pts := DSweep(stream, 2, []Config{
		{Size: 256 << 10, Assoc: 1},
		{Size: 4 << 20, Assoc: 4},
	})
	// Every fill misses regardless of capacity: 2 cold + 48 sharing.
	for _, p := range pts {
		if p.OSMisses != 50 {
			t.Errorf("size %d: OS misses = %d, want 50 (sharing floor)", p.Size, p.OSMisses)
		}
		if p.OSSharing != 48 {
			t.Errorf("size %d: sharing = %d, want 48", p.Size, p.OSSharing)
		}
	}
}

func TestDSweepCapacityMissesShrink(t *testing.T) {
	// One CPU cycles through a working set bigger than 256KB but
	// smaller than 1MB: the bigger cache removes those misses.
	var stream []trace.DResimEvent
	blocks := (512 << 10) / 16
	for round := 0; round < 3; round++ {
		for b := 0; b < blocks; b += 16 {
			stream = append(stream, dev(uint32(b), 0, true, true, false))
		}
	}
	pts := DSweep(stream, 1, []Config{
		{Size: 256 << 10, Assoc: 1},
		{Size: 1 << 20, Assoc: 1},
	})
	if pts[1].OSMisses >= pts[0].OSMisses {
		t.Errorf("1MB (%d) should beat 256KB (%d)", pts[1].OSMisses, pts[0].OSMisses)
	}
	if pts[1].OSSharing != 0 {
		t.Errorf("no sharing expected, got %d", pts[1].OSSharing)
	}
}

func TestDSweepUpgradeInvalidatesWithoutFill(t *testing.T) {
	stream := []trace.DResimEvent{
		dev(3, 0, true, true, false), // CPU0 reads
		dev(3, 1, true, true, false), // CPU1 reads (both shared)
		dev(3, 1, true, false, true), // CPU1 upgrades: invalidate CPU0
		dev(3, 0, true, true, false), // CPU0 re-reads: sharing miss
	}
	pts := DSweep(stream, 2, []Config{{Size: 1 << 20, Assoc: 1}})
	if pts[0].OSMisses != 3 {
		t.Errorf("misses = %d, want 3 (two cold + one sharing)", pts[0].OSMisses)
	}
	if pts[0].OSSharing != 1 {
		t.Errorf("sharing = %d, want 1", pts[0].OSSharing)
	}
}
