package kernel

import (
	"repro/internal/arch"
	"repro/internal/klock"
	"repro/internal/monitor"
)

// Port is the kernel's view of the CPU it is executing on. The simulator
// implements it: every call advances the CPU's local clock, drives the
// caches and bus, and emits monitor escapes. Kernel code is written in
// direct style against this interface, so each OS invocation produces a
// genuine reference stream (instruction fetches through the kernel text,
// data accesses to the Table 3 structures) rather than statistics.
type Port interface {
	// CPU returns the executing processor.
	CPU() arch.CPUID
	// Now returns the CPU's local clock.
	Now() arch.Cycles

	// Exec fetches routine r's instruction blocks (and charges one
	// cycle per instruction), attributing subsequent data misses to r.
	Exec(r *Routine)
	// Load reads n bytes of kernel-visible physical memory.
	Load(a arch.PAddr, n int)
	// Store writes n bytes.
	Store(a arch.PAddr, n int)
	// UncachedRead models a device-register read (uncached, stalls).
	UncachedRead(a arch.PAddr)
	// LoadBypass / StoreBypass move n bytes without filling the caches
	// (the §4.2.2 cache-bypassing block-transfer hardware).
	LoadBypass(a arch.PAddr, n int)
	StoreBypass(a arch.PAddr, n int)

	// Advance charges pure compute cycles (spin waits, fixed-cost
	// microcode) without memory traffic.
	Advance(c arch.Cycles)

	// Acquire spins until the kernel lock is free, charging sync-bus
	// time; Release frees it.
	Acquire(l *klock.Lock)
	Release(l *klock.Lock)

	// Escape emits an instrumentation event into the trace.
	Escape(ev monitor.Event, args ...uint32)

	// TLBInsert installs a translation in this CPU's TLB and emits the
	// TLB-change escape.
	TLBInsert(pid arch.PID, vpage, frame uint32)
	// TLBInvalidatePID removes pid's entries from every CPU's TLB
	// (process exit).
	TLBInvalidatePID(pid arch.PID)
	// TLBInvalidateFrame removes mappings of a reclaimed frame from
	// every CPU's TLB.
	TLBInvalidateFrame(frame uint32)
	// ICacheInvalFrame invalidates the frame's blocks in every
	// instruction cache (code-page reallocation) and emits the escape.
	ICacheInvalFrame(frame uint32)
}
