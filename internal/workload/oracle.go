package workload

import (
	"repro/internal/arch"
	"repro/internal/kernel"
)

// Oracle: a scaled-down TP1 transaction-processing benchmark (Section 3:
// 10 branches, 100 tellers, 10000 accounts, sized to fit in memory).
// Client processes submit debit/credit transactions over pipes; server
// processes execute them against a large shared buffer pool — the
// database manages its own buffers and file activity, so its OS profile
// is dominated by I/O system calls (Figure 9) — and append to the redo
// log; writer daemons flush the log and database in the background.

const (
	oracleServers = 6
	oracleClients = 6
	// The shared buffer pool: ~6 MB, far beyond TLB reach, so cheap
	// TLB refills are constant.
	oraclePoolPages = 512
	// TP1 entities (scaled instance).
	oracleBranches = 10
	oracleTellers  = 100
	oracleAccounts = 10_000

	dbInodeBase  = 5000 // database files (one per branch)
	logInode     = 5900
	histInode    = 5901
	oracleTxComp = 90_000 // per-transaction compute over the pool
	oracleBatch  = 3      // transactions per client request
)

// oracleServer executes transactions: read a request carrying a batch,
// then for each transaction update account, teller and branch rows in the
// buffer pool, read a database block on a pool miss, append redo; finally
// reply.
type oracleServer struct {
	req      *kernel.Pipe
	reply    *kernel.Pipe
	accounts int
	branches int
	stage    int // 0 read; then txn sub-stage batches; then reply
	txns     int64
	logAt    int64
	hist     int64
}

// Next drives the server's transaction loop.
func (s *oracleServer) Next(k *kernel.Kernel, p *kernel.Proc) kernel.Action {
	if s.stage == 0 { // wait for a request
		s.stage = 1
		return syscall(kernel.SyscallReq{Kind: kernel.SysPipeRead, Pipe: s.req, Bytes: 64})
	}
	if s.stage > 5*oracleBatch { // reply to the client
		s.stage = 0
		return syscall(kernel.SyscallReq{Kind: kernel.SysPipeWrite, Pipe: s.reply, Bytes: 32})
	}
	sub := (s.stage - 1) % 5
	s.stage++
	switch sub {
	case 0: // SQL processing over the buffer pool
		return compute(k, oracleTxComp)
	case 4: // row-latch handoff (System V semaphores)
		return syscall(kernel.SyscallReq{Kind: kernel.SysSemop,
			Sem: k.Rand.Intn(8)})
	case 1: // occasional pool miss: read a database block (raw device)
		if k.Rand.Intn(100) < 15 {
			acct := k.Rand.Intn(s.accounts)
			return syscall(kernel.SyscallReq{Kind: kernel.SysRead, Raw: true,
				Inode:  dbInodeBase + acct%s.branches,
				Offset: int64(acct/s.branches) * 4096, Bytes: 4096})
		}
		return compute(k, 20_000)
	case 2: // append the TP1 history row (a file-system write)
		s.hist += 128
		return syscall(kernel.SyscallReq{Kind: kernel.SysWrite,
			Inode: histInode, Offset: s.hist, Bytes: 128})
	default: // append redo log (raw device)
		s.txns++
		s.logAt += 512
		return syscall(kernel.SyscallReq{Kind: kernel.SysWrite, Raw: true,
			Inode: logInode, Offset: s.logAt, Bytes: 256})
	}
}

// oracleClient is a TP1 terminal: think, send a transaction, wait for the
// reply.
type oracleClient struct {
	req   *kernel.Pipe
	reply *kernel.Pipe
	stage int
}

// Next drives the request/reply loop.
func (c *oracleClient) Next(k *kernel.Kernel, p *kernel.Proc) kernel.Action {
	switch c.stage {
	case 0:
		c.stage = 1
		return compute(k, 30_000) // think time (scaled)
	case 1:
		c.stage = 2
		return syscall(kernel.SyscallReq{Kind: kernel.SysPipeWrite, Pipe: c.req, Bytes: 64})
	default:
		c.stage = 0
		return syscall(kernel.SyscallReq{Kind: kernel.SysPipeRead, Pipe: c.reply, Bytes: 32})
	}
}

// oracleWriter is a background daemon (log writer / database writer):
// sleep, then flush dirty blocks.
type oracleWriter struct {
	inode  int
	period int64 // nap in ms
	n      int64
}

// Next alternates naps with flush writes.
func (w *oracleWriter) Next(k *kernel.Kernel, p *kernel.Proc) kernel.Action {
	w.n++
	if w.n%3 != 0 {
		return syscall(kernel.SyscallReq{Kind: kernel.SysNap,
			Dur: jitter(k, ms*arch.Cycles(w.period))})
	}
	return syscall(kernel.SyscallReq{Kind: kernel.SysWrite, Raw: true,
		Inode: w.inode, Offset: (w.n * 7 % 64) * 4096, Bytes: 4096})
}

// tp1Params sizes one TP1 instance.
type tp1Params struct {
	branches, tellers, accounts int
	poolPages                   int
}

// SetupOracle builds the scaled-down database workload the paper traces.
func SetupOracle(k *kernel.Kernel) {
	setupOracleSized(k, tp1Params{
		branches: oracleBranches, tellers: oracleTellers,
		accounts: oracleAccounts, poolPages: oraclePoolPages,
	})
}

// SetupOracleStd builds a standard-sized TP1 instance (100 branches, 1000
// tellers, 100000 accounts, a 2x buffer pool). The paper ran this variant
// to check that database size does not change the qualitative OS behavior.
func SetupOracleStd(k *kernel.Kernel) {
	setupOracleSized(k, tp1Params{
		branches: 100, tellers: 1000, accounts: 100_000,
		poolPages: 2 * oraclePoolPages,
	})
}

func setupOracleSized(k *kernel.Kernel, params tp1Params) {
	// A big database executable: 1.2 MB of text, whose working set
	// interferes with the OS in the I-cache (Figure 4's Dispap).
	img := k.NewImage("oracle", 64)
	clientImg := k.NewImage("tp1term", 4)

	var leader *kernel.Proc
	for i := 0; i < oracleServers; i++ {
		req := k.NewPipe()
		reply := k.NewPipe()
		spec := &kernel.ProcSpec{
			Name:             "oracle",
			Premap:           true,
			Image:            img,
			DataPages:        8,
			DataHotPages:     20, // the buffer pool working set
			WritePct:         12,
			DataRefsPerBlock: 1,
			CodeLoopBlocks:   256, // long, rarely-repeating code paths
			Behavior: &oracleServer{req: req, reply: reply,
				accounts: params.accounts, branches: params.branches},
		}
		if leader == nil {
			spec.SharedPages = params.poolPages
		} else {
			spec.SharedWith = leader
		}
		srv := k.CreateProc(spec)
		if leader == nil {
			leader = srv
		}
		k.CreateProc(&kernel.ProcSpec{
			Name:         "tp1term",
			Premap:       true,
			Image:        clientImg,
			DataPages:    2,
			DataHotPages: 1,
			Behavior:     &oracleClient{req: req, reply: reply},
		})
	}
	k.CreateProc(&kernel.ProcSpec{
		Name: "lgwr", Premap: true, Image: k.NewImage("lgwr", 6), DataPages: 4,
		Behavior: &oracleWriter{inode: logInode, period: 4},
	})
	k.CreateProc(&kernel.ProcSpec{
		Name: "dbwr", Premap: true, Image: k.NewImage("dbwr", 6), DataPages: 4,
		Behavior: &oracleWriter{inode: dbInodeBase, period: 8},
	})
}
