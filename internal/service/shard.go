package service

import (
	"container/list"
	"hash/fnv"
	"strconv"
	"sync"
	"time"
)

// Outcome is the terminal state of an executed run, as stored in the
// cache and delivered to every job that asked for the same config.
type Outcome struct {
	// Report is the deterministic report.Single rendering (success only).
	Report string
	// Err is the structured run error (*core.CanceledError or
	// *runner.PanicError), nil on success.
	Err error
	// Cycle is the simulated cycle reached (the full window on success,
	// the abort point otherwise).
	Cycle int64
}

// Store is the content-addressed result store: runs are deterministic,
// so a completed outcome is fully determined by the canonical config
// hash. It doubles as the singleflight table — concurrent submissions of
// the same hash share one execution, with followers waiting on the
// leader's entry instead of occupying queue slots.
//
// The store is sharded: the hash's hex prefix selects one of N
// power-of-two shards, each with its own mutex, entry map, bounded LRU
// over completed entries, and latency histogram — the paper's own
// medicine (partition the hot shared structure) applied to the serving
// layer. In-flight entries are never evicted; completed entries beyond
// the per-shard capacity are evicted least-recently-used, and every
// eviction is counted.
type Store struct {
	shards   []cacheShard
	mask     uint64
	perShard int
	start    time.Time
}

type cacheShard struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	// lru orders completed entries only (front = most recent); element
	// values are the entry hashes. In-flight entries are not in the list
	// and therefore can never be evicted out from under their waiters.
	lru *list.List

	hits, misses, evictions int64

	// hist observes submit-to-terminal latencies of jobs whose config
	// hashed to this shard.
	hist histogram
}

type cacheEntry struct {
	done     chan struct{} // closed when outcome is set
	outcome  Outcome
	inflight bool
	// elem is the entry's LRU slot once completed-and-cached (nil while
	// in flight or for entries resolved without caching).
	elem *list.Element
}

// NewStore returns an empty store with shards rounded up to a power of
// two (min 1) and about totalEntries completed results resident across
// all shards.
func NewStore(shards, totalEntries int) *Store {
	n := 1
	for n < shards {
		n <<= 1
	}
	if totalEntries <= 0 {
		totalEntries = defaultCacheEntries
	}
	per := totalEntries / n
	if per < 1 {
		per = 1
	}
	st := &Store{
		shards:   make([]cacheShard, n),
		mask:     uint64(n - 1),
		perShard: per,
		start:    time.Now(),
	}
	for i := range st.shards {
		st.shards[i].entries = make(map[string]*cacheEntry)
		st.shards[i].lru = list.New()
	}
	return st
}

// defaultCacheEntries bounds the completed-result cache when Options
// leaves it unset: enough for a large sweep campaign, small enough that
// a long-running server cannot grow without bound.
const defaultCacheEntries = 4096

// Shards returns the shard count (a power of two).
func (st *Store) Shards() int { return len(st.shards) }

// shardFor maps a canonical config hash (hex SHA-256) to its shard by
// prefix. Non-hex hashes (tests) fall back to FNV-1a.
func (st *Store) shardFor(hash string) *cacheShard {
	if len(hash) >= 8 {
		if v, err := strconv.ParseUint(hash[:8], 16, 64); err == nil {
			return &st.shards[v&st.mask]
		}
	}
	h := fnv.New32a()
	h.Write([]byte(hash))
	return &st.shards[uint64(h.Sum32())&st.mask]
}

// Begin claims hash for execution. The first caller per hash becomes the
// leader (leader=true) and must call Complete exactly once; every other
// caller gets the same entry to Wait on. Completed entries stay resident
// (and move to the front of their shard's LRU) until evicted by
// capacity, so a re-submission of a finished config is a pure cache hit.
func (st *Store) Begin(hash string) (e *cacheEntry, leader bool) {
	sh := st.shardFor(hash)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.entries[hash]; ok {
		sh.hits++
		if e.elem != nil {
			sh.lru.MoveToFront(e.elem)
		}
		return e, false
	}
	sh.misses++
	e = &cacheEntry{done: make(chan struct{}), inflight: true}
	sh.entries[hash] = e
	return e, true
}

// Abandon releases a leader's claim without executing (the job was shed
// at admission). Followers that attached in the meantime keep waiting on
// the entry only if it is re-claimed; to keep the invariant simple the
// entry is resolved as the given outcome instead.
func (st *Store) Abandon(hash string, e *cacheEntry, out Outcome) {
	sh := st.shardFor(hash)
	sh.mu.Lock()
	delete(sh.entries, hash)
	sh.mu.Unlock()
	e.outcome = out
	e.inflight = false
	close(e.done)
}

// Complete resolves the leader's entry. Successful and panicked outcomes
// are deterministic, so they stay cached and join the shard's LRU;
// canceled outcomes depend on wall-clock timing, so the entry is evicted
// — current waiters still get the outcome, but a later resubmission
// re-runs. Cached completions beyond the shard's capacity evict the
// least-recently-used completed entry (never an in-flight one — only
// completed entries are in the LRU).
func (st *Store) Complete(hash string, e *cacheEntry, out Outcome) {
	sh := st.shardFor(hash)
	sh.mu.Lock()
	if out.Err != nil && out.Report == "" && !deterministicErr(out.Err) {
		delete(sh.entries, hash)
	} else {
		e.elem = sh.lru.PushFront(hash)
		for sh.lru.Len() > st.perShard {
			back := sh.lru.Back()
			sh.lru.Remove(back)
			delete(sh.entries, back.Value.(string))
			sh.evictions++
		}
	}
	sh.mu.Unlock()
	e.outcome = out
	e.inflight = false
	close(e.done)
}

// RecordLatency observes one job's submit-to-terminal latency in the
// histogram of the shard owning its config hash.
func (st *Store) RecordLatency(hash string, d time.Duration) {
	st.shardFor(hash).hist.observe(d)
}

// Wait blocks until the entry resolves and returns its outcome.
func (e *cacheEntry) Wait() Outcome {
	<-e.done
	return e.outcome
}

// Resolved reports whether the entry already holds an outcome.
func (e *cacheEntry) Resolved() bool {
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

// Hits returns how many submissions were served without a new execution.
func (st *Store) Hits() int64 {
	var n int64
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		n += sh.hits
		sh.mu.Unlock()
	}
	return n
}

// Evictions returns the total completed entries evicted by capacity.
func (st *Store) Evictions() int64 {
	var n int64
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		n += sh.evictions
		sh.mu.Unlock()
	}
	return n
}

// Len returns the number of resident entries (in-flight included).
func (st *Store) Len() int {
	n := 0
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}
