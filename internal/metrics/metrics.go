// Package metrics provides the small statistics and text-rendering
// utilities the report generators use: bucketed histograms (the Figure 3
// distributions) and aligned text tables.
package metrics

import (
	"fmt"
	"sort"
	"strings"
)

// Histogram counts values into user-defined buckets. Edges are the upper
// bounds (exclusive) of each bucket; values ≥ the last edge land in the
// overflow bucket.
type Histogram struct {
	Edges  []float64
	Counts []int64
	N      int64
	Sum    float64
	Min    float64
	Max    float64
}

// NewHistogram builds a histogram with the given upper edges (must be
// increasing).
func NewHistogram(edges ...float64) *Histogram {
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			panic("metrics: histogram edges must increase")
		}
	}
	return &Histogram{Edges: edges, Counts: make([]int64, len(edges)+1)}
}

// Add records one value.
func (h *Histogram) Add(v float64) {
	i := sort.SearchFloat64s(h.Edges, v)
	if i < len(h.Edges) && v == h.Edges[i] {
		i++ // edges are exclusive upper bounds
	}
	h.Counts[i]++
	h.N++
	h.Sum += v
	if h.N == 1 || v < h.Min {
		h.Min = v
	}
	if h.N == 1 || v > h.Max {
		h.Max = v
	}
}

// Mean returns the average of the recorded values.
func (h *Histogram) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return h.Sum / float64(h.N)
}

// Pct returns each bucket's share in percent.
func (h *Histogram) Pct() []float64 {
	out := make([]float64, len(h.Counts))
	if h.N == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = 100 * float64(c) / float64(h.N)
	}
	return out
}

// BucketLabel returns a human-readable label for bucket i.
func (h *Histogram) BucketLabel(i int) string {
	switch {
	case len(h.Edges) == 0:
		return "all"
	case i == 0:
		return fmt.Sprintf("<%g", h.Edges[0])
	case i == len(h.Edges):
		return fmt.Sprintf("≥%g", h.Edges[len(h.Edges)-1])
	default:
		return fmt.Sprintf("%g-%g", h.Edges[i-1], h.Edges[i])
	}
}

// Render draws the histogram as an ASCII bar chart.
func (h *Histogram) Render(title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (n=%d, mean=%.1f)\n", title, h.N, h.Mean())
	pcts := h.Pct()
	for i := range h.Counts {
		bar := strings.Repeat("#", int(pcts[i]/2+0.5))
		fmt.Fprintf(&b, "  %-12s %6.1f%% %s\n", h.BucketLabel(i), pcts[i], bar)
	}
	return b.String()
}

// Table renders aligned text tables.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	note    string
}

// NewTable starts a table.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) *Table {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		case float32:
			row[i] = fmt.Sprintf("%.1f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
	return t
}

// Note attaches a footnote printed under the table.
func (t *Table) Note(format string, args ...interface{}) *Table {
	t.note = fmt.Sprintf(format, args...)
	return t
}

// String renders the table.
func (t *Table) String() string {
	width := make([]int, len(t.Headers))
	for i, hd := range t.Headers {
		width[i] = len([]rune(hd))
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(width) && len([]rune(c)) > width[i] {
				width[i] = len([]rune(c))
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := width[i] - len([]rune(c))
			if i == 0 {
				b.WriteString(c + strings.Repeat(" ", pad))
			} else {
				b.WriteString(strings.Repeat(" ", pad) + c)
			}
		}
		b.WriteString("\n")
	}
	line(t.Headers)
	total := 0
	for _, w := range width {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2) + "\n")
	for _, r := range t.Rows {
		line(r)
	}
	if t.note != "" {
		fmt.Fprintf(&b, "  note: %s\n", t.note)
	}
	return b.String()
}

// PctOf is a guarded percentage.
func PctOf(part, whole int64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

// PctOfF is a guarded percentage for floats.
func PctOfF(part, whole float64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * part / whole
}
