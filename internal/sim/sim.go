package sim

import (
	"math"
	"sync/atomic"

	"repro/internal/arch"
	"repro/internal/bus"
	"repro/internal/check"
	"repro/internal/inject"
	"repro/internal/kernel"
	"repro/internal/monitor"
	"repro/internal/sample"
	"repro/internal/tlb"
)

// Config tunes the simulator.
type Config struct {
	// Machine is the simulated hardware; the zero value means
	// arch.Default() (the measured 4D/340). NCPU, when set, overrides
	// Machine.NCPU — existing callers and CLI flags keep working.
	Machine arch.Machine
	// NCPU is the processor count (default Machine.NCPU).
	NCPU int
	// Seed drives all randomness.
	Seed int64
	// Window is the traced portion of the run in cycles.
	Window arch.Cycles
	// Warmup runs before tracing is enabled so that cold-start
	// transients are excluded (the paper traces a running system).
	Warmup arch.Cycles
	// MonitorCap is the trace-buffer capacity (0 → the real monitor's
	// 2M transactions).
	MonitorCap int
	// MasterThreshold is the buffer fill fraction at which the master
	// process suspends the workload and dumps the trace.
	MasterThreshold float64
	// NetPeriod posts a network interrupt on CPU 1 every so many cycles
	// (the trace-transfer daemons of Section 2.1). 0 disables.
	NetPeriod arch.Cycles
	// NoTrace disables the monitor entirely (kernel-counter-only runs,
	// e.g. the Figure 11 CPU sweeps).
	NoTrace bool
	// Streaming skips the monitor's trace buffer: no Monitor is built,
	// and the recorder assigned to Simulator.Stream (e.g. an inline
	// trace.Classifier) is attached to the bus when tracing starts. The
	// master-process dump logic is a no-op in this mode — there is no
	// buffer to fill, so the workload is never suspended.
	Streaming bool
	// UpdateProtocol switches the bus to write-update coherence (the
	// protocol ablation).
	UpdateProtocol bool
	// Reference runs the generic oracle paths end to end: way-loop/LRU
	// caches, full snoop broadcasts with no presence filter, and the
	// rescan-every-step scheduler. The fast path must produce
	// byte-identical reports; -reference exists to prove it.
	Reference bool
	// Check enables the invariant checker (shadow memory, coherence,
	// lock discipline). Off by default: it costs time and memory.
	Check bool
	// CheckFailFast makes the first violation panic instead of being
	// collected (useful under a debugger).
	CheckFailFast bool
	// Inject, when non-nil and enabled, perturbs the run with
	// deterministic faults.
	Inject *inject.Config
	// SimWorkers > 1 enables the conservative parallel engine: the
	// machine's CPUs are partitioned across that many goroutines, each
	// speculating privately between bus-commit points, with a
	// deterministic merge that keeps reports byte-identical to the
	// serial engine (0 or 1). It silently falls back to serial when the
	// configuration doesn't support speculation (reference/check/inject
	// runs, a buffered monitor, set-associative geometries, 1 CPU, or
	// more CPUs than the presence filter covers).
	SimWorkers int
	// Sample, when enabled, runs the traced window under the sampled-
	// simulation regime: detailed re-warm + measured intervals separated
	// by functionally-warmed fast-forward stretches (see the sample
	// package and phase.go). The zero Schedule keeps today's full-detail
	// behavior, byte for byte.
	Sample sample.Schedule
	// Kernel carries kernel tuning; NCPU and Seed are propagated.
	Kernel kernel.Config
}

func (c Config) withDefaults() Config {
	if c.Machine == (arch.Machine{}) {
		c.Machine = arch.Default()
	}
	if c.NCPU == 0 {
		c.NCPU = c.Machine.NCPU
	} else {
		c.Machine.NCPU = c.NCPU
	}
	if c.Window == 0 {
		c.Window = arch.DefaultWindow
	}
	if c.Warmup == 0 {
		c.Warmup = c.Window / 4
	}
	if c.MasterThreshold == 0 {
		c.MasterThreshold = 0.75
	}
	if c.NetPeriod == 0 {
		c.NetPeriod = 70_000 // ≈2 ms
	}
	c.Kernel.Machine = c.Machine
	c.Kernel.NCPU = c.NCPU
	c.Kernel.Seed = c.Seed
	return c
}

// userBurst caps how long a CPU runs user code per step, bounding the
// clock skew between CPUs (and therefore the lock-interval approximation
// error).
const userBurst = 2000

// idleStep is how far an idle CPU advances per poll of the run queue.
const idleStep = 400

// Simulator owns the machine and the kernel.
type Simulator struct {
	Cfg  Config
	K    *kernel.Kernel
	Bus  *bus.System
	Mon  *monitor.Monitor
	// Stream, when non-nil, is attached to the bus at trace start (after
	// warmup) and consumes every transaction inline; with a Monitor also
	// present the two share the stream through a bus.Fanout. Set it
	// before Run — typically to a trace.Classifier, which core wires up.
	Stream bus.Recorder
	CPUs   []*CPU
	// Chk is the invariant checker (nil unless Cfg.Check).
	Chk *check.Checker
	// Inj is the fault injector (nil unless Cfg.Inject is enabled).
	Inj *inject.Injector
	// par is the conservative parallel engine (nil when running serial:
	// SimWorkers ≤ 1 or an unsupported configuration).
	par *parEngine

	// Phase is the current simulation phase of a sampled run (always
	// Detailed otherwise); see phase.go.
	Phase Phase
	// OnMeasure, when set on a sampled run, is called with true just
	// before each measured interval's loop and false just after it —
	// core snapshots and differences the classifier's counts there.
	OnMeasure func(measuring bool)
	// phaseRec is the phase-aware recorder gate of a sampled run (nil
	// otherwise); enterDetailed/enterFastForward flip it alongside the
	// bus's own warm gate.
	phaseRec *bus.PhaseFanout

	traceEscapes bool
	end          arch.Cycles
	nextNet      arch.Cycles

	// cancel is the cooperative cancellation flag. Cancel (any goroutine)
	// sets it; the CPUs poll it before every bus transaction they issue,
	// so a canceled run unwinds before the next transaction starts. The
	// flag is never set on an ordinary run, so the uncanceled step
	// sequence — and therefore every report — is byte-identical to a
	// build without it.
	cancel atomic.Bool
	// cycle is the simulated-cycle heartbeat: the clock of the most
	// recently stepped CPU, stored every step so watchdogs on other
	// goroutines can tell a slow run from a wedged one.
	cycle atomic.Int64

	// Cached routine pointers for the per-step hot paths (resolved once
	// at construction, avoiding the KText name-map lookup per call).
	rIdleLoop    *kernel.Routine
	rLockAcquire *kernel.Routine
	rLockRelease *kernel.Routine

	// TraceStartAt is when tracing was enabled (for rate computations).
	TraceStartAt arch.Cycles
	// BaseCounters is the kernel-counter snapshot at trace start; the
	// traced window's counters are K.Counters().Sub(BaseCounters).
	BaseCounters kernel.Counters
	// OpCycles accumulates kernel time by high-level operation (for
	// calibration and the Figure 9 cross-check).
	OpCycles [kernel.NumOps]arch.Cycles
	// Run-queue depth sampling (diagnostics).
	QDepthSum int64
	QSamples  int64
	// ICacheFlushes counts code-page-reallocation flushes.
	ICacheFlushes int64
}

// New builds a simulator. Workloads then create processes through
// Kernel() and call Run.
func New(cfg Config) *Simulator {
	cfg = cfg.withDefaults()
	s := &Simulator{Cfg: cfg}
	s.K = kernel.New(cfg.Kernel)
	s.rIdleLoop = s.K.T.R("idle_loop")
	s.rLockAcquire = s.K.T.R("lock_acquire")
	s.rLockRelease = s.K.T.R("lock_release")
	if cfg.NoTrace || cfg.Streaming {
		// Streaming mode has no trace buffer; the inline recorder is
		// attached at trace start (Run), once warmup is over.
		s.Bus = bus.NewSystem(cfg.Machine, nil)
	} else {
		s.Mon = monitor.New(cfg.MonitorCap)
		s.Mon.SetEnabled(false)
		s.Bus = bus.NewSystem(cfg.Machine, s.Mon)
	}
	if cfg.UpdateProtocol {
		s.Bus.Proto = bus.WriteUpdate
	}
	if cfg.Reference {
		s.Bus.SetReference(true)
	}
	if cfg.Check {
		s.Chk = check.New(s.Bus, cfg.Machine.MemFrames())
		s.Chk.FailFast = cfg.CheckFailFast
		s.Chk.RoutineOf = func(q arch.CPUID) string { return s.CPUs[q].RoutineName() }
		s.Bus.Check = s.Chk
	}
	if cfg.Inject != nil && cfg.Inject.Enabled() {
		icfg := *cfg.Inject
		if icfg.Seed == 0 {
			// Derive a private fault seed from the run seed so every
			// injected run replays from (-seed, -inject) alone.
			icfg.Seed = cfg.Seed*1_000_003 + 77
		}
		s.Inj = inject.New(icfg, cfg.NCPU)
		s.Bus.Jitter = s.Inj.Jitter
	}
	s.CPUs = make([]*CPU, cfg.NCPU)
	for i := range s.CPUs {
		s.CPUs[i] = &CPU{
			id:            arch.CPUID(i),
			sim:           s,
			tlb:           tlb.New(cfg.Machine.TLBEntries),
			mode:          arch.ModeKernel,
			nextClockTick: arch.ClockTickCycles + arch.Cycles(i*1000),
		}
	}
	if cfg.SimWorkers > 1 && s.specAllowed() {
		s.par = newParEngine(s, cfg.SimWorkers)
	}
	return s
}

// Kernel returns the kernel instance for workload setup.
func (s *Simulator) Kernel() *kernel.Kernel { return s.K }

// CheckErrors returns the invariant violations collected so far (nil when
// the checker is disabled; see check.Checker.Violations for the full
// count when more than the cap occurred).
func (s *Simulator) CheckErrors() []*check.CheckError {
	if s.Chk == nil {
		return nil
	}
	return s.Chk.Errors()
}

// canceledSignal unwinds a canceled run out of arbitrarily deep kernel
// call stacks; RunCancelable recovers it. The simulator is abandoned
// mid-flight afterwards — only Progress (for provenance) remains
// meaningful.
type canceledSignal struct{}

// Cancel requests cooperative termination. Safe to call from any
// goroutine, any number of times; the run's CPUs observe the flag before
// issuing their next bus transaction and unwind out of RunCancelable.
func (s *Simulator) Cancel() { s.cancel.Store(true) }

// Canceled reports whether Cancel has been called.
func (s *Simulator) Canceled() bool { return s.cancel.Load() }

// Progress returns the simulated cycle most recently reached — the
// per-run heartbeat. Safe to call concurrently with a running simulation;
// it only ever moves forward (modulo per-CPU clock skew bounded by
// userBurst).
func (s *Simulator) Progress() arch.Cycles { return arch.Cycles(s.cycle.Load()) }

// pollCancel is the per-transaction cancellation check: every CPU calls
// it immediately before issuing a bus transaction, so once the flag is
// set no further transaction starts.
func (s *Simulator) pollCancel(c *CPU) {
	if s.cancel.Load() {
		s.cycle.Store(int64(c.now))
		panic(canceledSignal{})
	}
}

// RunCancelable executes Run but allows a concurrent Cancel to stop it
// between bus transactions. It reports whether the run completed; a
// false return means the simulator was abandoned at Progress() cycles
// with its internal state torn mid-operation — read nothing but
// Progress from it.
func (s *Simulator) RunCancelable() (completed bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(canceledSignal); !ok {
				panic(r)
			}
		}
	}()
	s.Run()
	return true
}

// Run executes warmup plus the traced window.
func (s *Simulator) Run() {
	if s.Cfg.Sample.Enabled() {
		s.runSampled()
		return
	}
	// Wire memory down to the circulating pool (see kernel.Config).
	s.K.WireAllBut(s.K.Cfg.PoolFrames)
	// Initial schedule: each CPU picks its first process (or idles).
	for _, c := range s.CPUs {
		s.beginOS(c, kernel.OpOtherSyscall)
		s.scheduleNext(c, nil, false)
	}
	// Warmup, monitor off.
	s.end = s.Cfg.Warmup
	s.loop()
	// Enable tracing, synchronize per-CPU state into the trace.
	s.traceEscapes = true
	if s.Mon != nil {
		s.Mon.SetEnabled(true)
	}
	if s.Stream != nil {
		// Attach the inline consumer; with a buffered monitor also
		// present, fan the stream out to both.
		if s.Mon != nil {
			s.Bus.SetRecorder(bus.NewFanout(s.Mon, s.Stream))
		} else {
			s.Bus.SetRecorder(s.Stream)
		}
	}
	s.TraceStartAt = s.minClock()
	s.BaseCounters = s.K.Counters()
	s.K.Locks.ResetStats()
	s.CPUs[0].Escape(monitor.EvTraceStart)
	// Initial-state dump: which frames hold code (the postprocessor
	// needs this to tell instruction fetches from data reads in user
	// space).
	for _, fr := range s.K.CodeFrames() {
		s.CPUs[0].Escape(monitor.EvPageAlloc, fr, uint32(1))
	}
	for _, c := range s.CPUs {
		c.needSync = true
		// Reset accounting so reported fractions cover the traced
		// window only.
		c.Time = [3]arch.Cycles{}
		c.Stall = [3]arch.Cycles{}
		c.L2Stall = [3]arch.Cycles{}
		c.SyncCycles = 0
	}
	s.end = s.TraceStartAt + s.Cfg.Window
	s.loop()
}

// minPair is the one source of truth for "next CPU to step": among CPUs
// with now < limit it returns the one with the smallest clock (ties broken
// by lowest CPU id, i.e. first-index-wins, exactly like the original scan)
// plus the runner-up under the same ordering. Both are nil when every CPU
// has reached the limit.
func (s *Simulator) minPair(limit arch.Cycles) (lo, next *CPU) {
	for _, q := range s.CPUs {
		if q.now >= limit {
			continue
		}
		switch {
		case lo == nil || q.now < lo.now:
			lo, next = q, lo
		case next == nil || q.now < next.now:
			next = q
		}
	}
	return lo, next
}

func (s *Simulator) minClock() arch.Cycles {
	c, _ := s.minPair(arch.Cycles(math.MaxInt64))
	if c == nil {
		// Unreachable with a finite limit, but a simulator with zero
		// CPUs (or a future caller passing a real limit) must not nil-
		// deref; the window end is the only sensible clock then.
		return s.end
	}
	return c.now
}

// loop steps the CPU with the smallest clock until all pass s.end.
//
// The fast path batches: stepping a CPU only advances that CPU's clock, so
// once chosen it stays the minimum until it overtakes the runner-up — the
// scheduler scan is paid per batch, not per step. On a tie the lower CPU id
// runs first (minPair's ordering), so the step sequence is exactly the one
// the rescan-every-step reference policy produces.
func (s *Simulator) loop() {
	if s.Cfg.Reference {
		s.loopReference()
		return
	}
	if s.par != nil {
		s.loopParallel()
		return
	}
	for {
		c, next := s.minPair(s.end)
		if c == nil {
			return
		}
		if next == nil {
			// Sole CPU still below the window end: run it out.
			for c.now < s.end {
				s.step(c)
			}
			continue
		}
		for c.now < s.end && (c.now < next.now || (c.now == next.now && c.id < next.id)) {
			s.step(c)
		}
	}
}

// loopReference is the original O(N)-per-step scheduler, kept verbatim as
// the -reference oracle for the batching loop above.
func (s *Simulator) loopReference() {
	for {
		var c *CPU
		for _, q := range s.CPUs {
			if q.now < s.end && (c == nil || q.now < c.now) {
				c = q
			}
		}
		if c == nil {
			return
		}
		s.step(c)
	}
}

// step runs one bounded unit of work on a CPU.
func (s *Simulator) step(c *CPU) {
	s.pollCancel(c)
	s.cycle.Store(int64(c.now))
	s.QDepthSum += int64(s.K.RunnableCount())
	s.QSamples++
	if c.needSync {
		c.needSync = false
		s.syncEscape(c)
	}
	// The master process: dump the trace buffer before it overflows.
	// Without a buffer (streaming or no-trace runs) there is nothing to
	// fill, so the suspend/dump logic must never fire.
	if s.Mon != nil && s.Mon.FillFraction() > s.Cfg.MasterThreshold {
		c.Escape(monitor.EvSuspend)
		s.Mon.Dump()
		c.Escape(monitor.EvResume)
	}
	// Fault injection: deterministic perturbations delivered at step
	// boundaries, where an interrupt could also arrive. Faults may move
	// performance counters; the checker proves they never move
	// correctness.
	if in := s.Inj; in != nil {
		if in.DueEvict(int(c.id), c.now) {
			in.Stats.Evictions += int64(s.Bus.InjectEvictRandom(in.Rng(), c.id, in.Cfg.EvictBurst, c.now))
		}
		if in.DueIFlush(int(c.id), c.now) {
			in.Stats.IFlushes++
			s.Bus.InjectIFlush(c.id)
		}
		if in.DueIntr(int(c.id), c.now) {
			in.Stats.ExtraInterrupts++
			s.interrupt(c, kernel.IntrNet, func() { s.K.NetIntr(c) })
			return
		}
		if c.cur != nil && in.DueMigrate(int(c.id), c.now) {
			// Preempt the running process and requeue it; whichever CPU
			// picks it up next refills its cache footprint from scratch.
			in.Stats.ForcedMigrations++
			pr := c.cur
			s.beginOS(c, kernel.OpOtherSyscall)
			s.K.EnterException(c, pr)
			c.cur = nil
			s.scheduleNext(c, pr, true)
			return
		}
	}
	// Asynchronous interrupts for this CPU.
	if ev, ok := s.K.PopDueEventFor(c.id, c.now); ok {
		s.interrupt(c, ev.Kind, func() {
			if ev.Kind == kernel.IntrDisk {
				s.K.DiskIntr(c, ev.Ch)
			} else {
				s.K.NetIntr(c)
			}
		})
		return
	}
	// Periodic network activity on CPU 1.
	if c.id == 1 && s.Cfg.NetPeriod > 0 {
		if s.nextNet == 0 {
			s.nextNet = c.now + s.Cfg.NetPeriod
		}
		if c.now >= s.nextNet {
			s.nextNet = c.now + s.Cfg.NetPeriod
			s.interrupt(c, kernel.IntrNet, func() { s.K.NetIntr(c) })
			return
		}
	}
	// The 10 ms clock.
	if c.now >= c.nextClockTick {
		c.nextClockTick += arch.ClockTickCycles
		s.clockTick(c)
		return
	}
	if c.cur == nil {
		s.idleLoop(c)
		return
	}
	s.runUser(c)
}

// syncEscape records the CPU's state at trace start so the postprocessor
// knows the initial mode and process of every CPU.
func (s *Simulator) syncEscape(c *CPU) {
	if c.cur != nil {
		c.Escape(monitor.EvRunProc, uint32(c.cur.PID))
		return
	}
	// Idle: reopen the OS/idle window in the trace.
	c.Escape(monitor.EvEnterOS, uint32(kernel.OpOtherSyscall), 0)
	c.Escape(monitor.EvEnterIdle)
}

// beginOS opens an OS invocation: escape, mode switch, op accounting.
func (s *Simulator) beginOS(c *CPU, op kernel.OpKind) {
	s.K.CountOp(op)
	var pid arch.PID
	if c.cur != nil {
		pid = c.cur.PID
	}
	c.Escape(monitor.EvEnterOS, uint32(op), uint32(pid))
	c.mode = arch.ModeKernel
	c.inOS = true
	c.curOp = op
	c.osStart = c.now
}

// endOS closes the OS invocation and returns to user mode.
func (s *Simulator) endOS(c *CPU) {
	c.Escape(monitor.EvExitOS)
	c.inOS = false
	c.mode = arch.ModeUser
	s.OpCycles[c.curOp] += c.now - c.osStart
	c.osStart = 0
}

// enterIdle parks the CPU in the OS idle loop (the OS window stays open,
// as in Figure 1's "OS in the Idle Loop" segment).
func (s *Simulator) enterIdle(c *CPU) {
	c.Escape(monitor.EvEnterIdle)
	c.mode = arch.ModeIdle
	s.OpCycles[c.curOp] += c.now - c.osStart
	c.osStart = c.now // further time is idle, not op time
	c.cur = nil
}

// intrEnter/intrExit tell the checker an interrupt is being accepted and
// has returned, so the lock/interrupt-masking invariant can be verified.
func (s *Simulator) intrEnter(c *CPU) {
	if s.Chk != nil {
		s.Chk.OnInterruptEnter(c.id, c.now)
	}
}

func (s *Simulator) intrExit(c *CPU) {
	if s.Chk != nil {
		s.Chk.OnInterruptExit(c.id)
	}
}

// interrupt wraps an interrupt handler in the right trace events for the
// CPU's current state (user mode or inside the idle loop).
func (s *Simulator) interrupt(c *CPU, kind kernel.IntrKind, handler func()) {
	if c.inOS {
		// Interrupted the idle loop: stay inside the open OS window.
		s.K.CountOp(kernel.OpInterrupt)
		c.Escape(monitor.EvEnterIntr, uint32(kind))
		c.mode = arch.ModeKernel
		start := c.now
		s.intrEnter(c)
		handler()
		s.intrExit(c)
		s.OpCycles[kernel.OpInterrupt] += c.now - start
		c.Escape(monitor.EvExitIntr)
		if s.K.RunnableCount() > 0 {
			c.Escape(monitor.EvExitIdle)
			c.osStart = c.now
			s.scheduleNext(c, nil, false)
			return
		}
		c.mode = arch.ModeIdle
		return
	}
	pr := c.cur
	s.beginOS(c, kernel.OpInterrupt)
	c.Escape(monitor.EvEnterIntr, uint32(kind))
	s.intrEnter(c)
	s.K.EnterException(c, pr)
	handler()
	s.intrExit(c)
	c.Escape(monitor.EvExitIntr)
	s.K.ExitException(c, pr)
	s.endOS(c)
}

// clockTick delivers the scheduler tick, preempting the current process at
// quantum expiry.
func (s *Simulator) clockTick(c *CPU) {
	if c.inOS {
		// Tick during idle.
		s.K.CountOp(kernel.OpInterrupt)
		c.Escape(monitor.EvEnterIntr, uint32(kernel.IntrClock))
		c.mode = arch.ModeKernel
		start := c.now
		s.intrEnter(c)
		s.K.ClockIntr(c, nil, c.now)
		s.intrExit(c)
		s.OpCycles[kernel.OpInterrupt] += c.now - start
		c.Escape(monitor.EvExitIntr)
		if s.K.RunnableCount() > 0 {
			c.Escape(monitor.EvExitIdle)
			c.osStart = c.now
			s.scheduleNext(c, nil, false)
			return
		}
		c.mode = arch.ModeIdle
		return
	}
	pr := c.cur
	s.beginOS(c, kernel.OpInterrupt)
	c.Escape(monitor.EvEnterIntr, uint32(kernel.IntrClock))
	s.intrEnter(c)
	s.K.EnterException(c, pr)
	resched := s.K.ClockIntr(c, pr, c.now)
	s.intrExit(c)
	c.Escape(monitor.EvExitIntr)
	if resched {
		c.cur = nil
		s.scheduleNext(c, pr, true)
		return
	}
	s.K.ExitException(c, pr)
	s.endOS(c)
}

// scheduleNext context-switches to the next ready process, running any
// pending kernel continuation it holds; with nothing runnable the CPU
// idles. Called inside an open OS window.
func (s *Simulator) scheduleNext(c *CPU, old *kernel.Proc, requeue bool) {
	for {
		next := s.K.ContextSwitch(c, old, requeue)
		if next == nil {
			s.enterIdle(c)
			return
		}
		c.cur = next
		c.flushMicroTLB()
		if cont, _ := s.K.TakeContinuation(next); cont != nil {
			switch cont(c, next) {
			case kernel.SysBlocked:
				c.cur = nil
				old, requeue = nil, false
				continue
			case kernel.SysYield:
				c.cur = nil
				old, requeue = next, true
				continue
			case kernel.SysExited:
				c.cur = nil
				old, requeue = nil, false
				continue
			}
		}
		s.K.ExitException(c, next)
		s.endOS(c)
		return
	}
}

// idleLoop advances an idle CPU: poll the run queue, pick up work when it
// appears.
func (s *Simulator) idleLoop(c *CPU) {
	if s.K.RunnableCount() > 0 {
		c.Escape(monitor.EvExitIdle)
		c.mode = arch.ModeKernel
		c.osStart = c.now
		s.scheduleNext(c, nil, false)
		return
	}
	// Spin in the idle loop: fetch it and poll the run-queue head.
	c.execQuiet(s.rIdleLoop)
	c.dataRef(s.K.L.RunQueue.Base, false)
	c.adv(idleStep)
}

// doSyscall performs one system call as a full OS invocation.
func (s *Simulator) doSyscall(c *CPU, req kernel.SyscallReq) {
	pr := c.cur
	s.beginOS(c, kernel.OpKindOf(req))
	s.K.EnterException(c, pr)
	st := s.K.Syscall(c, pr, req)
	s.settle(c, pr, st)
}

// doExit terminates the current process.
func (s *Simulator) doExit(c *CPU) {
	pr := c.cur
	s.beginOS(c, kernel.OpOtherSyscall)
	s.K.EnterException(c, pr)
	st := s.K.ExitProc(c, pr)
	s.settle(c, pr, st)
}

// settle finishes an OS invocation according to the syscall status.
func (s *Simulator) settle(c *CPU, pr *kernel.Proc, st kernel.SysStatus) {
	switch st {
	case kernel.SysDone:
		s.K.ExitException(c, pr)
		s.endOS(c)
	case kernel.SysBlocked, kernel.SysExited:
		c.cur = nil
		s.scheduleNext(c, nil, false)
	case kernel.SysYield:
		c.cur = nil
		s.scheduleNext(c, pr, true)
	}
}

// pageFault services an expensive TLB fault as its own OS invocation.
func (s *Simulator) pageFault(c *CPU, pr *kernel.Proc, vpage uint32, write bool) {
	s.beginOS(c, kernel.OpExpensiveTLB)
	s.K.EnterException(c, pr)
	s.K.LockShr(c, pr)
	s.K.PageFault(c, pr, vpage, write)
	s.K.UnlockShr(c, pr)
	s.K.ExitException(c, pr)
	s.endOS(c)
}
