package core

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/arch"
	"repro/internal/sample"
	"repro/internal/trace"
	"repro/internal/workload"
)

// sampleSchedule is the validated reference schedule for the accuracy
// tests: 27 samples over the default 12M-cycle window, each a 30K-cycle
// detailed re-warm plus a 60K-cycle measured interval, ~14% of the
// window measured. The period is deliberately not a round multiple of
// the machine's periodic behavior (clock ticks, scheduler quanta) —
// round periods alias with them and bias the sample.
const sampleSchedule = "30K:60K:430K"

// sampleTolerance asserts one class cell of a sampled estimate against
// the full run's exact count: the absolute error must stay within 1% of
// the run's total misses plus 4 standard errors. Calibrated against all
// three workloads at the default window, where the worst cell sits at
// 2.4 standard errors past the floor.
func sampleTolerance(t *testing.T, name string, got, want, stderr, fullTotal float64) {
	t.Helper()
	tol := 0.01*fullTotal + 4*stderr
	if diff := math.Abs(got - want); diff > tol {
		t.Errorf("%s: sampled %.0f vs full %.0f — |diff| %.0f exceeds tolerance %.0f (stderr %.0f)",
			name, got, want, diff, tol, stderr)
	}
}

// TestSampledMatchesFullRun is the accuracy gate of the sampling
// pipeline: for each workload at the default 12M-cycle window, a sampled
// run must (a) take the exact trajectory of the full-detail run — equal
// architectural state hashes, time split and kernel counters — and
// (b) estimate every per-class miss count within the documented
// tolerance. A second sampled run on the parallel engine must reproduce
// the serial estimate bit for bit.
func TestSampledMatchesFullRun(t *testing.T) {
	sched, err := sample.Parse(sampleSchedule)
	if err != nil {
		t.Fatal(err)
	}
	for _, wl := range []workload.Kind{workload.Pmake, workload.Multpgm, workload.Oracle} {
		t.Run(wl.String(), func(t *testing.T) {
			full := Run(Config{Workload: wl, Window: arch.DefaultWindow})
			samp := Run(Config{Workload: wl, Window: arch.DefaultWindow, Sample: sched})
			if samp.Sampled == nil {
				t.Fatal("sampled run produced no estimate")
			}

			// Exact trajectory: fast-forward must not perturb the machine.
			if fh, sh := full.Sim.StateHash(), samp.Sim.StateHash(); fh != sh {
				t.Errorf("state hash diverged: full %x, sampled %x", fh, sh)
			}
			fu, fs, fi := full.TimeSplit()
			su, ss, si := samp.TimeSplit()
			if fu != su || fs != ss || fi != si {
				t.Errorf("time split diverged: full %v/%v/%v, sampled %v/%v/%v", fu, fs, fi, su, ss, si)
			}
			if full.Ops != samp.Ops {
				t.Errorf("kernel counters diverged:\nfull    %+v\nsampled %+v", full.Ops, samp.Ops)
			}

			// Statistical agreement of the extrapolated class counts.
			var fullTotal int64
			for o := 0; o < 2; o++ {
				for i := 0; i < 2; i++ {
					for cl := trace.MissClass(0); cl < trace.NumClasses; cl++ {
						fullTotal += full.Trace.Counts[o][i][cl]
					}
				}
			}
			for o := 0; o < 2; o++ {
				for i := 0; i < 2; i++ {
					for cl := trace.MissClass(0); cl < trace.NumClasses; cl++ {
						name := [2]string{"app", "os"}[o] + "-" + [2]string{"d", "i"}[i] + "-" + cl.String()
						sampleTolerance(t, name,
							samp.Sampled.Total[o][i][cl],
							float64(full.Trace.Counts[o][i][cl]),
							samp.Sampled.StdErr[o][i][cl],
							float64(fullTotal))
					}
				}
			}
			total, _ := samp.Sampled.TotalAll()
			if rel := math.Abs(total-float64(fullTotal)) / float64(fullTotal); rel > 0.20 {
				t.Errorf("total misses: sampled %.0f vs full %d (%.1f%% off, cap 20%%)",
					total, fullTotal, 100*rel)
			}

			// The conservative parallel engine must reproduce the serial
			// sampled run exactly — phases flip only at step boundaries,
			// where the workers have quiesced.
			par := Run(Config{Workload: wl, Window: arch.DefaultWindow, Sample: sched, SimWorkers: 2})
			if sh, ph := samp.Sim.StateHash(), par.Sim.StateHash(); sh != ph {
				t.Errorf("parallel sampled state hash diverged: serial %x, workers=2 %x", sh, ph)
			}
			if !reflect.DeepEqual(samp.Sampled, par.Sampled) {
				t.Errorf("parallel sampled estimate diverged from serial:\nserial  %+v\nworkers %+v",
					samp.Sampled, par.Sampled)
			}
		})
	}
}

// TestSampledRunUnderChecker: the invariant checker's functional-warming
// mode must keep its shadow state coherent through fast-forward — a
// sampled checked run ends with zero violations and still performs
// detailed-phase checks.
func TestSampledRunUnderChecker(t *testing.T) {
	sched, err := sample.Parse("30K:60K:430K")
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2} {
		ch := Run(Config{
			Workload: workload.Pmake, Window: 4_000_000, Check: true,
			Sample: sched, SimWorkers: workers,
		})
		if n := len(ch.CheckErrors); n > 0 {
			t.Fatalf("workers=%d: checker found %d violations in a sampled run, first: %v",
				workers, n, ch.CheckErrors[0])
		}
		if ch.Sim.Chk.Checks == 0 {
			t.Errorf("workers=%d: no checks performed in the detailed phases", workers)
		}
	}
}

// TestSampleHashIdentity: the canonical hash ignores a zero schedule —
// cached results from before the sampling refactor stay addressable —
// and distinguishes sampled configs from full ones and from each other.
func TestSampleHashIdentity(t *testing.T) {
	base := Config{Workload: workload.Multpgm, Window: 2_000_000, Seed: 5}
	withWorkers := base
	withWorkers.SimWorkers = 2
	if base.Hash() != withWorkers.Hash() {
		t.Error("unsampled config hash unstable across worker counts")
	}
	s1, _ := sample.Parse("10K:20K:100K")
	s2, _ := sample.Parse("10K:20K:200K")
	a, b := base, base
	a.Sample, b.Sample = s1, s2
	if a.Hash() == base.Hash() || a.Hash() == b.Hash() {
		t.Error("sampling schedule not part of the canonical hash")
	}
}
