// Package arch defines the architectural constants and elementary types of
// the simulated machine: a bus-based cache-coherent multiprocessor modeled on
// the Silicon Graphics POWER Station 4D/340 that the paper measures (four
// 33 MHz MIPS R3000 CPUs, physically-addressed direct-mapped caches with
// 16-byte blocks, 32 MB of main memory).
//
// All other packages build on these types; keeping them here avoids import
// cycles between the cache, bus, kernel and simulation packages.
package arch

import "fmt"

// Machine geometry of the SGI 4D/340 as described in Section 2.1 of the
// paper. Sizes are in bytes unless noted.
const (
	// DefaultCPUs is the number of processors in the measured machine.
	DefaultCPUs = 4

	// DefaultWindow is the canonical traced window: 12M cycles ≈ 0.36 s
	// at 33 MHz. Every experiment entry point (core.Run, the Figure 11
	// sweep, the CLI -window flags) falls back to this single value when
	// given a zero window, so a "default" run means the same thing
	// everywhere.
	DefaultWindow Cycles = 12_000_000

	// ClockMHz is the processor clock rate.
	ClockMHz = 33

	// CycleNS is the processor cycle time in nanoseconds (the paper
	// measures Figure 1 in 30 ns processor cycles).
	CycleNS = 30

	// MonitorTickNS is the granularity of the hardware monitor's
	// timestamp counter (60 ns, Section 2.1).
	MonitorTickNS = 60

	// BlockSize is the cache block size. All caches use 16-byte blocks.
	BlockSize = 16

	// BlockShift is log2(BlockSize).
	BlockShift = 4

	// PageSize is the virtual-memory page size.
	PageSize = 4096

	// PageShift is log2(PageSize).
	PageShift = 12

	// ICacheSize is the per-CPU instruction cache size (64 KB).
	ICacheSize = 64 * 1024

	// DCacheL1Size is the per-CPU first-level data cache size (64 KB).
	DCacheL1Size = 64 * 1024

	// DCacheL2Size is the per-CPU second-level data cache size (256 KB).
	DCacheL2Size = 256 * 1024

	// MemBytes is the main-memory size (32 MB).
	MemBytes = 32 * 1024 * 1024

	// MemFrames is the number of physical page frames.
	MemFrames = MemBytes / PageSize

	// TLBEntries is the size of the per-CPU fully-associative TLB.
	TLBEntries = 64

	// MissStallCycles is the estimated CPU stall per bus access
	// (Section 3.1: "each bus access stalls the CPU for 35 cycles").
	MissStallCycles = 35

	// L1MissL2HitCycles is the stall when a data reference misses the
	// first-level cache but hits in the second-level cache ("the CPU
	// could be stalled for about 15 cycles", Section 3.1).
	L1MissL2HitCycles = 15

	// InstrBytes is the size of one instruction (MIPS R3000).
	InstrBytes = 4

	// InstrPerBlock is how many instructions one cache block holds.
	InstrPerBlock = BlockSize / InstrBytes

	// WordBytes is the machine word size.
	WordBytes = 4

	// ClockTickCycles is the period of the OS clock interrupt
	// (10 ms, Section 4.1) expressed in processor cycles.
	ClockTickCycles = 10 * 1000 * 1000 / CycleNS // 10 ms / 30 ns
)

// PAddr is a physical byte address.
type PAddr uint32

// VAddr is a virtual byte address.
type VAddr uint32

// Block returns the physical block address (the address with the offset
// within the cache block cleared).
func (a PAddr) Block() PAddr { return a &^ (BlockSize - 1) }

// Frame returns the physical page frame number.
func (a PAddr) Frame() uint32 { return uint32(a) >> PageShift }

// Offset returns the byte offset within the page.
func (a PAddr) Offset() uint32 { return uint32(a) & (PageSize - 1) }

// Page returns the virtual page number.
func (a VAddr) Page() uint32 { return uint32(a) >> PageShift }

// Offset returns the byte offset within the page.
func (a VAddr) Offset() uint32 { return uint32(a) & (PageSize - 1) }

// FrameAddr returns the physical address of the first byte of frame f.
func FrameAddr(f uint32) PAddr { return PAddr(f << PageShift) }

// Cycles counts processor cycles (30 ns each).
type Cycles int64

// NS converts a cycle count to nanoseconds.
func (c Cycles) NS() int64 { return int64(c) * CycleNS }

// MS converts a cycle count to milliseconds (useful for per-ms rates).
func (c Cycles) MS() float64 { return float64(c.NS()) / 1e6 }

// Compact renders a cycle count in decimal engineering notation — "800K",
// "12M", "2.5M", "1G" — for report headers and benchmark labels where
// "1000000000" would bury the magnitude. Values below 10K (and negatives)
// print as plain digits; suffixes are decimal (1e3/1e6/1e9), matching the
// K/M/G syntax the -window flags accept.
func (c Cycles) Compact() string {
	v := int64(c)
	var unit int64
	var suffix string
	switch {
	case v < 10_000:
		return fmt.Sprintf("%d", v)
	case v < 1_000_000:
		unit, suffix = 1_000, "K"
	case v < 1_000_000_000:
		unit, suffix = 1_000_000, "M"
	default:
		unit, suffix = 1_000_000_000, "G"
	}
	whole := v / unit
	frac := (v % unit) * 100 / unit // two decimal places, truncated
	switch {
	case frac == 0:
		return fmt.Sprintf("%d%s", whole, suffix)
	case frac%10 == 0:
		return fmt.Sprintf("%d.%d%s", whole, frac/10, suffix)
	default:
		return fmt.Sprintf("%d.%02d%s", whole, frac, suffix)
	}
}

// CPUID identifies a processor. CPU 1 runs the network functions in IRIX
// (Section 2.2), a convention the kernel model preserves.
type CPUID int

// Mode distinguishes whose references a CPU is issuing. The monitor's
// postprocessor recovers the mode from escape records; inside the simulator
// it is tracked directly.
type Mode uint8

const (
	// ModeUser means the CPU is executing application code.
	ModeUser Mode = iota
	// ModeKernel means the CPU is executing OS code on behalf of a
	// process or interrupt.
	ModeKernel
	// ModeIdle means the CPU is executing the OS idle loop.
	ModeIdle
)

// String returns the conventional short name of the mode.
func (m Mode) String() string {
	switch m {
	case ModeUser:
		return "user"
	case ModeKernel:
		return "system"
	case ModeIdle:
		return "idle"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// RefKind distinguishes instruction fetches from data reads and writes.
type RefKind uint8

const (
	// RefInstr is an instruction fetch.
	RefInstr RefKind = iota
	// RefRead is a data load.
	RefRead
	// RefWrite is a data store.
	RefWrite
)

// String returns a short name for the reference kind.
func (k RefKind) String() string {
	switch k {
	case RefInstr:
		return "ifetch"
	case RefRead:
		return "read"
	case RefWrite:
		return "write"
	default:
		return fmt.Sprintf("ref(%d)", uint8(k))
	}
}

// PID identifies a process. PID 0 is reserved for "no process" (the idle
// loop and interrupt-only activity).
type PID int32

// NoPID marks the absence of a process.
const NoPID PID = 0
