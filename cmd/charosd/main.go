// Command charosd is the experiment service: an HTTP/JSON server that
// runs deterministic characterization jobs submitted by clients, with
// cooperative cancellation, per-run panic isolation, a progress
// watchdog, bounded admission (429 + Retry-After under saturation), a
// content-addressed result cache with singleflight dedup, and a
// SIGTERM-triggered drain that resolves every accepted job before the
// process exits.
//
// Server mode:
//
//	charosd [-addr :8416] [-workers N] [-queue N] [-job-timeout D]
//	        [-stall-timeout D] [-drain-policy finish|cancel]
//	        [-drain-timeout D] [-retry-after D] [-test-hooks]
//
// Client mode (submit one job and wait):
//
//	charosd -submit [-addr host:port] [-workload Pmake] [-seed N]
//	        [-window N] [-warmup N] [-ncpu N] [-machine 4d340|4d380]
//	        [-check] [-timeout D] [-retries N] [-nowait] [-test-panic]
//
// Submission is idempotent: results are content-addressed by the
// canonical config hash, so a client that was shed (or lost its
// connection) simply resubmits — with capped exponential backoff and
// jitter — and lands on the cached result if the run already happened.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() { os.Exit(run()) }

func run() int {
	addr := flag.String("addr", ":8416", "listen address (server) or server address (with -submit)")
	workers := flag.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "admission-queue depth; beyond it submissions shed with 429")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint advertised on shed")
	jobTimeout := flag.Duration("job-timeout", 0, "default per-job wall-clock cap (0 = none)")
	stallTimeout := flag.Duration("stall-timeout", 10*time.Second,
		"watchdog: kill runs whose simulated-cycle heartbeat stalls this long (<0 disables)")
	drainPolicy := flag.String("drain-policy", "finish",
		"SIGTERM drain policy: finish (run accepted jobs to completion) or cancel")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second,
		"drain hard deadline; past it in-flight runs are force-canceled (still resolved)")
	testHooks := flag.Bool("test-hooks", false, "enable test hooks (test_panic jobs) — never in production")

	submit := flag.Bool("submit", false, "client mode: submit one job and print its report")
	wl := flag.String("workload", "Pmake", "job workload: Pmake, Multpgm, Oracle, OracleStd")
	machine := flag.String("machine", "", "job machine preset: 4d340 (default), 4d380")
	ncpu := flag.Int("ncpu", 0, "job CPU count (0 = preset's count)")
	seed := flag.Int64("seed", 1, "job seed")
	window := flag.Int64("window", 0, "job traced window in cycles (0 = default)")
	warmup := flag.Int64("warmup", 0, "job warmup in cycles (0 = default)")
	checkFlag := flag.Bool("check", false, "run the job under the invariant checker")
	timeout := flag.Duration("timeout", 0, "client: job + wait deadline (0 = none); sent as the job's budget")
	retries := flag.Int("retries", 0, "client: retry budget after shed/transport errors (0 = default 8, negative = none)")
	nowait := flag.Bool("nowait", false, "client: return after admission instead of waiting for the result")
	testPanic := flag.Bool("test-panic", false, "client: submit a job that panics mid-run (server must run -test-hooks)")
	flag.Parse()

	if *submit {
		return clientMain(*addr, service.Request{
			Workload: *wl, Machine: *machine, NCPU: *ncpu, Seed: *seed,
			Window: *window, Warmup: *warmup, Check: *checkFlag,
			TimeoutMS: int64(*timeout / time.Millisecond), TestPanic: *testPanic,
		}, *timeout, *retries, *nowait)
	}

	if *drainPolicy != "finish" && *drainPolicy != "cancel" {
		fmt.Fprintf(os.Stderr, "bad -drain-policy %q (want finish or cancel)\n", *drainPolicy)
		return 2
	}
	logger := log.New(os.Stderr, "charosd: ", log.LstdFlags|log.Lmicroseconds)
	srv := service.New(service.Options{
		Workers: *workers, QueueDepth: *queue, RetryAfter: *retryAfter,
		JobTimeout: *jobTimeout, StallTimeout: *stallTimeout,
		DrainFinish: *drainPolicy == "finish", DrainTimeout: *drainTimeout,
		TestHooks: *testHooks,
		Logf:      logger.Printf,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	logger.Printf("serving on %s (workers=%d queue=%d drain=%s/%s)",
		ln.Addr(), *workers, *queue, *drainPolicy, *drainTimeout)

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	select {
	case got := <-sig:
		logger.Printf("signal %v: draining", got)
		// Keep serving status/wait requests while the drain resolves the
		// accepted jobs, then shut the listener down gracefully.
		srv.Drain()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx)
		logger.Printf("exit")
		return 0
	case err := <-serveErr:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}
}

// clientMain submits one job and renders the outcome. Exit codes: 0 job
// done, 1 job failed/canceled (structured error printed), 2 bad usage,
// 3 could not submit (shed/unreachable after retries).
func clientMain(addr string, req service.Request, timeout time.Duration, retries int, nowait bool) int {
	base := addr
	if len(base) > 0 && base[0] == ':' {
		base = "127.0.0.1" + base
	}
	cl := &service.Client{Base: "http://" + base, Retries: retries}
	ctx := context.Background()
	if timeout > 0 {
		// Leave headroom over the job budget so the structured job error
		// (provenance) reaches us rather than a raw client deadline.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout+30*time.Second)
		defer cancel()
	}
	var st service.JobStatus
	var err error
	if nowait {
		st, err = cl.SubmitAsync(ctx, req)
	} else {
		st, err = cl.Submit(ctx, req)
	}
	if err != nil {
		var remote *service.RemoteError
		if errors.As(err, &remote) && remote.Code == http.StatusBadRequest {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "submit failed: %v\n", err)
		return 3
	}
	if nowait {
		fmt.Printf("accepted %s state=%s hash=%s\n", st.ID, st.State, st.Hash)
		return 0
	}
	switch st.State {
	case service.StateDone:
		fmt.Print(st.Report)
		return 0
	default:
		fmt.Fprintf(os.Stderr, "job %s %s (%s): %s\n", st.ID, st.State, st.ErrorKind, st.Error)
		return 1
	}
}
