// Package cache implements the physically-addressed cache models of the
// simulated machine: single caches of arbitrary size and associativity with
// 16-byte blocks, and the two-level data-cache hierarchy of the 4D/340
// (64 KB first level, 256 KB second level, both direct-mapped).
//
// Caches here are functional models: they track which blocks are resident
// and report hits, misses and evictions. Timing, coherence traffic and miss
// classification are layered on top by the bus, sim and trace packages.
package cache

import (
	"fmt"

	"repro/internal/arch"
)

// Cache is a set-associative, physically-indexed, physically-tagged cache
// with arch.BlockSize-byte blocks. Associativity 1 models the direct-mapped
// caches of the measured machine; higher associativities are used by the
// Figure 6 re-simulations. Replacement is LRU within a set.
type Cache struct {
	name  string
	size  int
	assoc int
	sets  int

	valid []bool
	tag   []arch.PAddr // block address, valid only where valid[i]
	dirty []bool
	lru   []uint64 // per-line last-touch stamp
	clock uint64

	// sharedBit is allocated lazily by SetShared; only coherence-level
	// caches (the data L2) pay for it.
	sharedBit []bool
}

// New returns a cache of the given total size in bytes and associativity.
// size must be a multiple of assoc*arch.BlockSize and the resulting number
// of sets must be a power of two (true for all configurations in the paper).
func New(name string, size, assoc int) *Cache {
	if size <= 0 || assoc <= 0 {
		panic(fmt.Sprintf("cache %s: invalid size %d or assoc %d", name, size, assoc))
	}
	lines := size / arch.BlockSize
	if lines%assoc != 0 {
		panic(fmt.Sprintf("cache %s: %d lines not divisible by assoc %d", name, lines, assoc))
	}
	sets := lines / assoc
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache %s: %d sets is not a power of two", name, sets))
	}
	return &Cache{
		name:  name,
		size:  size,
		assoc: assoc,
		sets:  sets,
		valid: make([]bool, lines),
		tag:   make([]arch.PAddr, lines),
		dirty: make([]bool, lines),
		lru:   make([]uint64, lines),
	}
}

// Name returns the cache's identifying name.
func (c *Cache) Name() string { return c.name }

// Size returns the total capacity in bytes.
func (c *Cache) Size() int { return c.size }

// Assoc returns the associativity.
func (c *Cache) Assoc() int { return c.assoc }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// SetOf returns the set index a physical address maps to.
func (c *Cache) SetOf(a arch.PAddr) int {
	return int(uint32(a)>>arch.BlockShift) & (c.sets - 1)
}

// line index helpers
func (c *Cache) lineIdx(set, way int) int { return set*c.assoc + way }

// Lookup reports whether the block containing a is resident, without
// changing any state.
func (c *Cache) Lookup(a arch.PAddr) bool {
	_, ok := c.find(a)
	return ok
}

func (c *Cache) find(a arch.PAddr) (idx int, ok bool) {
	b := a.Block()
	set := c.SetOf(a)
	for w := 0; w < c.assoc; w++ {
		i := c.lineIdx(set, w)
		if c.valid[i] && c.tag[i] == b {
			return i, true
		}
	}
	return 0, false
}

// Eviction describes a block displaced by a fill.
type Eviction struct {
	Block arch.PAddr
	Dirty bool
}

// Access touches the block containing a. write marks the block dirty.
// It returns hit=true on a hit. On a miss the block is filled and, if a
// valid block was displaced, evicted describes it (ok=false when the set had
// an empty way).
func (c *Cache) Access(a arch.PAddr, write bool) (hit bool, evicted Eviction, ok bool) {
	c.clock++
	if i, found := c.find(a); found {
		c.lru[i] = c.clock
		if write {
			c.dirty[i] = true
		}
		return true, Eviction{}, false
	}
	i, ev, hadEv := c.fill(a)
	if write {
		c.dirty[i] = true
	}
	return false, ev, hadEv
}

// fill installs the block containing a, returning the line index used and
// the eviction, if any.
func (c *Cache) fill(a arch.PAddr) (idx int, evicted Eviction, ok bool) {
	b := a.Block()
	set := c.SetOf(a)
	// Prefer an invalid way.
	victim := -1
	var oldest uint64 = ^uint64(0)
	for w := 0; w < c.assoc; w++ {
		i := c.lineIdx(set, w)
		if !c.valid[i] {
			victim = i
			ok = false
			oldest = 0
			break
		}
		if c.lru[i] < oldest {
			oldest = c.lru[i]
			victim = i
		}
	}
	if c.valid[victim] {
		evicted = Eviction{Block: c.tag[victim], Dirty: c.dirty[victim]}
		ok = true
	}
	c.valid[victim] = true
	c.tag[victim] = b
	c.dirty[victim] = false
	c.lru[victim] = c.clock
	if c.sharedBit != nil {
		c.sharedBit[victim] = false
	}
	return victim, evicted, ok
}

// Peek returns the resident block in the (only) way of the set that a maps
// to for direct-mapped caches; for set-associative caches it returns the
// most-recently-used resident block in the set. ok is false if the relevant
// way is empty. It is used by tests and by the mirror-cache reconstruction.
func (c *Cache) Peek(a arch.PAddr) (block arch.PAddr, ok bool) {
	set := c.SetOf(a)
	var best uint64
	for w := 0; w < c.assoc; w++ {
		i := c.lineIdx(set, w)
		if c.valid[i] && c.lru[i] >= best {
			best = c.lru[i]
			block = c.tag[i]
			ok = true
		}
	}
	return block, ok
}

// Invalidate removes the block containing a if resident, returning whether
// it was resident and whether it was dirty.
func (c *Cache) Invalidate(a arch.PAddr) (wasResident, wasDirty bool) {
	if i, found := c.find(a); found {
		c.valid[i] = false
		return true, c.dirty[i]
	}
	return false, false
}

// InvalidateFrame removes every resident block belonging to physical page
// frame f and returns how many blocks were invalidated. The kernel uses this
// on the instruction caches when a physical page that contained code is
// reallocated (the source of Inval misses, Table 2).
func (c *Cache) InvalidateFrame(frame uint32) int {
	n := 0
	for i := range c.valid {
		if c.valid[i] && c.tag[i].Frame() == frame {
			c.valid[i] = false
			n++
		}
	}
	return n
}

// InvalidateAll empties the cache.
func (c *Cache) InvalidateAll() {
	for i := range c.valid {
		c.valid[i] = false
	}
}

// NumLines returns the total number of lines, valid or not.
func (c *Cache) NumLines() int { return len(c.valid) }

// LineAt returns the block resident in line i (ok=false for an invalid
// line or out-of-range index). The fault injector uses it to pick random
// eviction victims.
func (c *Cache) LineAt(i int) (block arch.PAddr, ok bool) {
	if i < 0 || i >= len(c.valid) || !c.valid[i] {
		return 0, false
	}
	return c.tag[i], true
}

// ResidentBlocks returns the number of valid lines (used by tests and the
// monitor's perturbation accounting).
func (c *Cache) ResidentBlocks() int {
	n := 0
	for _, v := range c.valid {
		if v {
			n++
		}
	}
	return n
}
