package kernel

import (
	"repro/internal/arch"
	"repro/internal/klock"
	"repro/internal/kmem"
	"repro/internal/monitor"
)

// TLB fault handling. Cheap faults (Table 8) copy a translation from the
// process's page table into the TLB — the frequent, nearly miss-free
// spikes of Figure 1 when they are UTLB faults. Expensive faults allocate
// a physical page: demand-zero data, demand paged-in text (shared through
// the text cache), or a copy-on-write update.

// ptPageAddr returns the physical page holding the process's page table
// (one page per process slot, carved out of the kernel heap).
func (k *Kernel) ptPageAddr(pr *Proc) arch.PAddr {
	return k.L.KernelHeap.Base + arch.PAddr(pr.Slot)*arch.PageSize
}

// ptAddr returns the page-table-entry address for a virtual page.
func (k *Kernel) ptAddr(pr *Proc, vpage uint32) arch.PAddr {
	return k.ptPageAddr(pr) + arch.PAddr((vpage%(arch.PageSize/4))*4)
}

// UTLBFault services a cheap user TLB refill: the translation exists in
// the page table and is copied into the TLB. The handler is tiny and its
// code stays cached, so an invocation causes well under one miss on
// average (Section 4.1).
func (k *Kernel) UTLBFault(p Port, pr *Proc, vpage uint32) {
	k.OpCounts[OpCheapTLB]++
	p.Exec(k.rt.utlbmiss)
	// The pte read is protected by the process's Shr_x page-table lock
	// (uncontended in practice: the lock is per-process).
	shr := k.shrLock(pr)
	p.Acquire(shr)
	p.Load(k.ptAddr(pr, vpage), 4)
	p.Release(shr)
	pi := pr.pages[vpage]
	p.TLBInsert(pr.PID, vpage, pi.Frame)
	p.Escape(monitor.EvUTLB, uint32(pr.PID))
}

// IsMapped reports whether the virtual page is mapped (true → a TLB miss
// on it is a cheap UTLB fault; false → expensive fault).
func (k *Kernel) IsMapped(pr *Proc, vpage uint32) bool {
	_, ok := pr.pages[vpage]
	return ok
}

// IsCOW reports whether a store to the page requires a copy-on-write
// fault.
func (k *Kernel) IsCOW(pr *Proc, vpage uint32) bool {
	pi, ok := pr.pages[vpage]
	return ok && pi.COW
}

// PageFault services an expensive TLB fault on an unmapped page (or a
// copy-on-write store). The simulator wraps it in an OS invocation of kind
// OpExpensiveTLB.
func (k *Kernel) PageFault(p Port, pr *Proc, vpage uint32, write bool) {
	p.Exec(k.rt.pt_lookup)
	p.Exec(k.rt.pagein)
	p.Load(k.ptAddr(pr, vpage), 4)

	if pi, ok := pr.pages[vpage]; ok {
		if pi.COW && write {
			// Copy-on-write update: full-page copy (Table 7).
			nfr := k.AllocFrame(p, kmem.FrameData, pr.PID, vpage)
			k.Bcopy(p, arch.FrameAddr(pi.Frame), arch.FrameAddr(nfr),
				arch.PageSize, "copy-on-write page")
			// Drop this process's claim on the original frame,
			// mirroring the ExitProc unmap convention: a Shared
			// frame is released by its last unmapper; a private
			// frame still COW-referenced by a sibling stays live
			// under that sibling's mapping.
			if pi.Shared {
				k.sharedRef[pi.Frame]--
				if k.sharedRef[pi.Frame] <= 0 {
					delete(k.sharedRef, pi.Frame)
					k.FreeFrame(p, pi.Frame)
				}
			}
			pr.pages[vpage] = PageInfo{Frame: nfr}
			// Shoot down stale translations of the shared frame on
			// every CPU (and their micro-TLBs) before mapping the
			// private copy, or a CPU the process ran on earlier
			// could keep storing to the pre-copy frame.
			p.TLBInvalidateFrame(pi.Frame)
			p.Store(k.ptAddr(pr, vpage), 4)
			p.TLBInsert(pr.PID, vpage, nfr)
			return
		}
		// Already mapped (e.g. a shared page faulted in by a peer on
		// this process's behalf): just refill the TLB.
		p.TLBInsert(pr.PID, vpage, pi.Frame)
		return
	}

	isCode := pr.image != nil && vpage >= CodeVBase && vpage < CodeVBase+uint32(pr.image.CodePages)
	isShared := vpage >= SharedVBase

	switch {
	case isCode:
		k.codePageIn(p, pr, vpage)
	case isShared:
		k.sharedFault(p, pr, vpage)
	default:
		// Demand-zero data page (Table 7: full-page clear).
		fr := k.AllocFrame(p, kmem.FrameData, pr.PID, vpage)
		k.Bclear(p, arch.FrameAddr(fr), arch.PageSize, "demand-zero page")
		pr.pages[vpage] = PageInfo{Frame: fr}
	}
	pi := pr.pages[vpage]
	p.Store(k.ptAddr(pr, vpage), 4)
	p.TLBInsert(pr.PID, vpage, pi.Frame)
}

// codePageIn maps one text page, sharing frames through the text cache:
// if the image's page is already in memory (mapped by another process or
// cached from an exited one) it is simply mapped; otherwise a frame is
// allocated and the page read in from the file cache (a full-page copy).
func (k *Kernel) codePageIn(p Port, pr *Proc, vpage uint32) {
	img := pr.image
	idx := int(vpage - CodeVBase)
	cachePages := k.textCache[img.ID]
	if cachePages == nil {
		cachePages = make([]uint32, img.CodePages)
		k.textCache[img.ID] = cachePages
	}
	if fr := cachePages[idx]; fr != 0 && k.F.State(fr) != kmem.StateFree {
		// Shared text hit: reactivate if it was merely cached.
		if k.F.State(fr) == kmem.StateCached {
			k.F.Reactivate(fr)
		}
		pr.pages[vpage] = PageInfo{Frame: fr, Code: true, Shared: true}
		return
	}
	fr := k.AllocFrame(p, kmem.FrameCode, pr.PID, vpage)
	cachePages[idx] = fr
	k.frameText[fr] = [2]int{img.ID, idx}
	// Demand page-in from the file's cached pages.
	src := k.L.BufDataAddr((img.ID*7 + idx) % kmem.NumBufs)
	k.Bcopy(p, src, arch.FrameAddr(fr), arch.PageSize, "demand page-in of text")
	pr.pages[vpage] = PageInfo{Frame: fr, Code: true, Shared: true}
}

// sharedFault maps a shared data page (Mp3d particle arrays, database
// buffer pool): the group leader allocates and zeroes the frame; followers
// map the leader's frame.
func (k *Kernel) sharedFault(p Port, pr *Proc, vpage uint32) {
	if pr.sharedLeader != nil {
		if pi, ok := pr.sharedLeader.pages[vpage]; ok {
			pr.pages[vpage] = PageInfo{Frame: pi.Frame, Shared: true}
			k.sharedRef[pi.Frame]++
			return
		}
		// The leader has not faulted this page yet: allocate it on
		// the leader's behalf so both see the same frame.
		fr := k.AllocFrame(p, kmem.FrameData, pr.sharedLeader.PID, vpage)
		k.Bclear(p, arch.FrameAddr(fr), arch.PageSize, "demand-zero page")
		pr.sharedLeader.pages[vpage] = PageInfo{Frame: fr, Shared: true}
		pr.pages[vpage] = PageInfo{Frame: fr, Shared: true}
		k.sharedRef[fr] += 2
		return
	}
	fr := k.AllocFrame(p, kmem.FrameData, pr.PID, vpage)
	k.Bclear(p, arch.FrameAddr(fr), arch.PageSize, "demand-zero page")
	pr.pages[vpage] = PageInfo{Frame: fr, Shared: true}
	k.sharedRef[fr]++
}

// shrLock returns the process's Shr_x page-table lock.
func (k *Kernel) shrLock(pr *Proc) *klock.Lock {
	return k.Locks.Elem(klock.ShrX, pr.Slot)
}

// LockShr acquires the per-process page-table lock around fault handling
// (the Shr_x family of Table 11).
func (k *Kernel) LockShr(p Port, pr *Proc)   { p.Acquire(k.shrLock(pr)) }
func (k *Kernel) UnlockShr(p Port, pr *Proc) { p.Release(k.shrLock(pr)) }
