package bus

import (
	"math/rand"
	"testing"

	"repro/internal/arch"
)

// presencePool builds a set of block addresses engineered to collide: four
// block offsets per stride, at strides of the L2 size (256 KB) so fills
// evict each other, plus 64 KB strides for L1-only conflicts.
func presencePool() []arch.PAddr {
	var pool []arch.PAddr
	for stride := 0; stride < 6; stride++ {
		base := arch.PAddr(stride * arch.DCacheL2Size)
		for blk := 0; blk < 4; blk++ {
			pool = append(pool, base+arch.PAddr(blk*arch.BlockSize))
		}
	}
	for stride := 1; stride < 4; stride++ {
		pool = append(pool, arch.PAddr(stride*arch.DCacheL1Size))
	}
	return pool
}

// checkPresence asserts the filter invariant: for every pool address and
// every CPU, the presence bit equals brute-force L2 residency, and no bits
// beyond the CPU count are ever set.
func checkPresence(t *testing.T, s *System, pool []arch.PAddr, step int) {
	t.Helper()
	for _, a := range pool {
		m := s.pres.mask(a)
		if extra := m &^ (uint64(1)<<uint(s.N) - 1); extra != 0 {
			t.Fatalf("step %d: addr %#x: presence bits %#x beyond %d CPUs", step, uint64(a), extra, s.N)
		}
		for q := 0; q < s.N; q++ {
			got := m&(1<<uint(q)) != 0
			want := s.D[q].Resident(a)
			if got != want {
				t.Fatalf("step %d: addr %#x cpu %d: presence bit %v, resident %v (mask %#x)",
					step, uint64(a), q, got, want, m)
			}
		}
	}
}

// TestPresenceFilterMatchesResidency is the filter's property test: after
// every operation of a random read/write/DMA/evict stream — under both
// coherence protocols — the per-block CPU mask must agree exactly with a
// brute-force residency scan of every data cache. Runs race-clean so it
// can back the -race tier.
func TestPresenceFilterMatchesResidency(t *testing.T) {
	pool := presencePool()
	for _, proto := range []Protocol{WriteInvalidate, WriteUpdate} {
		s := NewSystem(testMachine(4), nil)
		s.Proto = proto
		if s.pres == nil {
			t.Fatal("presence filter not allocated in fast mode")
		}
		rng := rand.New(rand.NewSource(1992))
		now := arch.Cycles(0)
		for step := 0; step < 4000; step++ {
			c := arch.CPUID(rng.Intn(s.N))
			a := pool[rng.Intn(len(pool))]
			switch op := rng.Intn(10); {
			case op < 4:
				s.Read(c, a, now)
			case op < 8:
				s.Write(c, a, now)
			case op < 9:
				// DMA: invalidates every cached copy, own CPU included.
				s.Bypass(c, a, 1+rng.Intn(3), rng.Intn(2) == 0, now)
			default:
				s.InjectEvict(c, a, now)
			}
			now += arch.Cycles(1 + rng.Intn(50))
			checkPresence(t, s, pool, step)
		}
	}
}

// TestPresenceFilterReferenceModeDisabled pins the oracle contract: in
// reference mode the filter is gone and the full snoop loops run, yet
// coherence outcomes match the fast path (covered end-to-end by the
// report-identity test; here we just pin the filter's absence).
func TestPresenceFilterReferenceModeDisabled(t *testing.T) {
	s := NewSystem(testMachine(2), nil)
	s.SetReference(true)
	if s.pres != nil {
		t.Fatal("presence filter should be nil in reference mode")
	}
	a := arch.PAddr(0x4000)
	s.Read(0, a, 0)
	s.Read(1, a, 1)
	if !s.D[0].L2.Shared(a) || !s.D[1].L2.Shared(a) {
		t.Error("reference-mode snoop loop failed to mark copies Shared")
	}
	s.SetReference(false)
	if s.pres == nil {
		t.Fatal("presence filter should be restored when leaving reference mode")
	}
}

// TestInvalidateCodeFrameCounts covers the return-count contract: the
// machine has no selective I-cache invalidation, so a code-frame reclaim
// flushes every CPU's whole I-cache and reports the total resident blocks
// — now read from the O(1) maintained counter, not a line scan. Empty
// caches report zero, and a second flush reports zero again.
func TestInvalidateCodeFrameCounts(t *testing.T) {
	s := NewSystem(testMachine(2), nil)
	if n := s.InvalidateCodeFrame(3); n != 0 {
		t.Fatalf("flush of empty caches reported %d blocks, want 0", n)
	}
	// CPU 0 caches three blocks of frame 3, CPU 1 caches one of them plus
	// one block of frame 5 — the full flush counts all five.
	base := arch.PAddr(3) << arch.PageShift
	s.Fetch(0, base, 0)
	s.Fetch(0, base+arch.BlockSize, 1)
	s.Fetch(0, base+2*arch.BlockSize, 2)
	s.Fetch(1, base, 3)
	other := arch.PAddr(5) << arch.PageShift
	s.Fetch(1, other, 4)
	if n := s.InvalidateCodeFrame(3); n != 5 {
		t.Fatalf("flush reported %d blocks, want 5 (3+1 on cpu0/1 of frame 3, plus 1 of frame 5)", n)
	}
	if n := s.InvalidateCodeFrame(3); n != 0 {
		t.Fatalf("second flush reported %d blocks, want 0", n)
	}
	if s.I[1].Lookup(other) {
		t.Error("full I-cache flush must not spare other frames' blocks")
	}
	if out := s.Fetch(0, base, 5); !out.Missed {
		t.Error("fetch after the flush should miss")
	}
}

// TestWritePingPongNoAllocs guards the coherence hot path: once the
// presence filter's lazily-allocated pages exist, reads, upgrade writes
// and the invalidation snoops they trigger must not allocate.
func TestWritePingPongNoAllocs(t *testing.T) {
	s := NewSystem(testMachine(2), nil)
	a := arch.PAddr(0x8000)
	b := arch.PAddr(0x8000 + arch.DCacheL2Size) // evicts a's line
	// Warm up: fault in the presence pages and shared-bit arrays.
	s.Read(0, a, 0)
	s.Read(1, a, 1)
	s.Write(0, a, 2)
	s.Write(1, a, 3)
	s.Read(0, b, 4)
	now := arch.Cycles(5)
	avg := testing.AllocsPerRun(200, func() {
		s.Write(0, a, now)
		s.Write(1, a, now+1)
		s.Read(0, a, now+2)
		s.Read(1, b, now+3) // L2 conflict eviction: presence clear+set
		now += 4
	})
	if avg != 0 {
		t.Errorf("coherence ping-pong allocates %.1f times per round, want 0", avg)
	}
}
