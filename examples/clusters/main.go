// Clusters study: the paper's Section 6 asks what its results imply for
// large cluster-based shared-memory machines (DASH, Paradigm, Gigamax).
// This example runs Multpgm on an 8-CPU machine, then reprices the
// monitored miss stream on a 4-cluster machine under the paper's proposed
// optimizations: replicating the OS text per cluster, distributing the run
// queue, and localizing block transfers.
//
//	go run ./examples/clusters
package main

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	ch := core.Run(core.Config{
		Workload: workload.Multpgm,
		NCPU:     8,
		Window:   8_000_000,
		Seed:     1,
		Buffered: true, // the cluster repricer replays the materialized trace
	})
	trace := ch.Sim.Mon.Trace()
	fmt.Printf("Multpgm on 8 CPUs: %d monitored transactions\n\n", len(trace))

	results := cluster.Study(trace, ch.Sim.K.L, 8, 2)
	fmt.Print(cluster.Render(results, "Multpgm, 4 clusters of 2"))

	fmt.Printf("\n→ §6's predictions, quantified on our trace:\n")
	fmt.Printf("  • replicating the OS image makes every kernel-text fetch local\n")
	fmt.Printf("    (the paper: 'instruction misses are serviced locally and\n")
	fmt.Printf("    therefore cache miss penalties are low');\n")
	fmt.Printf("  • distributing the run queue keeps migrating per-process state\n")
	fmt.Printf("    (kernel stacks, user structures, process table) intra-cluster;\n")
	fmt.Printf("  • allocating block-transfer pages locally removes the rest of\n")
	fmt.Printf("    the inter-cluster traffic the three miss sources generate.\n")
}
