package service

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/report"
)

// TestWatchdogSurvivesFastForward: the liveness watchdog polls the run's
// simulated-cycle heartbeat, and a sampled job spends most of its window
// fast-forwarding — so the heartbeat must keep advancing through the
// functional-warming phase, not just the detailed intervals. The schedule
// below keeps 97% of a 12M-cycle window in fast-forward while the stall
// timeout is far below the job's total wall-clock; if fast-forward ever
// stopped publishing progress, the watchdog would cancel the run as
// stalled instead of letting it finish.
func TestWatchdogSurvivesFastForward(t *testing.T) {
	srv, cl := newTestServer(t, Options{
		Workers: 1, StallTimeout: 100 * time.Millisecond, WatchdogPoll: 10 * time.Millisecond,
	})
	req := Request{Workload: "Pmake", Seed: 7, Window: 12_000_000, Sample: "20K:40K:2M"}
	st, err := cl.Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("sampled long-warmup job ended state=%s kind=%s err=%q — heartbeat stalled during fast-forward?",
			st.State, st.ErrorKind, st.Error)
	}
	if got := srv.Stats(); got.Canceled != 0 || got.Completed != 1 {
		t.Errorf("stats %+v, want 1 completed and 0 canceled", got)
	}
}

// TestSampledJobIdentityAndCache: a sampled job renders exactly what a
// serial core.Run of the same config renders, and the schedule is part of
// the cache identity — the sampled and full runs of one config must not
// collide in the content-addressed store.
func TestSampledJobIdentityAndCache(t *testing.T) {
	req := smallReq(53)
	req.Sample = "10K:20K:100K"
	cfg, err := req.Config()
	if err != nil {
		t.Fatal(err)
	}
	want := report.Single(core.Run(cfg))

	_, cl := newTestServer(t, Options{Workers: 2})
	ctx := context.Background()
	st, err := cl.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("sampled job ended %s (%s): %s", st.State, st.ErrorKind, st.Error)
	}
	if st.Report != want {
		t.Errorf("sampled service report diverged from serial run:\n--- serial\n%s\n--- service\n%s", want, st.Report)
	}

	full, err := cl.Submit(ctx, smallReq(53))
	if err != nil || full.State != StateDone {
		t.Fatalf("full-detail job: st=%+v err=%v", full, err)
	}
	if full.Hash == st.Hash {
		t.Error("sampled and full runs share a cache identity")
	}
	if full.Report == st.Report {
		t.Error("sampled report should carry error bars the full report lacks")
	}
}

// TestBadSampleScheduleRejected: a malformed schedule fails validation at
// admission, before any work is queued.
func TestBadSampleScheduleRejected(t *testing.T) {
	srv, _ := newTestServer(t, Options{Workers: 1})
	bad := smallReq(1)
	bad.Sample = "100K:200K" // missing the period field
	if _, err := srv.Submit(bad); err == nil {
		t.Error("malformed sampling schedule admitted")
	}
	bad.Sample = "300K:200K:400K" // period < warmup+len
	if _, err := srv.Submit(bad); err == nil {
		t.Error("unsatisfiable sampling schedule admitted")
	}
}
