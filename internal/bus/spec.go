package bus

import (
	"math/bits"

	"repro/internal/arch"
	"repro/internal/cache"
)

// This file is the bus half of the conservative parallel engine (see
// internal/sim/parallel.go for the scheduler half).
//
// During a speculation phase each CPU runs privately on a worker
// goroutine: cache fills and evictions apply to its own hierarchy in
// place (undo-logged in a cache.Journal), while everything bus-visible —
// statistics, recorded transactions, presence-filter updates, snoops of
// remote caches — is deferred into an op log. The only shared state a
// speculating CPU consults is the presence filter, read-only, to predict
// whether a fill will be Shared; the prediction is validated against the
// live filter when the op replays in serial commit order, and a
// mispredicted step is rolled back and re-run serially.
//
// Speculation requires the fast path: direct-mapped caches, presence
// filter active, no checker, no jitter. The sim layer gates on that.

// specKind identifies a deferred bus operation.
type specKind uint8

const (
	// specFetch is an instruction-cache miss: a Read transaction.
	specFetch specKind = iota
	// specRead is a data read miss: Read (+WriteBack), snoops, with a
	// predicted Shared state to validate.
	specRead
	// specWriteInv is a write miss under write-invalidate: ReadEx
	// (+WriteBack) and remote invalidation. Nothing to validate — the
	// remote set is computed live at replay, exactly as serially.
	specWriteInv
	// specWriteUpd is a write miss under write-update: Update-or-Read
	// (+WriteBack) depending on the predicted Shared state.
	specWriteUpd
	// specUpgrade is a write hit on a Shared line under write-invalidate:
	// Upgrade and remote invalidation. The Shared state came from the
	// CPU's own cache, which unconsumed speculation keeps serially
	// consistent, so there is nothing to validate.
	specUpgrade
	// specUpdateHit is a write hit on a Shared line under write-update:
	// an Update broadcast refreshing remote copies.
	specUpdateHit
)

// SpecOp is one deferred bus operation.
type SpecOp struct {
	Kind  specKind
	WB    bool // the L2 fill displaced a dirty block
	HadEv bool // the L2 fill displaced a valid block
	// PredShared is the Shared prediction for specRead/specWriteUpd.
	PredShared bool
	Addr       arch.PAddr // block address
	Evict      arch.PAddr // displaced block (valid when HadEv)
	Now        arch.Cycles
}

// accSpan records the first and last speculated step (by index) that
// depended on a block.
type accSpan struct {
	first, last int32
}

// Spec is one CPU's speculation context: the op log, the cache undo
// journal, and the dependence set. The sim layer owns its lifecycle.
type Spec struct {
	sys *System
	cpu arch.CPUID
	own uint64

	Ops []SpecOp
	J   cache.Journal

	// acc is the dependence set: every block whose cache state the
	// speculation observed (probes, hits and misses alike) or displaced
	// (journaled victims), with the step span that touched it. A
	// committed remote operation on a block outside this set cannot
	// affect the speculation; one inside it truncates from the first
	// dependent unconsumed step.
	acc    map[arch.PAddr]accSpan
	accLog []arch.PAddr
	step   int32
}

// NewSpec builds a speculation context for CPU c.
func NewSpec(s *System, c arch.CPUID) *Spec {
	sp := &Spec{sys: s, cpu: c, own: 1 << uint(c), acc: make(map[arch.PAddr]accSpan)}
	sp.J.Dep = sp.note
	return sp
}

// BeginStep tags subsequent dependence-set entries with the step index.
func (sp *Spec) BeginStep(k int) { sp.step = int32(k) }

// note adds a block to the dependence set.
func (sp *Spec) note(a arch.PAddr) {
	if span, ok := sp.acc[a]; ok {
		span.last = sp.step
		sp.acc[a] = span
		return
	}
	sp.acc[a] = accSpan{first: sp.step, last: sp.step}
	sp.accLog = append(sp.accLog, a)
}

// Touched reports whether a committed operation on block a conflicts with
// any unconsumed step (>= cursor), and if so the earliest step index to
// truncate from. A block whose accesses were all consumed already is no
// conflict. After a truncation the recorded last access may overstate the
// surviving span; that errs toward truncating, never toward keeping a
// stale step.
func (sp *Spec) Touched(a arch.PAddr, cursor int) (from int, ok bool) {
	span, hit := sp.acc[a]
	if !hit || int(span.last) < cursor {
		return 0, false
	}
	from = int(span.first)
	if from < cursor {
		from = cursor
	}
	return from, true
}

// TruncAccess drops dependence-set entries first recorded at step k or
// later (their steps were truncated). Entries are appended in
// nondecreasing first-step order, so they pop off the tail.
func (sp *Spec) TruncAccess(k int) {
	for n := len(sp.accLog); n > 0; n-- {
		a := sp.accLog[n-1]
		if int(sp.acc[a].first) < k {
			sp.accLog = sp.accLog[:n]
			return
		}
		delete(sp.acc, a)
	}
	sp.accLog = sp.accLog[:0]
}

// Mark checkpoints the op log and journal positions.
func (sp *Spec) Mark() (ops, journal int) {
	return len(sp.Ops), sp.J.Len()
}

// TruncateTo rolls the caches back to a checkpoint and drops the ops
// deferred after it.
func (sp *Spec) TruncateTo(ops, journal int) {
	sp.J.TruncateTo(journal)
	sp.Ops = sp.Ops[:ops]
}

// Reset drops all speculative state without rolling back (the ops all
// committed, or the run is being abandoned).
func (sp *Spec) Reset() {
	sp.Ops = sp.Ops[:0]
	sp.J.Reset()
	clear(sp.acc)
	sp.accLog = sp.accLog[:0]
	sp.step = 0
}

// Fetch is the speculative counterpart of System.Fetch: private I-cache
// effects apply journaled, the bus transaction is deferred.
func (sp *Spec) Fetch(a arch.PAddr, now arch.Cycles) Outcome {
	s := sp.sys
	ic := s.I[sp.cpu]
	sp.note(a.Block())
	if ic.ReadHit(a) {
		return Outcome{}
	}
	sp.J.SaveI(ic, a)
	if hit, _, _ := ic.Access(a, false); hit {
		return Outcome{}
	}
	sp.Ops = append(sp.Ops, SpecOp{Kind: specFetch, Addr: a.Block(), Now: now})
	return Outcome{Missed: true, Stall: s.missStall}
}

// Read is the speculative counterpart of System.Read.
func (sp *Spec) Read(a arch.PAddr, now arch.Cycles) Outcome {
	s := sp.sys
	d := s.D[sp.cpu]
	sp.note(a.Block())
	if d.ReadHitL1(a) {
		return Outcome{}
	}
	sp.J.SaveData(d, a)
	res := d.Access(a, false)
	switch res.Result {
	case cache.DataL1Hit:
		return Outcome{}
	case cache.DataL2Hit:
		return Outcome{L2Hit: true, Stall: s.l2Stall}
	}
	// Miss: predict the Shared state from the (frozen) presence filter.
	// The own SetShared applies now — it is private state; replay
	// validates the prediction before committing the transaction.
	shared := s.pres.mask(a)&^sp.own != 0
	d.L2.SetShared(a, shared)
	sp.Ops = append(sp.Ops, SpecOp{
		Kind: specRead, Addr: a.Block(), Now: now,
		Evict: res.L2Evicted.Block, HadEv: res.L2HadEv, WB: res.WriteBack,
		PredShared: shared,
	})
	return Outcome{Missed: true, Stall: s.missStall}
}

// Write is the speculative counterpart of System.Write.
func (sp *Spec) Write(a arch.PAddr, now arch.Cycles) Outcome {
	s := sp.sys
	d := s.D[sp.cpu]
	sp.note(a.Block())
	sp.J.SaveData(d, a)
	res := d.Access(a, true)
	switch res.Result {
	case cache.DataL1Hit, cache.DataL2Hit:
		out := Outcome{L2Hit: res.Result == cache.DataL2Hit}
		if out.L2Hit {
			out.Stall = s.l2Stall
		}
		if res.WasShared {
			if s.Proto == WriteUpdate {
				d.L2.SetShared(a, true)
				d.L2.Clean(a)
				sp.Ops = append(sp.Ops, SpecOp{Kind: specUpdateHit, Addr: a.Block(), Now: now})
			} else {
				d.L2.SetShared(a, false)
				sp.Ops = append(sp.Ops, SpecOp{Kind: specUpgrade, Addr: a.Block(), Now: now})
			}
			out.Upgraded = true
			out.Stall += s.missStall
		}
		return out
	}
	// Write miss.
	if s.Proto == WriteUpdate {
		shared := s.pres.mask(a)&^sp.own != 0
		d.L2.SetShared(a, shared)
		if shared {
			d.L2.Clean(a)
		}
		sp.Ops = append(sp.Ops, SpecOp{
			Kind: specWriteUpd, Addr: a.Block(), Now: now,
			Evict: res.L2Evicted.Block, HadEv: res.L2HadEv, WB: res.WriteBack,
			PredShared: shared,
		})
		return Outcome{Missed: true, Stall: s.missStall}
	}
	d.L2.SetShared(a, false)
	sp.Ops = append(sp.Ops, SpecOp{
		Kind: specWriteInv, Addr: a.Block(), Now: now,
		Evict: res.L2Evicted.Block, HadEv: res.L2HadEv, WB: res.WriteBack,
	})
	return Outcome{Missed: true, Stall: s.missStall}
}

// touch notifies the parallel engine that block a in CPU q's caches is
// about to be modified by another CPU's bus activity; the engine discards
// q's unconsumed speculation from its first step that depends on a, so
// speculative state never mixes with serially-earlier committed state.
// Operations on blocks the speculation never observed leave it intact.
func (s *System) touch(q arch.CPUID, a arch.PAddr) {
	if s.OnTouch != nil {
		s.OnTouch(q, a)
	}
}

// touchAll is touch for operations without a single block address (whole
// I-cache flushes): q's entire unconsumed speculation is discarded.
func (s *System) touchAll(q arch.CPUID) {
	if s.OnTouchAll != nil {
		s.OnTouchAll(q)
	}
}

// ReplayOps validates and applies one speculated step's deferred ops in
// serial order. It returns false — applying nothing — if any Shared
// prediction no longer matches the live presence filter; the caller then
// rolls the step back and re-runs it serially.
func (s *System) ReplayOps(c arch.CPUID, ops []SpecOp) bool {
	own := uint64(1) << uint(c)
	// Pass 1: validate every prediction against the live filter, with an
	// overlay for the remote-bit clears that earlier ops of this same
	// step will perform once applied.
	var clearedAddr []arch.PAddr
	var clearedMask []uint64
	clearedOf := func(a arch.PAddr) uint64 {
		for i := range clearedAddr {
			if clearedAddr[i] == a {
				return clearedMask[i]
			}
		}
		return 0
	}
	for i := range ops {
		op := &ops[i]
		switch op.Kind {
		case specRead, specWriteUpd:
			m := s.pres.mask(op.Addr) &^ clearedOf(op.Addr) &^ own
			if (m != 0) != op.PredShared {
				return false
			}
		case specWriteInv, specUpgrade:
			m := s.pres.mask(op.Addr) &^ own
			if m != 0 {
				clearedAddr = append(clearedAddr, op.Addr)
				clearedMask = append(clearedMask, m)
			}
		}
	}
	// Pass 2: apply, in exactly the serial engine's order per op.
	for i := range ops {
		s.applyOp(c, &ops[i])
	}
	return true
}

func (s *System) applyOp(c arch.CPUID, op *SpecOp) {
	switch op.Kind {
	case specFetch:
		s.Stats.Reads++
		s.record(Txn{Ticks: TicksOf(op.Now), Addr: op.Addr, CPU: c, Kind: TxnRead})
	case specRead:
		s.Stats.Reads++
		s.record(Txn{Ticks: TicksOf(op.Now), Addr: op.Addr, CPU: c, Kind: TxnRead})
		if op.WB {
			s.Stats.WriteBacks++
			s.record(Txn{Ticks: TicksOf(op.Now), Addr: op.Evict, CPU: c, Kind: TxnWriteBack})
		}
		if op.HadEv {
			s.pres.clear(op.Evict, c)
		}
		s.pres.set(op.Addr, c)
		m := s.pres.mask(op.Addr) &^ (1 << uint(c))
		for mm := m; mm != 0; mm &= mm - 1 {
			q := arch.CPUID(bits.TrailingZeros64(mm))
			s.touch(q, op.Addr)
			s.D[q].L2.SnoopRead(op.Addr)
		}
		// The own SetShared applied at spec time; pass 1 proved the
		// predicted value still holds.
	case specWriteInv:
		if op.HadEv {
			s.pres.clear(op.Evict, c)
		}
		s.pres.set(op.Addr, c)
		s.Stats.ReadExs++
		s.record(Txn{Ticks: TicksOf(op.Now), Addr: op.Addr, CPU: c, Kind: TxnReadEx})
		if op.WB {
			s.Stats.WriteBacks++
			s.record(Txn{Ticks: TicksOf(op.Now), Addr: op.Evict, CPU: c, Kind: TxnWriteBack})
		}
		s.invalidateRemote(c, op.Addr)
	case specWriteUpd:
		if op.HadEv {
			s.pres.clear(op.Evict, c)
		}
		s.pres.set(op.Addr, c)
		m := s.pres.mask(op.Addr) &^ (1 << uint(c))
		for mm := m; mm != 0; mm &= mm - 1 {
			q := arch.CPUID(bits.TrailingZeros64(mm))
			s.touch(q, op.Addr)
			s.D[q].L2.SnoopRead(op.Addr)
		}
		if m != 0 {
			s.Stats.Updates++
			s.record(Txn{Ticks: TicksOf(op.Now), Addr: op.Addr, CPU: c, Kind: TxnUpdate})
		} else {
			s.Stats.Reads++
			s.record(Txn{Ticks: TicksOf(op.Now), Addr: op.Addr, CPU: c, Kind: TxnRead})
		}
		if op.WB {
			s.Stats.WriteBacks++
			s.record(Txn{Ticks: TicksOf(op.Now), Addr: op.Evict, CPU: c, Kind: TxnWriteBack})
		}
	case specUpgrade:
		s.Stats.Upgrades++
		s.record(Txn{Ticks: TicksOf(op.Now), Addr: op.Addr, CPU: c, Kind: TxnUpgrade})
		s.invalidateRemote(c, op.Addr)
	case specUpdateHit:
		s.Stats.Updates++
		s.record(Txn{Ticks: TicksOf(op.Now), Addr: op.Addr, CPU: c, Kind: TxnUpdate})
	}
}
