package cache

import "repro/internal/arch"

// DataHierarchy models the two-level data cache of one CPU: a 64 KB
// first-level and a 256 KB second-level cache, both direct-mapped with
// 16-byte blocks, maintaining inclusion (every L1 block is also in L2).
//
// Only L2 misses reach the bus and are therefore visible to the hardware
// monitor; an L1 miss that hits in L2 stalls the CPU for about 15 cycles
// without a bus transaction — the blind spot Section 3.1 discusses.
type DataHierarchy struct {
	L1 *Cache
	L2 *Cache

	// dm is true when both levels are direct-mapped and the generic
	// oracle path is not forced: Access may then use the combined
	// single-index fast path below.
	dm bool
}

// NewDataHierarchy builds the data hierarchy of machine m (the 4D/340's
// 64 KB + 256 KB direct-mapped pair on the default machine). The combined
// direct-mapped fast path engages whenever both levels have a single way.
func NewDataHierarchy(name string, m arch.Machine) *DataHierarchy {
	h := &DataHierarchy{
		L1: New(name+".L1", m.DCacheL1Size, m.DCacheL1Assoc),
		L2: New(name+".L2", m.DCacheL2Size, m.DCacheL2Assoc),
	}
	h.dm = h.L1.assoc == 1 && h.L2.assoc == 1
	return h
}

// SetGeneric forces both levels onto the generic access path and disables
// the combined fast path (the -reference oracle). Call before any traffic.
func (h *DataHierarchy) SetGeneric(g bool) {
	h.L1.SetGeneric(g)
	h.L2.SetGeneric(g)
	h.dm = !g && h.L1.assoc == 1 && h.L2.assoc == 1
}

// DataResult reports where a data reference was satisfied.
type DataResult uint8

const (
	// DataL1Hit means the reference hit in the first-level cache.
	DataL1Hit DataResult = iota
	// DataL2Hit means it missed L1 but hit L2 (≈15-cycle stall, no bus).
	DataL2Hit
	// DataMiss means it missed both levels (bus transaction, ≈35 cycles).
	DataMiss
)

// String returns a short name for the result.
func (r DataResult) String() string {
	switch r {
	case DataL1Hit:
		return "l1hit"
	case DataL2Hit:
		return "l2hit"
	default:
		return "miss"
	}
}

// DataAccess is the outcome of one data reference through the hierarchy.
type DataAccess struct {
	Result DataResult
	// L2Evicted is set when an L2 fill displaced a valid block; the
	// displaced block is also removed from L1 to preserve inclusion.
	L2Evicted Eviction
	L2HadEv   bool
	// WriteBack is true when the displaced L2 block was dirty and must
	// be written back on the bus.
	WriteBack bool
	// WasShared reports, for a write, whether the L2 copy was in the
	// coherence Shared state immediately before the access (false on a
	// miss — a non-resident line is never Shared). The bus uses it for
	// the upgrade/update decision without a second L2 lookup.
	WasShared bool
}

// ReadHitL1 reports whether a data load hits the first-level cache on the
// direct-mapped fast path, touching no state (a direct-mapped read hit has
// no side effects). It always returns false when the generic oracle path
// is in force: callers then fall through to the full Access path. Small by
// design so it inlines into the bus hot paths.
func (h *DataHierarchy) ReadHitL1(a arch.PAddr) bool {
	l1 := h.L1
	i := int(uint32(a)>>arch.BlockShift) & (l1.sets - 1)
	return h.dm && l1.valid[i] && l1.tag[i] == a.Block()
}

// Access performs a data load or store at physical address a, reporting the
// level of the hit and carrying L2 eviction/write-back information so the
// bus can emit write-back transactions.
func (h *DataHierarchy) Access(a arch.PAddr, write bool) DataAccess {
	if h.dm {
		return h.accessDM(a, write)
	}
	// Observe the coherence Shared state before the access can change the
	// line (write hits never touch the shared bit, so this equals the
	// pre-access state on every hit path; misses report false).
	wasShared := false
	if write {
		wasShared = h.L2.Shared(a)
	}
	if hit, _, _ := h.L1.Access(a, write); hit {
		// Keep the L2 copy's dirtiness in sync so write-backs are not
		// lost when the L1 copy is silently displaced later.
		if write {
			h.l2MarkDirty(a)
		}
		return DataAccess{Result: DataL1Hit, WasShared: wasShared}
	}
	// L1 missed and was filled by the probe above. Probe L2.
	hit, ev2, had2 := h.L2.Access(a, write)
	if hit {
		return DataAccess{Result: DataL2Hit, WasShared: wasShared}
	}
	res := DataAccess{Result: DataMiss}
	if had2 {
		res.L2Evicted = ev2
		res.L2HadEv = true
		res.WriteBack = ev2.Dirty
		// Inclusion: the block displaced from L2 must leave L1.
		h.L1.Invalidate(ev2.Block)
	}
	return res
}

// accessDM is the direct-mapped specialization of Access: the block and
// both set indices are computed once, and the L1 fill, L2 probe and L2
// fill/eviction are inlined with the resident counters maintained in
// place. It is state-for-state identical to the generic path (LRU stamps
// and the access clock are unobservable with a single way).
func (h *DataHierarchy) accessDM(a arch.PAddr, write bool) DataAccess {
	b := a.Block()
	l1, l2 := h.L1, h.L2
	bi := int(uint32(a) >> arch.BlockShift)
	i1 := bi & (l1.sets - 1)
	i2 := bi & (l2.sets - 1)
	if l1.valid[i1] && l1.tag[i1] == b {
		if write {
			l1.dirty[i1] = true
			// Keep the L2 copy's dirtiness in sync so write-backs are
			// not lost when the L1 copy is silently displaced later.
			// The shared bit is read before the dirty update, but the
			// update never touches it, so this is the pre-access state.
			if l2.valid[i2] && l2.tag[i2] == b {
				l2.dirty[i2] = true
				if l2.sharedBit != nil && l2.sharedBit[i2] {
					return DataAccess{Result: DataL1Hit, WasShared: true}
				}
			}
		}
		return DataAccess{Result: DataL1Hit}
	}
	// L1 miss: install the block (the displaced copy needs no write-back;
	// L2 carries the dirtiness).
	if l1.valid[i1] {
		l1.frameDec(l1.tag[i1].Frame())
	} else {
		l1.valid[i1] = true
		l1.residents++
	}
	l1.frameInc(b.Frame())
	l1.tag[i1] = b
	l1.dirty[i1] = write
	if l1.sharedBit != nil {
		l1.sharedBit[i1] = false
	}
	// Probe L2.
	if l2.valid[i2] && l2.tag[i2] == b {
		if write {
			l2.dirty[i2] = true
			if l2.sharedBit != nil && l2.sharedBit[i2] {
				return DataAccess{Result: DataL2Hit, WasShared: true}
			}
		}
		return DataAccess{Result: DataL2Hit}
	}
	res := DataAccess{Result: DataMiss}
	if l2.valid[i2] {
		ev := Eviction{Block: l2.tag[i2], Dirty: l2.dirty[i2]}
		res.L2Evicted = ev
		res.L2HadEv = true
		res.WriteBack = ev.Dirty
		l2.frameDec(ev.Block.Frame())
		// Inclusion: the block displaced from L2 must leave L1.
		l1.Invalidate(ev.Block)
	} else {
		l2.valid[i2] = true
		l2.residents++
	}
	l2.frameInc(b.Frame())
	l2.tag[i2] = b
	l2.dirty[i2] = write
	if l2.sharedBit != nil {
		l2.sharedBit[i2] = false
	}
	return res
}

// l2MarkDirty marks the L2 copy of a dirty if resident.
func (h *DataHierarchy) l2MarkDirty(a arch.PAddr) {
	if h.L2.Lookup(a) {
		h.L2.Access(a, true) // write hit: marks dirty, keeps residency
	}
}

// Invalidate removes the block containing a from both levels (snooping
// coherence on a remote write). It reports whether the L2 copy was resident
// and whether it was dirty (requiring a flush in a real machine).
func (h *DataHierarchy) Invalidate(a arch.PAddr) (wasResident, wasDirty bool) {
	h.L1.Invalidate(a)
	return h.L2.Invalidate(a)
}

// Resident reports whether the block is resident at the L2 (coherence)
// level.
func (h *DataHierarchy) Resident(a arch.PAddr) bool { return h.L2.Lookup(a) }

// InvalidateAll empties both levels.
func (h *DataHierarchy) InvalidateAll() {
	h.L1.InvalidateAll()
	h.L2.InvalidateAll()
}

// StateHash folds both levels' contents into a running fingerprint (see
// Cache.StateHash).
func (h *DataHierarchy) StateHash(v uint64) uint64 {
	return h.L2.StateHash(h.L1.StateHash(v))
}
