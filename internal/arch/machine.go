// Machine is the runtime machine model: everything about the simulated
// hardware that is configuration rather than ISA. The package-level
// constants describe the measured 4D/340; Machine carries the same
// quantities as fields so a single binary can sweep geometries (cache
// sizes, memory size, CPU count) without recompiling. Block size and page
// size stay ISA-level constants — the address-arithmetic fast paths
// (PAddr.Block, PAddr.Frame, the direct-mapped index computation) depend
// on them being compile-time values.
package arch

import "fmt"

// ReservedFrames is the number of physical page frames the kernel reserves
// for its own image and static structures on the default machine; the
// remaining frames are pageable. kmem computes the actual reservation from
// the Machine (growing it if a large I-cache inflates the kernel text), but
// starts from this floor so the default layout is bit-for-bit the
// historical one.
const ReservedFrames = 1600

// Machine describes one simulated hardware configuration. The zero value
// is not valid; start from Default() and override fields, then Validate.
// All fields are scalars, so Machine is comparable — a zero-valued
// Config.Machine is detected with m == (Machine{}).
type Machine struct {
	// NCPU is the number of processors.
	NCPU int

	// ClockMHz is the processor clock rate. Cycle-time conversions
	// (Cycles.NS) remain fixed at the default machine's 30 ns cycle;
	// ClockMHz is carried for report headers and derived figures.
	ClockMHz int

	// ICacheSize and ICacheAssoc describe the per-CPU instruction cache.
	ICacheSize  int
	ICacheAssoc int

	// DCacheL1Size/Assoc describe the per-CPU first-level data cache.
	DCacheL1Size  int
	DCacheL1Assoc int

	// DCacheL2Size/Assoc describe the per-CPU second-level (coherence
	// level) data cache.
	DCacheL2Size  int
	DCacheL2Assoc int

	// MemBytes is the main-memory size; it must be a whole number of
	// pages and large enough to hold the kernel's reserved frames.
	MemBytes int

	// TLBEntries is the size of the per-CPU fully-associative TLB.
	TLBEntries int

	// MissStallCycles is the CPU stall per bus access.
	MissStallCycles Cycles

	// L1MissL2HitCycles is the stall when a data reference misses the
	// first-level cache but hits the second level.
	L1MissL2HitCycles Cycles
}

// Default returns the measured SGI 4D/340: the machine the package-level
// constants describe, field for field.
func Default() Machine {
	return Machine{
		NCPU:              DefaultCPUs,
		ClockMHz:          ClockMHz,
		ICacheSize:        ICacheSize,
		ICacheAssoc:       1,
		DCacheL1Size:      DCacheL1Size,
		DCacheL1Assoc:     1,
		DCacheL2Size:      DCacheL2Size,
		DCacheL2Assoc:     1,
		MemBytes:          MemBytes,
		TLBEntries:        TLBEntries,
		MissStallCycles:   MissStallCycles,
		L1MissL2HitCycles: L1MissL2HitCycles,
	}
}

// MemFrames returns the number of physical page frames.
func (m Machine) MemFrames() int { return m.MemBytes / PageSize }

// powerOfTwo reports whether x is a positive power of two.
func powerOfTwo(x int) bool { return x > 0 && x&(x-1) == 0 }

// minICacheSize is the smallest I-cache the kernel-text layout supports:
// the kernel image (~160 KB of routine inventory) must fit in 13 I-cache
// banks, and 13 × 16 KB = 208 KB is the smallest bank multiple that holds
// it.
const minICacheSize = 16 * 1024

// validateCache checks one cache's size/associativity pair, returning an
// error that names the offending field.
func validateCache(sizeField string, size int, assocField string, assoc int) error {
	if !powerOfTwo(size) || size < BlockSize {
		return fmt.Errorf("arch.Machine: %s %d: must be a power of two ≥ block size %d",
			sizeField, size, BlockSize)
	}
	if assoc < 1 {
		return fmt.Errorf("arch.Machine: %s %d: must be ≥ 1", assocField, assoc)
	}
	if !powerOfTwo(assoc) {
		return fmt.Errorf("arch.Machine: %s %d: must be a power of two (sets must stay a power of two)",
			assocField, assoc)
	}
	if assoc*BlockSize > size {
		return fmt.Errorf("arch.Machine: %s %d exceeds %s %d / block size %d",
			assocField, assoc, sizeField, size, BlockSize)
	}
	return nil
}

// Validate checks the configuration for degeneracies the simulator cannot
// run (or could only run meaninglessly), returning an error naming the bad
// field. A nil return means every layer can be constructed from m.
func (m Machine) Validate() error {
	if m.NCPU < 1 {
		return fmt.Errorf("arch.Machine: NCPU %d: must be ≥ 1", m.NCPU)
	}
	if m.ClockMHz < 1 {
		return fmt.Errorf("arch.Machine: ClockMHz %d: must be ≥ 1", m.ClockMHz)
	}
	if err := validateCache("ICacheSize", m.ICacheSize, "ICacheAssoc", m.ICacheAssoc); err != nil {
		return err
	}
	if m.ICacheSize < minICacheSize {
		return fmt.Errorf("arch.Machine: ICacheSize %d: kernel text needs at least %d (13 banks must hold the kernel image)",
			m.ICacheSize, minICacheSize)
	}
	if err := validateCache("DCacheL1Size", m.DCacheL1Size, "DCacheL1Assoc", m.DCacheL1Assoc); err != nil {
		return err
	}
	if err := validateCache("DCacheL2Size", m.DCacheL2Size, "DCacheL2Assoc", m.DCacheL2Assoc); err != nil {
		return err
	}
	if m.DCacheL1Size > m.DCacheL2Size {
		return fmt.Errorf("arch.Machine: DCacheL1Size %d exceeds DCacheL2Size %d",
			m.DCacheL1Size, m.DCacheL2Size)
	}
	if m.MemBytes <= 0 || m.MemBytes%PageSize != 0 {
		return fmt.Errorf("arch.Machine: MemBytes %d: must be a positive multiple of the page size %d",
			m.MemBytes, PageSize)
	}
	if m.MemFrames() <= ReservedFrames {
		return fmt.Errorf("arch.Machine: MemBytes %d: %d frames is not larger than the kernel's %d reserved frames",
			m.MemBytes, m.MemFrames(), ReservedFrames)
	}
	if m.TLBEntries < 1 {
		return fmt.Errorf("arch.Machine: TLBEntries %d: must be ≥ 1", m.TLBEntries)
	}
	if m.MissStallCycles < 1 {
		return fmt.Errorf("arch.Machine: MissStallCycles %d: must be ≥ 1", m.MissStallCycles)
	}
	if m.L1MissL2HitCycles < 0 {
		return fmt.Errorf("arch.Machine: L1MissL2HitCycles %d: must be ≥ 0", m.L1MissL2HitCycles)
	}
	return nil
}

// String returns a compact one-line description, used by CLI banners and
// sweep tables.
func (m Machine) String() string {
	return fmt.Sprintf("%d×%dMHz I=%s/%d D=%s/%d+%s/%d mem=%s tlb=%d stall=%d/%d",
		m.NCPU, m.ClockMHz,
		sizeString(m.ICacheSize), m.ICacheAssoc,
		sizeString(m.DCacheL1Size), m.DCacheL1Assoc,
		sizeString(m.DCacheL2Size), m.DCacheL2Assoc,
		sizeString(m.MemBytes), m.TLBEntries,
		m.MissStallCycles, m.L1MissL2HitCycles)
}

// sizeString formats a byte count with a K/M suffix when exact.
func sizeString(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dK", n>>10)
	default:
		return fmt.Sprintf("%d", n)
	}
}
