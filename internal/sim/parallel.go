package sim

import (
	"sync"
	"sync/atomic"

	"repro/internal/arch"
	"repro/internal/bus"
)

// The conservative parallel engine. The serial scheduler's invariant is
// that steps execute in (clock-at-step-start, CPU id) order; this engine
// preserves that sequence exactly while extracting parallelism from the
// parts of a step that touch no shared state.
//
// It alternates two phases:
//
//   - Speculation (parallel): the CPUs are partitioned across worker
//     goroutines. Each CPU runs ahead privately through whole user-mode
//     virtual steps — private cache fills journaled, bus-visible effects
//     deferred (bus.Spec) — up to a frozen horizon: its next clock tick,
//     pending interrupt, net interrupt, window end, or any kernel entry
//     (syscalls, faults, behavior draws). Every shared structure is
//     read-only in this phase, so it is race-free by construction.
//
//   - Commit (serial): steps are consumed strictly in the serial
//     (clock, id) order, interleaving speculated steps (their deferred
//     ops replayed onto the bus, statistics, recorder and presence
//     filter) with ordinary serial steps for CPUs that have none. Any
//     committed work that would modify a CPU's caches, TLB or event
//     horizon first truncates that CPU's unconsumed speculation (the
//     bus.OnTouch / kernel.OnEventPost hooks), which rolls its state
//     back via the journal; the steps re-run serially. A speculated
//     Shared-state prediction is re-validated against the live presence
//     filter at replay and a mispredicted step is likewise rolled back
//     and re-run.
//
// The result: every consumed step observes exactly the state the serial
// engine would have produced, so reports are byte-identical at any
// worker count — the determinism fuzz test proves it against the serial
// oracle.

// maxSpecSteps bounds one CPU's run-ahead per phase: deep segments
// amortize phase overhead but raise the cost of a truncation.
const maxSpecSteps = 64

// SpecStats counts parallel-engine activity for metrics and tests.
type SpecStats struct {
	// Phases is the number of speculation/commit rounds.
	Phases int64
	// SpecSteps is the number of virtual steps speculated.
	SpecSteps int64
	// CommittedSteps is how many of them were consumed by the merge.
	CommittedSteps int64
	// TruncatedSteps were discarded (remote touch or event arrival)
	// and re-run serially.
	TruncatedSteps int64
	// Mispredicts counts steps discarded for a stale Shared prediction.
	Mispredicts int64
}

type parEngine struct {
	s       *Simulator
	workers int
	segs    []*specCPU

	// unconsumed is the number of speculated steps awaiting commit.
	unconsumed int
	// canceled is set by a worker that observed the cancel flag.
	canceled atomic.Bool

	stats SpecStats
}

func newParEngine(s *Simulator, workers int) *parEngine {
	if workers > len(s.CPUs) {
		workers = len(s.CPUs)
	}
	e := &parEngine{s: s, workers: workers}
	e.segs = make([]*specCPU, len(s.CPUs))
	for i, c := range s.CPUs {
		e.segs[i] = &specCPU{c: c, bs: bus.NewSpec(s.Bus, c.id)}
	}
	return e
}

// specAllowed reports whether the configuration supports speculation:
// the direct-mapped fast path with a presence filter, no checker, no
// injection, no buffered monitor, and more than one CPU.
func (s *Simulator) specAllowed() bool {
	m := s.Cfg.Machine
	return !s.Cfg.Reference && !s.Cfg.Check &&
		s.Inj == nil && s.Mon == nil &&
		s.Cfg.NCPU > 1 && s.Cfg.NCPU <= 64 &&
		m.ICacheAssoc == 1 && m.DCacheL1Assoc == 1 && m.DCacheL2Assoc == 1
}

// SimWorkers returns the effective intra-run worker count: the
// configured count when the parallel engine engaged, 1 otherwise.
func (s *Simulator) SimWorkers() int {
	if s.par != nil {
		return s.par.workers
	}
	return 1
}

// SpecStats returns the parallel-engine counters (zero when serial).
func (s *Simulator) SpecStats() SpecStats {
	if s.par == nil {
		return SpecStats{}
	}
	return s.par.stats
}

// loopParallel is the parallel counterpart of loop: serial catch-up
// until the minimum CPU can speculate, then alternating speculation and
// commit phases.
func (s *Simulator) loopParallel() {
	e := s.par
	s.Bus.OnTouch = e.touchAddr
	s.Bus.OnTouchAll = e.truncateSpec
	s.K.OnEventPost = e.eventPost
	defer func() {
		s.Bus.OnTouch = nil
		s.Bus.OnTouchAll = nil
		s.K.OnEventPost = nil
	}()
	for {
		// Serial catch-up: run ordinary steps in serial order until a
		// speculation phase can do useful work — the minimum CPU is at a
		// speculation-eligible boundary (it would otherwise have to step
		// serially anyway), or at least two CPUs are (they can overlap
		// even while the minimum catches up serially inside commit).
		for {
			c, _ := s.minPair(s.end)
			if c == nil {
				return
			}
			if e.eligible(c) || e.countEligible() >= 2 {
				break
			}
			s.step(c)
		}
		e.phaseSpec()
		if e.canceled.Load() {
			// A worker saw the cancel flag; re-raise it here on the
			// engine goroutine so RunCancelable's provenance (and the
			// recover path) match the serial engine's.
			c, _ := s.minPair(s.end)
			if c != nil {
				s.pollCancel(c)
			}
			panic(canceledSignal{})
		}
		e.commit()
	}
}

// eligible reports whether c sits at a boundary from which user-mode
// speculation can start: running a process, below the window end, and
// not due for a sync escape, clock tick, pending event, or (CPU 1) the
// periodic net interrupt.
func (e *parEngine) eligible(c *CPU) bool {
	s := e.s
	if c.cur == nil || c.needSync || c.now >= s.end || c.now >= c.nextClockTick {
		return false
	}
	if at, ok := s.K.NextEventTimeFor(c.id); ok && c.now >= at {
		return false
	}
	if c.id == 1 && s.Cfg.NetPeriod > 0 && (s.nextNet == 0 || c.now >= s.nextNet) {
		return false
	}
	return true
}

// countEligible returns how many CPUs could speculate right now.
func (e *parEngine) countEligible() int {
	n := 0
	for _, c := range e.s.CPUs {
		if e.eligible(c) {
			n++
		}
	}
	return n
}

// phaseSpec runs the parallel speculation phase: the CPUs are dealt
// round-robin to fresh worker goroutines, each advancing its CPUs
// privately. Workers touch only their CPUs' private state plus read-only
// shared structures, and are joined before commit starts.
func (e *parEngine) phaseSpec() {
	e.stats.Phases++
	e.unconsumed = 0
	n := len(e.segs)
	w := e.workers
	panics := make([]any, w)
	var wg sync.WaitGroup
	for wi := 0; wi < w; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(canceledSignal); ok {
						e.canceled.Store(true)
						return
					}
					panics[wi] = r
				}
			}()
			for i := wi; i < n; i += w {
				e.specRun(e.segs[i])
			}
		}(wi)
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
	for _, sp := range e.segs {
		e.unconsumed += len(sp.cps)
		e.stats.SpecSteps += int64(len(sp.cps))
		if sp.canceled {
			e.canceled.Store(true)
		}
	}
	if e.canceled.Load() {
		// The segments are garbage; make sure commit never reads them.
		for _, sp := range e.segs {
			sp.cps = sp.cps[:0]
		}
		e.unconsumed = 0
	}
}

// specRun advances one CPU privately through whole virtual steps until a
// frozen horizon, a non-private site, or the per-phase step cap.
func (e *parEngine) specRun(sp *specCPU) {
	s := e.s
	c := sp.c
	sp.reset()
	if c.cur == nil || c.needSync {
		return
	}
	// Freeze the horizons. They are stable for the whole phase: events
	// are only posted and the net timer only advanced by committed
	// steps, and a post targeting this CPU truncates its speculation.
	dueAt, dueOK := s.K.NextEventTimeFor(c.id)
	netAt := s.nextNet
	netDue := c.id == 1 && s.Cfg.NetPeriod > 0
	for len(sp.cps) < maxSpecSteps {
		if s.cancel.Load() {
			sp.canceled = true
			break
		}
		if c.now >= s.end || c.now >= c.nextClockTick {
			break
		}
		if dueOK && c.now >= dueAt {
			break
		}
		if netDue && (netAt == 0 || c.now >= netAt) {
			break
		}
		sp.cps = append(sp.cps, specSnap{})
		c.takeSnap(sp, &sp.cps[len(sp.cps)-1])
		sp.bs.BeginStep(len(sp.cps) - 1)
		deadline := c.now + userBurst
		if c.nextClockTick < deadline {
			deadline = c.nextClockTick
		}
		sp.stopped = false
		c.spec = sp
		s.runUserUntil(c, deadline)
		c.spec = nil
		if sp.canceled {
			break
		}
		if sp.stopped {
			// Partial burst: the commit phase finishes it serially
			// against this deadline after replaying its ops.
			sp.final = true
			sp.finalDeadline = deadline
			break
		}
	}
	sp.opsTotal = len(sp.bs.Ops)
}

// commit consumes speculated steps and ordinary serial steps in exactly
// the serial engine's (clock-at-step-start, CPU id) order until every
// speculated step has been consumed or truncated.
func (e *parEngine) commit() {
	s := e.s
	for e.unconsumed > 0 {
		c := e.commitMin()
		if c == nil {
			return
		}
		sp := e.segs[c.id]
		if sp.cursor < len(sp.cps) {
			e.commitStep(sp)
		} else {
			s.step(c)
		}
	}
}

// commitMin picks the CPU with the smallest committed clock — the clock
// of its next unconsumed speculated step, or its live clock — with the
// serial scheduler's first-index-wins tie break.
func (e *parEngine) commitMin() *CPU {
	s := e.s
	var lo *CPU
	var loNow arch.Cycles
	for _, q := range s.CPUs {
		now := q.now
		if sp := e.segs[q.id]; sp.cursor < len(sp.cps) {
			now = sp.cps[sp.cursor].now
		}
		if now >= s.end {
			continue
		}
		if lo == nil || now < loNow {
			lo, loNow = q, now
		}
	}
	return lo
}

// commitStep consumes one speculated step: validate and replay its
// deferred bus ops, then account it exactly as a serial step would. A
// failed validation rolls the segment back and re-runs the step
// serially.
func (e *parEngine) commitStep(sp *specCPU) {
	s := e.s
	c := sp.c
	k := sp.cursor
	ck := &sp.cps[k]
	s.pollCancel(c)
	from := ck.opsMark
	to := sp.opsTotal
	if k+1 < len(sp.cps) {
		to = sp.cps[k+1].opsMark
	}
	if !s.Bus.ReplayOps(c.id, sp.bs.Ops[from:to]) {
		// Stale Shared prediction: discard this and every later step of
		// the segment, then take the step serially from identical state.
		e.stats.Mispredicts++
		e.truncateFrom(sp, k)
		s.step(c)
		return
	}
	// The serial step's bookkeeping. The run-queue depth read here is
	// live, and therefore exactly the serial value: every serially-
	// earlier step has committed and speculation never moves the queue.
	s.cycle.Store(int64(ck.now))
	s.QDepthSum += int64(s.K.RunnableCount())
	s.QSamples++
	sp.cursor++
	e.unconsumed--
	e.stats.CommittedSteps++
	if sp.final && k == len(sp.cps)-1 {
		// Finish the partial burst serially against its original
		// deadline; the cursor is already past it, so a self-touch
		// cannot re-truncate this step.
		s.runUserUntil(c, sp.finalDeadline)
	}
}

// truncateSpec discards CPU q's entire unconsumed speculation (TLB
// shootdowns, whole-I-cache flushes: no single block to test against).
func (e *parEngine) truncateSpec(q arch.CPUID) {
	if sp := e.segs[q]; sp.cursor < len(sp.cps) {
		e.truncateFrom(sp, sp.cursor)
	}
}

// touchAddr handles a committed bus operation about to modify block a in
// CPU q's caches: q's speculation is truncated from its first unconsumed
// step that depends on a, and left intact when none does.
func (e *parEngine) touchAddr(q arch.CPUID, a arch.PAddr) {
	sp := e.segs[q]
	if sp.cursor >= len(sp.cps) {
		return
	}
	if from, ok := sp.bs.Touched(a, sp.cursor); ok {
		e.truncateFrom(sp, from)
	}
}

// eventPost handles an event posted to CPU q for delivery at `at`: the
// speculated steps whose entry clock is before `at` would have run
// identically (the serial engine checks for due events only at step
// boundaries), so truncation starts at the first step at or past it.
func (e *parEngine) eventPost(q arch.CPUID, at arch.Cycles) {
	sp := e.segs[q]
	for k := sp.cursor; k < len(sp.cps); k++ {
		if sp.cps[k].now >= at {
			e.truncateFrom(sp, k)
			return
		}
	}
}

// truncateFrom rolls segment sp back to the entry state of step k,
// dropping steps k.. entirely.
func (e *parEngine) truncateFrom(sp *specCPU, k int) {
	ck := &sp.cps[k]
	sp.bs.TruncateTo(ck.opsMark, ck.jMark)
	sp.bs.TruncAccess(k)
	sp.c.restoreSnap(ck)
	dropped := len(sp.cps) - k
	e.unconsumed -= dropped
	e.stats.TruncatedSteps += int64(dropped)
	sp.cps = sp.cps[:k]
	sp.opsTotal = ck.opsMark
	sp.final = false
}
