package arch

import (
	"testing"
	"testing/quick"
)

func TestGeometryConstants(t *testing.T) {
	if MemFrames != 8192 {
		t.Errorf("MemFrames = %d, want 8192 (32 MB / 4 KB)", MemFrames)
	}
	if InstrPerBlock != 4 {
		t.Errorf("InstrPerBlock = %d, want 4", InstrPerBlock)
	}
	if 1<<BlockShift != BlockSize {
		t.Errorf("BlockShift inconsistent: 1<<%d != %d", BlockShift, BlockSize)
	}
	if 1<<PageShift != PageSize {
		t.Errorf("PageShift inconsistent: 1<<%d != %d", PageShift, PageSize)
	}
	// 10 ms at 30 ns per cycle.
	if ClockTickCycles != 333333 {
		t.Errorf("ClockTickCycles = %d, want 333333", ClockTickCycles)
	}
}

func TestBlockAlignment(t *testing.T) {
	cases := []struct {
		in   PAddr
		want PAddr
	}{
		{0, 0},
		{1, 0},
		{15, 0},
		{16, 16},
		{0x1234, 0x1230},
		{0xFFFF_FFFF, 0xFFFF_FFF0},
	}
	for _, c := range cases {
		if got := c.in.Block(); got != c.want {
			t.Errorf("PAddr(%#x).Block() = %#x, want %#x", c.in, got, c.want)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	f := func(frame uint16, off uint16) bool {
		fr := uint32(frame) % MemFrames
		o := uint32(off) % PageSize
		a := FrameAddr(fr) + PAddr(o)
		return a.Frame() == fr && a.Offset() == o
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBlockIsIdempotentAndAligned(t *testing.T) {
	f := func(a uint32) bool {
		b := PAddr(a).Block()
		return b.Block() == b && uint32(b)%BlockSize == 0 && b <= PAddr(a) && PAddr(a)-b < BlockSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVAddrPage(t *testing.T) {
	v := VAddr(0x0040_2345)
	if v.Page() != 0x402 {
		t.Errorf("Page() = %#x, want 0x402", v.Page())
	}
	if v.Offset() != 0x345 {
		t.Errorf("Offset() = %#x, want 0x345", v.Offset())
	}
}

func TestCyclesConversions(t *testing.T) {
	c := Cycles(1000)
	if c.NS() != 30000 {
		t.Errorf("NS() = %d, want 30000", c.NS())
	}
	if ms := Cycles(1000000).MS(); ms != 30.0 {
		t.Errorf("MS() = %v, want 30.0", ms)
	}
}

func TestModeString(t *testing.T) {
	if ModeUser.String() != "user" || ModeKernel.String() != "system" || ModeIdle.String() != "idle" {
		t.Errorf("mode strings wrong: %q %q %q", ModeUser, ModeKernel, ModeIdle)
	}
	if Mode(9).String() == "" {
		t.Error("unknown mode should still stringify")
	}
}

func TestRefKindString(t *testing.T) {
	if RefInstr.String() != "ifetch" || RefRead.String() != "read" || RefWrite.String() != "write" {
		t.Errorf("refkind strings wrong")
	}
}
