// Package kmem defines the physical memory map of the simulated machine —
// the kernel text image, every kernel data structure of Table 3 at its
// exact published size, the per-process user structures and kernel stacks,
// and the pageable user frames — together with the physical frame allocator
// (free-page buckets and pfdat array) the kernel uses.
//
// The layout doubles as the OS symbol table: the trace postprocessor
// attributes data misses to structures by looking miss addresses up here,
// exactly as the paper compares missed addresses "with the entries in the
// symbol table of the OS image" (Section 2.2).
package kmem

import (
	"fmt"

	"repro/internal/arch"
)

// Structure sizes from Table 3 of the paper, and the decompositions that
// make them exact.
const (
	// KernelTextSize is the size of the kernel code image (13 multiples
	// of the 64 KB I-cache, matching the span of Figure 5's X-axis).
	KernelTextSize = 13 * arch.ICacheSize // 832 KB

	// NumProcs is the number of process-table slots.
	NumProcs = 90
	// ProcEntrySize is the size of one process-table entry.
	ProcEntrySize = 512
	// ProcTableSize is 46080 bytes (Table 3).
	ProcTableSize = NumProcs * ProcEntrySize

	// User structure decomposition (Table 3): one page per process.
	PCBSize     = 240                              // register save area for context switches
	EframeSize  = 172                              // register save area for exceptions
	RestUSize   = 3684                             // file descriptors, system buffers, syscall state
	UStructSize = PCBSize + EframeSize + RestUSize // = one page

	// KStackSize is the per-process kernel stack (Table 3): one page,
	// so each stack occupies exactly one frame.
	KStackSize = arch.PageSize

	// RunQueueSize is the structure at the head of the run queue.
	RunQueueSize = 24

	// HiNdprocSize is the priority-scheduling flag.
	HiNdprocSize = 4

	// FreePgBuckSize is the array of free-page hash buckets (Table 3).
	FreePgBuckSize = 3072
	// NumBuckets at 8 bytes per bucket head.
	NumBuckets = FreePgBuckSize / 8

	// DfbmapSize is the table of free disk blocks.
	DfbmapSize = 8192

	// CalloutSize is the table of outstanding actions (alarms,
	// timeouts) protected by Calock.
	CalloutSize = 4096

	// Inode table: 536 × 128 = 68608 bytes (Table 3).
	NumInodes      = 536
	InodeSize      = 128
	InodeTableSize = NumInodes * InodeSize

	// Buffer-cache headers: 136 × 128 = 17408 bytes (Table 3).
	NumBufs        = 136
	BufHeaderSize  = 128
	BufHeadersSize = NumBufs * BufHeaderSize

	// BufDataSize is the buffer-cache data area (one page per buffer).
	BufDataSize = NumBufs * arch.PageSize

	// KernelHeapSize is the dynamic kernel allocation arena. The first
	// NumProcs pages hold the per-process page tables; the rest is
	// general allocation (pipe buffers, network mbufs, ...).
	KernelHeapSize = (NumProcs + 38) * arch.PageSize // 512 KB

	// Pfdat: one 32-byte descriptor per pageable frame. The kernel
	// reserves ReservedFrames frames for itself, leaving PageableFrames
	// user frames; 6592 × 32 = 210944 bytes, the exact Table 3 size.
	// These are the default machine's values; NewLayout computes the
	// actual reservation from its Machine.
	PfdatEntrySize = 32
	ReservedFrames = arch.ReservedFrames
	PageableFrames = arch.MemFrames - ReservedFrames // 6592
	PfdatSize      = PageableFrames * PfdatEntrySize // 210944

	// DevRegsBase is where uncached device registers live (even
	// addresses, distinguishable from odd escape reads).
	DevRegsBase arch.PAddr = 0x0068_0000
)

// The u-struct decomposition must fill exactly one page: its pieces are
// addressed by fixed offsets within the process's u-page, and Attribute
// decodes those offsets modulo (UStructSize + KStackSize). Both array
// lengths are negative if the sizes drift, failing compilation.
var (
	_ [UStructSize - arch.PageSize]struct{}
	_ [arch.PageSize - UStructSize]struct{}
)

// Region is a named extent of physical memory.
type Region struct {
	Name string
	Base arch.PAddr
	Size uint32
}

// Contains reports whether addr falls inside the region.
func (r Region) Contains(a arch.PAddr) bool {
	return a >= r.Base && a < r.Base+arch.PAddr(r.Size)
}

// End returns the first address past the region.
func (r Region) End() arch.PAddr { return r.Base + arch.PAddr(r.Size) }

// Canonical kernel routine names that other packages key on: the memory
// attributor maps dynamically-placed misses to the Bcopy/Bclear classes by
// the executing routine, and the trace package tallies block-operation
// misses per routine. Defining them here (the lowest common import) keeps
// the kernel image, the attributor and the classifier in sync.
const (
	RoutineBcopy  = "bcopy"
	RoutineBclear = "bclear"
	RoutineVhand  = "vhand"
)

// Attribution names used by Figure 8 and Table 3.
const (
	AttrKernelStack = "Kernel Stack"
	AttrPCB         = "PCB"
	AttrEframe      = "Eframe"
	AttrRestUser    = "Rest of User Struct"
	AttrProcTable   = "Process Table"
	AttrBcopy       = "Bcopy"
	AttrBclear      = "Bclear"
	AttrPfdat       = "Pfdat"
	AttrBuffer      = "Buffer"
	AttrInode       = "Inode"
	AttrRunQueue    = "Run Queue"
	AttrFreePgBuck  = "FreePgBuck"
	AttrHiNdproc    = "Hi_ndproc"
	AttrKernelText  = "Kernel Text"
	AttrOther       = "Other"
)

// AttrID is the interned integer form of an attribution name. The trace
// classifier tallies per-miss structure counts in dense arrays indexed by
// AttrID and resolves the strings only once, at Finish.
type AttrID uint8

const (
	AttrIDKernelStack AttrID = iota
	AttrIDPCB
	AttrIDEframe
	AttrIDRestUser
	AttrIDProcTable
	AttrIDBcopy
	AttrIDBclear
	AttrIDPfdat
	AttrIDBuffer
	AttrIDInode
	AttrIDRunQueue
	AttrIDFreePgBuck
	AttrIDHiNdproc
	AttrIDKernelText
	AttrIDOther

	// NumAttrs is the number of attribution IDs (array-sizing bound).
	NumAttrs
)

// attrNames resolves an AttrID back to its Figure 8 name.
var attrNames = [NumAttrs]string{
	AttrIDKernelStack: AttrKernelStack,
	AttrIDPCB:         AttrPCB,
	AttrIDEframe:      AttrEframe,
	AttrIDRestUser:    AttrRestUser,
	AttrIDProcTable:   AttrProcTable,
	AttrIDBcopy:       AttrBcopy,
	AttrIDBclear:      AttrBclear,
	AttrIDPfdat:       AttrPfdat,
	AttrIDBuffer:      AttrBuffer,
	AttrIDInode:       AttrInode,
	AttrIDRunQueue:    AttrRunQueue,
	AttrIDFreePgBuck:  AttrFreePgBuck,
	AttrIDHiNdproc:    AttrHiNdproc,
	AttrIDKernelText:  AttrKernelText,
	AttrIDOther:       AttrOther,
}

// Name returns the attribution name of an ID.
func (id AttrID) Name() string { return attrNames[id] }

// BlockOp identifies the block operation executing at a miss, the only
// routine information AttributeID needs to resolve dynamically-placed
// memory (see Attribute).
type BlockOp uint8

const (
	BlockOpNone BlockOp = iota
	BlockOpBcopy
	BlockOpBclear
)

// Layout is the complete physical memory map.
type Layout struct {
	KernelText Region
	ProcTable  Region
	RunQueue   Region
	HiNdproc   Region
	FreePgBuck Region
	Dfbmap     Region
	Callout    Region
	InodeTable Region
	BufHeaders Region
	Pfdat      Region
	KernelHeap Region
	BufData    Region
	UPages     Region // NumProcs × (ustruct page + kstack page)

	// KernelEnd is the first address past all kernel structures; it
	// must stay below Reserved×PageSize.
	KernelEnd arch.PAddr

	// M is the machine the layout was computed for.
	M arch.Machine
	// TextSize is the kernel text image size (13 I-cache banks).
	TextSize uint32
	// Reserved is the number of frames reserved for the kernel image
	// (ReservedFrames on the default machine, grown when a large
	// I-cache or memory inflates the image past the default budget).
	Reserved int
	// Pageable is the number of user-allocatable frames:
	// M.MemFrames() − Reserved.
	Pageable int
}

// NewLayout computes the memory map of machine m. The kernel-text image is
// 13 I-cache banks (Figure 5's span) and the pfdat array holds one
// descriptor per pageable frame — which itself depends on how many frames
// the image reserves, so the reservation is computed by fixed point:
// starting from the default ReservedFrames floor, the reservation grows to
// cover the image and the (now smaller) pfdat is recomputed until stable.
// The default machine converges immediately at ReservedFrames, keeping the
// historical layout bit for bit. NewLayout panics when m is invalid or the
// image leaves too little pageable memory to run (programming errors,
// caught by tests and by Machine.Validate upstream).
func NewLayout(m arch.Machine) *Layout {
	if err := m.Validate(); err != nil {
		panic("kmem: " + err.Error())
	}
	memFrames := m.MemFrames()
	reserved := ReservedFrames
	for {
		l := layoutWith(m, reserved, memFrames-reserved)
		need := (int(l.KernelEnd) + arch.PageSize - 1) / arch.PageSize
		if need <= reserved {
			return l
		}
		reserved = need
		if memFrames-reserved < minPageable {
			panic(fmt.Sprintf("kmem: kernel image reserves %d of %d frames, leaving fewer than %d pageable",
				reserved, memFrames, minPageable))
		}
	}
}

// minPageable is the least user memory the kernel can meaningfully run
// with (frame pool, prefill slack and working set).
const minPageable = 1024

// layoutWith places every region for one candidate reservation.
func layoutWith(m arch.Machine, reserved, pageable int) *Layout {
	l := &Layout{
		M:        m,
		TextSize: uint32(13 * m.ICacheSize),
		Reserved: reserved,
		Pageable: pageable,
	}
	pfdatSize := uint32(pageable * PfdatEntrySize)
	next := arch.PAddr(0)
	place := func(name string, size uint32, alignPage bool) Region {
		if alignPage && next%arch.PageSize != 0 {
			next = (next + arch.PageSize - 1) &^ (arch.PageSize - 1)
		} else if next%64 != 0 {
			next = (next + 63) &^ 63
		}
		r := Region{Name: name, Base: next, Size: size}
		next += arch.PAddr(size)
		return r
	}
	l.KernelText = place(AttrKernelText, l.TextSize, true)
	l.ProcTable = place(AttrProcTable, ProcTableSize, false)
	l.RunQueue = place(AttrRunQueue, RunQueueSize, false)
	l.HiNdproc = place(AttrHiNdproc, HiNdprocSize, false)
	l.FreePgBuck = place(AttrFreePgBuck, FreePgBuckSize, false)
	l.Dfbmap = place("Dfbmap", DfbmapSize, false)
	l.Callout = place("Callout", CalloutSize, false)
	l.InodeTable = place(AttrInode, InodeTableSize, false)
	l.BufHeaders = place(AttrBuffer, BufHeadersSize, false)
	l.Pfdat = place(AttrPfdat, pfdatSize, false)
	l.KernelHeap = place("Kernel Heap", KernelHeapSize, true)
	l.BufData = place("Buffer Data", BufDataSize, true)
	l.UPages = place("U Pages", NumProcs*(UStructSize+KStackSize), true)
	l.KernelEnd = next
	return l
}

// UStructAddr returns the physical address of process slot s's user
// structure (its PCB is at offset 0, eframe at PCBSize, rest at
// PCBSize+EframeSize).
func (l *Layout) UStructAddr(s int) arch.PAddr {
	return l.UPages.Base + arch.PAddr(s*(UStructSize+KStackSize))
}

// KStackAddr returns the physical address of process slot s's kernel stack.
func (l *Layout) KStackAddr(s int) arch.PAddr {
	return l.UStructAddr(s) + UStructSize
}

// ProcEntryAddr returns the address of process-table entry s.
func (l *Layout) ProcEntryAddr(s int) arch.PAddr {
	return l.ProcTable.Base + arch.PAddr(s*ProcEntrySize)
}

// PfdatAddr returns the address of the page descriptor for pageable frame
// index i (i.e. physical frame Reserved+i).
func (l *Layout) PfdatAddr(i int) arch.PAddr {
	return l.Pfdat.Base + arch.PAddr(i*PfdatEntrySize)
}

// PfdatAddrOfFrame returns the descriptor address for a physical frame
// number.
func (l *Layout) PfdatAddrOfFrame(f uint32) arch.PAddr {
	return l.PfdatAddr(int(f) - l.Reserved)
}

// BucketAddr returns the address of free-page bucket i.
func (l *Layout) BucketAddr(i int) arch.PAddr {
	return l.FreePgBuck.Base + arch.PAddr(i*8)
}

// InodeAddr returns the address of in-core inode i.
func (l *Layout) InodeAddr(i int) arch.PAddr {
	return l.InodeTable.Base + arch.PAddr(i*InodeSize)
}

// BufHeaderAddr returns the address of buffer header i.
func (l *Layout) BufHeaderAddr(i int) arch.PAddr {
	return l.BufHeaders.Base + arch.PAddr(i*BufHeaderSize)
}

// BufDataAddr returns the address of buffer i's data page.
func (l *Layout) BufDataAddr(i int) arch.PAddr {
	return l.BufData.Base + arch.PAddr(i*arch.PageSize)
}

// HeapScratch returns an address in the general-allocation part of the
// kernel heap (past the page-table pages), offset by off modulo the
// scratch area size.
func (l *Layout) HeapScratch(off int) arch.PAddr {
	scratch := l.KernelHeap.Base + arch.PAddr(NumProcs)*arch.PageSize
	size := int(l.KernelHeap.End() - scratch)
	return scratch + arch.PAddr(off%size)
}

// FirstUserFrame is the first pageable physical frame number of the
// default machine (use Layout.FirstUserFrame for a configured one).
const FirstUserFrame = uint32(ReservedFrames)

// FirstUserFrame returns the first pageable frame number of this layout.
func (l *Layout) FirstUserFrame() uint32 { return uint32(l.Reserved) }

// Attribute maps a physical data address to the structure name used by
// Figure 8. routine is the name of the OS routine executing when the miss
// occurred ("" if unknown); it resolves dynamically-allocated memory (user
// pages, buffer data, kernel heap) to the Bcopy/Bclear categories when the
// miss happened inside a block operation, mirroring the subroutine
// instrumentation of Section 2.2.
func (l *Layout) Attribute(a arch.PAddr, routine string) string {
	op := BlockOpNone
	switch routine {
	case RoutineBcopy:
		op = BlockOpBcopy
	case RoutineBclear:
		op = BlockOpBclear
	}
	return l.AttributeID(a, op).Name()
}

// AttributeID is the allocation-free form of Attribute: it resolves a
// physical data address to an interned AttrID, taking the executing block
// operation (instead of a routine name) to classify dynamically-placed
// memory. Attribute delegates here so the two can never drift.
func (l *Layout) AttributeID(a arch.PAddr, op BlockOp) AttrID {
	switch {
	case l.KernelText.Contains(a):
		return AttrIDKernelText
	case l.ProcTable.Contains(a):
		return AttrIDProcTable
	case l.RunQueue.Contains(a):
		return AttrIDRunQueue
	case l.HiNdproc.Contains(a):
		return AttrIDHiNdproc
	case l.FreePgBuck.Contains(a):
		return AttrIDFreePgBuck
	case l.InodeTable.Contains(a):
		return AttrIDInode
	case l.BufHeaders.Contains(a):
		return AttrIDBuffer
	case l.Pfdat.Contains(a):
		return AttrIDPfdat
	case l.UPages.Contains(a):
		off := uint32(a-l.UPages.Base) % (UStructSize + KStackSize)
		switch {
		case off < PCBSize:
			return AttrIDPCB
		case off < PCBSize+EframeSize:
			return AttrIDEframe
		case off < UStructSize:
			return AttrIDRestUser
		default:
			return AttrIDKernelStack
		}
	}
	// Dynamically-placed memory: attribute to the block operation in
	// progress, if any.
	switch op {
	case BlockOpBcopy:
		return AttrIDBcopy
	case BlockOpBclear:
		return AttrIDBclear
	}
	return AttrIDOther
}

// Table3Sizes returns the structure-name → size mapping the paper's Table 3
// reports, for the documentation generator and its verification test.
func Table3Sizes() map[string]int {
	return map[string]int{
		AttrKernelStack: KStackSize,
		AttrPCB:         PCBSize,
		AttrEframe:      EframeSize,
		AttrRestUser:    RestUSize,
		AttrProcTable:   ProcTableSize,
		AttrPfdat:       PfdatSize,
		AttrBuffer:      BufHeadersSize,
		AttrInode:       InodeTableSize,
		AttrRunQueue:    RunQueueSize,
		AttrFreePgBuck:  FreePgBuckSize,
	}
}
