package kernel

import "repro/internal/kmem"

// rtab caches the *Routine pointer of every routine the kernel model
// executes, resolved once at boot. The simulation hot paths then reach
// their routines through a field load instead of the KText.byName map
// lookup that R performs (interned-pointer form of the name lookup; the
// map remains for tests and one-off resolution).
//
// Field names match the routine names exactly so call sites read like the
// kernel image inventory.
type rtab struct {
	// Scheduler and low-level exception handling.
	setrq, whichq, remrq    *Routine
	swtch                   *Routine
	save_ctx, restore_ctx   *Routine
	sleep, wakeup           *Routine
	exc_vec, exc_save       *Routine
	exc_restore             *Routine
	clock_intr, hardclock   *Routine
	softclock, timeout      *Routine
	schedcpu                *Routine
	dksc_intr               *Routine
	net_intr, ip_input      *Routine
	net_daemon              *Routine
	// TLB and page-fault handling.
	utlbmiss, pt_lookup, pagein *Routine
	// System calls and the file system.
	syscall_entry, syscall_exit *Routine
	sys_read, sys_write, rwuio  *Routine
	ufs_readwrite               *Routine
	dksc_strategy, dksc_start   *Routine
	bread, getblk, bwrite       *Routine
	fs_balloc                   *Routine
	sys_open, namei, iget       *Routine
	sys_close, iput             *Routine
	sys_fork, newproc           *Routine
	sys_exec, load_image        *Routine
	sys_exit, sys_wait          *Routine
	sys_sginap, sys_small       *Routine
	sys_brk, proc_misc          *Routine
	str_read, str_write         *Routine
	pipe_rw, tty_ld             *Routine
	// Block operations and frame management.
	bcopy, bclear, vhand *Routine
	pgalloc, pgfree      *Routine
}

// newRtab resolves every cached routine against a placed kernel image.
func newRtab(t *KText) rtab {
	return rtab{
		setrq:         t.R("setrq"),
		whichq:        t.R("whichq"),
		remrq:         t.R("remrq"),
		swtch:         t.R("swtch"),
		save_ctx:      t.R("save_ctx"),
		restore_ctx:   t.R("restore_ctx"),
		sleep:         t.R("sleep"),
		wakeup:        t.R("wakeup"),
		exc_vec:       t.R("exc_vec"),
		exc_save:      t.R("exc_save"),
		exc_restore:   t.R("exc_restore"),
		clock_intr:    t.R("clock_intr"),
		hardclock:     t.R("hardclock"),
		softclock:     t.R("softclock"),
		timeout:       t.R("timeout"),
		schedcpu:      t.R("schedcpu"),
		dksc_intr:     t.R("dksc_intr"),
		net_intr:      t.R("net_intr"),
		ip_input:      t.R("ip_input"),
		net_daemon:    t.R("net_daemon"),
		utlbmiss:      t.R("utlbmiss"),
		pt_lookup:     t.R("pt_lookup"),
		pagein:        t.R("pagein"),
		syscall_entry: t.R("syscall_entry"),
		syscall_exit:  t.R("syscall_exit"),
		sys_read:      t.R("sys_read"),
		sys_write:     t.R("sys_write"),
		rwuio:         t.R("rwuio"),
		ufs_readwrite: t.R("ufs_readwrite"),
		dksc_strategy: t.R("dksc_strategy"),
		dksc_start:    t.R("dksc_start"),
		bread:         t.R("bread"),
		getblk:        t.R("getblk"),
		bwrite:        t.R("bwrite"),
		fs_balloc:     t.R("fs_balloc"),
		sys_open:      t.R("sys_open"),
		namei:         t.R("namei"),
		iget:          t.R("iget"),
		sys_close:     t.R("sys_close"),
		iput:          t.R("iput"),
		sys_fork:      t.R("sys_fork"),
		newproc:       t.R("newproc"),
		sys_exec:      t.R("sys_exec"),
		load_image:    t.R("load_image"),
		sys_exit:      t.R("sys_exit"),
		sys_wait:      t.R("sys_wait"),
		sys_sginap:    t.R("sys_sginap"),
		sys_small:     t.R("sys_small"),
		sys_brk:       t.R("sys_brk"),
		proc_misc:     t.R("proc_misc"),
		str_read:      t.R("str_read"),
		str_write:     t.R("str_write"),
		pipe_rw:       t.R("pipe_rw"),
		tty_ld:        t.R("tty_ld"),
		bcopy:         t.R(kmem.RoutineBcopy),
		bclear:        t.R(kmem.RoutineBclear),
		vhand:         t.R(kmem.RoutineVhand),
		pgalloc:       t.R("pgalloc"),
		pgfree:        t.R("pgfree"),
	}
}
