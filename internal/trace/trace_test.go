package trace

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/bus"
	"repro/internal/kernel"
	"repro/internal/kmem"
	"repro/internal/monitor"
)

// txn builders for synthetic traces.
func read(cpu arch.CPUID, a arch.PAddr, tick uint64) bus.Txn {
	return bus.Txn{Kind: bus.TxnRead, CPU: cpu, Addr: a.Block(), Ticks: tick}
}
func readex(cpu arch.CPUID, a arch.PAddr, tick uint64) bus.Txn {
	return bus.Txn{Kind: bus.TxnReadEx, CPU: cpu, Addr: a.Block(), Ticks: tick}
}
func upgrade(cpu arch.CPUID, a arch.PAddr, tick uint64) bus.Txn {
	return bus.Txn{Kind: bus.TxnUpgrade, CPU: cpu, Addr: a.Block(), Ticks: tick}
}
func esc(cpu arch.CPUID, ev monitor.Event, tick uint64, args ...uint32) []bus.Txn {
	out := []bus.Txn{{Kind: bus.TxnUncached, CPU: cpu, Addr: monitor.EventAddr(ev), Ticks: tick}}
	for _, v := range args {
		out = append(out, bus.Txn{Kind: bus.TxnUncached, CPU: cpu, Addr: monitor.OperandAddr(v), Ticks: tick})
	}
	return out
}

func newEnv() (*kernel.KText, *kmem.Layout) {
	l := kmem.NewLayout(arch.Default())
	return kernel.NewKText(l.KernelText.Base, arch.Default()), l
}

// enterOS/exitOS convenience wrappers.
func enterOS(cpu arch.CPUID, op kernel.OpKind, tick uint64) []bus.Txn {
	return esc(cpu, monitor.EvEnterOS, tick, uint32(op), 1)
}
func exitOS(cpu arch.CPUID, tick uint64) []bus.Txn {
	return esc(cpu, monitor.EvExitOS, tick)
}

func classify(t *testing.T, txns []bus.Txn) *Result {
	t.Helper()
	kt, l := newEnv()
	return Classify(txns, kt, l, 4)
}

func cat(seqs ...[]bus.Txn) []bus.Txn {
	var out []bus.Txn
	for _, s := range seqs {
		out = append(out, s...)
	}
	return out
}

func TestColdAndDisposClassification(t *testing.T) {
	kt, l := newEnv()
	_ = l
	// Two kernel-text blocks mapping to the same I-cache set
	// (64 KB apart), inside OS windows.
	a := kt.R("swtch").Addr
	b := a + arch.ICacheSize
	txns := cat(
		enterOS(0, kernel.OpIOSyscall, 10),
		[]bus.Txn{read(0, a, 11)}, // cold
		[]bus.Txn{read(0, b, 12)}, // cold; displaces a (OS displacer)
		[]bus.Txn{read(0, a, 13)}, // Dispos (and Dispossame: no app between)
		exitOS(0, 14),
	)
	r := classify(t, txns)
	osI := r.Counts[1][1]
	if osI[Cold] != 2 {
		t.Errorf("cold OS I-misses = %d, want 2", osI[Cold])
	}
	if osI[DispOS] != 1 {
		t.Errorf("Dispos = %d, want 1", osI[DispOS])
	}
	if r.DispossameI != 1 {
		t.Errorf("DispossameI = %d, want 1", r.DispossameI)
	}
	if r.OSMissTotal != 3 || r.Total != 3 {
		t.Errorf("totals: OS=%d all=%d", r.OSMissTotal, r.Total)
	}
}

func TestDispossameRequiresNoInterveningApp(t *testing.T) {
	kt, _ := newEnv()
	a := kt.R("swtch").Addr
	b := a + arch.ICacheSize
	userCode := arch.FrameAddr(kmem.FirstUserFrame) // data frame → app data miss
	txns := cat(
		enterOS(0, kernel.OpIOSyscall, 10),
		[]bus.Txn{read(0, a, 11), read(0, b, 12)},
		exitOS(0, 13),
		[]bus.Txn{read(0, userCode, 14)}, // app runs
		enterOS(0, kernel.OpIOSyscall, 15),
		[]bus.Txn{read(0, a, 16)}, // Dispos but NOT Dispossame
		exitOS(0, 17),
	)
	r := classify(t, txns)
	if r.Counts[1][1][DispOS] != 1 {
		t.Fatalf("Dispos = %d, want 1", r.Counts[1][1][DispOS])
	}
	if r.DispossameI != 0 {
		t.Errorf("DispossameI = %d, want 0 (app intervened)", r.DispossameI)
	}
}

func TestDispapClassification(t *testing.T) {
	kt, _ := newEnv()
	a := kt.R("swtch").Addr
	// An application code frame whose blocks conflict with a.
	frame := kmem.FirstUserFrame
	// Align the conflict: user block with same I-set as a: choose
	// address ≡ a mod 64K within the user frame... use page-alloc to
	// mark frame as code, then fetch the conflicting block.
	conflictInFrame := arch.FrameAddr(frame) +
		arch.PAddr((uint32(a)>>arch.BlockShift%uint32(arch.Default().ICacheSize/arch.BlockSize))<<arch.BlockShift%arch.PageSize)
	// conflictInFrame only matches the set if frame base ≡ 0 mod 64K.
	// FirstUserFrame = 1600 → addr 1600*4096 = 0x640000, multiple of
	// 64 KB ✓.
	txns := cat(
		enterOS(0, kernel.OpIOSyscall, 10),
		[]bus.Txn{read(0, a, 11)},
		exitOS(0, 12),
		esc(0, monitor.EvPageAlloc, 13, frame, uint32(kmem.FrameCode)),
		[]bus.Txn{read(0, conflictInFrame, 14)}, // app I-fetch displaces a
		enterOS(0, kernel.OpIOSyscall, 15),
		[]bus.Txn{read(0, a, 16)}, // Dispap
		exitOS(0, 17),
	)
	r := classify(t, txns)
	if got := r.Counts[1][1][DispApp]; got != 1 {
		t.Errorf("OS I Dispap = %d, want 1 (counts: %+v)", got, r.Counts)
	}
	if got := r.Counts[0][1][Cold]; got != 1 {
		t.Errorf("app I cold = %d, want 1", got)
	}
}

func TestSharingClassification(t *testing.T) {
	_, l := newEnv()
	a := l.RunQueue.Base
	txns := cat(
		enterOS(0, kernel.OpIOSyscall, 10),
		[]bus.Txn{read(0, a, 11)}, // CPU0 cold
		exitOS(0, 12),
		enterOS(1, kernel.OpIOSyscall, 13),
		[]bus.Txn{readex(1, a, 14)}, // CPU1 write: invalidates CPU0
		exitOS(1, 15),
		enterOS(0, kernel.OpIOSyscall, 16),
		[]bus.Txn{read(0, a, 17)}, // CPU0 re-read: Sharing
		exitOS(0, 18),
	)
	r := classify(t, txns)
	osD := r.Counts[1][0]
	if osD[Sharing] != 1 {
		t.Errorf("Sharing = %d, want 1 (%+v)", osD[Sharing], osD)
	}
	if osD[Cold] != 2 {
		t.Errorf("Cold = %d, want 2", osD[Cold])
	}
	// The run-queue miss is attributed to its structure.
	if r.StructSharing[kmem.AttrRunQueue] != 1 {
		t.Errorf("run-queue sharing attribution missing: %+v", r.StructSharing)
	}
}

func TestUpgradeCountsAsSharing(t *testing.T) {
	_, l := newEnv()
	a := l.RunQueue.Base
	txns := cat(
		enterOS(0, kernel.OpIOSyscall, 10),
		[]bus.Txn{read(0, a, 11), upgrade(0, a, 12)},
		exitOS(0, 13),
	)
	r := classify(t, txns)
	if r.Counts[1][0][Sharing] != 1 {
		t.Errorf("upgrade not counted as sharing: %+v", r.Counts[1][0])
	}
}

func TestInvalClassification(t *testing.T) {
	kt, _ := newEnv()
	_ = kt
	frame := kmem.FirstUserFrame + 3
	a := arch.FrameAddr(frame)
	txns := cat(
		esc(0, monitor.EvPageAlloc, 9, frame, uint32(kmem.FrameCode)),
		[]bus.Txn{read(0, a, 10)}, // app code fetch, cold
		esc(1, monitor.EvICacheInval, 11, frame),
		[]bus.Txn{read(0, a, 12)}, // Inval miss
	)
	r := classify(t, txns)
	appI := r.Counts[0][1]
	if appI[Cold] != 1 || appI[Inval] != 1 {
		t.Errorf("app I counts = %+v, want 1 cold + 1 inval", appI)
	}
}

func TestMigrationAttribution(t *testing.T) {
	kt, l := newEnv()
	pcb := l.UStructAddr(3)
	sw := kt.R("swtch")
	txns := cat(
		enterOS(0, kernel.OpOtherSyscall, 10),
		esc(0, monitor.EvRoutineEnter, 10, uint32(sw.ID)),
		[]bus.Txn{readex(0, pcb, 11)}, // CPU0 writes the PCB
		exitOS(0, 12),
		enterOS(1, kernel.OpOtherSyscall, 13),
		esc(1, monitor.EvRoutineEnter, 13, uint32(sw.ID)),
		[]bus.Txn{readex(1, pcb, 14)}, // CPU1 writes it → CPU0 invalid
		exitOS(1, 15),
		enterOS(0, kernel.OpOtherSyscall, 16),
		esc(0, monitor.EvRoutineEnter, 16, uint32(sw.ID)),
		[]bus.Txn{read(0, pcb, 17)}, // Sharing miss on the PCB in swtch
		exitOS(0, 18),
	)
	r := classify(t, txns)
	if r.MigrationTotal != 2 { // CPU1's readex was also a sharing...
		// CPU1's readex on a block it never held is Cold, not
		// sharing; only CPU0's re-read is a migration miss.
		if r.MigrationTotal != 1 {
			t.Fatalf("MigrationTotal = %d", r.MigrationTotal)
		}
	}
	if r.MigrationByStruct[FamilyUserStruct] == 0 {
		t.Errorf("migration struct attribution: %+v", r.MigrationByStruct)
	}
	if r.MigrationByGroup[kernel.GroupRunQueue] == 0 {
		t.Errorf("migration group attribution: %+v", r.MigrationByGroup)
	}
}

func TestUTLBMissesAttributedToCheapTLB(t *testing.T) {
	kt, _ := newEnv()
	utlb := kt.R("utlbmiss")
	txns := cat(
		// In an app stretch (no OS window): kernel-address miss = the
		// UTLB handler.
		esc(0, monitor.EvUTLB, 10, 5),
		[]bus.Txn{read(0, utlb.Addr, 11)},
	)
	r := classify(t, txns)
	if r.UTLBFaults != 1 {
		t.Errorf("UTLBFaults = %d", r.UTLBFaults)
	}
	if r.UTLBMisses != 1 {
		t.Errorf("UTLBMisses = %d", r.UTLBMisses)
	}
	if r.OpMisses[kernel.OpCheapTLB][1] != 1 {
		t.Errorf("cheap-TLB op attribution: %+v", r.OpMisses[kernel.OpCheapTLB])
	}
	// It still counts as an OS miss.
	if r.OSMissTotal != 1 {
		t.Errorf("OSMissTotal = %d", r.OSMissTotal)
	}
}

func TestIdleMissesExcluded(t *testing.T) {
	_, l := newEnv()
	txns := cat(
		enterOS(0, kernel.OpOtherSyscall, 10),
		esc(0, monitor.EvEnterIdle, 11),
		[]bus.Txn{read(0, l.RunQueue.Base, 12)}, // idle-loop poll miss
		esc(0, monitor.EvExitIdle, 13),
		exitOS(0, 14),
	)
	r := classify(t, txns)
	if r.IdleMisses != 1 {
		t.Errorf("IdleMisses = %d, want 1", r.IdleMisses)
	}
	if r.Total != 0 {
		t.Errorf("idle miss counted in totals: %d", r.Total)
	}
}

func TestBlockOpAttribution(t *testing.T) {
	kt, _ := newEnv()
	bc := kt.R("bcopy")
	userPage := arch.FrameAddr(kmem.FirstUserFrame + 8)
	txns := cat(
		enterOS(0, kernel.OpIOSyscall, 10),
		esc(0, monitor.EvRoutineEnter, 10, uint32(bc.ID)),
		[]bus.Txn{read(0, userPage, 11), readex(0, userPage+16, 12)},
		exitOS(0, 13),
	)
	r := classify(t, txns)
	if r.BlockOpDMisses["bcopy"] != 2 {
		t.Errorf("bcopy misses = %d, want 2", r.BlockOpDMisses["bcopy"])
	}
	if r.StructAll[kmem.AttrBcopy] != 2 {
		t.Errorf("Bcopy struct attribution = %+v", r.StructAll)
	}
	if r.OpMisses[kernel.OpIOSyscall][0] != 2 {
		t.Errorf("I/O op attribution: %+v", r.OpMisses[kernel.OpIOSyscall])
	}
}

func TestSegments(t *testing.T) {
	kt, _ := newEnv()
	a := kt.R("swtch").Addr
	txns := cat(
		enterOS(0, kernel.OpIOSyscall, 100),
		[]bus.Txn{read(0, a, 110)},
		exitOS(0, 200), // OS segment: 100 ticks = 200 cycles, 1 I-miss
		esc(0, monitor.EvUTLB, 250, 1),
		enterOS(0, kernel.OpInterrupt, 300), // app segment: 100 ticks
		esc(0, monitor.EvEnterIdle, 350),
		esc(0, monitor.EvExitIdle, 400),
		exitOS(0, 450),
		exitOS(0, 460), // dangling exit opens app; drop tail
	)
	r := classify(t, txns)
	segs := r.Segments[0]
	if len(segs) < 4 {
		t.Fatalf("got %d segments: %+v", len(segs), segs)
	}
	if segs[0].Kind != SegOS || segs[0].Cycles != 200 || segs[0].IMiss != 1 {
		t.Errorf("OS segment = %+v", segs[0])
	}
	if segs[1].Kind != SegApp || segs[1].Cycles != 200 || segs[1].UTLBs != 1 {
		t.Errorf("app segment = %+v", segs[1])
	}
	if segs[2].Kind != SegOS || segs[3].Kind != SegIdle {
		t.Errorf("segment kinds: %v %v", segs[2].Kind, segs[3].Kind)
	}
	// The idle piece shares the invocation id with its OS pieces.
	if segs[2].InvID != segs[3].InvID {
		t.Errorf("idle InvID %d != OS InvID %d", segs[3].InvID, segs[2].InvID)
	}
}

func TestDisposIByRoutine(t *testing.T) {
	kt, _ := newEnv()
	sw := kt.R("swtch")
	conflict := sw.Addr + arch.ICacheSize
	txns := cat(
		enterOS(0, kernel.OpOtherSyscall, 10),
		[]bus.Txn{read(0, sw.Addr, 11), read(0, conflict, 12), read(0, sw.Addr, 13)},
		exitOS(0, 14),
	)
	r := classify(t, txns)
	if r.DisposIByRoutine[sw.ID] != 1 {
		t.Errorf("Dispos by routine: %+v", r.DisposIByRoutine)
	}
}

func TestReusedWithinInvocation(t *testing.T) {
	kt, _ := newEnv()
	a := kt.R("swtch").Addr
	b := a + arch.ICacheSize
	txns := cat(
		enterOS(0, kernel.OpOtherSyscall, 10),
		// a filled, then b displaces it in the same invocation: the
		// set is refilled → reuse counter.
		[]bus.Txn{read(0, a, 11), read(0, b, 12)},
		exitOS(0, 13),
	)
	r := classify(t, txns)
	if r.ReusedWithinInvocation != 1 {
		t.Errorf("ReusedWithinInvocation = %d, want 1", r.ReusedWithinInvocation)
	}
}
