package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Client talks to a charosd server. Submission is idempotent by
// construction — the server content-addresses results by the canonical
// config hash — so the client retries shed (429), draining (503) and
// transport errors freely with capped exponential backoff plus jitter,
// honoring the server's Retry-After hint when one is given.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8416".
	Base string
	// HTTP is the transport (default http.DefaultClient).
	HTTP *http.Client
	// Retries is how many times a retryable submission is re-attempted
	// after the first try (default 8).
	Retries int
	// BaseDelay and MaxDelay bound the backoff: attempt n sleeps
	// BaseDelay<<n, capped at MaxDelay, with the upper half jittered
	// (defaults 100ms and 5s).
	BaseDelay time.Duration
	MaxDelay  time.Duration

	jitterMu sync.Mutex
	jitter   *rand.Rand
}

// RemoteError is a non-retryable server response (bad request, job
// failure reported in-band is NOT an error — see JobStatus).
type RemoteError struct {
	Code int
	Msg  string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("server: %d %s", e.Code, e.Msg)
}

func (c *Client) retries() int {
	if c.Retries < 0 {
		return 0
	}
	if c.Retries == 0 {
		return 8
	}
	return c.Retries
}

// backoff returns the sleep before re-attempt n (0-based), honoring a
// Retry-After hint as the floor when given.
func (c *Client) backoff(n int, retryAfter time.Duration) time.Duration {
	base := c.BaseDelay
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	max := c.MaxDelay
	if max <= 0 {
		max = 5 * time.Second
	}
	d := base << uint(n)
	if d > max || d <= 0 {
		d = max
	}
	// Decorrelate the fleet: keep the lower half, jitter the upper half.
	c.jitterMu.Lock()
	if c.jitter == nil {
		c.jitter = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	d = d/2 + time.Duration(c.jitter.Int63n(int64(d/2)+1))
	c.jitterMu.Unlock()
	if retryAfter > d {
		d = retryAfter
	}
	return d
}

// Submit posts the request with wait=1 and returns the job's terminal
// status. Shed (429), draining (503) and transport failures are retried
// with backoff until ctx expires or the retry budget runs out; a job
// that ran but failed comes back with a terminal JobStatus (State
// "failed"/"canceled") and a nil error — inspect State/ErrorKind.
func (c *Client) Submit(ctx context.Context, req Request) (JobStatus, error) {
	return c.submit(ctx, req, true)
}

// SubmitAsync posts the request without waiting and returns the accepted
// job's status (State "queued" or "running"). Same retry semantics as
// Submit.
func (c *Client) SubmitAsync(ctx context.Context, req Request) (JobStatus, error) {
	return c.submit(ctx, req, false)
}

func (c *Client) submit(ctx context.Context, req Request, wait bool) (JobStatus, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return JobStatus{}, err
	}
	url := c.Base + "/v1/jobs"
	if wait {
		url += "?wait=1"
	}
	return c.withRetry(ctx, func(ctx context.Context) (JobStatus, time.Duration, error) {
		return c.post(ctx, url, body)
	})
}

// withRetry drives one request function through the client's capped,
// jittered backoff loop, honoring Retry-After. Transport errors, 429 and
// 503 retry; any other server response (400, 404, …) returns at once.
func (c *Client) withRetry(ctx context.Context, do func(context.Context) (JobStatus, time.Duration, error)) (JobStatus, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		st, retryAfter, err := do(ctx)
		if err == nil {
			return st, nil
		}
		lastErr = err
		var remote *RemoteError
		if errors.As(err, &remote) &&
			remote.Code != http.StatusTooManyRequests &&
			remote.Code != http.StatusServiceUnavailable {
			return JobStatus{}, err // not retryable (e.g. 400)
		}
		if attempt >= c.retries() {
			return JobStatus{}, fmt.Errorf("gave up after %d attempts: %w", attempt+1, lastErr)
		}
		select {
		case <-time.After(c.backoff(attempt, retryAfter)):
		case <-ctx.Done():
			return JobStatus{}, context.Cause(ctx)
		}
	}
}

// Wait blocks until the job is terminal and returns its status. Like
// Submit, it retries transport blips, 429 and 503 with the same capped,
// jittered backoff — the job keeps running server-side, so giving up on
// the first long-poll hiccup would orphan it.
func (c *Client) Wait(ctx context.Context, id string) (JobStatus, error) {
	return c.Status(ctx, id, true)
}

// Status fetches one job's status, optionally long-polling until it is
// terminal, with the client's standard retry loop.
func (c *Client) Status(ctx context.Context, id string, wait bool) (JobStatus, error) {
	url := c.Base + "/v1/jobs/" + id
	if wait {
		url += "?wait=1"
	}
	return c.withRetry(ctx, func(ctx context.Context) (JobStatus, time.Duration, error) {
		return c.get(ctx, url)
	})
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) post(ctx context.Context, url string, body []byte) (JobStatus, time.Duration, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return JobStatus{}, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req)
}

func (c *Client) get(ctx context.Context, url string) (JobStatus, time.Duration, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return JobStatus{}, 0, err
	}
	return c.do(req)
}

func (c *Client) do(req *http.Request) (JobStatus, time.Duration, error) {
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return JobStatus{}, 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return JobStatus{}, 0, err
	}
	if resp.StatusCode >= 400 {
		var eb errorBody
		msg := string(raw)
		if json.Unmarshal(raw, &eb) == nil && eb.Error != "" {
			msg = eb.Error
		}
		var retryAfter time.Duration
		if sec, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
			retryAfter = time.Duration(sec) * time.Second
		}
		return JobStatus{}, retryAfter, &RemoteError{Code: resp.StatusCode, Msg: msg}
	}
	var st JobStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		return JobStatus{}, 0, fmt.Errorf("bad server response: %w", err)
	}
	return st, 0, nil
}
