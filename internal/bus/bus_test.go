package bus

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/cache"
)
// testMachine returns the default machine with n CPUs, for tests that vary
// only the processor count.
func testMachine(n int) arch.Machine {
	m := arch.Default()
	m.NCPU = n
	return m
}


// recSink captures transactions for assertions.
type recSink struct{ txns []Txn }

func (r *recSink) Record(t Txn) { r.txns = append(r.txns, t) }

func (r *recSink) kinds() []TxnKind {
	out := make([]TxnKind, len(r.txns))
	for i, t := range r.txns {
		out[i] = t.Kind
	}
	return out
}

func TestFetchMissAndHit(t *testing.T) {
	rec := &recSink{}
	s := NewSystem(testMachine(2), rec)
	out := s.Fetch(0, 0x1004, 100)
	if !out.Missed || out.Stall != arch.MissStallCycles {
		t.Fatalf("first fetch: %+v, want miss with 35-cycle stall", out)
	}
	if out = s.Fetch(0, 0x1008, 101); out.Missed {
		t.Fatalf("same-block fetch missed: %+v", out)
	}
	if len(rec.txns) != 1 || rec.txns[0].Kind != TxnRead || rec.txns[0].Addr != 0x1000 {
		t.Fatalf("recorded %+v, want one block-aligned read", rec.txns)
	}
	if rec.txns[0].Ticks != 50 {
		t.Errorf("ticks = %d, want 50 (100 cycles / 2)", rec.txns[0].Ticks)
	}
}

func TestICachePrivacy(t *testing.T) {
	s := NewSystem(testMachine(2), nil)
	s.Fetch(0, 0x1000, 0)
	if out := s.Fetch(1, 0x1000, 1); !out.Missed {
		t.Error("CPU 1 should miss on a block only in CPU 0's I-cache")
	}
}

func TestReadSharingStates(t *testing.T) {
	s := NewSystem(testMachine(2), nil)
	a := arch.PAddr(0x2000)
	s.Read(0, a, 0)
	if s.D[0].L2.Shared(a) {
		t.Error("sole copy should be Exclusive, not Shared")
	}
	s.Read(1, a, 1)
	if !s.D[0].L2.Shared(a) || !s.D[1].L2.Shared(a) {
		t.Error("both copies should be Shared after second reader")
	}
}

func TestWriteMissInvalidatesRemote(t *testing.T) {
	rec := &recSink{}
	s := NewSystem(testMachine(2), rec)
	a := arch.PAddr(0x3000)
	s.Read(1, a, 0) // CPU 1 caches it
	out := s.Write(0, a, 1)
	if !out.Missed {
		t.Fatalf("write by non-holder should miss: %+v", out)
	}
	if s.D[1].Resident(a) {
		t.Error("remote copy not invalidated by ReadEx")
	}
	// CPU 1 re-reads: misses (this is what the classifier will call a
	// Sharing miss) and the dirty copy at CPU 0 must be supplied clean.
	out = s.Read(1, a, 2)
	if !out.Missed {
		t.Fatal("post-invalidation read should miss")
	}
	if s.D[0].L2.Dirty(a) {
		t.Error("supplier should revert to clean on remote read")
	}
	if !s.D[0].L2.Shared(a) || !s.D[1].L2.Shared(a) {
		t.Error("both copies should be Shared after read of dirty block")
	}
}

func TestWriteHitSharedUpgrades(t *testing.T) {
	rec := &recSink{}
	s := NewSystem(testMachine(2), rec)
	a := arch.PAddr(0x4000)
	s.Read(0, a, 0)
	s.Read(1, a, 1) // both Shared now
	rec.txns = nil
	out := s.Write(0, a, 2)
	if out.Missed || !out.Upgraded {
		t.Fatalf("write hit on Shared: %+v, want upgrade", out)
	}
	if len(rec.txns) != 1 || rec.txns[0].Kind != TxnUpgrade {
		t.Fatalf("recorded %v, want one upgrade", rec.kinds())
	}
	if s.D[1].Resident(a) {
		t.Error("remote copy survived upgrade")
	}
	// Subsequent writes by the owner are silent (Modified).
	rec.txns = nil
	if out := s.Write(0, a, 3); out.Upgraded || out.Missed {
		t.Errorf("write on Modified should be silent: %+v", out)
	}
	if len(rec.txns) != 0 {
		t.Errorf("unexpected transactions: %v", rec.kinds())
	}
}

func TestWriteHitExclusiveIsSilent(t *testing.T) {
	rec := &recSink{}
	s := NewSystem(testMachine(2), rec)
	a := arch.PAddr(0x5000)
	s.Read(0, a, 0) // Exclusive (no other holder)
	rec.txns = nil
	out := s.Write(0, a, 1)
	if out.Missed || out.Upgraded || len(rec.txns) != 0 {
		t.Errorf("write on Exclusive should be silent: %+v, txns %v", out, rec.kinds())
	}
}

func TestWriteBackOnDirtyEviction(t *testing.T) {
	rec := &recSink{}
	s := NewSystem(testMachine(1), rec)
	a := arch.PAddr(0x6000)
	s.Write(0, a, 0) // dirty fill
	rec.txns = nil
	// Evict from L2: same set at stride = L2 size.
	b := a + arch.PAddr(arch.DCacheL2Size)
	s.Read(0, b, 1)
	var sawWB bool
	for _, txn := range rec.txns {
		if txn.Kind == TxnWriteBack && txn.Addr == a.Block() {
			sawWB = true
		}
	}
	if !sawWB {
		t.Errorf("no write-back recorded for dirty eviction; txns %v", rec.kinds())
	}
}

func TestL2HitStall(t *testing.T) {
	s := NewSystem(testMachine(1), nil)
	a := arch.PAddr(0x7000)
	s.Read(0, a, 0)
	// Displace from L1 only.
	s.Read(0, a+arch.PAddr(arch.DCacheL1Size), 1)
	out := s.Read(0, a, 2)
	if !out.L2Hit || out.Stall != arch.L1MissL2HitCycles || out.Missed {
		t.Errorf("L2 hit outcome = %+v, want 15-cycle non-bus stall", out)
	}
}

func TestUncached(t *testing.T) {
	rec := &recSink{}
	s := NewSystem(testMachine(1), rec)
	out := s.Uncached(0, 0x8001, 10, true)
	if out.Stall != 0 {
		t.Errorf("stall-free uncached stalled: %+v", out)
	}
	out = s.Uncached(0, 0x8002, 11, false)
	if out.Stall != arch.MissStallCycles {
		t.Errorf("uncached device read should stall: %+v", out)
	}
	if len(rec.txns) != 2 || rec.txns[0].Kind != TxnUncached {
		t.Fatalf("recorded %v", rec.kinds())
	}
	// Uncached accesses never enter the caches.
	if s.D[0].Resident(0x8000) {
		t.Error("uncached access polluted the data cache")
	}
}

func TestInvalidateCodeFrameFlushesEverything(t *testing.T) {
	// The machine has no selective I-cache invalidation: a code-page
	// reallocation flushes the whole I-cache on every CPU.
	s := NewSystem(testMachine(2), nil)
	f := uint32(12)
	base := arch.FrameAddr(f)
	other := arch.PAddr(0x40000) // unrelated code
	for i := 0; i < 8; i++ {
		s.Fetch(0, base+arch.PAddr(i*arch.BlockSize), 0)
		s.Fetch(1, base+arch.PAddr(i*arch.BlockSize), 0)
	}
	s.Fetch(0, other, 0)
	if n := s.InvalidateCodeFrame(f); n != 17 {
		t.Errorf("InvalidateCodeFrame = %d, want 17 (total flush)", n)
	}
	if out := s.Fetch(0, base, 1); !out.Missed {
		t.Error("fetch after flush should miss")
	}
	if out := s.Fetch(0, other, 1); !out.Missed {
		t.Error("unrelated code must also miss after the total flush")
	}
	// Data caches are unaffected (snooping keeps them coherent).
	s.Read(0, 0x9000, 2)
	s.InvalidateCodeFrame(f)
	if out := s.Read(0, 0x9000, 3); out.Missed {
		t.Error("data cache was flushed by I-cache invalidation")
	}
}

func TestStatsTransactions(t *testing.T) {
	s := NewSystem(testMachine(2), nil)
	s.Fetch(0, 0x100, 0)  // read
	s.Read(0, 0x9000, 1)  // read
	s.Write(1, 0x9000, 2) // readex
	s.Read(0, 0x9000, 3)  // read (sharing refetch)
	s.Write(0, 0x9000, 4) // upgrade (shared after refetch)
	s.Uncached(0, 0x11, 5, true)
	st := s.Stats
	if st.Reads != 3 || st.ReadExs != 1 || st.Upgrades != 1 || st.Uncacheds != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.Transactions() != 6 {
		t.Errorf("Transactions() = %d, want 6", st.Transactions())
	}
}

// Property-like sweep: after any interleaving of reads/writes by two CPUs
// to a small address pool, at most one cache holds any block dirty, and a
// dirty copy is never Shared.
func TestCoherenceInvariant(t *testing.T) {
	s := NewSystem(testMachine(3), nil)
	addrs := []arch.PAddr{0x100, 0x200, 0x300, 0x100 + arch.PAddr(arch.DCacheL2Size)}
	ops := 0
	for i := 0; i < 4000; i++ {
		c := arch.CPUID(i % 3)
		a := addrs[(i*7)%len(addrs)]
		if (i*13)%3 == 0 {
			s.Write(c, a, arch.Cycles(i))
		} else {
			s.Read(c, a, arch.Cycles(i))
		}
		ops++
		for _, ad := range addrs {
			dirtyHolders := 0
			for q := 0; q < s.N; q++ {
				if s.D[q].L2.Dirty(ad) {
					dirtyHolders++
					if s.D[q].L2.Shared(ad) {
						t.Fatalf("op %d: CPU %d holds %#x dirty AND shared", i, q, ad)
					}
				}
			}
			if dirtyHolders > 1 {
				t.Fatalf("op %d: %d dirty holders of %#x", i, dirtyHolders, ad)
			}
		}
	}
	_ = ops
}

func TestCacheGeometryOfSystem(t *testing.T) {
	s := NewSystem(testMachine(4), nil)
	if len(s.I) != 4 || len(s.D) != 4 {
		t.Fatal("wrong CPU count")
	}
	if s.I[0].Size() != arch.ICacheSize || s.I[0].Assoc() != 1 {
		t.Error("I-cache geometry wrong")
	}
	if s.D[0].L1.Size() != arch.DCacheL1Size || s.D[0].L2.Size() != arch.DCacheL2Size {
		t.Error("D-cache geometry wrong")
	}
	var _ *cache.Cache = s.D[0].L2
}

func TestBypassTransfers(t *testing.T) {
	rec := &recSink{}
	s := NewSystem(testMachine(2), rec)
	a := arch.PAddr(0x9000)
	// CPU 1 caches the block; a bypass write must invalidate it without
	// filling CPU 0's cache.
	s.Read(1, a, 0)
	out := s.Bypass(0, a, 4, true, 1)
	if !out.Missed || out.Stall != arch.MissStallCycles {
		t.Fatalf("bypass outcome %+v", out)
	}
	if s.D[1].Resident(a) {
		t.Error("bypass write left a stale remote copy")
	}
	if s.D[0].Resident(a) {
		t.Error("bypass filled the local cache")
	}
	// The monitor sees one uncached, block-aligned transaction.
	last := rec.txns[len(rec.txns)-1]
	if last.Kind != TxnUncached || last.Addr%arch.BlockSize != 0 {
		t.Errorf("bypass txn = %+v", last)
	}
	// A burst invalidates its whole extent.
	s.Read(1, a+16, 2)
	s.Read(1, a+48, 3)
	s.Bypass(0, a, 4, true, 4)
	if s.D[1].Resident(a+16) || s.D[1].Resident(a+48) {
		t.Error("burst bypass missed blocks in its extent")
	}
	// Reads do not invalidate.
	s.Read(1, a, 5)
	s.Bypass(0, a, 1, false, 6)
	if !s.D[1].Resident(a) {
		t.Error("bypass read invalidated a remote copy")
	}
}

func TestWriteUpdateProtocol(t *testing.T) {
	rec := &recSink{}
	s := NewSystem(testMachine(2), rec)
	s.Proto = WriteUpdate
	a := arch.PAddr(0xA000)
	s.Read(0, a, 0)
	s.Read(1, a, 1) // both shared
	rec.txns = nil
	out := s.Write(0, a, 2)
	if !out.Upgraded || out.Missed {
		t.Fatalf("shared write under update: %+v", out)
	}
	if len(rec.txns) != 1 || rec.txns[0].Kind != TxnUpdate {
		t.Fatalf("recorded %v, want one update broadcast", rec.kinds())
	}
	// The remote copy SURVIVES (no sharing miss on re-read).
	if !s.D[1].Resident(a) {
		t.Fatal("update protocol invalidated the remote copy")
	}
	if out := s.Read(1, a, 3); out.Missed {
		t.Error("re-read after update should hit (no sharing miss)")
	}
	// But every subsequent shared write pays a bus transaction.
	rec.txns = nil
	s.Write(0, a, 4)
	s.Write(0, a, 5)
	if len(rec.txns) != 2 {
		t.Errorf("each shared write should broadcast; got %v", rec.kinds())
	}
	// Write miss with a remote holder: one combined fetch-and-broadcast.
	b := arch.PAddr(0xB000)
	s.Read(1, b, 6)
	rec.txns = nil
	if out := s.Write(0, b, 7); !out.Missed {
		t.Fatal("write miss expected")
	}
	if len(rec.txns) != 1 || rec.txns[0].Kind != TxnUpdate {
		t.Errorf("write-miss broadcast: %v", rec.kinds())
	}
	if !s.D[1].Resident(b) {
		t.Error("remote copy should survive the write-miss broadcast")
	}
}
