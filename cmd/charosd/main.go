// Command charosd is the experiment service: an HTTP/JSON server that
// runs deterministic characterization jobs submitted by clients, with
// cooperative cancellation, per-run panic isolation, a progress
// watchdog, bounded admission (429 + Retry-After under saturation), a
// content-addressed result cache with singleflight dedup, and a
// SIGTERM-triggered drain that resolves every accepted job before the
// process exits.
//
// Server mode:
//
//	charosd [-addr :8416] [-workers N] [-workers-max N] [-queue N]
//	        [-sim-workers N] [-max-total-workers N]
//	        [-shards N] [-cache-entries N] [-job-history N]
//	        [-job-timeout D] [-stall-timeout D]
//	        [-drain-policy finish|cancel] [-drain-timeout D]
//	        [-retry-after D] [-test-hooks]
//
// The result store is sharded (-shards, power of two) with a bounded
// per-shard LRU over completed results (-cache-entries total); GET
// /v1/metrics exposes per-shard and global hit/miss/eviction counters
// plus p50/p90/p99 submit-to-terminal latency and throughput, and a
// per-job list with each run's simulated-Mcycles/s and intra-run worker
// count. With -workers-max above -workers an adaptive manager grows and
// shrinks the worker pool between the two on queue-depth and p99
// thresholds. Jobs run the conservative parallel engine when
// -sim-workers > 1 (output is byte-identical either way);
// -max-total-workers clamps per-job intra-run parallelism so pool ×
// sim workers never oversubscribes the budget.
//
// Client mode (submit one job and wait):
//
//	charosd -submit [-addr host:port] [-workload Pmake] [-seed N]
//	        [-window N] [-warmup N] [-sample W:L:P] [-ncpu N]
//	        [-machine 4d340|4d380] [-check] [-sim-workers N]
//	        [-timeout D] [-retries N] [-nowait] [-test-panic]
//
// Load-generator mode (fire N concurrent clients and report):
//
//	charosd -load N [-addr host:port] [-workload Pmake] [-window N]
//	        [-warmup N] [-load-hot K] [-load-distinct K]
//
// Submission is idempotent: results are content-addressed by the
// canonical config hash, so a client that was shed (or lost its
// connection) simply resubmits — with capped exponential backoff and
// jitter — and lands on the cached result if the run already happened.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/machineflag"
	"repro/internal/service"
)

func main() { os.Exit(run()) }

func run() int {
	addr := flag.String("addr", ":8416", "listen address (server) or server address (with -submit)")
	workers := flag.Int("workers", 0, "worker-pool size, or the adaptive floor with -workers-max (0 = GOMAXPROCS)")
	workersMax := flag.Int("workers-max", 0, "adaptive worker ceiling; 0 or <= -workers keeps a fixed pool")
	simWorkers := flag.Int("sim-workers", 1,
		"server: default intra-run worker count per job (conservative parallel engine; 1 = serial); client: the job's requested count")
	maxTotal := flag.Int("max-total-workers", 0,
		"cap on pool workers × per-job sim workers: per-job intra-run parallelism is clamped to fit (0 = no cap)")
	shards := flag.Int("shards", 8, "result-store shard count (rounded up to a power of two)")
	cacheEntries := flag.Int("cache-entries", 4096, "completed results resident across all shards before LRU eviction")
	jobHistory := flag.Int("job-history", 4096, "terminal jobs retained in the registry; older IDs return 404")
	queue := flag.Int("queue", 64, "admission-queue depth; beyond it submissions shed with 429")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint advertised on shed")
	jobTimeout := flag.Duration("job-timeout", 0, "default per-job wall-clock cap (0 = none)")
	stallTimeout := flag.Duration("stall-timeout", 10*time.Second,
		"watchdog: kill runs whose simulated-cycle heartbeat stalls this long (<0 disables)")
	drainPolicy := flag.String("drain-policy", "finish",
		"SIGTERM drain policy: finish (run accepted jobs to completion) or cancel")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second,
		"drain hard deadline; past it in-flight runs are force-canceled (still resolved)")
	testHooks := flag.Bool("test-hooks", false, "enable test hooks (test_panic jobs) — never in production")

	submit := flag.Bool("submit", false, "client mode: submit one job and print its report")
	wl := flag.String("workload", "Pmake", "job workload: Pmake, Multpgm, Oracle, OracleStd")
	machine := flag.String("machine", "", "job machine preset: 4d340 (default), 4d380")
	ncpu := flag.Int("ncpu", 0, "job CPU count (0 = preset's count)")
	seed := flag.Int64("seed", 1, "job seed")
	window := machineflag.CyclesFlag(flag.CommandLine, "window", 0,
		"job traced window in 30ns cycles, K/M/G suffixes ok (0 = default)")
	warmup := machineflag.CyclesFlag(flag.CommandLine, "warmup", 0,
		"job warmup in 30ns cycles, K/M/G suffixes ok (0 = default)")
	sampleSpec := flag.String("sample", "",
		"job sampling schedule \"warmup:len:period\" in cycles (e.g. 100K:200K:10M); empty = full-detail run")
	checkFlag := flag.Bool("check", false, "run the job under the invariant checker")
	timeout := flag.Duration("timeout", 0, "client: job + wait deadline (0 = none); sent as the job's budget")
	retries := flag.Int("retries", 0, "client: retry budget after shed/transport errors (0 = default 8, negative = none)")
	nowait := flag.Bool("nowait", false, "client: return after admission instead of waiting for the result")
	testPanic := flag.Bool("test-panic", false, "client: submit a job that panics mid-run (server must run -test-hooks)")
	load := flag.Int("load", 0, "load-generator mode: fire N concurrent clients at the server and report")
	loadHot := flag.Int("load-hot", 4, "load mode: distinct hot configs shared by 3/4 of the clients (dedup path)")
	loadDistinct := flag.Int("load-distinct", 16, "load mode: distinct cold configs spread over the rest (eviction path)")
	flag.Parse()

	if *load > 0 {
		return loadMain(*addr, *load, *loadHot, *loadDistinct, service.Request{
			Workload: *wl, Machine: *machine, NCPU: *ncpu,
			Window: *window, Warmup: *warmup, Sample: *sampleSpec,
		})
	}
	if *submit {
		return clientMain(*addr, service.Request{
			Workload: *wl, Machine: *machine, NCPU: *ncpu, Seed: *seed,
			Window: *window, Warmup: *warmup, Check: *checkFlag,
			Sample:     *sampleSpec,
			SimWorkers: *simWorkers,
			TimeoutMS:  int64(*timeout / time.Millisecond), TestPanic: *testPanic,
		}, *timeout, *retries, *nowait)
	}

	if *drainPolicy != "finish" && *drainPolicy != "cancel" {
		fmt.Fprintf(os.Stderr, "bad -drain-policy %q (want finish or cancel)\n", *drainPolicy)
		return 2
	}
	logger := log.New(os.Stderr, "charosd: ", log.LstdFlags|log.Lmicroseconds)
	srv := service.New(service.Options{
		Workers: *workers, MaxWorkers: *workersMax,
		SimWorkers: *simWorkers, MaxTotalWorkers: *maxTotal,
		Shards: *shards, CacheEntries: *cacheEntries, JobHistory: *jobHistory,
		QueueDepth: *queue, RetryAfter: *retryAfter,
		JobTimeout: *jobTimeout, StallTimeout: *stallTimeout,
		DrainFinish: *drainPolicy == "finish", DrainTimeout: *drainTimeout,
		TestHooks: *testHooks,
		Logf:      logger.Printf,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	logger.Printf("serving on %s (workers=%d..%d shards=%d cache=%d history=%d queue=%d drain=%s/%s)",
		ln.Addr(), *workers, *workersMax, *shards, *cacheEntries, *jobHistory,
		*queue, *drainPolicy, *drainTimeout)

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	select {
	case got := <-sig:
		logger.Printf("signal %v: draining", got)
		// Keep serving status/wait requests while the drain resolves the
		// accepted jobs, then shut the listener down gracefully.
		srv.Drain()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx)
		logger.Printf("exit")
		return 0
	case err := <-serveErr:
		if !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}
}

// clientMain submits one job and renders the outcome. Exit codes: 0 job
// done, 1 job failed/canceled (structured error printed), 2 bad usage,
// 3 could not submit (shed/unreachable after retries).
func clientMain(addr string, req service.Request, timeout time.Duration, retries int, nowait bool) int {
	base := addr
	if len(base) > 0 && base[0] == ':' {
		base = "127.0.0.1" + base
	}
	cl := &service.Client{Base: "http://" + base, Retries: retries}
	ctx := context.Background()
	if timeout > 0 {
		// Leave headroom over the job budget so the structured job error
		// (provenance) reaches us rather than a raw client deadline.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout+30*time.Second)
		defer cancel()
	}
	var st service.JobStatus
	var err error
	if nowait {
		st, err = cl.SubmitAsync(ctx, req)
	} else {
		st, err = cl.Submit(ctx, req)
	}
	if err != nil {
		var remote *service.RemoteError
		if errors.As(err, &remote) && remote.Code == http.StatusBadRequest {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "submit failed: %v\n", err)
		return 3
	}
	if nowait {
		fmt.Printf("accepted %s state=%s hash=%s\n", st.ID, st.State, st.Hash)
		return 0
	}
	switch st.State {
	case service.StateDone:
		fmt.Print(st.Report)
		return 0
	default:
		fmt.Fprintf(os.Stderr, "job %s %s (%s): %s\n", st.ID, st.State, st.ErrorKind, st.Error)
		return 1
	}
}

// loadMain is the load-generator: n concurrent clients hammer the server
// over real HTTP with a mix of duplicate hot configs (the dedup path)
// and distinct cold ones (the eviction path), retrying sheds per
// Retry-After. It counts raw status codes and fails if anything but
// 200 (terminal job) or 429 (shed, retried) ever comes back, or if any
// job resolves to a state other than "done". Exit codes: 0 all clients
// landed, 1 bad responses or unfinished jobs, 3 transport failure.
func loadMain(addr string, n, hot, distinct int, base service.Request) int {
	host := addr
	if len(host) > 0 && host[0] == ':' {
		host = "127.0.0.1" + host
	}
	url := "http://" + host + "/v1/jobs?wait=1"
	if hot < 1 {
		hot = 1
	}
	if distinct < 1 {
		distinct = 1
	}
	tr := &http.Transport{MaxIdleConnsPerHost: 128, MaxConnsPerHost: 256}
	hc := &http.Client{Transport: tr}
	defer tr.CloseIdleConnections()

	var ok200, shed429, badCode, badState, transport atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < n; i++ {
		req := base
		if i%4 != 0 {
			req.Seed = 1 + int64(i%hot) // duplicate traffic: dedup/singleflight
		} else {
			req.Seed = 100_000 + int64(i%distinct) // cold traffic: LRU churn
		}
		body, err := json.Marshal(req)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 3
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for attempt := 0; ; attempt++ {
				resp, err := hc.Post(url, "application/json", bytes.NewReader(body))
				if err != nil {
					transport.Add(1)
					return
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					ok200.Add(1)
					var st service.JobStatus
					if json.Unmarshal(raw, &st) != nil || st.State != service.StateDone {
						badState.Add(1)
					}
					return
				case http.StatusTooManyRequests:
					shed429.Add(1)
					if attempt > 200 {
						badCode.Add(1) // never landed
						return
					}
					after := time.Second
					if sec, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && sec > 0 {
						after = time.Duration(sec) * time.Second
					}
					time.Sleep(after/2 + time.Duration(i%97)*time.Millisecond)
				default:
					badCode.Add(1)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	fmt.Printf("load: %d clients in %.1fs — %d done, %d sheds retried, %d bad codes, %d bad states, %d transport errors\n",
		n, time.Since(start).Seconds(), ok200.Load(), shed429.Load(),
		badCode.Load(), badState.Load(), transport.Load())
	if badCode.Load() > 0 || badState.Load() > 0 || transport.Load() > 0 || ok200.Load() != int64(n) {
		return 1
	}
	return 0
}
