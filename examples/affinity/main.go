// Affinity ablation: the paper proposes cache-affinity scheduling to
// reduce migration misses (Section 4.2.2). This example runs Multpgm with
// the default global run queue and again with affinity scheduling, and
// compares migrations, migration misses, and the OS stall time.
//
//	go run ./examples/affinity
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/workload"
)

func run(affinity bool) *core.Characterization {
	return core.Run(core.Config{
		Workload: workload.Multpgm,
		Window:   12_000_000,
		Seed:     1,
		Affinity: affinity,
	})
}

func main() {
	base := run(false)
	aff := run(true)

	fmt.Printf("Cache-affinity scheduling ablation (Multpgm)\n\n")
	fmt.Printf("%-34s %12s %12s\n", "", "default", "affinity")
	row := func(name string, a, b interface{}) {
		fmt.Printf("%-34s %12v %12v\n", name, a, b)
	}
	row("process migrations", base.Ops.Migrations, aff.Ops.Migrations)
	row("context switches", base.Ops.CtxSwitches, aff.Ops.CtxSwitches)
	row("migration misses", base.Trace.MigrationTotal, aff.Trace.MigrationTotal)
	f := func(v float64) string { return fmt.Sprintf("%.2f%%", v) }
	row("migration-miss stall", f(base.MigrationStallPct()), f(aff.MigrationStallPct()))
	_, osBase, indBase := base.StallPct()
	_, osAff, indAff := aff.StallPct()
	row("OS miss stall", f(osBase), f(osAff))
	row("OS + OS-induced stall", f(indBase), f(indAff))

	du, ds, di := base.TimeSplit()
	au, as, ai := aff.TimeSplit()
	row("user/sys/idle", fmt.Sprintf("%.0f/%.0f/%.0f", du, ds, di),
		fmt.Sprintf("%.0f/%.0f/%.0f", au, as, ai))

	fmt.Printf("\n→ affinity keeps processes on their last CPU when possible, cutting\n")
	fmt.Printf("  the sharing misses on kernel stacks, user structures and process\n")
	fmt.Printf("  table entries — while still migrating for load balance.\n")
}
