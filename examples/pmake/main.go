// Pmake study: reproduce the software-development-workload analysis of
// the paper — the OS invocation pattern (Figure 1), the per-invocation
// miss distributions (Figure 3), the block-operation breakdown (Tables 6
// and 7), and where OS code interferes with itself in the I-cache
// (Figure 5).
//
//	go run ./examples/pmake
package main

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/kmem"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	ch := core.Run(core.Config{
		Workload: workload.Pmake,
		Window:   12_000_000,
		Seed:     1,
	})

	// Figure 1: the repeating App → OS → (idle) pattern.
	st := ch.Invocations()
	fmt.Printf("The basic repeating pattern (Figure 1):\n")
	fmt.Printf("  OS invocation:  %6.0f cycles, %5.1f I-misses, %5.1f D-misses\n",
		st.OSAvgCycles, st.OSAvgIMiss, st.OSAvgDMiss)
	fmt.Printf("  idle loop:      %6.0f cycles on average when entered\n", st.IdleAvgCycles)
	fmt.Printf("  app stretch:    %6.0f cycles, %4.1f UTLB faults (%.2f misses each)\n",
		st.AppAvgCycles, st.AppAvgUTLBs, st.UTLBMissPerFault)
	fmt.Printf("  OS invoked every %.2f ms per CPU (paper: 1.9 ms)\n\n", st.MsBetweenInvocations)

	// Figure 3: per-invocation distributions.
	imiss := metrics.NewHistogram(10, 50, 100, 200, 400, 800)
	for _, segs := range ch.Trace.Segments {
		for _, s := range segs {
			if s.Kind == trace.SegOS {
				imiss.Add(float64(s.IMiss))
			}
		}
	}
	fmt.Print(imiss.Render("I-misses per OS invocation piece (Figure 3a)"))
	fmt.Println()

	// Block operations (Tables 6/7): the copies and clears the compile
	// jobs cause, and their sizes.
	ops := ch.Sim.K.BlockOpsSince(ch.Sim.BaseCounters)
	byWhy := map[string]int{}
	for _, op := range ops {
		byWhy[op.Why]++
	}
	var whys []string
	for w := range byWhy {
		whys = append(whys, w)
	}
	sort.Slice(whys, func(i, j int) bool { return byWhy[whys[i]] > byWhy[whys[j]] })
	fmt.Printf("Block operations by cause (Table 7's examples column):\n")
	for _, w := range whys {
		fmt.Printf("  %-32s %6d\n", w, byWhy[w])
	}
	var osD int64
	for cl := trace.MissClass(0); cl < trace.NumClasses; cl++ {
		osD += ch.Trace.Counts[1][0][cl]
	}
	fmt.Printf("Block-op share of OS data misses: copy %.1f%%, clear %.1f%%, pfdat traversal %.1f%% (Table 6)\n\n",
		metrics.PctOf(ch.Trace.BlockOpDMisses[kmem.RoutineBcopy], osD),
		metrics.PctOf(ch.Trace.BlockOpDMisses[kmem.RoutineBclear], osD),
		metrics.PctOf(ch.Trace.BlockOpDMisses[kmem.RoutineVhand], osD))

	// Figure 5: which routines self-interfere in the I-cache.
	kt := ch.Sim.K.T
	type ent struct {
		r *kernel.Routine
		n int64
	}
	var ents []ent
	for id, n := range ch.Trace.DisposIByRoutine {
		ents = append(ents, ent{kt.ByID(id), n})
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].n > ents[j].n })
	icache := ch.Cfg.Machine.ICacheSize
	fmt.Printf("Top self-interference (Dispos) routines, X in I-cache multiples (Figure 5):\n")
	for i, e := range ents {
		if i == 8 {
			break
		}
		fmt.Printf("  %-16s at %.2f×%dKB  %6d misses\n",
			e.r.Name, float64(e.r.Addr)/float64(icache), icache/1024, e.n)
	}
}
