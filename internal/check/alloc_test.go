package check_test

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/check"
)

// flatView is a minimal BusView: CPU 0 always holds the block clean and
// exclusive. It keeps the allocation measurement about the checker itself,
// not the cache complex behind it.
type flatView struct{ n int }

func (v flatView) NCPUs() int { return v.n }
func (v flatView) DState(cpu int, a arch.PAddr) (resident, dirty, shared bool) {
	return cpu == 0, false, false
}
func (v flatView) L1Resident(cpu int, a arch.PAddr) bool { return false }

// TestShadowUpdateZeroAlloc pins the checker's allocation contract: after a
// page's first touch (which allocates its shadow page and copy tables),
// every subsequent data reference and instruction fetch must update the
// shadow state without allocating. The checker runs on the same per-event
// hot path as the streaming classifier.
func TestShadowUpdateZeroAlloc(t *testing.T) {
	k := check.New(flatView{4}, arch.MemFrames)
	const a = arch.PAddr(0x4000)
	const code = arch.PAddr(0x8000)
	// Warm up: first touch allocates the shadow pages and copy tables.
	k.OnData(0, a, true, check.LevelFill, 1)
	k.OnFetch(0, code, false, 1)
	avg := testing.AllocsPerRun(1000, func() {
		k.OnData(0, a, true, check.LevelL1, 2)
		k.OnData(0, a, false, check.LevelL1, 3)
		k.OnFetch(0, code, true, 4)
	})
	if avg != 0 {
		t.Errorf("shadow update allocates %.1f objects per event in steady state; want 0", avg)
	}
	if k.Violations != 0 {
		t.Fatalf("legal sequence tripped the checker: %v", k.Errors()[0])
	}
}
