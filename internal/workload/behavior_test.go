package workload

import (
	"testing"

	"repro/internal/kernel"
	"repro/internal/klock"
)

func testKernel() *kernel.Kernel {
	return kernel.New(kernel.Config{Seed: 2, PrefillCachedFrames: 64})
}

func TestCcJobLifecycle(t *testing.T) {
	k := testKernel()
	p := k.CreateProc(&kernel.ProcSpec{Name: "cc", DataPages: 1})
	j := &ccJob{file: 3, seq: 11}
	var sawOpen, sawClose, sawExit bool
	var reads, writes, computes int
	for i := 0; i < 60; i++ {
		a := j.Next(k, p)
		if a.Kind == kernel.ActExit {
			sawExit = true
			break
		}
		if a.Kind == kernel.ActCompute {
			computes++
			continue
		}
		switch a.Req.Kind {
		case kernel.SysOpen:
			sawOpen = true
			if a.Req.Inode != srcInodeBase+3 {
				t.Errorf("opened inode %d", a.Req.Inode)
			}
		case kernel.SysRead:
			reads++
		case kernel.SysWrite:
			writes++
			if a.Req.Inode != objInodeBase+3 {
				t.Errorf("wrote inode %d", a.Req.Inode)
			}
		case kernel.SysClose:
			sawClose = true
		}
	}
	if !sawOpen || !sawClose || !sawExit {
		t.Errorf("lifecycle incomplete: open=%v close=%v exit=%v", sawOpen, sawClose, sawExit)
	}
	if reads < 2 || writes != 2 || computes < 10 {
		t.Errorf("phase counts: reads=%d writes=%d computes=%d", reads, writes, computes)
	}
	// The job keeps exiting once done.
	if a := j.Next(k, p); a.Kind != kernel.ActExit {
		t.Error("finished job should keep returning exit")
	}
}

func TestCcJobReadsAreColdPerInstance(t *testing.T) {
	k := testKernel()
	p := k.CreateProc(&kernel.ProcSpec{Name: "cc", DataPages: 1})
	offsets := map[int64]bool{}
	for _, seq := range []int{1, 2} {
		j := &ccJob{file: 0, seq: seq}
		for i := 0; i < 60; i++ {
			a := j.Next(k, p)
			if a.Kind == kernel.ActExit {
				break
			}
			if a.Kind == kernel.ActSyscall && a.Req.Kind == kernel.SysRead {
				if offsets[a.Req.Offset] {
					t.Errorf("offset %d reused across job instances", a.Req.Offset)
				}
				offsets[a.Req.Offset] = true
			}
		}
	}
}

func TestMakeMasterRespectsJobCap(t *testing.T) {
	k := testKernel()
	p := k.CreateProc(&kernel.ProcSpec{Name: "make", DataPages: 1})
	m := &makeMaster{passes: []*kernel.Image{k.NewImage("cc", 4)}}
	p.LiveChildren = pmakeMaxJobs
	for i := 0; i < 40; i++ {
		a := m.Next(k, p)
		if a.Kind == kernel.ActSyscall && a.Req.Kind == kernel.SysSpawn {
			t.Fatal("spawned above the -J 8 cap")
		}
	}
	p.LiveChildren = 0
	spawned := false
	for i := 0; i < 40; i++ {
		if a := m.Next(k, p); a.Kind == kernel.ActSyscall && a.Req.Kind == kernel.SysSpawn {
			spawned = true
			if a.Req.Child == nil || a.Req.Child.Image == nil {
				t.Fatal("spawn without image")
			}
			break
		}
	}
	if !spawned {
		t.Error("master never spawned with free slots")
	}
}

func TestMp3dBarrierReleasesAllWorkers(t *testing.T) {
	k := testKernel()
	sh := &mp3dBarrier{}
	barrier := k.RegisterUserLock("b")
	cell := k.RegisterUserLock("c")
	workers := make([]*mp3dWorker, mp3dProcs)
	procs := make([]*kernel.Proc, mp3dProcs)
	for i := range workers {
		workers[i] = &mp3dWorker{cells: []*klock.Lock{cell}, barrier: barrier,
			shared: sh, waitGen: -1}
		procs[i] = k.CreateProc(&kernel.ProcSpec{Name: "w", DataPages: 1})
	}
	// Drive worker 0 alone until it arrives at the barrier: it must
	// then spin via sginap while the others have not arrived.
	for i := 0; i < 200 && workers[0].waitGen < 0; i++ {
		workers[0].Next(k, procs[0])
	}
	if workers[0].waitGen < 0 {
		t.Fatal("worker 0 never reached the barrier")
	}
	if a := workers[0].Next(k, procs[0]); a.Req.Kind != kernel.SysSginap {
		t.Fatalf("waiting worker did not sginap: %+v", a)
	}
	// Drive the rest to the barrier: the last arriver advances the
	// generation and passes straight through.
	for w := 1; w < mp3dProcs; w++ {
		for i := 0; i < 200 && sh.gen == 0; i++ {
			workers[w].Next(k, procs[w])
		}
	}
	if sh.gen != 1 {
		t.Fatalf("barrier did not release: gen=%d arrived=%d", sh.gen, sh.arrived)
	}
	// Worker 0 now observes the new generation and resumes computing.
	if a := workers[0].Next(k, procs[0]); a.Kind != kernel.ActCompute {
		t.Fatalf("released worker did not resume: %+v", a)
	}
	if workers[0].waitGen != -1 {
		t.Error("worker 0 still marked waiting")
	}
	// Uneven progress must never wedge the barrier: drive everyone with
	// skewed turn counts through several generations.
	for round := 0; round < 8000 && sh.gen < 4; round++ {
		w := round % mp3dProcs
		turns := 1 + w // skew
		for j := 0; j < turns; j++ {
			workers[w].Next(k, procs[w])
		}
	}
	if sh.gen < 4 {
		t.Fatalf("barrier wedged at generation %d under skewed progress", sh.gen)
	}
}

func TestOracleServerTransactionLoop(t *testing.T) {
	k := testKernel()
	p := k.CreateProc(&kernel.ProcSpec{Name: "db", DataPages: 1})
	req, reply := k.NewPipe(), k.NewPipe()
	s := &oracleServer{req: req, reply: reply,
		accounts: oracleAccounts, branches: oracleBranches}
	var pipeReads, pipeWrites, logWrites, histWrites, semops int
	// Drive whole request→batch→reply cycles so the counters balance.
	for i := 0; i < 5000 && pipeWrites < 4; i++ {
		a := s.Next(k, p)
		if a.Kind != kernel.ActSyscall {
			continue
		}
		switch a.Req.Kind {
		case kernel.SysPipeRead:
			pipeReads++
		case kernel.SysPipeWrite:
			pipeWrites++
		case kernel.SysWrite:
			if a.Req.Raw {
				logWrites++
				if a.Req.Inode != logInode {
					t.Errorf("raw write to inode %d", a.Req.Inode)
				}
			} else {
				histWrites++
				if a.Req.Inode != histInode {
					t.Errorf("history write to inode %d", a.Req.Inode)
				}
			}
		case kernel.SysSemop:
			semops++
		case kernel.SysRead:
			if !a.Req.Raw {
				t.Error("database read must be raw")
			}
		}
	}
	if pipeReads == 0 || pipeWrites == 0 {
		t.Error("no client interaction")
	}
	if logWrites == 0 || histWrites == 0 || semops == 0 {
		t.Errorf("txn pieces missing: log=%d hist=%d sem=%d", logWrites, histWrites, semops)
	}
	// One request → oracleBatch transactions → one reply.
	if logWrites != histWrites || logWrites != semops {
		t.Errorf("per-txn stages unbalanced: log=%d hist=%d sem=%d", logWrites, histWrites, semops)
	}
	if pipeReads != pipeWrites {
		t.Errorf("request/reply unbalanced: %d vs %d", pipeReads, pipeWrites)
	}
}

func TestTypistBurstBounds(t *testing.T) {
	k := testKernel()
	p := k.CreateProc(&kernel.ProcSpec{Name: "t", DataPages: 1})
	ty := &typist{pipe: k.NewPipe()}
	for i := 0; i < 100; i++ {
		a := ty.Next(k, p)
		if a.Kind == kernel.ActSyscall && a.Req.Kind == kernel.SysPipeWrite {
			if a.Req.Bytes < 1 || a.Req.Bytes > 15 {
				t.Fatalf("burst of %d chars outside the paper's 1-15 range", a.Req.Bytes)
			}
		}
	}
}

func TestEdSessionBlocksOnInputFirst(t *testing.T) {
	k := testKernel()
	p := k.CreateProc(&kernel.ProcSpec{Name: "ed", DataPages: 1})
	e := &edSession{in: k.NewPipe(), out: k.NewPipe(), file: 3000}
	a := e.Next(k, p)
	if a.Kind != kernel.ActSyscall || a.Req.Kind != kernel.SysPipeRead {
		t.Fatalf("first action = %+v, want pipe read", a)
	}
	// Subsequent actions include edits, echoes, and autosaves.
	var saves int
	for i := 0; i < 60; i++ {
		a := e.Next(k, p)
		if a.Kind == kernel.ActSyscall && a.Req.Kind == kernel.SysWrite {
			saves++
		}
	}
	if saves == 0 {
		t.Error("ed never saved its file")
	}
}
