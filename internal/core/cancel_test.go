package core

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/workload"
)

func TestRunContextExpiredDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	cfg := Config{Workload: workload.Pmake, Seed: 7, Window: 1_000_000}
	ch, err := RunContext(ctx, cfg)
	if ch != nil {
		t.Fatal("expired context still produced a characterization")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("errors.Is(err, ErrCanceled) = false for %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("errors.Is(err, context.DeadlineExceeded) = false for %v", err)
	}
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("error is %T, want *CanceledError", err)
	}
	if ce.ConfigHash != cfg.Hash() {
		t.Errorf("provenance hash %q != cfg hash %q", ce.ConfigHash, cfg.Hash())
	}
	if ce.Workload != "Pmake" || ce.Seed != 7 {
		t.Errorf("provenance %+v lost workload/seed", ce.Provenance)
	}
}

// TestRunContextMidRunCancel cancels a run once its simulated clock has
// visibly advanced and checks the structured error's provenance carries
// the abort cycle.
func TestRunContextMidRunCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := Config{Workload: workload.Pmake, Seed: 3, Window: 200_000_000, Warmup: 0}
	ch, err := RunMonitored(ctx, cfg, func(progress func() arch.Cycles) {
		go func() {
			for progress() == 0 {
				time.Sleep(100 * time.Microsecond)
			}
			cancel()
		}()
	})
	if ch != nil {
		t.Fatal("canceled run still produced a characterization")
	}
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("error is %T (%v), want *CanceledError", err, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cause should be context.Canceled, got %v", ce.Cause)
	}
	if ce.Cycle == 0 {
		t.Error("mid-run cancel recorded no progress cycle")
	}
	if ce.Cycle >= cfg.Window {
		t.Errorf("abort cycle %d not inside the %d-cycle window", ce.Cycle, cfg.Window)
	}
}

// TestCanceledRunsLeakNoGoroutines: the ctx relay goroutine must be
// reaped on the cancellation path, not only on completion.
func TestCanceledRunsLeakNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 8; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := RunContext(ctx, Config{Workload: workload.Multpgm, Window: 1_000_000}); err == nil {
			t.Fatal("pre-canceled run succeeded")
		}
	}
	// Give any stragglers a moment to exit before judging.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines grew from %d to %d after canceled runs", before, runtime.NumGoroutine())
}

func TestHashCanonicalization(t *testing.T) {
	implicit := Config{Workload: workload.Pmake}
	explicit := Config{
		Workload: workload.Pmake,
		Machine:  arch.Default(),
		NCPU:     arch.DefaultCPUs,
		Seed:     1,
		Window:   arch.DefaultWindow,
		Warmup:   arch.DefaultWindow / 2,
	}
	if implicit.Hash() != explicit.Hash() {
		t.Error("zero-value defaults and spelled-out defaults hash differently")
	}
	if len(implicit.Hash()) != 64 {
		t.Errorf("hash length %d, want 64 hex chars", len(implicit.Hash()))
	}
	other := implicit
	other.Seed = 2
	if other.Hash() == implicit.Hash() {
		t.Error("different seeds produced the same hash")
	}
}
