package kernel

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/klock"
	"repro/internal/kmem"
	"repro/internal/monitor"
)

// fakePort implements Port for kernel unit tests: it counts traffic and
// advances a clock without any cache model.
type fakePort struct {
	tlbInvalFr int
	cpu        arch.CPUID
	now        arch.Cycles
	execs      []string
	loads      map[string]int // attribution name → bytes
	stores     map[string]int
	escapes    []monitor.Event
	layout     *kmem.Layout
	routine    string
	tlbIns     int
	icInvals   []uint32
	uncached   int
}

func newFakePort(l *kmem.Layout) *fakePort {
	return &fakePort{
		loads:  make(map[string]int),
		stores: make(map[string]int),
		layout: l,
	}
}

func (f *fakePort) CPU() arch.CPUID  { return f.cpu }
func (f *fakePort) Now() arch.Cycles { return f.now }
func (f *fakePort) Exec(r *Routine) {
	f.execs = append(f.execs, r.Name)
	f.routine = r.Name
	f.now += arch.Cycles(r.Instructions())
}
func (f *fakePort) Load(a arch.PAddr, n int) {
	f.loads[f.layout.Attribute(a, f.routine)] += n
	f.now += arch.Cycles(1 + n/arch.BlockSize)
}
func (f *fakePort) Store(a arch.PAddr, n int) {
	f.stores[f.layout.Attribute(a, f.routine)] += n
	f.now += arch.Cycles(1 + n/arch.BlockSize)
}
func (f *fakePort) UncachedRead(arch.PAddr) { f.uncached++; f.now += 35 }
func (f *fakePort) LoadBypass(a arch.PAddr, n int) {
	f.uncached++
	f.now += arch.Cycles(n / arch.BlockSize * 35)
}
func (f *fakePort) StoreBypass(a arch.PAddr, n int) {
	f.uncached++
	f.now += arch.Cycles(n / arch.BlockSize * 35)
}
func (f *fakePort) Advance(c arch.Cycles) { f.now += c }
func (f *fakePort) Acquire(l *klock.Lock) {
	at, _ := l.Acquire(f.cpu, f.now)
	f.now = at + 1
}
func (f *fakePort) Release(l *klock.Lock) { l.Release(f.cpu, f.now); f.now++ }
func (f *fakePort) Escape(ev monitor.Event, args ...uint32) {
	f.escapes = append(f.escapes, ev)
}
func (f *fakePort) TLBInsert(arch.PID, uint32, uint32) { f.tlbIns++ }
func (f *fakePort) TLBInvalidatePID(arch.PID)          {}
func (f *fakePort) TLBInvalidateFrame(uint32)          { f.tlbInvalFr++ }
func (f *fakePort) ICacheInvalFrame(fr uint32)         { f.icInvals = append(f.icInvals, fr) }

func execCount(f *fakePort, name string) int {
	n := 0
	for _, e := range f.execs {
		if e == name {
			n++
		}
	}
	return n
}

func newTestKernel() *Kernel {
	return New(Config{Seed: 1, PrefillCachedFrames: 64})
}

func TestKTextPlacement(t *testing.T) {
	kt := NewKText(0, arch.Default())
	if kt.TotalSize > kmem.KernelTextSize {
		t.Fatalf("text image %d bytes exceeds %d", kt.TotalSize, kmem.KernelTextSize)
	}
	if kmem.KernelTextSize-kt.TotalSize >= fillerSize {
		t.Errorf("padding left a %d-byte hole", kmem.KernelTextSize-kt.TotalSize)
	}
	// Routines are disjoint and block-aligned.
	for i, r := range kt.Routines {
		if r.Addr%arch.BlockSize != 0 {
			t.Errorf("routine %s not block aligned", r.Name)
		}
		if i > 0 {
			prev := kt.Routines[i-1]
			if r.Addr < prev.Addr+arch.PAddr(prev.Size) {
				t.Errorf("routine %s overlaps %s", r.Name, prev.Name)
			}
		}
	}
	// Lookup by address works.
	sw := kt.R("swtch")
	if got := kt.At(sw.Addr + 10); got != sw {
		t.Errorf("At(swtch+10) = %v", got)
	}
	if kt.At(0x0CFFFF0) != nil {
		t.Error("At past image should be nil")
	}
	// The seven run-queue routines exist.
	runq := 0
	for _, r := range kt.Routines {
		if r.Group == GroupRunQueue {
			runq++
		}
	}
	if runq != 7 {
		t.Errorf("run-queue group has %d routines, want 7 (Table 5)", runq)
	}
}

func TestCreateProcAndScheduler(t *testing.T) {
	k := newTestKernel()
	img := k.NewImage("cc", 10)
	p1 := k.CreateProc(&ProcSpec{Name: "a", Image: img, DataPages: 4})
	p2 := k.CreateProc(&ProcSpec{Name: "b", DataPages: 2})
	if p1.PID == p2.PID || p1.Slot == p2.Slot {
		t.Fatal("pid/slot collision")
	}
	if k.RunnableCount() != 2 {
		t.Fatalf("runq = %d, want 2", k.RunnableCount())
	}
	fp := newFakePort(k.L)
	got := k.ContextSwitch(fp, nil, false)
	if got != p1 {
		t.Fatalf("FIFO pick = %v, want p1", got)
	}
	if got.State != StateRunning || got.LastCPU != 0 {
		t.Errorf("picked proc state=%v lastCPU=%d", got.State, got.LastCPU)
	}
	// Context switch touched the PCB and kernel stack.
	if fp.loads[kmem.AttrPCB] == 0 {
		t.Error("restore did not read the PCB")
	}
	// Switching away requeues and picks p2; p1 keeps LastCPU.
	got2 := k.ContextSwitch(fp, got, true)
	if got2 != p2 {
		t.Fatalf("second pick = %v, want p2", got2)
	}
	if fp.stores[kmem.AttrPCB] == 0 {
		t.Error("save did not write the PCB")
	}
	if k.CtxSwitches != 2 {
		t.Errorf("CtxSwitches = %d", k.CtxSwitches)
	}
}

func TestMigrationCounting(t *testing.T) {
	k := newTestKernel()
	p1 := k.CreateProc(&ProcSpec{Name: "a", DataPages: 1})
	fp0 := newFakePort(k.L)
	fp0.cpu = 0
	if k.ContextSwitch(fp0, nil, false) != p1 {
		t.Fatal("pick failed")
	}
	k.setrq(fp0, p1)
	fp1 := newFakePort(k.L)
	fp1.cpu = 1
	if k.ContextSwitch(fp1, nil, false) != p1 {
		t.Fatal("re-pick failed")
	}
	if k.Migrations != 1 {
		t.Errorf("Migrations = %d, want 1", k.Migrations)
	}
}

func TestAffinityScheduling(t *testing.T) {
	k := New(Config{Seed: 1, Affinity: true, PrefillCachedFrames: 64})
	pa := k.CreateProc(&ProcSpec{Name: "a", DataPages: 1})
	pb := k.CreateProc(&ProcSpec{Name: "b", DataPages: 1})
	pa.LastCPU, pa.HasRun = 1, true
	pb.LastCPU, pb.HasRun = 0, true
	fp := newFakePort(k.L)
	fp.cpu = 0
	// CPU 0 should skip pa (affine to CPU 1) and pick pb.
	if got := k.ContextSwitch(fp, nil, false); got != pb {
		t.Fatalf("affinity pick = %v, want pb", got)
	}
	if k.Migrations != 0 {
		t.Errorf("affinity pick counted as migration")
	}
}

func TestSleepWakeup(t *testing.T) {
	k := newTestKernel()
	p1 := k.CreateProc(&ProcSpec{Name: "a", DataPages: 1})
	fp := newFakePort(k.L)
	k.ContextSwitch(fp, nil, false)
	ch := k.NewChan()
	ran := false
	k.SleepProc(fp, p1, ch, OpIOSyscall, func(Port, *Proc) SysStatus {
		ran = true
		return SysDone
	})
	if p1.State != StateSleeping {
		t.Fatal("proc not sleeping")
	}
	if n := k.Wakeup(fp, ch); n != 1 {
		t.Fatalf("Wakeup woke %d", n)
	}
	if p1.State != StateReady {
		t.Fatal("woken proc not ready")
	}
	cont, op := k.TakeContinuation(p1)
	if cont == nil || op != OpIOSyscall {
		t.Fatal("continuation lost")
	}
	cont(fp, p1)
	if !ran {
		t.Error("continuation did not run")
	}
	if c, _ := k.TakeContinuation(p1); c != nil {
		t.Error("continuation not cleared")
	}
}

func TestPageFaultDemandZero(t *testing.T) {
	k := newTestKernel()
	pr := k.CreateProc(&ProcSpec{Name: "a", DataPages: 4})
	fp := newFakePort(k.L)
	vp := pr.FP.DataVPages[0]
	if k.IsMapped(pr, vp) {
		t.Fatal("page mapped before fault")
	}
	k.PageFault(fp, pr, vp, false)
	if !k.IsMapped(pr, vp) {
		t.Fatal("page not mapped after fault")
	}
	if fp.tlbIns != 1 {
		t.Errorf("TLB inserts = %d", fp.tlbIns)
	}
	if execCount(fp, "bclear") != 1 {
		t.Error("demand-zero fault did not clear the page")
	}
	// The block-op log recorded a full-page clear.
	found := false
	for _, b := range k.BlockOps {
		if b.Kind == BlockClear && b.Bytes == arch.PageSize {
			found = true
		}
	}
	if !found {
		t.Error("no full-page clear logged")
	}
}

func TestCodePageSharingAcrossProcs(t *testing.T) {
	k := newTestKernel()
	img := k.NewImage("cc", 4)
	a := k.CreateProc(&ProcSpec{Name: "a", Image: img})
	b := k.CreateProc(&ProcSpec{Name: "b", Image: img})
	k.textRef[img.ID] = 2
	fp := newFakePort(k.L)
	vp := uint32(CodeVBase)
	k.PageFault(fp, a, vp, false)
	copies := len(k.BlockOps)
	k.PageFault(fp, b, vp, false)
	pa, _ := a.MappedPage(vp)
	pb, _ := b.MappedPage(vp)
	if pa.Frame != pb.Frame {
		t.Fatal("text page not shared between processes")
	}
	if len(k.BlockOps) != copies {
		t.Error("second mapper copied the text page again")
	}
}

func TestCOWFault(t *testing.T) {
	k := newTestKernel()
	pr := k.CreateProc(&ProcSpec{Name: "a", DataPages: 2})
	fp := newFakePort(k.L)
	vp := pr.FP.DataVPages[0]
	k.PageFault(fp, pr, vp, false)
	orig, _ := pr.MappedPage(vp)
	pr.pages[vp] = PageInfo{Frame: orig.Frame, COW: true}
	if !k.IsCOW(pr, vp) {
		t.Fatal("COW not detected")
	}
	k.PageFault(fp, pr, vp, true)
	now, _ := pr.MappedPage(vp)
	if now.COW || now.Frame == orig.Frame {
		t.Errorf("COW fault did not copy: %+v vs %+v", now, orig)
	}
	sawCopy := false
	for _, b := range k.BlockOps {
		if b.Kind == BlockCopy && b.Bytes == arch.PageSize && b.Why == "copy-on-write page" {
			sawCopy = true
		}
	}
	if !sawCopy {
		t.Error("no full-page COW copy logged")
	}
	if fp.tlbInvalFr == 0 {
		t.Error("COW remap did not shoot down the old frame's translations")
	}
}

func TestSharedPagesMapSameFrame(t *testing.T) {
	k := newTestKernel()
	leader := k.CreateProc(&ProcSpec{Name: "lead", SharedPages: 4, DataPages: 1})
	follow := k.CreateProc(&ProcSpec{Name: "w", SharedWith: leader, DataPages: 1})
	if len(follow.FP.SharedVPages) != 4 {
		t.Fatalf("follower shared pages = %d", len(follow.FP.SharedVPages))
	}
	fp := newFakePort(k.L)
	vp := leader.FP.SharedVPages[1]
	k.PageFault(fp, follow, vp, false) // follower faults first
	k.PageFault(fp, leader, vp, false)
	a, _ := follow.MappedPage(vp)
	b, _ := leader.MappedPage(vp)
	if a.Frame != b.Frame {
		t.Error("shared page frames differ")
	}
}

func TestUTLBFaultIsCheap(t *testing.T) {
	k := newTestKernel()
	pr := k.CreateProc(&ProcSpec{Name: "a", DataPages: 1})
	fp := newFakePort(k.L)
	vp := pr.FP.DataVPages[0]
	k.PageFault(fp, pr, vp, false)
	before := fp.now
	k.UTLBFault(fp, pr, vp)
	if fp.now-before > 100 {
		t.Errorf("UTLB fault took %d cycles; should be tiny", fp.now-before)
	}
	if k.OpCounts[OpCheapTLB] != 1 {
		t.Errorf("cheap-TLB count = %d", k.OpCounts[OpCheapTLB])
	}
	// It emitted the UTLB escape.
	saw := false
	for _, e := range fp.escapes {
		if e == monitor.EvUTLB {
			saw = true
		}
	}
	if !saw {
		t.Error("no EvUTLB escape")
	}
}

func TestReadSyscallColdThenWarm(t *testing.T) {
	k := newTestKernel()
	pr := k.CreateProc(&ProcSpec{Name: "a", DataPages: 2})
	fp := newFakePort(k.L)
	k.ContextSwitch(fp, nil, false)
	k.PageFault(fp, pr, pr.FP.DataVPages[0], false) // map a user buffer
	req := SyscallReq{Kind: SysRead, Inode: 42, Offset: 0, Bytes: 1024}
	st := k.Syscall(fp, pr, req)
	if st != SysBlocked {
		t.Fatalf("cold read status = %v, want blocked", st)
	}
	if k.DiskRequests != 1 {
		t.Errorf("disk requests = %d", k.DiskRequests)
	}
	// Deliver the disk interrupt and run the continuation.
	ev, ok := k.PopDueEvent(1 << 62)
	if !ok || ev.Kind != IntrDisk {
		t.Fatalf("no disk event: %+v ok=%v", ev, ok)
	}
	k.DiskIntr(fp, ev.Ch)
	if pr.State != StateReady {
		t.Fatal("reader not woken")
	}
	cont, op := k.TakeContinuation(pr)
	if op != OpIOSyscall {
		t.Errorf("continuation op = %v", op)
	}
	if st := cont(fp, pr); st != SysDone {
		t.Fatalf("continuation status = %v", st)
	}
	// Second read of the same page hits the page cache: no new disk
	// request, completes synchronously.
	if st := k.Syscall(fp, pr, req); st != SysDone {
		t.Fatalf("warm read status = %v", st)
	}
	if k.DiskRequests != 1 {
		t.Errorf("warm read went to disk")
	}
	// Both paths staged fragments through Bcopy.
	frag := 0
	for _, b := range k.BlockOps {
		if b.Kind == BlockCopy && b.Why == "transfer out of buffer cache" {
			frag++
		}
	}
	if frag != 2 {
		t.Errorf("buffer-cache transfer copies = %d, want 2", frag)
	}
}

func TestWriteSyscallAllocatesAndCopies(t *testing.T) {
	k := newTestKernel()
	pr := k.CreateProc(&ProcSpec{Name: "a", DataPages: 1})
	fp := newFakePort(k.L)
	k.PageFault(fp, pr, pr.FP.DataVPages[0], false)
	st := k.Syscall(fp, pr, SyscallReq{Kind: SysWrite, Inode: 7, Offset: 4096, Bytes: 2048})
	if st != SysDone {
		t.Fatalf("write status = %v", st)
	}
	if k.Locks.Get(klock.Dfbmaplk).Acquires() != 1 {
		t.Error("new file page did not allocate a disk block under Dfbmaplk")
	}
	// Rewriting the same page must not allocate again.
	k.Syscall(fp, pr, SyscallReq{Kind: SysWrite, Inode: 7, Offset: 4096, Bytes: 2048})
	if got := k.Locks.Get(klock.Dfbmaplk).Acquires(); got != 1 {
		t.Errorf("Dfbmaplk acquires = %d, want 1", got)
	}
}

func TestSpawnWaitExitLifecycle(t *testing.T) {
	k := newTestKernel()
	parent := k.CreateProc(&ProcSpec{Name: "make", DataPages: 2})
	fp := newFakePort(k.L)
	k.ContextSwitch(fp, nil, false)
	k.PageFault(fp, parent, parent.FP.DataVPages[0], false)
	img := k.NewImage("cc", 4)
	st := k.Syscall(fp, parent, SyscallReq{Kind: SysSpawn, Child: &ProcSpec{
		Name: "cc1", Image: img, DataPages: 4,
	}})
	if st != SysDone {
		t.Fatalf("spawn status = %v", st)
	}
	if parent.LiveChildren != 1 || k.Spawns != 1 {
		t.Fatalf("children = %d spawns = %d", parent.LiveChildren, k.Spawns)
	}
	var child *Proc
	for _, p := range k.Procs() {
		if p.Name == "cc1" {
			child = p
		}
	}
	if child == nil {
		t.Fatal("child not created")
	}
	// Parent waits; child exits; parent wakes.
	if st := k.Syscall(fp, parent, SyscallReq{Kind: SysWait}); st != SysBlocked {
		t.Fatalf("wait status = %v", st)
	}
	// Map some pages in the child so exit frees them.
	k.PageFault(fp, child, child.FP.DataVPages[0], false)
	free0 := k.F.FreeCount()
	if st := k.ExitProc(fp, child); st != SysExited {
		t.Fatal("exit status wrong")
	}
	if k.F.FreeCount() != free0+1 {
		t.Errorf("child data page not freed: %d → %d", free0, k.F.FreeCount())
	}
	if parent.State != StateReady {
		t.Error("parent not woken by child exit")
	}
	if parent.LiveChildren != 0 {
		t.Error("child not reaped")
	}
}

func TestExitCachesTextForReuse(t *testing.T) {
	k := newTestKernel()
	img := k.NewImage("cc", 2)
	a := k.CreateProc(&ProcSpec{Name: "a", Image: img, DataPages: 1})
	k.textRef[img.ID] = 1
	fp := newFakePort(k.L)
	k.PageFault(fp, a, CodeVBase, false)
	pi, _ := a.MappedPage(CodeVBase)
	k.ExitProc(fp, a)
	if k.F.State(pi.Frame) != kmem.StateCached {
		t.Fatalf("text frame state = %v, want cached", k.F.State(pi.Frame))
	}
	// A new process running the same image reuses the frame, no copy.
	b := k.CreateProc(&ProcSpec{Name: "b", Image: img, DataPages: 1})
	k.textRef[img.ID]++
	ops := len(k.BlockOps)
	k.PageFault(fp, b, CodeVBase, false)
	pb, _ := b.MappedPage(CodeVBase)
	if pb.Frame != pi.Frame {
		t.Error("text frame not reused from cache")
	}
	if len(k.BlockOps) != ops {
		t.Error("reused text page was copied again")
	}
	if k.F.State(pi.Frame) != kmem.StateUsed {
		t.Error("reused frame not reactivated")
	}
}

func TestSginapYields(t *testing.T) {
	k := newTestKernel()
	pr := k.CreateProc(&ProcSpec{Name: "a", DataPages: 1})
	fp := newFakePort(k.L)
	if st := k.Syscall(fp, pr, SyscallReq{Kind: SysSginap}); st != SysYield {
		t.Fatalf("sginap status = %v, want yield", st)
	}
	if OpKindOf(SyscallReq{Kind: SysSginap}) != OpSginap {
		t.Error("sginap op kind wrong")
	}
}

func TestNapAndClockWakeup(t *testing.T) {
	k := newTestKernel()
	pr := k.CreateProc(&ProcSpec{Name: "ed", DataPages: 1})
	fp := newFakePort(k.L)
	fp.now = 1000
	st := k.Syscall(fp, pr, SyscallReq{Kind: SysNap, Dur: 5000})
	if st != SysBlocked {
		t.Fatalf("nap status = %v", st)
	}
	if k.Locks.Get(klock.Calock).Acquires() != 1 {
		t.Error("nap did not touch the callout table under Calock")
	}
	// Clock tick before expiry: nothing wakes.
	k.ClockIntr(fp, nil, 2000)
	if pr.State != StateSleeping {
		t.Fatal("woke too early")
	}
	// After expiry.
	k.ClockIntr(fp, nil, 10000)
	if pr.State != StateReady {
		t.Fatal("nap never expired")
	}
}

func TestPipeReadBlocksUntilWrite(t *testing.T) {
	k := newTestKernel()
	reader := k.CreateProc(&ProcSpec{Name: "ed", DataPages: 1})
	writer := k.CreateProc(&ProcSpec{Name: "typist", DataPages: 1})
	fp := newFakePort(k.L)
	pipe := k.NewPipe()
	st := k.Syscall(fp, reader, SyscallReq{Kind: SysPipeRead, Pipe: pipe, Bytes: 10})
	if st != SysBlocked {
		t.Fatalf("empty pipe read = %v, want blocked", st)
	}
	st = k.Syscall(fp, writer, SyscallReq{Kind: SysPipeWrite, Pipe: pipe, Bytes: 10})
	if st != SysDone {
		t.Fatalf("pipe write = %v", st)
	}
	if reader.State != StateReady {
		t.Fatal("reader not woken by write")
	}
	cont, _ := k.TakeContinuation(reader)
	if st := cont(fp, reader); st != SysDone {
		t.Fatalf("pipe read continuation = %v", st)
	}
	if pipe.Buffered != 0 {
		t.Errorf("pipe buffered = %d after read", pipe.Buffered)
	}
	if k.Locks.FamilyStats(klock.StreamsX).Acquires == 0 {
		t.Error("pipe ops did not use Streams_x locks")
	}
}

func TestMemoryPressureTriggersTraversal(t *testing.T) {
	// Tiny free pool: allocations must reclaim via pfdat traversal.
	k := New(Config{Seed: 1, PrefillCachedFrames: kmem.PageableFrames - 8,
		LowWater: 16, ReclaimTarget: 32})
	pr := k.CreateProc(&ProcSpec{Name: "a", DataPages: 8})
	fp := newFakePort(k.L)
	for _, vp := range pr.FP.DataVPages {
		k.PageFault(fp, pr, vp, false)
	}
	if k.Traversals == 0 {
		t.Fatal("no pfdat traversal under memory pressure")
	}
	if fp.loads[kmem.AttrPfdat] == 0 {
		t.Error("traversal did not sweep the pfdat array")
	}
	saw := false
	for _, b := range k.BlockOps {
		if b.Kind == BlockTraverse {
			saw = true
		}
	}
	if !saw {
		t.Error("traversal not logged as block operation")
	}
}

func TestCodeFrameReallocInvalidatesICache(t *testing.T) {
	k := New(Config{Seed: 1, PrefillCachedFrames: 32})
	img := k.NewImage("cc", 2)
	a := k.CreateProc(&ProcSpec{Name: "a", Image: img, DataPages: 1})
	k.textRef[img.ID] = 1
	fp := newFakePort(k.L)
	k.PageFault(fp, a, CodeVBase, false)
	pi, _ := a.MappedPage(CodeVBase)
	k.ExitProc(fp, a)
	// Drop the text-cache pointer and reclaim everything, so the code
	// frame returns to the free buckets and gets handed out for data.
	delete(k.textCache, img.ID)
	k.F.Reclaim(kmem.PageableFrames)
	for i := 0; i < kmem.PageableFrames && len(fp.icInvals) == 0; i++ {
		k.AllocFrame(fp, kmem.FrameData, 99, uint32(i))
	}
	found := false
	for _, fr := range fp.icInvals {
		if fr == pi.Frame {
			found = true
		}
	}
	if !found {
		t.Errorf("reallocating code frame %d never invalidated the I-caches (invals: %v)",
			pi.Frame, fp.icInvals)
	}
}

func TestDoMiscExecutesColdCode(t *testing.T) {
	k := newTestKernel()
	pr := k.CreateProc(&ProcSpec{Name: "a", DataPages: 1})
	fp := newFakePort(k.L)
	if st := k.Syscall(fp, pr, SyscallReq{Kind: SysMisc}); st != SysDone {
		t.Fatal("misc failed")
	}
	sawFiller := false
	for _, e := range fp.execs {
		if len(e) > 5 && e[:5] == "misc_" {
			sawFiller = true
		}
	}
	if !sawFiller {
		t.Error("SysMisc did not execute a filler routine")
	}
}

func TestOpKindOf(t *testing.T) {
	cases := map[SysKind]OpKind{
		SysRead:   OpIOSyscall,
		SysWrite:  OpIOSyscall,
		SysSginap: OpSginap,
		SysOpen:   OpOtherSyscall,
		SysSpawn:  OpOtherSyscall,
	}
	for sk, want := range cases {
		if got := OpKindOf(SyscallReq{Kind: sk}); got != want {
			t.Errorf("OpKindOf(%d) = %v, want %v", sk, got, want)
		}
	}
}

func TestEventHeapOrdering(t *testing.T) {
	k := newTestKernel()
	k.postEvent(300, IntrDisk, 1, 0)
	k.postEvent(100, IntrNet, 2, 1)
	k.postEvent(200, IntrDisk, 3, 0)
	if k.NextEventTime() != 100 {
		t.Fatalf("NextEventTime = %d", k.NextEventTime())
	}
	var order []arch.Cycles
	for {
		ev, ok := k.PopDueEvent(1000)
		if !ok {
			break
		}
		order = append(order, ev.At)
	}
	if len(order) != 3 || order[0] != 100 || order[1] != 200 || order[2] != 300 {
		t.Errorf("event order = %v", order)
	}
	if _, ok := k.PopDueEvent(1000); ok {
		t.Error("pop from empty heap succeeded")
	}
	if k.NextEventTime() != -1 {
		t.Error("empty heap NextEventTime should be -1")
	}
}

func TestExceptionTouchesEframe(t *testing.T) {
	k := newTestKernel()
	pr := k.CreateProc(&ProcSpec{Name: "a", DataPages: 1})
	fp := newFakePort(k.L)
	k.EnterException(fp, pr)
	k.ExitException(fp, pr)
	if fp.stores[kmem.AttrEframe] != kmem.EframeSize {
		t.Errorf("eframe stores = %d, want %d", fp.stores[kmem.AttrEframe], kmem.EframeSize)
	}
	if fp.loads[kmem.AttrEframe] != kmem.EframeSize {
		t.Errorf("eframe loads = %d", fp.loads[kmem.AttrEframe])
	}
}

func TestRawIOBypassesPageCache(t *testing.T) {
	k := newTestKernel()
	pr := k.CreateProc(&ProcSpec{Name: "db", DataPages: 2})
	fp := newFakePort(k.L)
	k.ContextSwitch(fp, nil, false)
	k.PageFault(fp, pr, pr.FP.DataVPages[0], false)
	before := len(k.BlockOps)
	st := k.Syscall(fp, pr, SyscallReq{Kind: SysRead, Raw: true, Inode: 9, Bytes: 4096})
	if st != SysBlocked {
		t.Fatalf("raw read status = %v", st)
	}
	// DMA: no kernel block copy, and no page-cache frame allocated.
	for _, op := range k.BlockOps[before:] {
		if op.Kind == BlockCopy && op.Why == "transfer out of buffer cache" {
			t.Error("raw read copied through the page cache")
		}
	}
	if _, hit := k.fileCache[fileKey{inode: 9, page: 0}]; hit {
		t.Error("raw read populated the page cache")
	}
	// The physio path pinned the user buffer under Memlock.
	if k.Locks.Get(klock.Memlock).Acquires() == 0 {
		t.Error("raw read did not pin pages under Memlock")
	}
	// Completion wakes the reader.
	ev, ok := k.PopDueEvent(1 << 62)
	if !ok {
		t.Fatal("no disk completion scheduled")
	}
	k.DiskIntr(fp, ev.Ch)
	if pr.State != StateReady {
		t.Error("raw reader not woken")
	}
}

func TestRawWriteIsAsync(t *testing.T) {
	k := newTestKernel()
	pr := k.CreateProc(&ProcSpec{Name: "db", DataPages: 1})
	fp := newFakePort(k.L)
	k.PageFault(fp, pr, pr.FP.DataVPages[0], false)
	st := k.Syscall(fp, pr, SyscallReq{Kind: SysWrite, Raw: true, Inode: 9, Bytes: 256})
	if st != SysDone {
		t.Fatalf("raw write status = %v (should not sleep)", st)
	}
	if k.DiskRequests == 0 {
		t.Error("raw write issued no disk request")
	}
}

func TestSemopUsesSemlockArray(t *testing.T) {
	k := newTestKernel()
	pr := k.CreateProc(&ProcSpec{Name: "db", DataPages: 1})
	fp := newFakePort(k.L)
	if st := k.Syscall(fp, pr, SyscallReq{Kind: SysSemop, Sem: 3}); st != SysDone {
		t.Fatal("semop failed")
	}
	if got := k.Locks.FamilyStats(klock.Semlock).Acquires; got != 4 {
		t.Errorf("Semlock acquires = %d, want 4 (one per sembuf)", got)
	}
}

func TestMemlockNotHeldAcrossTraversal(t *testing.T) {
	// Regression: AllocFrame used to hold Memlock across the whole pfdat
	// traversal, creating spin storms. The traversal must run unlocked.
	k := New(Config{Seed: 1, PrefillCachedFrames: kmem.PageableFrames - 8,
		LowWater: 1 << 30 /* force traversal on every alloc */})
	pr := k.CreateProc(&ProcSpec{Name: "a", DataPages: 1})
	fp := newFakePort(k.L)
	k.PageFault(fp, pr, pr.FP.DataVPages[0], false)
	if k.Traversals == 0 {
		t.Fatal("traversal not forced")
	}
	mem := k.Locks.Get(klock.Memlock)
	if mem.Held() {
		t.Fatal("Memlock leaked")
	}
	st := mem.ComputeStats()
	// The hold interval must be short: attempts ≈ acquires (no storm).
	if st.Attempts > 2*st.Acquires {
		t.Errorf("Memlock spin storm: %d attempts for %d acquires", st.Attempts, st.Acquires)
	}
}

func TestOptimizedTextLayout(t *testing.T) {
	opt := NewKTextOptimized(0, arch.Default())
	std := NewKText(0, arch.Default())
	if opt.TotalSize != kmem.KernelTextSize {
		t.Fatalf("optimized image size = %d", opt.TotalSize)
	}
	// Same routine inventory under both layouts.
	if len(opt.Routines) < len(kernelImage) {
		t.Fatal("optimized layout lost routines")
	}
	for _, spec := range kernelImage {
		if opt.R(spec.name).Size != std.R(spec.name).Size {
			t.Errorf("routine %s size differs across layouts", spec.name)
		}
	}
	// No overlaps, sorted by address.
	for i := 1; i < len(opt.Routines); i++ {
		prev, cur := opt.Routines[i-1], opt.Routines[i]
		if cur.Addr < prev.Addr+arch.PAddr(prev.Size) {
			t.Fatalf("%s overlaps %s", cur.Name, prev.Name)
		}
	}
	// The protection property: no warm routine shares an I-cache offset
	// with a hot routine.
	hotEnd := uint32(0)
	for name := range hotRoutines {
		r := opt.R(name)
		end := uint32(r.Addr) + r.Size
		if uint32(r.Addr)/arch.ICacheSize != 0 {
			t.Errorf("hot routine %s left bank 0 (addr %#x)", name, r.Addr)
		}
		if end > hotEnd {
			hotEnd = end
		}
	}
	for _, spec := range kernelImage {
		if hotRoutines[spec.name] {
			continue
		}
		r := opt.R(spec.name)
		lo := uint32(r.Addr) % arch.ICacheSize
		if lo < hotEnd {
			t.Errorf("warm routine %s at offset %#x collides with hot sets [0,%#x)",
				spec.name, lo, hotEnd)
		}
	}
	// At() still works after re-sorting.
	sw := opt.R("swtch")
	if opt.At(sw.Addr+4) != sw {
		t.Error("At() broken under optimized layout")
	}
}

func TestOpenCloseTouchInodes(t *testing.T) {
	k := newTestKernel()
	pr := k.CreateProc(&ProcSpec{Name: "a", DataPages: 1})
	fp := newFakePort(k.L)
	if st := k.Syscall(fp, pr, SyscallReq{Kind: SysOpen, Inode: 17}); st != SysDone {
		t.Fatal("open failed")
	}
	if st := k.Syscall(fp, pr, SyscallReq{Kind: SysClose, Inode: 17}); st != SysDone {
		t.Fatal("close failed")
	}
	if k.Locks.Get(klock.Ifree).Acquires() != 2 {
		t.Errorf("Ifree acquires = %d, want 2", k.Locks.Get(klock.Ifree).Acquires())
	}
	if fp.loads[kmem.AttrInode] == 0 || fp.stores[kmem.AttrInode] == 0 {
		t.Error("open/close did not touch the inode table")
	}
	if execCount(fp, "namei") != 1 {
		t.Error("open did not run the name lookup")
	}
	// Open initializes inode-related structures (an irregular clear).
	sawInit := false
	for _, b := range k.BlockOps {
		if b.Kind == BlockClear && b.Why == "kernel structure init" {
			sawInit = true
		}
	}
	if !sawInit {
		t.Error("open logged no structure-init clear")
	}
}

func TestBrkGrowsHeapLazily(t *testing.T) {
	k := newTestKernel()
	pr := k.CreateProc(&ProcSpec{Name: "a", DataPages: 2})
	fp := newFakePort(k.L)
	before := len(pr.FP.DataVPages)
	free0 := k.F.FreeCount()
	if st := k.Syscall(fp, pr, SyscallReq{Kind: SysBrk, Bytes: 3 * arch.PageSize}); st != SysDone {
		t.Fatal("brk failed")
	}
	if got := len(pr.FP.DataVPages) - before; got != 3 {
		t.Errorf("brk grew %d pages, want 3", got)
	}
	if k.F.FreeCount() != free0 {
		t.Error("brk allocated frames eagerly; pages must fault in on demand")
	}
	// The new page faults in as demand-zero.
	vp := pr.FP.DataVPages[len(pr.FP.DataVPages)-1]
	k.PageFault(fp, pr, vp, true)
	if !k.IsMapped(pr, vp) {
		t.Error("brk page did not map on fault")
	}
}

func TestWireAllBut(t *testing.T) {
	k := New(Config{Seed: 1, PrefillCachedFrames: 2000})
	k.WireAllBut(128)
	if got := k.F.FreeCount(); got != 128 {
		t.Errorf("free after wiring = %d, want 128", got)
	}
	if k.F.CachedCount() != 0 {
		t.Errorf("cached after wiring = %d, want 0", k.F.CachedCount())
	}
	// The boot page cache was purged along with its frames.
	if len(k.fileCache) != 0 {
		t.Errorf("stale fileCache entries: %d", len(k.fileCache))
	}
}

func TestCodeFramesDump(t *testing.T) {
	k := newTestKernel()
	img := k.NewImage("cc", 3)
	pr := k.CreateProc(&ProcSpec{Name: "a", Image: img, Premap: true, DataPages: 1})
	_ = pr
	frames := k.CodeFrames()
	if len(frames) != 3 {
		t.Fatalf("CodeFrames = %d, want 3", len(frames))
	}
	for _, fr := range frames {
		if k.F.State(fr) == kmem.StateFree {
			t.Error("reported code frame is free")
		}
	}
	// Deterministic order (sorted by image id).
	again := k.CodeFrames()
	for i := range frames {
		if frames[i] != again[i] {
			t.Fatal("CodeFrames order not deterministic")
		}
	}
}

func TestPremapMapsEverything(t *testing.T) {
	k := newTestKernel()
	img := k.NewImage("db", 4)
	leader := k.CreateProc(&ProcSpec{Name: "lead", Image: img, Premap: true,
		DataPages: 3, SharedPages: 5})
	follower := k.CreateProc(&ProcSpec{Name: "w", Image: img, Premap: true,
		DataPages: 2, SharedWith: leader})
	for _, vp := range leader.FP.CodeVPages {
		if !k.IsMapped(leader, vp) {
			t.Fatalf("leader code page %d unmapped", vp)
		}
	}
	for _, vp := range follower.FP.SharedVPages {
		a, _ := follower.MappedPage(vp)
		b, _ := leader.MappedPage(vp)
		if a.Frame != b.Frame {
			t.Fatal("premapped shared pages differ between leader and follower")
		}
	}
	// Premapped text is shared: same frames for both images' views.
	fa, _ := leader.MappedPage(CodeVBase)
	fb, _ := follower.MappedPage(CodeVBase)
	if fa.Frame != fb.Frame {
		t.Error("premapped text not shared")
	}
}
