// Regression tests for the PR 7 bug fixes: terminal jobs releasing
// their pipelines, the bounded job registry, Wait's retry loop, strict
// request decoding, and coherent accepted-vs-resolved counters.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestTerminalJobsReleasePipelines: resolve must nil the heartbeat
// closure — it captures the run's entire simulator pipeline (~5 MB per
// job at this window), which completed jobs otherwise pin against GC
// for as long as the registry remembers them.
func TestTerminalJobsReleasePipelines(t *testing.T) {
	srv, cl := newTestServer(t, Options{Workers: 2})
	ctx := context.Background()

	heap := func() uint64 {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}
	base := heap()

	const jobs = 8
	for i := 0; i < jobs; i++ {
		st, err := cl.Submit(ctx, smallReq(int64(700+i)))
		if err != nil || st.State != StateDone {
			t.Fatalf("job %d: st=%+v err=%v", i, st, err)
		}
	}
	// Deterministic half: every terminal job must have dropped its
	// progress closure.
	for _, job := range srv.Jobs() {
		job.mu.Lock()
		pinned := job.progress != nil
		job.mu.Unlock()
		if pinned {
			t.Errorf("terminal job %s still holds its progress closure", job.ID)
		}
	}
	// Quantitative half: with the closures dropped, the retained growth
	// is registry entries + cached report strings (~KBs). A pinned
	// pipeline retains ~5 MB, so 8 pinned jobs would add ~40 MB; a
	// 16 MB budget cleanly separates the two while staying deaf to GC
	// noise.
	if grew := int64(heap()) - int64(base); grew > 16<<20 {
		t.Errorf("heap grew %d MB across %d terminal jobs — pipelines appear pinned", grew>>20, jobs)
	}
}

// TestJobHistoryCap: the registry retains at most JobHistory terminal
// jobs; older ones are evicted, their IDs 404, and the eviction counter
// moves. Without the cap, s.jobs and s.order leak on a long-running
// server.
func TestJobHistoryCap(t *testing.T) {
	const cap = 3
	srv, cl := newTestServer(t, Options{Workers: 1, JobHistory: cap})
	ctx := context.Background()

	var ids []string
	for i := 0; i < 8; i++ {
		st, err := cl.Submit(ctx, smallReq(int64(720+i)))
		if err != nil || st.State != StateDone {
			t.Fatalf("job %d: st=%+v err=%v", i, st, err)
		}
		ids = append(ids, st.ID)
	}
	waitFor(t, "registry trimmed to cap", func() bool {
		return len(srv.Jobs()) == cap
	})
	if got := srv.Stats().JobsEvicted; got != 8-cap {
		t.Errorf("jobs_evicted = %d, want %d", got, 8-cap)
	}
	// Oldest IDs are gone (404), the newest survive.
	for i, id := range ids {
		resp, err := http.Get(cl.Base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		want := http.StatusOK
		if i < 8-cap {
			want = http.StatusNotFound
		}
		if resp.StatusCode != want {
			t.Errorf("job %s (index %d): status %d, want %d", id, i, resp.StatusCode, want)
		}
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestWaitRetriesThroughBlips: Wait (the status long-poll) must survive
// transport errors and 503s with the same capped-jittered retry loop
// Submit has — a long-poll blip must not orphan a running job.
func TestWaitRetriesThroughBlips(t *testing.T) {
	srv := New(Options{Workers: 1, Logf: t.Logf})
	// A flaky front end: the first status GET dies mid-response (raw
	// transport error), the second is a 503 with Retry-After, and only
	// then do requests reach the server.
	var statusGets atomic.Int64
	flaky := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet && strings.HasPrefix(r.URL.Path, "/v1/jobs/") {
			switch statusGets.Add(1) {
			case 1:
				conn, _, err := w.(http.Hijacker).Hijack()
				if err != nil {
					t.Errorf("hijack: %v", err)
					return
				}
				conn.Close() // client sees an abrupt EOF
				return
			case 2:
				w.Header().Set("Retry-After", "1")
				http.Error(w, "upstream hiccup", http.StatusServiceUnavailable)
				return
			}
		}
		srv.Handler().ServeHTTP(w, r)
	})
	hts := httptest.NewServer(flaky)
	t.Cleanup(hts.Close)
	cl := &Client{Base: hts.URL, BaseDelay: 5 * time.Millisecond, MaxDelay: 20 * time.Millisecond}

	st, err := cl.SubmitAsync(context.Background(), smallReq(741))
	if err != nil {
		t.Fatal(err)
	}
	got, err := cl.Wait(context.Background(), st.ID)
	if err != nil {
		t.Fatalf("Wait gave up through the blips: %v", err)
	}
	if got.State != StateDone {
		t.Fatalf("job ended %s (%s): %s", got.State, got.ErrorKind, got.Error)
	}
	if n := statusGets.Load(); n < 3 {
		t.Errorf("status GET reached the flaky front end %d times, want >= 3 (two blips + success)", n)
	}
	// A 404 stays non-retryable: no retry storm on a genuinely missing
	// (e.g. history-evicted) job.
	if _, err := cl.Status(context.Background(), "j999999", false); err == nil {
		t.Error("Status of a missing job succeeded")
	} else {
		var remote *RemoteError
		if !errors.As(err, &remote) || remote.Code != http.StatusNotFound {
			t.Errorf("missing job error = %v, want 404", err)
		}
	}
	srv.Drain()
}

// TestUnknownFieldRejected: a typoed request field must 400 (naming the
// field) instead of silently running — and caching — the default config.
func TestUnknownFieldRejected(t *testing.T) {
	srv, cl := newTestServer(t, Options{Workers: 1})
	body := `{"workload": "Pmake", "windwo": 500000}`
	resp, err := http.Post(cl.Base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("typoed submission returned %d, want 400", resp.StatusCode)
	}
	var eb errorBody
	if err := jsonDecode(resp, &eb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(eb.Error, "windwo") {
		t.Errorf("error %q does not name the unknown field", eb.Error)
	}
	if got := srv.Stats(); got.Accepted != 0 {
		t.Errorf("typoed submission was accepted: %+v", got)
	}
}

func jsonDecode(resp *http.Response, v any) error {
	return json.NewDecoder(resp.Body).Decode(v)
}

// TestStatsNeverOverResolved: under concurrent submissions and fast
// dedup resolution, no Stats snapshot may show more resolved jobs
// (completed+failed+canceled) than accepted ones — the acceptance is
// counted inside the admission critical section precisely so this
// invariant holds.
func TestStatsNeverOverResolved(t *testing.T) {
	srv, cl := newTestServer(t, Options{Workers: 2})
	ctx := context.Background()

	stop := make(chan struct{})
	var violations atomic.Int64
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := srv.Stats()
			if st.Completed+st.Failed+st.Canceled > st.Accepted {
				violations.Add(1)
			}
		}
	}()

	var wg sync.WaitGroup
	for round := 0; round < 3; round++ {
		req := smallReq(int64(760 + round))
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if st, err := cl.Submit(ctx, req); err != nil || st.State != StateDone {
					t.Errorf("submit: st=%+v err=%v", st, err)
				}
			}()
		}
		wg.Wait()
	}
	close(stop)
	if n := violations.Load(); n > 0 {
		t.Errorf("observed %d snapshots with resolved > accepted", n)
	}
	if st := srv.Stats(); st.Completed != 24 || st.Accepted != 24 {
		t.Errorf("final stats %+v, want 24/24", st)
	}
}

// TestMetricsEndpoint: /v1/metrics returns a consistent snapshot —
// shards sum to the global aggregate, quantiles are ordered, and the
// counters reflect the traffic just served.
func TestMetricsEndpoint(t *testing.T) {
	_, cl := newTestServer(t, Options{Workers: 2, Shards: 4})
	ctx := context.Background()
	req := smallReq(780)
	for i := 0; i < 3; i++ { // 1 miss + 2 pure hits
		if st, err := cl.Submit(ctx, req); err != nil || st.State != StateDone {
			t.Fatalf("st=%+v err=%v", st, err)
		}
	}

	resp, err := http.Get(cl.Base + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m Metrics
	if err := jsonDecode(resp, &m); err != nil {
		t.Fatal(err)
	}
	if len(m.Shards) != 4 {
		t.Fatalf("metrics reports %d shards, want 4", len(m.Shards))
	}
	var hits, misses, resolved int64
	var entries int
	for _, sh := range m.Shards {
		hits += sh.Hits
		misses += sh.Misses
		resolved += sh.Resolved
		entries += sh.Entries
	}
	if hits != m.Global.Hits || misses != m.Global.Misses ||
		resolved != m.Global.Resolved || entries != m.Global.Entries {
		t.Errorf("shard sums (h=%d m=%d r=%d e=%d) != global (%+v)", hits, misses, resolved, entries, m.Global)
	}
	if m.Global.Hits != 2 || m.Global.Misses != 1 || m.Global.Resolved != 3 || m.Global.Entries != 1 {
		t.Errorf("global = %+v, want 2 hits / 1 miss / 3 resolved / 1 entry", m.Global)
	}
	if m.Global.P50MS > m.Global.P90MS || m.Global.P90MS > m.Global.P99MS {
		t.Errorf("quantiles out of order: %+v", m.Global)
	}
	if m.Global.P99MS <= 0 || m.Global.ThroughputPerSec <= 0 {
		t.Errorf("latency/throughput not populated: %+v", m.Global)
	}
	if m.Workers.Live != 2 || m.Workers.Adaptive {
		t.Errorf("worker metrics %+v, want fixed pool of 2", m.Workers)
	}
	if m.JobsRetained != 3 {
		t.Errorf("jobs_retained = %d, want 3", m.JobsRetained)
	}
	if m.QueueDepth <= 0 {
		t.Errorf("queue depth missing from metrics: %+v", m)
	}
}
