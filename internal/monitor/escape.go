package monitor

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/bus"
)

// Escape-reference encoding (Section 2.2).
//
// The monitor records addresses only, so the instrumented kernel transfers
// events to the trace as uncached byte reads from odd physical addresses:
//
//   - An event starts with a read of EscBase | code<<1 | 1, an odd address
//     in a range where only OS code lives.
//   - Each operand is sent by shifting the value left one bit and setting
//     the least-significant bit, then byte-reading the resulting address.
//
// Because cache-miss transactions are always block-aligned (even) and
// genuine uncached device accesses use even addresses, odd addresses are
// unambiguous. Operand reads are matched to their event by originating CPU;
// the kernel disables interrupts while emitting a sequence, so the operands
// of one event are never interleaved with another event from the same CPU.

// EscBase is the base of the event-code address range, high in the
// kernel-reserved physical space (6 MB, above every kernel structure but
// below the first user frame) so operand addresses (values up to 2^21,
// hence addresses below 4 MB) can never collide with event addresses.
const EscBase arch.PAddr = 0x0060_0000

// MaxOperand bounds escape operand values; OperandAddr panics above it so
// an operand can never alias an event address.
const MaxOperand = 1 << 21

// Event identifies an instrumentation event type.
type Event uint8

// Instrumentation events. Argument lists are documented per event; see
// eventArity for counts.
const (
	// EvTraceStart marks the beginning of tracing. No args.
	EvTraceStart Event = iota
	// EvEnterOS marks entry to an OS invocation. Args: operation kind
	// (a kernel.OpKind), pid.
	EvEnterOS
	// EvExitOS marks the end of an OS invocation. No args.
	EvExitOS
	// EvUTLB marks one complete UTLB (cheap user TLB refill) fault,
	// which the paper treats separately from OS invocations. Args: pid.
	EvUTLB
	// EvEnterIdle marks the CPU entering the OS idle loop. No args.
	EvEnterIdle
	// EvExitIdle marks the CPU leaving the idle loop. No args.
	EvExitIdle
	// EvRunProc records the process now running on this CPU. Args: pid.
	EvRunProc
	// EvTLBChange records a TLB entry change. Args: entry index,
	// virtual page, physical frame, pid.
	EvTLBChange
	// EvEnterIntr marks entry to an interrupt handler (may nest inside
	// a system call). Args: interrupt kind.
	EvEnterIntr
	// EvExitIntr marks exit from an interrupt handler. No args.
	EvExitIntr
	// EvICacheInval records invalidation of all I-cache blocks of a
	// physical frame (code-page reallocation). Args: frame.
	EvICacheInval
	// EvRoutineEnter records entry to an instrumented OS subroutine,
	// used to attribute data misses to dynamically-allocated
	// structures. Args: routine id.
	EvRoutineEnter
	// EvRoutineExit records exit from the instrumented subroutine.
	// No args.
	EvRoutineExit
	// EvBlockOp records a block operation. Args: kind (0 copy, 1 clear,
	// 2 pfdat traversal), size in bytes.
	EvBlockOp
	// EvPageAlloc records allocation of a physical frame. Args: frame,
	// use kind (0 data, 1 code, 2 kernel).
	EvPageAlloc
	// EvPageFree records freeing of a physical frame. Args: frame.
	EvPageFree
	// EvSuspend marks the master process suspending the workload.
	// No args.
	EvSuspend
	// EvResume marks the master process resuming the workload. No args.
	EvResume

	numEvents
)

// eventArity maps each event to its operand count.
var eventArity = [numEvents]int{
	EvTraceStart:   0,
	EvEnterOS:      2,
	EvExitOS:       0,
	EvUTLB:         1,
	EvEnterIdle:    0,
	EvExitIdle:     0,
	EvRunProc:      1,
	EvTLBChange:    4,
	EvEnterIntr:    1,
	EvExitIntr:     0,
	EvICacheInval:  1,
	EvRoutineEnter: 1,
	EvRoutineExit:  0,
	EvBlockOp:      2,
	EvPageAlloc:    2,
	EvPageFree:     1,
	EvSuspend:      0,
	EvResume:       0,
}

// Arity returns the operand count of an event.
func (e Event) Arity() int {
	if e >= numEvents {
		return 0
	}
	return eventArity[e]
}

// String returns the event name.
func (e Event) String() string {
	names := [...]string{
		"TraceStart", "EnterOS", "ExitOS", "UTLB", "EnterIdle",
		"ExitIdle", "RunProc", "TLBChange", "EnterIntr", "ExitIntr",
		"ICacheInval", "RoutineEnter", "RoutineExit", "BlockOp",
		"PageAlloc", "PageFree", "Suspend", "Resume",
	}
	if int(e) < len(names) {
		return names[e]
	}
	return fmt.Sprintf("Event(%d)", uint8(e))
}

// EventAddr returns the odd escape address encoding an event code.
func EventAddr(e Event) arch.PAddr { return EscBase | arch.PAddr(e)<<1 | 1 }

// OperandAddr returns the odd escape address encoding an operand value.
// Values must be below MaxOperand so they stay below EscBase.
func OperandAddr(v uint32) arch.PAddr {
	if v >= MaxOperand {
		panic("monitor: escape operand too large")
	}
	return arch.PAddr(v)<<1 | 1
}

// IsEscape reports whether a bus transaction is an instrumentation escape
// (an uncached read of an odd address).
func IsEscape(t bus.Txn) bool {
	return t.Kind == bus.TxnUncached && t.Addr&1 == 1
}

// DecodeEventAddr extracts the event code from an event-start escape
// address, reporting ok=false if the address is an operand (outside the
// event range).
func DecodeEventAddr(a arch.PAddr) (Event, bool) {
	if a&1 != 1 || a < EscBase || a >= EscBase+arch.PAddr(numEvents)<<1 {
		return 0, false
	}
	return Event((a - EscBase) >> 1), true
}

// DecodeOperandAddr recovers the operand value from an operand escape
// address.
func DecodeOperandAddr(a arch.PAddr) uint32 { return uint32(a) >> 1 }

// Record is a decoded trace element: either a miss (a monitored bus
// transaction that is not an escape) or a complete instrumentation event
// with its arguments.
type Record struct {
	Txn     bus.Txn
	IsEvent bool
	Event   Event
	Args    [4]uint32
}

// Decoder converts a raw transaction stream back into misses and events.
// It keeps per-CPU pending-event state, mirroring how the postprocessing
// program matches operand reads to the preceding event-start read from the
// same CPU. The per-CPU slots are a dense slice (not a map) so the
// per-transaction hot path never allocates or hashes.
type Decoder struct {
	pending []pendingEvent // indexed by CPU, grown on demand
	// Malformed counts stray operand reads with no pending event.
	Malformed int
}

type pendingEvent struct {
	rec    Record
	need   int
	got    int
	active bool
}

// NewDecoder returns a fresh decoder.
func NewDecoder() *Decoder { return &Decoder{} }

// slot returns the pending-event slot of a CPU, growing the table on the
// first transaction seen from a higher-numbered CPU.
func (d *Decoder) slot(cpu arch.CPUID) *pendingEvent {
	if int(cpu) >= len(d.pending) {
		grown := make([]pendingEvent, int(cpu)+1)
		copy(grown, d.pending)
		d.pending = grown
	}
	return &d.pending[cpu]
}

// Feed consumes one transaction and returns a completed record, if any.
// Misses complete immediately; events complete when their last operand
// arrives.
func (d *Decoder) Feed(t bus.Txn) (Record, bool) {
	if !IsEscape(t) {
		return Record{Txn: t}, true
	}
	if ev, ok := DecodeEventAddr(t.Addr); ok {
		p := d.slot(t.CPU)
		if p.active {
			// A new event started before the previous one's
			// operands completed: the old event is lost.
			d.Malformed++
		}
		*p = pendingEvent{
			rec:  Record{Txn: t, IsEvent: true, Event: ev},
			need: ev.Arity(),
		}
		if p.need == 0 {
			return p.rec, true
		}
		p.active = true
		return Record{}, false
	}
	// Operand read.
	p := d.slot(t.CPU)
	if !p.active {
		d.Malformed++
		return Record{}, false
	}
	p.rec.Args[p.got] = DecodeOperandAddr(t.Addr)
	p.got++
	if p.got == p.need {
		p.active = false
		return p.rec, true
	}
	return Record{}, false
}

// Decode converts a whole trace into records.
func Decode(trace []bus.Txn) []Record {
	d := NewDecoder()
	out := make([]Record, 0, len(trace))
	for _, t := range trace {
		if r, ok := d.Feed(t); ok {
			out = append(out, r)
		}
	}
	return out
}
