package machineflag

import (
	"flag"
	"testing"

	"repro/internal/arch"
)

func TestParseSize(t *testing.T) {
	cases := []struct {
		in   string
		want int
		bad  bool
	}{
		{"65536", 65536, false},
		{"64K", 64 << 10, false},
		{"64k", 64 << 10, false},
		{"1M", 1 << 20, false},
		{" 256K ", 256 << 10, false},
		{"64KB", 0, true},
		{"", 0, true},
		{"big", 0, true},
	}
	for _, c := range cases {
		got, err := ParseSize(c.in)
		if c.bad {
			if err == nil {
				t.Errorf("ParseSize(%q) = %d, want error", c.in, got)
			}
			continue
		}
		if err != nil || got != c.want {
			t.Errorf("ParseSize(%q) = %d, %v; want %d", c.in, got, err, c.want)
		}
	}
}

func resolve(t *testing.T, args ...string) (arch.Machine, error) {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parse %v: %v", args, err)
	}
	return f.Machine()
}

func TestDefaultPresetIsTheMeasuredMachine(t *testing.T) {
	m, err := resolve(t)
	if err != nil {
		t.Fatal(err)
	}
	if m != arch.Default() {
		t.Fatalf("default preset = %+v, want arch.Default()", m)
	}
}

func TestPreset4d380(t *testing.T) {
	m, err := resolve(t, "-machine", "4d380")
	if err != nil {
		t.Fatal(err)
	}
	if m.NCPU != 8 || m.MemBytes != 64<<20 {
		t.Fatalf("4d380 = %+v, want 8 CPUs / 64 MB", m)
	}
	want := arch.Default()
	want.NCPU, want.MemBytes = 8, 64<<20
	if m != want {
		t.Fatalf("4d380 changes more than NCPU/MemBytes: %+v", m)
	}
}

func TestOverridesApplyOnTopOfPreset(t *testing.T) {
	m, err := resolve(t, "-machine", "4d380",
		"-icache", "128K", "-dcache-l2", "1M", "-dcache-l2-assoc", "2",
		"-tlb", "128", "-miss-stall", "40", "-l2hit-stall", "0")
	if err != nil {
		t.Fatal(err)
	}
	if m.NCPU != 8 || m.ICacheSize != 128<<10 || m.DCacheL2Size != 1<<20 ||
		m.DCacheL2Assoc != 2 || m.TLBEntries != 128 ||
		m.MissStallCycles != 40 || m.L1MissL2HitCycles != 0 {
		t.Fatalf("overrides not applied: %+v", m)
	}
}

func TestBadInputsAreRejected(t *testing.T) {
	if _, err := resolve(t, "-machine", "4d999"); err == nil {
		t.Error("unknown preset accepted")
	}
	if _, err := resolve(t, "-icache", "64KB"); err == nil {
		t.Error("bad size suffix accepted")
	}
	// A syntactically fine override that produces a degenerate machine
	// must fail Validate with the field named.
	_, err := resolve(t, "-dcache-l2", "48K")
	if err == nil {
		t.Fatal("non-power-of-two cache size accepted")
	}
}
