#!/bin/sh
# Tier-1 verification: build, vet, full test suite with the race detector,
# then a checked fault-injection smoke run. Keep this green before merging.
set -eu

cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test -race ./internal/runner/..."
go test -race ./internal/runner/...

echo "== go test -race ./..."
go test -race ./...

echo "== checked fault-injection smoke (charos -check -inject all)"
go run ./cmd/charos -exp table1 -window 2000000 -check -inject all >/dev/null

echo "== parallel-vs-serial determinism smoke (sweep -exp figure11)"
serial=$(go run ./cmd/sweep -exp figure11 -cpus 2,4 -window 1000000 -parallel 1 2>/dev/null)
pooled=$(go run ./cmd/sweep -exp figure11 -cpus 2,4 -window 1000000 -parallel 8 2>/dev/null)
if [ "$serial" != "$pooled" ]; then
    echo "FAIL: -parallel 8 output diverges from -parallel 1" >&2
    exit 1
fi

echo "== streaming-vs-buffered determinism smoke (charos -buffered)"
streaming=$(go run ./cmd/charos -exp table1 -window 2000000 2>/dev/null)
buffered=$(go run ./cmd/charos -exp table1 -window 2000000 -buffered 2>/dev/null)
if [ "$streaming" != "$buffered" ]; then
    echo "FAIL: streaming pipeline output diverges from the buffered oracle" >&2
    exit 1
fi

echo "== fast-vs-reference determinism smoke (charos -reference)"
reference=$(go run ./cmd/charos -exp table1 -window 2000000 -reference 2>/dev/null)
if [ "$streaming" != "$reference" ]; then
    echo "FAIL: memory-system fast path output diverges from the -reference oracle" >&2
    exit 1
fi

echo "== default-machine oracle (zero Machine vs explicit arch.Default reports)"
go test -run 'TestDefaultMachineMatchesSeed' ./internal/report

echo "== geometry sweep smoke (sweep -exp geometry, checker on)"
go run ./cmd/sweep -exp geometry -window 1000000 >/dev/null

echo "== recorded benchmark gate (bench.sh compare BENCH_PR4 vs BENCH_PR5)"
scripts/bench.sh compare BENCH_PR4.json BENCH_PR5.json -threshold 50

echo "== benchmark regression gate (bench.sh compare vs BENCH_PR5.json)"
# One quick repetition against the committed PR 5 numbers. The threshold is
# deliberately loose (noisy shared runners); tighten it for local tuning.
gate=$(mktemp)
trap 'rm -f "$gate"' EXIT
scripts/bench.sh -count 1 -bench 'BenchmarkPipeline_FullCharacterization' -phase gate -out "$gate" 2>/dev/null
scripts/bench.sh compare BENCH_PR5.json "$gate" -threshold 50

echo "ok"
