package report

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/workload"
)

// TestCanceledThenRerunByteIdentical is the recovery oracle: a canceled
// run leaves no residue, so rerunning the same config afterwards renders
// byte-identically to a run that was never preceded by a cancellation.
func TestCanceledThenRerunByteIdentical(t *testing.T) {
	cfg := core.Config{Workload: workload.Pmake, Window: 400_000, Warmup: 200_000, Seed: 11}
	want := Single(core.Run(cfg))
	if want == "" {
		t.Fatal("empty report")
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	big := cfg
	big.Window = 200_000_000
	if _, err := core.RunContext(ctx, big); !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("big run under a 1ms deadline returned %v, want cancellation", err)
	}

	if got := Single(core.Run(cfg)); got != want {
		t.Errorf("rerun after a cancellation diverged:\n--- before\n%s\n--- after\n%s", want, got)
	}
}

func TestRunSetContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	set, err := RunSetContext(ctx, core.Config{Window: 400_000, Warmup: 200_000}, runner.Options{Parallelism: 1})
	if set != nil || err == nil {
		t.Fatalf("canceled RunSetContext returned (%v, %v)", set, err)
	}
	if !errors.Is(err, core.ErrCanceled) {
		t.Errorf("error %v does not match core.ErrCanceled", err)
	}
	var ce *core.CanceledError
	if !errors.As(err, &ce) {
		t.Errorf("error %T carries no provenance", err)
	}
}
