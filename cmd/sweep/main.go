// Command sweep runs the parameter-sweep experiments: the Figure 6
// I-cache size/associativity re-simulation, the Figure 11 lock
// contention sweep over CPU counts, and the full-system geometry sweep
// that re-runs the simulator at each data-cache configuration and
// cross-validates the §4.2.2 replay oracle. Independent runs fan out
// across a worker pool; -parallel 1 restores serial execution (output
// is byte-identical either way).
//
// Usage:
//
//	sweep -exp figure6 [-window N] [-parallel N]
//	sweep -exp figure11 [-cpus 2,4,6,8,12,16] [-parallel N]
//	sweep -exp geometry [-machine 4d340|4d380] [-window N] [-parallel N]
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/arch"
	"repro/internal/cachesweep"
	"repro/internal/core"
	"repro/internal/machineflag"
	"repro/internal/profiling"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/sample"
	"repro/internal/trace"
)

func main() { os.Exit(run()) }

func run() int {
	exp := flag.String("exp", "figure6", "figure6, figure11 or geometry")
	window := machineflag.CyclesFlag(flag.CommandLine, "window", int64(arch.DefaultWindow),
		"traced window in 30ns cycles (K/M/G suffixes and scientific notation ok, e.g. 1e9)")
	sampleSpec := flag.String("sample", "",
		"sampled simulation schedule \"warmup:len:period\" for the geometry sweep's full-system re-runs (e.g. 100K:200K:10M)")
	seed := flag.Int64("seed", 1, "random seed")
	cpus := flag.String("cpus", "2,4,6,8,12,16", "CPU counts for figure11")
	checkFlag := flag.Bool("check", false, "run the invariant checker alongside the sweep")
	reference := flag.Bool("reference", false,
		"run the generic oracle paths instead of the memory-system fast path")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"worker-pool size for independent runs (1 = serial)")
	simWorkers := flag.Int("sim-workers", 1,
		"intra-run worker goroutines for the conservative parallel engine (1 = serial scheduler); output is byte-identical at any count")
	timeout := flag.Duration("timeout", 0,
		"wall-clock budget for the whole sweep (0 = none); on expiry prints the cancellation provenance and exits nonzero")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	mf := machineflag.Register(flag.CommandLine)
	flag.Parse()

	machine, err := mf.Machine()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	stopProf, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	defer stopProf()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// Oversubscription cap: pool workers × intra-run workers must fit the
	// machine, or the engines just contend with each other.
	pool := runner.CapTotal(*parallel, *simWorkers)
	if pool != *parallel {
		fmt.Fprintf(os.Stderr, "note: -parallel clamped %d -> %d (-sim-workers %d, GOMAXPROCS %d)\n",
			*parallel, pool, *simWorkers, runtime.GOMAXPROCS(0))
	}
	sched, err := sample.Parse(*sampleSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if sched.Enabled() && *exp != "geometry" {
		// figure6 re-simulates the materialized I-stream and figure11
		// compares exact lock counts — both need the full trace.
		fmt.Fprintf(os.Stderr, "-sample only applies to -exp geometry (%s needs the exact trace)\n", *exp)
		return 2
	}

	opts := runner.Options{Parallelism: pool, SimWorkers: *simWorkers}
	switch *exp {
	case "figure6":
		set, err := report.RunSetContext(ctx, core.Config{
			Machine: machine,
			Window:  arch.Cycles(*window), Seed: *seed, CollectIResim: true,
			Check: *checkFlag, Reference: *reference,
		}, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Print(report.Figure6(set))
		fmt.Fprint(os.Stderr, set.Stats.Table())
		// Report every failing workload before exiting so one sweep run
		// diagnoses the whole set.
		bad := false
		for _, ch := range []*core.Characterization{set.Pmake, set.Multpgm, set.Oracle} {
			bad = report.ReportViolations(os.Stderr, ch.Cfg.Workload.String(), ch, 1) || bad
		}
		if bad {
			return 1
		}
	case "figure11":
		var counts []int
		for _, part := range strings.Split(*cpus, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "bad cpu count %q\n", part)
				return 2
			}
			counts = append(counts, n)
		}
		pts, batch, err := report.RunFigure11Context(ctx, counts, arch.Cycles(*window), *seed, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Print(report.Figure11(pts))
		fmt.Fprint(os.Stderr, batch.Table())
	case "geometry":
		return geometry(ctx, machine, arch.Cycles(*window), *seed, sched, opts)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		return 2
	}
	return 0
}

// osDMisses sums the classified OS data misses of one full-system run.
// Sampled runs report the extrapolated whole-window estimate instead of
// the (partial) measured counts.
func osDMisses(ch *core.Characterization) int64 {
	if ch.Sampled != nil {
		var t float64
		for cl := 0; cl < sample.NumClasses; cl++ {
			c, _ := ch.Sampled.ClassTotal(1, 0, cl)
			t += c
		}
		return int64(math.Round(t))
	}
	var n int64
	for cl := trace.MissClass(0); cl < trace.NumClasses; cl++ {
		n += ch.Trace.Counts[1][0][cl]
	}
	return n
}

// geometry runs the data-cache sweep twice — once by replaying the
// baseline machine's miss stream against each cache configuration (the
// paper's §4.2.2 trace-driven method) and once by re-running the whole
// system with the coherence-level cache actually resized — then prints
// the two relative-miss curves side by side. The replay mirrors are
// direct-mapped models, so set-associative points run replay-only. A
// final run exercises the 4d380 preset (8 CPUs, 64 MB) end to end. The
// invariant checker rides every full-system run; any violation fails
// the sweep.
func geometry(ctx context.Context, m arch.Machine, window arch.Cycles, seed int64, sched sample.Schedule, opts runner.Options) int {
	fmt.Fprintf(os.Stderr, "geometry sweep on %s, window %d, seed %d\n", m, window, seed)
	if sched.Enabled() {
		// The baseline must materialize the full miss stream for the
		// replay oracle, so only the direct re-runs and the preset run
		// are sampled; their miss counts become extrapolated estimates.
		fmt.Fprintf(os.Stderr, "sampling %s on the direct re-runs (baseline stays full for the replay oracle)\n", sched)
	}

	base, err := core.RunContext(ctx, core.Config{
		Machine: m, Window: window, Seed: seed,
		CollectDResim: true, Check: true,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	bad := report.ReportViolations(os.Stderr, "baseline "+m.String(), base, 1)

	cfgs := core.DefaultDSweepConfigs()
	replay := base.DCacheSweep(cfgs)

	// Direct full-system re-runs: one per direct-mapped configuration
	// (the replay caches cannot model associativity, so those points
	// have no comparable direct run).
	type directPoint struct {
		ch     *core.Characterization
		misses int64
		err    error
	}
	var directCfgs []cachesweep.Config
	for _, cfg := range cfgs {
		if cfg.Assoc == 1 {
			directCfgs = append(directCfgs, cfg)
		}
	}
	direct, mapErr := runner.MapContext(ctx, len(directCfgs), opts, func(ctx context.Context, i int) directPoint {
		m2 := m
		m2.DCacheL2Size = directCfgs[i].Size
		m2.DCacheL2Assoc = directCfgs[i].Assoc
		ch, err := core.RunContext(ctx, core.Config{
			Machine: m2, Window: window, Seed: seed, Check: true, Sample: sched,
		})
		if err != nil {
			return directPoint{err: err}
		}
		return directPoint{ch: ch, misses: osDMisses(ch)}
	})
	if mapErr != nil {
		fmt.Fprintln(os.Stderr, mapErr)
		return 1
	}
	for _, p := range direct {
		if p.err != nil {
			fmt.Fprintln(os.Stderr, p.err)
			return 1
		}
	}
	var directBase int64
	for i, cfg := range directCfgs {
		if cfg.Size == m.DCacheL2Size && cfg.Assoc == m.DCacheL2Assoc {
			directBase = direct[i].misses
		}
	}

	fmt.Printf("Data-cache geometry sweep: replay oracle vs direct full-system re-run\n")
	fmt.Printf("(OS data misses relative to the %s point of each method)\n\n",
		sizeLabel(m.DCacheL2Size))
	fmt.Printf("  %-12s %14s %9s %14s %9s\n",
		"cache", "replay misses", "rel", "direct misses", "rel")
	di := 0
	for i, cfg := range cfgs {
		label := fmt.Sprintf("%s/%d-way", sizeLabel(cfg.Size), cfg.Assoc)
		fmt.Printf("  %-12s %14d %9.2f", label, replay[i].OSMisses, replay[i].Relative)
		if cfg.Assoc == 1 {
			p := direct[di]
			rel := 0.0
			if directBase > 0 {
				rel = float64(p.misses) / float64(directBase)
			}
			fmt.Printf(" %14d %9.2f\n", p.misses, rel)
			bad = report.ReportViolations(os.Stderr, "direct "+label, p.ch, 1) || bad
			di++
		} else {
			fmt.Printf(" %14s %9s\n", "-", "-")
		}
	}

	// The 8-CPU / 64 MB preset, end to end with the checker on.
	big, _ := machineflag.Preset("4d380")
	bch, err := core.RunContext(ctx, core.Config{
		Machine: big, Window: window, Seed: seed, Check: true, Sample: sched,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	bad = report.ReportViolations(os.Stderr, "preset "+big.String(), bch, 1) || bad
	user, sys, idle := bch.TimeSplit()
	all, osOnly, _ := bch.StallPct()
	fmt.Printf("\n4d380 preset (%s):\n", big)
	fmt.Printf("  time split user/sys/idle: %.1f%% / %.1f%% / %.1f%%\n", user, sys, idle)
	fmt.Printf("  memory-stall share: %.1f%% of non-idle cycles (OS %.1f%%)\n", all, osOnly)
	fmt.Printf("  OS data misses: %d\n", osDMisses(bch))

	if bad {
		return 1
	}
	return 0
}

func sizeLabel(n int) string {
	if n >= 1<<20 && n%(1<<20) == 0 {
		return fmt.Sprintf("%dM", n>>20)
	}
	return fmt.Sprintf("%dK", n>>10)
}
