// Command charos runs the full characterization pipeline — the simulated
// four-CPU multiprocessor, the instrumented kernel, the three workloads of
// the paper, the hardware monitor, and the trace postprocessor — and
// prints any (or all) of the paper's tables and figures with the published
// values side by side.
//
// Usage:
//
//	charos [-exp all|table1|figure1|...|table12] [-window N] [-seed N]
//	charos -exp figure6            # includes the cache sweeps
//	charos -exp table1 -window 24000000
//	charos -exp table1 -check      # run under the invariant checker
//	charos -exp table1 -check -inject all   # checked fault-injection run
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/arch"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/inject"
	"repro/internal/machineflag"
	"repro/internal/profiling"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/sample"
	"repro/internal/workload"
)

// reportViolations prints a run's invariant violations to stderr and
// reports whether there were any.
func reportViolations(name string, ch *core.Characterization) bool {
	return report.ReportViolations(os.Stderr, name, ch, -1)
}

func main() { os.Exit(run()) }

func run() int {
	exp := flag.String("exp", "all", "experiment to reproduce: all, report, table1, figure1, figure2, figure3, figure4, figure5, figure6, figure7, table3, figure8, table4, table5, table6, table7, figure9, table9, figure10, table10, table11, table12, section6")
	window := machineflag.CyclesFlag(flag.CommandLine, "window", int64(arch.DefaultWindow),
		"traced window in 30ns cycles (K/M/G suffixes and scientific notation ok, e.g. 1e9)")
	sampleSpec := flag.String("sample", "",
		"sampled simulation schedule \"warmup:len:period\" in cycles (e.g. 100K:200K:10M); requires -exp report")
	seed := flag.Int64("seed", 1, "random seed")
	ncpu := flag.Int("ncpu", 0, "number of CPUs (0 = the -machine preset's count)")
	affinity := flag.Bool("affinity", false, "enable cache-affinity scheduling")
	checkFlag := flag.Bool("check", false, "run the invariant checker (shadow memory, coherence, lock discipline)")
	injectFlag := flag.String("inject", "", "fault-injection modes: evict, jitter, intr, migrate, all, or a comma list")
	faultSeed := flag.Int64("fault-seed", 0, "fault-injector seed (0 derives one from -seed)")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"worker-pool size for the three workload runs (1 = serial)")
	simWorkers := flag.Int("sim-workers", 1,
		"intra-run worker goroutines for the conservative parallel engine (1 = serial scheduler); output is byte-identical at any count")
	timeout := flag.Duration("timeout", 0,
		"wall-clock budget for the whole run (0 = none); on expiry prints the cancellation provenance and exits nonzero")
	buffered := flag.Bool("buffered", false,
		"use the stop-and-drain pipeline (materialize the monitor trace, classify post-run) instead of streaming classification")
	reference := flag.Bool("reference", false,
		"run the generic oracle paths (way-loop caches, full snoop broadcasts, rescan scheduler) instead of the memory-system fast path")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	mf := machineflag.Register(flag.CommandLine)
	flag.Parse()

	machine, err := mf.Machine()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	stopProf, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	defer stopProf()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	icfg, err := inject.Preset(*injectFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	icfg.Seed = *faultSeed
	var injectCfg *inject.Config
	if icfg.Enabled() {
		injectCfg = &icfg
		if !*checkFlag {
			fmt.Fprintln(os.Stderr, "note: -inject without -check perturbs the run unvalidated")
		}
	}

	// Oversubscription cap: pool workers × intra-run workers must fit the
	// machine, or the engines just contend with each other.
	pool := runner.CapTotal(*parallel, *simWorkers)
	if pool != *parallel {
		fmt.Fprintf(os.Stderr, "note: -parallel clamped %d -> %d (-sim-workers %d, GOMAXPROCS %d)\n",
			*parallel, pool, *simWorkers, runtime.GOMAXPROCS(0))
	}

	name := strings.ToLower(*exp)
	sched, err := sample.Parse(*sampleSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if sched.Enabled() {
		// The paper tables print exact classification counts; under
		// sampling only the extrapolated estimate is meaningful, and only
		// the per-run report renders it (with error bars).
		if name != "report" {
			fmt.Fprintln(os.Stderr, "-sample requires -exp report (the other sections print exact classification tables)")
			return 2
		}
		if *buffered {
			fmt.Fprintln(os.Stderr, "-sample requires the streaming pipeline (drop -buffered)")
			return 2
		}
	}
	cfg := core.Config{
		Machine:       machine,
		Window:        arch.Cycles(*window),
		Seed:          *seed,
		NCPU:          *ncpu,
		Affinity:      *affinity,
		Check:         *checkFlag,
		Inject:        injectCfg,
		Buffered:      *buffered,
		Reference:     *reference,
		SimWorkers:    *simWorkers,
		Sample:        sched,
		CollectIResim: name == "all" || name == "figure6",
	}

	// Static sections need no simulation.
	switch name {
	case "table3":
		fmt.Print(report.Table3())
		return 0
	case "table11":
		fmt.Print(report.Table11())
		return 0
	case "section6":
		// The cluster what-if study runs its own 8-CPU simulation. It
		// reprices the materialized transaction trace, so it always runs
		// the buffered pipeline.
		ch, err := core.RunContext(ctx, core.Config{
			Workload: workload.Multpgm, Machine: machine, NCPU: 8,
			Window: arch.Cycles(*window), Seed: *seed,
			Check: *checkFlag, Inject: injectCfg, Buffered: true,
			Reference: *reference,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		results := cluster.Study(ch.Sim.Mon.Trace(), ch.Sim.K.L, 8, 2)
		fmt.Print(cluster.Render(results, "Multpgm, 4 clusters of 2"))
		if reportViolations("section6", ch) {
			return 1
		}
		return 0
	}

	sections := map[string]func(*report.Set) string{
		"table1":   report.Table1,
		"figure1":  report.Figure1,
		"figure2":  report.Figure2,
		"figure3":  report.Figure3,
		"figure4":  report.Figure4,
		"figure5":  report.Figure5,
		"figure6":  report.Figure6,
		"figure7":  report.Figure7,
		"figure8":  report.Figure8,
		"table4":   report.Table4,
		"table5":   report.Table5,
		"table6":   report.Table6,
		"table7":   report.Table7,
		"figure9":  report.Figure9,
		"table9":   report.Table9,
		"figure10": report.Figure10,
		"table10":  report.Table10,
		"table12":  report.Table12,
	}
	// Validate before the (expensive) simulations run.
	if _, ok := sections[name]; !ok && name != "all" && name != "report" {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		return 2
	}

	fmt.Fprintf(os.Stderr, "running Pmake, Multpgm and Oracle (window %d cycles ≈ %.0f ms at 33 MHz, %d workers)...\n",
		cfg.Window, float64(cfg.Window.NS())/1e6, pool)
	if injectCfg != nil {
		fmt.Fprintf(os.Stderr, "fault injection on: %s\n", injectCfg.Modes())
	}
	set, err := report.RunSetContext(ctx, cfg, runner.Options{Parallelism: pool})
	if err != nil {
		// The structured cancellation carries its provenance: canonical
		// config hash, seed, and the simulated cycle reached.
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	switch name {
	case "all":
		fmt.Print(report.All(set))
		fmt.Print(report.Figure6(set))
	case "report":
		// Per-run reports: the one section that renders sampled runs
		// (estimated totals with error bars) as well as full ones.
		fmt.Print(report.Single(set.Pmake))
		fmt.Print(report.Single(set.Multpgm))
		fmt.Print(report.Single(set.Oracle))
	default:
		fmt.Print(sections[name](set))
	}
	fmt.Fprint(os.Stderr, set.Stats.Table())
	if injectCfg != nil && set.Pmake.Sim.Inj != nil {
		fmt.Fprintf(os.Stderr, "faults delivered (Pmake): %v\n", set.Pmake.Sim.Inj.Stats)
	}
	bad := reportViolations("Pmake", set.Pmake)
	bad = reportViolations("Multpgm", set.Multpgm) || bad
	bad = reportViolations("Oracle", set.Oracle) || bad
	if bad {
		return 1
	}
	if cfg.Check {
		fmt.Fprintf(os.Stderr, "invariant checker: %d checks, 0 violations\n",
			set.Pmake.Sim.Chk.Checks+set.Multpgm.Sim.Chk.Checks+set.Oracle.Sim.Chk.Checks)
	}
	return 0
}
