package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/arch"
)

func TestDirectMappedBasics(t *testing.T) {
	c := New("i", 64, 1) // 4 sets of 16 B
	if c.Sets() != 4 {
		t.Fatalf("Sets() = %d, want 4", c.Sets())
	}
	// Cold miss.
	hit, _, hadEv := c.Access(0x100, false)
	if hit || hadEv {
		t.Errorf("first access: hit=%v hadEv=%v, want miss without eviction", hit, hadEv)
	}
	// Re-access hits.
	if hit, _, _ := c.Access(0x10F, false); !hit {
		t.Error("same-block access should hit")
	}
	// Conflicting block (same set: addresses 64 bytes apart with 4 sets).
	hit, ev, hadEv := c.Access(0x100+64, false)
	if hit {
		t.Error("conflicting access should miss")
	}
	if !hadEv || ev.Block != 0x100 {
		t.Errorf("eviction = %+v (had=%v), want block 0x100", ev, hadEv)
	}
	// Original is gone.
	if c.Lookup(0x100) {
		t.Error("0x100 should have been displaced")
	}
}

func TestDirtyEviction(t *testing.T) {
	c := New("d", 64, 1)
	c.Access(0x200, true) // write miss, fills dirty
	_, ev, hadEv := c.Access(0x200+64, false)
	if !hadEv || !ev.Dirty {
		t.Errorf("displacing a written block: ev=%+v had=%v, want dirty eviction", ev, hadEv)
	}
	// Clean block eviction is not dirty.
	c2 := New("d2", 64, 1)
	c2.Access(0x200, false)
	_, ev2, _ := c2.Access(0x200+64, false)
	if ev2.Dirty {
		t.Error("clean block evicted as dirty")
	}
}

func TestSetAssociativeLRU(t *testing.T) {
	c := New("a", 2*64, 2) // 4 sets, 2-way
	// Three blocks mapping to the same set (stride = sets*blocksize = 64).
	a0, a1, a2 := arch.PAddr(0x000), arch.PAddr(0x040), arch.PAddr(0x080)
	c.Access(a0, false)
	c.Access(a1, false)
	c.Access(a0, false) // a0 now MRU; a1 is LRU
	_, ev, hadEv := c.Access(a2, false)
	if !hadEv || ev.Block != a1 {
		t.Errorf("LRU eviction = %+v (had=%v), want a1=%#x", ev, hadEv, a1)
	}
	if !c.Lookup(a0) || !c.Lookup(a2) || c.Lookup(a1) {
		t.Error("residency after LRU eviction wrong")
	}
}

func TestInvalidate(t *testing.T) {
	c := New("i", 128, 1)
	c.Access(0x300, true)
	was, dirty := c.Invalidate(0x300)
	if !was || !dirty {
		t.Errorf("Invalidate = (%v,%v), want resident dirty", was, dirty)
	}
	if was, _ := c.Invalidate(0x300); was {
		t.Error("double invalidate reported resident")
	}
	if c.Lookup(0x300) {
		t.Error("block resident after invalidate")
	}
}

func TestInvalidateFrame(t *testing.T) {
	c := New("i", arch.ICacheSize, 1)
	// Fill 10 blocks of frame 5 and 3 blocks of frame 6.
	for i := 0; i < 10; i++ {
		c.Access(arch.FrameAddr(5)+arch.PAddr(i*arch.BlockSize), false)
	}
	for i := 0; i < 3; i++ {
		c.Access(arch.FrameAddr(6)+arch.PAddr(i*arch.BlockSize), false)
	}
	if n := c.InvalidateFrame(5); n != 10 {
		t.Errorf("InvalidateFrame(5) = %d, want 10", n)
	}
	if c.Lookup(arch.FrameAddr(5)) {
		t.Error("frame-5 block survived frame invalidation")
	}
	if !c.Lookup(arch.FrameAddr(6)) {
		t.Error("frame-6 block wrongly invalidated")
	}
}

func TestResidentBlocksAndInvalidateAll(t *testing.T) {
	c := New("x", 256, 1)
	for i := 0; i < 5; i++ {
		c.Access(arch.PAddr(i*arch.BlockSize), false)
	}
	if n := c.ResidentBlocks(); n != 5 {
		t.Errorf("ResidentBlocks = %d, want 5", n)
	}
	c.InvalidateAll()
	if n := c.ResidentBlocks(); n != 0 {
		t.Errorf("ResidentBlocks after InvalidateAll = %d, want 0", n)
	}
}

// Property: in a direct-mapped cache, the resident block in a set is always
// the block of the last access mapping to that set. This is the invariant
// the trace package's mirror-cache reconstruction relies on.
func TestDirectMappedMirrorInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New("m", 1024, 1)
		last := make(map[int]arch.PAddr)
		for i := 0; i < 500; i++ {
			a := arch.PAddr(rng.Intn(1 << 14))
			c.Access(a, rng.Intn(2) == 0)
			last[c.SetOf(a)] = a.Block()
		}
		for set, want := range last {
			got, ok := c.Peek(arch.PAddr(set << arch.BlockShift))
			if !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: number of resident blocks never exceeds capacity, and every
// resident block is found by Lookup at its own address.
func TestCapacityProperty(t *testing.T) {
	f := func(seed int64, assocSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		assoc := 1 << (assocSel % 3) // 1, 2, 4
		c := New("p", 512*assoc, assoc)
		for i := 0; i < 300; i++ {
			a := arch.PAddr(rng.Intn(1 << 13))
			c.Access(a, false)
			if !c.Lookup(a) {
				return false
			}
		}
		return c.ResidentBlocks() <= c.Size()/arch.BlockSize
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestNewPanicsOnBadGeometry(t *testing.T) {
	cases := []struct {
		size, assoc int
	}{
		{0, 1}, {64, 0}, {48, 1} /* 3 sets */, {64, 3},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(size=%d, assoc=%d) did not panic", tc.size, tc.assoc)
				}
			}()
			New("bad", tc.size, tc.assoc)
		}()
	}
}

func TestHierarchyLevels(t *testing.T) {
	h := NewDataHierarchy("cpu0", arch.Default())
	a := arch.PAddr(0x1000)
	if r := h.Access(a, false); r.Result != DataMiss {
		t.Errorf("first access = %v, want miss", r.Result)
	}
	if r := h.Access(a, false); r.Result != DataL1Hit {
		t.Errorf("second access = %v, want l1hit", r.Result)
	}
	// Displace from L1 (64 KB direct-mapped → stride 64 KB conflicts)
	// but not from L2 (256 KB → different set behaviour).
	conflict := a + arch.PAddr(arch.DCacheL1Size)
	if r := h.Access(conflict, false); r.Result != DataMiss {
		t.Errorf("conflict fill = %v, want miss", r.Result)
	}
	// a is out of L1 now but still in L2.
	if r := h.Access(a, false); r.Result != DataL2Hit {
		t.Errorf("refetch = %v, want l2hit", r.Result)
	}
}

func TestHierarchyInclusionOnL2Eviction(t *testing.T) {
	h := NewDataHierarchy("cpu0", arch.Default())
	a := arch.PAddr(0x2000)
	h.Access(a, false)
	// Evict a from L2: same L2 set → stride 256 KB.
	b := a + arch.PAddr(arch.DCacheL2Size)
	r := h.Access(b, false)
	if r.Result != DataMiss || !r.L2HadEv || r.L2Evicted.Block != a.Block() {
		t.Fatalf("expected L2 eviction of %#x, got %+v", a, r)
	}
	// Inclusion: a must be gone from L1 too, so the next access is a
	// full miss, not an L1 hit on a stale line.
	if res := h.Access(a, false); res.Result != DataMiss {
		t.Errorf("after inclusion eviction, access = %v, want miss", res.Result)
	}
}

func TestHierarchyWriteBackPropagation(t *testing.T) {
	h := NewDataHierarchy("cpu0", arch.Default())
	a := arch.PAddr(0x3000)
	h.Access(a, false) // clean fill
	h.Access(a, true)  // L1 write hit — must mark L2 dirty too
	b := a + arch.PAddr(arch.DCacheL2Size)
	r := h.Access(b, false)
	if !r.L2HadEv || !r.WriteBack {
		t.Errorf("L2 eviction of written block: %+v, want WriteBack=true", r)
	}
}

func TestHierarchyInvalidate(t *testing.T) {
	h := NewDataHierarchy("cpu0", arch.Default())
	a := arch.PAddr(0x4000)
	h.Access(a, true)
	was, dirty := h.Invalidate(a)
	if !was || !dirty {
		t.Errorf("Invalidate = (%v,%v), want resident dirty", was, dirty)
	}
	if h.Resident(a) {
		t.Error("block resident after coherence invalidation")
	}
	if r := h.Access(a, false); r.Result != DataMiss {
		t.Errorf("post-invalidation access = %v, want miss", r.Result)
	}
}

// Property: the two-level hierarchy agrees with a flat reference model on
// bus visibility — a reference misses the bus iff it is absent from the
// L2-sized reference cache (inclusion makes L1 irrelevant to bus traffic).
func TestHierarchyBusVisibilityMatchesFlatL2(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewDataHierarchy("h", arch.Default())
		ref := New("ref", arch.DCacheL2Size, 1)
		for i := 0; i < 3000; i++ {
			a := arch.PAddr(rng.Intn(1 << 22))
			w := rng.Intn(3) == 0
			got := h.Access(a, w)
			refHit, _, _ := ref.Access(a, w)
			if (got.Result == DataMiss) == refHit {
				return false // bus visibility disagrees
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestDataResultString(t *testing.T) {
	if DataL1Hit.String() != "l1hit" || DataL2Hit.String() != "l2hit" || DataMiss.String() != "miss" {
		t.Error("DataResult strings wrong")
	}
}

func TestPeekOnAssociativeCache(t *testing.T) {
	c := New("a", 2*64, 2)
	if _, ok := c.Peek(0); ok {
		t.Error("empty set peeked a block")
	}
	c.Access(0x000, false)
	c.Access(0x040, false) // same set, second way
	got, ok := c.Peek(0x000)
	if !ok || got != 0x040 {
		t.Errorf("Peek = %#x,%v want MRU 0x40", got, ok)
	}
}

func TestSharedBitLifecycle(t *testing.T) {
	c := New("s", 128, 1)
	// SetShared on a non-resident block is a no-op; Shared is false.
	c.SetShared(0x100, true)
	if c.Shared(0x100) {
		t.Error("shared bit set on absent block")
	}
	c.Access(0x100, false)
	c.SetShared(0x100, true)
	if !c.Shared(0x100) {
		t.Error("shared bit lost")
	}
	// A fill into the same set clears the new line's shared bit.
	c.Access(0x100+128, false)
	if c.Shared(0x100 + 128) {
		t.Error("fresh fill born shared")
	}
	// Dirty/Clean lifecycle.
	c.Access(0x200, true)
	if !c.Dirty(0x200) {
		t.Error("written block not dirty")
	}
	c.Clean(0x200)
	if c.Dirty(0x200) {
		t.Error("Clean did not clear dirty")
	}
	if c.Dirty(0xF00) {
		t.Error("absent block dirty")
	}
}

// TestQuickMirrorDeterminism is the property the whole trace pipeline
// rests on (Section 2.2): a direct-mapped cache's contents are fully
// determined by its miss stream — each set holds exactly the block last
// MISSED on, so a mirror replaying only the misses matches the cache.
func TestQuickMirrorDeterminism(t *testing.T) {
	f := func(refs []uint16) bool {
		c := New("dm", 64*16, 1) // 64 sets of 16B blocks
		mirror := map[int]arch.PAddr{}
		for _, r := range refs {
			a := arch.PAddr(r) * arch.BlockSize
			hit, _, _ := c.Access(a, false)
			if !hit {
				mirror[c.SetOf(a)] = a.Block()
			}
		}
		for set, want := range mirror {
			got, ok := c.Peek(arch.PAddr(set) * arch.BlockSize)
			_ = got
			if !ok {
				return false
			}
			if !c.Lookup(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickInvalidateRemoves: after invalidating any block, it is no
// longer resident, and re-access misses exactly once.
func TestQuickInvalidateRemoves(t *testing.T) {
	f := func(blocks []uint16) bool {
		c := New("x", 32*16, 2)
		for _, b := range blocks {
			a := arch.PAddr(b) * arch.BlockSize
			c.Access(a, true)
			c.Invalidate(a)
			if c.Lookup(a) {
				return false
			}
			if hit, _, _ := c.Access(a, false); hit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
