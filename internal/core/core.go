// Package core is the characterization pipeline — the paper's contribution
// as an API. One call builds the simulated 4D/340, boots the kernel model,
// runs a workload under the hardware monitor, postprocesses the bus trace
// with the Section 2.2 methodology, and exposes every quantity the paper's
// tables and figures report.
//
//	ch := core.Run(core.Config{Workload: workload.Pmake})
//	user, sys, idle := ch.TimeSplit()
//	all, os, induced := ch.StallPct()
package core

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"

	"repro/internal/arch"
	"repro/internal/cachesweep"
	"repro/internal/check"
	"repro/internal/inject"
	"repro/internal/kernel"
	"repro/internal/sample"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Config selects a workload and machine configuration.
type Config struct {
	// Workload is one of workload.Pmake, Multpgm, Oracle.
	Workload workload.Kind
	// Machine is the simulated hardware; the zero value means
	// arch.Default() (the measured 4D/340). NCPU, when set, overrides
	// Machine.NCPU.
	Machine arch.Machine
	// NCPU is the processor count (default Machine.NCPU).
	NCPU int
	// Seed makes runs reproducible (default 1).
	Seed int64
	// Window is the traced window in cycles (default 12M ≈ 0.36 s at
	// 33 MHz); Warmup defaults to half the window.
	Window arch.Cycles
	Warmup arch.Cycles
	// Affinity enables cache-affinity scheduling (the §4.2.2 ablation).
	Affinity bool
	// OptimizedText lays out the kernel image to avoid I-cache
	// conflicts between hot paths (the §4.2.1 ablation).
	OptimizedText bool
	// BlockOpBypass routes block copies/clears around the caches (the
	// §4.2.2 ablation).
	BlockOpBypass bool
	// UpdateProtocol switches coherence from write-invalidate to
	// write-update (a protocol ablation beyond the paper).
	UpdateProtocol bool
	// NoTrace disables the monitor and the classification; only kernel
	// and lock statistics are collected (used by the Figure 11 sweeps).
	NoTrace bool
	// Buffered selects the original stop-and-drain pipeline: the monitor
	// materializes the full transaction trace and the classifier replays
	// it after the run, exactly as the paper's SRAM monitor + postprocess
	// flow. The default is the streaming pipeline — the classifier rides
	// the bus as a recorder and classifies each miss the cycle it occurs,
	// so no trace buffer is ever allocated. Buffered remains as the
	// oracle: both paths must produce byte-identical reports.
	Buffered bool
	// Reference runs the generic oracle paths (way-loop caches, full
	// snoop broadcasts, rescan-every-step scheduler) instead of the
	// memory-system fast path. Reports must be byte-identical either way;
	// the flag exists to prove it and to debug the fast path.
	Reference bool
	// CollectIResim records the I-miss stream for Figure 6 sweeps.
	CollectIResim bool
	// CollectDResim records the data-miss stream for the §4.2.2
	// data-cache sweep.
	CollectDResim bool
	// Check enables the invariant checker (shadow memory, coherence,
	// lock discipline); violations land in Characterization.CheckErrors.
	Check bool
	// Inject, when non-nil and enabled, runs the workload under
	// deterministic fault injection.
	Inject *inject.Config
	// SimWorkers > 1 enables the conservative parallel engine: the CPUs
	// are speculated ahead across that many goroutines and committed in
	// the exact serial order, so the report is byte-identical to a
	// serial run. Deliberately excluded from Hash(): the worker count
	// changes wall-clock time only, never the output, so every worker
	// count shares one content address (and one result-cache slot).
	SimWorkers int
	// Sample, when enabled, runs the window under the sampled-simulation
	// regime (functional fast-forward + measured detailed intervals; see
	// the sample package) and fills Characterization.Sampled with the
	// extrapolated per-class estimate. Requires the streaming classifier:
	// incompatible with NoTrace, Buffered and the resim collectors.
	// Included in Hash() — a sampled run's output is not a full run's.
	Sample sample.Schedule
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Window <= 0 {
		c.Window = arch.DefaultWindow
	}
	if c.Warmup <= 0 {
		c.Warmup = c.Window / 2
	}
	if c.Machine == (arch.Machine{}) {
		c.Machine = arch.Default()
	}
	if c.NCPU == 0 {
		c.NCPU = c.Machine.NCPU
	} else {
		c.Machine.NCPU = c.NCPU
	}
	return c
}

// Canonical returns the config with every default applied — the form the
// simulator actually runs and the form Hash digests. Two configs that
// canonicalize equal produce byte-identical runs.
func (c Config) Canonical() Config { return c.withDefaults() }

// Hash returns the canonical content hash of the config: a hex SHA-256
// over every field after default resolution. Runs are deterministic, so
// the hash content-addresses the run's entire output — it keys the
// experiment service's result cache and tags every structured run error.
func (c Config) Hash() string {
	c = c.withDefaults()
	h := sha256.New()
	fmt.Fprintf(h, "workload=%s;machine=%+v;ncpu=%d;seed=%d;window=%d;warmup=%d;",
		c.Workload, c.Machine, c.NCPU, c.Seed, c.Window, c.Warmup)
	fmt.Fprintf(h, "affinity=%t;opttext=%t;blockop=%t;update=%t;notrace=%t;buffered=%t;reference=%t;iresim=%t;dresim=%t;check=%t;",
		c.Affinity, c.OptimizedText, c.BlockOpBypass, c.UpdateProtocol, c.NoTrace,
		c.Buffered, c.Reference, c.CollectIResim, c.CollectDResim, c.Check)
	if c.Inject != nil {
		fmt.Fprintf(h, "inject=%+v;", *c.Inject)
	}
	if c.Sample.Enabled() {
		// Appended only when sampling is on, so every pre-sampling hash
		// (and cached result keyed by it) is unchanged.
		fmt.Fprintf(h, "sample=%s;", c.Sample)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Provenance identifies a run in structured errors: which configuration
// (by canonical content hash), which seed and workload, and how many
// simulated cycles it reached before stopping.
type Provenance struct {
	ConfigHash string
	Workload   string
	Seed       int64
	Cycle      arch.Cycles
}

func (p Provenance) String() string {
	hash := p.ConfigHash
	if len(hash) > 12 {
		hash = hash[:12]
	}
	return fmt.Sprintf("%s/seed%d cfg=%s cycle=%d", p.Workload, p.Seed, hash, p.Cycle)
}

// ErrCanceled is the sentinel every cooperative cancellation matches via
// errors.Is, whatever the trigger (context cancel, deadline, watchdog).
var ErrCanceled = errors.New("run canceled")

// CanceledError is the structured error of a run that was stopped before
// completion. It wraps both ErrCanceled and the cancellation cause, so
// errors.Is works against either.
type CanceledError struct {
	Provenance
	// Cause is the reason: context.Canceled, context.DeadlineExceeded,
	// or a service-level cause (watchdog stall, drain).
	Cause error
}

func (e *CanceledError) Error() string {
	return fmt.Sprintf("run canceled (%s): %v", e.Provenance, e.Cause)
}

func (e *CanceledError) Unwrap() []error { return []error{ErrCanceled, e.Cause} }

// The sample package duplicates trace.NumClasses so it can stay a leaf
// (sim imports sample; trace's tests import sim). This conversion stops
// compiling the moment the two constants disagree.
var _ = sample.Counts(trace.ClassCounts{})

// Characterization holds everything measured in one run.
type Characterization struct {
	Cfg   Config
	Sim   *sim.Simulator
	Trace *trace.Result // nil when Cfg.NoTrace
	// Ops are the traced-window kernel counters.
	Ops kernel.Counters
	// CheckErrors are the invariant violations found when Cfg.Check was
	// set (nil/empty on a clean run).
	CheckErrors []*check.CheckError
	// Sampled is the extrapolated per-class estimate of a sampled run
	// (nil when Cfg.Sample is disabled). Trace still carries the exact
	// kernel-level results — counters, segments, lock stats are
	// trajectory-exact under sampling — but its classification counts
	// cover only the detailed intervals; use Sampled for miss totals.
	Sampled *sample.Estimate
}

// Run executes the full pipeline.
func Run(cfg Config) *Characterization {
	ch, err := RunContext(context.Background(), cfg)
	if err != nil {
		// Unreachable: a background context is never canceled.
		panic(err)
	}
	return ch
}

// RunContext executes the full pipeline under ctx. When ctx is canceled
// or its deadline passes, the simulation stops before its next bus
// transaction and a *CanceledError carrying the run's provenance (config
// hash, seed, cycle reached) is returned. Completed runs are untouched
// by the machinery: their Characterization is byte-identical to Run's.
func RunContext(ctx context.Context, cfg Config) (*Characterization, error) {
	return RunMonitored(ctx, cfg, nil)
}

// RunMonitored is RunContext plus a progress probe: just before the
// simulation starts, onStart (if non-nil) receives a function that
// reports the simulated cycle most recently reached, safe to call from
// other goroutines for the life of the run. Watchdogs use it as the
// per-run heartbeat to tell slow from wedged.
func RunMonitored(ctx context.Context, cfg Config, onStart func(progress func() arch.Cycles)) (*Characterization, error) {
	cfg = cfg.withDefaults()
	canceled := func(cycle arch.Cycles) *CanceledError {
		cause := context.Cause(ctx)
		if cause == nil {
			cause = ErrCanceled
		}
		return &CanceledError{
			Provenance: Provenance{ConfigHash: cfg.Hash(), Workload: cfg.Workload.String(),
				Seed: cfg.Seed, Cycle: cycle},
			Cause: cause,
		}
	}
	if ctx.Err() != nil {
		return nil, canceled(0)
	}
	streaming := !cfg.NoTrace && !cfg.Buffered
	if cfg.Sample.Enabled() {
		// Sampling needs the streaming classifier (snapshots are taken
		// at phase boundaries, mid-run) and skips most transactions, so
		// the materialized-trace oracle and the resim streams — which
		// need every transaction — cannot be collected.
		if err := cfg.Sample.Validate(); err != nil {
			panic(fmt.Sprintf("core: %v", err))
		}
		if !streaming {
			panic("core: sampling requires the streaming pipeline (no -buffered, no -notrace)")
		}
		if cfg.CollectIResim || cfg.CollectDResim {
			panic("core: sampling cannot collect resim streams (they need every transaction)")
		}
	}
	s := sim.New(sim.Config{
		Machine:        cfg.Machine,
		NCPU:           cfg.NCPU,
		Seed:           cfg.Seed,
		Window:         cfg.Window,
		Warmup:         cfg.Warmup,
		NoTrace:        cfg.NoTrace,
		Streaming:      streaming,
		UpdateProtocol: cfg.UpdateProtocol,
		Reference:      cfg.Reference,
		Check:          cfg.Check,
		Inject:         cfg.Inject,
		SimWorkers:     cfg.SimWorkers,
		Sample:         cfg.Sample,
		Kernel: kernel.Config{Affinity: cfg.Affinity, OptimizedText: cfg.OptimizedText,
			BlockOpBypass: cfg.BlockOpBypass},
	})
	var cl *trace.Classifier
	if !cfg.NoTrace {
		cl = trace.NewClassifier(s.K.T, s.K.L, cfg.NCPU)
		cl.CollectIResim = cfg.CollectIResim
		cl.CollectDResim = cfg.CollectDResim
		if streaming {
			// The classifier rides the bus: every transaction is
			// classified inline, the cycle it occurs.
			s.Stream = cl
		}
	}
	var acc *sample.Accumulator
	if cfg.Sample.Enabled() {
		// Each measured interval's tally is the classifier-count delta
		// across that interval alone; re-warm misclassifications (stale
		// mirrors after a fast-forward gap) land outside the snapshots.
		acc = sample.NewAccumulator(cfg.Sample, cfg.Window)
		var snap sample.Counts
		s.OnMeasure = func(measuring bool) {
			if measuring {
				snap = cl.CountsSnapshot()
				return
			}
			acc.Add(sample.Diff(cl.CountsSnapshot(), snap))
		}
	}
	workload.Setup(s.Kernel(), cfg.Workload)
	if onStart != nil {
		onStart(s.Progress)
	}
	if done := ctx.Done(); done != nil {
		// Relay ctx cancellation onto the simulator's cooperative flag.
		// The relay goroutine is reaped on every exit path, so canceled
		// and completed runs alike leak nothing.
		finished := make(chan struct{})
		defer close(finished)
		go func() {
			select {
			case <-done:
				s.Cancel()
			case <-finished:
			}
		}()
	}
	if !s.RunCancelable() {
		return nil, canceled(s.Progress())
	}
	ch := &Characterization{
		Cfg:         cfg,
		Sim:         s,
		Ops:         s.K.Counters().Sub(s.BaseCounters),
		CheckErrors: s.CheckErrors(),
	}
	if cl != nil {
		if !streaming {
			// Oracle path: replay the monitor's materialized trace, the
			// paper's stop-and-drain postprocess.
			for _, t := range s.Mon.Trace() {
				cl.Feed(t)
			}
		}
		ch.Trace = cl.Finish()
	}
	if acc != nil {
		ch.Sampled = acc.Estimate()
	}
	return ch, nil
}

// NonIdle returns the non-idle execution cycles of the traced window
// (summed over CPUs).
func (c *Characterization) NonIdle() arch.Cycles {
	var n arch.Cycles
	for _, cpu := range c.Sim.CPUs {
		n += cpu.Time[arch.ModeUser] + cpu.Time[arch.ModeKernel]
	}
	return n
}

// TimeSplit returns the user/system/idle percentages (Table 1 columns
// 2-4).
func (c *Characterization) TimeSplit() (user, sys, idle float64) {
	var u, s, i arch.Cycles
	for _, cpu := range c.Sim.CPUs {
		u += cpu.Time[arch.ModeUser]
		s += cpu.Time[arch.ModeKernel]
		i += cpu.Time[arch.ModeIdle]
	}
	tot := float64(u + s + i)
	if tot == 0 {
		return 0, 0, 0
	}
	return 100 * float64(u) / tot, 100 * float64(s) / tot, 100 * float64(i) / tot
}

// OSMissShare returns OS misses / total misses (Table 1 column 5).
func (c *Characterization) OSMissShare() float64 {
	return 100 * c.Trace.OSShare()
}

// StallPct returns the Table 1 stall columns: all misses, OS misses only,
// and OS plus OS-induced application misses, each as a percentage of
// non-idle time (35 cycles per monitored bus access, §3.1).
func (c *Characterization) StallPct() (all, osOnly, osInduced float64) {
	nonIdle := float64(c.NonIdle())
	if nonIdle == 0 {
		return 0, 0, 0
	}
	r := c.Trace
	induced := r.Counts[0][0][trace.DispOS] + r.Counts[0][1][trace.DispOS]
	stall := int64(c.Cfg.Machine.MissStallCycles)
	all = 100 * float64(r.Total*stall) / nonIdle
	osOnly = 100 * float64(r.OSMissTotal*stall) / nonIdle
	osInduced = osOnly + 100*float64(induced*stall)/nonIdle
	return all, osOnly, osInduced
}

// stallShare converts a miss count into its stall percentage of non-idle
// time, returning 0 for a degenerate all-idle window.
func (c *Characterization) stallShare(misses int64) float64 {
	nonIdle := float64(c.NonIdle())
	if nonIdle == 0 {
		return 0
	}
	return 100 * float64(misses*int64(c.Cfg.Machine.MissStallCycles)) / nonIdle
}

// OSIMissStallPct returns the stall share of OS instruction misses
// (Table 9 column 3).
func (c *Characterization) OSIMissStallPct() float64 {
	return c.stallShare(c.Trace.ClassSum(1, 1))
}

// MigrationStallPct returns the stall share of migration data misses
// (Tables 4 and 9).
func (c *Characterization) MigrationStallPct() float64 {
	return c.stallShare(c.Trace.MigrationTotal)
}

// BlockOpStallPct returns the stall share of block-operation data misses
// (Tables 6 and 9).
func (c *Characterization) BlockOpStallPct() float64 {
	var n int64
	for _, v := range c.Trace.BlockOpDMisses {
		n += v
	}
	return c.stallShare(n)
}

// SyncStallPct returns the Table 10 synchronization stall estimates: the
// sync-bus protocol of the measured machine and the simulated cacheable
// atomic-RMW scenario, as percentages of non-idle time.
func (c *Characterization) SyncStallPct() (current, rmwCached float64) {
	cur, rmw := c.Sim.K.Locks.TotalSyncStall(c.Cfg.Machine.MissStallCycles)
	nonIdle := float64(c.NonIdle())
	if nonIdle == 0 {
		return 0, 0
	}
	return 100 * float64(cur) / nonIdle, 100 * float64(rmw) / nonIdle
}

// Figure6 runs the cache sweep (requires CollectIResim).
func (c *Characterization) Figure6() cachesweep.Figure6Result {
	if c.Trace == nil || len(c.Trace.IResim) == 0 {
		panic("core: Figure6 requires CollectIResim")
	}
	return cachesweep.Figure6(c.Trace.IResim, c.Cfg.NCPU)
}

// DefaultDSweepConfigs returns the canonical data-cache sweep points of
// the §4.2.2 discussion, starting from the measured machine's 256 KB L2.
// The geometry sweep (cmd/sweep -geometry) re-runs the full system at the
// direct-mapped points of this same list, so the replay and direct sweeps
// share one config source.
func DefaultDSweepConfigs() []cachesweep.Config {
	return []cachesweep.Config{
		{Size: 256 << 10, Assoc: 1}, // the measured machine's L2
		{Size: 512 << 10, Assoc: 1},
		{Size: 1 << 20, Assoc: 1},
		{Size: 4 << 20, Assoc: 2},
	}
}

// DCacheSweep replays the data-miss stream against larger and associative
// coherence-level caches (requires CollectDResim): the paper's §4.2.2
// argument that Sharing misses set a floor no capacity removes. A nil cfgs
// runs DefaultDSweepConfigs.
func (c *Characterization) DCacheSweep(cfgs []cachesweep.Config) []cachesweep.DPoint {
	if c.Trace == nil || len(c.Trace.DResim) == 0 {
		panic("core: DCacheSweep requires CollectDResim")
	}
	if cfgs == nil {
		cfgs = DefaultDSweepConfigs()
	}
	return cachesweep.DSweep(c.Trace.DResim, c.Cfg.NCPU, cfgs)
}

// InvocationStats summarizes the per-CPU segment streams (Figure 1): the
// average OS invocation (duration, I/D misses), the idle-loop share, the
// average application stretch, and the UTLB fault profile.
type InvocationStats struct {
	Invocations   int64
	OSAvgCycles   float64
	OSAvgIMiss    float64
	OSAvgDMiss    float64
	IdleAvgCycles float64
	AppAvgCycles  float64
	AppAvgIMiss   float64
	AppAvgDMiss   float64
	AppAvgUTLBs   float64
	// UTLBMissPerFault is ~0.1 in the paper; UTLBCycleShare is the
	// handler's share of application cycles (~1.5%).
	UTLBMissPerFault float64
	// MsBetweenInvocations is the average time between OS invocations
	// (Section 4.1: 1.9/0.4/0.7 ms).
	MsBetweenInvocations float64
}

// Invocations aggregates the Figure 1 statistics.
func (c *Characterization) Invocations() InvocationStats {
	var st InvocationStats
	var osN, idleN, appN int64
	var osCy, idleCy, appCy arch.Cycles
	var osI, osD, appI, appD, utlbs, utlbMiss int64
	seen := map[[2]uint32]bool{} // (cpu, invID) → counted
	for cpuIdx, segs := range c.Trace.Segments {
		for _, s := range segs {
			switch s.Kind {
			case trace.SegOS:
				key := [2]uint32{uint32(cpuIdx), s.InvID}
				if !seen[key] {
					seen[key] = true
					osN++
				}
				osCy += s.Cycles
				osI += int64(s.IMiss)
				osD += int64(s.DMiss)
			case trace.SegIdle:
				idleN++
				idleCy += s.Cycles
			case trace.SegApp:
				appN++
				appCy += s.Cycles
				appI += int64(s.IMiss)
				appD += int64(s.DMiss)
				utlbs += int64(s.UTLBs)
				utlbMiss += int64(s.UTLBMisses)
			}
		}
	}
	st.Invocations = osN
	if osN > 0 {
		st.OSAvgCycles = float64(osCy) / float64(osN)
		st.OSAvgIMiss = float64(osI) / float64(osN)
		st.OSAvgDMiss = float64(osD) / float64(osN)
	}
	if idleN > 0 {
		st.IdleAvgCycles = float64(idleCy) / float64(idleN)
	}
	if appN > 0 {
		st.AppAvgCycles = float64(appCy) / float64(appN)
		st.AppAvgIMiss = float64(appI) / float64(appN)
		st.AppAvgDMiss = float64(appD) / float64(appN)
		st.AppAvgUTLBs = float64(utlbs) / float64(appN)
	}
	if utlbs > 0 {
		st.UTLBMissPerFault = float64(utlbMiss) / float64(utlbs)
	}
	if osN > 0 {
		windowMS := float64(c.Cfg.Window) * arch.CycleNS / 1e6
		st.MsBetweenInvocations = windowMS * float64(c.Cfg.NCPU) / float64(osN)
	}
	return st
}
