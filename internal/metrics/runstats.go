// Per-run observability for the parallel experiment engine: wall-clock,
// simulated-cycle throughput and allocation counts per core.Run, plus the
// batch-level aggregate the CLIs print so a -parallel speedup is
// measurable rather than anecdotal.

package metrics

import (
	"fmt"
	"time"
)

// RunStats is the observability record of one experiment run.
type RunStats struct {
	// Label identifies the run (workload/ncpu/seed).
	Label string
	// Wall is the run's wall-clock time.
	Wall time.Duration
	// SimCycles is how many processor cycles the run simulated, summed
	// over the simulated CPUs (warmup included — it is paid for too).
	SimCycles int64
	// MCyclesPerSec is SimCycles per wall-clock second, in millions: the
	// simulator's throughput for this run.
	MCyclesPerSec float64
	// Allocs and AllocBytes are the run's heap allocation count and
	// volume. Go only accounts allocations process-wide, so they are
	// exact only for serial batches (parallelism 1) and zero otherwise;
	// BatchStats carries the process-wide totals either way.
	Allocs     uint64
	AllocBytes uint64
}

// Throughput fills MCyclesPerSec from Wall and SimCycles.
func (r *RunStats) Throughput() {
	if r.Wall > 0 {
		r.MCyclesPerSec = float64(r.SimCycles) / r.Wall.Seconds() / 1e6
	}
}

// BatchStats aggregates one parallel batch of runs.
type BatchStats struct {
	// Parallelism is the worker count the batch actually used.
	Parallelism int
	// Wall is the batch's end-to-end wall-clock time.
	Wall time.Duration
	// SerialWall is the sum of the per-run wall times — what a serial
	// execution of the same work would have cost.
	SerialWall time.Duration
	// Allocs and AllocBytes are process-wide allocation deltas across
	// the batch.
	Allocs     uint64
	AllocBytes uint64
	// Runs holds the per-run records in submission order.
	Runs []RunStats
}

// Speedup is SerialWall / Wall: >1 when the pool paid off.
func (b BatchStats) Speedup() float64 {
	if b.Wall <= 0 {
		return 0
	}
	return float64(b.SerialWall) / float64(b.Wall)
}

// Table renders the batch as an aligned table with a summary footnote.
func (b BatchStats) Table() string {
	t := NewTable(fmt.Sprintf("Experiment timing (%d workers)", b.Parallelism),
		"Run", "Wall", "Mcycles/s", "Allocs", "Alloc MB")
	for _, r := range b.Runs {
		allocs, mb := "-", "-"
		if r.Allocs > 0 {
			allocs = fmt.Sprint(r.Allocs)
			mb = fmt.Sprintf("%.1f", float64(r.AllocBytes)/1e6)
		}
		t.AddRow(r.Label, r.Wall.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1f", r.MCyclesPerSec), allocs, mb)
	}
	t.Note("batch wall %s vs serial %s — speedup %.2fx; %d allocs (%.1f MB) process-wide",
		b.Wall.Round(time.Millisecond), b.SerialWall.Round(time.Millisecond),
		b.Speedup(), b.Allocs, float64(b.AllocBytes)/1e6)
	return t.String()
}
