// Package sample implements statistically-sampled simulation in the style
// of SMARTS and of Bueno et al.'s representative-interval work (PAPERS.md):
// the traced window is tiled into fixed periods, each holding a detailed
// re-warm interval, a measured detailed interval, and a cheap functional
// fast-forward remainder. Per-sample class tallies are extrapolated to
// whole-window totals with per-class standard-error bars, which is what
// lets a -window 1e9 run finish in minutes instead of hours.
package sample

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/arch"
	"repro/internal/machineflag"
)

// NumClasses mirrors trace.NumClasses — the number of miss classes in
// the classification cube. It is duplicated rather than imported so this
// package stays a leaf (sim depends on it; trace's tests depend on sim);
// core carries a compile-time assertion that the two agree.
const NumClasses = 6

// Schedule describes the periodic sampling regime. All lengths are in
// simulated cycles, relative to the start of the traced window (warmup
// before trace start is unaffected and always runs as today).
//
// Each period is laid out as
//
//	[ Warmup detailed, unmeasured | Length detailed, measured | fast-forward ]
//
// The detailed re-warm interval lets the classifier's mirror caches and
// the coherence checker's shadow state converge after the fast-forward
// gap, so stale-state misclassifications never enter the measured tallies.
// A zero Schedule means sampling is off.
type Schedule struct {
	// Warmup is the detailed-but-unmeasured re-warm interval opening
	// each period.
	Warmup arch.Cycles
	// Length is the measured detailed interval.
	Length arch.Cycles
	// Period is the full tile; the fast-forward remainder is
	// Period - Warmup - Length.
	Period arch.Cycles
}

// Enabled reports whether the schedule requests sampling at all.
func (s Schedule) Enabled() bool { return s.Period > 0 }

// Validate rejects degenerate schedules.
func (s Schedule) Validate() error {
	if !s.Enabled() {
		return nil
	}
	if s.Length <= 0 {
		return fmt.Errorf("sample: measured length must be positive (got %d)", s.Length)
	}
	if s.Warmup < 0 {
		return fmt.Errorf("sample: warmup must be non-negative (got %d)", s.Warmup)
	}
	if s.Period < s.Warmup+s.Length {
		return fmt.Errorf("sample: period %d shorter than warmup %d + length %d",
			s.Period, s.Warmup, s.Length)
	}
	return nil
}

// String renders the schedule in the "warmup:len:period" syntax Parse
// accepts, compacted ("100K:200K:10M"). The zero schedule renders empty.
func (s Schedule) String() string {
	if !s.Enabled() {
		return ""
	}
	return fmt.Sprintf("%s:%s:%s", s.Warmup.Compact(), s.Length.Compact(), s.Period.Compact())
}

// Parse reads a "warmup:len:period" schedule; each field takes the same
// K/M/G-and-scientific syntax as the -window flags. The empty string
// parses to the disabled zero Schedule.
func Parse(spec string) (Schedule, error) {
	if strings.TrimSpace(spec) == "" {
		return Schedule{}, nil
	}
	parts := strings.Split(spec, ":")
	if len(parts) != 3 {
		return Schedule{}, fmt.Errorf("sample: bad schedule %q (want warmup:len:period, e.g. 100K:200K:10M)", spec)
	}
	var vals [3]arch.Cycles
	for i, p := range parts {
		n, err := machineflag.ParseCycles(p)
		if err != nil {
			return Schedule{}, fmt.Errorf("sample: bad schedule %q: %v", spec, err)
		}
		vals[i] = arch.Cycles(n)
	}
	s := Schedule{Warmup: vals[0], Length: vals[1], Period: vals[2]}
	if !s.Enabled() {
		return Schedule{}, fmt.Errorf("sample: bad schedule %q (period must be positive)", spec)
	}
	return s, s.Validate()
}

// Segment is one phase-constant stretch of the traced window, half-open
// [Start, End) in cycles from trace start.
type Segment struct {
	Start, End arch.Cycles
	// Detailed means full classification/checking runs; false is the
	// functionally-warmed fast-forward.
	Detailed bool
	// Measured marks the detailed intervals whose tallies enter the
	// estimate (re-warm intervals are Detailed but not Measured).
	Measured bool
}

// Segments tiles a window into the phase segments the simulator executes.
// A measured interval that does not fit entirely inside the window is
// dropped (its period becomes pure fast-forward): partial samples would
// bias the estimate. Returns nil for a disabled schedule.
func (s Schedule) Segments(window arch.Cycles) []Segment {
	if !s.Enabled() || window <= 0 {
		return nil
	}
	var segs []Segment
	add := func(start, end arch.Cycles, detailed, measured bool) {
		if end <= start {
			return
		}
		// Merge adjacent unmeasured segments of the same phase (e.g.
		// the fast-forward tail of a period whose sample did not fit,
		// followed by the next period's fast-forward). Measured
		// intervals are never merged: each is one observation.
		if n := len(segs); n > 0 && !measured && segs[n-1].End == start &&
			segs[n-1].Detailed == detailed && segs[n-1].Measured == measured {
			segs[n-1].End = end
			return
		}
		segs = append(segs, Segment{Start: start, End: end, Detailed: detailed, Measured: measured})
	}
	for p := arch.Cycles(0); p < window; p += s.Period {
		warmEnd := p + s.Warmup
		measEnd := warmEnd + s.Length
		perEnd := p + s.Period
		if perEnd > window {
			perEnd = window
		}
		if measEnd <= perEnd {
			add(p, warmEnd, true, false)
			add(warmEnd, measEnd, true, true)
			add(measEnd, perEnd, false, false)
		} else {
			add(p, perEnd, false, false)
		}
	}
	return segs
}

// Samples counts the measured intervals Segments would produce.
func (s Schedule) Samples(window arch.Cycles) int {
	n := 0
	for _, seg := range s.Segments(window) {
		if seg.Measured {
			n++
		}
	}
	return n
}

// Counts is the per-sample class tally cube, [os][instr][class].
type Counts = [2][2][NumClasses]int64

// Diff returns after − before, elementwise.
func Diff(after, before Counts) Counts {
	var d Counts
	for os := range after {
		for in := range after[os] {
			for cl := range after[os][in] {
				d[os][in][cl] = after[os][in][cl] - before[os][in][cl]
			}
		}
	}
	return d
}

// Accumulator collects the per-sample tallies of one run.
type Accumulator struct {
	sched   Schedule
	window  arch.Cycles
	samples []Counts
}

// NewAccumulator readies an accumulator for a run of the given window.
func NewAccumulator(sched Schedule, window arch.Cycles) *Accumulator {
	return &Accumulator{sched: sched, window: window}
}

// Add records one measured interval's tally (an after−before snapshot
// difference of the classifier's counts).
func (a *Accumulator) Add(c Counts) { a.samples = append(a.samples, c) }

// Samples returns how many measured intervals have been recorded.
func (a *Accumulator) Samples() int { return len(a.samples) }

// Estimate extrapolates the collected samples to whole-window totals.
func (a *Accumulator) Estimate() *Estimate {
	e := &Estimate{
		Schedule: a.sched,
		Window:   a.window,
		Samples:  len(a.samples),
	}
	n := len(a.samples)
	if n == 0 || a.sched.Length <= 0 {
		return e
	}
	scale := float64(a.window) / float64(a.sched.Length)
	for os := 0; os < 2; os++ {
		for in := 0; in < 2; in++ {
			for cl := 0; cl < NumClasses; cl++ {
				var sum, sumSq float64
				for _, s := range a.samples {
					v := float64(s[os][in][cl])
					sum += v
					sumSq += v * v
					e.Measured[os][in][cl] += s[os][in][cl]
				}
				mean := sum / float64(n)
				e.Total[os][in][cl] = mean * scale
				if n >= 2 {
					// Sample variance (n−1 denominator); clamp the
					// tiny negatives of float cancellation.
					variance := (sumSq - sum*mean) / float64(n-1)
					if variance < 0 {
						variance = 0
					}
					e.StdErr[os][in][cl] = scale * math.Sqrt(variance) / math.Sqrt(float64(n))
				}
			}
		}
	}
	return e
}

// Estimate is the extrapolated result of a sampled run: estimated
// whole-window per-class miss totals with standard errors of the mean.
// The extrapolation treats each measured interval as one observation of
// "misses per Length cycles": Total = mean × (Window/Length) and
// StdErr = (Window/Length) × sd/√n. With fewer than two samples the
// standard errors are zero (no variance information).
type Estimate struct {
	Schedule Schedule
	Window   arch.Cycles
	// Samples is the number of measured intervals.
	Samples int
	// Measured is the raw (unscaled) sum over measured intervals.
	Measured Counts
	// Total[os][instr][class] is the extrapolated whole-window count.
	Total [2][2][NumClasses]float64
	// StdErr[os][instr][class] is the standard error of Total.
	StdErr [2][2][NumClasses]float64
}

// MeasuredCycles is the total detailed-measured simulated time.
func (e *Estimate) MeasuredCycles() arch.Cycles {
	return arch.Cycles(e.Samples) * e.Schedule.Length
}

// ClassTotal sums the estimated total and error of one class over the
// os × instr planes selected by the masks (os<0 / instr<0 select both).
// Errors add in quadrature (samples are treated as independent).
func (e *Estimate) ClassTotal(os, instr, cl int) (total, stderr float64) {
	var errSq float64
	for o := 0; o < 2; o++ {
		if os >= 0 && o != os {
			continue
		}
		for i := 0; i < 2; i++ {
			if instr >= 0 && i != instr {
				continue
			}
			total += e.Total[o][i][cl]
			errSq += e.StdErr[o][i][cl] * e.StdErr[o][i][cl]
		}
	}
	return total, math.Sqrt(errSq)
}

// TotalAll is the estimated whole-window miss total (all modes/kinds),
// with its error.
func (e *Estimate) TotalAll() (total, stderr float64) {
	var errSq float64
	for cl := 0; cl < NumClasses; cl++ {
		t, s := e.ClassTotal(-1, -1, cl)
		total += t
		errSq += s * s
	}
	return total, math.Sqrt(errSq)
}

// TotalOS is the estimated OS-mode miss total with its error.
func (e *Estimate) TotalOS() (total, stderr float64) {
	var errSq float64
	for cl := 0; cl < NumClasses; cl++ {
		t, s := e.ClassTotal(1, -1, cl)
		total += t
		errSq += s * s
	}
	return total, math.Sqrt(errSq)
}
