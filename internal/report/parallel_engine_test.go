package report

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/machineflag"
)

// workerCounts is the fuzz grid: the interesting small counts plus the
// host's CPU count, deduplicated, serial dropped (SimWorkers 1 is the
// serial scheduler — nothing to compare).
func workerCounts() []int {
	counts := []int{2, 4, runtime.NumCPU()}
	seen := map[int]bool{}
	var out []int
	for _, w := range counts {
		if w >= 2 && !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}

// TestParallelEngineByteIdentical is the conservative parallel engine's
// contract: with SimWorkers > 1 the speculation/commit scheduler must
// consume exactly the serial event sequence, so every table and figure
// renders byte-for-byte identically to the serial engine — across
// seeds, machine presets (including the 8-CPU 4d380) and worker counts.
// The invariant checker stays off on purpose: Check forces the serial
// scheduler, which would make the comparison vacuous; the engagement
// assertion below guards against that kind of silent no-op.
func TestParallelEngineByteIdentical(t *testing.T) {
	cases := []struct {
		preset string
		seeds  []int64
	}{
		{"4d340", []int64{3, 11}},
		{"4d380", []int64{5}},
	}
	for _, c := range cases {
		m, err := machineflag.Preset(c.preset)
		if err != nil {
			t.Fatal(err)
		}
		for _, seed := range c.seeds {
			cfg := core.Config{Machine: m, Window: 500_000, Warmup: 250_000, Seed: seed}
			serial := All(RunSet(cfg))
			for _, w := range workerCounts() {
				pcfg := cfg
				pcfg.SimWorkers = w
				set := RunSet(pcfg)
				var committed int64
				for _, ch := range []*core.Characterization{set.Pmake, set.Multpgm, set.Oracle} {
					if got := ch.Sim.SimWorkers(); got < 2 {
						t.Fatalf("%s seed %d workers %d: engine did not engage (SimWorkers() = %d)",
							c.preset, seed, w, got)
					}
					committed += ch.Sim.SpecStats().CommittedSteps
				}
				if committed == 0 {
					t.Errorf("%s seed %d workers %d: no speculated step was ever committed — the comparison is vacuous",
						c.preset, seed, w)
				}
				diffLines(t, fmt.Sprintf("%s seed %d workers %d report", c.preset, seed, w),
					serial, All(set))
			}
		}
	}
}
