// Package model builds the analytic model the paper's Section 4.1 points
// at: "This data is also useful to build analytic models of OS and
// application referencing activity." From the measured per-invocation
// statistics (Figure 1) alone — average OS invocation length and misses,
// average application stretch and misses, UTLB fault profile — it predicts
// the Table 1 quantities (time split between OS and application, miss
// stall as a fraction of non-idle time, the OS share of misses).
//
// The model is validated against the full simulation: a test checks the
// prediction against the measured values, which is precisely how such a
// model would have been used in 1992 to extrapolate beyond the traced
// machine.
package model

import (
	"repro/internal/arch"
	"repro/internal/core"
)

// Inputs are the Figure 1 statistics the model consumes.
type Inputs struct {
	// OSCycles, OSIMiss, OSDMiss describe the average OS invocation
	// (idle loop excluded).
	OSCycles float64
	OSIMiss  float64
	OSDMiss  float64
	// AppCycles, AppIMiss, AppDMiss describe the average application
	// stretch between invocations.
	AppCycles float64
	AppIMiss  float64
	AppDMiss  float64
	// UTLBPerApp and UTLBMissPerFault describe the cheap-fault spikes
	// within an application stretch.
	UTLBPerApp       float64
	UTLBMissPerFault float64
	// UTLBHandlerCycles is the base cost of one UTLB fault (the paper
	// computes the handler takes ≈1.5% of application cycles).
	UTLBHandlerCycles float64
}

// FromCharacterization extracts the model inputs from a measured run.
func FromCharacterization(ch *core.Characterization) Inputs {
	st := ch.Invocations()
	return Inputs{
		OSCycles:          st.OSAvgCycles,
		OSIMiss:           st.OSAvgIMiss,
		OSDMiss:           st.OSAvgDMiss,
		AppCycles:         st.AppAvgCycles,
		AppIMiss:          st.AppAvgIMiss,
		AppDMiss:          st.AppAvgDMiss,
		UTLBPerApp:        st.AppAvgUTLBs,
		UTLBMissPerFault:  st.UTLBMissPerFault,
		UTLBHandlerCycles: 50,
	}
}

// Prediction is what the model derives.
type Prediction struct {
	// SysShare and UserShare split non-idle time (Table 1 cols 2-3,
	// renormalized without idle).
	SysShare  float64
	UserShare float64
	// OSMissShare is OS misses / all misses (Table 1 col 5).
	OSMissShare float64
	// StallAll and StallOS are miss-stall fractions of non-idle time
	// (Table 1 cols 6-7).
	StallAll float64
	StallOS  float64
	// UTLBShare is the cheap-fault handler's share of application
	// cycles (the paper: ≈1.5%).
	UTLBShare float64
}

// Predict derives the Table 1 quantities from the basic pattern: the
// timeline is a renewal process alternating one application stretch (with
// embedded UTLB spikes) and one OS invocation.
func Predict(in Inputs) Prediction {
	utlbCycles := in.UTLBPerApp * (in.UTLBHandlerCycles +
		in.UTLBMissPerFault*float64(arch.MissStallCycles))
	utlbMisses := in.UTLBPerApp * in.UTLBMissPerFault

	// The segment builder folds UTLB spikes INTO the application
	// stretch's cycle count but tallies their misses SEPARATELY
	// (trace.Segment doc): so cycles move from app to OS here, while
	// the miss counts below need no such correction.
	osCycles := in.OSCycles + utlbCycles // UTLB handling is OS work
	appCycles := in.AppCycles - utlbCycles
	if appCycles < 0 {
		appCycles = 0
	}
	period := osCycles + appCycles
	osMisses := in.OSIMiss + in.OSDMiss + utlbMisses
	appMisses := in.AppIMiss + in.AppDMiss
	allMisses := osMisses + appMisses

	var p Prediction
	if period > 0 {
		p.SysShare = 100 * osCycles / period
		p.UserShare = 100 * appCycles / period
		p.StallAll = 100 * allMisses * float64(arch.MissStallCycles) / period
		p.StallOS = 100 * osMisses * float64(arch.MissStallCycles) / period
	}
	if allMisses > 0 {
		p.OSMissShare = 100 * osMisses / allMisses
	}
	if in.AppCycles > 0 {
		p.UTLBShare = 100 * utlbCycles / in.AppCycles
	}
	return p
}
