// Faults: run Pmake under an interrupt storm plus an eviction storm and
// compare it against a clean run of the same seed. The invariant checker
// rides along on both runs: faults are allowed to move every performance
// counter, but a single correctness violation fails the demo — the
// "degrade gracefully, never corrupt" contract of the self-validating
// simulator.
//
//	go run ./examples/faults
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/inject"
	"repro/internal/workload"
)

func run(injectCfg *inject.Config) *core.Characterization {
	return core.Run(core.Config{
		Workload: workload.Pmake,
		Window:   4_000_000, // ≈0.12 s at 33 MHz
		Seed:     1,
		Check:    true,
		Inject:   injectCfg,
	})
}

func delta(name string, clean, faulty int64) {
	d := faulty - clean
	sign := "+"
	if d < 0 {
		sign = ""
	}
	pct := 0.0
	if clean != 0 {
		pct = 100 * float64(d) / float64(clean)
	}
	fmt.Printf("  %-28s %12d %12d   %s%d (%+.1f%%)\n", name, clean, faulty, sign, d, pct)
}

func main() {
	fmt.Println("clean run of Pmake (invariant checker on)...")
	clean := run(nil)

	// Interrupt storm + eviction storm (which includes forced I-cache
	// flushes), both driven by a seeded random stream.
	icfg, err := inject.Preset("intr,evict")
	if err != nil {
		panic(err)
	}
	fmt.Println("same seed under an interrupt storm + eviction storm...")
	faulty := run(&icfg)

	st := faulty.Sim.Inj.Stats
	fmt.Printf("\nfaults delivered: %v\n\n", st)

	fmt.Printf("  %-28s %12s %12s   %s\n", "counter", "clean", "faulted", "delta")
	delta("bus reads (fills)", clean.Sim.Bus.Stats.Reads, faulty.Sim.Bus.Stats.Reads)
	delta("bus read-exclusives", clean.Sim.Bus.Stats.ReadExs, faulty.Sim.Bus.Stats.ReadExs)
	delta("write-backs", clean.Sim.Bus.Stats.WriteBacks, faulty.Sim.Bus.Stats.WriteBacks)
	delta("upgrades", clean.Sim.Bus.Stats.Upgrades, faulty.Sim.Bus.Stats.Upgrades)
	delta("context switches", clean.Ops.CtxSwitches, faulty.Ops.CtxSwitches)
	delta("migrations", clean.Ops.Migrations, faulty.Ops.Migrations)
	delta("non-idle cycles", int64(clean.NonIdle()), int64(faulty.NonIdle()))

	fmt.Println()
	for _, r := range []struct {
		name string
		ch   *core.Characterization
	}{{"clean", clean}, {"faulted", faulty}} {
		name, ch := r.name, r.ch
		chk := ch.Sim.Chk
		if chk.Violations > 0 {
			fmt.Printf("%s run: %d INVARIANT VIOLATIONS\n", name, chk.Violations)
			for _, e := range ch.CheckErrors {
				fmt.Printf("  %v\n", e)
			}
			os.Exit(1)
		}
		fmt.Printf("%s run: %d invariant checks, 0 violations\n", name, chk.Checks)
	}
	fmt.Println("\nfaults moved the performance counters; correctness held.")
}
