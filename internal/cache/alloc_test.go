package cache

import (
	"math/rand"
	"testing"

	"repro/internal/arch"
)

// TestDMAccessNoAllocs guards the direct-mapped fast path: hits, fills and
// conflict evictions within physical memory must never allocate (the
// per-frame resident index is pre-sized for all of physical memory).
func TestDMAccessNoAllocs(t *testing.T) {
	h := NewDataHierarchy("d", arch.Default())
	addrs := []arch.PAddr{
		0x0, 0x40, 0x1000,
		arch.DCacheL1Size, // L1 conflict with 0x0
		arch.DCacheL2Size, // L2 conflict with 0x0
		arch.DCacheL2Size + 0x40,
	}
	// Warm up the lazily-allocated shared-bit arrays.
	h.L2.SetShared(0x0, true)
	h.L2.SetShared(0x0, false)
	i := 0
	avg := testing.AllocsPerRun(500, func() {
		a := addrs[i%len(addrs)]
		h.Access(a, i%3 == 0)
		i++
	})
	if avg != 0 {
		t.Errorf("DM hierarchy access allocates %.1f times per op, want 0", avg)
	}

	c := New("i", arch.ICacheSize, 1)
	j := 0
	avg = testing.AllocsPerRun(500, func() {
		a := addrs[j%len(addrs)]
		if !c.ReadHit(a) {
			c.Access(a, false)
		}
		j++
	})
	if avg != 0 {
		t.Errorf("DM single-cache access allocates %.1f times per op, want 0", avg)
	}
}

// TestInvalidateFrameCounts pins the return-count contract under the
// per-frame resident index: an empty frame reports zero (one counter load,
// no probing), a partially-resident frame reports exactly its resident
// blocks, and a repeated call reports zero.
func TestInvalidateFrameCounts(t *testing.T) {
	c := New("t", 64*arch.BlockSize, 1)
	if n := c.InvalidateFrame(7); n != 0 {
		t.Fatalf("empty frame invalidated %d blocks, want 0", n)
	}
	base := arch.PAddr(7) << arch.PageShift
	c.Access(base, false)
	c.Access(base+arch.BlockSize, false)
	c.Access(base+5*arch.BlockSize, true)
	// Offset so it does not alias frame 7's blocks in the 64-line cache.
	other := arch.PAddr(9)<<arch.PageShift + 2*arch.BlockSize
	c.Access(other, false)
	if got := c.ResidentBlocks(); got != 4 {
		t.Fatalf("ResidentBlocks = %d, want 4", got)
	}
	if n := c.InvalidateFrame(7); n != 3 {
		t.Fatalf("partially-resident frame invalidated %d blocks, want 3", n)
	}
	if n := c.InvalidateFrame(7); n != 0 {
		t.Fatalf("second invalidation removed %d blocks, want 0", n)
	}
	if !c.Lookup(other) {
		t.Error("frame 9 block lost to an invalidation of frame 7")
	}
	if got := c.ResidentBlocks(); got != 1 {
		t.Errorf("ResidentBlocks = %d after invalidation, want 1", got)
	}
	// A frame beyond physical memory (fabricated test address) is in
	// range for the grow-on-demand index only if something was cached
	// there; otherwise it must report zero without panicking.
	if n := c.InvalidateFrame(uint32(arch.MemFrames + 100)); n != 0 {
		t.Fatalf("out-of-range frame invalidated %d blocks, want 0", n)
	}
}

// TestGenericMatchesFastCache drives identical random access/invalidate
// streams through a fast direct-mapped cache and a generic-path twin and
// requires identical observable state at every step — the same identity
// the -reference oracle proves end-to-end, pinned here at the unit level.
func TestGenericMatchesFastCache(t *testing.T) {
	fast := New("fast", 64*arch.BlockSize, 1)
	ref := New("ref", 64*arch.BlockSize, 1)
	ref.SetGeneric(true)
	rng := rand.New(rand.NewSource(7))
	pool := make([]arch.PAddr, 0, 24)
	for i := 0; i < 24; i++ {
		// Collide heavily: 64 lines, addresses spread over 3 aliasing ways.
		pool = append(pool, arch.PAddr(rng.Intn(3*64))*arch.BlockSize)
	}
	for step := 0; step < 3000; step++ {
		a := pool[rng.Intn(len(pool))]
		switch rng.Intn(10) {
		case 0:
			r1, d1 := fast.Invalidate(a)
			r2, d2 := ref.Invalidate(a)
			if r1 != r2 || d1 != d2 {
				t.Fatalf("step %d: Invalidate(%#x) = (%v,%v) fast vs (%v,%v) generic", step, uint64(a), r1, d1, r2, d2)
			}
		case 1:
			if n1, n2 := fast.InvalidateFrame(a.Frame()), ref.InvalidateFrame(a.Frame()); n1 != n2 {
				t.Fatalf("step %d: InvalidateFrame = %d fast vs %d generic", step, n1, n2)
			}
		default:
			write := rng.Intn(3) == 0
			h1, ev1, ok1 := fast.Access(a, write)
			h2, ev2, ok2 := ref.Access(a, write)
			if h1 != h2 || ok1 != ok2 || ev1 != ev2 {
				t.Fatalf("step %d: Access(%#x,%v) = (%v,%+v,%v) fast vs (%v,%+v,%v) generic",
					step, uint64(a), write, h1, ev1, ok1, h2, ev2, ok2)
			}
		}
		if fast.ResidentBlocks() != ref.ResidentBlocks() {
			t.Fatalf("step %d: ResidentBlocks %d fast vs %d generic", step, fast.ResidentBlocks(), ref.ResidentBlocks())
		}
		for _, a := range pool {
			if fast.Lookup(a) != ref.Lookup(a) || fast.Dirty(a) != ref.Dirty(a) {
				t.Fatalf("step %d: state of %#x diverges (resident %v/%v dirty %v/%v)",
					step, uint64(a), fast.Lookup(a), ref.Lookup(a), fast.Dirty(a), ref.Dirty(a))
			}
		}
	}
}
