package sim

import (
	"repro/internal/arch"
	"repro/internal/bus"
	"repro/internal/cache"
	"repro/internal/kernel"
	"repro/internal/monitor"
	"repro/internal/sample"
)

// Phase identifies which phase of a sampled run the simulator is in. A
// run without a sampling schedule is Detailed for its whole window.
type Phase uint8

const (
	// Detailed is full-fidelity simulation: every bus transaction goes
	// to the recorder (classifier/monitor) and the checker verifies
	// invariants. This is the only phase of an unsampled run.
	Detailed Phase = iota
	// FastForward is functional warming: caches, TLBs, the presence
	// filter and all kernel state advance exactly as in Detailed, and
	// warmable recorders (the streaming classifier) keep their internal
	// state current, but no statistic accumulates — the monitor sees
	// nothing, the classifier counts nothing, and the checker only
	// maintains its shadow state. The step sequence is identical to
	// Detailed, so fast-forwarding never perturbs the trajectory.
	FastForward
)

// String names the phase.
func (p Phase) String() string {
	if p == FastForward {
		return "fast-forward"
	}
	return "detailed"
}

// runSampled executes warmup plus the traced window under the sampling
// schedule: the window is tiled into detailed re-warm intervals, measured
// detailed intervals, and fast-forward stretches (see sample.Segments).
// The prologue — warmup, trace start, the initial state dump — is
// exactly Run's, so cycle zero of the window begins from identical state.
func (s *Simulator) runSampled() {
	s.K.WireAllBut(s.K.Cfg.PoolFrames)
	for _, c := range s.CPUs {
		s.beginOS(c, kernel.OpOtherSyscall)
		s.scheduleNext(c, nil, false)
	}
	s.end = s.Cfg.Warmup
	s.loop()
	s.traceEscapes = true
	if s.Mon != nil {
		s.Mon.SetEnabled(true)
	}
	if s.Stream != nil {
		// The phase-aware gate: recorders attached through it only ever
		// see detailed-phase traffic (the bus's warm mode is the other
		// half of the same contract).
		if s.Mon != nil {
			s.phaseRec = bus.NewPhaseFanout(s.Mon, s.Stream)
		} else {
			s.phaseRec = bus.NewPhaseFanout(s.Stream)
		}
		s.Bus.SetRecorder(s.phaseRec)
	}
	s.TraceStartAt = s.minClock()
	s.BaseCounters = s.K.Counters()
	s.K.Locks.ResetStats()
	s.CPUs[0].Escape(monitor.EvTraceStart)
	for _, fr := range s.K.CodeFrames() {
		s.CPUs[0].Escape(monitor.EvPageAlloc, fr, uint32(1))
	}
	for _, c := range s.CPUs {
		c.needSync = true
		c.Time = [3]arch.Cycles{}
		c.Stall = [3]arch.Cycles{}
		c.L2Stall = [3]arch.Cycles{}
		c.SyncCycles = 0
	}

	// The segment walk. Tracing starts in the detailed phase (the trace-
	// start dump above ran with escapes live); transitions happen only
	// between loop() calls, where every CPU sits at a step boundary —
	// which is also where the parallel engine's workers have quiesced,
	// so sampling composes with -sim-workers.
	for _, seg := range s.Cfg.Sample.Segments(s.Cfg.Window) {
		if detailed := seg.Detailed; detailed != (s.Phase == Detailed) {
			if detailed {
				s.enterDetailed()
			} else {
				s.enterFastForward()
			}
		}
		if seg.Measured && s.OnMeasure != nil {
			s.OnMeasure(true)
		}
		s.end = s.TraceStartAt + seg.End
		s.loop()
		if seg.Measured && s.OnMeasure != nil {
			s.OnMeasure(false)
		}
	}
	// Leave the simulator in the detailed state so post-run consumers
	// (final flush accounting, tests) see a fully-live machine.
	if s.Phase != Detailed {
		s.enterDetailed()
	}
}

// enterFastForward flips the machine into functional-warming mode. The
// escape stream stays on: escapes are stall-free and draw no jitter, and
// the warming classifier needs them (mode/pid context, page-allocation
// frame kinds) to keep its view current through the gap. Only the
// consumers change behavior — the monitor is dropped, the classifier
// stops counting, the checker stops checking.
func (s *Simulator) enterFastForward() {
	s.Phase = FastForward
	s.Bus.SetWarm(true)
	if s.phaseRec != nil {
		s.phaseRec.SetDetailed(false)
	}
}

// enterDetailed restores full fidelity. Nothing needs resynchronizing:
// the classifier warmed through the gap, and the simulator state never
// depended on the phase at all.
func (s *Simulator) enterDetailed() {
	s.Phase = Detailed
	s.Bus.SetWarm(false)
	if s.phaseRec != nil {
		s.phaseRec.SetDetailed(true)
	}
}

// StateHash fingerprints the architectural state of the whole machine —
// every I-cache, both data-cache levels and the TLB of each CPU. Two runs
// that took the same trajectory (e.g. a sampled and a full-detail run of
// the same configuration) end with equal hashes; the sampling tests
// assert exactly that.
func (s *Simulator) StateHash() uint64 {
	h := cache.HashSeed()
	for q, c := range s.CPUs {
		h = s.Bus.I[q].StateHash(h)
		h = s.Bus.D[q].StateHash(h)
		h = c.tlb.StateHash(h, cache.HashMix)
	}
	return h
}

// Schedule returns the run's sampling schedule (zero when disabled).
func (s *Simulator) Schedule() sample.Schedule { return s.Cfg.Sample }
