#!/bin/sh
# Benchmark harness: runs the repo's benchmark suite under -benchmem and
# renders the results as JSON (ns/op, B/op, allocs/op per benchmark run).
# The format and the baseline/current phase convention are documented in
# EXPERIMENTS.md; BENCH_PR3.json in the repo root was produced with it.
#
# Usage:
#   scripts/bench.sh                                  # default suite -> BENCH.json
#   scripts/bench.sh -phase baseline -out before.json # label a pre-change run
#   scripts/bench.sh -count 5 -bench 'Pipeline'       # more repetitions, one bench
#   scripts/bench.sh compare old.json new.json        # delta table, gate on ns/op
#   scripts/bench.sh compare old.json new.json -threshold 15
set -eu

cd "$(dirname "$0")/.."

# compare: render a per-benchmark delta table between two result files and
# exit non-zero if any benchmark's mean ns/op regressed by more than the
# threshold (percent, default 10). Entries labelled with the "current"
# phase are preferred on each side; files without one fall back to all
# phases. Means are taken across repetitions of the same benchmark.
if [ "${1:-}" = compare ]; then
    shift
    old=${1:?usage: $0 compare OLD.json NEW.json [-threshold PCT]}
    new=${2:?usage: $0 compare OLD.json NEW.json [-threshold PCT]}
    shift 2
    threshold=10
    while [ $# -gt 0 ]; do
        case "$1" in
            -threshold) threshold=$2; shift 2 ;;
            *) echo "usage: $0 compare OLD.json NEW.json [-threshold PCT]" >&2; exit 2 ;;
        esac
    done
    awk -v threshold="$threshold" '
    # One entry per line; strip JSON punctuation and read key value pairs.
    /"name":/ {
        gsub(/[",{}]/, "")
        name = ""; phase = ""; ns = ""; b = ""; al = ""
        for (i = 1; i < NF; i++) {
            if ($i == "name:") name = $(i + 1)
            else if ($i == "phase:") phase = $(i + 1)
            else if ($i == "ns_op:") ns = $(i + 1)
            else if ($i == "b_op:") b = $(i + 1)
            else if ($i == "allocs_op:") al = $(i + 1)
        }
        if (name == "" || ns == "") next
        side = (NR == FNR) ? "old" : "new"
        key = side SUBSEP name SUBSEP phase
        cnt[key]++; sum_ns[key] += ns; sum_b[key] += b; sum_al[key] += al
        if (phase == "current") hascur[side SUBSEP name] = 1
        names[name] = 1
        phases[side SUBSEP name SUBSEP phase] = 1
    }
    function mean(side, name, what,    p, key, n, s) {
        # Prefer phase "current"; otherwise aggregate every phase.
        if (hascur[side SUBSEP name]) {
            key = side SUBSEP name SUBSEP "current"
            if (what == "ns") return sum_ns[key] / cnt[key]
            if (what == "b")  return sum_b[key] / cnt[key]
            return sum_al[key] / cnt[key]
        }
        n = 0; s = 0
        for (p in cnt) {
            split(p, q, SUBSEP)
            if (q[1] != side || q[2] != name) continue
            n += cnt[p]
            if (what == "ns") s += sum_ns[p]
            else if (what == "b") s += sum_b[p]
            else s += sum_al[p]
        }
        if (n == 0) return -1
        return s / n
    }
    function fmtdelta(o, v) {
        if (o <= 0) return "n/a"
        return sprintf("%+.1f%%", 100 * (v - o) / o)
    }
    END {
        printf "%-42s %15s %15s %9s %9s %9s\n", "benchmark", "old ns/op", "new ns/op", "ns/op", "B/op", "allocs"
        fail = 0
        for (name in names) sorted[++m] = name
        # insertion sort for stable, portable output order
        for (i = 2; i <= m; i++) {
            v = sorted[i]
            for (j = i - 1; j >= 1 && sorted[j] > v; j--) sorted[j + 1] = sorted[j]
            sorted[j + 1] = v
        }
        for (i = 1; i <= m; i++) {
            name = sorted[i]
            ons = mean("old", name, "ns"); nns = mean("new", name, "ns")
            ob = mean("old", name, "b");   nb = mean("new", name, "b")
            oal = mean("old", name, "al"); nal = mean("new", name, "al")
            if (ons < 0 || nns < 0) {
                printf "%-42s %15s %15s %9s\n", name, (ons < 0 ? "-" : sprintf("%.0f", ons)), (nns < 0 ? "-" : sprintf("%.0f", nns)), "(only in one file)"
                continue
            }
            printf "%-42s %15.0f %15.0f %9s %9s %9s\n", name, ons, nns, fmtdelta(ons, nns), fmtdelta(ob, nb), fmtdelta(oal, nal)
            if (nns > ons * (1 + threshold / 100)) {
                regress[++r] = sprintf("%s: ns/op regressed %.1f%% (> %s%% threshold)", name, 100 * (nns - ons) / ons, threshold)
                fail = 1
            }
        }
        for (i = 1; i <= r; i++) print "REGRESSION: " regress[i] > "/dev/stderr"
        exit fail
    }
    ' "$old" "$new"
    exit $?
fi

count=3
bench='BenchmarkPipeline_FullCharacterization|BenchmarkClassifierThroughput'
phase=current
out=BENCH.json

while [ $# -gt 0 ]; do
    case "$1" in
        -count) count=$2; shift 2 ;;
        -bench) bench=$2; shift 2 ;;
        -phase) phase=$2; shift 2 ;;
        -out)   out=$2;   shift 2 ;;
        *) echo "usage: $0 [-count N] [-bench REGEX] [-phase LABEL] [-out FILE]" >&2; exit 2 ;;
    esac
done

raw=$(go test -run '^$' -bench "$bench" -benchmem -count "$count" .)
printf '%s\n' "$raw" >&2

printf '%s\n' "$raw" | awk -v phase="$phase" '
/^goos:/   { goos = $2 }
/^goarch:/ { goarch = $2 }
/^cpu:/    { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = ""; b = ""; al = ""
    for (i = 3; i <= NF; i++) {
        if ($i == "ns/op") ns = $(i - 1)
        else if ($i == "B/op") b = $(i - 1)
        else if ($i == "allocs/op") al = $(i - 1)
    }
    if (ns == "" || b == "" || al == "") next
    entries[n++] = sprintf("    {\"name\": \"%s\", \"phase\": \"%s\", \"iters\": %s, \"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s}",
        name, phase, $2, ns, b, al)
}
END {
    if (n == 0) { print "bench.sh: no benchmark results parsed" > "/dev/stderr"; exit 1 }
    printf "{\n"
    printf "  \"goos\": \"%s\",\n  \"goarch\": \"%s\",\n  \"cpu\": \"%s\",\n", goos, goarch, cpu
    printf "  \"entries\": [\n"
    for (i = 0; i < n; i++) printf "%s%s\n", entries[i], (i < n - 1 ? "," : "")
    printf "  ]\n}\n"
}
' > "$out"

echo "wrote $out" >&2
