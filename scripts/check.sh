#!/bin/sh
# Tier-1 verification: build, vet, full test suite with the race detector,
# then a checked fault-injection smoke run. Keep this green before merging.
set -eu

cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test -race ./..."
go test -race ./...

echo "== checked fault-injection smoke (charos -check -inject all)"
go run ./cmd/charos -exp table1 -window 2000000 -check -inject all >/dev/null

echo "ok"
