// Package trace is the postprocessing pipeline of Section 2.2: it consumes
// the hardware monitor's bus-transaction trace — misses identified by
// physical address and CPU, instrumentation events encoded as odd-address
// escape reads — and reconstructs everything the paper reports.
//
// The central trick is the same one the paper uses for its cache
// re-simulations: for direct-mapped caches, the miss trace fully determines
// cache contents (each set holds the block last missed on, modulo
// invalidations, which are also visible as bus transactions or escape
// events). The classifier therefore rebuilds per-CPU mirror caches from the
// trace alone and labels every miss with the Table 2 taxonomy: Cold,
// Dispos, Dispap, Sharing, Inval, Uncached, plus the Dispossame subset and
// the application's Ap_dispos misses.
package trace

import (
	"repro/internal/arch"
	"repro/internal/bus"
	"repro/internal/kernel"
	"repro/internal/kmem"
	"repro/internal/monitor"
)

// MissClass is the Table 2 classification.
type MissClass uint8

const (
	// Cold: the processor's first access to the block.
	Cold MissClass = iota
	// DispOS: displaced by an intervening OS reference.
	DispOS
	// DispApp: displaced by an intervening application reference.
	DispApp
	// Sharing: invalidated by coherence activity (including upgrade
	// traffic on write-shared blocks).
	Sharing
	// Inval: I-cache invalidation when a code page was reallocated.
	Inval
	// Uncached: accesses that bypass the caches (device registers).
	Uncached

	// NumClasses is the number of miss classes.
	NumClasses
)

// String returns the paper's class name.
func (m MissClass) String() string {
	switch m {
	case Cold:
		return "Cold"
	case DispOS:
		return "Dispos"
	case DispApp:
		return "Dispap"
	case Sharing:
		return "Sharing"
	case Inval:
		return "Inval"
	case Uncached:
		return "Uncached"
	default:
		return "?"
	}
}

// block-state causes stored per (cpu, cache, block).
const (
	causeNever   = 0 // never resident on this CPU
	causeDispOS  = 1
	causeDispApp = 2
	causeSharing = 3
	causeInval   = 4
	causeHere    = 5 // currently resident (mirror says so)
)

const (
	noBlock  = ^uint32(0)
	instrDim = 0
	dataDim  = 1

	// blocksPerFrame is the number of cache blocks per 4 KB frame — the
	// granularity of the classifier's paged block state.
	blocksPerFrame = arch.PageSize / arch.BlockSize
)

// ClassCounts is the [os][instr][class] miss-count cube — the shape of
// Result.Counts, named so the sampling layer can snapshot and difference
// it without spelling the dimensions out.
type ClassCounts = [2][2][NumClasses]int64

// Result is everything the classifier extracts from one trace.
type Result struct {
	NCPU int

	// Counts[os][instr][class]: os=1 for OS misses, instr=1 for
	// instruction misses.
	Counts ClassCounts

	// Dispossame subsets of the OS Dispos misses.
	DispossameI int64
	DispossameD int64

	// StructSharing / StructAll: OS data misses by Table 3 structure
	// (Sharing class only, and all classes).
	StructSharing map[string]int64
	StructAll     map[string]int64

	// MigrationByGroup: Sharing misses on the migration structures
	// (kernel stack, user structure, process table) by the Table 5
	// routine group of the code executing at the miss.
	MigrationByGroup map[string]int64
	// MigrationTotal is the total migration-miss count (Sharing misses
	// on the three per-process structures).
	MigrationTotal int64
	// MigrationByStruct splits migration misses by structure family:
	// "Kernel Stack", "User Struc." (PCB+Eframe+Rest), "Process Table".
	MigrationByStruct map[string]int64

	// DisposIByRoutine: OS instruction Dispos misses per kernel
	// routine id (Figure 5).
	DisposIByRoutine map[int]int64

	// OpMisses[op][instr]: OS misses by high-level operation (Figure 9).
	OpMisses [kernel.NumOps][2]int64

	// BlockOpDMisses: OS data misses during bcopy / bclear / vhand
	// (Table 6 columns).
	BlockOpDMisses map[string]int64

	// Segments per CPU (Figures 1 and 3).
	Segments [][]Segment

	// UTLBFaults and UTLBMisses: cheap-fault spikes inside application
	// stretches and the misses they caused.
	UTLBFaults int64
	UTLBMisses int64

	// IdleMisses happened in the idle loop (excluded from stall shares).
	IdleMisses int64

	// Suspends counts master-process trace dumps seen in the trace.
	Suspends int64
	// Malformed counts undecodable escape sequences (should be 0).
	Malformed int
	// ReusedWithinInvocation counts OS misses on blocks already missed
	// on in the same invocation (Section 4.1's 10-25% observation).
	ReusedWithinInvocation int64
	// OSMissTotal and Total are convenience sums (OS / all misses,
	// excluding idle-loop misses).
	OSMissTotal int64
	Total       int64

	// IResim is the instruction-miss stream (fills and flush markers)
	// used to drive the Figure 6 cache re-simulations. Collected only
	// when the classifier was built with CollectIResim.
	IResim []IResimEvent

	// DResim is the data-miss stream (fills plus coherence
	// invalidations) for the data-cache sweep that tests the paper's
	// §4.2.2 claim that larger data caches cannot remove Sharing
	// misses. Collected only with CollectDResim.
	DResim []DResimEvent
}

// DResimEvent is one event of the data-cache re-simulation stream.
type DResimEvent struct {
	Block uint32
	CPU   arch.CPUID
	OS    bool
	// Fill is true for a cache fill (Read/ReadEx); false for an
	// invalidation-only transaction (Upgrade). Inval is true when the
	// event invalidates the block in every other CPU's cache (ReadEx
	// and Upgrade).
	Fill  bool
	Inval bool
}

// IResimEvent is one event of the I-miss re-simulation stream: either a
// fill of Block by CPU (Flush=false) or a machine-wide I-cache flush.
type IResimEvent struct {
	Block uint32
	CPU   arch.CPUID
	OS    bool
	Flush bool
}

// Migration-miss structure families (Table 4 / Table 5 row keys for
// Result.MigrationByStruct): the three per-process structures whose
// Sharing misses constitute process-migration cost.
const (
	FamilyKernelStack = kmem.AttrKernelStack
	FamilyUserStruct  = "User Struc." // PCB + Eframe + rest of u-area
	FamilyProcTable   = kmem.AttrProcTable
)

// ClassSum sums classified misses for one quadrant of the taxonomy:
// os=1 selects OS misses (0 application), instr=1 instruction misses
// (0 data). Every table that needs an I- or D-miss denominator uses
// this, so the idle-exclusion convention lives in one place.
func (r *Result) ClassSum(os, instr int) int64 {
	var n int64
	for cl := MissClass(0); cl < NumClasses; cl++ {
		n += r.Counts[os][instr][cl]
	}
	return n
}

// OSShare returns OS misses / all misses.
func (r *Result) OSShare() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.OSMissTotal) / float64(r.Total)
}

// cpuState is the per-CPU decoder state.
type cpuState struct {
	mode    arch.Mode
	opStack []kernel.OpKind
	pid     arch.PID
	routine int // current routine id, -1 unknown

	userEpoch uint32 // bumped when user execution resumes
	invID     uint32 // OS invocation counter
	// intrFromIdle remembers, per nested interrupt, whether it
	// interrupted the idle loop (its misses are OS work, not idle).
	intrFromIdle []bool

	// mirror caches: set → resident block index (noBlock if empty).
	iMirror []uint32
	dMirror []uint32
	// fill-invocation per set: the OS invocation id of the last OS
	// fill (0 for application fills), for the reuse statistic.
	iFillInv []uint32
	dFillInv []uint32

	seg segBuilder
}

func (cs *cpuState) op() kernel.OpKind {
	if len(cs.opStack) == 0 {
		return kernel.OpOtherSyscall
	}
	return cs.opStack[len(cs.opStack)-1]
}

// Migration-family indices for the dense migration tally (resolved to the
// Family* strings at Finish).
const (
	famKernelStack = iota
	famUserStruct
	famProcTable
	numFamilies
)

// Block-operation indices for the dense Table 6 tally.
const (
	blockOpBcopy = iota
	blockOpBclear
	blockOpVhand
	numBlockOps
)

// Classifier processes a trace incrementally.
type Classifier struct {
	kt     *kernel.KText
	layout *kmem.Layout
	ncpu   int

	// iSets/dSets are the mirror-cache line counts, derived from the
	// layout's machine (total lines: the mirrors model the direct-mapped
	// caches of the measured machine, set = block mod sets).
	iSets int
	dSets int

	dec  *monitor.Decoder
	cpus []*cpuState

	// pages holds the per-block cause/epoch state, one page per 4 KB
	// frame, allocated lazily on first touch (check's shadowPage layout).
	// The flat alternative — ncpu*2*nBlocks entries — costs ~80 MB of
	// zeroed memory per classifier at 4 CPUs; paging keeps it proportional
	// to the physical footprint the trace actually touches.
	pages []*blockPage

	frameCode []bool // frame → holds code

	// Interned routine IDs of the block operations, for the per-miss
	// attribution without name lookups.
	bcopyID, bclearID, vhandID int

	// Dense per-miss tallies indexed by interned IDs; Finish resolves
	// them into the string-keyed Result maps. The hot path never touches
	// a map or a string.
	structAll     [kmem.NumAttrs]int64
	structSharing [kmem.NumAttrs]int64
	migByStruct   [numFamilies]int64
	migByGroup    [kernel.NumGroups]int64
	blockOpD      [numBlockOps]int64
	disposI       []int64 // by routine ID

	// CollectIResim records the I-miss stream into Result.IResim.
	CollectIResim bool
	// CollectDResim records the data-miss stream into Result.DResim.
	CollectDResim bool

	// warming is the functional-warming mode of a sampled run's
	// fast-forward phase: every piece of classification state — the
	// cache mirrors, block causes and epochs, per-CPU mode/pid/routine
	// context, the frame-kind table — keeps updating exactly as in a
	// full-detail run, but no statistic accumulates. Measured intervals
	// then classify against mirrors whose displacement history is
	// complete, which is what makes the sample unbiased (the SMARTS
	// functional-warming argument).
	warming bool

	res *Result
}

// SetWarming flips the classifier's functional-warming mode (bus.Warmable).
func (c *Classifier) SetWarming(w bool) { c.warming = w }

// NewClassifier builds a classifier for the machine the layout was
// computed for, with ncpu processors.
func NewClassifier(kt *kernel.KText, layout *kmem.Layout, ncpu int) *Classifier {
	m := layout.M
	frames := m.MemFrames()
	c := &Classifier{
		kt:        kt,
		layout:    layout,
		ncpu:      ncpu,
		iSets:     m.ICacheSize / arch.BlockSize,
		dSets:     m.DCacheL2Size / arch.BlockSize,
		dec:       monitor.NewDecoder(),
		pages:     make([]*blockPage, frames),
		frameCode: make([]bool, frames),
		bcopyID:   kt.R(kmem.RoutineBcopy).ID,
		bclearID:  kt.R(kmem.RoutineBclear).ID,
		vhandID:   kt.R(kmem.RoutineVhand).ID,
		disposI:   make([]int64, len(kt.Routines)),
		res: &Result{
			NCPU:              ncpu,
			StructSharing:     map[string]int64{},
			StructAll:         map[string]int64{},
			MigrationByGroup:  map[string]int64{},
			MigrationByStruct: map[string]int64{},
			DisposIByRoutine:  map[int]int64{},
			BlockOpDMisses:    map[string]int64{},
			Segments:          make([][]Segment, ncpu),
		},
	}
	for i := 0; i < ncpu; i++ {
		cs := &cpuState{
			mode:     arch.ModeUser,
			routine:  -1,
			iMirror:  make([]uint32, c.iSets),
			dMirror:  make([]uint32, c.dSets),
			iFillInv: make([]uint32, c.iSets),
			dFillInv: make([]uint32, c.dSets),
		}
		for j := range cs.iMirror {
			cs.iMirror[j] = noBlock
		}
		for j := range cs.dMirror {
			cs.dMirror[j] = noBlock
		}
		c.cpus = append(c.cpus, cs)
	}
	// Kernel text frames hold code.
	for f := uint32(0); f < layout.KernelText.End().Frame(); f++ {
		c.frameCode[f] = true
	}
	return c
}

// blockPage holds one frame's per-(block, dim, cpu) classification state:
// the block-state cause and the user epoch of the last displacement.
type blockPage struct {
	cause []uint8
	epoch []uint32
}

// state returns the cause and epoch cells of (cpu, dim, block), allocating
// the frame's page on first touch (and growing the frame index for tests
// that fabricate blocks beyond physical memory).
func (c *Classifier) state(cpu arch.CPUID, dim int, block uint32) (cause *uint8, epoch *uint32) {
	f := int(block) / blocksPerFrame
	if f >= len(c.pages) {
		grown := make([]*blockPage, f+1)
		copy(grown, c.pages)
		c.pages = grown
	}
	pg := c.pages[f]
	if pg == nil {
		pg = &blockPage{
			cause: make([]uint8, blocksPerFrame*2*c.ncpu),
			epoch: make([]uint32, blocksPerFrame*2*c.ncpu),
		}
		c.pages[f] = pg
	}
	i := ((int(block)%blocksPerFrame)*2+dim)*c.ncpu + int(cpu)
	return &pg.cause[i], &pg.epoch[i]
}

// Classify runs the whole trace and returns the result.
func Classify(txns []bus.Txn, kt *kernel.KText, layout *kmem.Layout, ncpu int) *Result {
	c := NewClassifier(kt, layout, ncpu)
	for _, t := range txns {
		c.Feed(t)
	}
	return c.Finish()
}

// Feed consumes one bus transaction.
func (c *Classifier) Feed(t bus.Txn) {
	rec, ok := c.dec.Feed(t)
	if !ok {
		return
	}
	if rec.IsEvent {
		c.event(rec)
		return
	}
	c.miss(rec.Txn)
}

// Record implements bus.Recorder: attached directly to the bus (or through
// a bus.Fanout), the classifier consumes each transaction the cycle it
// occurs — the streaming pipeline, with no intermediate trace buffer.
func (c *Classifier) Record(t bus.Txn) { c.Feed(t) }

var _ bus.Recorder = (*Classifier)(nil)

// CountsSnapshot returns a copy of the running class-count cube. The
// sampling accumulator snapshots it at measured-interval boundaries and
// differences the copies, so misses counted in unmeasured detailed
// stretches (the per-sample re-warm intervals) never enter a sample.
func (c *Classifier) CountsSnapshot() ClassCounts { return c.res.Counts }

// MirrorResident returns the block resident in the given mirror-cache set
// (instr selects the I- or D-mirror), for the cross-validation tests that
// compare the trace-reconstructed state against the simulator's real
// caches. ok is false for an empty set.
func (c *Classifier) MirrorResident(cpu arch.CPUID, instr bool, set int) (block uint32, ok bool) {
	cs := c.cpus[cpu]
	var m []uint32
	if instr {
		m = cs.iMirror
	} else {
		m = cs.dMirror
	}
	b := m[set]
	return b, b != noBlock
}

// Finish closes open segments, resolves the dense interned tallies into
// the string-keyed Result maps (only non-zero entries get keys, matching
// the lazy map semantics of the buffered pipeline), and returns the result.
func (c *Classifier) Finish() *Result {
	c.res.Malformed = c.dec.Malformed
	for i, cs := range c.cpus {
		cs.seg.close(&c.res.Segments[i])
	}
	for id := kmem.AttrID(0); id < kmem.NumAttrs; id++ {
		if v := c.structAll[id]; v != 0 {
			c.res.StructAll[id.Name()] = v
		}
		if v := c.structSharing[id]; v != 0 {
			c.res.StructSharing[id.Name()] = v
		}
	}
	famNames := [numFamilies]string{FamilyKernelStack, FamilyUserStruct, FamilyProcTable}
	for fam, v := range c.migByStruct {
		if v != 0 {
			c.res.MigrationByStruct[famNames[fam]] = v
		}
	}
	for g := kernel.GroupID(0); g < kernel.NumGroups; g++ {
		if v := c.migByGroup[g]; v != 0 {
			name := g.Name()
			if name == "" {
				name = "Other"
			}
			c.res.MigrationByGroup[name] = v
		}
	}
	for id, v := range c.disposI {
		if v != 0 {
			c.res.DisposIByRoutine[id] = v
		}
	}
	opNames := [numBlockOps]string{kmem.RoutineBcopy, kmem.RoutineBclear, kmem.RoutineVhand}
	for op, v := range c.blockOpD {
		if v != 0 {
			c.res.BlockOpDMisses[opNames[op]] = v
		}
	}
	return c.res
}

// event updates decoder state from an instrumentation event.
func (c *Classifier) event(rec monitor.Record) {
	cs := c.cpus[rec.Txn.CPU]
	switch rec.Event {
	case monitor.EvTraceStart:
		// Nothing: per-CPU sync events follow.
	case monitor.EvEnterOS:
		if cs.mode == arch.ModeUser {
			cs.invID++
		}
		cs.mode = arch.ModeKernel
		cs.opStack = append(cs.opStack[:0], kernel.OpKind(rec.Args[0]))
		if rec.Args[1] != 0 {
			cs.pid = arch.PID(rec.Args[1])
		}
		cs.seg.boundary(SegOS, cs.invID, rec.Txn.Ticks)
	case monitor.EvExitOS:
		cs.mode = arch.ModeUser
		cs.userEpoch++
		cs.opStack = cs.opStack[:0]
		cs.seg.boundary(SegApp, 0, rec.Txn.Ticks)
	case monitor.EvEnterIdle:
		cs.mode = arch.ModeIdle
		cs.intrFromIdle = cs.intrFromIdle[:0]
		cs.seg.boundary(SegIdle, cs.invID, rec.Txn.Ticks)
	case monitor.EvExitIdle:
		cs.mode = arch.ModeKernel
		cs.intrFromIdle = cs.intrFromIdle[:0]
		cs.seg.boundary(SegOS, cs.invID, rec.Txn.Ticks)
	case monitor.EvEnterIntr:
		cs.opStack = append(cs.opStack, kernel.OpInterrupt)
		// An interrupt taken in the idle loop executes kernel work;
		// its misses must not be dropped as idle misses.
		cs.intrFromIdle = append(cs.intrFromIdle, cs.mode == arch.ModeIdle)
		if cs.mode == arch.ModeIdle {
			cs.mode = arch.ModeKernel
		}
	case monitor.EvExitIntr:
		if len(cs.opStack) > 0 {
			cs.opStack = cs.opStack[:len(cs.opStack)-1]
		}
		if n := len(cs.intrFromIdle); n > 0 {
			if cs.intrFromIdle[n-1] {
				cs.mode = arch.ModeIdle
			}
			cs.intrFromIdle = cs.intrFromIdle[:n-1]
		}
	case monitor.EvRunProc:
		cs.pid = arch.PID(rec.Args[0])
	case monitor.EvRoutineEnter:
		cs.routine = int(rec.Args[0])
	case monitor.EvRoutineExit:
		cs.routine = -1
	case monitor.EvUTLB:
		if !c.warming {
			c.res.UTLBFaults++
			cs.seg.utlb()
		}
	case monitor.EvICacheInval:
		c.icacheInval(rec.Args[0])
	case monitor.EvPageAlloc:
		frame := rec.Args[0]
		if int(frame) < len(c.frameCode) {
			c.frameCode[frame] = rec.Args[1] == uint32(kmem.FrameCode)
		}
	case monitor.EvPageFree:
		// Frame kind persists until reallocation.
	case monitor.EvBlockOp:
		// Sizes are reported by the kernel log (Table 7); the escape
		// exists so a pure-trace consumer could recover them too.
	case monitor.EvSuspend:
		if !c.warming {
			c.res.Suspends++
		}
	case monitor.EvResume:
	case monitor.EvTLBChange:
		// Virtual-to-physical tracking is not needed: user code frames
		// are identified by the page-allocation events.
	}
}

// icacheInval models the machine's code-page-reallocation flush: the
// whole I-cache of every CPU is invalidated, so every resident I-mirror
// block gets the Inval cause.
func (c *Classifier) icacheInval(frame uint32) {
	_ = frame // the flush is total; the frame only identifies the cause
	if c.CollectIResim {
		c.res.IResim = append(c.res.IResim, IResimEvent{Flush: true})
	}
	for q := 0; q < c.ncpu; q++ {
		cs := c.cpus[q]
		for set, b := range cs.iMirror {
			if b != noBlock {
				cs.iMirror[set] = noBlock
				ocause, _ := c.state(arch.CPUID(q), instrDim, b)
				*ocause = causeInval
			}
		}
	}
}

// isInstr decides whether a read fill is an instruction fetch: kernel text
// and user code frames hold instructions; everything else is data.
func (c *Classifier) isInstr(a arch.PAddr) bool {
	return c.frameCode[a.Frame()]
}

// miss classifies one monitored bus transaction.
func (c *Classifier) miss(t bus.Txn) {
	cs := c.cpus[t.CPU]
	switch t.Kind {
	case bus.TxnWriteBack:
		return // not a miss
	case bus.TxnUncached:
		// A genuine uncached device access (even address).
		c.tally(cs, t, false, Uncached, false)
		return
	case bus.TxnUpgrade:
		// Write hit on a Shared block: coherence traffic, counted as
		// a Sharing miss; invalidates remote copies; no fill.
		c.invalidateRemote(t)
		if c.CollectDResim && cs.mode != arch.ModeIdle {
			c.res.DResim = append(c.res.DResim, DResimEvent{
				Block: uint32(t.Addr) >> arch.BlockShift,
				CPU:   t.CPU, OS: c.osMode(cs, t.Addr), Inval: true,
			})
		}
		c.tally(cs, t, false, Sharing, false)
		return
	}
	// TxnRead / TxnReadEx / TxnUpdate: a fill (TxnUpdate is the
	// write-update ablation's fetch-and-broadcast: a fill that does NOT
	// invalidate remote copies).
	block := uint32(t.Addr) >> arch.BlockShift
	instr := t.Kind == bus.TxnRead && c.isInstr(t.Addr)
	if !instr && c.CollectDResim {
		c.res.DResim = append(c.res.DResim, DResimEvent{
			Block: block, CPU: t.CPU,
			OS:    cs.mode != arch.ModeIdle && c.osMode(cs, t.Addr),
			Fill:  true,
			Inval: t.Kind == bus.TxnReadEx,
		})
	}
	if instr && c.CollectIResim {
		// Idle-loop fills warm the simulated caches but are excluded
		// from the OS miss counts (OS=false), matching the idle
		// exclusion of every other statistic.
		c.res.IResim = append(c.res.IResim, IResimEvent{
			Block: block, CPU: t.CPU,
			OS: cs.mode != arch.ModeIdle && c.osMode(cs, t.Addr),
		})
	}
	dim := dataDim
	if instr {
		dim = instrDim
	}
	cause, epoch := c.state(t.CPU, dim, block)
	var class MissClass
	sameInv := false
	switch *cause {
	case causeNever:
		class = Cold
	case causeHere:
		// Refill of a block the mirror thinks is resident (a ReadEx
		// racing our bookkeeping): coherence traffic.
		class = Sharing
	case causeDispOS:
		class = DispOS
		// Dispossame: the application was not invoked between the
		// displacing OS reference and this miss.
		sameInv = *epoch == cs.userEpoch
	case causeDispApp:
		class = DispApp
	case causeSharing:
		class = Sharing
	case causeInval:
		class = Inval
	}
	// Install in the mirror, displacing the previous occupant.
	var mirror, fillInv []uint32
	var sets int
	if instr {
		mirror, fillInv, sets = cs.iMirror, cs.iFillInv, c.iSets
	} else {
		mirror, fillInv, sets = cs.dMirror, cs.dFillInv, c.dSets
	}
	set := int(block) % sets
	// The displacing reference is an OS reference if the CPU is inside
	// an OS window OR the fill itself targets kernel space (the UTLB
	// handler runs outside OS windows).
	displacerOS := c.osMode(cs, t.Addr)
	if old := mirror[set]; old != noBlock && old != block {
		ocause, oepoch := c.state(t.CPU, dim, old)
		if displacerOS {
			*ocause = causeDispOS
			// Section 4.1: 10-25% of OS misses replace blocks
			// already missed on within the same invocation.
			if fillInv[set] == cs.invID && !c.warming {
				c.res.ReusedWithinInvocation++
			}
		} else {
			*ocause = causeDispApp
		}
		*oepoch = cs.userEpoch
	}
	mirror[set] = block
	if displacerOS {
		fillInv[set] = cs.invID
	} else {
		fillInv[set] = 0
	}
	*cause = causeHere
	// Data writes invalidate remote copies (not under write-update).
	if t.Kind == bus.TxnReadEx {
		c.invalidateRemote(t)
	}
	if t.Kind == bus.TxnUpdate {
		// Sharing-induced bus traffic by definition.
		class = Sharing
		sameInv = false
	}
	c.tally(cs, t, instr, class, sameInv)
}

// invalidateRemote marks the block invalid (Sharing cause) in every other
// CPU's data mirror.
func (c *Classifier) invalidateRemote(t bus.Txn) {
	block := uint32(t.Addr) >> arch.BlockShift
	set := int(block) % c.dSets
	for q := 0; q < c.ncpu; q++ {
		if arch.CPUID(q) == t.CPU {
			continue
		}
		cs := c.cpus[q]
		if cs.dMirror[set] == block {
			cs.dMirror[set] = noBlock
			ocause, _ := c.state(arch.CPUID(q), dataDim, block)
			*ocause = causeSharing
		}
	}
}

// osMode reports whether a reference by this CPU counts as an OS
// reference: kernel-mode windows, the idle loop, or any access to kernel
// physical space (the UTLB handler runs outside OS invocations).
func (c *Classifier) osMode(cs *cpuState, a arch.PAddr) bool {
	if cs.mode != arch.ModeUser {
		return true
	}
	return a < c.layout.KernelEnd
}

// tally records one classified miss. sameInv marks a Dispos fill whose
// displacer ran in the same OS invocation (the Dispossame subset); it is
// false for non-fill events (uncached accesses, upgrades).
func (c *Classifier) tally(cs *cpuState, t bus.Txn, instr bool, class MissClass, sameInv bool) {
	if c.warming {
		return // state is current; only the statistics pause
	}
	os := c.osMode(cs, t.Addr)
	if cs.mode == arch.ModeIdle {
		c.res.IdleMisses++
		return
	}
	c.res.Total++
	oi, ii := 0, 0
	if os {
		oi = 1
	}
	if instr {
		ii = 1
	}
	c.res.Counts[oi][ii][class]++
	// Segment miss accounting.
	if cs.mode == arch.ModeUser && os {
		// UTLB handler misses during an application stretch.
		c.res.UTLBMisses++
		cs.seg.utlbMiss()
	} else if instr {
		cs.seg.imiss()
	} else {
		cs.seg.dmiss()
	}
	if !os {
		return
	}
	c.res.OSMissTotal++
	// Operation attribution (Figure 9). UTLB-handler misses outside OS
	// windows belong to the cheap-TLB category.
	op := cs.op()
	if cs.mode == arch.ModeUser {
		op = kernel.OpCheapTLB
	}
	c.res.OpMisses[op][ii]++
	if class == DispOS && sameInv {
		if instr {
			c.res.DispossameI++
		} else {
			c.res.DispossameD++
		}
	}
	if instr {
		if class == DispOS {
			if r := c.kt.At(t.Addr); r != nil {
				c.disposI[r.ID]++
			}
		}
		return
	}
	// Data-structure attribution, entirely on interned IDs: the executing
	// routine is compared by ID, the structure resolved to an AttrID.
	rid := cs.routine
	bop := kmem.BlockOpNone
	switch rid {
	case c.bcopyID:
		bop = kmem.BlockOpBcopy
	case c.bclearID:
		bop = kmem.BlockOpBclear
	}
	structID := c.layout.AttributeID(t.Addr, bop)
	c.structAll[structID]++
	if class == Sharing {
		c.structSharing[structID]++
		// Migration misses: Sharing misses on per-process state.
		fam := -1
		switch structID {
		case kmem.AttrIDKernelStack:
			fam = famKernelStack
		case kmem.AttrIDPCB, kmem.AttrIDEframe, kmem.AttrIDRestUser:
			fam = famUserStruct
		case kmem.AttrIDProcTable:
			fam = famProcTable
		}
		if fam >= 0 {
			c.res.MigrationTotal++
			c.migByStruct[fam]++
			group := kernel.GroupIDNone
			if rid >= 0 && rid < len(c.kt.Routines) {
				group = c.kt.ByID(rid).GroupID
			}
			c.migByGroup[group]++
		}
	}
	// Block-operation attribution (Table 6).
	switch rid {
	case c.bcopyID:
		c.blockOpD[blockOpBcopy]++
	case c.bclearID:
		c.blockOpD[blockOpBclear]++
	case c.vhandID:
		c.blockOpD[blockOpVhand]++
	}
}
