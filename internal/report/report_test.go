package report

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/kmem"
	"repro/internal/metrics"
	"repro/internal/trace"
)

var (
	setOnce   sync.Once
	sharedSet *Set
)

// testSet runs the three workloads once and shares the result across the
// package's tests (each run costs ~1.5s).
func testSet() *Set {
	setOnce.Do(func() {
		sharedSet = RunSet(core.Config{Seed: 5, Window: 6_000_000,
			Warmup: 3_000_000, CollectIResim: true})
	})
	return sharedSet
}

func TestAllRenders(t *testing.T) {
	s := testSet()
	out := All(s)
	out += Figure6(s)
	for _, want := range []string{"Table 1", "Figure 1", "Figure 2", "Figure 3a",
		"Figure 4a", "Figure 5", "Figure 6 (Pmake)", "Figure 7a", "Table 3", "Figure 8",
		"Table 4", "Table 5", "Table 6", "Table 7", "Figure 9", "Table 9",
		"Figure 10", "Table 10", "Table 11", "Table 12"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing section %q", want)
		}
	}
	t.Log("\n" + out)
}

// TestPaperShapeRegression guards the calibration: the paper's qualitative
// findings must keep emerging at the pinned seed/window. Each assertion
// names the claim it protects.
func TestPaperShapeRegression(t *testing.T) {
	s := testSet()

	// Table 1: OS-miss share ranks Pmake > Multpgm > Oracle.
	p, m, o := s.Pmake.OSMissShare(), s.Multpgm.OSMissShare(), s.Oracle.OSMissShare()
	if !(p > m && m > o) {
		t.Errorf("OS-miss share ordering broken: %.1f / %.1f / %.1f", p, m, o)
	}
	// OS stall is a double-digit share for the engineering workloads,
	// lowest for Oracle.
	s.each(func(name string, ch *core.Characterization) {
		_, osOnly, osInd := ch.StallPct()
		if osOnly < 10 || osOnly > 40 {
			t.Errorf("%s OS stall %.1f%% outside the credible band", name, osOnly)
		}
		if osInd < osOnly {
			t.Errorf("%s induced stall below OS stall", name)
		}
	})
	_, pOS, _ := s.Pmake.StallPct()
	_, oOS, _ := s.Oracle.StallPct()
	if oOS >= pOS {
		t.Errorf("Oracle OS stall (%.1f) should be lowest (Pmake %.1f)", oOS, pOS)
	}

	// Figure 4: instruction misses are 40%+ of OS misses everywhere;
	// Dispap dominates Oracle's I-misses (the database displaces the OS).
	s.each(func(name string, ch *core.Characterization) {
		var osI int64
		for cl := trace.MissClass(0); cl < trace.NumClasses; cl++ {
			osI += ch.Trace.Counts[1][1][cl]
		}
		if share := metrics.PctOf(osI, ch.Trace.OSMissTotal); share < 40 {
			t.Errorf("%s I-miss share %.1f%% < 40%%", name, share)
		}
	})
	or := s.Oracle.Trace
	if or.Counts[1][1][trace.DispApp] <= or.Counts[1][1][trace.DispOS] {
		t.Error("Oracle: Dispap should exceed Dispos (database interference)")
	}

	// Figure 4b: Dispossame larger in Pmake than Multpgm (longer
	// invocations).
	dsP := metrics.PctOf(s.Pmake.Trace.DispossameI, s.Pmake.Trace.Counts[1][1][trace.DispOS])
	dsM := metrics.PctOf(s.Multpgm.Trace.DispossameI, s.Multpgm.Trace.Counts[1][1][trace.DispOS])
	if dsP <= dsM {
		t.Errorf("Dispossame: Pmake %.1f%% should exceed Multpgm %.1f%%", dsP, dsM)
	}

	// Figure 6: Pmake/Multpgm pinned to an invalidation floor well above
	// Oracle's; Oracle keeps dropping (1MB ≤ 0.2 relative).
	f6p, f6m, f6o := s.Pmake.Figure6(), s.Multpgm.Figure6(), s.Oracle.Figure6()
	lastP := f6p.DirectMapped[len(f6p.DirectMapped)-1].Relative
	lastM := f6m.DirectMapped[len(f6m.DirectMapped)-1].Relative
	lastO := f6o.DirectMapped[len(f6o.DirectMapped)-1].Relative
	if lastO > 0.2 {
		t.Errorf("Oracle 1MB relative miss rate %.2f, want <0.2", lastO)
	}
	if lastP < 1.5*lastO {
		t.Errorf("Pmake floor %.2f should sit above Oracle's %.2f", lastP, lastO)
	}
	if lastM < 2*lastO {
		t.Errorf("Multpgm floor %.2f should sit well above Oracle's %.2f", lastM, lastO)
	}

	// Table 6: block operations rank Pmake > Multpgm > Oracle.
	blk := func(ch *core.Characterization) float64 { return ch.BlockOpStallPct() }
	if !(blk(s.Pmake) > blk(s.Multpgm) && blk(s.Multpgm) > blk(s.Oracle)) {
		t.Errorf("block-op stall ordering broken: %.1f / %.1f / %.1f",
			blk(s.Pmake), blk(s.Multpgm), blk(s.Oracle))
	}

	// Table 4: migration share of OS D-misses is largest in Oracle,
	// smallest in Pmake.
	mig := func(ch *core.Characterization) float64 {
		var osD int64
		for cl := trace.MissClass(0); cl < trace.NumClasses; cl++ {
			osD += ch.Trace.Counts[1][0][cl]
		}
		return metrics.PctOf(ch.Trace.MigrationTotal, osD)
	}
	if !(mig(s.Oracle) > mig(s.Pmake)) {
		t.Errorf("migration share: Oracle %.1f%% should exceed Pmake %.1f%%",
			mig(s.Oracle), mig(s.Pmake))
	}

	// Figure 2: sginap is the largest Multpgm syscall category.
	ops := s.Multpgm.Ops.OpCounts
	if ops[kernel.OpSginap] <= ops[kernel.OpOtherSyscall] {
		t.Errorf("sginap (%d) should exceed other syscalls (%d)",
			ops[kernel.OpSginap], ops[kernel.OpOtherSyscall])
	}

	// Table 10: cacheable RMW locks beat the sync bus everywhere.
	s.each(func(name string, ch *core.Characterization) {
		cur, rmw := ch.SyncStallPct()
		if rmw >= cur {
			t.Errorf("%s: cacheable locks (%.2f) not better than sync bus (%.2f)", name, rmw, cur)
		}
	})
}

func TestFigure8OrderCoversAttributionNames(t *testing.T) {
	// Every name kmem.Layout.Attribute can produce must appear in the
	// Figure 8 rendering (figure8Order plus the ad-hoc Other row), or
	// a new structure would silently vanish from the figure.
	covered := map[string]bool{kmem.AttrOther: true, kmem.AttrKernelText: true}
	for _, n := range figure8Order {
		covered[n] = true
	}
	for n := range kmem.Table3Sizes() {
		if !covered[n] {
			t.Errorf("attribution name %q missing from figure8Order", n)
		}
	}
	for _, n := range []string{kmem.AttrBcopy, kmem.AttrBclear, kmem.AttrHiNdproc} {
		if !covered[n] {
			t.Errorf("dynamic attribution name %q missing from figure8Order", n)
		}
	}
}
