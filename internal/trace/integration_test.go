package trace

import (
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/bus"
	"repro/internal/kernel"
	"repro/internal/sim"
	"repro/internal/workload"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func runWorkload(t *testing.T, kind workload.Kind, window arch.Cycles) (*sim.Simulator, *Result) {
	t.Helper()
	s := sim.New(sim.Config{Seed: 11, Window: window, Warmup: window / 2})
	workload.Setup(s.Kernel(), kind)
	s.Run()
	r := Classify(s.Mon.Trace(), s.K.T, s.K.L, s.Cfg.NCPU)
	if r.Malformed > 0 {
		t.Fatalf("%d malformed escapes", r.Malformed)
	}
	return s, r
}

func pct(part, whole int64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

// logShapes prints the main distributions for calibration.
func logShapes(t *testing.T, name string, s *sim.Simulator, r *Result) {
	osMisses := r.OSMissTotal
	var osI, osD int64
	for cl := MissClass(0); cl < NumClasses; cl++ {
		osI += r.Counts[1][1][cl]
		osD += r.Counts[1][0][cl]
	}
	t.Logf("%s: total=%d os=%d (%.1f%%) | osI=%d (%.1f%% of OS) osD=%d",
		name, r.Total, osMisses, 100*r.OSShare(), osI, pct(osI, osMisses), osD)
	for cl := MissClass(0); cl < NumClasses; cl++ {
		t.Logf("  I %-8s %5.1f%%   D %-8s %5.1f%%  (of OS misses)",
			cl, pct(r.Counts[1][1][cl], osMisses), cl, pct(r.Counts[1][0][cl], osMisses))
	}
	t.Logf("  DispossameI/DisposI = %.0f%%", pct(r.DispossameI, r.Counts[1][1][DispOS]))
	t.Logf("  migration: total=%d (%.1f%% of OS D) by=%v", r.MigrationTotal,
		pct(r.MigrationTotal, osD), r.MigrationByStruct)
	t.Logf("  blockops: %v (of OS D: bcopy %.1f%% bclear %.1f%% vhand %.1f%%)",
		r.BlockOpDMisses,
		pct(r.BlockOpDMisses["bcopy"], osD), pct(r.BlockOpDMisses["bclear"], osD),
		pct(r.BlockOpDMisses["vhand"], osD))
	t.Logf("  sharing by struct: %v", r.StructSharing)
	var appI, appD, apDispI, apDispD int64
	for cl := MissClass(0); cl < NumClasses; cl++ {
		appI += r.Counts[0][1][cl]
		appD += r.Counts[0][0][cl]
	}
	apDispI = r.Counts[0][1][DispOS]
	apDispD = r.Counts[0][0][DispOS]
	t.Logf("  app: I=%d D=%d  Ap_dispos: %.1f%% of app misses (I %.1f%%, D %.1f%%)",
		appI, appD, pct(apDispI+apDispD, appI+appD), pct(apDispI, appI+appD), pct(apDispD, appI+appD))
	// Table 1-style stall shares.
	var nonIdle, stall arch.Cycles
	for _, c := range s.CPUs {
		nonIdle += c.Time[arch.ModeUser] + c.Time[arch.ModeKernel]
		stall += c.Stall[arch.ModeUser] + c.Stall[arch.ModeKernel]
	}
	osStall := arch.Cycles(osMisses) * arch.MissStallCycles
	indStall := arch.Cycles(apDispI+apDispD) * arch.MissStallCycles
	t.Logf("  stall/nonidle: all=%.1f%% os=%.1f%% os+induced=%.1f%% (sim-stall=%.1f%%)",
		pct(int64(r.Total)*arch.MissStallCycles, int64(nonIdle)),
		pct(int64(osStall), int64(nonIdle)),
		pct(int64(osStall+indStall), int64(nonIdle)),
		pct(int64(stall), int64(nonIdle)))
	t.Logf("  utlb: faults=%d misses=%d (%.2f/fault) reuse-within-inv=%.0f%% of OS",
		r.UTLBFaults, r.UTLBMisses, float64(r.UTLBMisses)/float64(max64(r.UTLBFaults, 1)),
		pct(r.ReusedWithinInvocation, osMisses))
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func TestPmakeShapes(t *testing.T) {
	s, r := runWorkload(t, workload.Pmake, 8_000_000)
	logShapes(t, "Pmake", s, r)
	if r.OSMissTotal == 0 {
		t.Fatal("no OS misses classified")
	}
}

func TestMultpgmShapes(t *testing.T) {
	s, r := runWorkload(t, workload.Multpgm, 8_000_000)
	logShapes(t, "Multpgm", s, r)
}

func TestOracleShapes(t *testing.T) {
	s, r := runWorkload(t, workload.Oracle, 8_000_000)
	logShapes(t, "Oracle", s, r)
}

// TestStallConsistency cross-checks the trace-derived miss count against
// the simulator's own stall accounting: every monitored miss stalls 35
// cycles, so they must agree closely.
func TestStallConsistency(t *testing.T) {
	s, r := runWorkload(t, workload.Pmake, 4_000_000)
	var stall arch.Cycles
	for _, c := range s.CPUs {
		stall += c.Stall[arch.ModeUser] + c.Stall[arch.ModeKernel]
	}
	// Trace misses exclude idle; sim Stall excludes idle; uncached
	// device reads stall too and are counted in Total.
	traceStall := arch.Cycles(r.Total) * arch.MissStallCycles
	ratio := float64(traceStall) / float64(stall)
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("trace stall %d vs sim stall %d (ratio %.3f)", traceStall, stall, ratio)
	}
	_ = kernel.NumOps
}

// TestFlushDiagnostics reports I-cache flush frequency (calibration aid).
func TestFlushDiagnostics(t *testing.T) {
	s, r := runWorkload(t, workload.Pmake, 8_000_000)
	t.Logf("flushes=%d travs=%d invalMisses I=%d textCached=%d codeReuse=%d",
		s.ICacheFlushes, s.K.Traversals, r.Counts[1][1][Inval]+r.Counts[0][1][Inval],
		s.K.TextCacheEvents, s.K.CodeFrameReuses)
	fc, cc, fr, ca := s.K.F.DebugCounts()
	t.Logf("frames: free=%d (code %d) cached=%d (code %d) avoided=%d", fr, fc, ca, cc, s.K.F.Avoided())
}

// TestOracleStdQualitativelySameAsOracle reproduces the paper's robustness
// check ([18]): the OS miss characteristics of the standard-sized TP1
// benchmark are qualitatively the same as the scaled-down instance's.
func TestOracleStdQualitativelySameAsOracle(t *testing.T) {
	_, small := runWorkload(t, workload.Oracle, 6_000_000)
	_, std := runWorkload(t, workload.OracleStd, 6_000_000)
	share := func(r *Result) (iShare, dispap float64) {
		var osI int64
		for cl := MissClass(0); cl < NumClasses; cl++ {
			osI += r.Counts[1][1][cl]
		}
		return pct(osI, r.OSMissTotal), pct(r.Counts[1][1][DispApp], r.OSMissTotal)
	}
	iA, dA := share(small)
	iB, dB := share(std)
	t.Logf("scaled:   I-share %.1f%%, Dispap %.1f%%", iA, dA)
	t.Logf("standard: I-share %.1f%%, Dispap %.1f%%", iB, dB)
	if diff := iA - iB; diff > 15 || diff < -15 {
		t.Errorf("I-miss share changed qualitatively: %.1f vs %.1f", iA, iB)
	}
	// Dispap (database text displacing the OS) dominates in both.
	if dA < 25 || dB < 25 {
		t.Errorf("Dispap should dominate both instances: %.1f vs %.1f", dA, dB)
	}
}

// TestMirrorMatchesRealCaches is the methodology's keystone check: the
// classifier reconstructs per-CPU cache contents from the bus trace ALONE
// (the paper's claim that a direct-mapped cache's contents are determined
// by its miss stream). After a run, every mirror set must agree with the
// simulator's actual caches.
func TestMirrorMatchesRealCaches(t *testing.T) {
	s := sim.New(sim.Config{Seed: 21, Window: 3_000_000, Warmup: 1_000_000})
	workload.Setup(s.Kernel(), workload.Pmake)
	s.Run()
	if s.Mon.Dropped != 0 {
		t.Fatalf("monitor dropped %d transactions; mirrors would desync", s.Mon.Dropped)
	}
	cl := NewClassifier(s.K.T, s.K.L, s.Cfg.NCPU)
	for _, txn := range s.Mon.Trace() {
		cl.Feed(txn)
	}
	cl.Finish()
	const (
		iSetsN = 4096  // 64 KB / 16
		dSetsN = 16384 // 256 KB / 16
	)
	var checked, mismatched int
	for cpu := 0; cpu < s.Cfg.NCPU; cpu++ {
		for set := 0; set < iSetsN; set++ {
			mb, mok := cl.MirrorResident(arch.CPUID(cpu), true, set)
			// Probe the real I-cache with the mirror's claim.
			if mok {
				checked++
				a := arch.PAddr(mb) << 4
				if !s.Bus.I[cpu].Lookup(a) {
					mismatched++
				}
			}
		}
		for set := 0; set < dSetsN; set++ {
			mb, mok := cl.MirrorResident(arch.CPUID(cpu), false, set)
			if mok {
				checked++
				a := arch.PAddr(mb) << 4
				if !s.Bus.D[cpu].Resident(a) {
					mismatched++
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("mirrors are empty")
	}
	// Tracing starts mid-run, so blocks fetched before the window and
	// never re-missed are invisible to the mirror (it under-claims,
	// never over-claims except for pre-window evictions). Mismatches
	// must be a tiny residue of pre-window state.
	rate := float64(mismatched) / float64(checked)
	t.Logf("mirror sets checked: %d, mismatched: %d (%.3f%%)", checked, mismatched, 100*rate)
	if rate > 0.01 {
		t.Errorf("mirror desync: %.2f%% of claimed-resident blocks are not in the real caches", 100*rate)
	}
}

// TestClassifierSurvivesMonitorOverflow injects a failure: a tiny monitor
// buffer with the master threshold disabled, so transactions are dropped.
// The classifier must degrade gracefully (no panic, sane totals), exactly
// as a real postprocessor facing a truncated trace would.
func TestClassifierSurvivesMonitorOverflow(t *testing.T) {
	s := sim.New(sim.Config{
		Seed: 5, Window: 2_000_000, Warmup: 500_000,
		MonitorCap:      1 << 12,
		MasterThreshold: 2.0, // never dump: force drops
	})
	workload.Setup(s.Kernel(), workload.Pmake)
	s.Run()
	if s.Mon.Dropped == 0 {
		t.Fatal("overflow was not induced")
	}
	r := Classify(s.Mon.Trace(), s.K.T, s.K.L, s.Cfg.NCPU)
	if r.Total < 0 || r.OSMissTotal > r.Total {
		t.Errorf("inconsistent totals after truncation: %d/%d", r.OSMissTotal, r.Total)
	}
}

// TestClassifierFuzzRandomTrace throws structurally-random transactions at
// the classifier: it must never panic, whatever garbage the monitor hands
// it (a real postprocessor requirement).
func TestClassifierFuzzRandomTrace(t *testing.T) {
	kt, l := newEnv()
	for seed := int64(0); seed < 20; seed++ {
		rng := newRand(seed)
		txns := make([]bus.Txn, 2000)
		for i := range txns {
			txns[i] = bus.Txn{
				Ticks: uint64(i),
				Addr:  arch.PAddr(rng.Intn(arch.MemBytes)),
				CPU:   arch.CPUID(rng.Intn(4)),
				Kind:  bus.TxnKind(rng.Intn(5)),
			}
		}
		r := Classify(txns, kt, l, 4)
		if r.Total < 0 {
			t.Fatalf("seed %d: negative total", seed)
		}
	}
}
