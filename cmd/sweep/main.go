// Command sweep runs the parameter-sweep experiments: the Figure 6
// I-cache size/associativity re-simulation and the Figure 11 lock
// contention sweep over CPU counts.
//
// Usage:
//
//	sweep -exp figure6 [-window N]
//	sweep -exp figure11 [-cpus 2,4,6,8,12,16]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/report"
)

func main() {
	exp := flag.String("exp", "figure6", "figure6 or figure11")
	window := flag.Int64("window", 12_000_000, "traced window in cycles")
	seed := flag.Int64("seed", 1, "random seed")
	cpus := flag.String("cpus", "2,4,6,8,12,16", "CPU counts for figure11")
	checkFlag := flag.Bool("check", false, "run the invariant checker alongside the sweep")
	flag.Parse()

	switch *exp {
	case "figure6":
		set := report.RunSet(core.Config{
			Window: arch.Cycles(*window), Seed: *seed, CollectIResim: true,
			Check: *checkFlag,
		})
		fmt.Print(report.Figure6(set))
		for _, ch := range []*core.Characterization{set.Pmake, set.Multpgm, set.Oracle} {
			if ch.Sim.Chk != nil && ch.Sim.Chk.Violations > 0 {
				fmt.Fprintf(os.Stderr, "%s: %d invariant violations, first: %v\n",
					ch.Cfg.Workload, ch.Sim.Chk.Violations, ch.CheckErrors[0])
				os.Exit(1)
			}
		}
	case "figure11":
		var counts []int
		for _, part := range strings.Split(*cpus, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "bad cpu count %q\n", part)
				os.Exit(2)
			}
			counts = append(counts, n)
		}
		pts := report.RunFigure11(counts, arch.Cycles(*window), *seed)
		fmt.Print(report.Figure11(pts))
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
