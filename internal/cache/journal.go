package cache

import "repro/internal/arch"

// Journal is an undo log for speculative cache accesses. The parallel
// simulation engine lets a CPU run ahead through its private caches and
// may later discard a suffix of that run; the journal records each line's
// pre-access state so TruncateTo can restore the caches exactly,
// including the resident counters and the per-frame resident index.
//
// It supports only the direct-mapped fast path (the only configuration
// the parallel engine accepts): every save computes the single line an
// address can occupy. LRU stamps and the access clock are unobservable
// with one way, so they need no journaling.
type Journal struct {
	saves []lineSave
	// Dep, when set, receives the block address of every valid line the
	// journal saves — the lines whose state the speculation observes or
	// displaces. The parallel engine uses it to build the segment's
	// dependence set: a committed remote operation on one of these
	// blocks must truncate the speculation, anything else can't affect
	// it.
	Dep func(arch.PAddr)
}

type lineSave struct {
	c     *Cache
	idx   int32
	valid bool
	dirty bool
	// shared is the saved coherence bit. When the cache's sharedBit
	// array is still unallocated it records false — correct, because
	// the array only appears via SetShared, which allocates it all-false.
	shared bool
	tag    arch.PAddr
}

// Len returns the number of saves, for checkpointing.
func (j *Journal) Len() int { return len(j.saves) }

// Reset drops all saves without restoring (the speculation committed or
// the whole run was abandoned).
func (j *Journal) Reset() { j.saves = j.saves[:0] }

func dmLine(c *Cache, a arch.PAddr) int {
	return int(uint32(a)>>arch.BlockShift) & (c.sets - 1)
}

func (j *Journal) save(c *Cache, idx int) {
	s := lineSave{
		c:     c,
		idx:   int32(idx),
		valid: c.valid[idx],
		dirty: c.dirty[idx],
		tag:   c.tag[idx],
	}
	if c.sharedBit != nil {
		s.shared = c.sharedBit[idx]
	}
	j.saves = append(j.saves, s)
	if s.valid && j.Dep != nil {
		j.Dep(s.tag)
	}
}

// SaveI records the pre-state of the one instruction-cache line a fetch
// of a can modify.
func (j *Journal) SaveI(c *Cache, a arch.PAddr) {
	j.save(c, dmLine(c, a))
}

// SaveData records the pre-state of every line a data access of a can
// modify: the L1 and L2 lines a maps to and, when the L2 fill would
// displace a victim, the L1 line that victim occupies (inclusion
// invalidates it).
func (j *Journal) SaveData(h *DataHierarchy, a arch.PAddr) {
	l1, l2 := h.L1, h.L2
	b := a.Block()
	i1 := dmLine(l1, a)
	i2 := dmLine(l2, a)
	j.save(l1, i1)
	j.save(l2, i2)
	if l2.valid[i2] && l2.tag[i2] != b {
		// The fill will evict l2.tag[i2]; inclusion removes it from L1.
		vi := dmLine(l1, l2.tag[i2])
		if vi != i1 {
			j.save(l1, vi)
		}
	}
}

// TruncateTo restores every line saved after checkpoint n (in reverse
// order, so repeated saves of one line end at the oldest state) and
// drops those saves.
func (j *Journal) TruncateTo(n int) {
	for i := len(j.saves) - 1; i >= n; i-- {
		s := &j.saves[i]
		c := s.c
		idx := int(s.idx)
		if c.valid[idx] {
			c.residents--
			c.frameDec(c.tag[idx].Frame())
		}
		if s.valid {
			c.residents++
			c.frameInc(s.tag.Frame())
		}
		c.valid[idx] = s.valid
		c.tag[idx] = s.tag
		c.dirty[idx] = s.dirty
		if c.sharedBit != nil {
			c.sharedBit[idx] = s.shared
		}
	}
	j.saves = j.saves[:n]
}
