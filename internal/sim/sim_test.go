package sim

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/bus"
	"repro/internal/kernel"
	"repro/internal/klock"
	"repro/internal/monitor"
)

// loopBehavior computes then issues a syscall, forever.
type loopBehavior struct {
	compute arch.Cycles
	req     kernel.SyscallReq
	inode   int
	off     int64
	n       int
}

func (b *loopBehavior) Next(k *kernel.Kernel, p *kernel.Proc) kernel.Action {
	b.n++
	if b.n%2 == 1 {
		return kernel.Action{Kind: kernel.ActCompute, Cycles: b.compute}
	}
	req := b.req
	if req.Kind == kernel.SysRead || req.Kind == kernel.SysWrite {
		b.off += 1024
		req.Offset = b.off
		req.Inode = b.inode
		req.Bytes = 1024
	}
	return kernel.Action{Kind: kernel.ActSyscall, Req: req}
}

// lockBehavior alternates compute and user-lock critical sections.
type lockBehavior struct {
	lock *klock.Lock
	n    int
}

func (b *lockBehavior) Next(k *kernel.Kernel, p *kernel.Proc) kernel.Action {
	b.n++
	if b.n%2 == 1 {
		return kernel.Action{Kind: kernel.ActCompute, Cycles: 3000}
	}
	return kernel.Action{Kind: kernel.ActUserLock, Lock: b.lock, Hold: 2000}
}

func smallSim(t *testing.T, cfg Config) *Simulator {
	t.Helper()
	if cfg.Window == 0 {
		cfg.Window = 2_000_000
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = 200_000
	}
	cfg.Seed = 42
	cfg.Kernel.PrefillCachedFrames = 512
	return New(cfg)
}

func TestComputeOnlyWorkloadRuns(t *testing.T) {
	s := smallSim(t, Config{})
	for i := 0; i < 4; i++ {
		s.K.CreateProc(&kernel.ProcSpec{
			Name:      "spin",
			Image:     s.K.NewImage("spin", 8),
			DataPages: 16,
			Behavior:  &loopBehavior{compute: 50_000, req: kernel.SyscallReq{Kind: kernel.SysSmall}},
		})
	}
	s.Run()
	// All CPUs advanced through the window.
	for _, c := range s.CPUs {
		if c.now < s.end {
			t.Fatalf("CPU %d stuck at %d < %d", c.id, c.now, s.end)
		}
		user := c.Time[arch.ModeUser]
		if user == 0 {
			t.Errorf("CPU %d never ran user code", c.id)
		}
	}
	if s.Bus.Stats.Transactions() == 0 {
		t.Error("no bus transactions")
	}
	if s.Mon.Len() == 0 {
		t.Error("monitor recorded nothing")
	}
	if s.K.OpCounts[kernel.OpInterrupt] == 0 {
		t.Error("no clock interrupts delivered")
	}
}

func TestIOWorkloadSleepsAndWakes(t *testing.T) {
	s := smallSim(t, Config{})
	for i := 0; i < 3; i++ {
		s.K.CreateProc(&kernel.ProcSpec{
			Name:      "reader",
			Image:     s.K.NewImage("reader", 8),
			DataPages: 8,
			Behavior: &loopBehavior{compute: 20_000,
				req:   kernel.SyscallReq{Kind: kernel.SysRead},
				inode: 100 + i},
		})
	}
	s.Run()
	if s.K.DiskRequests == 0 {
		t.Fatal("no disk I/O happened")
	}
	if s.K.OpCounts[kernel.OpIOSyscall] == 0 {
		t.Error("no I/O syscalls counted")
	}
	idle := arch.Cycles(0)
	for _, c := range s.CPUs {
		idle += c.Time[arch.ModeIdle]
	}
	if idle == 0 {
		t.Error("I/O-bound workload should produce idle time")
	}
}

func TestUserLocksProduceSginap(t *testing.T) {
	s := smallSim(t, Config{})
	l := klock.NewLock("user")
	l.User = true
	for i := 0; i < 6; i++ { // oversubscribed: contention
		s.K.CreateProc(&kernel.ProcSpec{
			Name:      "mp3d",
			Image:     s.K.NewImage("mp3d", 8),
			DataPages: 8,
			Behavior:  &lockBehavior{lock: l},
		})
	}
	s.Run()
	if l.Acquires() == 0 {
		t.Fatal("user lock never acquired")
	}
	if s.K.OpCounts[kernel.OpSginap] == 0 {
		t.Error("contended user lock never triggered sginap")
	}
}

// suspendProbe is a streaming recorder that decodes escapes on the fly and
// counts master-process suspend events.
type suspendProbe struct {
	dec      monitor.Decoder
	total    int
	suspends int
}

func (p *suspendProbe) Record(t bus.Txn) {
	p.total++
	if r, ok := p.dec.Feed(t); ok && r.IsEvent && r.Event == monitor.EvSuspend {
		p.suspends++
	}
}

// TestStreamingNeverSuspends pins the master-process/streaming interaction:
// the dump logic exists to drain the monitor's buffer before it overflows,
// so with no buffer (streaming mode) it must be a no-op — even under a
// capacity and threshold that force constant dumping in buffered mode.
func TestStreamingNeverSuspends(t *testing.T) {
	spawn := func(s *Simulator) {
		for i := 0; i < 4; i++ {
			s.K.CreateProc(&kernel.ProcSpec{
				Name:      "mix",
				Image:     s.K.NewImage("mix", 8),
				DataPages: 8,
				Behavior: &loopBehavior{compute: 10_000,
					req:   kernel.SyscallReq{Kind: kernel.SysWrite},
					inode: i},
			})
		}
	}
	// Buffered control: this configuration dumps repeatedly.
	b := smallSim(t, Config{MonitorCap: 1 << 16})
	spawn(b)
	b.Run()
	if b.Mon.Suspends == 0 {
		t.Fatal("control run never dumped; the threshold was not exercised")
	}
	// Same machine, streaming: no monitor, no dumps, no suspensions.
	s := smallSim(t, Config{MonitorCap: 1 << 16, Streaming: true})
	probe := &suspendProbe{}
	s.Stream = probe
	spawn(s)
	s.Run()
	if s.Mon != nil {
		t.Fatal("streaming run built a trace buffer")
	}
	if probe.total == 0 {
		t.Fatal("stream recorder saw no transactions")
	}
	if probe.suspends != 0 {
		t.Errorf("streaming run suspended the workload %d times; want 0", probe.suspends)
	}
}

func TestTraceDecodes(t *testing.T) {
	s := smallSim(t, Config{MonitorCap: 1 << 16})
	for i := 0; i < 4; i++ {
		s.K.CreateProc(&kernel.ProcSpec{
			Name:      "mix",
			Image:     s.K.NewImage("mix", 8),
			DataPages: 8,
			Behavior: &loopBehavior{compute: 10_000,
				req:   kernel.SyscallReq{Kind: kernel.SysWrite},
				inode: i},
		})
	}
	s.Run()
	trace := s.Mon.Trace()
	if len(trace) == 0 {
		t.Fatal("empty trace")
	}
	// The master must have dumped at least once with a 64K buffer.
	if s.Mon.Suspends == 0 {
		t.Error("master never dumped the small buffer")
	}
	if s.Mon.Dropped != 0 {
		t.Errorf("monitor dropped %d transactions", s.Mon.Dropped)
	}
	d := monitor.NewDecoder()
	events := map[monitor.Event]int{}
	misses := 0
	for _, txn := range trace {
		rec, ok := d.Feed(txn)
		if !ok {
			continue
		}
		if rec.IsEvent {
			events[rec.Event]++
		} else {
			misses++
			if rec.Txn.Addr%arch.BlockSize != 0 && rec.Txn.Kind != 4 /* uncached */ {
				t.Fatalf("unaligned miss %#x", rec.Txn.Addr)
			}
		}
	}
	if d.Malformed > 0 {
		t.Errorf("%d malformed escapes", d.Malformed)
	}
	for _, ev := range []monitor.Event{monitor.EvEnterOS, monitor.EvExitOS,
		monitor.EvRunProc, monitor.EvTLBChange, monitor.EvBlockOp} {
		if events[ev] == 0 {
			t.Errorf("no %v events in trace", ev)
		}
	}
	if misses == 0 {
		t.Error("no misses in trace")
	}
	// Enter/Exit OS must balance approximately (within open windows).
	diff := events[monitor.EvEnterOS] - events[monitor.EvExitOS]
	if diff < 0 || diff > s.Cfg.NCPU+1 {
		t.Errorf("EnterOS-ExitOS imbalance: %d vs %d", events[monitor.EvEnterOS], events[monitor.EvExitOS])
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int64, int) {
		s := smallSim(t, Config{Window: 500_000, Warmup: 100_000})
		for i := 0; i < 3; i++ {
			s.K.CreateProc(&kernel.ProcSpec{
				Name:      "mix",
				Image:     s.K.NewImage("mix", 8),
				DataPages: 8,
				Behavior: &loopBehavior{compute: 10_000,
					req:   kernel.SyscallReq{Kind: kernel.SysRead},
					inode: i},
			})
		}
		s.Run()
		return s.Bus.Stats.Transactions(), s.Mon.Len()
	}
	t1, l1 := run()
	t2, l2 := run()
	if t1 != t2 || l1 != l2 {
		t.Errorf("runs differ: (%d,%d) vs (%d,%d)", t1, l1, t2, l2)
	}
}

func TestSpawningWorkload(t *testing.T) {
	s := smallSim(t, Config{Window: 3_000_000})
	img := s.K.NewImage("cc", 16)
	s.K.CreateProc(&kernel.ProcSpec{
		Name:      "make",
		DataPages: 4,
		Image:     s.K.NewImage("make", 4),
		Behavior:  &spawnerBehavior{img: img},
	})
	s.Run()
	if s.K.Spawns == 0 {
		t.Fatal("nothing spawned")
	}
	if s.K.Exits == 0 {
		t.Error("no children exited")
	}
}

// spawnerBehavior spawns short-lived children and waits, like make.
type spawnerBehavior struct {
	img *kernel.Image
	n   int
}

func (b *spawnerBehavior) Next(k *kernel.Kernel, p *kernel.Proc) kernel.Action {
	b.n++
	switch b.n % 3 {
	case 1:
		return kernel.Action{Kind: kernel.ActCompute, Cycles: 5_000}
	case 2:
		if p.LiveChildren >= 4 {
			return kernel.Action{Kind: kernel.ActSyscall, Req: kernel.SyscallReq{Kind: kernel.SysWait}}
		}
		return kernel.Action{Kind: kernel.ActSyscall, Req: kernel.SyscallReq{Kind: kernel.SysSpawn,
			Child: &kernel.ProcSpec{
				Name: "cc", Image: b.img, DataPages: 8,
				Behavior: &childBehavior{},
			}}}
	default:
		return kernel.Action{Kind: kernel.ActSyscall, Req: kernel.SyscallReq{Kind: kernel.SysSmall}}
	}
}

type childBehavior struct{ n int }

func (b *childBehavior) Next(k *kernel.Kernel, p *kernel.Proc) kernel.Action {
	b.n++
	if b.n < 4 {
		return kernel.Action{Kind: kernel.ActCompute, Cycles: 30_000}
	}
	return kernel.Action{Kind: kernel.ActExit}
}

// TestTimeAccountingInvariant: each CPU's mode buckets must sum to its
// clock advance over the traced window, and stall components must be
// bounded by their buckets.
func TestTimeAccountingInvariant(t *testing.T) {
	s := smallSim(t, Config{})
	for i := 0; i < 5; i++ {
		s.K.CreateProc(&kernel.ProcSpec{
			Name: "mix", Image: s.K.NewImage("mix", 8), DataPages: 8,
			Behavior: &loopBehavior{compute: 15_000,
				req: kernel.SyscallReq{Kind: kernel.SysRead}, inode: i},
		})
	}
	s.Run()
	for _, c := range s.CPUs {
		var tot arch.Cycles
		for m := 0; m < 3; m++ {
			tot += c.Time[m]
			if c.Stall[m] > c.Time[m] {
				t.Errorf("CPU: stall %d exceeds bucket %d (mode %d)", c.Stall[m], c.Time[m], m)
			}
			if c.L2Stall[m] > c.Time[m] {
				t.Errorf("CPU: L2 stall exceeds bucket (mode %d)", m)
			}
		}
		// Time buckets were reset at trace start; the clock advanced
		// from TraceStartAt (approximately: CPUs start the window at
		// their own clocks ≥ TraceStartAt).
		if tot <= 0 {
			t.Error("no time accumulated in the traced window")
		}
	}
}

// TestMonitorTicksMonotonePerCPU: each CPU's transactions must carry
// non-decreasing timestamps (the monitor's counter is global, but a CPU
// cannot travel back in time).
func TestMonitorTicksMonotonePerCPU(t *testing.T) {
	s := smallSim(t, Config{Window: 1_000_000, Warmup: 300_000})
	for i := 0; i < 4; i++ {
		s.K.CreateProc(&kernel.ProcSpec{
			Name: "mix", Image: s.K.NewImage("mix", 8), DataPages: 8,
			Behavior: &loopBehavior{compute: 20_000,
				req: kernel.SyscallReq{Kind: kernel.SysWrite}, inode: i},
		})
	}
	s.Run()
	last := map[arch.CPUID]uint64{}
	for _, txn := range s.Mon.Trace() {
		if txn.Ticks < last[txn.CPU] {
			t.Fatalf("CPU %d time went backwards: %d after %d", txn.CPU, txn.Ticks, last[txn.CPU])
		}
		last[txn.CPU] = txn.Ticks
	}
}

// TestNoKernelLockLeaks: after a run, no kernel lock may still be held
// (spinlocks are never held across a context switch).
func TestNoKernelLockLeaks(t *testing.T) {
	s := smallSim(t, Config{})
	for i := 0; i < 6; i++ {
		s.K.CreateProc(&kernel.ProcSpec{
			Name: "mix", Image: s.K.NewImage("mix", 8), DataPages: 8,
			Behavior: &loopBehavior{compute: 10_000,
				req: kernel.SyscallReq{Kind: kernel.SysRead}, inode: i},
		})
	}
	s.Run()
	for _, st := range s.K.Locks.AllStats() {
		_ = st
	}
	for _, name := range []string{"Memlock", "Runqlk", "Ifree", "Dfbmaplk", "Bfreelock", "Calock"} {
		if s.K.Locks.Get(name).Held() {
			t.Errorf("lock %s still held after the run", name)
		}
	}
}

// TestZeroWindowDefault pins the simulator's zero-window fallback to the
// shared arch.DefaultWindow (it used to carry its own 8M-cycle copy).
func TestZeroWindowDefault(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Window != arch.DefaultWindow {
		t.Errorf("Window = %d, want arch.DefaultWindow (%d)", cfg.Window, arch.DefaultWindow)
	}
}
