package klock

import (
	"sort"

	"repro/internal/arch"
)

// The most frequently acquired kernel locks (Table 11 of the paper).
// Names ending in _x are arrays where each element protects one instance
// of a structure.
const (
	Memlock   = "Memlock"   // physical memory allocation structures
	Runqlk    = "Runqlk"    // scheduler's run queue
	Ifree     = "Ifree"     // list of free inodes
	Dfbmaplk  = "Dfbmaplk"  // table of free disk blocks
	Bfreelock = "Bfreelock" // list of free buffer-cache buffers
	Calock    = "Calock"    // callout table (alarms, timeouts)
	ShrX      = "Shr_x"     // per-process page tables and related
	StreamsX  = "Streams_x" // character-device stream management
	InoX      = "Ino_x"     // per-inode operations
	Semlock   = "Semlock"   // user-visible semaphore array
)

// LockFunction describes what each lock protects (Table 11), for the
// report generator.
var LockFunction = map[string]string{
	Memlock:   "Data struct. that allocate/deallocate physical memory.",
	Runqlk:    "Scheduler's run queue.",
	Ifree:     "List of free inodes.",
	Dfbmaplk:  "Table of free blocks on the disk.",
	Bfreelock: "List of free buffers for the buffer cache.",
	Calock:    "Table of outstanding actions like alarms or timeouts.",
	ShrX:      "Per-process page tables and related structures.",
	StreamsX:  "Management of a character-oriented device.",
	InoX:      "Operations on a given inode, like read or write.",
	Semlock:   "Array of semaphores for the programmer to use.",
}

// Registry holds every kernel lock: the named singletons and the _x
// arrays. It aggregates statistics per lock family.
type Registry struct {
	singles  map[string]*Lock
	families map[string][]*Lock
	order    []string // family/name order for deterministic reports
}

// NewRegistry builds the kernel lock set: singletons plus arrays sized for
// the kernel's tables (nproc Shr_x, nstreams Streams_x, ninode Ino_x,
// nsem Semlock elements).
func NewRegistry(nproc, nstreams, ninode, nsem int) *Registry {
	r := &Registry{
		singles:  make(map[string]*Lock),
		families: make(map[string][]*Lock),
	}
	fam := 0
	for _, n := range []string{Memlock, Runqlk, Ifree, Dfbmaplk, Bfreelock, Calock} {
		l := NewLock(n)
		l.Family = fam
		fam++
		r.singles[n] = l
		r.order = append(r.order, n)
	}
	mkArray := func(name string, n int) {
		arr := make([]*Lock, n)
		for i := range arr {
			arr[i] = NewLock(name)
			arr[i].Family = fam
		}
		fam++
		r.families[name] = arr
		r.order = append(r.order, name)
	}
	mkArray(ShrX, nproc)
	mkArray(StreamsX, nstreams)
	mkArray(InoX, ninode)
	mkArray(Semlock, nsem)
	return r
}

// Get returns a named singleton lock.
func (r *Registry) Get(name string) *Lock {
	l, ok := r.singles[name]
	if !ok {
		panic("klock: unknown lock " + name)
	}
	return l
}

// Elem returns element i of a lock array.
func (r *Registry) Elem(family string, i int) *Lock {
	arr, ok := r.families[family]
	if !ok {
		panic("klock: unknown lock family " + family)
	}
	return arr[i%len(arr)]
}

// FamilyStats aggregates the statistics of every element of a family (or
// of a singleton) under one name.
func (r *Registry) FamilyStats(name string) Stats {
	if l, ok := r.singles[name]; ok {
		return l.ComputeStats()
	}
	arr := r.families[name]
	agg := Stats{Name: name}
	var cycSum float64
	var cachedOps, uncachedOps int64
	var sameW float64
	var waiterSum float64
	var waiterN int64
	for _, l := range arr {
		s := l.ComputeStats()
		agg.Acquires += s.Acquires
		agg.Failed += s.Failed
		agg.Attempts += s.Attempts
		cycSum += s.CyclesBetweenAcq * float64(s.Acquires)
		sameW += s.PctSameCPU * float64(s.Acquires)
		cachedOps += s.CachedBusOps
		uncachedOps += s.UncachedOps
		if s.AvgWaitersIfAny > 0 {
			waiterSum += s.AvgWaitersIfAny
			waiterN++
		}
	}
	if agg.Acquires > 0 {
		agg.CyclesBetweenAcq = cycSum / float64(agg.Acquires)
		agg.PctFailed = 100 * float64(agg.Failed) / float64(agg.Acquires)
		agg.PctSameCPU = sameW / float64(agg.Acquires)
	}
	if waiterN > 0 {
		agg.AvgWaitersIfAny = waiterSum / float64(waiterN)
	}
	agg.CachedBusOps = cachedOps
	agg.UncachedOps = uncachedOps
	if uncachedOps > 0 {
		agg.PctCachedVsUncached = 100 * float64(cachedOps) / float64(uncachedOps)
	}
	return agg
}

// AllStats returns statistics for every family, most-acquired first.
func (r *Registry) AllStats() []Stats {
	out := make([]Stats, 0, len(r.order))
	for _, n := range r.order {
		out = append(out, r.FamilyStats(n))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Acquires > out[j].Acquires })
	return out
}

// TotalSyncStall sums the Table 10 stall estimates over every kernel lock:
// the current sync-bus protocol and the simulated cacheable atomic-RMW
// machine.
func (r *Registry) TotalSyncStall(missStall arch.Cycles) (current, rmwCached arch.Cycles) {
	add := func(l *Lock) {
		c, m := l.SyncCost(missStall)
		current += c
		rmwCached += m
	}
	for _, l := range r.singles {
		add(l)
	}
	for _, arr := range r.families {
		for _, l := range arr {
			add(l)
		}
	}
	return current, rmwCached
}

// ResetStats clears the statistics of every kernel lock (the measurement
// snapshot at trace start).
func (r *Registry) ResetStats() {
	for _, l := range r.singles {
		l.ResetStats()
	}
	for _, arr := range r.families {
		for _, l := range arr {
			l.ResetStats()
		}
	}
}

// TotalAcquires returns the number of successful acquires across all
// kernel locks.
func (r *Registry) TotalAcquires() int64 {
	var n int64
	for _, l := range r.singles {
		n += l.acquires
	}
	for _, arr := range r.families {
		for _, l := range arr {
			n += l.acquires
		}
	}
	return n
}
