package trace

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/bus"
	"repro/internal/kernel"
	"repro/internal/monitor"
)

// TestFeedSteadyStateZeroAlloc pins the streaming pipeline's allocation
// contract: once warm (mirror caches built, per-CPU decoder slots grown, a
// segment open), classifying a miss transaction must not allocate — the
// classifier rides the bus on the simulator's hot path, so a single
// per-event allocation would show up millions of times per run.
func TestFeedSteadyStateZeroAlloc(t *testing.T) {
	kt, l := newEnv()
	cl := NewClassifier(kt, l, 4)
	// Warm up: start tracing, open an OS window on each CPU, and touch the
	// addresses so every lazy structure exists.
	warm := cat(
		esc(0, monitor.EvTraceStart, 0),
		enterOS(0, kernel.OpIOSyscall, 1),
		enterOS(1, kernel.OpIOSyscall, 2),
	)
	a := l.ProcTable.Base
	warm = append(warm, readex(0, a, 3), readex(1, a, 4))
	for _, txn := range warm {
		cl.Feed(txn)
	}
	// Steady state: the block ping-pongs between two CPUs, a Sharing miss
	// every time. Alternate the CPU via a counter so each call really
	// misses in the mirror caches.
	var i uint64
	avg := testing.AllocsPerRun(1000, func() {
		cpu := arch.CPUID(i % 2)
		cl.Feed(bus.Txn{Kind: bus.TxnReadEx, CPU: cpu, Addr: a.Block(), Ticks: 10 + i})
		i++
	})
	if avg != 0 {
		t.Errorf("Classifier.Feed allocates %.1f objects per miss in steady state; want 0", avg)
	}
}
