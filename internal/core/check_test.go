package core

import (
	"fmt"
	"testing"

	"repro/internal/inject"
	"repro/internal/workload"
)

// checkWindow keeps the self-validation runs fast; each still covers
// hundreds of thousands of checked references.
const checkWindow = 1_200_000

// TestCheckerCleanOnAllWorkloads runs every seed workload with the
// invariant checker on: shadow memory, coherence and lock discipline must
// all hold.
func TestCheckerCleanOnAllWorkloads(t *testing.T) {
	for _, kind := range []workload.Kind{workload.Pmake, workload.Multpgm, workload.Oracle} {
		t.Run(kind.String(), func(t *testing.T) {
			ch := Run(Config{Workload: kind, Window: checkWindow,
				Warmup: checkWindow / 2, Seed: 5, Check: true})
			chk := ch.Sim.Chk
			if chk == nil {
				t.Fatal("Check config did not attach a checker")
			}
			if chk.Violations != 0 {
				t.Fatalf("%d violations, first: %v", chk.Violations, ch.CheckErrors[0])
			}
			if chk.Checks < 100_000 {
				t.Errorf("only %d invariant evaluations ran; checker not wired in?", chk.Checks)
			}
		})
	}
}

// fingerprint captures counters a fault injection should perturb.
func fingerprint(ch *Characterization) string {
	return fmt.Sprintf("reads=%d readex=%d upgrades=%d wb=%d nonidle=%d ctx=%d migr=%d",
		ch.Sim.Bus.Stats.Reads, ch.Sim.Bus.Stats.ReadExs, ch.Sim.Bus.Stats.Upgrades,
		ch.Sim.Bus.Stats.WriteBacks, ch.NonIdle(), ch.Ops.CtxSwitches, ch.Ops.Migrations)
}

// TestInjectionModesStayCorrect runs Pmake under each fault mode: the
// checker must stay clean, the injector must actually fire, and at least
// one performance counter must move relative to the clean run.
func TestInjectionModesStayCorrect(t *testing.T) {
	clean := Run(Config{Workload: workload.Pmake, Window: checkWindow,
		Warmup: checkWindow / 2, Seed: 5, Check: true})
	cleanFP := fingerprint(clean)
	for _, mode := range []string{"evict", "jitter", "intr", "migrate", "all"} {
		t.Run(mode, func(t *testing.T) {
			icfg, err := inject.Preset(mode)
			if err != nil {
				t.Fatal(err)
			}
			ch := Run(Config{Workload: workload.Pmake, Window: checkWindow,
				Warmup: checkWindow / 2, Seed: 5, Check: true, Inject: &icfg})
			if v := ch.Sim.Chk.Violations; v != 0 {
				t.Fatalf("mode %s: %d violations, first: %v", mode, v, ch.CheckErrors[0])
			}
			st := ch.Sim.Inj.Stats
			fired := st.Evictions + st.IFlushes + st.JitteredTxns + st.ExtraInterrupts + st.ForcedMigrations
			if fired == 0 {
				t.Fatalf("mode %s delivered no faults", mode)
			}
			if fp := fingerprint(ch); fp == cleanFP {
				t.Errorf("mode %s did not perturb any counter: %s", mode, fp)
			}
		})
	}
}

// TestInjectionIsDeterministic replays one injected run: same seeds, same
// faults, same counters.
func TestInjectionIsDeterministic(t *testing.T) {
	run := func() (string, inject.Stats) {
		icfg, _ := inject.Preset("all")
		ch := Run(Config{Workload: workload.Multpgm, Window: checkWindow,
			Warmup: checkWindow / 2, Seed: 7, Check: true, Inject: &icfg})
		return fingerprint(ch), ch.Sim.Inj.Stats
	}
	fpA, stA := run()
	fpB, stB := run()
	if fpA != fpB {
		t.Errorf("injected run not reproducible:\n%s\n%s", fpA, fpB)
	}
	if stA != stB {
		t.Errorf("fault delivery not reproducible:\n%+v\n%+v", stA, stB)
	}
}
