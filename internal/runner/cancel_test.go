package runner

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/workload"
)

func TestRunOnePanicIsolation(t *testing.T) {
	cfg := core.Config{Workload: workload.Pmake, Window: 400_000, Warmup: 200_000, Seed: 5}
	res := RunOne(context.Background(), cfg, func() { panic("boom") })
	if res.Ch != nil {
		t.Fatal("panicked run still produced a characterization")
	}
	var pe *PanicError
	if !errors.As(res.Err, &pe) {
		t.Fatalf("error is %T (%v), want *PanicError", res.Err, res.Err)
	}
	if pe.Value != "boom" {
		t.Errorf("panic value %v, want boom", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Error("no stack captured")
	}
	if pe.ConfigHash != cfg.Hash() {
		t.Errorf("provenance hash %q != cfg hash %q", pe.ConfigHash, cfg.Hash())
	}
	if !strings.Contains(pe.Error(), "Pmake") {
		t.Errorf("error %q does not name the workload", pe.Error())
	}
}

// TestExperimentsPanicIsolationOrderPreserved: one config whose pipeline
// panics (invalid cache geometry) must surface as that run's Result.Err
// while the rest of the batch completes in submission order.
func TestExperimentsPanicIsolationOrderPreserved(t *testing.T) {
	badMachine := arch.Default()
	badMachine.DCacheL2Size = 3000 // not a power-of-two set count: cache.New panics
	cfgs := []core.Config{
		{Workload: workload.Pmake, Window: 400_000, Warmup: 200_000, Seed: 5},
		{Workload: workload.Pmake, Machine: badMachine, Window: 400_000, Warmup: 200_000, Seed: 5},
		{Workload: workload.Multpgm, Window: 400_000, Warmup: 200_000, Seed: 6},
	}
	res, _ := Experiments(cfgs, Options{Parallelism: 3})
	if len(res) != 3 {
		t.Fatalf("got %d results, want 3", len(res))
	}
	var pe *PanicError
	if !errors.As(res[1].Err, &pe) {
		t.Fatalf("bad config's error is %T (%v), want *PanicError", res[1].Err, res[1].Err)
	}
	for _, i := range []int{0, 2} {
		if res[i].Err != nil {
			t.Fatalf("healthy run %d failed: %v", i, res[i].Err)
		}
		if res[i].Ch == nil || res[i].Ch.Cfg.Workload != cfgs[i].Workload {
			t.Fatalf("slot %d does not hold its own run (order not preserved)", i)
		}
	}
}

// TestParallelEngineCancelNoLeak cancels runs mid-simulation while the
// conservative parallel engine is active. Each cancellation must
// propagate before the run's next bus transaction and come back as a
// structured *core.CanceledError with full provenance — and the
// engine's speculation workers must all exit: repeated canceled runs
// may not accumulate goroutines.
func TestParallelEngineCancelNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	cfg := core.Config{
		Workload: workload.Oracle, NCPU: 8,
		// A window far past what the deadline allows: the run can only
		// end through the cancel path.
		Window: 1 << 30, Seed: 7, SimWorkers: 4,
	}
	for i := 0; i < 4; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
		res := RunOne(ctx, cfg)
		cancel()
		if res.Ch != nil {
			t.Fatal("canceled run still produced a characterization")
		}
		var ce *core.CanceledError
		if !errors.As(res.Err, &ce) {
			t.Fatalf("error is %T (%v), want *core.CanceledError", res.Err, res.Err)
		}
		if ce.ConfigHash != cfg.Hash() {
			t.Errorf("provenance hash %q != cfg hash %q", ce.ConfigHash, cfg.Hash())
		}
		if ce.Cycle == 0 {
			t.Error("cancellation carries no simulated-cycle provenance")
		}
	}
	// The speculation workers are per-phase: a clean unwind leaves no
	// goroutine behind. Poll briefly — exiting goroutines need a
	// scheduler beat to be reaped from the count.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after canceled parallel runs",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestExperimentsContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfgs := smallCfgs()
	res, _ := ExperimentsContext(ctx, cfgs, Options{Parallelism: 2})
	for i, r := range res {
		if r.Ch != nil {
			t.Errorf("run %d completed under a canceled context", i)
		}
		if !errors.Is(r.Err, core.ErrCanceled) {
			t.Errorf("run %d error %v does not match core.ErrCanceled", i, r.Err)
		}
	}
}
