// Package service is the hardened experiment server behind cmd/charosd:
// clients submit deterministic (workload, machine, seed, window) jobs
// over HTTP/JSON and get back the run's report.Single rendering —
// byte-identical to a serial core.Run of the same config.
//
// Robustness is the design center, not an afterthought:
//
//   - Cancellation: every job runs under a context; a client timeout, the
//     watchdog, or a drain stops the simulation before its next bus
//     transaction and resolves the job with a structured
//     *core.CanceledError carrying provenance (config hash, seed, cycle).
//   - Isolation: a panicking run becomes that job's *runner.PanicError
//     (stack, config hash, cycle) — the worker pool survives.
//   - Liveness: a watchdog polls each run's simulated-cycle heartbeat and
//     kills runs that stop making progress.
//   - Load shedding: admission is a bounded queue; a full queue sheds
//     with HTTP 429 + Retry-After instead of growing without bound.
//   - Drain: SIGTERM stops admission, resolves every accepted job (finish
//     or cancel, by policy) under a hard deadline, and only then lets the
//     process exit — no accepted job is ever dropped.
//   - Dedup: runs are deterministic, so results are content-addressed by
//     the canonical config hash, with singleflight dedup of concurrent
//     identical submissions.
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/machineflag"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/sample"
	"repro/internal/workload"
)

// ErrStalled is the watchdog's cancellation cause: the run's
// simulated-cycle heartbeat stopped advancing for longer than the
// configured stall timeout.
var ErrStalled = errors.New("watchdog: no simulated-cycle progress")

// ErrDraining is the cancellation cause of jobs cut short by a
// policy=cancel drain or by the drain hard deadline.
var ErrDraining = errors.New("server draining")

// ErrSaturated is returned by Submit when the admission queue is full;
// the HTTP layer maps it to 429 + Retry-After.
var ErrSaturated = errors.New("admission queue full")

// ErrDrainingSubmit is returned by Submit once draining has begun; the
// HTTP layer maps it to 503.
var ErrDrainingSubmit = errors.New("not accepting jobs: draining")

// Request is the JSON job submission. The zero value of every field maps
// to the simulator's defaults, exactly as the CLI flags do.
type Request struct {
	// Workload is Pmake, Multpgm, Oracle or OracleStd (case-insensitive).
	Workload string `json:"workload"`
	// Machine is a preset name (4d340, 4d380); empty means 4d340.
	Machine string `json:"machine,omitempty"`
	NCPU    int    `json:"ncpu,omitempty"`
	Seed    int64  `json:"seed,omitempty"`
	// Window and Warmup are in 30ns cycles.
	Window int64 `json:"window,omitempty"`
	Warmup int64 `json:"warmup,omitempty"`
	// Check runs the invariant checker alongside the job.
	Check bool `json:"check,omitempty"`
	// Sample is a sampled-simulation schedule "warmup:len:period" in
	// cycles (K/M/G suffixes ok, e.g. "100K:200K:10M"); empty runs the
	// full window in detail. The schedule is part of the job's cache
	// identity: sampled and full runs of the same config hash differently.
	Sample string `json:"sample,omitempty"`
	// SimWorkers is the job's intra-run worker count for the
	// conservative parallel engine (0 inherits the server default, 1
	// forces serial). It never affects the job's output or its cache
	// identity — worker count changes wall-clock only — and the server
	// clamps it against its total-worker budget.
	SimWorkers int `json:"sim_workers,omitempty"`
	// TimeoutMS is the job's wall-clock budget; 0 inherits the server
	// default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// TestPanic makes the worker panic inside the run's recovery scope.
	// Honored only when the server runs with Options.TestHooks — it
	// exists so the smoke test can drive the panic-isolation path end to
	// end over HTTP.
	TestPanic bool `json:"test_panic,omitempty"`
}

// Config resolves the request into a core.Config, validating the
// workload and machine preset.
func (r Request) Config() (core.Config, error) {
	kind, err := workload.ParseKind(r.Workload)
	if err != nil {
		return core.Config{}, err
	}
	m, err := machineflag.Preset(r.Machine)
	if err != nil {
		return core.Config{}, err
	}
	sched, err := sample.Parse(r.Sample)
	if err != nil {
		return core.Config{}, err
	}
	return core.Config{
		Workload: kind, Machine: m, NCPU: r.NCPU, Seed: r.Seed,
		Window: arch.Cycles(r.Window), Warmup: arch.Cycles(r.Warmup),
		Check: r.Check, Sample: sched,
	}, nil
}

// Job states.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"   // run panicked
	StateCanceled = "canceled" // deadline, watchdog or drain
)

// Job is one accepted submission.
type Job struct {
	ID   string
	Hash string
	Req  Request
	Cfg  core.Config

	// entry is the job's singleflight claim (leader jobs only).
	entry *cacheEntry
	// submitted is the admission stamp; resolve's time.Since(submitted)
	// is the submit-to-terminal latency observed by the metrics layer
	// (the only two wall-clock reads on the job path).
	submitted time.Time

	mu      sync.Mutex
	state   string
	outcome Outcome
	// simWorkers and mcps record the run's intra-run worker count and
	// simulated-Mcycles/s throughput. Leader jobs only: a dedup follower
	// or cache hit executed nothing, so both stay zero — honest
	// observability, not an inherited number.
	simWorkers int
	mcps       float64
	// progress reports the run's simulated-cycle heartbeat while
	// running. resolve nils it at terminal state — the closure pins the
	// run's entire simulator pipeline (caches, shadow memory, classifier
	// pages), which must not outlive the run.
	progress func() arch.Cycles
	done     chan struct{}
}

func (j *Job) setState(s string) {
	j.mu.Lock()
	j.state = s
	j.mu.Unlock()
}

// Snapshot returns the job's externally visible state.
func (j *Job) Snapshot() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID: j.ID, Hash: j.Hash, State: j.state,
		Workload: j.Req.Workload, Seed: j.Req.Seed,
		Cycle:      j.outcome.Cycle,
		SimWorkers: j.simWorkers, MCyclesPerSec: j.mcps,
	}
	if j.state == StateRunning && j.progress != nil {
		st.Cycle = int64(j.progress())
	}
	if j.state == StateDone {
		st.Report = j.outcome.Report
	}
	if j.outcome.Err != nil {
		st.Error = j.outcome.Err.Error()
		st.ErrorKind = errorKind(j.outcome.Err)
	}
	return st
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// JobStatus is the JSON representation of a job.
type JobStatus struct {
	ID       string `json:"id"`
	Hash     string `json:"hash"`
	State    string `json:"state"`
	Workload string `json:"workload"`
	Seed     int64  `json:"seed"`
	// Cycle is the simulated-cycle heartbeat (live progress while
	// running, the cycle reached at termination afterwards).
	Cycle  int64  `json:"cycle,omitempty"`
	// SimWorkers and MCyclesPerSec are the run's intra-run worker count
	// and simulated-Mcycles/s throughput — zero for dedup followers and
	// cache hits, which executed nothing.
	SimWorkers    int     `json:"sim_workers,omitempty"`
	MCyclesPerSec float64 `json:"mcycles_per_sec,omitempty"`
	Report string `json:"report,omitempty"`
	Error  string `json:"error,omitempty"`
	// ErrorKind classifies Error: "panic", "deadline", "stalled",
	// "drained" or "canceled".
	ErrorKind string `json:"error_kind,omitempty"`
}

// errorKind classifies a structured run error for clients.
func errorKind(err error) string {
	var p *runner.PanicError
	switch {
	case errors.As(err, &p):
		return "panic"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	case errors.Is(err, ErrStalled):
		return "stalled"
	case errors.Is(err, ErrDraining):
		return "drained"
	default:
		return "canceled"
	}
}

// deterministicErr reports whether the error reproduces on a re-run of
// the same config (a panic does; a timing-dependent cancellation does
// not) — only deterministic outcomes may stay cached.
func deterministicErr(err error) bool {
	var p *runner.PanicError
	return errors.As(err, &p)
}

// Options tunes the server.
type Options struct {
	// Workers is the run-executing pool size (default GOMAXPROCS). With
	// MaxWorkers above it, it is the adaptive pool's floor instead.
	Workers int
	// MaxWorkers, when greater than Workers, enables the adaptive worker
	// manager: the pool grows toward MaxWorkers under queue pressure or
	// high interval p99 latency and shrinks back toward Workers when
	// idle. Zero (or <= Workers) keeps a fixed pool.
	MaxWorkers int
	// AdaptInterval is the manager's sampling period (default 500ms).
	AdaptInterval time.Duration
	// ScaleCooldown is the minimum gap between scaling actions —
	// together with the separate grow/shrink thresholds it keeps the
	// manager from flapping (default 2s).
	ScaleCooldown time.Duration
	// ScaleP99High/ScaleP99Low are the grow/shrink latency thresholds on
	// the interval p99 (defaults 5s and 1s).
	ScaleP99High time.Duration
	ScaleP99Low  time.Duration
	// SimWorkers is the default intra-run worker count applied to jobs
	// that do not request one (0 or 1 = serial engine).
	SimWorkers int
	// MaxTotalWorkers caps pool-level times intra-run parallelism: a
	// job's effective SimWorkers is clamped so that MaxWorkers ×
	// SimWorkers never exceeds it. 0 means no cap.
	MaxTotalWorkers int
	// Shards is the result-store shard count, rounded up to a power of
	// two (default 8).
	Shards int
	// CacheEntries bounds completed results resident across all shards;
	// beyond it the per-shard LRU evicts (default 4096).
	CacheEntries int
	// JobHistory bounds terminal jobs retained in the registry; older
	// terminal jobs are evicted and their IDs return 404 (default 4096).
	JobHistory int
	// QueueDepth bounds the admission queue; submissions beyond it are
	// shed with ErrSaturated (default 64).
	QueueDepth int
	// RetryAfter is the backoff hint advertised with sheds (default 1s).
	RetryAfter time.Duration
	// JobTimeout caps each job's wall clock; 0 means no default cap.
	JobTimeout time.Duration
	// StallTimeout is how long a run may go without simulated-cycle
	// progress before the watchdog kills it (default 10s; <0 disables).
	StallTimeout time.Duration
	// WatchdogPoll is the heartbeat sampling period (default
	// StallTimeout/4).
	WatchdogPoll time.Duration
	// DrainFinish selects the drain policy: true finishes queued and
	// in-flight jobs, false cancels them (they still resolve, as
	// canceled). The hard deadline applies either way.
	DrainFinish bool
	// DrainTimeout is the drain hard deadline (default 30s): when it
	// passes, in-flight jobs are force-canceled so every accepted job
	// still resolves before Drain returns.
	DrainTimeout time.Duration
	// TestHooks enables Request.TestPanic (never set in production).
	TestHooks bool
	// Logf, when non-nil, receives one line per lifecycle event.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.MaxWorkers < o.Workers {
		o.MaxWorkers = o.Workers // fixed pool
	}
	if o.SimWorkers < 1 {
		o.SimWorkers = 1
	}
	if o.AdaptInterval <= 0 {
		o.AdaptInterval = 500 * time.Millisecond
	}
	if o.ScaleCooldown <= 0 {
		o.ScaleCooldown = 2 * time.Second
	}
	if o.ScaleP99High <= 0 {
		o.ScaleP99High = 5 * time.Second
	}
	if o.ScaleP99Low <= 0 {
		o.ScaleP99Low = time.Second
	}
	if o.Shards <= 0 {
		o.Shards = 8
	}
	if o.CacheEntries <= 0 {
		o.CacheEntries = defaultCacheEntries
	}
	if o.JobHistory <= 0 {
		o.JobHistory = 4096
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.StallTimeout == 0 {
		o.StallTimeout = 10 * time.Second
	}
	if o.WatchdogPoll <= 0 {
		o.WatchdogPoll = o.StallTimeout / 4
		if o.WatchdogPoll <= 0 {
			o.WatchdogPoll = time.Second
		}
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 30 * time.Second
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// Stats is the server's counter snapshot.
type Stats struct {
	Accepted  int64 `json:"accepted"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Canceled  int64 `json:"canceled"`
	Shed      int64 `json:"shed"`
	CacheHits int64 `json:"cache_hits"`
	// CacheEvictions counts completed results dropped by the LRU cap;
	// JobsEvicted terminal jobs dropped by the registry cap.
	CacheEvictions int64 `json:"cache_evictions"`
	JobsEvicted    int64 `json:"jobs_evicted"`
	Workers        int   `json:"workers"`
	QueueLen       int   `json:"queue_len"`
	Draining       bool  `json:"draining"`
}

// Server owns the worker pool, the admission queue and the result store.
type Server struct {
	opts  Options
	store *Store
	pool  *poolManager

	// hardCtx is canceled to force-stop every run (drain hard deadline).
	hardCtx  context.Context
	hardStop context.CancelCauseFunc

	queue chan *Job

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // submission order, for listing
	// terminal is the completion-order queue of retained terminal job
	// IDs; beyond Options.JobHistory the oldest are evicted from jobs
	// and order so a long-running server's registry stays bounded.
	terminal []string
	nextID   int64

	draining atomic.Bool
	workerWG sync.WaitGroup
	jobWG    sync.WaitGroup // one count per accepted, unresolved job

	accepted, completed, failed, canceledN, shed, jobsEvicted atomic.Int64
}

// New builds and starts a server (its worker pool runs immediately).
func New(opts Options) *Server {
	opts = opts.withDefaults()
	ctx, stop := context.WithCancelCause(context.Background())
	s := &Server{
		opts:     opts,
		store:    NewStore(opts.Shards, opts.CacheEntries),
		hardCtx:  ctx,
		hardStop: stop,
		queue:    make(chan *Job, opts.QueueDepth),
		jobs:     make(map[string]*Job),
	}
	s.pool = newPoolManager(s, opts)
	s.pool.start()
	return s
}

// startWorker spawns one pool worker. Workers drain the queue until it
// closes (drain) or, in an adaptive pool, until they receive a retire
// token between jobs.
func (s *Server) startWorker() {
	s.workerWG.Add(1)
	s.pool.live.Add(1)
	go func() {
		defer s.workerWG.Done()
		defer s.pool.live.Add(-1)
		for {
			select {
			case <-s.pool.retire:
				s.pool.pendingRetire.Add(-1)
				return
			default:
			}
			select {
			case job, ok := <-s.queue:
				if !ok {
					return
				}
				s.execute(job)
			case <-s.pool.retire:
				s.pool.pendingRetire.Add(-1)
				return
			}
		}
	}()
}

// RetryAfter is the shed backoff hint.
func (s *Server) RetryAfter() time.Duration { return s.opts.RetryAfter }

// Draining reports whether admission has stopped.
func (s *Server) Draining() bool { return s.draining.Load() }

// Stats returns a counter snapshot.
func (s *Server) Stats() Stats {
	return Stats{
		Accepted:       s.accepted.Load(),
		Completed:      s.completed.Load(),
		Failed:         s.failed.Load(),
		Canceled:       s.canceledN.Load(),
		Shed:           s.shed.Load(),
		CacheHits:      s.store.Hits(),
		CacheEvictions: s.store.Evictions(),
		JobsEvicted:    s.jobsEvicted.Load(),
		Workers:        int(s.pool.live.Load()),
		QueueLen:       len(s.queue),
		Draining:       s.draining.Load(),
	}
}

// Metrics assembles the /v1/metrics payload: per-shard and global
// hit/miss/eviction counters, latency quantiles and throughput, plus the
// worker pool and registry state.
func (s *Server) Metrics() Metrics {
	global, shards := s.store.Snapshot()
	s.mu.Lock()
	retained := len(s.terminal)
	jobs := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	perJob := make([]JobMetrics, 0, len(jobs))
	for _, j := range jobs {
		j.mu.Lock()
		jm := JobMetrics{
			ID: j.ID, State: j.state,
			SimWorkers: j.simWorkers, MCyclesPerSec: j.mcps,
		}
		j.mu.Unlock()
		perJob = append(perJob, jm)
	}
	return Metrics{
		UptimeSec:    time.Since(s.store.start).Seconds(),
		Global:       global,
		Shards:       shards,
		Workers:      s.pool.metrics(),
		QueueLen:     len(s.queue),
		QueueDepth:   cap(s.queue),
		JobsRetained: retained,
		JobsEvicted:  s.jobsEvicted.Load(),
		Jobs:         perJob,
	}
}

// Job looks up a job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns every job in submission order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, len(s.order))
	for i, id := range s.order {
		out[i] = s.jobs[id]
	}
	return out
}

// Submit admits a job. It returns ErrDrainingSubmit once draining has
// begun and ErrSaturated when the admission queue is full; any other
// error means the request itself was invalid. An accepted job is
// guaranteed to resolve — Drain waits for it.
func (s *Server) Submit(req Request) (*Job, error) {
	if s.draining.Load() {
		return nil, ErrDrainingSubmit
	}
	cfg, err := req.Config()
	if err != nil {
		return nil, err
	}
	// SimWorkers is hash-neutral (wall-clock only), so setting it after
	// Config cannot split the content-addressed dedup.
	cfg.SimWorkers = s.simWorkersFor(req.SimWorkers)
	if req.TestPanic && !s.opts.TestHooks {
		return nil, errors.New("test_panic requires the server to run with test hooks enabled")
	}
	hash := cfg.Hash()
	job := &Job{
		Req: req, Cfg: cfg, Hash: hash,
		state: StateQueued, done: make(chan struct{}),
		submitted: time.Now(),
	}

	// Admission, registration and the drain handshake share s.mu: once
	// Drain flips the flag (under the same lock), no Submit can enqueue
	// onto the closed queue or race a jobWG.Add against the final Wait.
	s.mu.Lock()
	if s.draining.Load() {
		s.mu.Unlock()
		return nil, ErrDrainingSubmit
	}
	// Forced-panic jobs bypass the cache: the panic comes from the hook,
	// not the config, so their outcome must neither dedup onto nor poison
	// the hash shared with honest submissions of the same config.
	var entry *cacheEntry
	leader := true
	if !req.TestPanic {
		entry, leader = s.store.Begin(hash)
	}
	s.nextID++
	job.ID = fmt.Sprintf("j%06d", s.nextID)
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	s.jobWG.Add(1)
	if leader {
		job.entry = entry
		select {
		case s.queue <- job:
		default:
			// Shed: unwind the registration and roll the singleflight
			// claim back so a retry can lead.
			delete(s.jobs, job.ID)
			s.order = s.order[:len(s.order)-1]
			s.jobWG.Done()
			s.mu.Unlock()
			if entry != nil {
				s.store.Abandon(hash, entry, Outcome{Err: ErrSaturated})
			}
			s.shed.Add(1)
			return nil, ErrSaturated
		}
	}
	// Count the acceptance inside the admission critical section, after
	// the job is certain to be admitted: resolve bumps the terminal
	// counters under the same mutex, so no Stats snapshot can ever show
	// more resolved jobs than accepted ones, and no rollback decrement
	// is needed — every counter stays monotone.
	s.accepted.Add(1)
	s.mu.Unlock()

	if !leader {
		// Content-addressed dedup: an identical config is already
		// resolved (pure cache hit) or in flight (singleflight
		// follower). Either way the job consumes no queue slot.
		go func() {
			defer s.jobWG.Done()
			s.resolve(job, entry.Wait())
		}()
	}
	return job, nil
}

// simWorkersFor resolves a job's effective intra-run worker count: the
// request's, falling back to the server default, clamped so the worker
// pool at its ceiling times the per-run engine stays inside the
// MaxTotalWorkers budget.
func (s *Server) simWorkersFor(req int) int {
	w := req
	if w <= 0 {
		w = s.opts.SimWorkers
	}
	if b := s.opts.MaxTotalWorkers; b > 0 {
		if lim := b / s.opts.MaxWorkers; w > lim {
			w = lim
		}
	}
	if w < 1 {
		w = 1
	}
	return w
}

// execute runs one leader job to a terminal outcome. Panics inside the
// run surface as the job's PanicError (runner.RunOne recovers them), so
// the worker goroutine itself never dies.
func (s *Server) execute(job *Job) {
	defer s.jobWG.Done()
	ctx := s.hardCtx
	var cancel context.CancelFunc
	timeout := s.opts.JobTimeout
	if job.Req.TimeoutMS > 0 {
		timeout = time.Duration(job.Req.TimeoutMS) * time.Millisecond
	}
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	wctx, wcancel := context.WithCancelCause(ctx)
	defer wcancel(nil)

	job.setState(StateRunning)
	runDone := make(chan struct{})
	defer close(runDone)
	if s.opts.StallTimeout > 0 {
		go s.watchdog(wctx, wcancel, job, runDone)
	}

	var hooks []func()
	if job.Req.TestPanic && s.opts.TestHooks {
		hooks = append(hooks, func() {
			panic(fmt.Sprintf("test hook: forced panic (job %s)", job.ID))
		})
	}
	res := runner.RunOneMonitored(wctx, job.Cfg, func(p func() arch.Cycles) {
		job.mu.Lock()
		job.progress = p
		job.mu.Unlock()
	}, hooks...)
	job.mu.Lock()
	job.simWorkers = res.Stats.SimWorkers
	job.mcps = res.Stats.MCyclesPerSec
	job.mu.Unlock()

	var out Outcome
	switch {
	case res.Err != nil:
		out = Outcome{Err: res.Err, Cycle: errCycle(res.Err)}
	default:
		out = Outcome{Report: report.Single(res.Ch), Cycle: int64(res.Ch.Cfg.Window + res.Ch.Cfg.Warmup)}
	}
	if job.entry != nil {
		s.store.Complete(job.Hash, job.entry, out)
	}
	s.resolve(job, out)
}

// errCycle extracts the provenance cycle from a structured run error.
func errCycle(err error) int64 {
	var c *core.CanceledError
	if errors.As(err, &c) {
		return int64(c.Cycle)
	}
	var p *runner.PanicError
	if errors.As(err, &p) {
		return int64(p.Cycle)
	}
	return 0
}

// resolve moves a job to its terminal state and closes Done. The
// submit-to-terminal latency is observed and the terminal counters bump
// before Done closes, so a client woken by its job sees fully settled
// stats and metrics.
func (s *Server) resolve(job *Job, out Outcome) {
	job.mu.Lock()
	job.outcome = out
	// Drop the heartbeat closure: it captures the whole simulator
	// pipeline (caches, shadow memory, classifier pages), which a
	// terminal job must not pin against GC.
	job.progress = nil
	switch {
	case out.Err == nil:
		job.state = StateDone
	case deterministicErr(out.Err):
		job.state = StateFailed
	default:
		job.state = StateCanceled
	}
	state := job.state
	job.mu.Unlock()
	if !job.submitted.IsZero() {
		s.store.RecordLatency(job.Hash, time.Since(job.submitted))
	}
	s.retireJob(job.ID, state)
	close(job.done)
	s.opts.Logf("job %s %s (%s seed %d cfg %.12s) cycle=%d err=%v",
		job.ID, state, job.Req.Workload, job.Req.Seed, job.Hash, out.Cycle, out.Err)
}

// retireJob bumps the terminal counter for state, appends the job to the
// bounded retention queue, and evicts the oldest terminal jobs beyond
// Options.JobHistory from the registry (their IDs then 404) — without
// the cap, jobs and order grow without bound on a long-running server.
// Sharing s.mu with admission makes the counters coherent: accepted is
// counted inside Submit's critical section, so resolved counts can never
// overtake it in any Stats snapshot.
func (s *Server) retireJob(id, state string) {
	s.mu.Lock()
	switch state {
	case StateDone:
		s.completed.Add(1)
	case StateFailed:
		s.failed.Add(1)
	default:
		s.canceledN.Add(1)
	}
	s.terminal = append(s.terminal, id)
	for len(s.terminal) > s.opts.JobHistory {
		old := s.terminal[0]
		// Walking the slice forward is the standard queue idiom; append
		// reallocates and compacts once the backing array fills, so the
		// retained window stays O(JobHistory).
		s.terminal = s.terminal[1:]
		delete(s.jobs, old)
		for i, oid := range s.order {
			if oid == old {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
		s.jobsEvicted.Add(1)
	}
	s.mu.Unlock()
}

// watchdog kills the run when its simulated-cycle heartbeat stops
// advancing for StallTimeout.
func (s *Server) watchdog(ctx context.Context, cancel context.CancelCauseFunc, job *Job, runDone <-chan struct{}) {
	tick := time.NewTicker(s.opts.WatchdogPoll)
	defer tick.Stop()
	var last arch.Cycles
	lastAdvance := time.Now()
	for {
		select {
		case <-ctx.Done():
			return
		case <-runDone:
			return
		case <-tick.C:
			job.mu.Lock()
			probe := job.progress
			job.mu.Unlock()
			var now arch.Cycles
			if probe != nil {
				now = probe()
			}
			if now != last {
				last = now
				lastAdvance = time.Now()
				continue
			}
			if time.Since(lastAdvance) > s.opts.StallTimeout {
				s.opts.Logf("job %s stalled at cycle %d for %s — killing", job.ID, last, s.opts.StallTimeout)
				cancel(ErrStalled)
				return
			}
		}
	}
}

// Drain stops admission and resolves every accepted job: with
// DrainFinish, queued and in-flight jobs run to completion; without it,
// they are canceled immediately (and still resolve, as canceled). If the
// hard deadline passes first, remaining runs are force-canceled. Drain
// returns once every accepted job is terminal and the workers have
// exited; it is idempotent only in the sense that the first call wins.
func (s *Server) Drain() {
	s.mu.Lock()
	if s.draining.Swap(true) {
		s.mu.Unlock()
		return
	}
	close(s.queue) // workers finish the backlog, then exit
	s.mu.Unlock()
	if s.pool.adaptive() {
		close(s.pool.stop) // no scaling decisions during the drain
		<-s.pool.done
	}
	s.opts.Logf("drain: admission stopped (policy=%s, hard deadline %s)",
		map[bool]string{true: "finish", false: "cancel"}[s.opts.DrainFinish], s.opts.DrainTimeout)
	if !s.opts.DrainFinish {
		s.hardStop(ErrDraining)
	}
	resolved := make(chan struct{})
	go func() {
		s.jobWG.Wait()
		close(resolved)
	}()
	select {
	case <-resolved:
	case <-time.After(s.opts.DrainTimeout):
		s.opts.Logf("drain: hard deadline passed — force-canceling in-flight runs")
		s.hardStop(ErrDraining)
		<-resolved
	}
	s.workerWG.Wait()
	s.opts.Logf("drain complete: all accepted jobs resolved (%d done, %d failed, %d canceled)",
		s.completed.Load(), s.failed.Load(), s.canceledN.Load())
}
