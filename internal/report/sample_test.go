package report

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sample"
	"repro/internal/workload"
)

// TestSamplingOffByteIdentical: with no schedule, the refactored
// pipeline renders byte-for-byte what it rendered before sampling
// existed — serial and parallel-engine runs included — and carries no
// estimate.
func TestSamplingOffByteIdentical(t *testing.T) {
	cfg := core.Config{Workload: workload.Multpgm, Window: 2_000_000, Seed: 5}
	serial := core.Run(cfg)
	if serial.Sampled != nil {
		t.Fatal("unsampled run grew an estimate")
	}
	want := Single(serial)
	if strings.Contains(want, "sampling:") {
		t.Error("unsampled report mentions sampling")
	}
	cfg.SimWorkers = 2
	if got := Single(core.Run(cfg)); got != want {
		t.Errorf("workers=2 report diverged from serial with sampling off:\n--- serial\n%s\n--- workers\n%s", want, got)
	}
}

// TestSampledReportRendersEstimate: a sampled run's report swaps the
// exact classification block for the extrapolated one — schedule line,
// sample count, and ±stderr error bars on every estimated quantity —
// while the exact whole-window lines (time split, sync stalls, kernel
// ops) render as always.
func TestSampledReportRendersEstimate(t *testing.T) {
	sched, err := sample.Parse("20K:40K:200K")
	if err != nil {
		t.Fatal(err)
	}
	ch := core.Run(core.Config{Workload: workload.Pmake, Window: 2_000_000, Sample: sched})
	got := Single(ch)
	for _, want := range []string{
		"sampling: 20K:40K:200K — 10 samples",
		"±",
		"miss classes (estimated whole-window counts ± stderr):",
		"time split:",
		"sync stalls:",
		"kernel ops:",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("sampled report missing %q:\n%s", want, got)
		}
	}
}
