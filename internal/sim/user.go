package sim

import (
	"repro/internal/arch"
	"repro/internal/bus"
	"repro/internal/kernel"
	"repro/internal/klock"
)

// User-mode execution: each step runs a bounded burst of the current
// process's reference stream. Instruction fetch walks the code pages in a
// loop-structured pattern (loops re-run with high probability, then jump);
// data references walk a hot window of the data pages with occasional
// jumps and window shifts. Every page access translates through the TLB,
// faulting (cheap or expensive) exactly as on the real machine.

const blocksPerPage = arch.PageSize / arch.BlockSize

// runUser executes up to userBurst cycles of the current process.
func (s *Simulator) runUser(c *CPU) {
	deadline := c.now + userBurst
	if c.nextClockTick < deadline {
		deadline = c.nextClockTick
	}
	s.runUserUntil(c, deadline)
}

// runUserUntil runs the current process's reference stream until the
// given deadline. The parallel engine calls it directly: when resuming a
// speculated partial burst it must finish against the burst's original
// deadline, not one recomputed mid-burst.
func (s *Simulator) runUserUntil(c *CPU, deadline arch.Cycles) {
	pr := c.cur
	for c.now < deadline && c.cur == pr {
		if pr.PendingCompute <= 0 {
			if s.nextAction(c, pr) {
				return // control transferred (syscall, block, exit)
			}
			continue
		}
		before := c.now
		s.genRefs(c, pr)
		if sp := c.spec; sp != nil && sp.stopped {
			// Speculation hit a non-private site mid-group: unwind to
			// the group entry so the serial resume redraws identically.
			sp.rollbackGroup(c)
			return
		}
		dt := c.now - before
		pr.PendingCompute -= dt
		pr.QuantumUsed += dt
	}
}

// nextAction advances the process's behavior state machine. It returns
// true when the action transferred control away from user mode.
func (s *Simulator) nextAction(c *CPU, pr *kernel.Proc) bool {
	if sp := c.spec; sp != nil {
		// Behavior draws and lock/syscall actions touch shared state
		// (the kernel PRNG, user locks): speculation stops here and the
		// commit phase runs the action serially.
		sp.stopped = true
		return true
	}
	// A user-lock action in progress?
	if la := pr.PendingAction; la != nil {
		if pr.UserLockHeld {
			// Critical section finished: release.
			la.Lock.Release(c.id, c.now)
			c.adv(klock.SyncOpCycles)
			pr.UserLockHeld = false
			pr.PendingAction = nil
			return false
		}
		// (Re)try the acquire: spin up to 20 times, then sginap
		// (Section 4.1: "issued by the synchronization library after
		// 20 unsuccessful attempts").
		maxWait := arch.Cycles(20 * klock.SpinGapCycles)
		at, ok, _ := la.Lock.TryAcquire(c.id, c.now, maxWait)
		if wait := at - c.now; wait > 0 {
			c.adv(wait)
		}
		c.adv(klock.SyncOpCycles)
		if !ok {
			s.doSyscall(c, kernel.SyscallReq{Kind: kernel.SysSginap})
			return true
		}
		pr.UserLockHeld = true
		pr.PendingCompute = la.Hold
		return false
	}
	a := pr.Behavior.Next(s.K, pr)
	switch a.Kind {
	case kernel.ActCompute:
		if a.Cycles <= 0 {
			a.Cycles = 1
		}
		pr.PendingCompute = a.Cycles
		return false
	case kernel.ActSyscall:
		s.doSyscall(c, a.Req)
		return true
	case kernel.ActUserLock:
		act := a
		pr.PendingAction = &act
		return false
	case kernel.ActExit:
		s.doExit(c)
		return true
	default:
		panic("sim: unknown action kind")
	}
}

// genRefs generates one instruction block fetch plus its accompanying data
// references for the current process.
func (s *Simulator) genRefs(c *CPU, pr *kernel.Proc) {
	fp := &pr.FP
	rng := &fp.Rng
	if sp := c.spec; sp != nil {
		// Checkpoint the group entry: a mid-group speculation stop rolls
		// back here and the serial resume redraws the same values.
		sp.markGroup(c)
	}
	if len(fp.CodeVPages) > 0 {
		total := len(fp.CodeVPages) * blocksPerPage
		if fp.LoopLeft <= 0 {
			if rng.Intn(100) < 90 {
				// Re-run the loop body.
				fp.CodePos -= fp.CodeLoopBlocks
				if fp.CodePos < 0 {
					fp.CodePos += total
				}
			} else {
				fp.CodePos = rng.Intn(total)
			}
			fp.LoopLeft = fp.CodeLoopBlocks
		}
		pos := fp.CodePos
		if pos >= total {
			// Rare: CodePos drifts past the end between jumps. The
			// common case avoids the hardware divide.
			pos %= total
		}
		vp := fp.CodeVPages[pos/blocksPerPage]
		fr, ok := s.translate(c, pr, vp, false)
		if !ok {
			return
		}
		pa := arch.FrameAddr(fr) + arch.PAddr((pos%blocksPerPage)*arch.BlockSize)
		var out bus.Outcome
		if sp := c.spec; sp != nil {
			if s.cancel.Load() {
				sp.stopped, sp.canceled = true, true
				return
			}
			out = sp.bs.Fetch(pa, c.now)
		} else {
			s.pollCancel(c)
			out = s.Bus.Fetch(c.id, pa, c.now)
		}
		c.adv(arch.InstrPerBlock)
		if out.Stall > 0 {
			c.advStall(out.Stall)
		}
		fp.CodePos++
		fp.LoopLeft--
	} else {
		c.adv(arch.InstrPerBlock)
	}

	all := fp.AllData
	if all == nil {
		all = append(append([]uint32{}, fp.DataVPages...), fp.SharedVPages...)
		fp.AllData = all
	}
	if len(all) == 0 {
		return
	}
	hot := fp.DataHotPages
	if hot > len(all) {
		hot = len(all)
	}
	window := hot * blocksPerPage
	for i := 0; i < fp.DataRefsPerBlock; i++ {
		if sp := c.spec; sp != nil && sp.stopped {
			return // canceled mid-group; the whole segment is abandoned
		}
		r := rng.Intn(4096)
		if r < 1 {
			// Shift the hot window.
			fp.HotBase = rng.Intn(len(all) - hot + 1)
		} else if r < 96 {
			// Jump within the window.
			fp.DataPos = rng.Intn(window)
		} else {
			fp.DataPos++
		}
		pos := fp.DataPos
		if pos >= window {
			// Rare: DataPos drifts past the window between jumps (and
			// the window itself can shrink when AllData is rebuilt).
			pos %= window
		}
		vp := all[fp.HotBase+pos/blocksPerPage]
		write := rng.Intn(100) < fp.WritePct
		fr, ok := s.translate(c, pr, vp, write)
		if !ok {
			return
		}
		pa := arch.FrameAddr(fr) + arch.PAddr((pos%blocksPerPage)*arch.BlockSize)
		c.dataRef(pa, write)
	}
}

// translate resolves a user virtual page through the TLB, taking UTLB
// faults (cheap) or page faults (expensive OS invocations) as needed. ok
// is false only if the process lost the CPU during the fault.
func (s *Simulator) translate(c *CPU, pr *kernel.Proc, vp uint32, write bool) (uint32, bool) {
	// Micro-TLB fast paths (one entry each for code and data).
	if !write && c.lastCodeOK && c.lastCodePID == pr.PID && c.lastCodeVP == vp {
		return c.lastCodeFr, true
	}
	if c.lastDataOK && c.lastDataPID == pr.PID && c.lastDataVP == vp &&
		(!write || c.lastDataWr) {
		return c.lastDataFr, true
	}
	for attempt := 0; attempt < 3; attempt++ {
		if fr, hit := c.tlb.Lookup(pr.PID, vp); hit {
			if write && s.K.IsCOW(pr, vp) {
				if sp := c.spec; sp != nil {
					sp.stopped = true
					return 0, false
				}
				s.pageFault(c, pr, vp, true)
				if c.cur != pr {
					return 0, false
				}
				continue
			}
			if write {
				// The COW check above succeeded, so the entry is
				// store-validated until the next flush.
				c.lastDataPID, c.lastDataVP, c.lastDataFr, c.lastDataOK, c.lastDataWr = pr.PID, vp, fr, true, true
			} else {
				c.lastCodePID, c.lastCodeVP, c.lastCodeFr, c.lastCodeOK = pr.PID, vp, fr, true
				c.lastDataPID, c.lastDataVP, c.lastDataFr, c.lastDataOK, c.lastDataWr = pr.PID, vp, fr, true, false
			}
			return fr, true
		}
		if sp := c.spec; sp != nil {
			// Both fault paths run kernel code (shared structures,
			// locks): speculation stops and the fault is taken serially
			// at commit, with identical TLB state.
			sp.stopped = true
			return 0, false
		}
		if s.K.IsMapped(pr, vp) && !(write && s.K.IsCOW(pr, vp)) {
			// Cheap UTLB refill: brief kernel excursion, no OS
			// invocation.
			prevMode := c.mode
			c.mode = arch.ModeKernel
			s.K.UTLBFault(c, pr, vp)
			c.mode = prevMode
			continue
		}
		s.pageFault(c, pr, vp, write)
		if c.cur != pr {
			return 0, false
		}
	}
	// The translation must exist by now.
	fr, hit := c.tlb.Lookup(pr.PID, vp)
	if !hit {
		panic("sim: translation missing after fault")
	}
	return fr, true
}
