package model

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

func TestPredictBasics(t *testing.T) {
	in := Inputs{
		OSCycles: 10_000, OSIMiss: 100, OSDMiss: 100,
		AppCycles: 30_000, AppIMiss: 80, AppDMiss: 120,
		UTLBPerApp: 2, UTLBMissPerFault: 0.5, UTLBHandlerCycles: 50,
	}
	p := Predict(in)
	if math.Abs(p.SysShare+p.UserShare-100) > 1e-9 {
		t.Errorf("shares sum to %v", p.SysShare+p.UserShare)
	}
	if p.StallOS > p.StallAll {
		t.Error("OS stall exceeds total stall")
	}
	if p.OSMissShare <= 0 || p.OSMissShare >= 100 {
		t.Errorf("OSMissShare = %v", p.OSMissShare)
	}
	if p.UTLBShare <= 0 {
		t.Error("no UTLB share")
	}
}

func TestPredictDegenerate(t *testing.T) {
	var p Prediction
	p = Predict(Inputs{})
	if p.SysShare != 0 || p.StallAll != 0 || p.OSMissShare != 0 {
		t.Errorf("zero inputs should predict zeros: %+v", p)
	}
	// UTLB work exceeding the app stretch must clamp, not go negative.
	p = Predict(Inputs{OSCycles: 100, AppCycles: 10,
		UTLBPerApp: 100, UTLBHandlerCycles: 50})
	if p.UserShare < 0 {
		t.Errorf("negative user share: %+v", p)
	}
}

// TestModelMatchesSimulation validates the Section 4.1 analytic model: the
// prediction from per-invocation averages must land near the full
// simulation's measured Table 1 values.
func TestModelMatchesSimulation(t *testing.T) {
	for _, kind := range []workload.Kind{workload.Pmake, workload.Oracle} {
		ch := core.Run(core.Config{Workload: kind, Window: 6_000_000,
			Warmup: 3_000_000, Seed: 4})
		p := Predict(FromCharacterization(ch))
		u, s, _ := ch.TimeSplit()
		measSys := 100 * s / (u + s) // renormalize without idle
		all, osOnly, _ := ch.StallPct()
		t.Logf("%s: sys %.1f (model) vs %.1f (sim); stallOS %.1f vs %.1f; stallAll %.1f vs %.1f; osShare %.1f vs %.1f",
			kind, p.SysShare, measSys, p.StallOS, osOnly, p.StallAll, all,
			p.OSMissShare, ch.OSMissShare())
		within := func(name string, got, want, tol float64) {
			if math.Abs(got-want) > tol {
				t.Errorf("%s %s: model %.1f vs sim %.1f (tol %.1f)", kind, name, got, want, tol)
			}
		}
		within("sys-share", p.SysShare, measSys, 10)
		within("stall-os", p.StallOS, osOnly, 8)
		within("stall-all", p.StallAll, all, 12)
		within("os-miss-share", p.OSMissShare, ch.OSMissShare(), 12)
	}
}
