// Package kernel models the operating system of the measured machine: a
// multithreaded System V kernel in the style of IRIX 3.2. It is not a
// statistical model — every kernel operation (system calls, TLB faults,
// interrupts, context switches, block operations) executes real kernel
// routines through a Port, fetching their instruction blocks and touching
// the actual Table 3 data structures, so the cache misses the paper
// analyzes arise from the same mechanisms.
package kernel

import (
	"repro/internal/arch"
	"repro/internal/klock"
)

// ProcState is a process's scheduling state.
type ProcState uint8

const (
	// StateFree marks an unused process-table slot.
	StateFree ProcState = iota
	// StateReady means on the run queue.
	StateReady
	// StateRunning means executing on a CPU.
	StateRunning
	// StateSleeping means blocked on a sleep channel.
	StateSleeping
	// StateZombie means exited.
	StateZombie
)

// SleepChan identifies a kernel sleep/wakeup channel.
type SleepChan int

// NoChan means "not sleeping".
const NoChan SleepChan = -1

// PageInfo describes one mapped virtual page of a process.
type PageInfo struct {
	Frame  uint32
	Code   bool
	COW    bool // copy-on-write: first store must copy the page
	Shared bool // shared mapping (frame freed only by the last unmapper)
}

// Footprint is the user-mode reference-generation state of a process. The
// simulator walks the code pages in a loop-structured pattern and the data
// pages with a hot-set pattern; all virtual pages translate through the TLB
// and fault on first touch.
type Footprint struct {
	// CodeVPages and DataVPages list the process's virtual pages.
	CodeVPages []uint32
	DataVPages []uint32
	// SharedVPages are data pages shared with other processes (e.g. the
	// particle arrays of Mp3d, the database buffer pool).
	SharedVPages []uint32

	// CodeLoopBlocks is the size, in cache blocks, of the typical inner
	// loop the instruction fetch stream cycles over before jumping.
	CodeLoopBlocks int
	// DataHotPages is how many data pages form the hot set.
	DataHotPages int
	// WritePct is the percentage of data references that are stores.
	WritePct int
	// DataRefsPerBlock is how many data references accompany each
	// fetched instruction block (4 instructions).
	DataRefsPerBlock int

	// Mutable generator state (owned by the simulator).
	CodePos  int // block offset within the code region
	LoopLeft int // blocks to go before the next jump
	DataPos  int // block offset within the hot data window
	HotBase  int // first page (index into AllData) of the hot window
	// AllData caches DataVPages+SharedVPages for the generator.
	AllData []uint32
	// Rng drives this process's reference draws. Per-process (seeded
	// from run seed + PID) so the stream is independent of CPU
	// interleaving — required by the parallel engine's speculation.
	Rng RefRand
}

// Action is what a process wants to do next with its user time.
type Action struct {
	Kind ActionKind
	// Cycles is the compute duration for ActCompute.
	Cycles arch.Cycles
	// Req is the system call for ActSyscall.
	Req SyscallReq
	// Lock is the user-level synchronization-library lock for
	// ActUserLock; Hold is how long to hold it.
	Lock *klock.Lock
	Hold arch.Cycles
}

// ActionKind enumerates process actions.
type ActionKind uint8

const (
	// ActCompute runs user code for Cycles.
	ActCompute ActionKind = iota
	// ActSyscall performs Req.
	ActSyscall
	// ActUserLock acquires Lock via the user synchronization library
	// (spin up to 20 times, then sginap — Section 4.1), computes for
	// Hold cycles, and releases.
	ActUserLock
	// ActExit terminates the process.
	ActExit
)

// Behavior generates a process's activity; workloads implement it.
type Behavior interface {
	// Next returns the process's next action. It is called in user
	// context whenever the previous action completes.
	Next(k *Kernel, p *Proc) Action
}

// SysKind enumerates the modeled system calls.
type SysKind uint8

const (
	// SysRead reads Bytes at Offset from file Inode through the page
	// cache (may sleep on disk).
	SysRead SysKind = iota
	// SysWrite writes Bytes at Offset to file Inode (delayed write).
	SysWrite
	// SysOpen performs the name lookup and in-core inode allocation.
	SysOpen
	// SysClose releases the in-core inode.
	SysClose
	// SysSpawn forks and execs a child described by Child.
	SysSpawn
	// SysSginap yields the CPU (issued by the synchronization library
	// after 20 failed spins on a user lock).
	SysSginap
	// SysNap sleeps for Dur cycles on the callout table.
	SysNap
	// SysPipeRead reads from Pipe (sleeps when empty).
	SysPipeRead
	// SysPipeWrite writes to Pipe, waking a sleeping reader.
	SysPipeWrite
	// SysBrk grows the heap (allocates nothing until first touch).
	SysBrk
	// SysSmall is a cheap syscall (getpid, time, ...).
	SysSmall
	// SysWait sleeps until one of the caller's children exits.
	SysWait
	// SysMisc is a rarely-used syscall that executes one of the cold
	// filler routines (the long tail of kernel code).
	SysMisc
	// SysSemop operates on a System V semaphore (the database's
	// inter-process coordination); Sem selects the semaphore.
	SysSemop
)

// SyscallReq carries a system call's arguments.
type SyscallReq struct {
	Kind   SysKind
	Inode  int
	Offset int64
	Bytes  int
	Child  *ProcSpec
	Dur    arch.Cycles
	Pipe   *Pipe
	// Raw marks raw-device I/O (the database's own file management):
	// data moves by DMA between the device and the user's buffers,
	// bypassing the page cache — no kernel block copy.
	Raw bool
	// Sem selects the semaphore for SysSemop.
	Sem int
}

// ProcSpec describes a process to create.
type ProcSpec struct {
	Name        string
	Image       *Image
	DataPages   int   // demand-zero data/heap/stack pages
	SharedWith  *Proc // share this process's shared mappings
	SharedPages int   // create this many new shared pages (leader)
	Behavior    Behavior

	// Premap maps every page at creation without charging CPU traffic.
	// Boot-time processes of a long-running system (the database and
	// its buffer pool, the particle simulator) have faulted their pages
	// long before tracing starts; short-lived processes (compile jobs)
	// leave this false and demand-fault normally.
	Premap bool

	// Footprint tuning.
	CodeLoopBlocks   int
	DataHotPages     int
	WritePct         int
	DataRefsPerBlock int
}

// Image identifies a program's text so that its pages are shared between
// processes running it and cached after they exit.
type Image struct {
	ID        int
	Name      string
	CodePages int
}

// SysStatus is the outcome of a system-call phase.
type SysStatus uint8

const (
	// SysDone means the call completed; the process continues in user
	// mode.
	SysDone SysStatus = iota
	// SysBlocked means the process went to sleep; its continuation
	// runs when it is rescheduled.
	SysBlocked
	// SysExited means the process terminated.
	SysExited
	// SysYield means the caller gave up the CPU (sginap): the simulator
	// requeues it and reschedules.
	SysYield
)

// Proc is one process.
type Proc struct {
	PID   arch.PID
	Slot  int
	Name  string
	State ProcState

	// LastCPU is where the process last ran; migration is running on a
	// different CPU, which turns the per-process structures (kernel
	// stack, user structure, process-table entry) into shared data.
	LastCPU arch.CPUID
	HasRun  bool

	Behavior Behavior
	FP       Footprint

	pages map[uint32]PageInfo
	image *Image
	// sharedLeader is the process whose shared mappings this process
	// attaches to (nil if none or if this process is the leader).
	sharedLeader *Proc

	// kcont is the pending kernel continuation to run when the process
	// is next scheduled (the bottom half of a blocking system call).
	kcont   func(Port, *Proc) SysStatus
	kcontOp OpKind
	sleepOn SleepChan

	// PendingCompute is the unfinished remainder of the current compute
	// action (preserved across preemption).
	PendingCompute arch.Cycles
	// PendingAction is a queued action that must resume (user locks).
	PendingAction *Action
	// UserLockHeld marks that PendingAction's lock is held and the
	// critical-section compute is in progress.
	UserLockHeld bool

	// ChildExitChan is the sleep channel the process's children signal
	// on exit.
	ChildExitChan SleepChan
	// Parent is the spawning process (nil for boot processes).
	Parent *Proc
	// LiveChildren counts unreaped children.
	LiveChildren int

	// Scheduling.
	EnqueuedAt  arch.Cycles
	QuantumUsed arch.Cycles
}

// MappedPage returns the page info for a virtual page.
func (p *Proc) MappedPage(vpage uint32) (PageInfo, bool) {
	pi, ok := p.pages[vpage]
	return pi, ok
}

// Pipe is a kernel pipe (also used to model the character streams between
// the typist programs and the editors).
type Pipe struct {
	ID       int
	Buffered int
	readCh   SleepChan
}
