// Package klock models the kernel's synchronization: spinlocks whose
// accesses travel over the machine's dedicated synchronization bus and are
// therefore invisible to the hardware monitor (Section 2.1). Following the
// paper's methodology, the locks themselves keep statistics — acquires,
// first-attempt failures, waiters at release, same-CPU locality, spin
// attempts — which a measurement process snapshots before and after a run
// (Section 2.2).
//
// The package also implements the Section 5.1 re-simulation: replaying the
// logged lock-access sequence under a cacheable load-linked/
// store-conditional protocol (MIPS R4000 style) to estimate the stall time
// if locks used the main bus and caches.
package klock

import (
	"sort"

	"repro/internal/arch"
	"repro/internal/check"
)

// Cost model for the synchronization bus. Each test-and-set style attempt
// is an uncached sync-bus operation; the protocol's lack of an atomic
// read-modify-write makes every operation expensive (Section 5.1).
const (
	// SyncOpCycles is the cost of one sync-bus transaction.
	SyncOpCycles = 25
	// AcquireCycles is the cost of one successful acquire: without an
	// atomic read-modify-write the protocol needs a read, a set, and a
	// verify round on the synchronization bus (Section 5.1).
	AcquireCycles = 4 * SyncOpCycles
	// ReleaseCycles is a single releasing write.
	ReleaseCycles = SyncOpCycles
	// SpinGapCycles is the delay between consecutive spin attempts on a
	// held lock.
	SpinGapCycles = 25
)

// Event is one successful acquire in a lock's access log.
type Event struct {
	Time   arch.Cycles // when the acquire succeeded
	CPU    arch.CPUID
	Failed bool // first attempt found the lock taken
}

// interval is one completed hold of the lock.
type interval struct {
	start, end arch.Cycles
	cpu        arch.CPUID
	waiters    int
}

const ringSize = 64

// Lock is one kernel spinlock (or one element of a lock array such as
// Shr_x or Ino_x). Locks are used by the single-threaded simulator; they
// are not Go mutexes.
type Lock struct {
	// Name identifies the lock; array elements share their family name.
	Name string
	// Family is the interned integer ID of the lock's family, assigned
	// sequentially by the Registry (array elements share it). The
	// invariant checker indexes its interrupt-discipline table by this
	// ID instead of the name string. User locks keep 0; they are exempt
	// from the kernel lock discipline.
	Family int
	// User marks user-level synchronization-library locks, which are
	// excluded from the OS synchronization statistics but still use the
	// sync bus and trigger sginap after repeated failures.
	User bool

	ring  [ringSize]interval
	ringN int // total intervals ever recorded

	heldBy    arch.CPUID
	heldSince arch.Cycles
	held      bool
	// pendingWaiters counts waiters that arrived during the current
	// (unreleased) hold; transferred to its interval at Release.
	pendingWaiters int

	// ownerRoutine is the kernel routine that performed the most recent
	// acquire (diagnostics only; see NoteOwner).
	ownerRoutine string

	log []Event

	acquires          int64
	failed            int64
	attempts          int64 // acquire attempts including spins
	releases          int64
	relWithWaiters    int64
	waitersSum        int64
	firstAcq, lastAcq arch.Cycles
}

// NewLock returns an unheld lock.
func NewLock(name string) *Lock { return &Lock{Name: name} }

// heldAt returns the recorded interval of another CPU covering time t with
// the latest end, if any.
func (l *Lock) heldAt(t arch.Cycles, cpu arch.CPUID) *interval {
	var best *interval
	n := ringSize
	if l.ringN < n {
		n = l.ringN
	}
	for i := 0; i < n; i++ {
		iv := &l.ring[i]
		if iv.cpu != cpu && iv.start <= t && t < iv.end {
			if best == nil || iv.end > best.end {
				best = iv
			}
		}
	}
	return best
}

// Acquire attempts to take the lock at time now on the given CPU. It
// returns the time at which the acquire succeeded (== now when the lock was
// free) and the number of spin attempts beyond the first. The caller is
// responsible for advancing its clock to acquiredAt and charging the
// sync-bus cost of the attempts.
//
// Contention is detected against recorded hold intervals of other CPUs: the
// simulator steps one CPU's kernel invocation to completion before stepping
// another, so every conflicting hold is already recorded by the time a
// later-stepped CPU acquires (see DESIGN.md §4).
func (l *Lock) Acquire(cpu arch.CPUID, now arch.Cycles) (acquiredAt arch.Cycles, spins int) {
	if l.held && !l.User && l.heldBy == cpu {
		// A kernel spinlock re-acquired by its holder would spin on
		// itself forever.
		panic(&check.CheckError{
			Kind: check.LockViolation, Cycle: now, CPU: cpu, Lock: l.Name,
			Detail: "double acquire of a held spinlock by the same CPU (self-deadlock)",
			Owner:  l.heldBy, OwnerCycle: l.heldSince, OwnerRoutine: l.ownerRoutine, HasOwner: true,
		})
	}
	t := now
	failedFirst := false
	// A pending (unreleased) hold by another CPU can only be a user
	// lock held across preemption; its end is unknown, so wait a
	// nominal critical section past the later of now and the hold
	// start.
	if l.held && l.heldBy != cpu {
		failedFirst = true
		l.failed++
		l.noteWaiterOnPending()
		wait := l.heldSince + 100 - t
		if wait < 100 {
			wait = 100
		}
		spins += int(wait/SpinGapCycles) + 1
		t += wait
	}
	for {
		iv := l.heldAt(t, cpu)
		if iv == nil {
			break
		}
		if !failedFirst {
			failedFirst = true
			l.failed++
		}
		iv.waiters++
		if iv.waiters == 1 {
			l.relWithWaiters++
		}
		l.waitersSum++
		wait := iv.end - t
		spins += int(wait/SpinGapCycles) + 1
		t = iv.end
	}
	l.acquires++
	l.attempts += int64(1 + spins)
	if l.acquires == 1 {
		l.firstAcq = t
	}
	l.lastAcq = t
	l.held = true
	l.heldBy = cpu
	l.heldSince = t
	l.log = append(l.log, Event{Time: t, CPU: cpu, Failed: failedFirst})
	return t, spins
}

// TryAcquire is the user synchronization library's bounded acquire: it
// spins for at most maxWait cycles and gives up if the lock is still held
// (the library then issues sginap, Section 4.1). Failed tries are counted
// as failed acquires and spin attempts but do not appear in the acquire
// log.
func (l *Lock) TryAcquire(cpu arch.CPUID, now, maxWait arch.Cycles) (acquiredAt arch.Cycles, ok bool, spins int) {
	t := now
	deadline := now + maxWait
	failedFirst := false
	// A pending hold (a user-lock holder that may have been preempted —
	// possibly by the very process now trying, so a same-CPU pending
	// hold is just as contended): its release time is unknown, so spin
	// out the deadline and give up — the sginap path.
	if l.held && (l.User || l.heldBy != cpu) {
		l.failed++
		l.noteWaiterOnPending()
		spent := int(maxWait/SpinGapCycles) + 1
		l.attempts += int64(spent)
		return deadline, false, spent
	}
	for {
		iv := l.heldAt(t, cpu)
		if iv == nil {
			break
		}
		if !failedFirst {
			failedFirst = true
			l.failed++
		}
		iv.waiters++
		if iv.waiters == 1 {
			l.relWithWaiters++
		}
		l.waitersSum++
		if iv.end > deadline {
			// Give up: we spun until the deadline.
			spent := int((deadline-t)/SpinGapCycles) + 1
			spins += spent
			l.attempts += int64(spent)
			return deadline, false, spins
		}
		wait := iv.end - t
		spins += int(wait/SpinGapCycles) + 1
		t = iv.end
	}
	l.acquires++
	l.attempts += int64(1 + spins)
	if l.acquires == 1 {
		l.firstAcq = t
	}
	l.lastAcq = t
	l.held = true
	l.heldBy = cpu
	l.heldSince = t
	l.log = append(l.log, Event{Time: t, CPU: cpu, Failed: failedFirst})
	return t, true, spins
}

// Release frees the lock at time now, recording the completed hold
// interval. The interval is keyed to the CPU that acquired the lock:
// kernel spinlocks are always released where they were acquired, but a
// user-level lock holder can be preempted and resume on another CPU
// (which is exactly why the synchronization library falls back to sginap).
func (l *Lock) Release(cpu arch.CPUID, now arch.Cycles) {
	if !l.held {
		e := &check.CheckError{
			Kind: check.LockViolation, Cycle: now, CPU: cpu, Lock: l.Name,
			Detail: "release of a lock that is not held",
		}
		if l.acquires > 0 {
			// Last-holder provenance: heldBy/heldSince survive Release.
			e.Owner, e.OwnerCycle, e.OwnerRoutine, e.HasOwner = l.heldBy, l.heldSince, l.ownerRoutine, true
		}
		panic(e)
	}
	if !l.User && l.heldBy != cpu {
		panic(&check.CheckError{
			Kind: check.LockViolation, Cycle: now, CPU: cpu, Lock: l.Name,
			Detail: "kernel spinlock released by a CPU that does not hold it",
			Owner:  l.heldBy, OwnerCycle: l.heldSince, OwnerRoutine: l.ownerRoutine, HasOwner: true,
		})
	}
	end := now
	if end <= l.heldSince {
		end = l.heldSince + 1 // a hold takes at least a cycle
	}
	l.ring[int(l.ringN)%ringSize] = interval{
		start: l.heldSince, end: end, cpu: l.heldBy, waiters: l.pendingWaiters,
	}
	l.ringN++
	l.releases++
	l.held = false
	l.pendingWaiters = 0
}

// noteWaiterOnPending records a waiter against the current unreleased
// hold.
func (l *Lock) noteWaiterOnPending() {
	l.pendingWaiters++
	if l.pendingWaiters == 1 {
		l.relWithWaiters++
	}
	l.waitersSum++
}

// Held reports whether the lock is in a pending hold (between Acquire and
// Release on the currently-stepped CPU).
func (l *Lock) Held() bool { return l.held }

// NoteOwner records the kernel routine that performed the most recent
// acquire, so a later discipline violation can name it.
func (l *Lock) NoteOwner(routine string) { l.ownerRoutine = routine }

// ResetStats clears the statistics and the acquire log (but not the
// hold-interval ring, which contention detection still needs). The
// measurement process calls this when tracing starts so statistics cover
// the measured window only, mirroring the before/after snapshot of
// Section 2.2.
func (l *Lock) ResetStats() {
	l.log = nil
	l.acquires = 0
	l.failed = 0
	l.attempts = 0
	l.releases = 0
	l.relWithWaiters = 0
	l.waitersSum = 0
	l.pendingWaiters = 0
	l.firstAcq = 0
	l.lastAcq = 0
}

// Log returns the acquire log (not sorted).
func (l *Lock) Log() []Event { return l.log }

// Acquires returns the number of successful acquires.
func (l *Lock) Acquires() int64 { return l.acquires }

// sortedLog returns the acquire events in time order. Events are logged in
// per-CPU-step order, which can be locally out of order across CPUs.
func (l *Lock) sortedLog() []Event {
	out := make([]Event, len(l.log))
	copy(out, l.log)
	sort.Slice(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out
}

// Stats is the per-lock characterization of Table 12.
type Stats struct {
	Name     string
	Acquires int64
	Failed   int64
	Attempts int64

	// CyclesBetweenAcq is the average number of cycles between two
	// consecutive successful acquires (Table 12 column 2; includes CPU
	// idle time).
	CyclesBetweenAcq float64
	// PctFailed is the percentage of acquire attempts that found the
	// lock taken (first attempts only, ignoring spins), column 3.
	PctFailed float64
	// AvgWaitersIfAny is the mean number of waiters at releases that
	// had at least one waiter, column 4.
	AvgWaitersIfAny float64
	// PctSameCPU is the percentage of successful acquires by the same
	// CPU as the previous acquire with no intervening access by another
	// CPU, column 5.
	PctSameCPU float64
	// CachedBusOps and UncachedOps are the bus-access counts of the
	// cacheable-lock replay and of the sync-bus protocol; their ratio
	// is column 6.
	CachedBusOps int64
	UncachedOps  int64
	// PctCachedVsUncached is 100*CachedBusOps/UncachedOps.
	PctCachedVsUncached float64
}

// ComputeStats derives the Table 12 characterization from the lock's
// counters and log.
func (l *Lock) ComputeStats() Stats {
	s := Stats{
		Name:     l.Name,
		Acquires: l.acquires,
		Failed:   l.failed,
		Attempts: l.attempts,
	}
	if l.acquires > 1 {
		s.CyclesBetweenAcq = float64(l.lastAcq-l.firstAcq) / float64(l.acquires-1)
	}
	if l.acquires > 0 {
		s.PctFailed = 100 * float64(l.failed) / float64(l.acquires)
	}
	if l.relWithWaiters > 0 {
		s.AvgWaitersIfAny = float64(l.waitersSum) / float64(l.relWithWaiters)
	}
	log := l.sortedLog()
	s.PctSameCPU = pctSameCPU(log)
	s.CachedBusOps = ReplayCached(log)
	s.UncachedOps = l.uncachedOps()
	if s.UncachedOps > 0 {
		s.PctCachedVsUncached = 100 * float64(s.CachedBusOps) / float64(s.UncachedOps)
	}
	return s
}

// uncachedOps is the number of off-cache lock accesses under the current
// machine's protocol: every acquire attempt (including spins) plus every
// release. This is the denominator of Table 12's cached/uncached ratio.
func (l *Lock) uncachedOps() int64 { return l.attempts + l.releases }

// stallCycles is the CPU time the protocol costs: a multi-transaction
// acquire (no atomic RMW), one transaction per spin and per release.
func (l *Lock) stallCycles() arch.Cycles {
	spins := l.attempts - l.acquires
	if spins < 0 {
		spins = 0
	}
	return arch.Cycles(l.acquires)*AcquireCycles +
		arch.Cycles(spins)*SyncOpCycles +
		arch.Cycles(l.releases)*ReleaseCycles
}

// pctSameCPU computes the fraction of acquires performed by the same CPU
// as the previous acquire with no other CPU touching the lock in between.
// A failed first attempt by another CPU counts as an intervening touch, so
// the sequence must be examined acquire by acquire.
func pctSameCPU(log []Event) float64 {
	if len(log) < 2 {
		return 0
	}
	same := 0
	for i := 1; i < len(log); i++ {
		// An intervening failed attempt by a third CPU would have
		// become a (possibly later) successful acquire in the log;
		// treat consecutive same-CPU successes as local.
		if log[i].CPU == log[i-1].CPU && !log[i].Failed {
			same++
		}
	}
	return 100 * float64(same) / float64(len(log)-1)
}

// ReplayCached replays a time-ordered acquire log under the cacheable
// LL/SC protocol of Section 5.1 and returns the number of main-bus
// accesses it would generate. A CPU re-acquiring a lock nobody touched
// since its own last access pays no bus access; a migrating acquire pays
// one; an acquire whose first attempt failed pays two more (the spin load
// and the refetch after the holder's releasing store invalidates it).
func ReplayCached(log []Event) int64 {
	var ops int64
	lastCPU := arch.CPUID(-1)
	for _, e := range log {
		if e.CPU != lastCPU {
			ops++
		}
		if e.Failed {
			ops += 2
		}
		lastCPU = e.CPU
	}
	return ops
}

// SyncCost summarizes the CPU stall attributable to this lock under both
// protocols (Table 10): the sync-bus protocol charges SyncOpCycles per
// operation; the cacheable-lock machine charges missStall (the machine's
// per-bus-access stall, arch.MissStallCycles on the measured one) per
// replay bus access.
func (l *Lock) SyncCost(missStall arch.Cycles) (current, rmwCached arch.Cycles) {
	current = l.stallCycles()
	rmwCached = arch.Cycles(ReplayCached(l.sortedLog())) * missStall
	return current, rmwCached
}
