package kernel

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/kmem"
)

// Routine is one kernel subroutine: a contiguous extent of kernel text.
// Executing it fetches its instruction blocks in order (OS code is mostly
// loop-less, Section 4.2.1), so its physical placement determines which
// I-cache sets it occupies and therefore which other routines it conflicts
// with — the source of the paper's Dispos self-interference misses.
type Routine struct {
	ID    int
	Name  string
	Addr  arch.PAddr
	Size  uint32
	Group string // Table 5 operation group, "" if none
	// GroupID is the interned form of Group, for the classifier's dense
	// per-miss tallies.
	GroupID GroupID
}

// Blocks returns the number of I-cache blocks the routine spans.
func (r *Routine) Blocks() int { return int(r.Size+arch.BlockSize-1) / arch.BlockSize }

// Instructions returns the instruction count of one execution.
func (r *Routine) Instructions() int { return int(r.Size) / arch.InstrBytes }

// Table 5 operation groups.
const (
	GroupRunQueue = "Management of the Run Queue"
	GroupLowLevel = "Low-Level Exception Handling"
	GroupRWSetup  = "Recognition and Setup of Read and Write System Calls"
)

// GroupID is the interned integer form of a Table 5 group name. The trace
// classifier indexes its per-miss migration tallies by GroupID and resolves
// the display strings only at Finish.
type GroupID uint8

const (
	GroupIDNone GroupID = iota
	GroupIDRunQueue
	GroupIDLowLevel
	GroupIDRWSetup

	// NumGroups is the number of group IDs (array-sizing bound).
	NumGroups
)

// groupIDs interns a group name; groupNames resolves it back ("" for none).
var groupIDs = map[string]GroupID{
	GroupRunQueue: GroupIDRunQueue,
	GroupLowLevel: GroupIDLowLevel,
	GroupRWSetup:  GroupIDRWSetup,
}

var groupNames = [NumGroups]string{
	GroupIDRunQueue: GroupRunQueue,
	GroupIDLowLevel: GroupLowLevel,
	GroupIDRWSetup:  GroupRWSetup,
}

// Name returns the Table 5 display string of a group ID ("" for none).
func (g GroupID) Name() string { return groupNames[g] }

// routineSpec declares one routine of the kernel image.
type routineSpec struct {
	name  string
	size  uint32
	group string
}

// kernelImage is the kernel text inventory. Placement is sequential in
// declaration order; the I-cache is 64 KB, so code 64 KB apart conflicts.
// The hot paths are placed in the first bank; the large file-system and
// driver code ("some I/O drivers have a size comparable to the instruction
// cache", Section 4.2.3) spans later banks and therefore conflicts with
// them, reproducing the concentrated self-interference of Figure 5.
var kernelImage = []routineSpec{
	// ---- bank 0 (first 64 KB): hot paths ----
	// Low-level exception handling (assembly, Table 5).
	{"exc_vec", 256, GroupLowLevel},
	{"exc_save", 512, GroupLowLevel},
	{"exc_restore", 512, GroupLowLevel},
	{"utlbmiss", 192, GroupLowLevel},
	// Lock primitives (executed 3-5x more often than anything else).
	{"lock_acquire", 128, ""},
	{"lock_release", 96, ""},
	// The seven core run-queue routines (Table 5).
	{"swtch", 1536, GroupRunQueue},
	{"save_ctx", 512, GroupRunQueue},
	{"restore_ctx", 512, GroupRunQueue},
	{"setrq", 384, GroupRunQueue},
	{"remrq", 384, GroupRunQueue},
	{"whichq", 256, GroupRunQueue},
	{"schedcpu", 1024, GroupRunQueue},
	// System call recognition and setup (Table 5 includes the read/
	// write recognition path).
	{"syscall_entry", 1024, GroupRWSetup},
	{"syscall_exit", 768, ""},
	{"copyin", 448, ""},
	{"copyout", 448, ""},
	// TLB fault handling.
	{"tlb_refill", 640, ""},
	{"pt_lookup", 512, ""},
	{"pagein", 2048, ""},
	{"pgalloc", 1024, ""},
	{"pgfree", 768, ""},
	{kmem.RoutineVhand, 1536, ""},
	// Block operations (tight loops over data; code is tiny).
	{kmem.RoutineBcopy, 512, ""},
	{kmem.RoutineBclear, 384, ""},
	// Read/write top halves (Table 5 read/write setup).
	{"sys_read", 1280, GroupRWSetup},
	{"sys_write", 1280, GroupRWSetup},
	{"rwuio", 1024, ""},
	// Frequent small syscalls.
	{"sys_sginap", 512, ""},
	{"sleep", 640, ""},
	{"wakeup", 512, ""},
	{"sys_small", 256, ""}, // getpid/time/etc.
	// Clock path.
	{"clock_intr", 1024, ""},
	{"hardclock", 768, ""},
	{"softclock", 640, ""},
	{"timeout", 512, ""},
	// Idle loop (tiny, stays cached).
	{"idle_loop", 64, ""},
	// Pipe/stream fast path used by editors and database front-ends.
	{"pipe_rw", 1024, ""},
	// Pad bank 0 with moderately-warm process management code.
	{"sys_fork", 2048, ""},
	{"newproc", 1536, ""},
	{"sys_exit", 1280, ""},
	{"sys_wait", 768, ""},
	{"sys_brk", 768, ""},
	{"proc_misc", 24576, ""}, // signal delivery, credentials, misc

	// ---- bank 1+ : file system ----
	{"sys_open", 1536, ""},
	{"sys_close", 512, ""},
	{"namei", 2560, ""},
	{"iget", 896, ""},
	{"iput", 640, ""},
	{"getblk", 896, ""},
	{"brelse", 512, ""},
	{"bread", 640, ""},
	{"bwrite", 640, ""},
	{"fs_balloc", 1024, ""},
	{"ufs_readwrite", 2048, ""},
	{"sys_exec", 2560, ""},
	{"load_image", 2048, ""},
	{"fs_misc", 20480, ""}, // directory code, quota, mount, ...

	// ---- disk driver: comparable in size to the I-cache ----
	{"dksc_strategy", 4096, ""},
	{"dksc_start", 4096, ""},
	{"dksc_io", 12288, ""},
	{"dksc_intr", 8192, ""},
	{"scsi_misc", 16384, ""},

	// ---- streams / tty (editors) ----
	{"str_read", 2048, ""},
	{"str_write", 2048, ""},
	{"str_intr", 3072, ""},
	{"tty_ld", 1536, ""},

	// ---- network (runs on CPU 1 only, Section 2.2) ----
	{"net_intr", 4096, ""},
	{"ip_input", 3072, ""},
	{"net_daemon", 4096, ""},
}

// numFillers cold routines of fillerSize bytes each pad the image out to
// KernelTextSize; "other" system calls touch them at random, modeling the
// long tail of rarely-executed kernel code.
const (
	fillerSize = 12 * 1024
)

// KText is the placed kernel text image.
type KText struct {
	Routines  []*Routine
	byName    map[string]*Routine
	Fillers   []*Routine // subset of Routines: the cold padding
	TotalSize uint32
}

// NewKText places the kernel image with the shipped (conflict-prone)
// layout, starting at the base of the kernel text region of machine m.
func NewKText(base arch.PAddr, m arch.Machine) *KText { return newKText(base, m, false) }

// NewKTextOptimized places the image with the Section 4.2.1 layout
// optimization: the hot loop-less paths occupy exclusive I-cache offsets,
// and the warm file-system/driver code is placed so its cache sets only
// collide with cold filler — "purposely laying out the basic blocks in the
// OS object code to avoid cache conflicts".
func NewKTextOptimized(base arch.PAddr, m arch.Machine) *KText { return newKText(base, m, true) }

// hotRoutines are the frequently-executed, latency-critical paths the
// optimized layout protects (the bank-0 routines minus the bulky
// process-management tail).
var hotRoutines = map[string]bool{
	"exc_vec": true, "exc_save": true, "exc_restore": true, "utlbmiss": true,
	"lock_acquire": true, "lock_release": true,
	"swtch": true, "save_ctx": true, "restore_ctx": true, "setrq": true,
	"remrq": true, "whichq": true, "schedcpu": true,
	"syscall_entry": true, "syscall_exit": true, "copyin": true, "copyout": true,
	"tlb_refill": true, "pt_lookup": true, "pagein": true, "pgalloc": true,
	"pgfree": true, kmem.RoutineVhand: true, kmem.RoutineBcopy: true,
	kmem.RoutineBclear: true,
	"sys_read":         true, "sys_write": true, "rwuio": true,
	"sys_sginap": true, "sleep": true, "wakeup": true, "sys_small": true,
	"clock_intr": true, "hardclock": true, "softclock": true, "timeout": true,
	"idle_loop": true, "pipe_rw": true,
}

func newKText(base arch.PAddr, m arch.Machine, optimized bool) *KText {
	t := &KText{byName: make(map[string]*Routine)}
	// The image spans 13 I-cache banks of the machine it runs on
	// (Figure 5's span on the default machine); the bank size drives the
	// optimized layout's set math below.
	icache := uint32(m.ICacheSize)
	end := base + arch.PAddr(13*icache)
	next := base
	alignBlock := func(a arch.PAddr) arch.PAddr {
		if a%arch.BlockSize != 0 {
			a = (a + arch.BlockSize - 1) &^ (arch.BlockSize - 1)
		}
		return a
	}
	add := func(name string, size uint32, group string, at arch.PAddr) *Routine {
		r := &Routine{ID: len(t.Routines), Name: name, Addr: at, Size: size,
			Group: group, GroupID: groupIDs[group]}
		t.Routines = append(t.Routines, r)
		t.byName[name] = r
		return r
	}
	if !optimized {
		for _, s := range kernelImage {
			add(s.name, s.size, s.group, next)
			next = alignBlock(next + arch.PAddr(s.size))
		}
	} else {
		// Pass 1: hot routines, packed from offset 0. Their extent H
		// defines the protected I-cache offsets [0, H).
		for _, s := range kernelImage {
			if hotRoutines[s.name] {
				add(s.name, s.size, s.group, next)
				next = alignBlock(next + arch.PAddr(s.size))
			}
		}
		hotEnd := uint32(next - base) // protected offset extent
		// Pass 2: warm code at offsets ≥ hotEnd in later banks, so its
		// sets never collide with the hot paths.
		place := alignBlock(base + arch.ICacheSize + arch.PAddr(hotEnd))
		for _, s := range kernelImage {
			if hotRoutines[s.name] {
				continue
			}
			// Does [place, place+size) stay within this bank's
			// allowed window (offset ∈ [hotEnd, 64K))?
			off := uint32(place-base) % arch.ICacheSize
			if off < hotEnd || off+s.size > arch.ICacheSize {
				// Skip to the allowed window of the next bank. A
				// routine larger than the window itself cannot
				// avoid the protected offsets entirely; starting
				// it at the window base minimizes the overlap
				// (only its tail wraps onto hot sets), and the
				// next iteration's offset check recovers.
				bank := (uint32(place-base)/arch.ICacheSize + 1)
				place = alignBlock(base + arch.PAddr(bank*arch.ICacheSize+hotEnd))
			}
			add(s.name, s.size, s.group, place)
			place = alignBlock(place + arch.PAddr(s.size))
		}
		if place > next {
			next = place
		}
	}
	// Pad the unused extents with cold filler routines so the image
	// still spans the full KernelTextSize. For the optimized layout
	// this fills the low offsets of later banks — cold code where the
	// hot sets used to be thrashed.
	i := 0
	if optimized {
		// Fill gaps: walk from base and cover every unassigned
		// stretch ≥ one block with filler.
		var used []addrSpan
		for _, r := range t.Routines {
			used = append(used, addrSpan{r.Addr, alignBlock(r.Addr + arch.PAddr(r.Size))})
		}
		sortSpans(used)
		cur := base
		for _, u := range used {
			for cur+fillerSize <= u.lo {
				f := add(fmt.Sprintf("misc_%02d", i), fillerSize, "", cur)
				t.Fillers = append(t.Fillers, f)
				i++
				cur += fillerSize
			}
			if u.lo > cur { // guards unsigned underflow if spans abut
				if rem := uint32(u.lo - cur); rem >= arch.BlockSize {
					f := add(fmt.Sprintf("misc_%02d", i), rem, "", cur)
					t.Fillers = append(t.Fillers, f)
					i++
				}
			}
			if u.hi > cur {
				cur = u.hi
			}
		}
		if cur > end {
			// next = end below would mask the overflow, and the
			// tail-remainder subtraction would wrap; fail loudly.
			panic("kernel: optimized text layout overflows the kernel text region")
		}
		for cur+fillerSize <= end {
			f := add(fmt.Sprintf("misc_%02d", i), fillerSize, "", cur)
			t.Fillers = append(t.Fillers, f)
			i++
			cur += fillerSize
		}
		if rem := uint32(end - cur); rem >= arch.BlockSize {
			f := add(fmt.Sprintf("misc_%02d", i), rem, "", cur)
			t.Fillers = append(t.Fillers, f)
		}
		next = end
	} else {
		for next+fillerSize <= end {
			f := add(fmt.Sprintf("misc_%02d", i), fillerSize, "", next)
			t.Fillers = append(t.Fillers, f)
			next = alignBlock(next + fillerSize)
			i++
		}
		if rem := uint32(end - next); rem >= arch.BlockSize {
			f := add(fmt.Sprintf("misc_%02d", i), rem, "", next)
			t.Fillers = append(t.Fillers, f)
			next = end
		}
	}
	t.TotalSize = uint32(next - base)
	if next > end {
		panic("kernel: text inventory overflows the kernel text region")
	}
	// Keep Routines sorted by address (At() binary-searches).
	sortRoutines(t.Routines)
	for idx, r := range t.Routines {
		r.ID = idx
		t.byName[r.Name] = r
	}
	return t
}

// addrSpan is a placed extent of text.
type addrSpan struct{ lo, hi arch.PAddr }

// sortSpans orders spans by start address (insertion sort: tiny n).
func sortSpans(s []addrSpan) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].lo < s[j-1].lo; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// sortRoutines orders routines by address.
func sortRoutines(rs []*Routine) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].Addr < rs[j-1].Addr; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

// R returns the named routine, panicking on unknown names (a programming
// error caught by the op tests).
func (t *KText) R(name string) *Routine {
	r, ok := t.byName[name]
	if !ok {
		panic("kernel: unknown routine " + name)
	}
	return r
}

// ByID returns the routine with the given ID.
func (t *KText) ByID(id int) *Routine { return t.Routines[id] }

// At returns the routine containing a physical text address, or nil.
func (t *KText) At(a arch.PAddr) *Routine {
	// Routines are sorted by address; binary search.
	lo, hi := 0, len(t.Routines)
	for lo < hi {
		mid := (lo + hi) / 2
		r := t.Routines[mid]
		switch {
		case a < r.Addr:
			hi = mid
		case a >= r.Addr+arch.PAddr(r.Size):
			lo = mid + 1
		default:
			return r
		}
	}
	return nil
}
