// Package cachesweep reproduces the paper's Figure 6 methodology: "we use
// the references that miss in the caches of the real machine to simulate
// larger caches". The instruction-miss stream reconstructed by the trace
// package drives simulations of bigger and set-associative I-caches; the
// result is the OS instruction miss rate of each configuration relative to
// the measured machine's 64 KB direct-mapped cache.
//
// Because the input already excludes references that hit the real 64 KB
// cache, a two-way 64 KB cache cannot be simulated (the paper notes the
// same restriction).
package cachesweep

import (
	"repro/internal/arch"
	"repro/internal/cache"
	"repro/internal/trace"
)

// Config is one simulated I-cache configuration.
type Config struct {
	Size  int
	Assoc int
}

// Point is the sweep result for one configuration.
type Point struct {
	Config
	// OSMisses is the number of OS instruction misses this
	// configuration would take on the miss stream.
	OSMisses int64
	// Relative is OSMisses / baseline OS misses (1.0 for the measured
	// 64 KB direct-mapped cache, by construction).
	Relative float64
}

// Figure6Sizes are the cache sizes of the paper's sweep.
var Figure6Sizes = []int{64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20}

// Baseline counts the OS misses of the measured machine in the stream —
// the denominator every sweep point is normalized by.
func Baseline(stream []trace.IResimEvent) int64 {
	n := int64(0)
	for _, e := range stream {
		if !e.Flush && e.OS {
			n++
		}
	}
	return n
}

// Sweep simulates the configurations against the miss stream and returns
// one point per config. A flush event invalidates every simulated cache
// (the machine's code-page-reallocation flush).
func Sweep(stream []trace.IResimEvent, ncpu int, configs []Config) []Point {
	baseline := Baseline(stream)
	out := make([]Point, 0, len(configs))
	for _, cfg := range configs {
		misses := Simulate(stream, ncpu, cfg)
		p := Point{Config: cfg, OSMisses: misses}
		if baseline > 0 {
			p.Relative = float64(misses) / float64(baseline)
		}
		out = append(out, p)
	}
	return out
}

// Simulate replays the miss stream against one I-cache configuration and
// returns the OS misses it would take. Each call builds its own caches, so
// independent configurations can be simulated concurrently.
func Simulate(stream []trace.IResimEvent, ncpu int, cfg Config) int64 {
	caches := make([]*cache.Cache, ncpu)
	for i := range caches {
		caches[i] = cache.New("sweep", cfg.Size, cfg.Assoc)
	}
	var misses int64
	for _, e := range stream {
		if e.Flush {
			for _, c := range caches {
				c.InvalidateAll()
			}
			continue
		}
		a := arch.PAddr(e.Block) << arch.BlockShift
		hit, _, _ := caches[e.CPU].Access(a, false)
		if !hit && e.OS {
			misses++
		}
	}
	return misses
}

// InvalBound simulates an infinite cache with flushes: the remaining
// misses are cold misses plus flush-forced refetches — the dashed lower
// bound of Figure 6 ("the effect of the misses caused by invalidations").
func InvalBound(stream []trace.IResimEvent, ncpu int) (osMisses int64, relative float64) {
	resident := make([]map[uint32]bool, ncpu)
	for i := range resident {
		resident[i] = make(map[uint32]bool)
	}
	baseline := int64(0)
	for _, e := range stream {
		if e.Flush {
			for i := range resident {
				resident[i] = make(map[uint32]bool)
			}
			continue
		}
		if e.OS {
			baseline++
		}
		if !resident[e.CPU][e.Block] {
			resident[e.CPU][e.Block] = true
			if e.OS {
				osMisses++
			}
		}
	}
	if baseline > 0 {
		relative = float64(osMisses) / float64(baseline)
	}
	return osMisses, relative
}

// Figure6 runs the paper's full sweep: direct-mapped and two-way caches at
// each size (skipping the impossible 64 KB two-way), plus the
// invalidation bound.
type Figure6Result struct {
	DirectMapped []Point
	TwoWay       []Point
	// InvalBoundRel is the dashed curve's floor (relative miss rate of
	// an infinite cache that still suffers flushes and cold misses).
	InvalBoundRel    float64
	InvalBoundMisses int64
}

// Figure6Configs returns the direct-mapped and two-way configuration
// lists of the paper's sweep (the impossible 64 KB two-way excluded).
func Figure6Configs() (dm, tw []Config) {
	for _, sz := range Figure6Sizes {
		dm = append(dm, Config{Size: sz, Assoc: 1})
		if sz > 64<<10 {
			tw = append(tw, Config{Size: sz, Assoc: 2})
		}
	}
	return dm, tw
}

// Figure6 computes the whole figure from a classified trace.
func Figure6(stream []trace.IResimEvent, ncpu int) Figure6Result {
	dm, tw := Figure6Configs()
	res := Figure6Result{
		DirectMapped: Sweep(stream, ncpu, dm),
		TwoWay:       Sweep(stream, ncpu, tw),
	}
	res.InvalBoundMisses, res.InvalBoundRel = InvalBound(stream, ncpu)
	return res
}

// ---- Data-cache sweep (§4.2.2: "Larger data caches cannot eliminate
// Sharing misses. Consequently ... larger data caches can only moderately
// increase the data cache performance of the OS.") ----

// DPoint is one data-cache configuration's result.
type DPoint struct {
	Config
	// OSMisses is what the configuration would still take.
	OSMisses int64
	// OSSharing is the subset caused by coherence invalidations — the
	// floor no capacity can remove.
	OSSharing int64
	Relative  float64
}

// DSweep replays the data-miss stream (fills plus coherence
// invalidations) against bigger/associative coherence-level caches.
func DSweep(stream []trace.DResimEvent, ncpu int, configs []Config) []DPoint {
	var baseline int64
	for _, e := range stream {
		if e.Fill && e.OS {
			baseline++
		}
	}
	out := make([]DPoint, 0, len(configs))
	for _, cfg := range configs {
		caches := make([]*cache.Cache, ncpu)
		invalidated := make([]map[uint32]bool, ncpu)
		for i := range caches {
			caches[i] = cache.New("dsweep", cfg.Size, cfg.Assoc)
			invalidated[i] = make(map[uint32]bool)
		}
		p := DPoint{Config: cfg}
		for _, e := range stream {
			a := arch.PAddr(e.Block) << arch.BlockShift
			if e.Fill {
				hit, _, _ := caches[e.CPU].Access(a, e.Inval)
				if !hit && e.OS {
					p.OSMisses++
					if invalidated[e.CPU][e.Block] {
						p.OSSharing++
					}
				}
				delete(invalidated[e.CPU], e.Block)
			}
			if e.Inval {
				for q := 0; q < ncpu; q++ {
					if arch.CPUID(q) == e.CPU {
						continue
					}
					if was, _ := caches[q].Invalidate(a); was {
						invalidated[q][e.Block] = true
					}
				}
			}
		}
		if baseline > 0 {
			p.Relative = float64(p.OSMisses) / float64(baseline)
		}
		out = append(out, p)
	}
	return out
}
