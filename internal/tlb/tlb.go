// Package tlb models the per-CPU 64-entry fully-associative TLB of the
// MIPS R3000. Entries are tagged with a process id (the R3000 ASID), so
// context switches do not flush the TLB. Misses are serviced in software:
// the kernel's UTLB handler for pages already mapped (cheap faults) or the
// general fault path when a physical page must be allocated (expensive
// faults).
package tlb

import "repro/internal/arch"

// Entry is one TLB slot.
type Entry struct {
	Valid bool
	PID   arch.PID
	VPage uint32
	Frame uint32
}

// TLB is one CPU's translation buffer. Replacement is round-robin over the
// entries, approximating the R3000's random replacement deterministically.
//
// An index map mirrors the valid entries so Lookup is O(1) instead of a
// 64-entry scan (the translation path runs once per generated reference).
// Slot assignment is untouched — the slot index is emitted in the
// TLB-change escape, so entry order is part of the observable trace.
type TLB struct {
	entries []Entry
	next    int
	index   map[uint64]int32 // (pid, vpage) → slot of each valid entry

	// Hits and Misses count lookups for the Figure 9 discussion of
	// cheap-fault frequency.
	Hits   int64
	Misses int64
}

// New returns an empty TLB with the given number of entries
// (arch.TLBEntries on the default machine).
func New(entries int) *TLB {
	if entries < 1 {
		panic("tlb: need at least one entry")
	}
	return &TLB{
		entries: make([]Entry, entries),
		index:   make(map[uint64]int32, entries),
	}
}

func tlbKey(pid arch.PID, vpage uint32) uint64 {
	return uint64(pid)<<32 | uint64(vpage)
}

// Lookup translates (pid, vpage), reporting a miss if no valid entry
// matches.
func (t *TLB) Lookup(pid arch.PID, vpage uint32) (frame uint32, hit bool) {
	if i, ok := t.index[tlbKey(pid, vpage)]; ok {
		t.Hits++
		return t.entries[i].Frame, true
	}
	t.Misses++
	return 0, false
}

// Insert installs a translation, returning the index used and the entry it
// displaced (displaced.Valid is false if the slot was empty). If the
// (pid, vpage) pair is already present its entry is updated in place.
func (t *TLB) Insert(pid arch.PID, vpage, frame uint32) (index int, displaced Entry) {
	if i, ok := t.index[tlbKey(pid, vpage)]; ok {
		t.entries[i].Frame = frame
		return int(i), Entry{}
	}
	i := t.next
	t.next = (t.next + 1) % len(t.entries)
	displaced = t.entries[i]
	if displaced.Valid {
		delete(t.index, tlbKey(displaced.PID, displaced.VPage))
	}
	t.entries[i] = Entry{Valid: true, PID: pid, VPage: vpage, Frame: frame}
	t.index[tlbKey(pid, vpage)] = int32(i)
	return i, displaced
}

// InvalidatePID drops every entry belonging to pid (process exit) and
// returns how many were dropped.
func (t *TLB) InvalidatePID(pid arch.PID) int {
	n := 0
	for i := range t.entries {
		if t.entries[i].Valid && t.entries[i].PID == pid {
			t.entries[i].Valid = false
			delete(t.index, tlbKey(t.entries[i].PID, t.entries[i].VPage))
			n++
		}
	}
	return n
}

// InvalidateFrame drops every entry mapping to physical frame f (page
// reclaim) and returns how many were dropped.
func (t *TLB) InvalidateFrame(f uint32) int {
	n := 0
	for i := range t.entries {
		if t.entries[i].Valid && t.entries[i].Frame == f {
			t.entries[i].Valid = false
			delete(t.index, tlbKey(t.entries[i].PID, t.entries[i].VPage))
			n++
		}
	}
	return n
}

// Valid returns the number of valid entries.
func (t *TLB) Valid() int {
	n := 0
	for i := range t.entries {
		if t.entries[i].Valid {
			n++
		}
	}
	return n
}

// Entries exposes the slots for the initial-state dump the instrumentation
// writes when tracing starts (Section 2.2).
func (t *TLB) Entries() []Entry { return t.entries[:] }

// StateHash folds the TLB's architectural state — every slot plus the
// round-robin replacement cursor — into a running FNV-1a fingerprint with
// the mixing function mix (the cache package supplies the canonical one).
// The sampled-simulation tests use it to prove trajectory equivalence.
func (t *TLB) StateHash(h uint64, mix func(h, v uint64) uint64) uint64 {
	for i := range t.entries {
		e := &t.entries[i]
		if !e.Valid {
			h = mix(h, 0)
			continue
		}
		h = mix(h, 1|uint64(uint32(e.PID))<<1|uint64(e.VPage)<<33)
		h = mix(h, uint64(e.Frame))
	}
	return mix(h, uint64(t.next))
}
