package runner

import (
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

func TestMapOrderPreserved(t *testing.T) {
	for _, par := range []int{1, 2, 8} {
		out := Map(100, Options{Parallelism: par}, func(i int) int { return i * i })
		if len(out) != 100 {
			t.Fatalf("par %d: got %d results", par, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("par %d: slot %d holds %d, want %d", par, i, v, i*i)
			}
		}
	}
}

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	hits := make([]int, 200)
	ForEach(len(hits), Options{Parallelism: 7}, func(i int) { hits[i]++ })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d ran %d times", i, h)
		}
	}
}

func TestWorkersResolution(t *testing.T) {
	cases := []struct {
		par, n, want int
	}{
		{1, 10, 1},
		{4, 10, 4},
		{8, 3, 3},  // never more workers than jobs
		{-1, 2, 2}, // <=0 → GOMAXPROCS, clamped to n
		{0, 0, 1},  // degenerate batch still gets one worker
	}
	for _, c := range cases {
		got := Options{Parallelism: c.par}.workers(c.n)
		want := c.want
		if c.par <= 0 && c.n > 0 {
			want = runtime.GOMAXPROCS(0)
			if want > c.n {
				want = c.n
			}
		}
		if got != want {
			t.Errorf("workers(par=%d, n=%d) = %d, want %d", c.par, c.n, got, want)
		}
	}
}

func TestDeriveSeed(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		s := DeriveSeed(42, i)
		if s <= 0 {
			t.Fatalf("seed %d for index %d not positive", s, i)
		}
		if s != DeriveSeed(42, i) {
			t.Fatalf("index %d not deterministic", i)
		}
		if seen[s] {
			t.Fatalf("index %d collides with an earlier index", i)
		}
		seen[s] = true
	}
	if DeriveSeed(1, 0) == DeriveSeed(2, 0) {
		t.Error("different bases produced the same first seed")
	}
}

// smallCfgs builds a checked four-run batch small enough for the race
// detector: two workloads at two CPU counts each.
func smallCfgs() []core.Config {
	var out []core.Config
	for i, k := range []workload.Kind{workload.Pmake, workload.Multpgm} {
		for _, n := range []int{2, 4} {
			out = append(out, core.Config{
				Workload: k, NCPU: n, Seed: DeriveSeed(9, i),
				Window: 400_000, Warmup: 200_000, Check: true,
			})
		}
	}
	return out
}

// TestExperimentsParallelMatchesSerial is the engine's core guarantee:
// the same configs produce identical characterizations on 1 worker and on
// 8, with the invariant checker riding along (this test doubles as the
// pool's -race exercise).
func TestExperimentsParallelMatchesSerial(t *testing.T) {
	cfgs := smallCfgs()
	ser, sb := Experiments(cfgs, Options{Parallelism: 1})
	par, pb := Experiments(cfgs, Options{Parallelism: 8})
	if sb.Parallelism != 1 {
		t.Errorf("serial batch used %d workers", sb.Parallelism)
	}
	if pb.Parallelism != len(cfgs) {
		t.Errorf("parallel batch used %d workers, want %d", pb.Parallelism, len(cfgs))
	}
	for i := range cfgs {
		s, p := ser[i].Ch, par[i].Ch
		if s.Cfg.Workload != cfgs[i].Workload || p.Cfg.Workload != cfgs[i].Workload {
			t.Fatalf("slot %d holds the wrong workload (order not preserved)", i)
		}
		if got, want := p.NonIdle(), s.NonIdle(); got != want {
			t.Errorf("run %d: non-idle cycles %d (parallel) vs %d (serial)", i, got, want)
		}
		if got, want := p.Ops.CtxSwitches, s.Ops.CtxSwitches; got != want {
			t.Errorf("run %d: ctx switches %d vs %d", i, got, want)
		}
		if got, want := p.Trace.Total, s.Trace.Total; got != want {
			t.Errorf("run %d: trace totals %d vs %d", i, got, want)
		}
		if v := p.Sim.Chk.Violations; v != 0 {
			t.Errorf("run %d: %d invariant violations under the pool", i, v)
		}
	}
}

func TestExperimentsStats(t *testing.T) {
	cfgs := smallCfgs()[:2]
	res, batch := Experiments(cfgs, Options{Parallelism: 1})
	if len(batch.Runs) != len(cfgs) {
		t.Fatalf("batch recorded %d runs, want %d", len(batch.Runs), len(cfgs))
	}
	for i, r := range res {
		st := r.Stats
		if st.Wall <= 0 {
			t.Errorf("run %d: wall %v", i, st.Wall)
		}
		want := int64(r.Ch.Cfg.Window+r.Ch.Cfg.Warmup) * int64(r.Ch.Cfg.NCPU)
		if st.SimCycles != want {
			t.Errorf("run %d: simulated cycles %d, want %d", i, st.SimCycles, want)
		}
		if st.MCyclesPerSec <= 0 {
			t.Errorf("run %d: throughput %v", i, st.MCyclesPerSec)
		}
		if st.Allocs == 0 || st.AllocBytes == 0 {
			t.Errorf("run %d: serial batch should carry per-run allocation counts", i)
		}
		if st.Label == "" {
			t.Errorf("run %d: empty label", i)
		}
	}
	if batch.SerialWall < batch.Runs[0].Wall {
		t.Error("serial wall below a single run's wall")
	}
	if batch.Allocs == 0 {
		t.Error("batch allocation delta is zero")
	}
	if batch.Table() == "" {
		t.Error("empty timing table")
	}
}
