// Package machineflag is the shared CLI surface of the runtime machine
// model: a -machine preset flag plus individual geometry override flags,
// registered identically by all three commands (charos, lockstat, sweep).
package machineflag

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/arch"
)

// Preset resolves a -machine preset name to its descriptor.
func Preset(name string) (arch.Machine, error) {
	switch strings.ToLower(name) {
	case "", "4d340":
		// The measured SGI 4D/340: 4×33 MHz, 64 KB I, 64 KB + 256 KB D,
		// 32 MB memory.
		return arch.Default(), nil
	case "4d380":
		// A 4D/380-like top configuration: twice the CPUs and memory of
		// the measured machine, same cache geometry.
		m := arch.Default()
		m.NCPU = 8
		m.MemBytes = 64 * 1024 * 1024
		return m, nil
	default:
		return arch.Machine{}, fmt.Errorf("unknown machine preset %q (have: 4d340, 4d380)", name)
	}
}

// ParseSize parses a byte count with an optional K/M suffix ("256K",
// "1M", "65536").
func ParseSize(s string) (int, error) {
	mult := 1
	t := strings.TrimSpace(s)
	switch {
	case strings.HasSuffix(t, "K"), strings.HasSuffix(t, "k"):
		mult, t = 1<<10, t[:len(t)-1]
	case strings.HasSuffix(t, "M"), strings.HasSuffix(t, "m"):
		mult, t = 1<<20, t[:len(t)-1]
	}
	n, err := strconv.Atoi(t)
	if err != nil {
		return 0, fmt.Errorf("bad size %q (want bytes with optional K/M suffix)", s)
	}
	return n * mult, nil
}

// Flags holds the registered flag values until Machine resolves them.
type Flags struct {
	preset      *string
	icache      *string
	icacheAssoc *int
	dl1         *string
	dl1Assoc    *int
	dl2         *string
	dl2Assoc    *int
	mem         *string
	tlb         *int
	missStall   *int
	l2Stall     *int
}

// Register installs the -machine preset flag and the geometry override
// flags on fs (use flag.CommandLine for a command's default set). Call
// Machine after fs.Parse to resolve them.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	f.preset = fs.String("machine", "4d340",
		"machine preset: 4d340 (the measured machine) or 4d380 (8 CPUs, 64 MB)")
	f.icache = fs.String("icache", "", "override I-cache size (bytes; K/M suffix ok)")
	f.icacheAssoc = fs.Int("icache-assoc", 0, "override I-cache associativity (0 = preset)")
	f.dl1 = fs.String("dcache-l1", "", "override first-level D-cache size (bytes; K/M suffix ok)")
	f.dl1Assoc = fs.Int("dcache-l1-assoc", 0, "override first-level D-cache associativity (0 = preset)")
	f.dl2 = fs.String("dcache-l2", "", "override second-level D-cache size (bytes; K/M suffix ok)")
	f.dl2Assoc = fs.Int("dcache-l2-assoc", 0, "override second-level D-cache associativity (0 = preset)")
	f.mem = fs.String("mem", "", "override main-memory size (bytes; K/M suffix ok)")
	f.tlb = fs.Int("tlb", 0, "override TLB entries per CPU (0 = preset)")
	f.missStall = fs.Int("miss-stall", 0, "override per-bus-access stall cycles (0 = preset)")
	f.l2Stall = fs.Int("l2hit-stall", -1, "override L1-miss/L2-hit stall cycles (-1 = preset)")
	return f
}

// Machine resolves the preset plus overrides into a validated descriptor.
func (f *Flags) Machine() (arch.Machine, error) {
	m, err := Preset(*f.preset)
	if err != nil {
		return m, err
	}
	size := func(dst *int, s string) error {
		if s == "" {
			return nil
		}
		n, err := ParseSize(s)
		if err != nil {
			return err
		}
		*dst = n
		return nil
	}
	if err := size(&m.ICacheSize, *f.icache); err != nil {
		return m, err
	}
	if err := size(&m.DCacheL1Size, *f.dl1); err != nil {
		return m, err
	}
	if err := size(&m.DCacheL2Size, *f.dl2); err != nil {
		return m, err
	}
	if err := size(&m.MemBytes, *f.mem); err != nil {
		return m, err
	}
	if *f.icacheAssoc > 0 {
		m.ICacheAssoc = *f.icacheAssoc
	}
	if *f.dl1Assoc > 0 {
		m.DCacheL1Assoc = *f.dl1Assoc
	}
	if *f.dl2Assoc > 0 {
		m.DCacheL2Assoc = *f.dl2Assoc
	}
	if *f.tlb > 0 {
		m.TLBEntries = *f.tlb
	}
	if *f.missStall > 0 {
		m.MissStallCycles = arch.Cycles(*f.missStall)
	}
	if *f.l2Stall >= 0 {
		m.L1MissL2HitCycles = arch.Cycles(*f.l2Stall)
	}
	return m, m.Validate()
}
