package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
)

// Handler returns the server's HTTP API:
//
//	POST /v1/jobs           submit a Request; ?wait=1 blocks until terminal.
//	                        202 accepted, 200 terminal (wait=1), 400 bad
//	                        request, 429 + Retry-After shed, 503 draining.
//	GET  /v1/jobs           list every job's status, submission order.
//	GET  /v1/jobs/{id}      one job's status; ?wait=1 blocks until terminal.
//	GET  /v1/stats          counter snapshot.
//	GET  /v1/metrics        per-shard + global cache counters, p50/p90/p99
//	                        submit-to-terminal latency, throughput, worker
//	                        pool and registry state.
//	GET  /healthz           200 while the process lives.
//	GET  /readyz            200 while admitting, 503 once draining.
//
// Completed jobs report success with the run's deterministic report;
// failed and canceled jobs report the structured error (kind, message,
// provenance cycle) instead — robustness outcomes are data, not opaque
// 500s.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req Request
	// Reject unknown fields instead of ignoring them: a typoed field
	// (e.g. "windwo") would otherwise silently run — and cache — the
	// default config. The decode error names the offending field.
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return
	}
	job, err := s.Submit(req)
	switch {
	case errors.Is(err, ErrSaturated):
		w.Header().Set("Retry-After", strconv.Itoa(int(s.RetryAfter().Seconds()+0.999)))
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
		return
	case errors.Is(err, ErrDrainingSubmit):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		return
	case err != nil:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	if r.URL.Query().Get("wait") == "1" {
		select {
		case <-job.Done():
			writeJSON(w, http.StatusOK, job.Snapshot())
		case <-r.Context().Done():
			// Client went away; the job keeps running (it is accepted).
		}
		return
	}
	writeJSON(w, http.StatusAccepted, job.Snapshot())
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
		return
	}
	if r.URL.Query().Get("wait") == "1" {
		select {
		case <-job.Done():
		case <-r.Context().Done():
			return
		}
	}
	writeJSON(w, http.StatusOK, job.Snapshot())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.Snapshot()
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}
