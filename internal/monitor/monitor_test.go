package monitor

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/bus"
)

func TestBufferFillDumpTrace(t *testing.T) {
	m := New(4)
	for i := 0; i < 3; i++ {
		m.Record(bus.Txn{Addr: arch.PAddr(i * 16), Kind: bus.TxnRead})
	}
	if f := m.FillFraction(); f != 0.75 {
		t.Errorf("FillFraction = %v, want 0.75", f)
	}
	m.Dump()
	if m.Pending() != 0 || len(m.Segments) != 1 || m.Suspends != 1 {
		t.Fatalf("after dump: pending=%d segments=%d suspends=%d", m.Pending(), len(m.Segments), m.Suspends)
	}
	m.Record(bus.Txn{Addr: 0x100, Kind: bus.TxnRead})
	tr := m.Trace()
	if len(tr) != 4 || tr[3].Addr != 0x100 {
		t.Fatalf("Trace() = %d txns, want 4 ending at 0x100", len(tr))
	}
	if m.Len() != 4 {
		t.Errorf("Len() = %d, want 4", m.Len())
	}
}

func TestBufferDrop(t *testing.T) {
	m := New(2)
	for i := 0; i < 5; i++ {
		m.Record(bus.Txn{Addr: arch.PAddr(i)})
	}
	if m.Dropped != 3 || m.Total != 5 || m.Pending() != 2 {
		t.Errorf("dropped=%d total=%d pending=%d", m.Dropped, m.Total, m.Pending())
	}
}

func TestDisable(t *testing.T) {
	m := New(10)
	m.SetEnabled(false)
	m.Record(bus.Txn{})
	if m.Pending() != 0 || m.Total != 1 {
		t.Errorf("disabled monitor kept a txn: pending=%d total=%d", m.Pending(), m.Total)
	}
	m.SetEnabled(true)
	m.Record(bus.Txn{})
	if m.Pending() != 1 {
		t.Error("re-enabled monitor did not record")
	}
}

func TestEventAddressesAreOddAndDistinct(t *testing.T) {
	seen := map[arch.PAddr]bool{}
	for e := Event(0); e < numEvents; e++ {
		a := EventAddr(e)
		if a&1 != 1 {
			t.Errorf("EventAddr(%v) = %#x is even", e, a)
		}
		if seen[a] {
			t.Errorf("duplicate event address %#x", a)
		}
		seen[a] = true
		got, ok := DecodeEventAddr(a)
		if !ok || got != e {
			t.Errorf("DecodeEventAddr(EventAddr(%v)) = %v,%v", e, got, ok)
		}
	}
}

func TestOperandRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		v %= MaxOperand
		a := OperandAddr(v)
		if a&1 != 1 {
			return false
		}
		if _, isEvent := DecodeEventAddr(a); isEvent {
			return false // operands must not alias event codes
		}
		return DecodeOperandAddr(a) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMissesAreNeverEscapes(t *testing.T) {
	// Cache-miss transactions are block-aligned, hence even.
	txn := bus.Txn{Addr: 0x12340, Kind: bus.TxnRead}
	if IsEscape(txn) {
		t.Error("block-aligned read classified as escape")
	}
	// Device-register uncached reads use even addresses.
	dev := bus.Txn{Addr: 0x680000, Kind: bus.TxnUncached}
	if IsEscape(dev) {
		t.Error("even uncached read classified as escape")
	}
	esc := bus.Txn{Addr: EventAddr(EvExitOS), Kind: bus.TxnUncached}
	if !IsEscape(esc) {
		t.Error("escape not recognized")
	}
}

func TestDecoderEventWithArgs(t *testing.T) {
	d := NewDecoder()
	// EnterOS on CPU 2 with op=3, pid=17.
	if _, ok := d.Feed(bus.Txn{Addr: EventAddr(EvEnterOS), CPU: 2, Kind: bus.TxnUncached, Ticks: 7}); ok {
		t.Fatal("event with args completed before operands")
	}
	if _, ok := d.Feed(bus.Txn{Addr: OperandAddr(3), CPU: 2, Kind: bus.TxnUncached}); ok {
		t.Fatal("completed after first of two operands")
	}
	r, ok := d.Feed(bus.Txn{Addr: OperandAddr(17), CPU: 2, Kind: bus.TxnUncached})
	if !ok || !r.IsEvent || r.Event != EvEnterOS || r.Args[0] != 3 || r.Args[1] != 17 {
		t.Fatalf("decoded %+v ok=%v", r, ok)
	}
	if r.Txn.Ticks != 7 || r.Txn.CPU != 2 {
		t.Errorf("event record lost txn metadata: %+v", r.Txn)
	}
}

func TestDecoderInterleavedCPUs(t *testing.T) {
	d := NewDecoder()
	// CPU 0 starts RunProc, CPU 1 starts PageFree, operands interleave.
	d.Feed(bus.Txn{Addr: EventAddr(EvRunProc), CPU: 0, Kind: bus.TxnUncached})
	d.Feed(bus.Txn{Addr: EventAddr(EvPageFree), CPU: 1, Kind: bus.TxnUncached})
	r1, ok1 := d.Feed(bus.Txn{Addr: OperandAddr(99), CPU: 1, Kind: bus.TxnUncached})
	r0, ok0 := d.Feed(bus.Txn{Addr: OperandAddr(42), CPU: 0, Kind: bus.TxnUncached})
	if !ok1 || r1.Event != EvPageFree || r1.Args[0] != 99 {
		t.Errorf("CPU1 event: %+v ok=%v", r1, ok1)
	}
	if !ok0 || r0.Event != EvRunProc || r0.Args[0] != 42 {
		t.Errorf("CPU0 event: %+v ok=%v", r0, ok0)
	}
}

func TestDecoderPassesThroughMisses(t *testing.T) {
	d := NewDecoder()
	// A miss between an event start and its operand must pass through
	// (the paper: instruction misses during an escape sequence access
	// even addresses and are therefore unambiguous).
	d.Feed(bus.Txn{Addr: EventAddr(EvICacheInval), CPU: 0, Kind: bus.TxnUncached})
	r, ok := d.Feed(bus.Txn{Addr: 0x4000, CPU: 0, Kind: bus.TxnRead})
	if !ok || r.IsEvent {
		t.Fatalf("miss during escape sequence mishandled: %+v ok=%v", r, ok)
	}
	r, ok = d.Feed(bus.Txn{Addr: OperandAddr(5), CPU: 0, Kind: bus.TxnUncached})
	if !ok || r.Event != EvICacheInval || r.Args[0] != 5 {
		t.Fatalf("event after interleaved miss: %+v ok=%v", r, ok)
	}
}

func TestDecoderMalformed(t *testing.T) {
	d := NewDecoder()
	if _, ok := d.Feed(bus.Txn{Addr: OperandAddr(1), CPU: 0, Kind: bus.TxnUncached}); ok {
		t.Error("stray operand produced a record")
	}
	if d.Malformed != 1 {
		t.Errorf("Malformed = %d, want 1", d.Malformed)
	}
}

func TestDecodeWholeTrace(t *testing.T) {
	trace := []bus.Txn{
		{Addr: EventAddr(EvTraceStart), CPU: 0, Kind: bus.TxnUncached},
		{Addr: 0x1000, CPU: 0, Kind: bus.TxnRead},
		{Addr: EventAddr(EvExitOS), CPU: 1, Kind: bus.TxnUncached},
		{Addr: 0x2000, CPU: 1, Kind: bus.TxnReadEx},
	}
	recs := Decode(trace)
	if len(recs) != 4 {
		t.Fatalf("Decode returned %d records, want 4", len(recs))
	}
	if !recs[0].IsEvent || recs[0].Event != EvTraceStart {
		t.Error("first record should be TraceStart")
	}
	if recs[1].IsEvent || recs[1].Txn.Addr != 0x1000 {
		t.Error("second record should be the miss")
	}
}

func TestEventArityAndString(t *testing.T) {
	if EvTLBChange.Arity() != 4 || EvExitOS.Arity() != 0 || EvEnterOS.Arity() != 2 {
		t.Error("arities wrong")
	}
	if Event(200).Arity() != 0 {
		t.Error("out-of-range arity should be 0")
	}
	if EvTLBChange.String() != "TLBChange" || Event(200).String() == "" {
		t.Error("event strings wrong")
	}
}

func TestDiscardRecorder(t *testing.T) {
	d := &Discard{}
	d.Record(bus.Txn{})
	d.Record(bus.Txn{})
	if d.Total != 2 {
		t.Errorf("Discard.Total = %d, want 2", d.Total)
	}
}

// TestQuickDecoderInterleavedRoundTrip: events emitted by different CPUs
// with their operand reads arbitrarily interleaved on the bus decode back
// to exactly the events each CPU emitted, in per-CPU order — the
// postprocessor property the paper's escape encoding depends on.
func TestQuickDecoderInterleavedRoundTrip(t *testing.T) {
	type emitted struct {
		cpu arch.CPUID
		ev  Event
		arg uint32
	}
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		// Build per-CPU event queues using one-operand events.
		var want [4][]emitted
		var streams [4][]bus.Txn
		for i := 0; i < int(n%40)+1; i++ {
			cpu := arch.CPUID(rng.Intn(4))
			e := emitted{cpu: cpu, ev: EvUTLB, arg: rng.Uint32() % MaxOperand}
			want[cpu] = append(want[cpu], e)
			streams[cpu] = append(streams[cpu],
				bus.Txn{Kind: bus.TxnUncached, CPU: cpu, Addr: EventAddr(e.ev)},
				bus.Txn{Kind: bus.TxnUncached, CPU: cpu, Addr: OperandAddr(e.arg)})
		}
		// Interleave the four streams randomly, preserving per-CPU order.
		var trace []bus.Txn
		idx := [4]int{}
		for {
			live := []int{}
			for c := 0; c < 4; c++ {
				if idx[c] < len(streams[c]) {
					live = append(live, c)
				}
			}
			if len(live) == 0 {
				break
			}
			c := live[rng.Intn(len(live))]
			trace = append(trace, streams[c][idx[c]])
			idx[c]++
		}
		dec := NewDecoder()
		var got [4][]emitted
		for _, t := range trace {
			rec, done := dec.Feed(t)
			if done && rec.IsEvent {
				got[rec.Txn.CPU] = append(got[rec.Txn.CPU],
					emitted{cpu: rec.Txn.CPU, ev: rec.Event, arg: rec.Args[0]})
			}
		}
		if dec.Malformed != 0 {
			return false
		}
		for c := 0; c < 4; c++ {
			if len(got[c]) != len(want[c]) {
				return false
			}
			for i := range got[c] {
				if got[c][i] != want[c][i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
