package workload

import (
	"repro/internal/kernel"
)

// Pmake: a parallel make of 56 C files averaging 480 lines, with at most
// 8 compile jobs at once (Section 3). Each job opens and reads its source,
// alternates compute-intensive compiler phases with further reads, writes
// the object file, and exits. The make master spawns jobs up to the
// concurrency limit and waits when it is reached; when all 56 files are
// built it starts over, so the traced stretch is statistically stationary.

const (
	pmakeFiles   = 56
	pmakeMaxJobs = 8

	srcInodeBase = 1000
	objInodeBase = 2000
	makefileIno  = 999
)

// ccJob compiles one file.
type ccJob struct {
	file  int
	seq   int // distinct per job instance: cpp output and temporaries
	stage int
	reads int
	comps int
	wrote int
	off   int64
}

// Next drives the compile pipeline: open → read/compute interleave →
// write object → close → exit.
func (j *ccJob) Next(k *kernel.Kernel, p *kernel.Proc) kernel.Action {
	switch {
	case j.stage == 0:
		j.stage++
		j.reads = 2 + k.Rand.Intn(3)
		j.comps = 10 + k.Rand.Intn(8)
		return syscall(kernel.SyscallReq{Kind: kernel.SysOpen, Inode: srcInodeBase + j.file})
	case j.reads > 0:
		j.reads--
		// Sources, headers and temporaries: mostly cold pages, so
		// the job blocks on the disk (Pmake "usually exhibits heavy
		// I/O activity", Section 3).
		j.off = int64(j.seq*32+j.reads) * 4096
		return syscall(kernel.SyscallReq{Kind: kernel.SysRead,
			Inode: srcInodeBase + j.file, Offset: j.off, Bytes: 1024})
	case j.comps > 0:
		j.comps--
		// The optimizing phase: compute-intensive stretches.
		return compute(k, 62_000)
	case j.wrote < 2:
		j.wrote++
		return syscall(kernel.SyscallReq{Kind: kernel.SysWrite,
			Inode:  objInodeBase + j.file,
			Offset: int64(j.seq*8+j.wrote) * 4096, Bytes: 1536})
	case j.stage == 1:
		j.stage++
		return syscall(kernel.SyscallReq{Kind: kernel.SysClose, Inode: srcInodeBase + j.file})
	default:
		return kernel.Action{Kind: kernel.ActExit}
	}
}

// makeMaster spawns compile jobs, at most pmakeMaxJobs at once. A compile
// runs one of the compiler passes (cpp, ccom, as, ld) — distinct binaries,
// so an image occasionally has no live process, its text joins the page
// cache, and a later reallocation of those frames forces the I-cache
// flush that produces Inval misses.
type makeMaster struct {
	passes []*kernel.Image
	next   int
	tick   int
}

// Next alternates bookkeeping with spawning and waiting.
func (m *makeMaster) Next(k *kernel.Kernel, p *kernel.Proc) kernel.Action {
	m.tick++
	switch {
	case m.tick%13 == 0:
		// Re-read the Makefile and dependency state.
		return syscall(kernel.SyscallReq{Kind: kernel.SysRead,
			Inode: makefileIno, Offset: int64(m.tick % 4 * 4096), Bytes: 1024})
	case m.tick%29 == 0:
		return syscall(kernel.SyscallReq{Kind: kernel.SysMisc})
	case p.LiveChildren >= pmakeMaxJobs:
		return syscall(kernel.SyscallReq{Kind: kernel.SysWait})
	default:
		file := m.next % pmakeFiles
		m.next++
		spec := &kernel.ProcSpec{
			Name:         "cc",
			Image:        m.passes[k.Rand.Intn(len(m.passes))],
			DataPages:    8, // parser tables, symbol table, IR
			DataHotPages: 5,
			WritePct:     35,
			Behavior:     &ccJob{file: file, seq: m.next},
		}
		return syscall(kernel.SyscallReq{Kind: kernel.SysSpawn, Child: spec})
	}
}

// SetupPmake creates the make master (jobs are spawned dynamically).
func SetupPmake(k *kernel.Kernel) {
	passes := []*kernel.Image{
		k.NewImage("sh", 4),
		k.NewImage("cpp", 8),
		k.NewImage("ccom", 12),
		k.NewImage("as", 8),
		k.NewImage("ld", 10),
		k.NewImage("ar", 5),
		k.NewImage("touch", 3),
	}
	k.CreateProc(&kernel.ProcSpec{
		Name:         "make",
		Premap:       true,
		Image:        k.NewImage("make", 6),
		DataPages:    6,
		DataHotPages: 3,
		Behavior:     &makeMaster{passes: passes},
	})
}
