package service

import "sync"

// Outcome is the terminal state of an executed run, as stored in the
// cache and delivered to every job that asked for the same config.
type Outcome struct {
	// Report is the deterministic report.Single rendering (success only).
	Report string
	// Err is the structured run error (*core.CanceledError or
	// *runner.PanicError), nil on success.
	Err error
	// Cycle is the simulated cycle reached (the full window on success,
	// the abort point otherwise).
	Cycle int64
}

// Cache is the content-addressed result store: runs are deterministic,
// so a completed outcome is fully determined by the canonical config
// hash. It doubles as the singleflight table — concurrent submissions of
// the same hash share one execution, with followers waiting on the
// leader's entry instead of occupying queue slots.
type Cache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	// Hits counts servings that required no new execution (completed
	// entries and singleflight followers alike).
	hits int64
}

type cacheEntry struct {
	done     chan struct{} // closed when outcome is set
	outcome  Outcome
	inflight bool
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[string]*cacheEntry)}
}

// Begin claims hash for execution. The first caller per hash becomes the
// leader (leader=true) and must call Complete exactly once; every other
// caller gets the same entry to Wait on. Completed entries stay resident,
// so a re-submission of a finished config is a pure cache hit.
func (c *Cache) Begin(hash string) (e *cacheEntry, leader bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[hash]; ok {
		c.hits++
		return e, false
	}
	e = &cacheEntry{done: make(chan struct{}), inflight: true}
	c.entries[hash] = e
	return e, true
}

// Abandon releases a leader's claim without executing (the job was shed
// at admission). Followers that attached in the meantime keep waiting on
// the entry only if it is re-claimed; to keep the invariant simple the
// entry is resolved as the given outcome instead.
func (c *Cache) Abandon(hash string, e *cacheEntry, out Outcome) {
	c.mu.Lock()
	delete(c.entries, hash)
	c.mu.Unlock()
	e.outcome = out
	e.inflight = false
	close(e.done)
}

// Complete resolves the leader's entry. Successful and panicked outcomes
// are deterministic, so they stay cached; canceled outcomes depend on
// wall-clock timing, so the entry is evicted — current waiters still get
// the outcome, but a later resubmission re-runs.
func (c *Cache) Complete(hash string, e *cacheEntry, out Outcome) {
	c.mu.Lock()
	if out.Err != nil && out.Report == "" && !deterministicErr(out.Err) {
		delete(c.entries, hash)
	}
	c.mu.Unlock()
	e.outcome = out
	e.inflight = false
	close(e.done)
}

// Wait blocks until the entry resolves and returns its outcome.
func (e *cacheEntry) Wait() Outcome {
	<-e.done
	return e.outcome
}

// Resolved reports whether the entry already holds an outcome.
func (e *cacheEntry) Resolved() bool {
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

// Hits returns how many submissions were served without a new execution.
func (c *Cache) Hits() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits
}

// Len returns the number of resident entries (in-flight included).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
