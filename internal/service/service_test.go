package service

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/report"
)

// smallReq is a job small enough for the race detector.
func smallReq(seed int64) Request {
	return Request{Workload: "Pmake", Seed: seed, Window: 400_000, Warmup: 200_000}
}

// longReq occupies a worker for seconds — drain/shed tests cancel it.
func longReq(seed int64) Request {
	return Request{Workload: "Pmake", Seed: seed, Window: 500_000_000}
}

func newTestServer(t *testing.T, opts Options) (*Server, *Client) {
	t.Helper()
	if opts.Logf == nil {
		opts.Logf = t.Logf
	}
	srv := New(opts)
	hts := httptest.NewServer(srv.Handler())
	t.Cleanup(hts.Close)
	cl := &Client{Base: hts.URL, BaseDelay: 10 * time.Millisecond}
	return srv, cl
}

// TestReportMatchesSerialRun: the service's payload for a config must be
// byte-identical to report.Single over a plain serial core.Run.
func TestReportMatchesSerialRun(t *testing.T) {
	req := smallReq(21)
	cfg, err := req.Config()
	if err != nil {
		t.Fatal(err)
	}
	want := report.Single(core.Run(cfg))

	_, cl := newTestServer(t, Options{Workers: 2})
	st, err := cl.Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("job ended %s (%s): %s", st.State, st.ErrorKind, st.Error)
	}
	if st.Report != want {
		t.Errorf("service report diverged from serial run:\n--- serial\n%s\n--- service\n%s", want, st.Report)
	}
	if st.Hash != cfg.Hash() {
		t.Errorf("status hash %q != config hash %q", st.Hash, cfg.Hash())
	}
}

// TestPanicIsolationOverHTTP: a forced-panic job resolves as a
// structured failure while a concurrent healthy job completes, and the
// worker pool survives to run more jobs.
func TestPanicIsolationOverHTTP(t *testing.T) {
	srv, cl := newTestServer(t, Options{Workers: 1, TestHooks: true})
	ctx := context.Background()

	bad := smallReq(31)
	bad.TestPanic = true
	st, err := cl.Submit(ctx, bad)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateFailed || st.ErrorKind != "panic" {
		t.Fatalf("panic job ended state=%s kind=%s err=%q", st.State, st.ErrorKind, st.Error)
	}
	if st.Error == "" {
		t.Error("panic job carried no structured error")
	}

	// The single worker must still be alive, and the forced panic must not
	// have poisoned the cache entry for the honest version of the same
	// config (same seed, no test hook).
	st, err = cl.Submit(ctx, smallReq(31))
	if err != nil || st.State != StateDone {
		t.Fatalf("healthy job after a panic: st=%+v err=%v", st, err)
	}
	if got := srv.Stats(); got.Failed != 1 || got.Completed != 1 {
		t.Errorf("stats %+v, want 1 failed + 1 completed", got)
	}
}

// TestDeadlineJobThenCleanRerun: a job over its budget resolves as a
// structured deadline cancellation; the canceled outcome is evicted, so
// resubmitting the same config re-runs it cleanly.
func TestDeadlineJobThenCleanRerun(t *testing.T) {
	srv, cl := newTestServer(t, Options{Workers: 1})
	ctx := context.Background()

	req := Request{Workload: "Multpgm", Seed: 41, Window: 500_000_000, TimeoutMS: 30}
	st, err := cl.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCanceled || st.ErrorKind != "deadline" {
		t.Fatalf("deadline job ended state=%s kind=%s err=%q", st.State, st.ErrorKind, st.Error)
	}

	// Same canonical config (TimeoutMS is not part of the hash), generous
	// budget: must execute fresh, not replay the canceled outcome.
	req.Window = 400_000
	req.TimeoutMS = 0
	st, err = cl.Submit(ctx, req)
	if err != nil || st.State != StateDone {
		t.Fatalf("rerun after deadline: st=%+v err=%v", st, err)
	}
	if got := srv.Stats(); got.Canceled != 1 || got.Completed != 1 {
		t.Errorf("stats %+v, want 1 canceled + 1 completed", got)
	}
}

// TestShedsWith429WhenSaturated: with the single worker pinned and the
// queue full, further submissions shed as ErrSaturated / HTTP 429 with a
// Retry-After hint — they never block or grow the queue.
func TestShedsWith429WhenSaturated(t *testing.T) {
	srv, cl := newTestServer(t, Options{
		Workers: 1, QueueDepth: 1, RetryAfter: 2 * time.Second,
		DrainFinish: false, DrainTimeout: 10 * time.Second,
	})
	defer srv.Drain() // cancels the pinned long runs

	// Pin the worker: submit one long run and wait until it is actually
	// executing (so it no longer occupies the queue slot), then fill the
	// one slot with a second long run. Every further submission must shed.
	pinned, err := srv.Submit(longReq(51))
	if err != nil {
		t.Fatal(err)
	}
	for pinned.Snapshot().State != StateRunning {
		time.Sleep(time.Millisecond)
	}
	if _, err := srv.Submit(longReq(52)); err != nil {
		t.Fatalf("queue-filler rejected: %v", err)
	}
	if _, err := srv.Submit(longReq(53)); !errors.Is(err, ErrSaturated) {
		t.Fatalf("saturated submit returned %v, want ErrSaturated", err)
	}

	// Over HTTP the shed is a 429 with Retry-After (no-retry client, so
	// the first response comes straight back).
	noRetry := &Client{Base: cl.Base, Retries: -1}
	st, err := noRetry.SubmitAsync(context.Background(), longReq(99))
	var remote *RemoteError
	if err == nil {
		t.Fatalf("saturated submit over HTTP succeeded: %+v", st)
	}
	if !errors.As(err, &remote) || remote.Code != http.StatusTooManyRequests {
		t.Fatalf("HTTP shed error = %v, want 429", err)
	}
	if srv.Stats().Shed == 0 {
		t.Error("shed counter never moved")
	}
}

// TestDrainResolvesEveryAcceptedJob: SIGTERM semantics — admission stops
// (503 on readyz and submit), and every accepted job reaches a terminal
// state before Drain returns.
func TestDrainResolvesEveryAcceptedJob(t *testing.T) {
	srv, cl := newTestServer(t, Options{
		Workers: 2, QueueDepth: 16,
		DrainFinish: false, DrainTimeout: 10 * time.Second,
	})
	ctx := context.Background()

	// A mix: two long runs (will be canceled by the drain) and two queued
	// small ones.
	for seed := int64(61); seed <= 64; seed++ {
		if _, err := srv.Submit(longReq(seed)); err != nil {
			t.Fatal(err)
		}
	}
	srv.Drain()

	if !srv.Draining() {
		t.Error("server not draining after Drain")
	}
	for _, job := range srv.Jobs() {
		st := job.Snapshot()
		if st.State != StateDone && st.State != StateFailed && st.State != StateCanceled {
			t.Errorf("job %s left unresolved in state %s", st.ID, st.State)
		}
	}
	stats := srv.Stats()
	if got := stats.Completed + stats.Failed + stats.Canceled; got != stats.Accepted {
		t.Errorf("%d of %d accepted jobs resolved", got, stats.Accepted)
	}

	// Post-drain: readyz 503, submissions 503.
	resp, err := http.Get(cl.Base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz after drain = %d, want 503", resp.StatusCode)
	}
	noRetry := &Client{Base: cl.Base, Retries: -1}
	_, err = noRetry.SubmitAsync(ctx, smallReq(65))
	var remote *RemoteError
	if !errors.As(err, &remote) || remote.Code != http.StatusServiceUnavailable {
		t.Errorf("submit after drain = %v, want 503", err)
	}
}

// TestSingleflightDedup: N concurrent submissions of one config execute
// once and all receive the identical report.
func TestSingleflightDedup(t *testing.T) {
	srv, cl := newTestServer(t, Options{Workers: 4})
	const n = 8
	req := smallReq(71)
	reports := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := cl.Submit(context.Background(), req)
			if err == nil && st.State == StateDone {
				reports[i] = st.Report
			}
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if reports[i] == "" || reports[i] != reports[0] {
			t.Fatalf("submission %d got a different (or empty) report", i)
		}
	}
	stats := srv.Stats()
	if stats.CacheHits != n-1 {
		t.Errorf("cache hits = %d, want %d (exactly one execution)", stats.CacheHits, n-1)
	}
	if stats.Completed != n {
		t.Errorf("completed = %d, want %d (every submission resolved)", stats.Completed, n)
	}
}

// TestClientRetriesThroughShed: a client whose first attempts are shed
// backs off and lands once capacity frees up.
func TestClientRetriesThroughShed(t *testing.T) {
	srv, cl := newTestServer(t, Options{Workers: 1, QueueDepth: 1, RetryAfter: 20 * time.Millisecond})
	_ = srv
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// Saturate with short jobs, then submit one more: early attempts shed,
	// the retry loop must push it through as the backlog clears.
	var wg sync.WaitGroup
	for seed := int64(81); seed <= 83; seed++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			cl.Submit(ctx, smallReq(seed))
		}(seed)
	}
	st, err := cl.Submit(ctx, smallReq(89))
	wg.Wait()
	if err != nil {
		t.Fatalf("retrying submit failed: %v", err)
	}
	if st.State != StateDone {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}
}

// TestWatchdogKillsFrozenHeartbeat drives the watchdog directly with a
// heartbeat that never advances.
func TestWatchdogKillsFrozenHeartbeat(t *testing.T) {
	srv := New(Options{
		Workers: 1, StallTimeout: 30 * time.Millisecond, WatchdogPoll: 5 * time.Millisecond,
		Logf: t.Logf,
	})
	defer srv.Drain()
	job := &Job{ID: "frozen", done: make(chan struct{})}
	job.progress = func() arch.Cycles { return 42 } // alive but wedged
	ctx, cancel := context.WithCancelCause(context.Background())
	runDone := make(chan struct{})
	defer close(runDone)
	go srv.watchdog(ctx, cancel, job, runDone)
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("watchdog never fired on a frozen heartbeat")
	}
	if cause := context.Cause(ctx); !errors.Is(cause, ErrStalled) {
		t.Errorf("kill cause = %v, want ErrStalled", cause)
	}
	if errorKind(&core.CanceledError{Cause: ErrStalled}) != "stalled" {
		t.Error("stalled cancellations misclassified")
	}
}

func TestRequestValidation(t *testing.T) {
	srv, cl := newTestServer(t, Options{Workers: 1})
	if _, err := srv.Submit(Request{Workload: "NoSuchWorkload"}); err == nil {
		t.Error("bogus workload admitted")
	}
	bad := smallReq(1)
	bad.TestPanic = true // server runs without test hooks
	if _, err := srv.Submit(bad); err == nil {
		t.Error("test_panic admitted without test hooks")
	}
	// Over HTTP these are 400s, which the client must not retry.
	noRetry := &Client{Base: cl.Base}
	_, err := noRetry.SubmitAsync(context.Background(), Request{Workload: "NoSuchWorkload"})
	var remote *RemoteError
	if !errors.As(err, &remote) || remote.Code != http.StatusBadRequest {
		t.Errorf("bogus workload over HTTP = %v, want 400", err)
	}
}
