// Package inject is a seeded, deterministic fault injector for the
// simulator. It perturbs the machine — random cache-line evictions and
// I-cache flushes, bus transaction delay jitter, extra interrupts,
// forced scheduler migrations — without ever being allowed to change
// what the programs compute: under any injection the invariant checker
// (internal/check) must still report zero violations. Faults move
// performance counters; they must never move correctness.
//
// All randomness comes from one rand.Rand seeded from the configuration,
// so a failing injected run replays exactly from its seed.
package inject

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/arch"
)

// Config selects the fault modes and their intensity. A zero period
// disables that mode.
type Config struct {
	// Seed seeds the injector's private random stream; if zero, the
	// simulator derives one from its own seed.
	Seed int64

	// EvictPeriod is the mean interval in cycles between eviction storms
	// on each CPU; EvictBurst is how many randomly chosen resident lines
	// are evicted per storm (dirty victims are written back, never
	// dropped).
	EvictPeriod arch.Cycles
	EvictBurst  int
	// IFlushPeriod is the mean interval between forced full
	// instruction-cache flushes of one CPU.
	IFlushPeriod arch.Cycles
	// JitterPct is the percentage of bus transactions whose latency is
	// stretched; JitterMax the maximum extra cycles added to one.
	JitterPct int
	JitterMax arch.Cycles
	// IntrPeriod is the mean interval between extra injected network
	// interrupts on each CPU.
	IntrPeriod arch.Cycles
	// MigratePeriod is the mean interval between forced migrations: the
	// running process is preempted and rescheduled with affinity hints
	// ignored.
	MigratePeriod arch.Cycles
}

// Enabled reports whether any fault mode is active.
func (c Config) Enabled() bool {
	return c.EvictPeriod > 0 || c.IFlushPeriod > 0 ||
		(c.JitterPct > 0 && c.JitterMax > 0) ||
		c.IntrPeriod > 0 || c.MigratePeriod > 0
}

// Modes names the active fault modes.
func (c Config) Modes() string {
	var m []string
	if c.EvictPeriod > 0 || c.IFlushPeriod > 0 {
		m = append(m, "evict")
	}
	if c.JitterPct > 0 && c.JitterMax > 0 {
		m = append(m, "jitter")
	}
	if c.IntrPeriod > 0 {
		m = append(m, "intr")
	}
	if c.MigratePeriod > 0 {
		m = append(m, "migrate")
	}
	if m == nil {
		return "none"
	}
	return strings.Join(m, ",")
}

// Preset builds a Config from a comma-separated mode list: "evict",
// "jitter", "intr", "migrate", or "all". An empty string disables
// injection.
func Preset(modes string) (Config, error) {
	var c Config
	if modes == "" || modes == "none" {
		return c, nil
	}
	for _, m := range strings.Split(modes, ",") {
		switch strings.TrimSpace(m) {
		case "evict":
			c.EvictPeriod, c.EvictBurst = 4_000, 16
			c.IFlushPeriod = 400_000
		case "jitter":
			c.JitterPct, c.JitterMax = 30, 24
		case "intr":
			c.IntrPeriod = 20_000
		case "migrate":
			c.MigratePeriod = 60_000
		case "all":
			c.EvictPeriod, c.EvictBurst = 4_000, 16
			c.IFlushPeriod = 400_000
			c.JitterPct, c.JitterMax = 30, 24
			c.IntrPeriod = 20_000
			c.MigratePeriod = 60_000
		default:
			return Config{}, fmt.Errorf("inject: unknown fault mode %q (want evict, jitter, intr, migrate, all)", m)
		}
	}
	return c, nil
}

// Stats counts the faults actually delivered.
type Stats struct {
	Evictions       int64
	IFlushes        int64
	JitteredTxns    int64
	JitterCycles    int64
	ExtraInterrupts int64
	ForcedMigrations int64
}

// Injector drives fault delivery for one simulation. Next-due times are
// kept per CPU so fault pressure is uniform across processors regardless
// of how the per-CPU clocks advance relative to each other.
type Injector struct {
	Cfg   Config
	Stats Stats

	rng         *rand.Rand
	nextEvict   []arch.Cycles
	nextIFlush  []arch.Cycles
	nextIntr    []arch.Cycles
	nextMigrate []arch.Cycles
}

// New builds an injector for ncpu processors. The caller must have
// resolved Cfg.Seed to a nonzero value.
func New(cfg Config, ncpu int) *Injector {
	in := &Injector{
		Cfg:         cfg,
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		nextEvict:   make([]arch.Cycles, ncpu),
		nextIFlush:  make([]arch.Cycles, ncpu),
		nextIntr:    make([]arch.Cycles, ncpu),
		nextMigrate: make([]arch.Cycles, ncpu),
	}
	for q := 0; q < ncpu; q++ {
		in.nextEvict[q] = in.jittered(cfg.EvictPeriod)
		in.nextIFlush[q] = in.jittered(cfg.IFlushPeriod)
		in.nextIntr[q] = in.jittered(cfg.IntrPeriod)
		in.nextMigrate[q] = in.jittered(cfg.MigratePeriod)
	}
	return in
}

// Rng exposes the injector's random stream for victim selection.
func (in *Injector) Rng() *rand.Rand { return in.rng }

// jittered draws the next due offset for a mean period: uniform in
// [period/2, 3*period/2) so storms on different CPUs drift apart.
func (in *Injector) jittered(period arch.Cycles) arch.Cycles {
	if period <= 0 {
		return 0
	}
	return period/2 + arch.Cycles(in.rng.Int63n(int64(period)))
}

func due(next []arch.Cycles, cpu int, now arch.Cycles) bool {
	return next[cpu] > 0 && now >= next[cpu]
}

// DueEvict reports whether an eviction storm is due on cpu and, if so,
// schedules the next one.
func (in *Injector) DueEvict(cpu int, now arch.Cycles) bool {
	if !due(in.nextEvict, cpu, now) {
		return false
	}
	in.nextEvict[cpu] = now + in.jittered(in.Cfg.EvictPeriod)
	return true
}

// DueIFlush reports whether a forced I-cache flush is due on cpu.
func (in *Injector) DueIFlush(cpu int, now arch.Cycles) bool {
	if !due(in.nextIFlush, cpu, now) {
		return false
	}
	in.nextIFlush[cpu] = now + in.jittered(in.Cfg.IFlushPeriod)
	return true
}

// DueIntr reports whether an extra interrupt is due on cpu.
func (in *Injector) DueIntr(cpu int, now arch.Cycles) bool {
	if !due(in.nextIntr, cpu, now) {
		return false
	}
	in.nextIntr[cpu] = now + in.jittered(in.Cfg.IntrPeriod)
	return true
}

// DueMigrate reports whether a forced migration is due on cpu.
func (in *Injector) DueMigrate(cpu int, now arch.Cycles) bool {
	if !due(in.nextMigrate, cpu, now) {
		return false
	}
	in.nextMigrate[cpu] = now + in.jittered(in.Cfg.MigratePeriod)
	return true
}

// Jitter returns the extra latency for one bus transaction (zero for
// most). It is installed as the bus's jitter hook.
func (in *Injector) Jitter() arch.Cycles {
	if in.Cfg.JitterPct <= 0 || in.Cfg.JitterMax <= 0 {
		return 0
	}
	if in.rng.Intn(100) >= in.Cfg.JitterPct {
		return 0
	}
	d := 1 + arch.Cycles(in.rng.Int63n(int64(in.Cfg.JitterMax)))
	in.Stats.JitteredTxns++
	in.Stats.JitterCycles += int64(d)
	return d
}

// String summarizes delivered faults.
func (s Stats) String() string {
	return fmt.Sprintf("evictions=%d iflushes=%d jittered-txns=%d (+%d cyc) extra-intrs=%d forced-migrations=%d",
		s.Evictions, s.IFlushes, s.JitteredTxns, s.JitterCycles, s.ExtraInterrupts, s.ForcedMigrations)
}
