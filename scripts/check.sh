#!/bin/sh
# Tier-1 verification: build, vet, full test suite with the race detector,
# then a checked fault-injection smoke run. Keep this green before merging.
set -eu

cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test -race ./internal/runner/..."
go test -race ./internal/runner/...

echo "== go test -race ./..."
go test -race ./...

echo "== checked fault-injection smoke (charos -check -inject all)"
go run ./cmd/charos -exp table1 -window 2000000 -check -inject all >/dev/null

echo "== parallel-vs-serial determinism smoke (sweep -exp figure11)"
serial=$(go run ./cmd/sweep -exp figure11 -cpus 2,4 -window 1000000 -parallel 1 2>/dev/null)
pooled=$(go run ./cmd/sweep -exp figure11 -cpus 2,4 -window 1000000 -parallel 8 2>/dev/null)
if [ "$serial" != "$pooled" ]; then
    echo "FAIL: -parallel 8 output diverges from -parallel 1" >&2
    exit 1
fi

echo "== parallel-engine determinism smoke (charos -sim-workers, race detector)"
# All three workloads, serial scheduler vs the conservative parallel
# engine at 8 intra-run workers, under the race detector: byte-identical
# output is the engine's contract at any worker count.
serialeng=$(go run -race ./cmd/charos -exp table1 -window 1000000 -sim-workers 1 2>/dev/null)
paralleng=$(go run -race ./cmd/charos -exp table1 -window 1000000 -sim-workers 8 2>/dev/null)
if [ "$serialeng" != "$paralleng" ]; then
    echo "FAIL: -sim-workers 8 output diverges from -sim-workers 1" >&2
    exit 1
fi

echo "== streaming-vs-buffered determinism smoke (charos -buffered)"
streaming=$(go run ./cmd/charos -exp table1 -window 2000000 2>/dev/null)
buffered=$(go run ./cmd/charos -exp table1 -window 2000000 -buffered 2>/dev/null)
if [ "$streaming" != "$buffered" ]; then
    echo "FAIL: streaming pipeline output diverges from the buffered oracle" >&2
    exit 1
fi

echo "== fast-vs-reference determinism smoke (charos -reference)"
reference=$(go run ./cmd/charos -exp table1 -window 2000000 -reference 2>/dev/null)
if [ "$streaming" != "$reference" ]; then
    echo "FAIL: memory-system fast path output diverges from the -reference oracle" >&2
    exit 1
fi

echo "== sampled-simulation smoke (charos -exp report -sample, checker on)"
# A sampled checked run must complete, render ±stderr error bars on the
# extrapolated miss counts, and pass the invariant checker (functional
# warming keeps the shadow state coherent through fast-forward).
sampled=$(go run ./cmd/charos -exp report -window 2000000 -sample 20K:40K:200K -check 2>/dev/null)
echo "$sampled" | grep -q 'sampling: 20K:40K:200K' || {
    echo "FAIL: sampled report did not announce its schedule" >&2; exit 1; }
echo "$sampled" | grep -q '±' || {
    echo "FAIL: sampled report carried no error bars" >&2; exit 1; }

echo "== sampling-off determinism gate (report path vs buffered oracle)"
# With no -sample, the phase-structured pipeline must render byte-for-byte
# what the buffered oracle renders — the sampling refactor cannot perturb
# unsampled runs. The buffered flag is part of the config identity, so the
# "config <hash>" lines differ by design and are filtered out.
plainrep=$(go run ./cmd/charos -exp report -window 2000000 2>/dev/null)
bufrep=$(go run ./cmd/charos -exp report -window 2000000 -buffered 2>/dev/null)
if [ "$(echo "$plainrep" | grep -v '^config ')" != "$(echo "$bufrep" | grep -v '^config ')" ]; then
    echo "FAIL: unsampled report diverges from the buffered oracle" >&2
    exit 1
fi
workrep=$(go run ./cmd/charos -exp report -window 2000000 -sim-workers 8 2>/dev/null)
if [ "$plainrep" != "$workrep" ]; then
    echo "FAIL: unsampled report diverges under -sim-workers 8" >&2
    exit 1
fi
echo "$plainrep" | grep -q 'sampling:' && {
    echo "FAIL: unsampled report mentions sampling" >&2; exit 1; }

echo "== default-machine oracle (zero Machine vs explicit arch.Default reports)"
go test -run 'TestDefaultMachineMatchesSeed' ./internal/report

echo "== geometry sweep smoke (sweep -exp geometry, checker on)"
go run ./cmd/sweep -exp geometry -window 1000000 >/dev/null

echo "== charosd smoke (panic isolation, 429 shed, SIGTERM drain)"
smoke=$(mktemp -d)
daemon=""
cleanup_smoke() {
    [ -n "$daemon" ] && kill "$daemon" 2>/dev/null || true
    rm -rf "$smoke"
}
trap 'cleanup_smoke' EXIT
go build -o "$smoke/charosd" ./cmd/charosd
caddr=127.0.0.1:18416
"$smoke/charosd" -addr "$caddr" -workers 1 -queue 1 -test-hooks \
    -drain-policy cancel -drain-timeout 20s 2> "$smoke/charosd.log" &
daemon=$!
# The submit client retries with backoff, so the first submission doubles
# as the ready-wait; it must print the run's report.
"$smoke/charosd" -submit -addr "$caddr" -seed 2 -window 400000 | grep -q '^run ' || {
    echo "FAIL: charosd returned no report for a healthy job" >&2; exit 1; }
# A forced-panic job (test hook) must resolve as a structured failure —
# nonzero exit, error kind "panic" — without killing the worker pool.
if "$smoke/charosd" -submit -addr "$caddr" -seed 2 -window 400000 -test-panic 2> "$smoke/panic.err"; then
    echo "FAIL: forced-panic job exited zero" >&2; exit 1
fi
grep -q 'panic' "$smoke/panic.err" || {
    echo "FAIL: panic job carried no structured panic error" >&2; exit 1; }
# Saturate: pin the single worker and the single queue slot with long
# runs (distinct seeds — dedup would collapse identical configs) …
"$smoke/charosd" -submit -nowait -addr "$caddr" -seed 3 -window 500000000 >/dev/null
"$smoke/charosd" -submit -nowait -addr "$caddr" -seed 4 -window 500000000 >/dev/null
# … then a no-retry submission must shed with 429 + Retry-After.
if "$smoke/charosd" -submit -nowait -retries -1 -addr "$caddr" -seed 5 -window 500000000 2> "$smoke/shed.err"; then
    echo "FAIL: saturated submission was not shed" >&2; exit 1
fi
grep -q '429' "$smoke/shed.err" || {
    echo "FAIL: shed submission did not surface the 429" >&2; exit 1; }
# SIGTERM: the drain must resolve every accepted job and exit 0.
kill -TERM "$daemon"
wait "$daemon" || { echo "FAIL: charosd exited nonzero after SIGTERM" >&2; exit 1; }
daemon=""
grep -q 'drain complete: all accepted jobs resolved' "$smoke/charosd.log" || {
    echo "FAIL: drain did not resolve all accepted jobs" >&2; exit 1; }

echo "== charosd load smoke (300 clients, sharded cache, adaptive pool)"
# A fresh daemon sized so the load overflows everything on purpose: the
# LRU cache (8 entries < 12 distinct configs), the job history (64 << 300
# jobs) and the admission queue (sheds retried by the clients). The load
# generator exits nonzero unless every client lands a byte-checked "done"
# job having seen only 200s and 429s.
laddr=127.0.0.1:18417
"$smoke/charosd" -addr "$laddr" -workers 1 -workers-max 4 -queue 4 \
    -shards 4 -cache-entries 8 -job-history 64 -retry-after 50ms \
    2> "$smoke/charosd-load.log" &
daemon=$!
"$smoke/charosd" -submit -addr "$laddr" -seed 9 -window 250000 -warmup 100000 >/dev/null
"$smoke/charosd" -load 300 -addr "$laddr" -load-hot 4 -load-distinct 8 \
    -window 250000 -warmup 100000 || {
    echo "FAIL: charosd load smoke lost clients or saw bad responses" >&2; exit 1; }
kill -TERM "$daemon"
wait "$daemon" || { echo "FAIL: charosd exited nonzero after load + SIGTERM" >&2; exit 1; }
daemon=""
grep -q 'drain complete: all accepted jobs resolved' "$smoke/charosd-load.log" || {
    echo "FAIL: post-load drain did not resolve all accepted jobs" >&2; exit 1; }

echo "== recorded benchmark gate (bench.sh compare BENCH_PR4 vs BENCH_PR5)"
scripts/bench.sh compare BENCH_PR4.json BENCH_PR5.json -threshold 50

echo "== recorded benchmark gate (bench.sh compare BENCH_PR5 vs BENCH_PR8)"
# The PR 8 recording adds the 4d380 parallel-engine benchmark (present
# only on the new side — compare skips one-sided entries) and must not
# regress the serial pipeline.
scripts/bench.sh compare BENCH_PR5.json BENCH_PR8.json -threshold 50

echo "== benchmark regression gate (bench.sh compare vs BENCH_PR8.json)"
# One quick repetition against the committed PR 8 numbers. The threshold is
# deliberately loose (noisy shared runners); tighten it for local tuning.
gate="$smoke/gate.json"
scripts/bench.sh -count 1 -bench 'BenchmarkPipeline_FullCharacterization' -phase gate -out "$gate" 2>/dev/null
scripts/bench.sh compare BENCH_PR8.json "$gate" -threshold 50

echo "ok"
