package kernel

import (
	"container/heap"
	"math/rand"
	"sort"

	"repro/internal/arch"
	"repro/internal/klock"
	"repro/internal/kmem"
	"repro/internal/monitor"
)

// Config tunes the kernel model.
type Config struct {
	// Machine is the hardware the kernel boots on; the zero value means
	// arch.Default(). NCPU, when set, overrides Machine.NCPU.
	Machine arch.Machine
	// NCPU is the number of processors (default Machine.NCPU).
	NCPU int
	// Seed drives every stochastic choice, making runs reproducible.
	Seed int64
	// Affinity enables cache-affinity scheduling (the Section 4.2.2
	// optimization): CPUs prefer ready processes that last ran on them.
	Affinity bool
	// OptimizedText lays out the kernel image with the Section 4.2.1
	// code-layout optimization (hot paths get exclusive I-cache sets).
	OptimizedText bool
	// BlockOpBypass makes block copies and clears bypass the caches
	// (the Section 4.2.2 proposal): full miss latency, no displacement
	// of resident state.
	BlockOpBypass bool
	// PrefillCachedFrames marks this many frames as holding stale page
	// cache contents at boot, modeling a machine whose memory has
	// filled during prior uptime so that reclamation (pfdat traversal)
	// occurs within short simulation windows. Default: all but
	// FreeTarget×4 frames.
	PrefillCachedFrames int
	// DiskLatencyCycles is the service time of one disk request.
	DiskLatencyCycles arch.Cycles
	// LowWater is the free-frame count that triggers a pfdat traversal.
	LowWater int
	// ReclaimTarget is how many frames a traversal tries to free.
	ReclaimTarget int
	// QuantumCycles is the scheduling quantum (default 10 ms: 333333).
	QuantumCycles arch.Cycles
	// PoolFrames is the number of page frames left in circulation after
	// boot; the rest are wired (kernel, long-lived daemons, ...). A
	// small pool recycles within the simulation window the way the real
	// machine's 32 MB recycled over minutes of uptime.
	PoolFrames int
}

func (c Config) withDefaults() Config {
	if c.Machine == (arch.Machine{}) {
		c.Machine = arch.Default()
	}
	if c.NCPU == 0 {
		c.NCPU = c.Machine.NCPU
	} else {
		c.Machine.NCPU = c.NCPU
	}
	if c.DiskLatencyCycles == 0 {
		c.DiskLatencyCycles = 230_000 // ≈7 ms
	}
	if c.LowWater == 0 {
		c.LowWater = 96
	}
	if c.ReclaimTarget == 0 {
		c.ReclaimTarget = 192
	}
	if c.QuantumCycles == 0 {
		// Half the 10 ms tick: CPU hogs decay in priority and lose
		// the CPU quickly under timesharing load.
		c.QuantumCycles = arch.ClockTickCycles / 2
	}
	if c.PoolFrames == 0 {
		c.PoolFrames = 256
	}
	return c
}

// OpKind is the high-level OS operation of Table 8, recorded in the
// EnterOS escape and counted for Figures 2 and 9.
type OpKind uint8

const (
	// OpExpensiveTLB is a TLB fault requiring physical page allocation.
	OpExpensiveTLB OpKind = iota
	// OpCheapTLB is a TLB fault that only copies a translation (UTLB
	// faults and other cheap refills).
	OpCheapTLB
	// OpIOSyscall is a file-system read or write system call.
	OpIOSyscall
	// OpSginap is the CPU-reschedule call issued by the user
	// synchronization library.
	OpSginap
	// OpOtherSyscall is every remaining system call.
	OpOtherSyscall
	// OpInterrupt is any interrupt (disk, terminal, inter-CPU, clock,
	// network).
	OpInterrupt

	// NumOps is the number of operation kinds.
	NumOps
)

// String returns the Table 8 operation name.
func (o OpKind) String() string {
	switch o {
	case OpExpensiveTLB:
		return "Expensive TLB Faults"
	case OpCheapTLB:
		return "Cheap TLB Faults"
	case OpIOSyscall:
		return "I/O System Calls"
	case OpSginap:
		return "Sginap System Call"
	case OpOtherSyscall:
		return "Other System Calls"
	case OpInterrupt:
		return "Interrupts"
	default:
		return "?"
	}
}

// BlockOpKind distinguishes the three block operations of Section 4.2.2.
type BlockOpKind uint8

const (
	// BlockCopy is bcopy (page copies, buffer transfers, argument
	// copies).
	BlockCopy BlockOpKind = iota
	// BlockClear is bclear (demand-zero pages, structure
	// initialization).
	BlockClear
	// BlockTraverse is the pfdat traversal looking for reclaimable
	// pages.
	BlockTraverse
)

// BlockOpRec logs one block operation for Table 7.
type BlockOpRec struct {
	Kind  BlockOpKind
	Bytes int
	// Why is a short label of the operation's cause, used by Table 7's
	// examples column.
	Why string
}

type fileKey struct {
	inode int
	page  int64
}

// AsyncEvent is a scheduled asynchronous completion (disk or network
// interrupt) delivered to a specific CPU.
type AsyncEvent struct {
	At   arch.Cycles
	Kind IntrKind
	Ch   SleepChan
	CPU  arch.CPUID
}

// IntrKind labels interrupt sources.
type IntrKind uint8

const (
	// IntrDisk is a disk-controller completion.
	IntrDisk IntrKind = iota
	// IntrNet is a network packet (CPU 1 only).
	IntrNet
	// IntrClock is the 10 ms scheduler tick.
	IntrClock
)

type eventHeap []AsyncEvent

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return h[i].At < h[j].At }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(AsyncEvent)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

type timer struct {
	at arch.Cycles
	ch SleepChan
}

// Kernel is the operating system instance.
type Kernel struct {
	Cfg   Config
	L     *kmem.Layout
	F     *kmem.Frames
	T     *KText
	rt    rtab // interned routine pointers (hot-path form of T.R)
	Locks *klock.Registry
	Rand  *rand.Rand

	procs   []*Proc
	nextPID arch.PID

	// Two-class run queue (SVR3-style priorities, simplified): the
	// high queue holds interactive processes (recent sleepers and
	// yielders, e.g. sginap callers); the low queue holds CPU hogs.
	// Clock ticks age low-queue processes into the high queue.
	runqHi []*Proc
	runqLo []*Proc
	sleepQ map[SleepChan][]*Proc
	nextCh SleepChan

	pipes      []*Pipe
	nextPipeID int

	// UserLocks are the user-level synchronization-library locks the
	// workload registered (excluded from OS lock statistics).
	UserLocks []*klock.Lock

	events eventHeap
	timers []timer // unsorted; scanned at clock ticks (callout table)

	// OnEventPost, when non-nil, is called after every event post with
	// the target CPU and the delivery time. The parallel engine uses it
	// to discard that CPU's speculated steps from the first one whose
	// entry clock is at or past the delivery time: those were run
	// against an event horizon that no longer holds, while earlier steps
	// would have run identically (the serial engine only checks for due
	// events at step boundaries).
	OnEventPost func(cpu arch.CPUID, at arch.Cycles)

	// Page/text caches.
	fileCache map[fileKey]uint32
	frameFile map[uint32]fileKey
	textCache map[int][]uint32  // image id → frames (index = code page)
	frameText map[uint32][2]int // frame → (image id, page index)
	textRef   map[int]int       // image id → live mappers
	// sharedRef counts live mappers of each shared data frame.
	sharedRef map[uint32]int

	// Statistics.
	OpCounts     [NumOps]int64
	BlockOps     []BlockOpRec
	CtxSwitches  int64
	Migrations   int64
	Spawns       int64
	Exits        int64
	DiskRequests int64
	Traversals   int64
	// TextCacheEvents counts image-text retirements to the page cache;
	// CodeFrameReuses counts reallocations of frames that held code
	// (each forcing an I-cache flush).
	TextCacheEvents int64
	CodeFrameReuses int64

	imageSeq int
}

// Counters is a snapshot of the kernel's cumulative statistics, used to
// restrict reported numbers to the traced window.
type Counters struct {
	OpCounts     [NumOps]int64
	CtxSwitches  int64
	Migrations   int64
	Spawns       int64
	Exits        int64
	DiskRequests int64
	Traversals   int64
	BlockOps     int // index into BlockOps at snapshot time
}

// Counters returns the current snapshot.
func (k *Kernel) Counters() Counters {
	return Counters{
		OpCounts:     k.OpCounts,
		CtxSwitches:  k.CtxSwitches,
		Migrations:   k.Migrations,
		Spawns:       k.Spawns,
		Exits:        k.Exits,
		DiskRequests: k.DiskRequests,
		Traversals:   k.Traversals,
		BlockOps:     len(k.BlockOps),
	}
}

// Sub returns the counter deltas since base.
func (c Counters) Sub(base Counters) Counters {
	out := c
	for i := range out.OpCounts {
		out.OpCounts[i] -= base.OpCounts[i]
	}
	out.CtxSwitches -= base.CtxSwitches
	out.Migrations -= base.Migrations
	out.Spawns -= base.Spawns
	out.Exits -= base.Exits
	out.DiskRequests -= base.DiskRequests
	out.Traversals -= base.Traversals
	return out
}

// BlockOpsSince returns the block operations logged after the snapshot.
func (k *Kernel) BlockOpsSince(base Counters) []BlockOpRec {
	if base.BlockOps > len(k.BlockOps) {
		return nil
	}
	return k.BlockOps[base.BlockOps:]
}

// New boots a kernel.
func New(cfg Config) *Kernel {
	cfg = cfg.withDefaults()
	layout := kmem.NewLayout(cfg.Machine)
	if cfg.PrefillCachedFrames == 0 {
		// Default: all but FreeTarget×4 pageable frames hold stale
		// page-cache contents at boot (resolved here because the count
		// depends on the machine's memory size).
		cfg.PrefillCachedFrames = layout.Pageable - 360
	}
	k := &Kernel{
		Cfg:       cfg,
		L:         layout,
		F:         kmem.NewFrames(layout.Reserved, layout.Pageable),
		Rand:      rand.New(rand.NewSource(cfg.Seed)),
		procs:     make([]*Proc, kmem.NumProcs),
		sleepQ:    make(map[SleepChan][]*Proc),
		fileCache: make(map[fileKey]uint32),
		frameFile: make(map[uint32]fileKey),
		textCache: make(map[int][]uint32),
		frameText: make(map[uint32][2]int),
		textRef:   make(map[int]int),
		sharedRef: make(map[uint32]int),
		nextPID:   1,
	}
	if cfg.OptimizedText {
		k.T = NewKTextOptimized(k.L.KernelText.Base, cfg.Machine)
	} else {
		k.T = NewKText(k.L.KernelText.Base, cfg.Machine)
	}
	k.rt = newRtab(k.T)
	k.Locks = klock.NewRegistry(kmem.NumProcs, 16, kmem.NumInodes, 32)
	// Model a warmed machine: most frames hold stale page-cache data
	// and are reclaimable only by pfdat traversal.
	for i := 0; i < cfg.PrefillCachedFrames; i++ {
		fr, _, ok := k.F.Alloc(kmem.FrameBuf, arch.NoPID, 0)
		if !ok {
			break
		}
		key := fileKey{inode: -1, page: int64(i)}
		k.fileCache[key] = fr
		k.frameFile[fr] = key
		k.F.CacheFrame(fr)
	}
	return k
}

// NewImage registers a program image.
func (k *Kernel) NewImage(name string, codePages int) *Image {
	k.imageSeq++
	return &Image{ID: k.imageSeq, Name: name, CodePages: codePages}
}

// NewChan allocates a sleep channel.
func (k *Kernel) NewChan() SleepChan {
	k.nextCh++
	return k.nextCh
}

// RegisterUserLock creates a user-level synchronization-library lock.
func (k *Kernel) RegisterUserLock(name string) *klock.Lock {
	l := klock.NewLock(name)
	l.User = true
	k.UserLocks = append(k.UserLocks, l)
	return l
}

// NewPipe allocates a pipe.
func (k *Kernel) NewPipe() *Pipe {
	k.nextPipeID++
	p := &Pipe{ID: k.nextPipeID, readCh: k.NewChan()}
	k.pipes = append(k.pipes, p)
	return p
}

// Procs returns the live processes (for tests and reports).
func (k *Kernel) Procs() []*Proc {
	out := make([]*Proc, 0, 16)
	for _, p := range k.procs {
		if p != nil && p.State != StateFree && p.State != StateZombie {
			out = append(out, p)
		}
	}
	return out
}

// ---- process creation ----

// vpage bases of the process virtual layout.
const (
	CodeVBase   = 0x100
	DataVBase   = 0x400
	SharedVBase = 0x800
)

// CreateProc installs a process at boot time without charging any CPU
// traffic (the workload's initial processes). Use SysSpawn for processes
// created during the run.
func (k *Kernel) CreateProc(spec *ProcSpec) *Proc {
	slot := k.freeSlot()
	p := &Proc{
		PID:           k.nextPID,
		Slot:          slot,
		Name:          spec.Name,
		State:         StateReady,
		Behavior:      spec.Behavior,
		pages:         make(map[uint32]PageInfo),
		image:         spec.Image,
		sleepOn:       NoChan,
		ChildExitChan: k.NewChan(),
		LastCPU:       -1,
	}
	k.nextPID++
	k.procs[slot] = p
	k.initFootprint(p, spec)
	if spec.Premap {
		k.premap(p) // premap counts the text reference itself
	} else if spec.Image != nil {
		k.textRef[spec.Image.ID]++
	}
	k.runqHi = append(k.runqHi, p)
	return p
}

// premap silently maps a boot process's entire footprint (no CPU traffic;
// the pages were faulted long before tracing started).
func (k *Kernel) premap(p *Proc) {
	alloc := func(kind kmem.FrameKind, vp uint32) uint32 {
		fr, _, ok := k.F.Alloc(kind, p.PID, vp)
		if !ok {
			// Reclaim stale page-cache frames exactly as a
			// pre-trace pfdat traversal would have.
			for _, rfr := range k.F.Reclaim(k.Cfg.ReclaimTarget) {
				k.forgetFrame(rfr)
			}
			fr, _, ok = k.F.Alloc(kind, p.PID, vp)
			if !ok {
				panic("kernel: premap out of memory")
			}
		}
		return fr
	}
	if p.image != nil {
		cachePages := k.textCache[p.image.ID]
		if cachePages == nil {
			cachePages = make([]uint32, p.image.CodePages)
			k.textCache[p.image.ID] = cachePages
		}
		k.textRef[p.image.ID]++
		for i, vp := range p.FP.CodeVPages {
			fr := cachePages[i]
			if fr == 0 || k.F.State(fr) == kmem.StateFree {
				fr = alloc(kmem.FrameCode, vp)
				cachePages[i] = fr
				k.frameText[fr] = [2]int{p.image.ID, i}
			} else if k.F.State(fr) == kmem.StateCached {
				k.F.Reactivate(fr)
			}
			p.pages[vp] = PageInfo{Frame: fr, Code: true, Shared: true}
		}
	}
	for _, vp := range p.FP.DataVPages {
		p.pages[vp] = PageInfo{Frame: alloc(kmem.FrameData, vp)}
	}
	for _, vp := range p.FP.SharedVPages {
		if p.sharedLeader != nil {
			if pi, ok := p.sharedLeader.pages[vp]; ok {
				p.pages[vp] = PageInfo{Frame: pi.Frame, Shared: true}
				k.sharedRef[pi.Frame]++
				continue
			}
		}
		pi := PageInfo{Frame: alloc(kmem.FrameData, vp), Shared: true}
		p.pages[vp] = pi
		k.sharedRef[pi.Frame]++
		if p.sharedLeader != nil {
			p.sharedLeader.pages[vp] = pi
			k.sharedRef[pi.Frame]++
		}
	}
}

func (k *Kernel) freeSlot() int {
	for i, pr := range k.procs {
		if pr == nil || pr.State == StateFree {
			return i
		}
	}
	panic("kernel: process table full")
}

func (k *Kernel) initFootprint(p *Proc, spec *ProcSpec) {
	fp := &p.FP
	img := spec.Image
	if img != nil {
		for i := 0; i < img.CodePages; i++ {
			fp.CodeVPages = append(fp.CodeVPages, uint32(CodeVBase+i))
		}
	}
	for i := 0; i < spec.DataPages; i++ {
		fp.DataVPages = append(fp.DataVPages, uint32(DataVBase+i))
	}
	if spec.SharedWith != nil {
		// Map the leader's shared pages at the same virtual addresses
		// and, crucially, the same frames once the leader faults them
		// in (see PageFault's shared-page path).
		fp.SharedVPages = append(fp.SharedVPages, spec.SharedWith.FP.SharedVPages...)
		p.sharedLeader = spec.SharedWith
	} else if spec.SharedPages > 0 {
		for i := 0; i < spec.SharedPages; i++ {
			fp.SharedVPages = append(fp.SharedVPages, uint32(SharedVBase+i))
		}
	}
	fp.CodeLoopBlocks = spec.CodeLoopBlocks
	if fp.CodeLoopBlocks == 0 {
		fp.CodeLoopBlocks = 48
	}
	fp.DataHotPages = spec.DataHotPages
	if fp.DataHotPages == 0 {
		fp.DataHotPages = 8
	}
	fp.WritePct = spec.WritePct
	if fp.WritePct == 0 {
		fp.WritePct = 30
	}
	fp.DataRefsPerBlock = spec.DataRefsPerBlock
	if fp.DataRefsPerBlock == 0 {
		fp.DataRefsPerBlock = 1
	}
	fp.Rng = NewRefRand(k.Cfg.Seed, p.PID)
}

// ---- small data-structure touch helpers ----
// These generate the characteristic data traffic of kernel execution.

func (k *Kernel) kstackTouch(p Port, pr *Proc, bytes int, write bool) {
	k.kstackTouchAt(p, pr, 0, bytes, write)
}

// kstackTouchAt touches the kernel stack at a call depth: deeper kernel
// paths use frames further from the stack top, so the migration misses on
// kernel stacks spread across many routines (Table 5).
func (k *Kernel) kstackTouchAt(p Port, pr *Proc, depth, bytes int, write bool) {
	if pr == nil {
		return
	}
	off := kmem.KStackSize - depth*256 - bytes
	if off < 0 {
		off = 0
	}
	a := k.L.KStackAddr(pr.Slot) + arch.PAddr(off)
	if write {
		p.Store(a, bytes)
	} else {
		p.Load(a, bytes)
	}
}

func (k *Kernel) touchPCB(p Port, pr *Proc, write bool) {
	a := k.L.UStructAddr(pr.Slot)
	if write {
		p.Store(a, kmem.PCBSize)
	} else {
		p.Load(a, kmem.PCBSize)
	}
}

func (k *Kernel) touchEframe(p Port, pr *Proc, write bool) {
	a := k.L.UStructAddr(pr.Slot) + kmem.PCBSize
	if write {
		p.Store(a, kmem.EframeSize)
	} else {
		p.Load(a, kmem.EframeSize)
	}
}

func (k *Kernel) touchURest(p Port, pr *Proc, bytes int, write bool) {
	a := k.L.UStructAddr(pr.Slot) + kmem.PCBSize + kmem.EframeSize
	if bytes > kmem.RestUSize {
		bytes = kmem.RestUSize
	}
	if write {
		p.Store(a, bytes)
	} else {
		p.Load(a, bytes)
	}
}

func (k *Kernel) touchProcEntry(p Port, pr *Proc, bytes int, write bool) {
	if bytes > kmem.ProcEntrySize {
		bytes = kmem.ProcEntrySize
	}
	a := k.L.ProcEntryAddr(pr.Slot)
	if write {
		p.Store(a, bytes)
	} else {
		p.Load(a, bytes)
	}
}

// ---- block operations (Section 4.2.2) ----

// Bcopy sweeps bytes from src to dst: the copy loop reads and writes whole
// blocks, wiping a proportional slice of the data cache.
func (k *Kernel) Bcopy(p Port, src, dst arch.PAddr, bytes int, why string) {
	p.Exec(k.rt.bcopy)
	p.Escape(monitor.EvBlockOp, uint32(BlockCopy), uint32(bytes))
	if k.Cfg.BlockOpBypass {
		// The whole extent moves through the block-transfer hardware
		// (bursts of contiguous blocks, no cache fills).
		p.LoadBypass(src, bytes)
		p.StoreBypass(dst, bytes)
	} else {
		for off := 0; off < bytes; off += arch.BlockSize {
			n := bytes - off
			if n > arch.BlockSize {
				n = arch.BlockSize
			}
			p.Load(src+arch.PAddr(off), n)
			p.Store(dst+arch.PAddr(off), n)
		}
	}
	k.BlockOps = append(k.BlockOps, BlockOpRec{Kind: BlockCopy, Bytes: bytes, Why: why})
}

// Bclear zeroes bytes at dst.
func (k *Kernel) Bclear(p Port, dst arch.PAddr, bytes int, why string) {
	p.Exec(k.rt.bclear)
	p.Escape(monitor.EvBlockOp, uint32(BlockClear), uint32(bytes))
	if k.Cfg.BlockOpBypass {
		p.StoreBypass(dst, bytes)
	} else {
		for off := 0; off < bytes; off += arch.BlockSize {
			n := bytes - off
			if n > arch.BlockSize {
				n = arch.BlockSize
			}
			p.Store(dst+arch.PAddr(off), n)
		}
	}
	k.BlockOps = append(k.BlockOps, BlockOpRec{Kind: BlockClear, Bytes: bytes, Why: why})
}

// traversePfdat is the third block operation: sweep page descriptors
// looking for reclaimable pages, then free them.
func (k *Kernel) traversePfdat(p Port, want int) {
	p.Exec(k.rt.vhand)
	k.Traversals++
	start := k.Rand.Intn(k.L.Pageable)
	scanned := 0
	// Scan until enough cached frames have been seen or the whole
	// array has been swept.
	seen := 0
	for i := 0; i < k.L.Pageable && seen < want; i++ {
		idx := (start + i) % k.L.Pageable
		p.Load(k.L.PfdatAddr(idx), kmem.PfdatEntrySize)
		scanned++
		fr := k.L.FirstUserFrame() + uint32(idx)
		if k.F.State(fr) == kmem.StateCached {
			seen++
		}
	}
	p.Escape(monitor.EvBlockOp, uint32(BlockTraverse), uint32(scanned*kmem.PfdatEntrySize))
	k.BlockOps = append(k.BlockOps, BlockOpRec{
		Kind: BlockTraverse, Bytes: scanned * kmem.PfdatEntrySize, Why: "free memory needed",
	})
	freed := k.F.Reclaim(want)
	for _, fr := range freed {
		// Update the descriptor and free bucket of each reclaimed
		// frame and drop its page-cache / text-cache / TLB presence.
		p.Store(k.L.PfdatAddrOfFrame(fr), kmem.PfdatEntrySize)
		p.Store(k.L.BucketAddr(kmem.BucketOf(fr)), 8)
		k.forgetFrame(fr)
		p.TLBInvalidateFrame(fr)
	}
}

// AllocFrame allocates a physical frame via the pgalloc path, running the
// pfdat traversal under memory pressure and invalidating instruction
// caches when a frame that held code is reallocated.
func (k *Kernel) AllocFrame(p Port, kind kmem.FrameKind, pid arch.PID, vpage uint32) uint32 {
	p.Exec(k.rt.pgalloc)
	mem := k.Locks.Get(klock.Memlock)
	// The pfdat traversal runs WITHOUT Memlock held (it takes hundreds
	// of microseconds; holding the allocation lock across it would
	// stall every other allocator).
	if k.F.FreeCount() < k.Cfg.LowWater {
		k.traversePfdat(p, k.Cfg.ReclaimTarget)
	}
	p.Acquire(mem)
	fr, wasCode, ok := k.F.Alloc(kind, pid, vpage)
	if !ok {
		p.Release(mem)
		k.traversePfdat(p, k.Cfg.ReclaimTarget)
		p.Acquire(mem)
		fr, wasCode, ok = k.F.Alloc(kind, pid, vpage)
		if !ok {
			panic("kernel: out of memory with nothing reclaimable")
		}
	}
	p.Load(k.L.BucketAddr(kmem.BucketOf(fr)), 8)
	p.Store(k.L.PfdatAddrOfFrame(fr), kmem.PfdatEntrySize)
	p.Release(mem)
	if wasCode {
		k.CodeFrameReuses++
		p.ICacheInvalFrame(fr)
	}
	p.Escape(monitor.EvPageAlloc, fr, uint32(kind))
	return fr
}

// FreeFrame returns a frame via the pgfree path.
func (k *Kernel) FreeFrame(p Port, fr uint32) {
	p.Exec(k.rt.pgfree)
	mem := k.Locks.Get(klock.Memlock)
	p.Acquire(mem)
	k.F.Free(fr)
	p.Store(k.L.PfdatAddrOfFrame(fr), kmem.PfdatEntrySize)
	p.Store(k.L.BucketAddr(kmem.BucketOf(fr)), 8)
	p.Release(mem)
	p.Escape(monitor.EvPageFree, fr)
}

// forgetFrame drops a reclaimed frame's page-cache and text-cache entries
// (its contents are gone; a stale text-cache pointer would alias the frame
// after reallocation).
func (k *Kernel) forgetFrame(fr uint32) {
	if key, ok := k.frameFile[fr]; ok {
		delete(k.fileCache, key)
		delete(k.frameFile, fr)
	}
	if tk, ok := k.frameText[fr]; ok {
		if pages := k.textCache[tk[0]]; pages != nil && tk[1] < len(pages) && pages[tk[1]] == fr {
			pages[tk[1]] = 0
		}
		delete(k.frameText, fr)
	}
}

// WireAllBut wires frames until only target free frames remain in
// circulation and the reclaimable queue is empty, so the page cache the
// run accumulates is exactly what a traversal finds. Called after
// workload setup, before the run.
func (k *Kernel) WireAllBut(target int) {
	// Flush the boot-time page cache.
	for {
		rec := k.F.Reclaim(k.L.Pageable)
		for _, rfr := range rec {
			k.forgetFrame(rfr)
		}
		if len(rec) == 0 {
			break
		}
	}
	for k.F.FreeCount() > target {
		if _, _, ok := k.F.Alloc(kmem.FrameData, arch.NoPID, 0); !ok {
			return
		}
	}
}

// CodeFrames returns every frame currently holding program text (for the
// initial-state dump the instrumentation writes when tracing starts).
func (k *Kernel) CodeFrames() []uint32 {
	var out []uint32
	ids := make([]int, 0, len(k.textCache))
	for id := range k.textCache {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		for _, fr := range k.textCache[id] {
			if fr != 0 && k.F.State(fr) != kmem.StateFree {
				out = append(out, fr)
			}
		}
	}
	return out
}

// ---- events & timers ----

func (k *Kernel) postEvent(at arch.Cycles, kind IntrKind, ch SleepChan, cpu arch.CPUID) {
	heap.Push(&k.events, AsyncEvent{At: at, Kind: kind, Ch: ch, CPU: cpu})
	if k.OnEventPost != nil {
		k.OnEventPost(cpu, at)
	}
}

// NextEventTime returns the time of the earliest pending asynchronous
// event, or -1 if none.
func (k *Kernel) NextEventTime() arch.Cycles {
	if len(k.events) == 0 {
		return -1
	}
	return k.events[0].At
}

// NextEventTimeFor returns the time of the earliest pending event
// targeted at the given CPU, if any. The parallel engine freezes this as
// the CPU's event horizon before speculating past it.
func (k *Kernel) NextEventTimeFor(cpu arch.CPUID) (arch.Cycles, bool) {
	var best arch.Cycles
	ok := false
	for i := range k.events {
		if k.events[i].CPU == cpu && (!ok || k.events[i].At < best) {
			best, ok = k.events[i].At, true
		}
	}
	return best, ok
}

// PopDueEvent removes and returns the earliest event with time ≤ now.
func (k *Kernel) PopDueEvent(now arch.Cycles) (AsyncEvent, bool) {
	if len(k.events) == 0 || k.events[0].At > now {
		return AsyncEvent{}, false
	}
	return heap.Pop(&k.events).(AsyncEvent), true
}

// PopDueEventFor removes and returns a due event targeted at the given
// CPU, if any. Events for other CPUs are left in place: they are delivered
// when their target CPU is stepped, which the min-clock scheduling makes
// prompt.
func (k *Kernel) PopDueEventFor(cpu arch.CPUID, now arch.Cycles) (AsyncEvent, bool) {
	for i := range k.events {
		if k.events[i].At <= now && k.events[i].CPU == cpu {
			ev := k.events[i]
			heap.Remove(&k.events, i)
			return ev, true
		}
	}
	return AsyncEvent{}, false
}

// addTimer registers a callout to wake ch at time at.
func (k *Kernel) addTimer(at arch.Cycles, ch SleepChan) {
	k.timers = append(k.timers, timer{at: at, ch: ch})
}

// RunnableCount returns the run-queue length (used by idle polling).
func (k *Kernel) RunnableCount() int { return len(k.runqHi) + len(k.runqLo) }
