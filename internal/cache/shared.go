package cache

// Coherence-state helpers. The bus package implements a MESI-like
// invalidation protocol on top of the per-line valid/dirty bits plus the
// shared bit maintained here:
//
//	Invalid    = !valid
//	Shared     = valid && shared
//	Exclusive  = valid && !shared && !dirty
//	Modified   = valid && !shared && dirty
//
// The shared bit only matters at the coherence level (the second-level data
// cache); instruction caches never use it.

import "repro/internal/arch"

func (c *Cache) ensureShared() {
	if c.sharedBit == nil {
		c.sharedBit = make([]bool, len(c.valid))
	}
}

// SetShared sets the coherence shared bit of the resident block containing
// a. It is a no-op if the block is not resident.
func (c *Cache) SetShared(a arch.PAddr, shared bool) {
	if i, ok := c.find(a); ok {
		c.ensureShared()
		c.sharedBit[i] = shared
	}
}

// Shared reports the coherence shared bit of the block containing a
// (false if not resident).
func (c *Cache) Shared(a arch.PAddr) bool {
	if c.sharedBit == nil {
		return false
	}
	if i, ok := c.find(a); ok {
		return c.sharedBit[i]
	}
	return false
}

// SnoopRead services a remote read snoop at the coherence level in one
// lookup: if the block is resident, the copy reverts to clean Shared (a
// dirty copy supplies the data and memory is updated) and SnoopRead reports
// true. It is exactly the Resident→Clean-if-Dirty→SetShared(true) sequence
// of the bus's snoop loop, without the three separate finds.
func (c *Cache) SnoopRead(a arch.PAddr) bool {
	i, ok := c.find(a)
	if !ok {
		return false
	}
	c.dirty[i] = false
	c.ensureShared()
	c.sharedBit[i] = true
	return true
}

// Dirty reports whether the block containing a is resident and dirty.
func (c *Cache) Dirty(a arch.PAddr) bool {
	if i, ok := c.find(a); ok {
		return c.dirty[i]
	}
	return false
}

// Clean clears the dirty bit of the block containing a (after a snoop
// supplies the data to another CPU and memory is updated).
func (c *Cache) Clean(a arch.PAddr) {
	if i, ok := c.find(a); ok {
		c.dirty[i] = false
	}
}
