// Package workload builds the three parallel workloads of Section 3 on
// top of the kernel model:
//
//   - Pmake: a parallel make of 56 C files, at most 8 jobs at once, with
//     heavy I/O and compute-intensive compiler phases.
//   - Multpgm: a timesharing load — the Mp3d particle simulator (4
//     processes, shared particle arrays, user-level locks backed by
//     sginap), Pmake, and five screen-edit sessions (a typist process
//     feeding an ed process through a pipe).
//   - Oracle: a scaled-down TP1 transaction workload — client processes
//     submitting transactions over pipes to server processes that share a
//     large buffer pool, plus log- and database-writer daemons.
//
// Workloads are built from kernel.Behavior state machines; all randomness
// comes from the kernel's seeded generator, so runs are reproducible.
package workload

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/kernel"
)

// Kind selects a workload.
type Kind int

const (
	// Pmake is the parallel compile.
	Pmake Kind = iota
	// Multpgm is the multiprogrammed timesharing load.
	Multpgm
	// Oracle is the TP1 database workload (the scaled-down instance the
	// paper traces).
	Oracle
	// OracleStd is the standard-sized TP1 instance (100 branches, 1000
	// tellers, 100000 accounts). The paper reports [18] that the OS
	// miss characteristics are qualitatively the same as Oracle's; a
	// test asserts the same here.
	OracleStd
)

// String returns the paper's workload name.
func (k Kind) String() string {
	switch k {
	case Pmake:
		return "Pmake"
	case Multpgm:
		return "Multpgm"
	case Oracle:
		return "Oracle"
	case OracleStd:
		return "OracleStd"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind converts a workload name (case-sensitive, as printed) to its
// Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "Pmake", "pmake":
		return Pmake, nil
	case "Multpgm", "multpgm":
		return Multpgm, nil
	case "Oracle", "oracle":
		return Oracle, nil
	case "OracleStd", "oraclestd":
		return OracleStd, nil
	}
	return 0, fmt.Errorf("workload: unknown kind %q", s)
}

// ms is one millisecond in 30 ns cycles.
const ms = arch.Cycles(1_000_000 / arch.CycleNS)

// Setup creates the workload's processes in the kernel.
func Setup(k *kernel.Kernel, kind Kind) {
	switch kind {
	case Pmake:
		SetupPmake(k)
	case Multpgm:
		SetupMultpgm(k)
	case Oracle:
		SetupOracle(k)
	case OracleStd:
		SetupOracleStd(k)
	default:
		panic("workload: unknown kind")
	}
}

// jitter returns base scaled by a uniform factor in [0.5, 1.5).
func jitter(k *kernel.Kernel, base arch.Cycles) arch.Cycles {
	if base <= 1 {
		return base
	}
	return base/2 + arch.Cycles(k.Rand.Int63n(int64(base)))
}

func compute(k *kernel.Kernel, base arch.Cycles) kernel.Action {
	return kernel.Action{Kind: kernel.ActCompute, Cycles: jitter(k, base)}
}

func syscall(req kernel.SyscallReq) kernel.Action {
	return kernel.Action{Kind: kernel.ActSyscall, Req: req}
}
