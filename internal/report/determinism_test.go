package report

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/runner"
)

// TestReportsByteIdenticalPerSeed is the replay guarantee the fault
// injector depends on: two runs with the same seed must render every
// table and figure byte-for-byte identically, so an injected-fault
// failure can always be reproduced from its seed alone.
func TestReportsByteIdenticalPerSeed(t *testing.T) {
	run := func() string {
		return All(RunSet(core.Config{Window: 600_000, Warmup: 300_000, Seed: 11, Check: true}))
	}
	a, b := run(), run()
	if a != b {
		// Find the first divergent line for a useful failure message.
		la, lb := splitLines(a), splitLines(b)
		for i := 0; i < len(la) && i < len(lb); i++ {
			if la[i] != lb[i] {
				t.Fatalf("reports diverge at line %d:\n  run1: %s\n  run2: %s", i+1, la[i], lb[i])
			}
		}
		t.Fatalf("reports differ in length: %d vs %d bytes", len(a), len(b))
	}
}

// diffLines fails the test at the first divergent line of a and b.
func diffLines(t *testing.T, what, a, b string) {
	t.Helper()
	if a == b {
		return
	}
	la, lb := splitLines(a), splitLines(b)
	for i := 0; i < len(la) && i < len(lb); i++ {
		if la[i] != lb[i] {
			t.Fatalf("%s diverges at line %d:\n  serial:   %s\n  parallel: %s", what, i+1, la[i], lb[i])
		}
	}
	t.Fatalf("%s differs in length: %d vs %d bytes", what, len(a), len(b))
}

// TestParallelRunSetByteIdentical is the worker pool's contract: the full
// report — including the Figure 6 re-simulation, whose inner sweep also
// fans out — must render byte-for-byte identically on 1 worker and on 8.
func TestParallelRunSetByteIdentical(t *testing.T) {
	cfg := core.Config{Window: 600_000, Warmup: 300_000, Seed: 11, Check: true, CollectIResim: true}
	render := func(par int) string {
		set := RunSetParallel(cfg, runner.Options{Parallelism: par})
		return All(set) + Figure6(set)
	}
	diffLines(t, "report", render(1), render(8))
}

// TestStreamingMatchesBufferedReports is the streaming pipeline's oracle:
// classifying every transaction inline, the cycle it occurs, must render
// every table and figure byte-for-byte identically to the stop-and-drain
// pipeline that materializes the monitor trace and replays it after the
// run — for all three workloads, serially and under the worker pool.
func TestStreamingMatchesBufferedReports(t *testing.T) {
	for _, par := range []int{1, 8} {
		render := func(buffered bool) string {
			set := RunSetParallel(core.Config{
				Window: 600_000, Warmup: 300_000, Seed: 11, Check: true,
				Buffered: buffered,
			}, runner.Options{Parallelism: par})
			return All(set)
		}
		streaming, buffered := render(false), render(true)
		if streaming != buffered {
			la, lb := splitLines(streaming), splitLines(buffered)
			for i := 0; i < len(la) && i < len(lb); i++ {
				if la[i] != lb[i] {
					t.Fatalf("parallelism %d: reports diverge at line %d:\n  streaming: %s\n  buffered:  %s",
						par, i+1, la[i], lb[i])
				}
			}
			t.Fatalf("parallelism %d: reports differ in length: %d vs %d bytes",
				par, len(streaming), len(buffered))
		}
	}
}

// TestFastMatchesReferenceReports is the memory-system fast path's oracle:
// the presence-filtered snoops, direct-mapped cache specialization and
// run-ahead scheduler must render every table and figure byte-for-byte
// identically to the generic reference paths (-reference) — for all three
// workloads, serially and under the worker pool.
func TestFastMatchesReferenceReports(t *testing.T) {
	for _, par := range []int{1, 8} {
		render := func(ref bool) string {
			set := RunSetParallel(core.Config{
				Window: 600_000, Warmup: 300_000, Seed: 11, Check: true,
				Reference: ref,
			}, runner.Options{Parallelism: par})
			return All(set)
		}
		fast, reference := render(false), render(true)
		if fast != reference {
			la, lb := splitLines(fast), splitLines(reference)
			for i := 0; i < len(la) && i < len(lb); i++ {
				if la[i] != lb[i] {
					t.Fatalf("parallelism %d: reports diverge at line %d:\n  fast:      %s\n  reference: %s",
						par, i+1, la[i], lb[i])
				}
			}
			t.Fatalf("parallelism %d: reports differ in length: %d vs %d bytes",
				par, len(fast), len(reference))
		}
	}
}

// TestParallelFigure11ByteIdentical covers the other fan-out entry point:
// the lock-contention sweep over CPU counts.
func TestParallelFigure11ByteIdentical(t *testing.T) {
	render := func(par int) string {
		pts, _ := RunFigure11Parallel([]int{2, 3, 4}, 400_000, 7, runner.Options{Parallelism: par})
		return Figure11(pts)
	}
	diffLines(t, "figure 11", render(1), render(8))
}

// TestFigure11WindowDefault pins the zero-window fallback to the one
// canonical default; this path used to disagree with cmd/sweep (8M vs 12M).
func TestFigure11WindowDefault(t *testing.T) {
	if got := figure11Window(0); got != arch.DefaultWindow {
		t.Errorf("figure11Window(0) = %d, want arch.DefaultWindow (%d)", got, arch.DefaultWindow)
	}
	if got := figure11Window(-1); got != arch.DefaultWindow {
		t.Errorf("figure11Window(-1) = %d, want %d", got, arch.DefaultWindow)
	}
	if got := figure11Window(100); got != 100 {
		t.Errorf("figure11Window(100) = %d, want 100", got)
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return append(out, s[start:])
}

// TestDefaultMachineMatchesSeed is the machine-descriptor oracle: a config
// that spells out arch.Default() explicitly must produce byte-identical
// reports to the zero-Machine config (the historical constants path) for
// all three workloads — proof the runtime descriptor refactor preserves
// behavior exactly.
func TestDefaultMachineMatchesSeed(t *testing.T) {
	render := func(m arch.Machine) string {
		set := RunSetParallel(core.Config{
			Machine: m,
			Window:  600_000, Warmup: 300_000, Seed: 11, Check: true,
		}, runner.Options{Parallelism: 8})
		return All(set)
	}
	diffLines(t, "default machine vs constants", render(arch.Machine{}), render(arch.Default()))
}
