package kernel

import (
	"testing"

	"repro/internal/arch"
)

func TestHotRoutinesAllExistInImage(t *testing.T) {
	names := map[string]bool{}
	for _, s := range kernelImage {
		names[s.name] = true
	}
	for h := range hotRoutines {
		if !names[h] {
			t.Errorf("hotRoutines lists %q, which is not in kernelImage", h)
		}
	}
}

func TestOptimizedWarmRoutinesAvoidHotSets(t *testing.T) {
	kt := NewKTextOptimized(0, arch.Default())
	// Recompute the protected extent: hot routines pack from offset 0.
	var hotEnd uint32
	for _, r := range kt.Routines {
		if hotRoutines[r.Name] {
			if end := uint32(r.Addr) + r.Size; end > hotEnd {
				hotEnd = end
			}
		}
	}
	if hotEnd == 0 || hotEnd >= arch.ICacheSize {
		t.Fatalf("hot extent = %d, want within one bank", hotEnd)
	}
	window := arch.ICacheSize - hotEnd
	for _, r := range kt.Routines {
		if hotRoutines[r.Name] || r.Group == "" && len(r.Name) > 5 && r.Name[:5] == "misc_" {
			continue // hot code or cold filler
		}
		off := uint32(r.Addr) % arch.ICacheSize
		if r.Size <= window {
			// Fits in a window: must lie entirely in [hotEnd, 64K).
			if off < hotEnd || off+r.Size > arch.ICacheSize {
				t.Errorf("warm routine %q at offset %d size %d overlaps hot sets [0,%d)",
					r.Name, off, r.Size, hotEnd)
			}
		} else if off != hotEnd {
			// Oversized: must start at the window base (minimal overlap).
			t.Errorf("oversized routine %q starts at offset %d, want %d", r.Name, off, hotEnd)
		}
	}
}
