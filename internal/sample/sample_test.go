package sample

import (
	"math"
	"testing"

	"repro/internal/arch"
	)

func TestParse(t *testing.T) {
	good := []struct {
		in   string
		want Schedule
	}{
		{"", Schedule{}},
		{"  ", Schedule{}},
		{"100K:200K:10M", Schedule{100_000, 200_000, 10_000_000}},
		{"0:1M:2M", Schedule{0, 1_000_000, 2_000_000}},
		{"1e5:2e5:1e7", Schedule{100_000, 200_000, 10_000_000}},
		{"50000:100000:1000000", Schedule{50_000, 100_000, 1_000_000}},
	}
	for _, c := range good {
		got, err := Parse(c.in)
		if err != nil || got != c.want {
			t.Errorf("Parse(%q) = %+v, %v; want %+v", c.in, got, err, c.want)
		}
	}
	bad := []string{
		"100K",           // not three fields
		"1:2",            // not three fields
		"1:2:3:4",        // not three fields
		"x:2M:10M",       // unparsable field
		"100K:0:10M",     // zero measured length
		"100K:200K:0",    // zero period
		"1M:2M:2.5M",     // period < warmup+length
		"-1K:200K:10M",   // negative warmup
		"100K:200K:-10M", // negative period
	}
	for _, in := range bad {
		if got, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) = %+v, want error", in, got)
		}
	}
}

func TestScheduleString(t *testing.T) {
	s := Schedule{100_000, 200_000, 10_000_000}
	if got := s.String(); got != "100K:200K:10M" {
		t.Fatalf("String() = %q", got)
	}
	// String must round-trip through Parse.
	back, err := Parse(s.String())
	if err != nil || back != s {
		t.Fatalf("round trip: %+v, %v", back, err)
	}
	if got := (Schedule{}).String(); got != "" {
		t.Fatalf("zero Schedule String() = %q, want empty", got)
	}
}

// Segments must tile [0, window) exactly: contiguous, in order, phases
// alternating correctly, measured intervals of exactly Length, and no
// partial sample.
func TestSegmentsTile(t *testing.T) {
	cases := []struct {
		s       Schedule
		window  arch.Cycles
		samples int
	}{
		{Schedule{100, 200, 1000}, 10_000, 10},
		{Schedule{0, 200, 1000}, 10_000, 10},
		{Schedule{100, 200, 1000}, 10_500, 11},   // ragged tail still fits a sample
		{Schedule{100, 200, 1000}, 9_350, 10},    // partial last period still fits its sample
		{Schedule{100, 200, 1000}, 9_250, 9},     // sample doesn't fit → dropped
		{Schedule{0, 1000, 1000}, 5_000, 5},      // wall-to-wall detailed
		{Schedule{100, 200, 1000}, 50, 0},        // window smaller than one sample
		{Schedule{1000, 2000, 1_000_000}, 12_000_000, 12},
	}
	for _, c := range cases {
		segs := c.s.Segments(c.window)
		var pos arch.Cycles
		measured := 0
		for i, seg := range segs {
			if seg.Start != pos {
				t.Fatalf("%v@%d: segment %d starts at %d, want %d", c.s, c.window, i, seg.Start, pos)
			}
			if seg.End <= seg.Start {
				t.Fatalf("%v@%d: empty segment %d", c.s, c.window, i)
			}
			if seg.Measured {
				if !seg.Detailed {
					t.Fatalf("%v@%d: measured but not detailed", c.s, c.window)
				}
				if seg.End-seg.Start != c.s.Length {
					t.Fatalf("%v@%d: measured interval %d cycles, want %d",
						c.s, c.window, seg.End-seg.Start, c.s.Length)
				}
				measured++
			}
			pos = seg.End
		}
		if pos != c.window {
			t.Fatalf("%v@%d: tiling ends at %d", c.s, c.window, pos)
		}
		if measured != c.samples {
			t.Fatalf("%v@%d: %d samples, want %d", c.s, c.window, measured, c.samples)
		}
		if got := c.s.Samples(c.window); got != c.samples {
			t.Fatalf("%v@%d: Samples() = %d, want %d", c.s, c.window, got, c.samples)
		}
	}
	if (Schedule{}).Segments(1000) != nil {
		t.Fatal("disabled schedule produced segments")
	}
}

// Hand-computed estimate: two samples of 10 and 14 misses in 100-cycle
// intervals over a 1000-cycle window. mean=12, scale=10 → Total 120;
// sd=√8, stderr = 10·√8/√2 = 20.
// Class indices mirroring trace.Cold/Sharing/Inval, which this leaf
// package cannot import (see NumClasses).
const (
	clCold    = 0
	clSharing = 3
	clInval   = 4
)

func TestEstimateMath(t *testing.T) {
	sched := Schedule{Warmup: 0, Length: 100, Period: 500}
	acc := NewAccumulator(sched, 1000)
	var s1, s2 Counts
	s1[1][0][clSharing] = 10
	s2[1][0][clSharing] = 14
	acc.Add(s1)
	acc.Add(s2)
	e := acc.Estimate()
	if e.Samples != 2 {
		t.Fatalf("Samples = %d", e.Samples)
	}
	if got := e.Total[1][0][clSharing]; math.Abs(got-120) > 1e-9 {
		t.Fatalf("Total = %v, want 120", got)
	}
	if got := e.StdErr[1][0][clSharing]; math.Abs(got-20) > 1e-9 {
		t.Fatalf("StdErr = %v, want 20", got)
	}
	if e.Measured[1][0][clSharing] != 24 {
		t.Fatalf("Measured = %d, want 24", e.Measured[1][0][clSharing])
	}
	if e.MeasuredCycles() != 200 {
		t.Fatalf("MeasuredCycles = %d, want 200", e.MeasuredCycles())
	}
	// Untouched cells stay zero.
	if e.Total[0][1][clCold] != 0 || e.StdErr[0][1][clCold] != 0 {
		t.Fatal("untouched cells nonzero")
	}
	// Aggregates.
	tot, serr := e.TotalAll()
	if math.Abs(tot-120) > 1e-9 || math.Abs(serr-20) > 1e-9 {
		t.Fatalf("TotalAll = %v ± %v", tot, serr)
	}
	osTot, osErr := e.TotalOS()
	if math.Abs(osTot-120) > 1e-9 || math.Abs(osErr-20) > 1e-9 {
		t.Fatalf("TotalOS = %v ± %v", osTot, osErr)
	}
	ct, cs := e.ClassTotal(1, 0, clSharing)
	if math.Abs(ct-120) > 1e-9 || math.Abs(cs-20) > 1e-9 {
		t.Fatalf("ClassTotal = %v ± %v", ct, cs)
	}
	if ut, _ := e.ClassTotal(0, -1, clSharing); ut != 0 {
		t.Fatalf("user-plane ClassTotal = %v, want 0", ut)
	}
}

func TestEstimateSingleSampleHasNoError(t *testing.T) {
	acc := NewAccumulator(Schedule{0, 100, 1000}, 1000)
	var s Counts
	s[0][0][clCold] = 7
	acc.Add(s)
	e := acc.Estimate()
	if got := e.Total[0][0][clCold]; math.Abs(got-70) > 1e-9 {
		t.Fatalf("Total = %v, want 70", got)
	}
	if e.StdErr[0][0][clCold] != 0 {
		t.Fatalf("single-sample StdErr = %v, want 0", e.StdErr[0][0][clCold])
	}
}

func TestDiff(t *testing.T) {
	var a, b Counts
	a[1][1][clCold] = 10
	b[1][1][clCold] = 4
	a[0][0][clInval] = 3
	d := Diff(a, b)
	if d[1][1][clCold] != 6 || d[0][0][clInval] != 3 {
		t.Fatalf("Diff = %+v", d)
	}
}
