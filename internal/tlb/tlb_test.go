package tlb

import (
	"testing"
	"testing/quick"

	"repro/internal/arch"
)

func TestLookupMissThenHit(t *testing.T) {
	tb := New(arch.TLBEntries)
	if _, hit := tb.Lookup(1, 100); hit {
		t.Fatal("empty TLB hit")
	}
	tb.Insert(1, 100, 777)
	f, hit := tb.Lookup(1, 100)
	if !hit || f != 777 {
		t.Fatalf("Lookup = (%d,%v), want (777,true)", f, hit)
	}
	if tb.Hits != 1 || tb.Misses != 1 {
		t.Errorf("counters hits=%d misses=%d", tb.Hits, tb.Misses)
	}
}

func TestPIDTagging(t *testing.T) {
	tb := New(arch.TLBEntries)
	tb.Insert(1, 100, 5)
	if _, hit := tb.Lookup(2, 100); hit {
		t.Error("entry leaked across address spaces")
	}
	tb.Insert(2, 100, 6)
	f1, _ := tb.Lookup(1, 100)
	f2, _ := tb.Lookup(2, 100)
	if f1 != 5 || f2 != 6 {
		t.Errorf("per-pid translations wrong: %d %d", f1, f2)
	}
}

func TestInsertUpdatesInPlace(t *testing.T) {
	tb := New(arch.TLBEntries)
	i1, _ := tb.Insert(1, 100, 5)
	i2, disp := tb.Insert(1, 100, 9)
	if i1 != i2 || disp.Valid {
		t.Errorf("re-insert: idx %d→%d displaced=%+v", i1, i2, disp)
	}
	if f, _ := tb.Lookup(1, 100); f != 9 {
		t.Errorf("updated frame = %d, want 9", f)
	}
	if tb.Valid() != 1 {
		t.Errorf("Valid = %d, want 1", tb.Valid())
	}
}

func TestCapacityAndDisplacement(t *testing.T) {
	tb := New(arch.TLBEntries)
	for v := uint32(0); v < arch.TLBEntries; v++ {
		if _, disp := tb.Insert(1, v, v); disp.Valid {
			t.Fatalf("displacement while filling at %d", v)
		}
	}
	if tb.Valid() != arch.TLBEntries {
		t.Fatalf("Valid = %d, want %d", tb.Valid(), arch.TLBEntries)
	}
	_, disp := tb.Insert(1, 1000, 1000)
	if !disp.Valid || disp.VPage != 0 {
		t.Errorf("expected round-robin displacement of vpage 0, got %+v", disp)
	}
	if _, hit := tb.Lookup(1, 0); hit {
		t.Error("displaced entry still hits")
	}
}

func TestInvalidatePID(t *testing.T) {
	tb := New(arch.TLBEntries)
	tb.Insert(1, 10, 1)
	tb.Insert(1, 11, 2)
	tb.Insert(2, 10, 3)
	if n := tb.InvalidatePID(1); n != 2 {
		t.Errorf("InvalidatePID = %d, want 2", n)
	}
	if _, hit := tb.Lookup(2, 10); !hit {
		t.Error("other pid's entry lost")
	}
	if tb.Valid() != 1 {
		t.Errorf("Valid = %d, want 1", tb.Valid())
	}
}

func TestInvalidateFrame(t *testing.T) {
	tb := New(arch.TLBEntries)
	tb.Insert(1, 10, 7)
	tb.Insert(2, 20, 7)
	tb.Insert(1, 30, 8)
	if n := tb.InvalidateFrame(7); n != 2 {
		t.Errorf("InvalidateFrame = %d, want 2", n)
	}
	if _, hit := tb.Lookup(1, 30); !hit {
		t.Error("unrelated entry lost")
	}
}

func TestEntriesExposesSlots(t *testing.T) {
	tb := New(arch.TLBEntries)
	tb.Insert(3, 40, 9)
	found := false
	for _, e := range tb.Entries() {
		if e.Valid && e.PID == 3 && e.VPage == 40 && e.Frame == 9 {
			found = true
		}
	}
	if !found {
		t.Error("inserted entry not visible via Entries()")
	}
	if len(tb.Entries()) != arch.TLBEntries {
		t.Errorf("Entries len = %d", len(tb.Entries()))
	}
}

// TestQuickInsertLookupInvalidate: for any sequence of insertions, the
// most recent insertion is always resident (FIFO replacement can never
// evict the entry just written), and invalidating its PID removes every
// translation of that PID while preserving the count invariant.
func TestQuickInsertLookupInvalidate(t *testing.T) {
	f := func(ops []uint16) bool {
		tb := New(arch.TLBEntries)
		for _, op := range ops {
			pid := arch.PID(op%5) + 1
			vp := uint32(op % 97)
			fr := uint32(op)%1000 + 1
			tb.Insert(pid, vp, fr)
			if got, hit := tb.Lookup(pid, vp); !hit || got != fr {
				return false
			}
			if tb.Valid() > arch.TLBEntries {
				return false
			}
		}
		for pid := arch.PID(1); pid <= 5; pid++ {
			before := tb.Valid()
			n := tb.InvalidatePID(pid)
			if tb.Valid() != before-n {
				return false
			}
			for _, e := range tb.Entries() {
				if e.Valid && e.PID == pid {
					return false
				}
			}
		}
		return tb.Valid() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
