package kmem

import (
	"testing"
	"testing/quick"

	"repro/internal/arch"
)

func TestTable3ExactSizes(t *testing.T) {
	// The paper's Table 3 sizes must be reproduced exactly.
	want := map[string]int{
		AttrKernelStack: 4096,
		AttrPCB:         240,
		AttrEframe:      172,
		AttrRestUser:    3684,
		AttrProcTable:   46080,
		AttrPfdat:       210944,
		AttrBuffer:      17408,
		AttrInode:       68608,
		AttrRunQueue:    24,
		AttrFreePgBuck:  3072,
	}
	got := Table3Sizes()
	for name, w := range want {
		if got[name] != w {
			t.Errorf("%s size = %d, want %d", name, got[name], w)
		}
	}
	if UStructSize != arch.PageSize {
		t.Errorf("user structure = %d bytes, want exactly one page", UStructSize)
	}
	if PageableFrames != 6592 {
		t.Errorf("PageableFrames = %d, want 6592", PageableFrames)
	}
}

func TestLayoutIsDisjointAndOrdered(t *testing.T) {
	l := NewLayout(arch.Default())
	regions := []Region{
		l.KernelText, l.ProcTable, l.RunQueue, l.HiNdproc, l.FreePgBuck,
		l.Dfbmap, l.Callout, l.InodeTable, l.BufHeaders, l.Pfdat,
		l.KernelHeap, l.BufData, l.UPages,
	}
	for i := 1; i < len(regions); i++ {
		if regions[i].Base < regions[i-1].End() {
			t.Errorf("region %q (%#x) overlaps %q (ends %#x)",
				regions[i].Name, regions[i].Base,
				regions[i-1].Name, regions[i-1].End())
		}
	}
	if l.KernelEnd > arch.PAddr(ReservedFrames)*arch.PageSize {
		t.Errorf("kernel image %#x exceeds reserved area %#x",
			l.KernelEnd, ReservedFrames*arch.PageSize)
	}
	if l.KernelText.Base != 0 {
		t.Error("kernel text must start at physical 0")
	}
}

func TestLayoutAccessors(t *testing.T) {
	l := NewLayout(arch.Default())
	if a := l.UStructAddr(0); a != l.UPages.Base {
		t.Errorf("UStructAddr(0) = %#x", a)
	}
	if a := l.KStackAddr(0); a != l.UPages.Base+UStructSize {
		t.Errorf("KStackAddr(0) = %#x", a)
	}
	if a := l.UStructAddr(1) - l.UStructAddr(0); a != UStructSize+KStackSize {
		t.Errorf("u-page stride = %d", a)
	}
	if a := l.ProcEntryAddr(2) - l.ProcEntryAddr(1); a != ProcEntrySize {
		t.Errorf("proc entry stride = %d", a)
	}
	if a := l.PfdatAddrOfFrame(FirstUserFrame); a != l.Pfdat.Base {
		t.Errorf("PfdatAddrOfFrame(first) = %#x, want %#x", a, l.Pfdat.Base)
	}
	if a := l.BucketAddr(1) - l.BucketAddr(0); a != 8 {
		t.Errorf("bucket stride = %d", a)
	}
	if a := l.InodeAddr(1) - l.InodeAddr(0); a != InodeSize {
		t.Errorf("inode stride = %d", a)
	}
	if a := l.BufDataAddr(1) - l.BufDataAddr(0); a != arch.PageSize {
		t.Errorf("buffer data stride = %d", a)
	}
}

func TestAttribute(t *testing.T) {
	l := NewLayout(arch.Default())
	cases := []struct {
		addr    arch.PAddr
		routine string
		want    string
	}{
		{l.KernelText.Base + 100, "", AttrKernelText},
		{l.ProcTable.Base, "", AttrProcTable},
		{l.RunQueue.Base + 8, "", AttrRunQueue},
		{l.HiNdproc.Base, "", AttrHiNdproc},
		{l.FreePgBuck.Base + 64, "", AttrFreePgBuck},
		{l.InodeTable.Base + 1000, "", AttrInode},
		{l.BufHeaders.Base + 200, "", AttrBuffer},
		{l.Pfdat.Base + 32, "", AttrPfdat},
		{l.UStructAddr(3) + 10, "", AttrPCB},
		{l.UStructAddr(3) + PCBSize + 10, "", AttrEframe},
		{l.UStructAddr(3) + PCBSize + EframeSize + 10, "", AttrRestUser},
		{l.KStackAddr(3) + 100, "", AttrKernelStack},
		// Dynamically-placed memory depends on the active routine.
		{arch.FrameAddr(FirstUserFrame) + 64, "bcopy", AttrBcopy},
		{arch.FrameAddr(FirstUserFrame) + 64, "bclear", AttrBclear},
		{arch.FrameAddr(FirstUserFrame) + 64, "sys_read", AttrOther},
		{l.BufData.Base, "bcopy", AttrBcopy},
		{l.KernelHeap.Base, "", AttrOther},
	}
	for _, c := range cases {
		if got := l.Attribute(c.addr, c.routine); got != c.want {
			t.Errorf("Attribute(%#x, %q) = %q, want %q", c.addr, c.routine, got, c.want)
		}
	}
}

func TestFramesAllocFree(t *testing.T) {
	f := NewFrames(ReservedFrames, PageableFrames)
	if f.FreeCount() != PageableFrames {
		t.Fatalf("FreeCount = %d, want %d", f.FreeCount(), PageableFrames)
	}
	fr, wasCode, ok := f.Alloc(FrameData, 7, 42)
	if !ok || wasCode {
		t.Fatalf("Alloc = (%d,%v,%v)", fr, wasCode, ok)
	}
	if fr < FirstUserFrame || fr >= arch.MemFrames {
		t.Fatalf("frame %d out of pageable range", fr)
	}
	if f.State(fr) != StateUsed {
		t.Error("allocated frame not marked used")
	}
	if pid, vp := f.Owner(fr); pid != 7 || vp != 42 {
		t.Errorf("Owner = (%d,%d)", pid, vp)
	}
	f.Free(fr)
	if f.State(fr) != StateFree || f.FreeCount() != PageableFrames {
		t.Error("free did not restore state")
	}
}

func TestCodeFrameReuseSignalsInvalidation(t *testing.T) {
	f := NewFrames(ReservedFrames, PageableFrames)
	fr, _, _ := f.Alloc(FrameCode, 1, 0)
	f.Free(fr)
	// LIFO bucket reuse: allocating again from the same bucket should
	// hand back the same frame with wasCode set.
	var got uint32
	var wasCode, ok bool
	for i := 0; i < PageableFrames; i++ {
		got, wasCode, ok = f.Alloc(FrameData, 2, 0)
		if !ok {
			t.Fatal("ran out of frames")
		}
		if got == fr {
			break
		}
	}
	if got != fr {
		t.Fatal("never got the code frame back")
	}
	if !wasCode {
		t.Error("reused code frame did not request I-cache invalidation")
	}
	// After the data use, freeing and reusing it still reports wasCode
	// (the invalidation already happened, but the flag persists until
	// cleared by reuse; reallocating as data clears it).
	f.Free(got)
}

func TestExhaustionAndReclaim(t *testing.T) {
	f := NewFrames(ReservedFrames, PageableFrames)
	var frames []uint32
	for {
		fr, _, ok := f.Alloc(FrameData, 1, 0)
		if !ok {
			break
		}
		frames = append(frames, fr)
	}
	if len(frames) != PageableFrames {
		t.Fatalf("allocated %d frames, want %d", len(frames), PageableFrames)
	}
	// Cache 10 frames (exited-process pages kept around).
	for _, fr := range frames[:10] {
		f.CacheFrame(fr)
	}
	if f.FreeCount() != 0 || f.CachedCount() != 10 {
		t.Fatalf("free=%d cached=%d", f.FreeCount(), f.CachedCount())
	}
	if _, _, ok := f.Alloc(FrameData, 1, 0); ok {
		t.Fatal("Alloc should fail with only cached frames")
	}
	rec := f.Reclaim(4)
	if len(rec) != 4 || f.FreeCount() != 4 || f.CachedCount() != 6 {
		t.Fatalf("after reclaim: rec=%d free=%d cached=%d",
			len(rec), f.FreeCount(), f.CachedCount())
	}
	if _, _, ok := f.Alloc(FrameData, 1, 0); !ok {
		t.Error("Alloc should succeed after reclaim")
	}
	// Reclaim more than available.
	if got := f.Reclaim(100); len(got) != 6 {
		t.Errorf("over-reclaim returned %d, want 6", len(got))
	}
}

func TestDoubleFreePanics(t *testing.T) {
	f := NewFrames(ReservedFrames, PageableFrames)
	fr, _, _ := f.Alloc(FrameData, 1, 0)
	f.Free(fr)
	defer func() {
		if recover() == nil {
			t.Error("double free did not panic")
		}
	}()
	f.Free(fr)
}

func TestBucketDistribution(t *testing.T) {
	f := NewFrames(ReservedFrames, PageableFrames)
	// Allocate everything; every allocation must come from some bucket
	// and the bucket hash must match.
	counts := make(map[int]int)
	for {
		fr, _, ok := f.Alloc(FrameData, 1, 0)
		if !ok {
			break
		}
		counts[BucketOf(fr)]++
	}
	if len(counts) != NumBuckets {
		t.Errorf("allocations touched %d buckets, want %d", len(counts), NumBuckets)
	}
}

// TestQuickAttributeConsistency: for any process slot and offset, the
// address computed by the layout helpers attributes back to the structure
// the helper names — the symbol-table property the Figure 8 attribution
// relies on.
func TestQuickAttributeConsistency(t *testing.T) {
	l := NewLayout(arch.Default())
	f := func(slot uint8, off uint16) bool {
		s := int(slot) % NumProcs
		if l.Attribute(l.KStackAddr(s)+arch.PAddr(off%KStackSize), "") != AttrKernelStack {
			return false
		}
		if l.Attribute(l.UStructAddr(s)+arch.PAddr(off%PCBSize), "") != AttrPCB {
			return false
		}
		if l.Attribute(l.UStructAddr(s)+PCBSize+arch.PAddr(off%EframeSize), "") != AttrEframe {
			return false
		}
		if l.Attribute(l.ProcEntryAddr(s)+arch.PAddr(off%ProcEntrySize), "") != AttrProcTable {
			return false
		}
		i := int(off) % PageableFrames
		if l.Attribute(l.PfdatAddr(i)+arch.PAddr(off%PfdatEntrySize), "") != AttrPfdat {
			return false
		}
		// Dynamic memory attributes by executing routine.
		h := l.HeapScratch(int(off))
		if l.Attribute(h, RoutineBcopy) != AttrBcopy {
			return false
		}
		if l.Attribute(h, "") != AttrOther {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestLayoutScalesWithMachine checks the machine-derived layout: text is 13
// I-cache banks, pfdat tracks the pageable-frame count, and the default
// machine reproduces the historical constants exactly.
func TestLayoutScalesWithMachine(t *testing.T) {
	def := NewLayout(arch.Default())
	if def.TextSize != KernelTextSize || def.Reserved != ReservedFrames ||
		def.Pageable != PageableFrames || def.Pfdat.Size != PfdatSize {
		t.Fatalf("default layout drifted: text=%d reserved=%d pageable=%d pfdat=%d",
			def.TextSize, def.Reserved, def.Pageable, def.Pfdat.Size)
	}
	if def.FirstUserFrame() != FirstUserFrame {
		t.Fatalf("default FirstUserFrame() = %d, want %d", def.FirstUserFrame(), FirstUserFrame)
	}

	big := arch.Default()
	big.MemBytes = 64 * 1024 * 1024
	l := NewLayout(big)
	if l.Pageable != big.MemFrames()-l.Reserved {
		t.Fatalf("pageable %d != frames %d - reserved %d", l.Pageable, big.MemFrames(), l.Reserved)
	}
	if int(l.Pfdat.Size) != l.Pageable*PfdatEntrySize {
		t.Fatalf("pfdat %d bytes for %d pageable frames", l.Pfdat.Size, l.Pageable)
	}
	if int(l.KernelEnd) > l.Reserved*arch.PageSize {
		t.Fatalf("kernel end %#x overflows reserved %d frames", l.KernelEnd, l.Reserved)
	}

	wideI := arch.Default()
	wideI.ICacheSize = 1 << 20 // 13 MB of text: reservation must grow
	wl := NewLayout(wideI)
	if wl.TextSize != 13<<20 {
		t.Fatalf("text size %d, want %d", wl.TextSize, 13<<20)
	}
	if wl.Reserved <= ReservedFrames {
		t.Fatalf("reserved %d did not grow past the %d floor", wl.Reserved, ReservedFrames)
	}
	if int(wl.KernelEnd) > wl.Reserved*arch.PageSize {
		t.Fatalf("kernel end %#x overflows grown reservation %d", wl.KernelEnd, wl.Reserved)
	}
	if wl.Pageable != wideI.MemFrames()-wl.Reserved {
		t.Fatalf("pageable %d inconsistent with grown reservation %d", wl.Pageable, wl.Reserved)
	}
}
