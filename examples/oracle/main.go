// Oracle study: the commercial-workload analysis — the TP1 database's
// large code footprint interferes with the OS in the instruction cache
// (Dispap dominates Figure 4), its OS profile is I/O-call heavy
// (Figure 9), and unlike the engineering workloads its I-miss curve keeps
// improving all the way to 1 MB caches (Figure 6).
//
//	go run ./examples/oracle
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	ch := core.Run(core.Config{
		Workload:      workload.Oracle,
		Window:        12_000_000,
		Seed:          1,
		CollectIResim: true, // needed for the cache sweep
	})

	os := ch.Trace.OSMissTotal
	fmt.Printf("Oracle (scaled TP1): %d OS misses, %.1f%% of all misses\n\n",
		os, ch.OSMissShare())

	// Figure 4: the database's big text interferes with the OS.
	fmt.Printf("OS instruction misses by class (Figure 4a, %% of OS misses):\n")
	for cl := trace.MissClass(0); cl < trace.NumClasses; cl++ {
		fmt.Printf("  %-9s %5.1f%%\n", cl, metrics.PctOf(ch.Trace.Counts[1][1][cl], os))
	}
	fmt.Printf("→ Dispap dominates: the database displaces the OS from the I-cache.\n\n")

	// Figure 9: the operation profile.
	fmt.Printf("OS misses by high-level operation (Figure 9):\n")
	for op := kernel.OpKind(0); op < kernel.NumOps; op++ {
		d := ch.Trace.OpMisses[op][0]
		i := ch.Trace.OpMisses[op][1]
		fmt.Printf("  %-22s D %6d  I %6d\n", op, d, i)
	}
	fmt.Printf("→ I/O system calls dominate (the database manages its own buffers\n")
	fmt.Printf("  over raw devices, so expensive-TLB activity folds into I/O).\n\n")

	// Figure 6: the I-cache sweep for the database workload.
	res := ch.Figure6()
	fmt.Printf("I-cache sweep, OS miss rate relative to 64KB direct-mapped (Figure 6):\n")
	fmt.Printf("  %-8s %8s %8s\n", "size", "direct", "2-way")
	for _, p := range res.DirectMapped {
		tw := "   -"
		for _, q := range res.TwoWay {
			if q.Size == p.Size {
				tw = fmt.Sprintf("%.2f", q.Relative)
			}
		}
		fmt.Printf("  %-8s %8.2f %8s\n", fmt.Sprintf("%dKB", p.Size/1024), p.Relative, tw)
	}
	fmt.Printf("→ keeps dropping to 1MB (no invalidation bound): the database's\n")
	fmt.Printf("  instruction working set is what conflicts, not page reallocation.\n")
}
