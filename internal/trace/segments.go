package trace

import "repro/internal/arch"

// SegKind classifies a segment of one CPU's timeline.
type SegKind uint8

const (
	// SegOS is kernel execution inside an OS invocation.
	SegOS SegKind = iota
	// SegApp is application execution (UTLB fault spikes included).
	SegApp
	// SegIdle is the OS idle loop.
	SegIdle
)

// String returns the segment-kind name.
func (k SegKind) String() string {
	switch k {
	case SegOS:
		return "OS"
	case SegApp:
		return "App"
	default:
		return "Idle"
	}
}

// Segment is one stretch of a CPU's timeline, with the misses that
// happened in it. OS invocations interrupted by the idle loop appear as
// several SegOS pieces with the same InvID (Figure 1 separates "OS" from
// "OS in the Idle Loop").
type Segment struct {
	Kind   SegKind
	InvID  uint32 // OS invocation id for SegOS/SegIdle pieces
	Cycles arch.Cycles
	IMiss  int
	DMiss  int
	// UTLBs and UTLBMisses count cheap-fault spikes inside SegApp.
	UTLBs      int
	UTLBMisses int
}

// segBuilder accumulates one CPU's segments. The trailing in-progress
// segment (truncated by the end of the trace) is dropped at close.
type segBuilder struct {
	started   bool
	kind      SegKind
	invID     uint32
	startTick uint64
	cntI      int
	cntD      int
	cntUTLB   int
	cntUTLBM  int
	finished  []Segment
}

// boundary closes the current segment at tick and opens a new one.
func (b *segBuilder) boundary(kind SegKind, invID uint32, tick uint64) {
	if b.started {
		b.finished = append(b.finished, Segment{
			Kind:       b.kind,
			InvID:      b.invID,
			Cycles:     arch.Cycles(2 * (tick - b.startTick)), // 60 ns ticks
			IMiss:      b.cntI,
			DMiss:      b.cntD,
			UTLBs:      b.cntUTLB,
			UTLBMisses: b.cntUTLBM,
		})
	}
	b.started = true
	b.kind = kind
	b.invID = invID
	b.startTick = tick
	b.cntI, b.cntD, b.cntUTLB, b.cntUTLBM = 0, 0, 0, 0
}

func (b *segBuilder) imiss()    { b.cntI++ }
func (b *segBuilder) dmiss()    { b.cntD++ }
func (b *segBuilder) utlb()     { b.cntUTLB++ }
func (b *segBuilder) utlbMiss() { b.cntUTLBM++ }

// close flushes the finished segments into out.
func (b *segBuilder) close(out *[]Segment) {
	*out = append(*out, b.finished...)
	b.finished = nil
}
