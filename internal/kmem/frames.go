package kmem

import "repro/internal/arch"

// FrameKind says what a physical frame is used for. Code frames matter
// because reallocating one requires invalidating the instruction caches
// (the source of Inval misses).
type FrameKind uint8

const (
	// FrameData holds user or kernel data.
	FrameData FrameKind = iota
	// FrameCode holds executable text.
	FrameCode
	// FrameBuf holds file-system buffer data.
	FrameBuf
)

// FrameState is the allocator's view of a frame.
type FrameState uint8

const (
	// StateFree means the frame is on a free-page bucket.
	StateFree FrameState = iota
	// StateUsed means the frame is allocated.
	StateUsed
	// StateCached means the frame's previous contents are being kept
	// (e.g. program text of an exited process); it is reclaimable by
	// the pfdat traversal only.
	StateCached
)

type frameInfo struct {
	state   FrameState
	kind    FrameKind
	wasCode bool
	pid     arch.PID
	vpage   uint32
}

// Frames is the physical frame allocator over the pageable frames
// [ReservedFrames, MemFrames). Free frames hang off hash buckets (the
// FreePgBuck structure); frames in the cached state are only recovered by
// a pfdat traversal, which is how memory pressure produces the paper's
// third block operation.
type Frames struct {
	reserved  int // first pageable frame number
	info      []frameInfo
	buckets   [][]uint32
	freeCount int
	cached    []uint32 // FIFO of reclaimable frames
	rr        int      // round-robin bucket scan position
	avoided   int      // code-frame avoidances since the last forced reuse
}

// codeAvoidBudget bounds how long code-frame reuse can be deferred.
const codeAvoidBudget = 16

// NewFrames returns an allocator with every pageable frame
// [reserved, reserved+pageable) free. The default machine's values are
// (ReservedFrames, PageableFrames).
func NewFrames(reserved, pageable int) *Frames {
	f := &Frames{
		reserved: reserved,
		info:     make([]frameInfo, pageable),
		buckets:  make([][]uint32, NumBuckets),
	}
	for i := 0; i < pageable; i++ {
		fr := uint32(reserved + i)
		b := bucketOf(fr)
		f.buckets[b] = append(f.buckets[b], fr)
	}
	f.freeCount = pageable
	return f
}

func bucketOf(frame uint32) int { return int(frame) % NumBuckets }

// BucketOf returns the free-page bucket index a frame hashes to (the
// kernel touches that bucket head when allocating or freeing).
func BucketOf(frame uint32) int { return bucketOf(frame) }

func (f *Frames) idx(frame uint32) int { return int(frame) - f.reserved }

// FreeCount returns the number of immediately-allocatable frames.
func (f *Frames) FreeCount() int { return f.freeCount }

// CachedCount returns the number of reclaimable (cached) frames.
func (f *Frames) CachedCount() int {
	n := 0
	seen := make(map[uint32]bool, len(f.cached))
	for _, fr := range f.cached {
		if !seen[fr] && f.info[f.idx(fr)].state == StateCached {
			n++
			seen[fr] = true
		}
	}
	return n
}

// Alloc takes a frame from the free buckets. wasCode reports whether the
// frame previously held code, in which case the caller must invalidate the
// instruction caches before reuse. ok is false when no free frame exists
// (the caller must run a pfdat traversal to reclaim cached frames first).
func (f *Frames) Alloc(kind FrameKind, pid arch.PID, vpage uint32) (frame uint32, wasCode bool, ok bool) {
	if f.freeCount == 0 {
		return 0, false, false
	}
	// First pass: prefer frames that never held code (reusing a code
	// frame forces a full I-cache flush). The deference is bounded: the
	// real free list cycles, so a retired text page is reused once the
	// allocator has worked past it — modeled by taking anything after
	// enough avoidances.
	first := 1
	if f.avoided > codeAvoidBudget {
		first = 0 // deliberately drain one retired code frame
		f.avoided = 0
	}
	for pass := first; pass < 3; pass++ {
		for i := 0; i < NumBuckets; i++ {
			b := (f.rr + i) % NumBuckets
			n := len(f.buckets[b])
			if n == 0 {
				continue
			}
			frame = f.buckets[b][n-1] // LIFO: recently freed reused soon
			isCode := f.info[f.idx(frame)].wasCode
			if pass == 0 && !isCode {
				continue
			}
			if pass == 1 && isCode {
				f.avoided++
				continue
			}
			f.buckets[b] = f.buckets[b][:n-1]
			f.rr = (b + 1) % NumBuckets
			f.freeCount--
			fi := &f.info[f.idx(frame)]
			wasCode = fi.wasCode
			*fi = frameInfo{state: StateUsed, kind: kind, pid: pid, vpage: vpage}
			if kind == FrameCode {
				fi.wasCode = true
			}
			return frame, wasCode, true
		}
	}
	return 0, false, false
}

// Free returns a frame to its free bucket. Frames that held code go to
// the cold end of the bucket so they are reallocated last — reusing one
// forces a full I-cache flush, so the kernel defers it as long as it can.
func (f *Frames) Free(frame uint32) {
	fi := &f.info[f.idx(frame)]
	if fi.state == StateFree {
		panic("kmem: double free")
	}
	wasCode := fi.wasCode || fi.kind == FrameCode
	*fi = frameInfo{state: StateFree, wasCode: wasCode}
	f.push(frame, wasCode)
	f.freeCount++
}

// push adds a free frame to its bucket.
func (f *Frames) push(frame uint32, wasCode bool) {
	_ = wasCode // reuse deferral happens at Alloc time
	b := bucketOf(frame)
	f.buckets[b] = append(f.buckets[b], frame)
}

// CacheFrame keeps an allocated frame's contents around (exited process
// text, file pages) instead of freeing it; only Reclaim recovers it.
func (f *Frames) CacheFrame(frame uint32) {
	fi := &f.info[f.idx(frame)]
	if fi.state != StateUsed {
		panic("kmem: caching non-allocated frame")
	}
	fi.state = StateCached
	f.cached = append(f.cached, frame)
}

// Reactivate returns a cached frame to active use (a process mapping text
// pages still resident in the text cache). The stale entry in the cached
// queue is skipped by Reclaim.
func (f *Frames) Reactivate(frame uint32) {
	fi := &f.info[f.idx(frame)]
	if fi.state != StateCached {
		panic("kmem: reactivating a frame that is not cached")
	}
	fi.state = StateUsed
}

// Reclaim frees up to n cached frames (oldest first), returning the frames
// reclaimed. The kernel calls this from the pfdat-traversal block
// operation when free memory runs low. Entries whose frame was reactivated
// in the meantime are skipped.
func (f *Frames) Reclaim(n int) []uint32 {
	out := make([]uint32, 0, n)
	i := 0
	for ; i < len(f.cached) && len(out) < n; i++ {
		fr := f.cached[i]
		fi := &f.info[f.idx(fr)]
		if fi.state != StateCached {
			continue // reactivated (or re-cached later in the queue)
		}
		wasCode := fi.wasCode || fi.kind == FrameCode
		*fi = frameInfo{state: StateFree, wasCode: wasCode}
		f.push(fr, wasCode)
		f.freeCount++
		out = append(out, fr)
	}
	f.cached = f.cached[i:]
	return out
}

// State returns the allocator state of a frame (for tests).
func (f *Frames) State(frame uint32) FrameState { return f.info[f.idx(frame)].state }

// Owner returns the pid and virtual page a used frame backs.
func (f *Frames) Owner(frame uint32) (arch.PID, uint32) {
	fi := &f.info[f.idx(frame)]
	return fi.pid, fi.vpage
}

// Avoided reports the current code-avoidance counter (diagnostics).
func (f *Frames) Avoided() int { return f.avoided }

// DebugCounts reports how many free and cached frames previously held
// code (diagnostics).
func (f *Frames) DebugCounts() (freeCode, cachedCode, free, cached int) {
	for i := range f.info {
		fi := &f.info[i]
		switch fi.state {
		case StateFree:
			free++
			if fi.wasCode {
				freeCode++
			}
		case StateCached:
			cached++
			if fi.wasCode || fi.kind == FrameCode {
				cachedCode++
			}
		}
	}
	return
}
