// Package runner is the parallel experiment engine: a worker pool that
// fans independent core.Config runs (and, through Map/ForEach, any other
// index-shaped fan-out) across GOMAXPROCS goroutines with order-preserving
// result collection.
//
// Determinism is the contract. Every core.Run builds its own simulator,
// kernel and RNG from its config's seed, so a run's output depends only on
// its config — never on which worker executed it or in what order. Results
// are collected into a slice indexed by submission order, which makes a
// parallel batch byte-identical to the serial execution of the same
// configs. `Options{Parallelism: 1}` restores strictly serial execution.
//
//	res, batch := runner.Experiments(cfgs, runner.Options{})
//	// res[i] corresponds to cfgs[i]; batch.Table() shows the speedup.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/metrics"
)

// Options tunes the pool.
type Options struct {
	// Parallelism is the worker count. <= 0 means runtime.GOMAXPROCS(0);
	// 1 runs strictly serially on the calling goroutine.
	Parallelism int
	// SimWorkers, when > 1, is the intra-run worker count applied to
	// each submitted config that does not set core.Config.SimWorkers
	// itself: the conservative parallel engine inside each run. It never
	// changes a run's output — combine with CapTotal so pool × intra-run
	// workers stays inside the machine.
	SimWorkers int
}

// workers resolves the worker count for a batch of n jobs.
func (o Options) workers(n int) int {
	p := o.Parallelism
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	return p
}

// CapTotal bounds pool-level parallelism when the runs themselves are
// internally parallel: with simWorkers > 1 each run occupies simWorkers
// cores, so the pool shrinks until parallelism × simWorkers fits inside
// runtime.GOMAXPROCS(0) — floor 1, one run always proceeds. With
// simWorkers <= 1 (serial engine) the parallelism passes through
// unchanged, including the <= 0 "use GOMAXPROCS" convention.
func CapTotal(parallelism, simWorkers int) int {
	if simWorkers <= 1 {
		return parallelism
	}
	lim := runtime.GOMAXPROCS(0) / simWorkers
	if lim < 1 {
		lim = 1
	}
	if parallelism <= 0 || parallelism > lim {
		return lim
	}
	return parallelism
}

// DeriveSeed mixes a base seed and a run index into an independent,
// reproducible per-run seed (splitmix64 finalizer). Sweeps that want
// statistically independent runs derive one seed per submission index, so
// the whole sweep replays from the base seed alone — on any worker count.
func DeriveSeed(base int64, i int) int64 {
	z := uint64(base) + uint64(i+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	s := int64(z &^ (1 << 63))
	if s == 0 {
		return 1 // seed 0 means "default" to the simulator
	}
	return s
}

// PanicError is the structured error of a run whose pipeline panicked:
// the panic value, the goroutine stack at the point of the panic, and
// the run's provenance (config hash, seed, cycle reached). RunOne and
// ExperimentsContext convert panics into PanicErrors so one broken
// configuration cannot take down a batch or a worker pool.
type PanicError struct {
	core.Provenance
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("run panicked (%s): %v", e.Provenance, e.Value)
}

// ForEachContext is ForEach with cooperative cancellation: indexes not
// yet started when ctx is canceled are skipped (fn never sees them), and
// the skip is reported through the returned error — nil only if every
// index ran. fn receives ctx to thread into context-aware work.
func ForEachContext(ctx context.Context, n int, opts Options, fn func(ctx context.Context, i int)) error {
	var skipped int64
	var mu sync.Mutex
	ForEach(n, opts, func(i int) {
		if ctx.Err() != nil {
			mu.Lock()
			skipped++
			mu.Unlock()
			return
		}
		fn(ctx, i)
	})
	if skipped > 0 {
		return fmt.Errorf("runner: %d of %d jobs not started: %w", skipped, n, context.Cause(ctx))
	}
	return nil
}

// MapContext fans fn across the pool under ctx. Slots whose index was
// skipped because ctx was canceled hold T's zero value, and the skip is
// reported through the error.
func MapContext[T any](ctx context.Context, n int, opts Options, fn func(ctx context.Context, i int) T) ([]T, error) {
	out := make([]T, n)
	err := ForEachContext(ctx, n, opts, func(ctx context.Context, i int) { out[i] = fn(ctx, i) })
	return out, err
}

// ForEach runs fn(0..n-1) on a bounded worker pool and returns when all
// calls have finished. fn must not depend on execution order; writes
// should go to the caller's slot i.
func ForEach(n int, opts Options, fn func(i int)) {
	w := opts.workers(n)
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	wg.Add(w)
	for q := 0; q < w; q++ {
		go func() {
			defer wg.Done()
			for i := range jobs {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// Map fans fn across the pool and returns its results indexed by
// submission order: Map(n, o, f)[i] == f(i) regardless of parallelism.
func Map[T any](n int, opts Options, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(n, opts, func(i int) { out[i] = fn(i) })
	return out
}

// Result pairs a characterization with its per-run observability.
type Result struct {
	Ch    *core.Characterization
	Stats metrics.RunStats
	// Err is non-nil when the run did not complete: a
	// *core.CanceledError (context cancel, deadline, watchdog kill) or a
	// *PanicError (the pipeline panicked; the pool survives). Ch is nil
	// exactly when Err is non-nil.
	Err error
}

// RunOne executes one config through core.RunContext with panic
// isolation: a panic anywhere in the pipeline comes back as a
// *PanicError in Result.Err instead of unwinding into the caller. The
// optional preRun hooks fire inside the recovery scope before the
// simulation starts — the service's test hooks use them to force
// failures down the production error path.
func RunOne(ctx context.Context, cfg core.Config, preRun ...func()) Result {
	return RunOneMonitored(ctx, cfg, nil, preRun...)
}

// RunOneMonitored is RunOne plus core.RunMonitored's progress probe:
// onStart (if non-nil) receives the run's simulated-cycle heartbeat
// function just before simulation begins — the service watchdog feeds
// on it.
func RunOneMonitored(ctx context.Context, cfg core.Config, onStart func(progress func() arch.Cycles), preRun ...func()) (res Result) {
	canonical := cfg.Canonical()
	var progress func() arch.Cycles
	t0 := time.Now()
	defer func() {
		if r := recover(); r != nil {
			var cycle arch.Cycles
			if progress != nil {
				cycle = progress()
			}
			res = Result{
				Err: &PanicError{
					Provenance: core.Provenance{ConfigHash: canonical.Hash(),
						Workload: canonical.Workload.String(), Seed: canonical.Seed, Cycle: cycle},
					Value: r,
					Stack: debug.Stack(),
				},
				Stats: metrics.RunStats{Label: runLabel(canonical), Wall: time.Since(t0)},
			}
		}
	}()
	for _, f := range preRun {
		f()
	}
	ch, err := core.RunMonitored(ctx, cfg, func(p func() arch.Cycles) {
		progress = p
		if onStart != nil {
			onStart(p)
		}
	})
	st := metrics.RunStats{Label: runLabel(canonical), Wall: time.Since(t0)}
	if err != nil {
		return Result{Err: err, Stats: st}
	}
	// ch.Cfg has defaults applied; warmup cycles are simulated (and paid
	// for) too.
	st.SimCycles = int64(ch.Cfg.Window+ch.Cfg.Warmup) * int64(ch.Cfg.NCPU)
	st.Throughput()
	st.SimWorkers = ch.Sim.SimWorkers()
	sp := ch.Sim.SpecStats()
	st.SpecPhases, st.SpecSteps, st.SpecCommitted = sp.Phases, sp.SpecSteps, sp.CommittedSteps
	return Result{Ch: ch, Stats: st}
}

// Experiments runs each config through core.Run on the pool. Results are
// indexed by submission order (Result[i] is cfgs[i]'s run), so output
// rendered from them is byte-identical to a serial execution. The batch
// stats carry per-run wall-clock and simulated-cycle throughput plus
// process-wide allocation deltas; per-run allocation counts are exact
// only for serial batches (Go accounts heap allocation process-wide).
// A panicking config surfaces as that run's Result.Err; the rest of the
// batch completes normally.
func Experiments(cfgs []core.Config, opts Options) ([]Result, metrics.BatchStats) {
	return ExperimentsContext(context.Background(), cfgs, opts)
}

// ExperimentsContext is Experiments under a context: a canceled or
// expired ctx stops every in-flight run before its next bus transaction
// and resolves the remaining slots with *core.CanceledError — every
// submitted config gets a terminal Result either way, in submission
// order.
func ExperimentsContext(ctx context.Context, cfgs []core.Config, opts Options) ([]Result, metrics.BatchStats) {
	if opts.SimWorkers > 1 {
		// Copy before defaulting — the caller's configs stay untouched.
		withDefault := make([]core.Config, len(cfgs))
		copy(withDefault, cfgs)
		for i := range withDefault {
			if withDefault[i].SimWorkers == 0 {
				withDefault[i].SimWorkers = opts.SimWorkers
			}
		}
		cfgs = withDefault
	}
	n := len(cfgs)
	w := opts.workers(n)
	serial := w == 1
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	out := make([]Result, n)
	ForEach(n, opts, func(i int) {
		var m0 runtime.MemStats
		if serial {
			runtime.ReadMemStats(&m0)
		}
		out[i] = RunOne(ctx, cfgs[i])
		if serial && out[i].Err == nil {
			var m1 runtime.MemStats
			runtime.ReadMemStats(&m1)
			out[i].Stats.Allocs = m1.Mallocs - m0.Mallocs
			out[i].Stats.AllocBytes = m1.TotalAlloc - m0.TotalAlloc
		}
	})
	batch := metrics.BatchStats{Parallelism: w, Wall: time.Since(start)}
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	batch.Allocs = after.Mallocs - before.Mallocs
	batch.AllocBytes = after.TotalAlloc - before.TotalAlloc
	batch.Runs = make([]metrics.RunStats, n)
	for i, r := range out {
		batch.SerialWall += r.Stats.Wall
		batch.Runs[i] = r.Stats
	}
	return out, batch
}

// runLabel names a run for the timing table.
func runLabel(c core.Config) string {
	return fmt.Sprintf("%s/ncpu%d/seed%d", c.Workload, c.NCPU, c.Seed)
}
