package check

import (
	"fmt"

	"repro/internal/arch"
)

// heldLock is one kernel lock currently held by a CPU, with acquisition
// provenance for diagnostics.
type heldLock struct {
	key     any
	fam     int
	name    string
	cycle   arch.Cycles
	routine string
}

// intrLock returns whether interrupt handlers are known to take locks of
// the given family, growing the dense family table on demand (it replaces
// a name-keyed map on the per-acquire hot path).
func (k *Checker) intrLock(fam int) bool {
	return fam < len(k.intrLocks) && k.intrLocks[fam]
}

func (k *Checker) markIntrLock(fam int) {
	if fam >= len(k.intrLocks) {
		grown := make([]bool, fam+1)
		copy(grown, k.intrLocks)
		k.intrLocks = grown
	}
	k.intrLocks[fam] = true
}

// OnAcquire observes a lock acquisition that has just succeeded. key must
// identify the lock instance (lock families share names, so the name
// alone is ambiguous); fam is the interned family ID used for the
// interrupt-discipline table; user-level locks are exempt from the kernel
// discipline — a user lock's holder can be preempted, migrated, or time
// out — and are not tracked.
func (k *Checker) OnAcquire(cpu arch.CPUID, key any, fam int, name string, user bool, now arch.Cycles) {
	if user {
		return
	}
	k.Checks++
	for _, h := range k.held[cpu] {
		if h.key == key {
			k.report(&CheckError{
				Kind: LockViolation, Cycle: now, CPU: cpu, Lock: name,
				Routine: k.routine(cpu),
				Detail:  "double acquire of a spinlock already held by this CPU (self-deadlock)",
				Owner:   cpu, OwnerCycle: h.cycle, OwnerRoutine: h.routine, HasOwner: true,
			})
			return
		}
	}
	// A kernel spinlock held across an accepted interrupt deadlocks if
	// the handler takes the same lock; the checker learns which locks
	// interrupt handlers take and flags any acquisition at base level
	// that is later interrupted (see OnInterruptEnter).
	if k.intrDepth[cpu] > 0 {
		k.markIntrLock(fam)
	}
	k.held[cpu] = append(k.held[cpu], heldLock{key: key, fam: fam, name: name, cycle: now, routine: k.routine(cpu)})
}

// OnRelease observes a lock release about to happen. Releasing a lock the
// CPU does not hold is a discipline violation; if another CPU holds it,
// the error carries that owner's provenance.
func (k *Checker) OnRelease(cpu arch.CPUID, key any, fam int, name string, user bool, now arch.Cycles) {
	if user {
		return
	}
	k.Checks++
	hs := k.held[cpu]
	for i, h := range hs {
		if h.key == key {
			k.held[cpu] = append(hs[:i], hs[i+1:]...)
			return
		}
	}
	e := &CheckError{
		Kind: LockViolation, Cycle: now, CPU: cpu, Lock: name,
		Routine: k.routine(cpu),
		Detail:  "release of a spinlock this CPU does not hold",
	}
	for q := 0; q < k.n; q++ {
		for _, h := range k.held[q] {
			if h.key == key {
				e.Detail = fmt.Sprintf("release of a spinlock held by CPU %d", q)
				e.Owner, e.OwnerCycle, e.OwnerRoutine, e.HasOwner = arch.CPUID(q), h.cycle, h.routine, true
			}
		}
	}
	k.report(e)
}

// OnInterruptEnter observes a CPU accepting an interrupt. Accepting one
// while holding a lock that interrupt handlers are known to take is the
// classic spl-discipline bug: the handler would spin on a lock its own
// CPU holds.
func (k *Checker) OnInterruptEnter(cpu arch.CPUID, now arch.Cycles) {
	k.Checks++
	if k.intrDepth[cpu] == 0 {
		for _, h := range k.held[cpu] {
			if k.intrLock(h.fam) {
				k.report(&CheckError{
					Kind: LockViolation, Cycle: now, CPU: cpu, Lock: h.name,
					Routine: k.routine(cpu),
					Detail:  "interrupt accepted while holding a lock that interrupt handlers acquire",
					Owner:   cpu, OwnerCycle: h.cycle, OwnerRoutine: h.routine, HasOwner: true,
				})
			}
		}
	}
	k.intrDepth[cpu]++
}

// OnInterruptExit observes the matching return-from-interrupt.
func (k *Checker) OnInterruptExit(cpu arch.CPUID) {
	if k.intrDepth[cpu] > 0 {
		k.intrDepth[cpu]--
	}
}

// HeldLocks returns the names of kernel locks the checker believes cpu
// holds (diagnostic aid for leak tests).
func (k *Checker) HeldLocks(cpu arch.CPUID) []string {
	var names []string
	for _, h := range k.held[cpu] {
		names = append(names, h.name)
	}
	return names
}
