package metrics

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(10, 100, 1000)
	for _, v := range []float64{5, 9.9, 10, 99, 100, 500, 2000} {
		h.Add(v)
	}
	want := []int64{2, 2, 2, 1} // <10, 10-100, 100-1000, ≥1000
	for i, w := range want {
		if h.Counts[i] != w {
			t.Errorf("bucket %d (%s) = %d, want %d", i, h.BucketLabel(i), h.Counts[i], w)
		}
	}
	if h.N != 7 {
		t.Errorf("N = %d", h.N)
	}
	if h.Min != 5 || h.Max != 2000 {
		t.Errorf("min/max = %v/%v", h.Min, h.Max)
	}
}

func TestHistogramEdgesExclusive(t *testing.T) {
	h := NewHistogram(10)
	h.Add(10)
	if h.Counts[0] != 0 || h.Counts[1] != 1 {
		t.Errorf("edge value landed in %v", h.Counts)
	}
}

func TestHistogramMeanAndPct(t *testing.T) {
	h := NewHistogram(5)
	h.Add(2)
	h.Add(8)
	if h.Mean() != 5 {
		t.Errorf("Mean = %v", h.Mean())
	}
	p := h.Pct()
	if p[0] != 50 || p[1] != 50 {
		t.Errorf("Pct = %v", p)
	}
	empty := NewHistogram(5)
	if empty.Mean() != 0 || empty.Pct()[0] != 0 {
		t.Error("empty histogram should be zeros")
	}
}

func TestHistogramPctSumsTo100(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		h := NewHistogram(1, 10, 100)
		for _, v := range vals {
			h.Add(v)
		}
		sum := 0.0
		for _, p := range h.Pct() {
			sum += p
		}
		return sum > 99.99 && sum < 100.01
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramBadEdgesPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-increasing edges did not panic")
		}
	}()
	NewHistogram(5, 5)
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram(10)
	h.Add(1)
	out := h.Render("demo")
	if !strings.Contains(out, "demo") || !strings.Contains(out, "<10") {
		t.Errorf("render missing parts: %q", out)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Table X", "Workload", "A (%)", "B (%)")
	tb.AddRow("Pmake", 49.4, 31)
	tb.AddRow("Multpgm", 53.25, "n/a")
	tb.Note("paper values in col A")
	out := tb.String()
	if !strings.Contains(out, "Table X") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "49.4") || !strings.Contains(out, "53.2") {
		t.Errorf("float formatting wrong:\n%s", out)
	}
	if !strings.Contains(out, "note: paper values") {
		t.Error("missing note")
	}
	// Alignment: headers and rows share column widths; spot-check that
	// every line is non-empty and rows ≥ header width.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 {
		t.Errorf("expected 6 lines, got %d:\n%s", len(lines), out)
	}
}

func TestPctOf(t *testing.T) {
	if PctOf(1, 4) != 25 {
		t.Error("PctOf wrong")
	}
	if PctOf(1, 0) != 0 {
		t.Error("PctOf division guard failed")
	}
	if PctOfF(1, 2) != 50 || PctOfF(1, 0) != 0 {
		t.Error("PctOfF wrong")
	}
}

func TestRunStatsThroughput(t *testing.T) {
	r := RunStats{SimCycles: 48_000_000, Wall: 2 * time.Second}
	r.Throughput()
	if r.MCyclesPerSec != 24 {
		t.Errorf("MCyclesPerSec = %v, want 24", r.MCyclesPerSec)
	}
	z := RunStats{SimCycles: 1}
	z.Throughput() // zero wall must not divide by zero
	if z.MCyclesPerSec != 0 {
		t.Errorf("zero-wall throughput = %v, want 0", z.MCyclesPerSec)
	}
}

func TestBatchStatsSpeedupAndTable(t *testing.T) {
	b := BatchStats{
		Parallelism: 4,
		Wall:        time.Second,
		SerialWall:  3 * time.Second,
		Allocs:      1000,
		AllocBytes:  2_000_000,
		Runs: []RunStats{
			{Label: "Pmake/ncpu4/seed1", Wall: time.Second, SimCycles: 18_000_000, MCyclesPerSec: 18, Allocs: 500, AllocBytes: 1_000_000},
			{Label: "Oracle/ncpu4/seed1", Wall: 2 * time.Second, SimCycles: 18_000_000, MCyclesPerSec: 9},
		},
	}
	if got := b.Speedup(); got != 3 {
		t.Errorf("Speedup = %v, want 3", got)
	}
	if (BatchStats{}).Speedup() != 0 {
		t.Error("zero-wall batch should report 0 speedup, not NaN")
	}
	out := b.Table()
	for _, want := range []string{"4 workers", "Pmake/ncpu4/seed1", "speedup 3.00x", "500", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
