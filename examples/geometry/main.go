// Geometry study: the same workload on two machines — the measured
// 4D/340 and an 8-CPU / 64 MB 4D/380-like configuration — plus a direct
// re-run with a doubled coherence-level data cache. Everything the
// descriptor changes (CPU count, memory layout, cache geometry, stall
// costs) flows from the one arch.Machine value in core.Config.
//
//	go run ./examples/geometry
package main

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/workload"
)

func describe(label string, ch *core.Characterization) {
	user, sys, idle := ch.TimeSplit()
	all, osOnly, _ := ch.StallPct()
	fmt.Printf("%s (%s):\n", label, ch.Cfg.Machine)
	fmt.Printf("  time split: user %.1f%%  system %.1f%%  idle %.1f%%\n", user, sys, idle)
	fmt.Printf("  memory stall: %.1f%% of non-idle cycles (OS alone %.1f%%)\n\n", all, osOnly)
}

func main() {
	window := arch.Cycles(8_000_000)

	// The measured machine: the zero Machine value means arch.Default().
	base := core.Run(core.Config{Workload: workload.Multpgm, Window: window, Seed: 1})
	describe("4D/340 (measured machine)", base)

	// A 4D/380-like top configuration: twice the CPUs and memory.
	big := arch.Default()
	big.NCPU = 8
	big.MemBytes = 64 * 1024 * 1024
	ch := core.Run(core.Config{Workload: workload.Multpgm, Machine: big, Window: window, Seed: 1})
	describe("4D/380-like (8 CPUs, 64 MB)", ch)

	// The §4.2.2 question asked directly: double the coherence-level
	// data cache and re-run the whole system instead of replaying a
	// trace. Sharing misses survive; the stall share barely moves.
	wide := arch.Default()
	wide.DCacheL2Size = 512 * 1024
	ch = core.Run(core.Config{Workload: workload.Multpgm, Machine: wide, Window: window, Seed: 1})
	describe("4D/340 with a 512 KB coherence cache", ch)
}
