package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeHash produces a realistic canonical hash (hex SHA-256) from a
// label, matching what core.Config.Hash emits.
func fakeHash(label string) string {
	sum := sha256.Sum256([]byte(label))
	return hex.EncodeToString(sum[:])
}

// complete drives a hash through the leader path to a cached success.
func complete(t *testing.T, st *Store, hash string) {
	t.Helper()
	e, leader := st.Begin(hash)
	if !leader {
		t.Fatalf("hash %.12s already claimed", hash)
	}
	st.Complete(hash, e, Outcome{Report: "r-" + hash[:8]})
}

// TestShardDistribution: the hex-prefix shard selector must spread real
// config hashes across every shard, with no shard grossly overloaded.
func TestShardDistribution(t *testing.T) {
	const shards, keys = 8, 4096
	st := NewStore(shards, keys*2)
	for i := 0; i < keys; i++ {
		complete(t, st, fakeHash(fmt.Sprintf("cfg-%d", i)))
	}
	_, perShard := st.Snapshot()
	if len(perShard) != shards {
		t.Fatalf("snapshot has %d shards, want %d", len(perShard), shards)
	}
	want := keys / shards
	for _, m := range perShard {
		if m.Entries == 0 {
			t.Errorf("shard %d got no entries for %d uniform keys", m.Shard, keys)
		}
		if m.Entries > 2*want {
			t.Errorf("shard %d holds %d entries, > 2x the uniform share %d", m.Shard, m.Entries, want)
		}
		if m.Misses != int64(m.Entries) {
			t.Errorf("shard %d: %d misses for %d entries", m.Shard, m.Misses, m.Entries)
		}
	}
}

// TestShardCountRounding: shard counts round up to powers of two.
func TestShardCountRounding(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {8, 8}, {9, 16},
	} {
		if got := NewStore(tc.ask, 64).Shards(); got != tc.want {
			t.Errorf("NewStore(shards=%d) -> %d shards, want %d", tc.ask, got, tc.want)
		}
	}
}

// TestLRUEviction: completed entries beyond the per-shard cap evict
// least-recently-used, evictions are counted, and a re-submission of an
// evicted config becomes a fresh leader (it re-runs).
func TestLRUEviction(t *testing.T) {
	st := NewStore(1, 3) // one shard, three completed entries
	h := make([]string, 5)
	for i := range h {
		h[i] = fakeHash(fmt.Sprintf("lru-%d", i))
	}
	for _, hash := range h[:3] {
		complete(t, st, hash)
	}
	// Touch h0 so h1 becomes the LRU victim.
	if _, leader := st.Begin(h[0]); leader {
		t.Fatal("h0 should be a cache hit")
	}
	complete(t, st, h[3]) // evicts h1
	if got := st.Evictions(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	if _, leader := st.Begin(h[1]); !leader {
		t.Error("evicted h1 should re-run (leader), but was served from cache")
	} else {
		st.Abandon(h[1], mustEntry(t, st, h[1]), Outcome{})
	}
	for _, hash := range []string{h[0], h[2], h[3]} {
		if _, leader := st.Begin(hash); leader {
			t.Errorf("recently used %.12s was evicted", hash)
		}
	}
}

func mustEntry(t *testing.T, st *Store, hash string) *cacheEntry {
	t.Helper()
	sh := st.shardFor(hash)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.entries[hash]
	if !ok {
		t.Fatalf("no entry for %.12s", hash)
	}
	return e
}

// TestInflightNeverEvicted: entries still executing are not in the LRU
// and survive any amount of completed-entry churn.
func TestInflightNeverEvicted(t *testing.T) {
	st := NewStore(1, 2)
	inflight := fakeHash("inflight")
	e, leader := st.Begin(inflight)
	if !leader {
		t.Fatal("fresh hash not leader")
	}
	for i := 0; i < 16; i++ {
		complete(t, st, fakeHash(fmt.Sprintf("churn-%d", i)))
	}
	if st.Evictions() == 0 {
		t.Fatal("churn produced no evictions")
	}
	if got := mustEntry(t, st, inflight); got != e {
		t.Fatal("in-flight entry replaced under churn")
	}
	// Followers attached before completion must still get the outcome.
	follower, leader := st.Begin(inflight)
	if leader {
		t.Fatal("in-flight hash re-claimed as leader")
	}
	go st.Complete(inflight, e, Outcome{Report: "late"})
	if out := follower.Wait(); out.Report != "late" {
		t.Fatalf("follower got %q", out.Report)
	}
}

// TestCanceledOutcomesNotCached (behavior carried over from the
// single-mutex cache): nondeterministic outcomes are evicted at
// Complete, so a resubmission re-runs.
func TestCanceledOutcomesNotCached(t *testing.T) {
	st := NewStore(4, 16)
	hash := fakeHash("canceled")
	e, _ := st.Begin(hash)
	st.Complete(hash, e, Outcome{Err: ErrDraining})
	if _, leader := st.Begin(hash); !leader {
		t.Error("canceled outcome stayed cached")
	}
}

// TestStoreConcurrentBeginComplete hammers one store from many
// goroutines; run under -race this is the shard-locking regression test.
func TestStoreConcurrentBeginComplete(t *testing.T) {
	st := NewStore(8, 32)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				hash := fakeHash(fmt.Sprintf("c-%d", (g*7+i)%64))
				e, leader := st.Begin(hash)
				if leader {
					st.Complete(hash, e, Outcome{Report: hash[:6]})
				} else if out := e.Wait(); out.Report != hash[:6] {
					t.Errorf("wrong outcome for %.12s: %q", hash, out.Report)
				}
				st.RecordLatency(hash, time.Duration(i)*time.Millisecond)
			}
		}(g)
	}
	wg.Wait()
	global, _ := st.Snapshot()
	if global.Hits+global.Misses != 16*200 {
		t.Errorf("hits+misses = %d, want %d", global.Hits+global.Misses, 16*200)
	}
	if global.Entries > 32 {
		t.Errorf("%d completed entries resident, cap is 32", global.Entries)
	}
	if global.Resolved != 16*200 {
		t.Errorf("resolved latencies = %d, want %d", global.Resolved, 16*200)
	}
}

// TestHistogramQuantiles pins the fixed-bucket quantile math.
func TestHistogramQuantiles(t *testing.T) {
	var h histogram
	// 100 observations at ~3ms (bucket (2,5]), 10 at ~40ms, 1 at ~2s.
	for i := 0; i < 100; i++ {
		h.observe(3 * time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.observe(40 * time.Millisecond)
	}
	h.observe(2 * time.Second)
	c := h.counts()
	p50, p99 := quantileMS(c, 0.50), quantileMS(c, 0.99)
	if p50 <= 2 || p50 > 5 {
		t.Errorf("p50 = %.2fms, want within (2,5]", p50)
	}
	if p99 <= 25 || p99 > 50 {
		t.Errorf("p99 = %.2fms, want within (25,50]", p99)
	}
	if p100 := quantileMS(c, 1.0); p100 <= 1000 || p100 > 2500 {
		t.Errorf("p100 = %.2fms, want within (1000,2500]", p100)
	}
	if got := quantileMS([histBuckets]int64{}, 0.99); got != 0 {
		t.Errorf("empty histogram p99 = %v, want 0", got)
	}
	// Quantiles are monotone in q.
	prev := 0.0
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 1} {
		v := quantileMS(c, q)
		if v < prev {
			t.Errorf("quantile(%v) = %v < quantile at lower q %v", q, v, prev)
		}
		prev = v
	}
}
